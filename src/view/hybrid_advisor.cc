#include "view/hybrid_advisor.h"

#include <limits>

namespace pjvm {

Advice ChooseMethod(const WorkloadProfile& profile) {
  model::ModelParams p;
  p.num_nodes = profile.num_nodes;
  p.fanout = profile.fanout;
  p.b_pages = profile.other_relation_pages;
  p.memory_pages = profile.memory_pages;

  // Score by total workload per transaction — the paper's basic metric
  // ("response time alone can hide the fact that multiple nodes may be
  // doing unproductive work in parallel with the useful update operations").
  Advice advice;
  advice.naive_io = model::TwBatchNaive(p, profile.tuples_per_txn,
                                        profile.base_clustered_on_join);
  bool ar_fits = profile.ar_bytes <= profile.storage_budget_bytes;
  bool gi_fits = profile.gi_bytes <= profile.storage_budget_bytes;
  advice.aux_io = ar_fits ? model::TwBatchAux(p, profile.tuples_per_txn)
                          : std::numeric_limits<double>::infinity();
  advice.gi_io =
      gi_fits ? model::TwBatchGi(p, profile.tuples_per_txn,
                                 profile.base_clustered_on_join)
              : std::numeric_limits<double>::infinity();

  advice.method = MaintenanceMethod::kNaive;
  double best = advice.naive_io;
  if (advice.gi_io < best) {
    advice.method = MaintenanceMethod::kGlobalIndex;
    best = advice.gi_io;
  }
  if (advice.aux_io < best) {
    advice.method = MaintenanceMethod::kAuxRelation;
    best = advice.aux_io;
  }

  if (advice.method == MaintenanceMethod::kNaive) {
    if (!ar_fits && !gi_fits) {
      advice.rationale =
          "neither auxiliary relations nor global indexes fit the storage "
          "budget; naive is the only option";
    } else {
      advice.rationale =
          "updates are large relative to the base relation: the per-node "
          "scan (sort-merge) of the naive method beats per-tuple index "
          "plans, as in the paper's Figure 10";
    }
  } else if (advice.method == MaintenanceMethod::kAuxRelation) {
    advice.rationale =
        "small updates dominate and auxiliary relations fit in the budget: "
        "single-node maintenance at ~3 I/Os per tuple (Figure 7)";
  } else {
    advice.rationale =
        "auxiliary relations do not fit the budget but global indexes do: "
        "few-node maintenance at 3+K I/Os per tuple (the intermediate "
        "method, Figure 8)";
  }
  return advice;
}

}  // namespace pjvm
