#include <gtest/gtest.h>

#include <algorithm>

#include "sql/parser.h"
#include "tests/view_test_util.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// Aggregate join views: COUNT/SUM with GROUP BY, maintained incrementally
// from the delta-join tuples under every maintenance method. This is the
// natural extension of the paper's framework (its authors' follow-up work);
// the maintenance dataflow is identical, only the view-application step
// folds contributions into group rows.

JoinViewDef CountSumView(bool with_group = true) {
  // SELECT A.c, COUNT(*), SUM(B.f) FROM A, B WHERE A.c = B.d GROUP BY A.c
  JoinViewDef def;
  def.name = "AGG";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.aggregates = {{AggFn::kCount, {}}, {AggFn::kSum, {"B", "f"}}};
  if (with_group) def.group_by = {{"A", "c"}};
  return def;
}

// Reference aggregation over the engine's plain join for cross-checking.
std::map<int64_t, std::pair<int64_t, int64_t>> ReferenceAgg(
    TwoTableFixture& fx) {
  std::map<int64_t, std::pair<int64_t, int64_t>> ref;  // c -> (count, sum_f)
  for (const Row& a : fx.sys->ScanAll("A")) {
    for (const Row& b : fx.sys->ScanAll("B")) {
      if (a[1] == b[1]) {
        auto& [count, sum] = ref[a[1].AsInt64()];
        ++count;
        sum += b[2].AsInt64();
      }
    }
  }
  return ref;
}

class AggregateViewTest : public ::testing::TestWithParam<MaintenanceMethod> {};

TEST_P(AggregateViewTest, ValidationRules) {
  TwoTableFixture fx(2, 4, 1);
  // Projection + aggregates is rejected.
  JoinViewDef bad = CountSumView();
  bad.projection = {{"A", "e"}};
  EXPECT_FALSE(bad.Validate(fx.sys->catalog()).ok());
  // SUM over a string column is rejected.
  JoinViewDef bad2 = CountSumView();
  bad2.aggregates.push_back({AggFn::kSum, {"A", "e"}});
  EXPECT_TRUE(bad2.Validate(fx.sys->catalog()).ok());  // e is INT64: fine.
  // GROUP BY without aggregates is rejected.
  JoinViewDef bad3 = CountSumView();
  bad3.aggregates.clear();
  EXPECT_FALSE(bad3.Validate(fx.sys->catalog()).ok());
  // Partitioning attribute outside the group key is rejected.
  JoinViewDef bad4 = CountSumView();
  bad4.partition_on = ColumnRef{"A", "e"};
  EXPECT_FALSE(bad4.Validate(fx.sys->catalog()).ok());
}

TEST_P(AggregateViewTest, BackfillComputesGroups) {
  TwoTableFixture fx(4, /*b_keys=*/5, /*fanout=*/3);
  for (int i = 0; i < 4; ++i) {
    fx.sys->Insert("A", fx.NextARow(i % 2)).Check();  // Keys 0 and 1, twice.
  }
  ASSERT_TRUE(fx.manager->RegisterView(CountSumView(), GetParam()).ok());
  // Two groups (c = 0 and c = 1), each 2 A-rows x 3 B-rows = count 6.
  std::vector<Row> contents = fx.manager->view("AGG")->Contents();
  ASSERT_EQ(contents.size(), 2u);
  for (const Row& row : contents) {
    EXPECT_EQ(row[1], Value{int64_t{6}});  // __count
    EXPECT_EQ(row[2], Value{int64_t{6}});  // COUNT(*)
  }
}

TEST_P(AggregateViewTest, MaintainedUnderRandomOps) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager->RegisterView(CountSumView(), GetParam()).ok());
  Rng rng(77 + static_cast<int>(GetParam()));
  std::vector<Row> live;
  for (int step = 0; step < 80; ++step) {
    if (rng.Bernoulli(0.6) || live.empty()) {
      Row row = fx.NextARow(rng.UniformInt(0, 10));
      ASSERT_TRUE(fx.manager->InsertRow("A", row).ok()) << step;
      live.push_back(row);
    } else if (rng.Bernoulli(0.6)) {
      size_t pick = rng.Next() % live.size();
      ASSERT_TRUE(fx.manager->DeleteRow("A", live[pick]).ok()) << step;
      live.erase(live.begin() + pick);
    } else {
      size_t pick = rng.Next() % live.size();
      Row new_row = live[pick];
      new_row[1] = Value{rng.UniformInt(0, 10)};
      ASSERT_TRUE(fx.manager->UpdateRow("A", live[pick], new_row).ok()) << step;
      live[pick] = new_row;
    }
  }
  // The central oracle: stored groups == from-scratch aggregation.
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  // And an independent cross-check against a naive nested-loop aggregate.
  auto ref = ReferenceAgg(fx);
  std::vector<Row> contents = fx.manager->view("AGG")->Contents();
  ASSERT_EQ(contents.size(), ref.size());
  for (const Row& row : contents) {
    auto it = ref.find(row[0].AsInt64());
    ASSERT_NE(it, ref.end()) << RowToString(row);
    EXPECT_EQ(row[2].AsInt64(), it->second.first) << RowToString(row);
    EXPECT_EQ(row[3].AsInt64(), it->second.second) << RowToString(row);
  }
}

TEST_P(AggregateViewTest, DeltasOnTheOtherBaseMaintainGroups) {
  TwoTableFixture fx(4, 6, 2);
  for (int i = 0; i < 3; ++i) {
    fx.sys->Insert("A", fx.NextARow(i)).Check();
  }
  ASSERT_TRUE(fx.manager->RegisterView(CountSumView(), GetParam()).ok());
  ASSERT_TRUE(
      fx.manager->InsertRow("B", {Value{500}, Value{1}, Value{7}}).ok());
  ASSERT_TRUE(fx.manager->DeleteRow("B", {Value{0}, Value{0}, Value{0}}).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

TEST_P(AggregateViewTest, GroupsVanishAtZeroCount) {
  TwoTableFixture fx(2, 4, 1);
  ASSERT_TRUE(fx.manager->RegisterView(CountSumView(), GetParam()).ok());
  Row a = fx.NextARow(2);
  ASSERT_TRUE(fx.manager->InsertRow("A", a).ok());
  EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 1u);
  ASSERT_TRUE(fx.manager->DeleteRow("A", a).ok());
  EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 0u);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST_P(AggregateViewTest, GlobalAggregateSingleRow) {
  TwoTableFixture fx(4, 4, 2);
  JoinViewDef def = CountSumView(/*with_group=*/false);
  ASSERT_TRUE(fx.manager->RegisterView(def, GetParam()).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i % 4)).ok());
  }
  std::vector<Row> contents = fx.manager->view("AGG")->Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents[0][0], Value{int64_t{10}});  // 5 inserts x fanout 2.
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  // Deleting everything removes the row entirely.
  for (int64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(
        fx.manager->DeleteRow("A", {Value{k}, Value{k % 4}, Value{k * 100}})
            .ok());
  }
  EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 0u);
}

TEST_P(AggregateViewTest, SumOverDoubleColumn) {
  TwoTableFixture fx(2, 4, 1);
  TableDef sales;
  sales.name = "sales";
  sales.schema = Schema({{"sk", ValueType::kInt64},
                         {"ck", ValueType::kInt64},
                         {"amount", ValueType::kDouble}});
  sales.partition = PartitionSpec::Hash("sk");
  fx.sys->CreateTable(sales).Check();
  fx.sys->Insert("sales", {Value{1}, Value{2}, Value{1.5}}).Check();
  fx.sys->Insert("sales", {Value{2}, Value{2}, Value{2.25}}).Check();
  JoinViewDef def;
  def.name = "REV";
  def.bases = {{"A", "A"}, {"sales", "s"}};
  def.edges = {{{"A", "c"}, {"s", "ck"}}};
  def.group_by = {{"A", "c"}};
  def.aggregates = {{AggFn::kSum, {"s", "amount"}}};
  ASSERT_TRUE(fx.manager->RegisterView(def, GetParam()).ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(2)).ok());
  std::vector<Row> contents = fx.manager->view("REV")->Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_DOUBLE_EQ(contents[0][2].AsDouble(), 3.75);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

std::string AggMethodName(
    const ::testing::TestParamInfo<MaintenanceMethod>& info) {
  return MaintenanceMethodToString(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, AggregateViewTest,
                         ::testing::Values(MaintenanceMethod::kNaive,
                                           MaintenanceMethod::kAuxRelation,
                                           MaintenanceMethod::kGlobalIndex),
                         AggMethodName);

// --------------------------------------------------------------- SQL path

TEST(AggregateSqlTest, ParsesGroupByCountSum) {
  auto def = sql::ParseCreateView(
      "CREATE VIEW sales_by_region AS "
      "SELECT c.region, COUNT(*), SUM(o.amount) "
      "FROM customers c, orders o WHERE c.id = o.cid "
      "GROUP BY c.region PARTITIONED ON c.region;");
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_TRUE(def->is_aggregate());
  ASSERT_EQ(def->group_by.size(), 1u);
  EXPECT_EQ(def->group_by[0].ToString(), "c.region");
  ASSERT_EQ(def->aggregates.size(), 2u);
  EXPECT_EQ(def->aggregates[0].fn, AggFn::kCount);
  EXPECT_EQ(def->aggregates[1].fn, AggFn::kSum);
  EXPECT_EQ(def->aggregates[1].column.ToString(), "o.amount");
  EXPECT_TRUE(def->projection.empty());
}

TEST(AggregateSqlTest, SelectListMustMatchGroupBy) {
  EXPECT_FALSE(sql::ParseCreateView(
                   "CREATE VIEW v AS SELECT c.other, COUNT(*) FROM c, o "
                   "WHERE c.id = o.cid GROUP BY c.region")
                   .ok());
  EXPECT_FALSE(sql::ParseCreateView(
                   "CREATE VIEW v AS SELECT c.region FROM c, o "
                   "WHERE c.id = o.cid GROUP BY c.region")
                   .ok());
}

TEST(AggregateSqlTest, MalformedAggregatesRejected) {
  EXPECT_FALSE(
      sql::ParseCreateView("CREATE VIEW v AS SELECT COUNT(x.y) FROM t").ok());
  EXPECT_FALSE(
      sql::ParseCreateView("CREATE VIEW v AS SELECT SUM(*) FROM t").ok());
  EXPECT_FALSE(
      sql::ParseCreateView("CREATE VIEW v AS SELECT SUM(x.y FROM t").ok());
}

TEST(AggregateSqlTest, EndToEndThroughSql) {
  TwoTableFixture fx(4, 6, 2);
  auto def = sql::ParseCreateView(
      "CREATE VIEW agg AS SELECT A.c, COUNT(*), SUM(B.f) FROM A, B "
      "WHERE A.c = B.d GROUP BY A.c;");
  ASSERT_TRUE(def.ok()) << def.status();
  ASSERT_TRUE(
      fx.manager->RegisterView(*def, MaintenanceMethod::kAuxRelation).ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
  std::vector<Row> contents = fx.manager->view("agg")->Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents[0][2], Value{int64_t{4}});  // 2 A-rows x fanout 2.
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

}  // namespace
}  // namespace pjvm
