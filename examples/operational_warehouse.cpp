// The paper's motivating scenario: an *operational* data warehouse — a
// TPC-R-style schema with materialized join views, fed by a continuous
// stream of small OLTP-style update transactions. Shows how the choice of
// maintenance method decides whether the update stream scales: the naive
// method turns each single-node base update into an all-node operation,
// while the auxiliary relation method keeps it a few-node one.

#include <cstdio>

#include "engine/system.h"
#include "view/view_manager.h"
#include "workload/tpcr.h"
#include "workload/update_stream.h"

using namespace pjvm;

namespace {

struct StreamStats {
  double total_io = 0;
  double response_io = 0;
  uint64_t messages = 0;
  size_t txns = 0;
};

StreamStats RunStream(MaintenanceMethod method, int num_nodes, int batches,
                      int ops_per_batch) {
  SystemConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.rows_per_page = 16;
  ParallelSystem sys(cfg);
  TpcrConfig tpcr;
  tpcr.customers = 2000;
  tpcr.extra_customer_keys = 4096;
  LoadTpcr(&sys, GenerateTpcr(tpcr)).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeJv1(), method).Check();
  manager.RegisterView(MakeJv2(), method).Check();

  // A stream of small insert/delete/update transactions against customer.
  TpcrConfig capture = tpcr;
  UpdateStreamGenerator stream(
      "customer", UpdateMix{0.6, 0.2, 0.2}, /*seed=*/99,
      [capture](int64_t i) { return MakeDeltaCustomer(capture, i); },
      [](const Row& row, Rng& rng) {
        Row out = row;
        out[1] = Value{rng.UniformDouble() * 9999.0};  // acctbal changes.
        return out;
      });

  sys.cost().Reset();
  StreamStats stats;
  for (int b = 0; b < batches; ++b) {
    manager.ApplyDelta(stream.NextBatch(ops_per_batch)).status().Check();
    ++stats.txns;
  }
  stats.total_io = sys.cost().TotalWorkload();
  stats.response_io = sys.cost().ResponseTime();
  stats.messages = sys.network().TotalMessages();
  manager.CheckAllConsistent().Check();
  return stats;
}

}  // namespace

int main() {
  constexpr int kNodes = 8;
  constexpr int kBatches = 20;
  constexpr int kOps = 4;
  std::printf(
      "Operational warehouse: %d nodes, JV1 + JV2 materialized, %d update\n"
      "transactions of %d operations each against `customer`.\n\n",
      kNodes, kBatches, kOps);
  std::printf("%-14s %14s %16s %12s\n", "method", "total I/Os",
              "busiest-node I/Os", "messages");
  for (MaintenanceMethod method :
       {MaintenanceMethod::kNaive, MaintenanceMethod::kGlobalIndex,
        MaintenanceMethod::kAuxRelation}) {
    StreamStats s = RunStream(method, kNodes, kBatches, kOps);
    std::printf("%-14s %14.0f %16.0f %12llu\n",
                MaintenanceMethodToString(method), s.total_io, s.response_io,
                static_cast<unsigned long long>(s.messages));
  }
  std::printf(
      "\nEvery run ends with the views verified against a from-scratch\n"
      "recomputation — the methods differ only in cost, never in content.\n");
  return 0;
}
