#include <gtest/gtest.h>

#include "storage/histogram.h"
#include "tests/view_test_util.h"
#include "view/planner.h"
#include "view/view_manager.h"
#include "workload/zipf.h"

namespace pjvm {
namespace {

// ---------------------------------------------------------- EquiDepth hist

TEST(HistogramTest, EmptyAndDegenerate) {
  EquiDepthHistogram empty = EquiDepthHistogram::Build({}, 4);
  EXPECT_EQ(empty.total_rows(), 0u);
  EXPECT_DOUBLE_EQ(empty.EstimateEq(Value{1}), 0.0);
  EquiDepthHistogram one = EquiDepthHistogram::Build({Value{5}}, 4);
  EXPECT_DOUBLE_EQ(one.EstimateEq(Value{5}), 1.0);
  // A value outside every bucket floors at 1 row (not 0): the histogram
  // proves it was absent at build time, not that it is absent now.
  EXPECT_DOUBLE_EQ(one.EstimateEq(Value{6}), 1.0);
}

TEST(HistogramTest, NeverSeenKeyFloorsAtOneRow) {
  // Regression: EstimateEq returned 0 for any value outside every bucket,
  // so inserts beyond the build-time domain looked free to the delta-aware
  // planner and could never be classified heavy. Probe both sides of the
  // domain and the gap between buckets.
  std::vector<Value> values;
  for (int64_t k = 10; k < 20; ++k) values.push_back(Value{k});
  for (int64_t k = 40; k < 50; ++k) values.push_back(Value{k});
  EquiDepthHistogram hist = EquiDepthHistogram::Build(std::move(values), 2);
  EXPECT_DOUBLE_EQ(hist.EstimateEq(Value{int64_t{9}}), 1.0);   // below domain
  EXPECT_DOUBLE_EQ(hist.EstimateEq(Value{int64_t{50}}), 1.0);  // above domain
  // Boundary values stay exact.
  EXPECT_GE(hist.EstimateEq(Value{int64_t{10}}), 1.0);
  EXPECT_GE(hist.EstimateEq(Value{int64_t{49}}), 1.0);
  // Only an empty histogram may estimate zero.
  EquiDepthHistogram empty = EquiDepthHistogram::Build({}, 2);
  EXPECT_DOUBLE_EQ(empty.EstimateEq(Value{int64_t{9}}), 0.0);
}

TEST(HistogramTest, UniformDataEstimatesFanout) {
  std::vector<Value> values;
  for (int64_t k = 0; k < 50; ++k) {
    for (int r = 0; r < 4; ++r) values.push_back(Value{k});
  }
  EquiDepthHistogram hist = EquiDepthHistogram::Build(std::move(values), 10);
  EXPECT_EQ(hist.total_rows(), 200u);
  for (int64_t k = 0; k < 50; k += 7) {
    EXPECT_NEAR(hist.EstimateEq(Value{k}), 4.0, 0.5) << k;
  }
}

TEST(HistogramTest, HotKeyGetsItsOwnNarrowBucket) {
  // 1000 rows of key 0, one row each of keys 1..100.
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value{int64_t{0}});
  for (int64_t k = 1; k <= 100; ++k) values.push_back(Value{k});
  EquiDepthHistogram hist = EquiDepthHistogram::Build(std::move(values), 10);
  // The hot key's estimate is essentially exact; cold keys near 1.
  EXPECT_NEAR(hist.EstimateEq(Value{int64_t{0}}), 1000.0, 1.0);
  EXPECT_NEAR(hist.EstimateEq(Value{int64_t{50}}), 1.0, 0.5);
}

TEST(HistogramTest, DuplicatesNeverSplitAcrossBuckets) {
  std::vector<Value> values;
  for (int i = 0; i < 64; ++i) values.push_back(Value{int64_t{7}});
  EquiDepthHistogram hist = EquiDepthHistogram::Build(std::move(values), 8);
  EXPECT_EQ(hist.num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(hist.EstimateEq(Value{7}), 64.0);
}

TEST(HistogramTest, RangeEstimates) {
  std::vector<Value> values;
  for (int64_t k = 0; k < 100; ++k) values.push_back(Value{k});
  EquiDepthHistogram hist = EquiDepthHistogram::Build(std::move(values), 10);
  EXPECT_NEAR(hist.EstimateRange(Value{int64_t{0}}, Value{int64_t{99}}), 100.0,
              1.0);
  EXPECT_NEAR(hist.EstimateRange(Value{int64_t{0}}, Value{int64_t{49}}), 50.0,
              6.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(Value{int64_t{200}}, Value{int64_t{300}}),
                   0.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(Value{int64_t{5}}, Value{int64_t{1}}),
                   0.0);
}

TEST(HistogramTest, BuildFromFragment) {
  TableFragment frag(
      Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(frag.Insert({Value{i % 3}, Value{i}}).ok());
  }
  EquiDepthHistogram hist = BuildFragmentHistogram(frag, 0, 3);
  EXPECT_NEAR(hist.EstimateEq(Value{int64_t{1}}), 10.0, 0.1);
}

// ----------------------------------------------------------------- Zipf

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator gen(10, 0.0, 42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[gen.Next()]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(ZipfTest, HighThetaConcentratesOnRankZero) {
  ZipfGenerator gen(100, 1.2, 7);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 10000; ++i) counts[gen.Next()]++;
  EXPECT_GT(counts[0], counts[10] * 5);
  EXPECT_GT(counts[0], 1500);
}

TEST(ZipfTest, RanksStayInRange) {
  ZipfGenerator gen(5, 0.9, 3);
  for (int i = 0; i < 1000; ++i) {
    int64_t r = gen.Next();
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 5);
  }
}

// ------------------------------------------------- Delta-aware planning

class DeltaPlanTest : public ::testing::Test {
 protected:
  // A -c- B -f- C chain where B's neighbours have *identical average*
  // fanout but opposite skew: joining toward A is cheap for even keys and
  // expensive for odd keys; C is the mirror image.
  void SetUp() override {
    SystemConfig cfg;
    cfg.num_nodes = 4;
    sys_ = std::make_unique<ParallelSystem>(cfg);
    sys_->CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
    sys_->CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
    sys_->CreateTable(MakeTableDef("C", CSchema(), "h")).Check();
    int64_t id = 0;
    for (int64_t k = 0; k < 8; ++k) {
      int64_t a_copies = (k % 2 == 0) ? 1 : 15;  // Odd A-keys are hot.
      int64_t c_copies = (k % 2 == 0) ? 15 : 1;  // Even C-keys are hot.
      for (int64_t r = 0; r < a_copies; ++r) {
        sys_->Insert("A", {Value{id++}, Value{k}, Value{id}}).Check();
      }
      for (int64_t r = 0; r < c_copies; ++r) {
        sys_->Insert("C", {Value{k}, Value{id++}, Value{id}}).Check();
      }
    }
    manager_ = std::make_unique<ViewManager>(sys_.get());
    JoinViewDef def;
    def.name = "JV3";
    def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}, {{"B", "f"}, {"C", "g"}}};
    manager_->RegisterView(def, MaintenanceMethod::kAuxRelation).Check();
  }

  std::unique_ptr<ParallelSystem> sys_;
  std::unique_ptr<ViewManager> manager_;
};

TEST_F(DeltaPlanTest, PlannerUsesActualDeltaKeys) {
  const ViewRegistration* reg = manager_->registration("JV3");
  FanoutFn avg_fn = [](int, int) { return 8.0; };
  KeyFanoutFn key_fn = [&](int base, int col, const Value& key) {
    (void)col;
    int64_t k = key.AsInt64();
    if (base == 0) return (k % 2 == 0) ? 1.0 : 15.0;  // A-side skew.
    if (base == 2) return (k % 2 == 0) ? 15.0 : 1.0;  // C-side mirror.
    return 8.0;
  };
  // A delta on B whose rows carry even keys on both join columns: the A
  // side is cheap (1 per key), so it must be joined first.
  std::vector<Row> even_delta = {{Value{100}, Value{2}, Value{2}},
                                 {Value{101}, Value{4}, Value{4}}};
  auto plan_even = PlanMaintenanceForDelta(reg->bound, 1, even_delta, avg_fn,
                                           key_fn);
  ASSERT_TRUE(plan_even.ok());
  EXPECT_EQ(plan_even->steps[0].target_base, 0);
  // Odd keys flip the decision: C first.
  std::vector<Row> odd_delta = {{Value{102}, Value{3}, Value{3}},
                                {Value{103}, Value{5}, Value{5}}};
  auto plan_odd =
      PlanMaintenanceForDelta(reg->bound, 1, odd_delta, avg_fn, key_fn);
  ASSERT_TRUE(plan_odd.ok());
  EXPECT_EQ(plan_odd->steps[0].target_base, 2);
}

TEST_F(DeltaPlanTest, EndToEndSkewAwareMaintenanceIsCorrectAndCheaper) {
  // Drive the real maintainer (which uses exact index counts per delta key)
  // with a hot-key batch and a cold-key batch; both must be correct, and
  // the cold batch must cost less.
  auto run_batch = [&](int64_t key) {
    std::vector<Row> rows;
    for (int64_t i = 0; i < 4; ++i) {
      rows.push_back({Value{500 + key * 10 + i}, Value{key}, Value{key}});
    }
    sys_->cost().Reset();
    manager_->ApplyDelta(DeltaBatch::Inserts("B", rows)).status().Check();
    return sys_->cost().TotalWorkload();
  };
  double even_cost = run_batch(2);  // Cheap on the A side, hot on C.
  double odd_cost = run_batch(3);   // Hot on the A side, cheap on C.
  ASSERT_TRUE(manager_->CheckAllConsistent().ok())
      << manager_->CheckAllConsistent();
  // Both batches produce 1 x 15 = 15 view rows; the planner's freedom is
  // only the join order, and the delta-aware order keeps the partials small
  // on whichever side is cold, so costs should be within ~25% of each other
  // (a fixed order would pay ~15x partials on one of them).
  EXPECT_LT(std::max(even_cost, odd_cost) / std::min(even_cost, odd_cost), 1.6);
}

TEST(KeyFanoutTest, ExactWhenIndexed) {
  TwoTableFixture fx(4, 6, 3);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  // The AR on B.d is clustered-indexed; every key has exactly fanout 3.
  // Probe the maintainer's estimate through a single insert (which plans
  // per delta) — correctness of contents implies the probe worked, and the
  // cost equals the model's: no mis-estimation detours.
  fx.sys->cost().Reset();
  auto report = fx.manager->InsertRow("A", fx.NextARow(4));
  report.status().Check();
  EXPECT_EQ(report->view_rows_inserted, 3u);
}

}  // namespace
}  // namespace pjvm
