# Empty dependencies file for bench_fig14_measured.
# This may be replaced when dependencies are built.
