#include <gtest/gtest.h>

#include "tests/view_test_util.h"
#include "view/materialized_view.h"
#include "view/view_def.h"

namespace pjvm {
namespace {

class ViewDefTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddTable(MakeTableDef("A", ASchema(), "a")).ok());
    ASSERT_TRUE(catalog_.AddTable(MakeTableDef("B", BSchema(), "b")).ok());
    ASSERT_TRUE(catalog_.AddTable(MakeTableDef("C", CSchema(), "g")).ok());
  }

  JoinViewDef TwoWay() {
    JoinViewDef def;
    def.name = "JV";
    def.bases = {{"A", "A"}, {"B", "B"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}};
    return def;
  }

  Catalog catalog_;
};

TEST_F(ViewDefTest, ValidViewPasses) {
  EXPECT_TRUE(TwoWay().Validate(catalog_).ok());
}

TEST_F(ViewDefTest, RejectsMissingTable) {
  JoinViewDef def = TwoWay();
  def.bases[1].table = "Nope";
  EXPECT_TRUE(def.Validate(catalog_).IsNotFound());
}

TEST_F(ViewDefTest, RejectsUnknownColumns) {
  JoinViewDef def = TwoWay();
  def.edges[0].left.column = "ghost";
  EXPECT_FALSE(def.Validate(catalog_).ok());
  def = TwoWay();
  def.projection = {{"A", "ghost"}};
  EXPECT_FALSE(def.Validate(catalog_).ok());
  def = TwoWay();
  def.selections = {{{"B", "ghost"}, PredOp::kEq, Value{1}}};
  EXPECT_FALSE(def.Validate(catalog_).ok());
}

TEST_F(ViewDefTest, RejectsSelfJoin) {
  JoinViewDef def;
  def.name = "SJ";
  def.bases = {{"A", "x"}, {"A", "y"}};
  def.edges = {{{"x", "c"}, {"y", "c"}}};
  EXPECT_EQ(def.Validate(catalog_).code(), StatusCode::kNotImplemented);
}

TEST_F(ViewDefTest, RejectsDisconnectedGraph) {
  JoinViewDef def;
  def.name = "D";
  def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};  // C unreachable.
  EXPECT_FALSE(def.Validate(catalog_).ok());
}

TEST_F(ViewDefTest, RejectsTypeMismatchedEdge) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(MakeTableDef("A", ASchema(), "a")).ok());
  TableDef s;
  s.name = "S";
  s.schema = Schema({{"k", ValueType::kString}});
  s.partition = PartitionSpec::Hash("k");
  ASSERT_TRUE(cat.AddTable(s).ok());
  JoinViewDef def;
  def.name = "TM";
  def.bases = {{"A", "A"}, {"S", "S"}};
  def.edges = {{{"A", "c"}, {"S", "k"}}};
  EXPECT_FALSE(def.Validate(cat).ok());
}

TEST_F(ViewDefTest, RejectsPartitionAttrOutsideProjection) {
  JoinViewDef def = TwoWay();
  def.projection = {{"A", "a"}};
  def.partition_on = ColumnRef{"A", "e"};
  EXPECT_FALSE(def.Validate(catalog_).ok());
}

TEST_F(ViewDefTest, SelectStarBindsAllColumns) {
  auto bound = BoundView::Bind(TwoWay(), catalog_);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->working_width(), 6);
  EXPECT_EQ(bound->output_schema().num_columns(), 6);
  EXPECT_EQ(bound->output_schema().column(0).name, "A.a");
  EXPECT_EQ(bound->output_schema().column(3).name, "B.b");
  EXPECT_EQ(bound->output_partition_col(), -1);
}

TEST_F(ViewDefTest, ProjectionNarrowsNeededColumns) {
  JoinViewDef def = TwoWay();
  def.projection = {{"A", "e"}, {"B", "f"}};
  auto bound = BoundView::Bind(def, catalog_);
  ASSERT_TRUE(bound.ok());
  // Needed for A: c (join) + e (projection) = 2; for B: d + f = 2.
  EXPECT_EQ(bound->needed_cols(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(bound->needed_cols(1), (std::vector<int>{1, 2}));
  EXPECT_EQ(bound->working_width(), 4);
  EXPECT_EQ(bound->output_schema().num_columns(), 2);
  EXPECT_EQ(bound->output_schema().column(0).name, "A.e");
}

TEST_F(ViewDefTest, PartitionAttrResolvesToOutputColumn) {
  JoinViewDef def = TwoWay();
  def.projection = {{"B", "f"}, {"A", "e"}};
  def.partition_on = ColumnRef{"A", "e"};
  auto bound = BoundView::Bind(def, catalog_);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->output_partition_col(), 1);
}

TEST_F(ViewDefTest, WorkingIndexMapsCorrectly) {
  auto bound = BoundView::Bind(TwoWay(), catalog_);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound->WorkingIndex(0, 1), 1);  // A.c
  EXPECT_EQ(*bound->WorkingIndex(1, 1), 4);  // B.d after A's 3 columns.
  EXPECT_FALSE(BoundView::Bind(TwoWay(), catalog_)->WorkingIndex(0, 7).ok());
}

TEST_F(ViewDefTest, SelectionsFilterRows) {
  JoinViewDef def = TwoWay();
  def.selections = {{{"A", "e"}, PredOp::kGt, Value{10}}};
  auto bound = BoundView::Bind(def, catalog_);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->RowPassesSelections(0, {Value{1}, Value{2}, Value{11}}));
  EXPECT_FALSE(bound->RowPassesSelections(0, {Value{1}, Value{2}, Value{10}}));
  EXPECT_TRUE(bound->RowPassesSelections(1, {Value{1}, Value{2}, Value{3}}));
}

TEST_F(ViewDefTest, PredOpsEvaluate) {
  EXPECT_TRUE((SelectionPred{{"x", "y"}, PredOp::kNe, Value{3}}).Eval(Value{4}));
  EXPECT_TRUE((SelectionPred{{"x", "y"}, PredOp::kLe, Value{3}}).Eval(Value{3}));
  EXPECT_FALSE((SelectionPred{{"x", "y"}, PredOp::kLt, Value{3}}).Eval(Value{3}));
  EXPECT_TRUE((SelectionPred{{"x", "y"}, PredOp::kGe, Value{3}}).Eval(Value{3}));
}

TEST_F(ViewDefTest, ToStringRoundTripsShape) {
  JoinViewDef def = TwoWay();
  def.projection = {{"A", "e"}};
  def.selections = {{{"A", "e"}, PredOp::kGt, Value{10}}};
  def.partition_on = ColumnRef{"A", "e"};
  std::string s = def.ToString();
  EXPECT_NE(s.find("SELECT A.e"), std::string::npos);
  EXPECT_NE(s.find("A.c = B.d"), std::string::npos);
  EXPECT_NE(s.find("A.e > 10"), std::string::npos);
  EXPECT_NE(s.find("PARTITIONED ON A.e"), std::string::npos);
}

// ------------------------------------------------ EvaluateViewFromScratch

TEST(EvaluateTest, TwoWayJoinBagSemantics) {
  TwoTableFixture fx(4, /*b_keys=*/5, /*fanout=*/3);
  // Two A rows on key 2, one on key 4: expect 2*3 + 1*3 = 9 outputs.
  fx.sys->Insert("A", fx.NextARow(2)).Check();
  fx.sys->Insert("A", fx.NextARow(2)).Check();
  fx.sys->Insert("A", fx.NextARow(4)).Check();
  auto bound = BoundView::Bind(fx.MakeView("JV"), fx.sys->catalog());
  ASSERT_TRUE(bound.ok());
  auto rows = EvaluateViewFromScratch(fx.sys.get(), *bound);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
}

TEST(EvaluateTest, SelectionAndProjectionApplied) {
  TwoTableFixture fx(2, 4, 1);
  fx.sys->Insert("A", {Value{0}, Value{1}, Value{5}}).Check();
  fx.sys->Insert("A", {Value{1}, Value{1}, Value{50}}).Check();
  JoinViewDef def = fx.MakeView("JV", false);
  def.projection = {{"A", "e"}, {"B", "f"}};
  def.selections = {{{"A", "e"}, PredOp::kGt, Value{10}}};
  auto bound = BoundView::Bind(def, fx.sys->catalog());
  ASSERT_TRUE(bound.ok());
  auto rows = EvaluateViewFromScratch(fx.sys.get(), *bound);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value{50});
}

TEST(EvaluateTest, EmptyBasesYieldEmptyView) {
  TwoTableFixture fx(2, 0, 0);
  auto bound = BoundView::Bind(fx.MakeView("JV"), fx.sys->catalog());
  ASSERT_TRUE(bound.ok());
  auto rows = EvaluateViewFromScratch(fx.sys.get(), *bound);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

}  // namespace
}  // namespace pjvm
