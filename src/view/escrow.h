#ifndef PJVM_VIEW_ESCROW_H_
#define PJVM_VIEW_ESCROW_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "engine/system.h"
#include "storage/row_id.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief Escrow (value-lock) maintenance of aggregate join views.
///
/// The eager aggregate path serializes every maintenance transaction that
/// touches the same group row: each one X-locks the group's index key,
/// deletes the old row, and inserts the folded row. For a hot group (the
/// one-key COUNT/SUM hotspot bench_contention measures) that X lock is the
/// whole story — writers queue on it and throughput is flat in the thread
/// count. But COUNT and SUM increments *commute*: any interleaving of
/// `+= d` operations reaches the same state, so the X lock is stronger than
/// the operation needs. This registry implements the classic escrow/value
/// lock refinement:
///
///  - A maintenance transaction folding a contribution into an existing
///    group acquires the group's index key in `LockMode::kValue` (V) — the
///    same LockId the eager path X-locks and readers S-probe. V is
///    compatible with V, so concurrent incrementers proceed in parallel;
///    readers (S) and eager writers (X) still conflict, so scans and
///    snapshots never observe a torn group.
///  - Each in-flight transaction's contribution is kept as a private
///    *inverse delta* in a per-(node, view, group) journal entry beside the
///    group's last committed image. The heap row is rewritten in place
///    (Node::EscrowReplace) to `committed ⊕ all in-flight deltas` so
///    same-transaction reads and the maintainers' estimation scans see
///    current bytes; commit folds the transaction's delta into the
///    committed image, abort simply drops it and restores
///    `committed ⊕ remaining` — the exact committed-derived bytes, never a
///    subtraction (floating-point subtraction does not invert addition:
///    (0.1 + 1e16) - 1e16 == 0).
///  - **Group birth and death are the non-commutative edges.** A
///    contribution for a missing group, or one that would drive the
///    transaction's own accumulated count negative, escalates V→X: the
///    upgrade waits out (or kills, per the lock policy) every other V
///    holder, and its grant therefore implies sole ownership with the
///    journal settled — the transaction then replays its accumulated delta
///    through the eager delete+insert path and stays eager on that group
///    for the rest of its life. The own-count rule is deliberately
///    conservative: every delta resident in escrow keeps count >= 0, so the
///    committed count can never reach zero while the journal is live and a
///    zero-count row can never be resurrected by a late increment —
///    group death is always decided against settled state, under X.
///
/// **Determinism.** Commit folds `committed ⊕= own` in commit order, which
/// is byte-for-byte the serial eager schedule in that order; every heap
/// rewrite recomputes `committed ⊕ deltas` in ascending transaction id so
/// in-flight bytes are a pure function of the journal, not of arrival
/// history. The escrow_eager_equivalence tests compare fingerprints.
///
/// **Durability.** Escrow rewrites bypass the per-op WAL/undo/MVCC plumbing
/// (the journal owns rollback); instead OnPrepare appends one logical
/// kEscrowDelta record per touched group to the owning node's WAL — covered
/// by the 2PC prepare forces — and recovery adds the deltas back onto the
/// prefix-matched group row. Replay order is safe because a group's birth
/// (a physical insert under X) strictly precedes every escrow delta against
/// it in the same log.
///
/// Lifecycle integration is via ParallelSystem::SetTxnHook — see the
/// TxnHook contract in engine/system.h. The journal mutex is a strict leaf:
/// taken under node latches and under the snapshot publish section, never
/// the reverse.
class EscrowRegistry : public TxnHook {
 public:
  explicit EscrowRegistry(ParallelSystem* sys) : sys_(sys) {}

  /// Registers `bound` (which must outlive the registration) for escrow
  /// maintenance if eligible: an aggregate view, hash-partitioned on a
  /// group column (the partition index key is the escrow lock identity;
  /// round-robin global aggregates keep the eager path). Ineligible views
  /// are ignored.
  void AddView(const std::string& name, const BoundView* bound);
  void RemoveView(const std::string& name);

  /// Routes one aggregate contribution (stored layout, produced by
  /// BoundView::OutputRow) destined for `node`. Returns true if the journal
  /// handled it — the caller skips the eager fold entirely — or false if
  /// the eager path must run (view not registered, autocommit, or the
  /// group's birth/death edge, for which the group is already X-locked and
  /// marked eager-for-this-transaction on return).
  Result<bool> Apply(uint64_t txn, int node, const std::string& view,
                     const Row& contribution, bool is_delete);

  // TxnHook:
  bool HasPending(uint64_t txn_id) const override;
  Status OnPrepare(uint64_t txn_id) override;
  std::vector<TxnVersionOp> OnCommitFold(uint64_t txn_id) override;
  Status OnCommitFinalize(uint64_t txn_id) override;
  void OnAbort(uint64_t txn_id) override;

  /// Drops all journal state (crash: the heaps are gone and every in-flight
  /// transaction is presumed aborted; recovery replays committed deltas
  /// from the WALs).
  void Reset();

  /// Quiescent-point invariant: journal entries exist only while their
  /// transactions hold V locks, so with no transaction in flight the
  /// journal must be empty (ViewManager::CheckAllConsistent asserts this
  /// before the from-scratch oracle compares contents byte-for-byte).
  Status CheckConsistent() const;

  /// Per-transaction tallies for EXPLAIN ANALYZE; read before Commit (the
  /// commit epilogue clears them).
  struct TxnStats {
    uint64_t escrow_ops = 0;
    uint64_t vlock_upgrades = 0;
  };
  TxnStats StatsOf(uint64_t txn_id) const;

 private:
  /// (node, group-prefix values) — one journaled group row.
  using GroupKey = std::pair<int, Row>;
  /// (view name, group key) — one transaction's touch of one group.
  using GroupRef = std::pair<std::string, GroupKey>;

  struct GroupState {
    /// The group row as of the last commit that touched it (stored layout).
    Row committed;
    /// The row's heap slot. Stable while this state exists: every resident
    /// delta's owner holds V until release, so no X writer can move it.
    LocalRowId lrid = 0;
    /// Fragment shape captured under the latch at the last rewrite, carried
    /// into the commit-time version ops (see MvccOp's doc).
    size_t pages = 0;
    size_t rows = 0;
    /// In-flight inverse deltas by transaction id ([group..., count delta,
    /// agg deltas...]); heap = committed ⊕ all of these, folded ascending.
    std::map<uint64_t, Row> deltas;
    /// Transactions whose delta is folded into `committed` but whose commit
    /// epilogue has not yet rewritten the heap / released locks.
    std::set<uint64_t> finalizing;

    bool Settled() const { return deltas.empty() && finalizing.empty(); }
  };

  struct ViewState {
    const BoundView* bound = nullptr;
    std::map<GroupKey, GroupState> groups;
  };

  /// committed ⊕ in-flight deltas, folded in ascending txn id. `mu_` held.
  static Row FoldedRow(const BoundView& bound, const GroupState& gs);
  /// Rewrites the group's heap row to FoldedRow and refreshes the captured
  /// fragment shape. Caller holds the node's exclusive latch and `mu_`.
  Status RewriteHeapLocked(const std::string& view, ViewState& vs,
                           const GroupKey& key, GroupState& gs);
  /// V→X escalation epilogue: marks the (txn, group) eager and tallies the
  /// upgrade. `mu_` held.
  void MarkExclusiveLocked(uint64_t txn, const std::string& view,
                           const GroupKey& key);
  /// Replays a transaction's accumulated (signed) delta through the eager
  /// delete+insert path, under the group's X lock. No latch held on entry.
  Status ApplyEagerSynthetic(uint64_t txn, int node_id,
                             const std::string& view, const BoundView& bound,
                             const Row& synthetic);
  /// Drops every per-transaction record (refs, eager marks, stats).
  void ClearTxnLocked(uint64_t txn_id);

  ParallelSystem* sys_;

  /// Leaf mutex guarding all maps below (see the class comment).
  mutable std::mutex mu_;
  std::map<std::string, ViewState> views_;
  /// Groups each in-flight transaction has a resident delta or finalizing
  /// mark in.
  std::map<uint64_t, std::set<GroupRef>> txn_refs_;
  /// Groups a transaction handles eagerly (post-escalation): Apply answers
  /// false for these so the caller's eager fold runs under the held X lock.
  std::map<uint64_t, std::set<GroupRef>> txn_eager_;
  std::map<uint64_t, TxnStats> stats_;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_ESCROW_H_
