file(REMOVE_RECURSE
  "CMakeFiles/operational_warehouse.dir/operational_warehouse.cpp.o"
  "CMakeFiles/operational_warehouse.dir/operational_warehouse.cpp.o.d"
  "operational_warehouse"
  "operational_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operational_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
