# Empty compiler generated dependencies file for pjvm_exec.
# This may be replaced when dependencies are built.
