file(REMOVE_RECURSE
  "CMakeFiles/hybrid_advisor.dir/hybrid_advisor.cpp.o"
  "CMakeFiles/hybrid_advisor.dir/hybrid_advisor.cpp.o.d"
  "hybrid_advisor"
  "hybrid_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
