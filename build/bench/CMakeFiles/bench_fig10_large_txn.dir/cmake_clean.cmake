file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_large_txn.dir/bench_fig10_large_txn.cc.o"
  "CMakeFiles/bench_fig10_large_txn.dir/bench_fig10_large_txn.cc.o.d"
  "bench_fig10_large_txn"
  "bench_fig10_large_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_large_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
