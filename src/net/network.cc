#include "net/network.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace pjvm {

Network::Network(int num_nodes, CostTracker* tracker)
    : num_nodes_(num_nodes),
      tracker_(tracker),
      queues_(num_nodes),
      pair_counts_(static_cast<size_t>(num_nodes) * num_nodes, 0) {}

Status Network::Validate(const Message& msg) const {
  if (msg.from < 0 || msg.from >= num_nodes_) {
    return Status::InvalidArgument("network: bad source node " +
                                   std::to_string(msg.from));
  }
  if (msg.to < 0 || msg.to >= num_nodes_) {
    return Status::InvalidArgument("network: bad destination node " +
                                   std::to_string(msg.to));
  }
  return Status::OK();
}

void Network::EnqueueLocked(Message msg, bool charge_self) {
  size_t bytes = msg.ByteSize();
  pair_counts_[msg.from * num_nodes_ + msg.to] += 1;
  total_messages_ += 1;
  total_bytes_ += bytes;
  if ((charge_self || msg.from != msg.to) && tracker_ != nullptr) {
    tracker_->ChargeSend(msg.from, bytes);
  }
  if (Tracer::Global().enabled()) {
    TraceInstant("send", "net", msg.from, bytes,
                 std::to_string(msg.from) + "->" + std::to_string(msg.to));
  }
  queues_[msg.to].push_back(std::move(msg));
}

Status Network::Send(Message msg) {
  PJVM_RETURN_NOT_OK(Validate(msg));
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnqueueLocked(std::move(msg), /*charge_self=*/false);
  }
  arrival_cv_.notify_all();
  return Status::OK();
}

Status Network::Broadcast(int from, Message msg) {
  if (from < 0 || from >= num_nodes_) {
    return Status::InvalidArgument("network: bad broadcast source");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    msg.from = from;
    for (int to = 0; to < num_nodes_; ++to) {
      // The paper charges the naive method L*SEND for "sending tuple to each
      // node", i.e. the self-copy is charged too. The last destination takes
      // the payload by move.
      Message copy = (to == num_nodes_ - 1) ? std::move(msg) : msg;
      copy.to = to;
      EnqueueLocked(std::move(copy), /*charge_self=*/true);
    }
  }
  arrival_cv_.notify_all();
  return Status::OK();
}

Result<Message> Network::SendAndDeliver(Message msg) {
  PJVM_RETURN_NOT_OK(Validate(msg));
  std::lock_guard<std::mutex> lock(mu_);
  // Same accounting as EnqueueLocked, minus the queue: the hop is consumed
  // by the calling thread at the destination.
  size_t bytes = msg.ByteSize();
  pair_counts_[msg.from * num_nodes_ + msg.to] += 1;
  total_messages_ += 1;
  total_bytes_ += bytes;
  if (msg.from != msg.to && tracker_ != nullptr) {
    tracker_->ChargeSend(msg.from, bytes);
  }
  if (Tracer::Global().enabled()) {
    TraceInstant("send", "net", msg.from, bytes,
                 std::to_string(msg.from) + "->" + std::to_string(msg.to));
  }
  return msg;
}

std::optional<Message> Network::Poll(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queues_[node].empty()) return std::nullopt;
  Message msg = std::move(queues_[node].front());
  queues_[node].pop_front();
  return msg;
}

std::optional<Message> Network::PollTxn(int node, uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<Message>& queue = queues_[node];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->txn_id != txn_id) continue;
    Message msg = std::move(*it);
    queue.erase(it);
    return msg;
  }
  return std::nullopt;
}

std::optional<Message> Network::PollWait(int node, uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!arrival_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return !queues_[node].empty(); })) {
    return std::nullopt;
  }
  Message msg = std::move(queues_[node].front());
  queues_[node].pop_front();
  return msg;
}

bool Network::HasPending() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

size_t Network::PendingCount(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return queues_[node].size();
}

uint64_t Network::PairCount(int from, int to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pair_counts_[from * num_nodes_ + to];
}

uint64_t Network::TotalMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_messages_;
}

uint64_t Network::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

void Network::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(pair_counts_.begin(), pair_counts_.end(), 0);
  total_messages_ = 0;
  total_bytes_ = 0;
}

}  // namespace pjvm
