// Multi-client contention bench: N concurrent updater threads drive
// single-row maintenance transactions against one shared join view, with
// join keys drawn from a small pool so transactions collide on the AR's
// clustered-index key locks.
//
// The sweep compares two engine modes over a key-pool x thread-count grid:
//  - baseline: the pre-sharding write path (one lock-table shard, exclusive
//    node latches, per-transaction WAL forces);
//  - scalable: the contention-scalable path (sharded lock table, RW node
//    latches, group commit).
// Both modes charge the same simulated WAL device (force_ns), so the
// difference isolates the concurrency structure, not the hardware model.
//
// Within the scalable mode three lock policies run over the same workload:
//  - no_wait: a conflicting acquire aborts the transaction immediately and
//    the abort is client-visible (maintain_max_attempts = 1); the client
//    must re-submit until its transaction commits.
//  - wait_die: conflicting acquires park (older waits, younger dies) and
//    the ViewManager absorbs deadlock-avoidance kills in its bounded retry
//    loop, so the client sees no aborts at all.
//  - wound_wait: the mirror-image policy (older wounds younger holders);
//    same client-invisible contract as wait_die, different victim choice.
//
// Reported per cell: committed throughput, client-visible latency
// (p50/p95/p99 over the full submit-to-commit interval, retries included),
// client-visible aborts, deadlock kills, wounds, lock waits, shard-mutex
// contention, group-commit rounds, and internal maintenance retries. Each
// cell ends with the from-scratch consistency oracle: whatever the
// interleaving, the view must match its bases exactly.
//
// A separate bulk-delta mode measures lock escalation instead: one
// maintenance transaction applies a [txns_per_thread]-row delta, sweeping
// SystemConfig::lock_escalation_threshold over {off, 64, 256, 1024} and
// recording peak lock-table entries and throughput for each setting. This is
// the footprint claim behind the escalation PR: a bulk transaction's key
// locks collapse into a handful of fragment locks without costing
// throughput. Written to BENCH_contention_bulk.json.
//
// A mixed read/write sweep measures the MVCC snapshot read path instead
// (SystemConfig::mvcc_reads): R reader threads run explicit read
// transactions against a fixed pool of A rows while W writer threads drive
// update maintenance transactions over the same pool. Both sides are
// open-loop: the sweep offers a FIXED aggregate update rate spread evenly
// across the writer threads, and each reader issues one read per fixed
// think-time slot. Growing W therefore scales how many writers hold key X
// locks concurrently — the variable under test — without scaling CPU
// demand, and reader throughput measures whether readers meet their
// offered rate, not what share of the machine the scheduler hands them
// (closed-loop threads would turn the flatness claim into a CPU-share
// measurement on small machines). With mvcc_reads off the readers'
// table-granularity S locks collide with the writers' key X locks
// (wait-die kills the younger reader), so reads miss their slots and pay
// multi-millisecond tails; with it on the readers probe pinned snapshots
// and hold zero locks, so reader throughput and tail latency stay flat as
// writers are added. The mvcc-on cells assert that flatness in-bench: reader
// throughput at {4, 8} writers must stay >= 0.8x the same reader count's
// single-writer baseline, with zero reader lock acquisitions and zero
// reader aborts. Written to BENCH_contention_mixed.json.
//
// An escrow sweep measures value locks on aggregate views instead
// (SystemConfig::escrow_aggregates): every updater's transaction folds into
// ONE COUNT/SUM group (a constant grouped attribute; join keys spread so
// nothing else is hot), so under eager maintenance the group row's X lock
// serializes all commits across their WAL forces. With
// escrow on, the increments take compatible V locks and apply in place, so
// commits overlap and group commit amortizes the forces. The escrow-on
// cells assert in-bench that committed throughput at 8 threads is >= 2x the
// eager X-lock baseline with ZERO client-visible aborts, and every cell
// ends with the from-scratch oracle + an empty lock table and escrow
// journal. Written to BENCH_contention_escrow.json.
//
// Usage: bench_contention [txns_per_thread] [nodes] [sweep]
//   sweep = "full" (default): modes {baseline, scalable} x policies x
//           key pools {1, 8, 64, 1024} x threads {1, 2, 4, 8}
//   sweep = "ci": just the two wait-die cells CI compares (8 threads,
//           64 keys, baseline vs scalable)
//   sweep = "bulk": the escalation-threshold sweep; [txns_per_thread] is
//           reinterpreted as rows in the single bulk delta
//   sweep = "mixed": the MVCC read/write grid, readers {1, 2, 4, 8} x
//           writers {1, 4, 8} x mvcc_reads {off, on}
//   sweep = "mixed-ci": the four mixed cells CI smokes (2 readers,
//           writers {1, 8}, mvcc off vs on)
//   sweep = "escrow": the aggregate hot-group grid, escrow {off, on} x
//           threads {1, 2, 4, 8} on a 1-key COUNT/SUM hotspot
//   sweep = "escrow-ci": the two 8-thread escrow cells CI smokes (off vs
//           on), with the >= 2x speedup and zero-abort asserts

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "txn/lock_manager.h"
#include "view/explain.h"

namespace pjvm::bench {
namespace {

// The simulated WAL device: 5ms per force in BOTH modes, so the baseline
// pays it once per commit per participant node while group commit amortizes
// it across a leader round.
constexpr uint64_t kForceNs = 5'000'000;
constexpr int kWindowUs = 50;

struct ContentionConfig {
  int txns_per_thread = 50;
  int nodes = 4;
  bool ci_only = false;
  bool bulk = false;
  bool mixed = false;
  bool escrow = false;
};

/// One sweep cell: an engine mode x lock policy x load shape.
struct Cell {
  std::string mode;  // "baseline" or "scalable"
  LockPolicy policy = LockPolicy::kWaitDie;
  int threads = 1;
  int64_t key_pool = 1;
};

struct CellResult {
  Cell cell;
  uint64_t committed = 0;
  uint64_t client_aborts = 0;
  double wall_ms = 0.0;
  double committed_per_sec = 0.0;
  uint64_t deadlock_kills = 0;
  uint64_t wounds = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_wait_timeouts = 0;
  uint64_t shard_contention = 0;
  uint64_t maintain_retries = 0;
  uint64_t group_commit_rounds = 0;
  HistogramData latency;
};

CellResult RunCell(const ContentionConfig& cc, const Cell& cell) {
  CellResult result;
  result.cell = cell;
  const bool baseline = cell.mode == "baseline";

  SystemConfig cfg;
  cfg.num_nodes = cc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = cell.policy;
  cfg.lock_wait_timeout_ms = 500;
  // Under no-wait every conflict surfaces to the client; under the blocking
  // policies the maintenance retry loop absorbs them.
  // Commits hold their locks across multi-millisecond forces, so blocked
  // maintenance needs a deeper retry budget than the default before the
  // abort becomes client-visible.
  cfg.maintain_max_attempts = cell.policy == LockPolicy::kNoWait ? 1 : 16;
  cfg.maintain_retry_base_us = 100;
  // The mode switch: everything this PR added, on or off together.
  cfg.lock_shards = baseline ? 1 : 16;
  cfg.rw_latches = !baseline;
  cfg.wal_force_ns = kForceNs;
  cfg.group_commit = !baseline;
  cfg.group_commit_window_us = kWindowUs;
  ParallelSystem sys(cfg);

  // The paper's two-relation setup, with a tiny B key domain so concurrent
  // updaters collide on the same AR index-key locks.
  TwoTableConfig tt;
  tt.b_join_keys = cell.key_pool;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kAuxRelation)
      .Check();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t kills0 = metrics.counter("pjvm_lock_deadlock_kills")->value();
  const uint64_t wounds0 = metrics.counter("pjvm_lock_wounds")->value();
  const uint64_t waits0 = metrics.counter("pjvm_lock_waits")->value();
  const uint64_t touts0 = metrics.counter("pjvm_lock_wait_timeouts")->value();
  const uint64_t shard0 =
      metrics.counter("pjvm_lock_shard_contention")->value();
  const uint64_t retries0 = metrics.counter("pjvm_maintain_retries")->value();
  const uint64_t rounds0 =
      metrics.histogram("pjvm_group_commit_batch_size")->Snapshot().count;

  LatencyHistogram latency;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> client_aborts{0};

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> updaters;
  updaters.reserve(cell.threads);
  for (int t = 0; t < cell.threads; ++t) {
    updaters.emplace_back([&, t] {
      for (int i = 0; i < cc.txns_per_thread; ++i) {
        // Unique A key per logical transaction; the join attribute cycles
        // through B's small key pool, so concurrent transactions hit the
        // same AR index-key locks.
        Row row = MakeDeltaA(tt, static_cast<int64_t>(t) * 1000000 + i);
        auto t0 = std::chrono::steady_clock::now();
        // The client's contract is "this update happens": a client-visible
        // abort means re-submitting the whole transaction.
        for (;;) {
          auto report = manager.InsertRow("A", row);
          if (report.ok()) break;
          if (!report.status().IsAborted()) report.status().Check();
          client_aborts.fetch_add(1);
        }
        auto t1 = std::chrono::steady_clock::now();
        committed.fetch_add(1);
        latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (auto& th : updaters) th.join();
  auto end = std::chrono::steady_clock::now();

  result.committed = committed.load();
  result.client_aborts = client_aborts.load();
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  result.committed_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.committed / result.wall_ms : 0.0;
  result.deadlock_kills =
      metrics.counter("pjvm_lock_deadlock_kills")->value() - kills0;
  result.wounds = metrics.counter("pjvm_lock_wounds")->value() - wounds0;
  result.lock_waits = metrics.counter("pjvm_lock_waits")->value() - waits0;
  result.lock_wait_timeouts =
      metrics.counter("pjvm_lock_wait_timeouts")->value() - touts0;
  result.shard_contention =
      metrics.counter("pjvm_lock_shard_contention")->value() - shard0;
  result.maintain_retries =
      metrics.counter("pjvm_maintain_retries")->value() - retries0;
  result.group_commit_rounds =
      metrics.histogram("pjvm_group_commit_batch_size")->Snapshot().count -
      rounds0;
  result.latency = latency.Snapshot();

  // The whole point of running maintenance inside the transaction: however
  // the interleaving went, the view must equal the from-scratch join.
  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after quiesce").Check();
  }
  return result;
}

std::string CellJson(const CellResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("mode").Str(r.cell.mode)
      .Key("policy").Str(LockPolicyToString(r.cell.policy))
      .Key("threads").Int(r.cell.threads)
      .Key("key_pool").Int(r.cell.key_pool)
      .Key("committed").Uint(r.committed)
      .Key("client_visible_aborts").Uint(r.client_aborts)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("committed_per_sec").Num(r.committed_per_sec)
      .Key("deadlock_kills").Uint(r.deadlock_kills)
      .Key("wounds").Uint(r.wounds)
      .Key("lock_waits").Uint(r.lock_waits)
      .Key("lock_wait_timeouts").Uint(r.lock_wait_timeouts)
      .Key("shard_contention").Uint(r.shard_contention)
      .Key("maintain_retries").Uint(r.maintain_retries)
      .Key("group_commit_rounds").Uint(r.group_commit_rounds)
      .Key("client_latency_ns").Raw(LatencyJson(r.latency))
      .EndObject();
  return w.str();
}

// ------------------------------------------------ bulk escalation sweep

struct BulkResult {
  int threshold = 0;
  int rows = 0;
  double wall_ms = 0.0;
  double rows_per_sec = 0.0;
  size_t peak_shard_entries = 0;
  uint64_t escalations = 0;
  uint64_t entries_reclaimed = 0;
  uint64_t analysis_escalations = 0;
  uint64_t analysis_entries_reclaimed = 0;
};

BulkResult RunBulkCell(const ContentionConfig& cc, int threshold) {
  BulkResult result;
  result.threshold = threshold;
  result.rows = cc.txns_per_thread;

  SystemConfig cfg;
  cfg.num_nodes = cc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 500;
  cfg.maintain_max_attempts = 16;
  cfg.maintain_retry_base_us = 100;
  cfg.lock_shards = 16;
  cfg.rw_latches = true;
  // No WAL device: the bulk cell isolates lock-table bookkeeping, so the
  // run is compute-bound rather than dominated by a simulated force.
  cfg.wal_force_ns = 0;
  cfg.lock_escalation_threshold = threshold;
  ParallelSystem sys(cfg);

  TwoTableConfig tt;
  tt.b_join_keys = 64;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kAuxRelation)
      .Check();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t esc0 = metrics.counter("pjvm_lock_escalations")->value();
  const uint64_t rec0 =
      metrics.counter("pjvm_lock_entries_reclaimed")->value();
  sys.locks().ResetPeakEntries();

  std::vector<Row> rows;
  rows.reserve(result.rows);
  for (int i = 0; i < result.rows; ++i) {
    rows.push_back(MakeDeltaA(tt, 1'000'000 + i));
  }
  MaintenanceAnalysis analysis;
  auto start = std::chrono::steady_clock::now();
  manager.ApplyDelta(DeltaBatch::Inserts("A", std::move(rows)), &analysis)
      .status()
      .Check();
  auto end = std::chrono::steady_clock::now();

  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  result.rows_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.rows / result.wall_ms : 0.0;
  result.peak_shard_entries = sys.locks().PeakShardEntries();
  result.escalations =
      metrics.counter("pjvm_lock_escalations")->value() - esc0;
  result.entries_reclaimed =
      metrics.counter("pjvm_lock_entries_reclaimed")->value() - rec0;
  result.analysis_escalations = analysis.escalations;
  result.analysis_entries_reclaimed = analysis.lock_entries_reclaimed;

  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after bulk delta").Check();
  }
  return result;
}

std::string BulkJson(const BulkResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("threshold").Int(r.threshold)
      .Key("rows").Int(r.rows)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("rows_per_sec").Num(r.rows_per_sec)
      .Key("peak_shard_entries").Uint(r.peak_shard_entries)
      .Key("escalations").Uint(r.escalations)
      .Key("entries_reclaimed").Uint(r.entries_reclaimed)
      .Key("analysis_escalations").Uint(r.analysis_escalations)
      .Key("analysis_entries_reclaimed").Uint(r.analysis_entries_reclaimed)
      .EndObject();
  return w.str();
}

void RunBulk(const ContentionConfig& cc) {
  PrintHeader("bulk escalation sweep: " +
              std::to_string(cc.txns_per_thread) + " rows, " +
              std::to_string(cc.nodes) + " nodes");
  BenchReport report("contention_bulk");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("rows").Int(cc.txns_per_thread)
        .Key("nodes").Int(cc.nodes)
        .EndObject();
    report.Add("config", w.str());
  }
  JsonWriter sweep;
  sweep.BeginArray();
  for (int threshold : {0, 64, 256, 1024}) {
    BulkResult r = RunBulkCell(cc, threshold);
    std::cout << "threshold="
              << (r.threshold == 0 ? std::string("off")
                                   : std::to_string(r.threshold))
              << ": rows=" << r.rows << " wall_ms=" << r.wall_ms
              << " rows_per_sec=" << r.rows_per_sec
              << " peak_shard_entries=" << r.peak_shard_entries
              << " escalations=" << r.escalations
              << " reclaimed=" << r.entries_reclaimed << "\n";
    sweep.Raw(BulkJson(r));
  }
  sweep.EndArray();
  report.Add("sweep", sweep.str());
  report.Write();
}

// ------------------------------------------------ mixed read/write sweep

/// Preloaded A rows the mixed cells read and update. Small enough that the
/// writers' key locks blanket the table, large enough that every writer
/// count in the grid owns a disjoint slice.
constexpr int64_t kMixedPool = 64;
// A cheaper simulated force than the write-only sweep's: writer commits
// still hold locks across a multi-millisecond window, but a cell is not
// dominated by WAL sleeps.
constexpr uint64_t kMixedForceNs = 2'000'000;
// Aggregate spacing of the open-loop writer schedule: one update is
// offered every 8ms regardless of W (writer w fires txn i at cell start +
// (i*W + w) * spacing, so the offered load is uniform and W only changes
// how many writers can be mid-transaction at once). 125 updates/s sits
// below what one writer sustains closed-loop even with readers
// interfering, so the schedule never falls behind.
constexpr int64_t kMixedWriterSpacingUs = 8'000;
// Per-reader think time: each reader offers one read per 500us slot
// (2000 reads/s/reader). A snapshot read costs ~10us, so even 8 readers
// plus the writer load fit in a fraction of one core — a reader that
// misses slots is blocked on the lock protocol, not starved of CPU.
constexpr int64_t kMixedReaderPeriodUs = 500;

struct MixedCell {
  bool mvcc = false;
  int readers = 1;
  int writers = 1;
};

struct MixedResult {
  MixedCell cell;
  uint64_t writer_committed = 0;
  uint64_t reader_reads = 0;
  /// Wait-die kills of reader transactions (client-visible Aborted).
  uint64_t reader_aborts = 0;
  /// Sum over successful reads of locks().HeldCount(reader txn) sampled
  /// just before commit: the direct "readers acquire zero locks" evidence.
  uint64_t reader_locks_held = 0;
  double wall_ms = 0.0;
  double reader_reads_per_sec = 0.0;
  double writer_committed_per_sec = 0.0;
  HistogramData read_latency;
};

MixedResult RunMixedCell(const ContentionConfig& cc, const MixedCell& cell) {
  MixedResult result;
  result.cell = cell;

  SystemConfig cfg;
  cfg.num_nodes = cc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 500;
  cfg.maintain_max_attempts = 16;
  cfg.maintain_retry_base_us = 100;
  cfg.lock_shards = 16;
  cfg.rw_latches = true;
  cfg.wal_force_ns = kMixedForceNs;
  cfg.group_commit = true;
  cfg.group_commit_window_us = kWindowUs;
  cfg.mvcc_reads = cell.mvcc;
  ParallelSystem sys(cfg);

  TwoTableConfig tt;
  tt.b_join_keys = 16;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  // The shared A pool goes in before the view registers, so backfill
  // materializes its join rows.
  for (int64_t k = 0; k < kMixedPool; ++k) {
    sys.Insert("A", MakeDeltaA(tt, k)).Check();
  }
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kAuxRelation)
      .Check();

  LatencyHistogram read_latency;
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> writer_committed{0};
  std::atomic<uint64_t> reader_reads{0};
  std::atomic<uint64_t> reader_aborts{0};
  std::atomic<uint64_t> reader_locks_held{0};

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cell.writers + cell.readers);
  for (int w = 0; w < cell.writers; ++w) {
    threads.emplace_back([&, w] {
      // Each writer owns the pool keys congruent to it mod W, so writers
      // never contend with each other on base rows (their collisions are on
      // the AR/JV structures); each tracks its rows' current images so the
      // update's delete half matches exactly.
      std::vector<Row> owned;
      for (int64_t k = w; k < kMixedPool; k += cell.writers) {
        owned.push_back(MakeDeltaA(tt, k));
      }
      const auto spacing = std::chrono::microseconds(kMixedWriterSpacingUs);
      for (int i = 0; i < cc.txns_per_thread; ++i) {
        // Open-loop schedule: this writer's slot in the fixed aggregate
        // offered rate (see kMixedWriterSpacingUs). A no-op if the cell
        // has fallen behind schedule.
        std::this_thread::sleep_until(
            start + spacing * (int64_t{i} * cell.writers + w));
        Row& row = owned[i % owned.size()];
        Row next = row;
        next[2] = Value{next[2].AsInt64() + kMixedPool * 3};
        for (;;) {
          auto report = manager.UpdateRow("A", row, next);
          if (report.ok()) break;
          if (!report.status().IsAborted()) report.status().Check();
        }
        row = next;
        writer_committed.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < cell.readers; ++r) {
    threads.emplace_back([&, r] {
      // Probe the join attribute: A has no index on c, so the mvcc-off path
      // takes a table-granularity S lock per node — squarely in conflict
      // with every writer's key X locks — while the mvcc-on path reads a
      // pinned snapshot and locks nothing.
      int64_t key = r;
      const auto period = std::chrono::microseconds(kMixedReaderPeriodUs);
      // Staggered open-loop slots (see kMixedReaderPeriodUs). Latency is
      // measured from the scheduled slot, not the actual start, so a
      // reader delayed by the lock protocol shows the backlog in its tail
      // (no coordinated omission).
      auto t0 = start + period * r / cell.readers;
      while (!writers_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_until(t0);
        bool read_ok = false;
        while (!read_ok && !writers_done.load(std::memory_order_relaxed)) {
          uint64_t txn = sys.Begin();
          Result<std::vector<Row>> rows =
              sys.SelectEq("A", "c", Value{key % tt.b_join_keys}, txn);
          if (rows.ok()) {
            reader_locks_held.fetch_add(sys.locks().HeldCount(txn));
            sys.Commit(txn).Check();
            read_ok = true;
          } else {
            if (!rows.status().IsAborted()) rows.status().Check();
            sys.Abort(txn);
            reader_aborts.fetch_add(1);
          }
        }
        if (!read_ok) break;
        auto t1 = std::chrono::steady_clock::now();
        reader_reads.fetch_add(1);
        read_latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        t0 += period;
        ++key;
      }
    });
  }
  for (int i = 0; i < cell.writers; ++i) threads[i].join();
  auto end = std::chrono::steady_clock::now();
  writers_done.store(true);
  for (size_t i = cell.writers; i < threads.size(); ++i) threads[i].join();

  result.writer_committed = writer_committed.load();
  result.reader_reads = reader_reads.load();
  result.reader_aborts = reader_aborts.load();
  result.reader_locks_held = reader_locks_held.load();
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  result.reader_reads_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.reader_reads / result.wall_ms
                           : 0.0;
  result.writer_committed_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.writer_committed / result.wall_ms
                           : 0.0;
  result.read_latency = read_latency.Snapshot();

  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after mixed cell").Check();
  }
  return result;
}

std::string MixedJson(const MixedResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("mvcc").Str(r.cell.mvcc ? "on" : "off")
      .Key("readers").Int(r.cell.readers)
      .Key("writers").Int(r.cell.writers)
      .Key("writer_committed").Uint(r.writer_committed)
      .Key("writer_committed_per_sec").Num(r.writer_committed_per_sec)
      .Key("reader_reads").Uint(r.reader_reads)
      .Key("reader_reads_per_sec").Num(r.reader_reads_per_sec)
      .Key("reader_aborts").Uint(r.reader_aborts)
      .Key("reader_locks_held").Uint(r.reader_locks_held)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("reader_latency_ns").Raw(LatencyJson(r.read_latency))
      .EndObject();
  return w.str();
}

void RunMixed(const ContentionConfig& cc) {
  const std::vector<int> reader_counts =
      cc.ci_only ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> writer_counts =
      cc.ci_only ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 8};
  PrintHeader("mixed read/write sweep: readers x writers x mvcc {off,on}, " +
              std::to_string(cc.txns_per_thread) + " txns/writer, " +
              std::to_string(cc.nodes) + " nodes");
  BenchReport report("contention_mixed");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("txns_per_writer").Int(cc.txns_per_thread)
        .Key("nodes").Int(cc.nodes)
        .Key("a_pool").Int(kMixedPool)
        .Key("b_join_keys").Int(16)
        .Key("wal_force_ns").Uint(kMixedForceNs)
        .Key("writer_spacing_us").Int(kMixedWriterSpacingUs)
        .Key("reader_period_us").Int(kMixedReaderPeriodUs)
        .Key("sweep").Str(cc.ci_only ? "mixed-ci" : "mixed")
        .EndObject();
    report.Add("config", w.str());
  }
  // results[mvcc][readers] -> per-writer-count cells, in writer_counts order.
  std::vector<MixedResult> all;
  JsonWriter sweep;
  sweep.BeginArray();
  for (bool mvcc : {false, true}) {
    for (int readers : reader_counts) {
      for (int writers : writer_counts) {
        MixedResult r = RunMixedCell(cc, {mvcc, readers, writers});
        std::cout << "mvcc=" << (mvcc ? "on" : "off")
                  << " readers=" << r.cell.readers
                  << " writers=" << r.cell.writers
                  << ": reads=" << r.reader_reads
                  << " reads/s=" << r.reader_reads_per_sec
                  << " read_p95=" << r.read_latency.P95() / 1e6 << "ms"
                  << " reader_aborts=" << r.reader_aborts
                  << " reader_locks=" << r.reader_locks_held
                  << " writes/s=" << r.writer_committed_per_sec << "\n";
        sweep.Raw(MixedJson(r));
        all.push_back(std::move(r));
      }
    }
  }
  sweep.EndArray();
  report.Add("sweep", sweep.str());
  report.Write();

  // The PR's claims, enforced in-bench for the mvcc-on cells: snapshot
  // readers acquire no locks and are never wait-die victims, and reader
  // throughput stays within 0.8x of the same reader count's single-writer
  // baseline as writers are added.
  for (const MixedResult& r : all) {
    if (!r.cell.mvcc) continue;
    if (r.reader_locks_held != 0) {
      Status::Internal("mvcc reader held locks").Check();
    }
    if (r.reader_aborts != 0) {
      Status::Internal("mvcc reader aborted").Check();
    }
  }
  for (int readers : reader_counts) {
    double base = 0.0;
    for (const MixedResult& r : all) {
      if (r.cell.mvcc && r.cell.readers == readers && r.cell.writers == 1) {
        base = r.reader_reads_per_sec;
      }
    }
    if (base <= 0.0) continue;
    for (const MixedResult& r : all) {
      if (!r.cell.mvcc || r.cell.readers != readers || r.cell.writers == 1) {
        continue;
      }
      if (r.reader_reads_per_sec < 0.8 * base) {
        Status::Internal(
            "mvcc reader throughput not flat: readers=" +
            std::to_string(readers) + " writers=" +
            std::to_string(r.cell.writers) + " " +
            std::to_string(r.reader_reads_per_sec) + "/s vs baseline " +
            std::to_string(base) + "/s")
            .Check();
      }
    }
  }
  std::cout << "mixed sweep asserts passed: mvcc readers lock-free and flat\n";
}

// ------------------------------------------------ escrow hot-group sweep

/// SELECT A.e, COUNT(*), SUM(B.f) over the model join, grouped on A.e: the
/// deltas keep e constant, so every maintenance transaction lands in ONE
/// group row, while their join attributes spread over B's full key pool —
/// the base tables and join structures see almost no key conflicts, so the
/// sweep isolates the view group's lock protocol (X vs V).
JoinViewDef MakeAggView() {
  JoinViewDef def;
  def.name = "AGG";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.aggregates = {{AggFn::kCount, {}}, {AggFn::kSum, {"B", "f"}}};
  def.group_by = {{"A", "e"}};
  return def;
}

/// The i-th hot-group delta: unique key, join attribute spread uniformly,
/// constant grouped attribute e = 0.
Row MakeHotGroupDeltaA(const TwoTableConfig& tt, int64_t i) {
  return {Value{i}, Value{i % tt.b_join_keys}, Value{int64_t{0}}};
}

struct EscrowResult {
  bool escrow = false;
  int threads = 1;
  uint64_t committed = 0;
  uint64_t client_aborts = 0;
  double wall_ms = 0.0;
  double committed_per_sec = 0.0;
  uint64_t escrow_ops = 0;
  uint64_t vlock_grants = 0;
  uint64_t vlock_upgrades = 0;
  uint64_t lock_waits = 0;
  uint64_t maintain_retries = 0;
  HistogramData latency;
};

EscrowResult RunEscrowCell(const ContentionConfig& cc, int threads,
                           bool escrow_on) {
  EscrowResult result;
  result.escrow = escrow_on;
  result.threads = threads;

  // The contention-scalable engine mode either way; the ONLY toggle between
  // the paired cells is the escrow knob, so the ratio isolates V locks.
  SystemConfig cfg;
  cfg.num_nodes = cc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 500;
  cfg.maintain_max_attempts = 16;
  cfg.maintain_retry_base_us = 100;
  cfg.lock_shards = 16;
  cfg.rw_latches = true;
  cfg.wal_force_ns = kForceNs;
  cfg.group_commit = true;
  cfg.group_commit_window_us = kWindowUs;
  cfg.escrow_aggregates = escrow_on;
  ParallelSystem sys(cfg);

  // Spread join keys, ONE group (see MakeHotGroupDeltaA): every inserted A
  // row contributes to the same COUNT/SUM group, the worst-case aggregate
  // hotspot, without a base-table key hotspot alongside it.
  TwoTableConfig tt;
  tt.b_join_keys = 64;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  // An anchor row born before the view registers: backfill materializes the
  // group, so the timed run is pure increments (no birth/death edges) and
  // the group can never die mid-run.
  sys.Insert("A", MakeHotGroupDeltaA(tt, 999'000'000)).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeAggView(), MaintenanceMethod::kNaive).Check();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t ops0 = metrics.counter("pjvm_escrow_ops")->value();
  const uint64_t grants0 = metrics.counter("pjvm_vlock_grants")->value();
  const uint64_t upg0 = metrics.counter("pjvm_vlock_upgrades")->value();
  const uint64_t waits0 = metrics.counter("pjvm_lock_waits")->value();
  const uint64_t retries0 = metrics.counter("pjvm_maintain_retries")->value();

  LatencyHistogram latency;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> client_aborts{0};

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> updaters;
  updaters.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    updaters.emplace_back([&, t] {
      for (int i = 0; i < cc.txns_per_thread; ++i) {
        Row row =
            MakeHotGroupDeltaA(tt, static_cast<int64_t>(t) * 1000000 + i);
        auto t0 = std::chrono::steady_clock::now();
        for (;;) {
          auto report = manager.InsertRow("A", row);
          if (report.ok()) break;
          if (!report.status().IsAborted()) report.status().Check();
          client_aborts.fetch_add(1);
        }
        auto t1 = std::chrono::steady_clock::now();
        committed.fetch_add(1);
        latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (auto& th : updaters) th.join();
  auto end = std::chrono::steady_clock::now();

  result.committed = committed.load();
  result.client_aborts = client_aborts.load();
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  result.committed_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.committed / result.wall_ms : 0.0;
  result.escrow_ops = metrics.counter("pjvm_escrow_ops")->value() - ops0;
  result.vlock_grants =
      metrics.counter("pjvm_vlock_grants")->value() - grants0;
  result.vlock_upgrades =
      metrics.counter("pjvm_vlock_upgrades")->value() - upg0;
  result.lock_waits = metrics.counter("pjvm_lock_waits")->value() - waits0;
  result.maintain_retries =
      metrics.counter("pjvm_maintain_retries")->value() - retries0;
  result.latency = latency.Snapshot();

  // Whatever the interleaving: the group equals the from-scratch join, the
  // lock table drained, and (escrow on) the journal settled to empty.
  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after escrow cell").Check();
  }
  if (escrow_on) {
    manager.escrow()->CheckConsistent().Check();
    if (result.escrow_ops == 0) {
      Status::Internal("escrow cell never took the V-lock path").Check();
    }
  }
  return result;
}

std::string EscrowJson(const EscrowResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("escrow").Str(r.escrow ? "on" : "off")
      .Key("threads").Int(r.threads)
      .Key("committed").Uint(r.committed)
      .Key("client_visible_aborts").Uint(r.client_aborts)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("committed_per_sec").Num(r.committed_per_sec)
      .Key("escrow_ops").Uint(r.escrow_ops)
      .Key("vlock_grants").Uint(r.vlock_grants)
      .Key("vlock_upgrades").Uint(r.vlock_upgrades)
      .Key("lock_waits").Uint(r.lock_waits)
      .Key("maintain_retries").Uint(r.maintain_retries)
      .Key("client_latency_ns").Raw(LatencyJson(r.latency))
      .EndObject();
  return w.str();
}

void RunEscrow(const ContentionConfig& cc) {
  const std::vector<int> thread_counts =
      cc.ci_only ? std::vector<int>{8} : std::vector<int>{1, 2, 4, 8};
  PrintHeader("escrow hot-group sweep: one COUNT/SUM group hotspot, escrow "
              "{off,on} x threads, " +
              std::to_string(cc.txns_per_thread) + " txns/thread, " +
              std::to_string(cc.nodes) + " nodes");
  BenchReport report("contention_escrow");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("txns_per_thread").Int(cc.txns_per_thread)
        .Key("nodes").Int(cc.nodes)
        .Key("b_join_keys").Int(64)
        .Key("wal_force_ns").Uint(kForceNs)
        .Key("group_commit_window_us").Int(kWindowUs)
        .Key("sweep").Str(cc.ci_only ? "escrow-ci" : "escrow")
        .EndObject();
    report.Add("config", w.str());
  }
  std::vector<EscrowResult> all;
  JsonWriter sweep;
  sweep.BeginArray();
  for (bool on : {false, true}) {
    for (int threads : thread_counts) {
      EscrowResult r = RunEscrowCell(cc, threads, on);
      std::cout << "escrow=" << (on ? "on" : "off")
                << " threads=" << r.threads << ": committed=" << r.committed
                << " aborts=" << r.client_aborts
                << " throughput=" << r.committed_per_sec << "/s"
                << " p95=" << r.latency.P95() / 1e6 << "ms"
                << " escrow_ops=" << r.escrow_ops
                << " upgrades=" << r.vlock_upgrades
                << " waits=" << r.lock_waits
                << " retries=" << r.maintain_retries << "\n";
      sweep.Raw(EscrowJson(r));
      all.push_back(std::move(r));
    }
  }
  sweep.EndArray();
  report.Add("sweep", sweep.str());
  report.Write();

  // The PR's claim, enforced in-bench: at 8 threads on the 1-key aggregate
  // hotspot, escrow commits >= 2x the eager X-lock baseline's throughput
  // with zero client-visible aborts.
  double eager8 = 0.0, escrow8 = 0.0;
  uint64_t escrow_aborts = 0;
  for (const EscrowResult& r : all) {
    if (r.threads == 8 && !r.escrow) eager8 = r.committed_per_sec;
    if (r.threads == 8 && r.escrow) escrow8 = r.committed_per_sec;
    if (r.escrow) escrow_aborts += r.client_aborts;
  }
  if (escrow_aborts != 0) {
    Status::Internal("escrow cells saw client-visible aborts").Check();
  }
  if (eager8 > 0.0 && escrow8 < 2.0 * eager8) {
    Status::Internal("escrow speedup below 2x at 8 threads: " +
                     std::to_string(escrow8) + "/s vs eager " +
                     std::to_string(eager8) + "/s")
        .Check();
  }
  std::cout << "escrow sweep asserts passed: "
            << (eager8 > 0.0 ? escrow8 / eager8 : 0.0)
            << "x at 8 threads, zero client-visible aborts\n";
}

std::vector<Cell> BuildSweep(const ContentionConfig& cc) {
  std::vector<Cell> cells;
  if (cc.ci_only) {
    // The throughput claim CI enforces: scalable wait-die must beat the
    // baseline by >= 2x at 8 threads over a 64-key pool.
    cells.push_back({"baseline", LockPolicy::kWaitDie, 8, 64});
    cells.push_back({"scalable", LockPolicy::kWaitDie, 8, 64});
    return cells;
  }
  const std::vector<int64_t> key_pools = {1, 8, 64, 1024};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int64_t keys : key_pools) {
    for (int threads : thread_counts) {
      // The baseline ran wait-die before this PR too; the policy ablation
      // (no-wait vs wait-die vs wound-wait) only makes sense on the
      // scalable path.
      cells.push_back({"baseline", LockPolicy::kWaitDie, threads, keys});
      for (LockPolicy policy : {LockPolicy::kNoWait, LockPolicy::kWaitDie,
                                LockPolicy::kWoundWait}) {
        cells.push_back({"scalable", policy, threads, keys});
      }
    }
  }
  return cells;
}

void Run(const ContentionConfig& cc) {
  if (cc.bulk) {
    RunBulk(cc);
    return;
  }
  if (cc.mixed) {
    RunMixed(cc);
    return;
  }
  if (cc.escrow) {
    RunEscrow(cc);
    return;
  }
  std::vector<Cell> cells = BuildSweep(cc);
  PrintHeader("contention sweep: " + std::to_string(cells.size()) +
              " cells x " + std::to_string(cc.txns_per_thread) +
              " txns/thread, " + std::to_string(cc.nodes) + " nodes");
  BenchReport report("contention");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("txns_per_thread").Int(cc.txns_per_thread)
        .Key("nodes").Int(cc.nodes)
        .Key("wal_force_ns").Uint(kForceNs)
        .Key("group_commit_window_us").Int(kWindowUs)
        .Key("sweep").Str(cc.ci_only ? "ci" : "full")
        .EndObject();
    report.Add("config", w.str());
  }
  JsonWriter sweep;
  sweep.BeginArray();
  for (const Cell& cell : cells) {
    CellResult r = RunCell(cc, cell);
    std::cout << r.cell.mode << "/" << LockPolicyToString(r.cell.policy)
              << " threads=" << r.cell.threads << " keys=" << r.cell.key_pool
              << ": committed=" << r.committed
              << " aborts=" << r.client_aborts
              << " throughput=" << r.committed_per_sec << "/s"
              << " p95=" << r.latency.P95() / 1e6 << "ms"
              << " kills=" << r.deadlock_kills << " wounds=" << r.wounds
              << " waits=" << r.lock_waits
              << " retries=" << r.maintain_retries
              << " gc_rounds=" << r.group_commit_rounds << "\n";
    sweep.Raw(CellJson(r));
  }
  sweep.EndArray();
  report.Add("sweep", sweep.str());
  report.Write();
}

}  // namespace
}  // namespace pjvm::bench

int main(int argc, char** argv) {
  pjvm::bench::ContentionConfig cc;
  if (argc > 1) cc.txns_per_thread = std::stoi(argv[1]);
  if (argc > 2) cc.nodes = std::stoi(argv[2]);
  if (argc > 3) {
    const std::string sweep = argv[3];
    cc.ci_only = sweep == "ci" || sweep == "mixed-ci" || sweep == "escrow-ci";
    cc.bulk = sweep == "bulk";
    cc.mixed = sweep == "mixed" || sweep == "mixed-ci";
    cc.escrow = sweep == "escrow" || sweep == "escrow-ci";
  }
  pjvm::bench::Run(cc);
  return 0;
}
