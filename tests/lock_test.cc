#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "common/worker_context.h"
#include "engine/node.h"
#include "engine/system.h"
#include "obs/metrics_registry.h"
#include "tests/view_test_util.h"
#include "txn/lock_manager.h"
#include "view/explain.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// ------------------------------------------------------------ LockManager

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).ok());
  EXPECT_EQ(lm.TotalLocks(), 2u);
}

TEST(LockManagerTest, ExclusiveConflictsAbortImmediately) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
  // Different keys do not conflict.
  EXPECT_TRUE(lm.Acquire(2, LockId::Key(0, "T", Value{6}), LockMode::kExclusive)
                  .ok());
}

TEST(LockManagerTest, ReacquisitionAndUpgrade) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  // Reacquire and upgrade by the sole holder are fine.
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, id, LockMode::kExclusive));
  // After the upgrade, others are locked out.
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReaders) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  LockId a = LockId::Key(0, "T", Value{1});
  LockId b = LockId::Key(1, "T", Value{2});
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, b, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.HeldCount(1), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_TRUE(lm.Acquire(2, a, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, TableLockCoversKeys) {
  LockManager lm;
  LockId table = LockId::Table(0, "T");
  LockId key = LockId::Key(0, "T", Value{5});
  // Writer holds a key; a scanner's table-S lock conflicts.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, table, LockMode::kShared).IsAborted());
  lm.ReleaseAll(1);
  // Scanner holds the table; a writer's key-X conflicts.
  ASSERT_TRUE(lm.Acquire(2, table, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).IsAborted());
  // But a reading probe is compatible with the table-S lock.
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
}

TEST(LockManagerTest, DifferentTablesAndNodesIndependent) {
  LockManager lm;
  ASSERT_TRUE(
      lm.Acquire(1, LockId::Table(0, "T"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, LockId::Table(0, "U"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(3, LockId::Table(1, "T"), LockMode::kExclusive).ok());
}

TEST(LockManagerTest, IndexKeyLocksDistinguishColumns) {
  LockManager lm;
  LockId c0 = LockId::IndexKey(0, "T", 0, Value{5});
  LockId c1 = LockId::IndexKey(0, "T", 1, Value{5});
  ASSERT_TRUE(lm.Acquire(1, c0, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, c1, LockMode::kExclusive).ok());
}

// -------------------------------------------------- Engine-level locking

SystemConfig LockingConfig(int nodes = 4) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  cfg.enable_locking = true;
  return cfg;
}

TableDef SimpleTable() {
  TableDef def;
  def.name = "T";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  def.partition = PartitionSpec::Hash("k");
  def.indexes.push_back(IndexSpec{"k", false});
  return def;
}

TEST(EngineLockingTest, ConflictingWritersAbort) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  uint64_t t2 = sys.Begin();
  Row row = {Value{7}, Value{1}};
  ASSERT_TRUE(sys.Insert("T", row, t1).ok());
  // Same row content (and same index keys): t2 must be refused.
  EXPECT_TRUE(sys.Insert("T", row, t2).IsAborted());
  // A different key is fine.
  EXPECT_TRUE(sys.Insert("T", {Value{8}, Value{1}}, t2).ok());
  ASSERT_TRUE(sys.Commit(t1).ok());
  ASSERT_TRUE(sys.Commit(t2).ok());
  EXPECT_EQ(sys.RowCount("T"), 2u);
}

TEST(EngineLockingTest, ReaderBlocksWriterOnSameIndexKey) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  ASSERT_TRUE(sys.Insert("T", {Value{7}, Value{1}}).ok());
  uint64_t reader = sys.Begin();
  int home = sys.HomeNodeForKey(Value{7});
  ASSERT_TRUE(sys.node(home)->IndexProbe("T", 0, Value{7}, reader).ok());
  uint64_t writer = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{7}, Value{2}}, writer).IsAborted());
  // No-wait policy: the refused transaction rolls back (releasing any locks
  // it picked up before the conflict).
  ASSERT_TRUE(sys.Abort(writer).ok());
  // Readers of the same key coexist.
  uint64_t reader2 = sys.Begin();
  EXPECT_TRUE(sys.node(home)->IndexProbe("T", 0, Value{7}, reader2).ok());
  ASSERT_TRUE(sys.Commit(reader).ok());
  ASSERT_TRUE(sys.Commit(reader2).ok());
  // Now the writer (a fresh txn; the old one aborted its statement) may go.
  uint64_t writer2 = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{7}, Value{2}}, writer2).ok());
  ASSERT_TRUE(sys.Commit(writer2).ok());
}

TEST(EngineLockingTest, CommitAndAbortReleaseLocks) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t1).ok());
  EXPECT_GT(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(sys.Commit(t1).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  uint64_t t2 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{2}, Value{2}}, t2).ok());
  ASSERT_TRUE(sys.Abort(t2).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
}

TEST(EngineLockingTest, AutocommitOpsAreNotLocked) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
}

TEST(EngineLockingTest, MaintenanceTransactionsSerializeOnConflicts) {
  // Two ViewManager deltas run back-to-back (each commits) — with locking
  // enabled, each must acquire and fully release its footprint.
  SystemConfig cfg = LockingConfig();
  ParallelSystem sys(cfg);
  sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
  sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
  for (int64_t k = 0; k < 10; ++k) {
    sys.Insert("B", {Value{k}, Value{k % 5}, Value{k}}).Check();
  }
  ViewManager manager(&sys);
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  ASSERT_TRUE(manager.RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(manager.InsertRow("A", {Value{i}, Value{i % 5}, Value{i}}).ok())
        << i;
    EXPECT_EQ(sys.locks().TotalLocks(), 0u) << "locks leaked after txn " << i;
  }
  ASSERT_TRUE(manager.CheckAllConsistent().ok())
      << manager.CheckAllConsistent();
}

// ------------------------------------------------------------- Wait-die

TEST(WaitDieTest, YoungerRequesterDiesImmediately) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(5000);
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  // txn 2 is younger than the holder: killed without parking (the 5 s
  // timeout would hang the test if it waited).
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
}

TEST(WaitDieTest, OlderRequesterWaitsUntilRelease) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(10000);
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread older([&] {
    Status st = lm.Acquire(1, id, LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st;
    acquired.store(true);
  });
  // The older transaction parks rather than dying...
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  // ...and is granted the lock once the younger holder releases.
  lm.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_TRUE(lm.Holds(1, id, LockMode::kExclusive));
}

TEST(WaitDieTest, WaitTimesOutWhenHolderNeverReleases) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(30);
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).ok());
  // Older waiter, but the holder never releases: bounded by the timeout.
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).IsAborted());
  EXPECT_FALSE(lm.Holds(1, id, LockMode::kExclusive));
}

TEST(WaitDieTest, OppositeOrderAcquisitionTerminates) {
  // txn 1 (older) holds a, txn 2 (younger) holds b; each then requests the
  // other's lock. Plain blocking 2PL deadlocks here; wait-die must kill the
  // younger and let the older proceed, in bounded time.
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(10000);
  LockId a = LockId::Key(0, "T", Value{1});
  LockId b = LockId::Key(0, "T", Value{2});
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, b, LockMode::kExclusive).ok());
  Status st1;
  std::thread older([&] { st1 = lm.Acquire(1, b, LockMode::kExclusive); });
  // Give the older transaction a moment to park on b.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The younger requests a, held by an older transaction: it dies.
  Status st2 = lm.Acquire(2, a, LockMode::kExclusive);
  EXPECT_TRUE(st2.IsAborted()) << st2;
  // The victim rolls back, which wakes and grants the older waiter.
  lm.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(st1.ok()) << st1;
  EXPECT_TRUE(lm.Holds(1, a, LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, b, LockMode::kExclusive));
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(WaitDieTest, MultiThreadStressTerminatesAndReleases) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(1000);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 100;
  constexpr int64_t kKeys = 4;  // small key space: plenty of conflicts
  std::atomic<uint64_t> next_txn{1};
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5eed + static_cast<uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        uint64_t txn = next_txn.fetch_add(1);
        bool ok = true;
        for (int j = 0; j < 2 && ok; ++j) {
          LockId id = LockId::Key(0, "T", Value{rng.UniformInt(0, kKeys - 1)});
          LockMode mode =
              rng.Bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
          ok = lm.Acquire(txn, id, mode).ok();
        }
        if (ok) commits.fetch_add(1);
        lm.ReleaseAll(txn);  // commit and abort both release everything
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_GT(commits.load(), 0u);
}

// ------------------------------------------------- Maintenance retry loop

SystemConfig WaitDieConfig(int max_attempts, int base_us) {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 4;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 200;
  cfg.maintain_max_attempts = max_attempts;
  cfg.maintain_retry_base_us = base_us;
  return cfg;
}

void RegisterSimpleView(ParallelSystem& sys, ViewManager& manager) {
  sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
  sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
  for (int64_t k = 0; k < 10; ++k) {
    sys.Insert("B", {Value{k}, Value{k % 5}, Value{k}}).Check();
  }
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  ASSERT_TRUE(manager.RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
}

TEST(MaintenanceRetryTest, RetriesUntilConflictClears) {
  ParallelSystem sys(WaitDieConfig(/*max_attempts=*/8, /*base_us=*/1000));
  ViewManager manager(&sys);
  RegisterSimpleView(sys, manager);
  // A raw transaction holds X locks on the row the maintenance transaction
  // needs. The maintenance txn is younger, so every attempt dies instantly;
  // the retry loop backs off until the blocker goes away.
  Row contested = {Value{100}, Value{1}, Value{1}};
  uint64_t blocker = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", contested, blocker).ok());
  Counter* retries = MetricsRegistry::Global().counter("pjvm_maintain_retries");
  const uint64_t retries_before = retries->value();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Abort (not commit): a raw insert bypasses view maintenance, so letting
    // it commit would legitimately diverge the view from its bases.
    sys.Abort(blocker).Check();
  });
  Result<MaintenanceReport> result = manager.InsertRow("A", contested);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(retries->value() - retries_before, 1u);
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(manager.CheckAllConsistent().ok());
}

TEST(MaintenanceRetryTest, ExhaustedRetriesSurfaceAborted) {
  ParallelSystem sys(WaitDieConfig(/*max_attempts=*/2, /*base_us=*/200));
  ViewManager manager(&sys);
  RegisterSimpleView(sys, manager);
  Row contested = {Value{100}, Value{1}, Value{1}};
  uint64_t blocker = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", contested, blocker).ok());
  // The blocker never releases: both attempts die and the Aborted status
  // reaches the client.
  Result<MaintenanceReport> result = manager.InsertRow("A", contested);
  EXPECT_TRUE(result.status().IsAborted()) << result.status();
  ASSERT_TRUE(sys.Abort(blocker).ok());
  // With the conflict gone the same delta goes through.
  ASSERT_TRUE(manager.InsertRow("A", contested).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(manager.CheckAllConsistent().ok());
}

// ------------------------------------------------------ Lock-table shards

TEST(LockShardTest, BookkeepingSpansShards) {
  // One transaction locking many (node, table) fragments lands in several
  // shards; the aggregate views and ReleaseAll must stitch them together.
  LockManager lm(/*num_shards=*/16);
  uint64_t txn = 1;
  const char* tables[] = {"A", "B", "C", "D"};
  for (int node = 0; node < 8; ++node) {
    for (const char* table : tables) {
      ASSERT_TRUE(
          lm.Acquire(txn, LockId::Key(node, table, Value{node}), LockMode::kExclusive)
              .ok());
    }
  }
  EXPECT_EQ(lm.HeldCount(txn), 32u);
  EXPECT_EQ(lm.TotalLocks(), 32u);
  EXPECT_TRUE(lm.Holds(txn, LockId::Key(3, "B", Value{3}), LockMode::kExclusive));
  lm.ReleaseAll(txn);
  EXPECT_EQ(lm.HeldCount(txn), 0u);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(LockShardTest, TableCoverageStaysWithinOneShard) {
  // Table-lock ↔ key-lock conflicts are detected across shard layouts: all
  // locks of one (node, table) fragment share a shard by construction.
  for (int shards : {1, 3, 16}) {
    LockManager lm(shards);
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{7}), LockMode::kExclusive).ok());
    EXPECT_TRUE(lm.Acquire(2, LockId::Table(0, "T"), LockMode::kExclusive)
                    .IsAborted());
    EXPECT_TRUE(
        lm.Acquire(2, LockId::Key(1, "T", Value{7}), LockMode::kExclusive).ok());
    lm.ReleaseAll(1);
    lm.ReleaseAll(2);
    EXPECT_EQ(lm.TotalLocks(), 0u);
  }
}

TEST(LockShardTest, ReshardIgnoredWhileLocksHeld) {
  LockManager lm(4);
  EXPECT_EQ(lm.num_shards(), 4);
  ASSERT_TRUE(
      lm.Acquire(1, LockId::Key(0, "T", Value{1}), LockMode::kShared).ok());
  lm.set_num_shards(8);  // must not strand the held lock
  EXPECT_EQ(lm.num_shards(), 4);
  lm.ReleaseAll(1);
  lm.set_num_shards(8);
  EXPECT_EQ(lm.num_shards(), 8);
}

TEST(LockShardTest, MultiThreadStressAcrossShards) {
  // The wait-die stress spread over many fragments, so acquires and
  // release-wakeups genuinely run on different shards concurrently.
  LockManager lm(16);
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(1000);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 100;
  constexpr int64_t kKeys = 4;
  const char* tables[] = {"A", "B", "C", "D"};
  std::atomic<uint64_t> next_txn{1};
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xfeed + static_cast<uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        uint64_t txn = next_txn.fetch_add(1);
        bool ok = true;
        for (int j = 0; j < 3 && ok; ++j) {
          LockId id = LockId::Key(static_cast<int>(rng.UniformInt(0, 3)),
                                  tables[rng.UniformInt(0, 3)],
                                  Value{rng.UniformInt(0, kKeys - 1)});
          LockMode mode =
              rng.Bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
          ok = lm.Acquire(txn, id, mode).ok();
        }
        if (ok) commits.fetch_add(1);
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_GT(commits.load(), 0u);
}

// ------------------------------------------------------------- Wound-wait

TEST(WoundWaitTest, YoungerRequesterWaitsForOlderHolder) {
  // Under wound-wait nobody self-dies: the younger requester parks behind
  // the older holder and acquires once it releases.
  LockManager lm;
  lm.set_policy(LockPolicy::kWoundWait);
  lm.set_wait_timeout_ms(1000);
  LockId id = LockId::Key(0, "T", Value{1});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread younger([&] {
    EXPECT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1);
  younger.join();
  EXPECT_TRUE(granted.load());
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(WoundWaitTest, OlderRequesterWoundsRunningHolder) {
  // The older requester wounds the younger holder and waits; the victim's
  // next Acquire aborts (even on a free resource), it releases, and the
  // older transaction is granted.
  LockManager lm;
  lm.set_policy(LockPolicy::kWoundWait);
  lm.set_wait_timeout_ms(1000);
  LockId contested = LockId::Key(0, "T", Value{1});
  LockId unrelated = LockId::Key(0, "T", Value{99});
  ASSERT_TRUE(lm.Acquire(2, contested, LockMode::kExclusive).ok());
  std::atomic<bool> older_granted{false};
  std::thread older([&] {
    EXPECT_TRUE(lm.Acquire(1, contested, LockMode::kExclusive).ok());
    older_granted.store(true);
  });
  // Wait until the wound lands, then act as the victim: abort and release.
  Status victim = Status::OK();
  for (int i = 0; i < 200 && victim.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    victim = lm.Acquire(2, unrelated, LockMode::kShared);
  }
  EXPECT_TRUE(victim.IsAborted()) << victim;
  EXPECT_NE(victim.ToString().find("wounded"), std::string::npos) << victim;
  EXPECT_FALSE(older_granted.load());
  lm.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(older_granted.load());
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(WoundWaitTest, ParkedVictimIsWokenByWound) {
  // Deadlock shape: txn1 holds B, txn2 holds A and parks on B; txn1 then
  // requests A, wounding the parked txn2, which wakes Aborted and releases —
  // so txn1 completes instead of deadlocking.
  LockManager lm;
  lm.set_policy(LockPolicy::kWoundWait);
  lm.set_wait_timeout_ms(2000);
  LockId a = LockId::Key(0, "T", Value{1});
  LockId b = LockId::Key(0, "T", Value{2});
  ASSERT_TRUE(lm.Acquire(1, b, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, a, LockMode::kExclusive).ok());
  std::thread victim([&] {
    Status st = lm.Acquire(2, b, LockMode::kExclusive);
    EXPECT_TRUE(st.IsAborted()) << st;
    EXPECT_NE(st.ToString().find("wounded"), std::string::npos) << st;
    lm.ReleaseAll(2);
  });
  // Let txn2 park on B before txn1 closes the cycle.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(lm.Acquire(1, a, LockMode::kExclusive).ok());
  victim.join();
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(WoundWaitTest, MultiThreadStressTerminatesAndReleases) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWoundWait);
  lm.set_wait_timeout_ms(1000);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 100;
  constexpr int64_t kKeys = 4;  // small key space: plenty of conflicts
  std::atomic<uint64_t> next_txn{1};
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5eed + static_cast<uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        uint64_t txn = next_txn.fetch_add(1);
        bool ok = true;
        for (int j = 0; j < 2 && ok; ++j) {
          LockId id = LockId::Key(0, "T", Value{rng.UniformInt(0, kKeys - 1)});
          LockMode mode =
              rng.Bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
          ok = lm.Acquire(txn, id, mode).ok();
        }
        if (ok) commits.fetch_add(1);
        lm.ReleaseAll(txn);  // commit and abort both release everything
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_GT(commits.load(), 0u);
}

TEST(WoundWaitTest, EngineMaintenanceCommitsUnderContention) {
  // Same scenario as MaintenanceRetryTest.RetriesUntilConflictClears, under
  // wound-wait: the maintenance transaction is younger than the blocker, so
  // it parks (instead of dying) and proceeds when the blocker aborts.
  SystemConfig cfg = WaitDieConfig(/*max_attempts=*/8, /*base_us=*/1000);
  cfg.lock_policy = LockPolicy::kWoundWait;
  ParallelSystem sys(cfg);
  ViewManager manager(&sys);
  RegisterSimpleView(sys, manager);
  Row contested = {Value{100}, Value{1}, Value{1}};
  uint64_t blocker = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", contested, blocker).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sys.Abort(blocker).Check();
  });
  Result<MaintenanceReport> result = manager.InsertRow("A", contested);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(manager.CheckAllConsistent().ok());
}

// --------------------------------------------------------- Lock escalation

TEST(LockEscalationTest, KeyLocksCollapseIntoFragmentLock) {
  LockManager lm;
  lm.set_escalation_threshold(4);
  Counter* escalations =
      MetricsRegistry::Global().counter("pjvm_lock_escalations");
  Counter* reclaimed =
      MetricsRegistry::Global().counter("pjvm_lock_entries_reclaimed");
  const uint64_t esc0 = escalations->value();
  const uint64_t rec0 = reclaimed->value();
  for (int64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  EXPECT_EQ(lm.TotalLocks(), 3u);
  // The threshold-crossing grant swaps the key entries for one fragment lock.
  ASSERT_TRUE(
      lm.Acquire(1, LockId::Key(0, "T", Value{3}), LockMode::kExclusive).ok());
  EXPECT_EQ(lm.TotalLocks(), 1u);
  EXPECT_EQ(lm.HeldCount(1), 1u);
  EXPECT_TRUE(lm.Holds(1, LockId::Table(0, "T"), LockMode::kExclusive));
  // Coverage: the reclaimed keys still count as held...
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(lm.Holds(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive))
        << k;
  }
  // ...and later key acquires are answered by the fragment lock without
  // creating new entries.
  ASSERT_TRUE(
      lm.Acquire(1, LockId::Key(0, "T", Value{99}), LockMode::kExclusive).ok());
  EXPECT_EQ(lm.TotalLocks(), 1u);
  EXPECT_EQ(escalations->value() - esc0, 1u);
  EXPECT_EQ(reclaimed->value() - rec0, 4u);
  LockManager::TxnEscalationStats stats = lm.EscalationStatsOf(1);
  EXPECT_EQ(stats.escalations, 1u);
  EXPECT_EQ(stats.entries_reclaimed, 4u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_EQ(lm.EscalationStatsOf(1).escalations, 0u);  // gone with the txn
  // The fragment is free again for others.
  EXPECT_TRUE(
      lm.Acquire(2, LockId::Key(0, "T", Value{0}), LockMode::kExclusive).ok());
}

TEST(LockEscalationTest, ThresholdZeroDisablesEscalation) {
  LockManager lm;  // default threshold: 0 (off)
  for (int64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  EXPECT_EQ(lm.TotalLocks(), 32u);
  EXPECT_EQ(lm.EscalationStatsOf(1).escalations, 0u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(LockEscalationTest, ReacquisitionDoesNotInflateTheCount) {
  // Re-granting an already-held key must not count toward the threshold:
  // only distinct key entries fill the lock table.
  LockManager lm;
  lm.set_escalation_threshold(4);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{0}), LockMode::kExclusive)
            .ok());
  }
  EXPECT_EQ(lm.TotalLocks(), 1u);
  EXPECT_EQ(lm.EscalationStatsOf(1).escalations, 0u);
  lm.ReleaseAll(1);
}

TEST(LockEscalationTest, EscalatedModeMatchesStrongestKeyLock) {
  // All-shared footprint escalates to a shared fragment lock: other readers
  // of the fragment proceed, a writer conflicts.
  LockManager lm;
  lm.set_escalation_threshold(4);
  for (int64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kShared).ok());
  }
  EXPECT_EQ(lm.TotalLocks(), 1u);
  EXPECT_TRUE(lm.Holds(1, LockId::Table(0, "T"), LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, LockId::Table(0, "T"), LockMode::kExclusive));
  EXPECT_TRUE(
      lm.Acquire(2, LockId::Key(0, "T", Value{50}), LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(3, LockId::Key(0, "T", Value{51}), LockMode::kExclusive)
                  .IsAborted());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);

  // One exclusive key in the footprint forces an exclusive fragment lock.
  LockManager lm2;
  lm2.set_escalation_threshold(4);
  ASSERT_TRUE(
      lm2.Acquire(1, LockId::Key(0, "T", Value{0}), LockMode::kExclusive).ok());
  for (int64_t k = 1; k < 4; ++k) {
    ASSERT_TRUE(
        lm2.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kShared).ok());
  }
  EXPECT_TRUE(lm2.Holds(1, LockId::Table(0, "T"), LockMode::kExclusive));
  EXPECT_TRUE(
      lm2.Acquire(2, LockId::Key(0, "T", Value{50}), LockMode::kShared)
          .IsAborted());
  lm2.ReleaseAll(1);
}

TEST(LockEscalationTest, FragmentsCountIndependently) {
  LockManager lm;
  lm.set_escalation_threshold(4);
  for (int64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(1, "T", Value{k}), LockMode::kExclusive)
            .ok());
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "U", Value{k}), LockMode::kExclusive)
            .ok());
  }
  // 3 keys on each of three fragments: below threshold everywhere.
  EXPECT_EQ(lm.TotalLocks(), 9u);
  // Crossing on (node 0, T) escalates only that fragment.
  ASSERT_TRUE(
      lm.Acquire(1, LockId::Key(0, "T", Value{3}), LockMode::kExclusive).ok());
  EXPECT_EQ(lm.TotalLocks(), 7u);  // 1 fragment lock + 3 + 3 key locks
  EXPECT_TRUE(lm.Holds(1, LockId::Table(0, "T"), LockMode::kExclusive));
  EXPECT_FALSE(lm.Holds(1, LockId::Table(1, "T"), LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, LockId::Table(0, "U"), LockMode::kShared));
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(LockEscalationTest, FailedEscalationAbortsTriggeringAcquire) {
  // Another transaction's key lock on the fragment blocks the escalated
  // fragment lock; under no-wait the threshold-crossing Acquire surfaces
  // Aborted, and the caller's rollback releases the keys it did get.
  LockManager lm;
  lm.set_escalation_threshold(4);
  ASSERT_TRUE(
      lm.Acquire(2, LockId::Key(0, "T", Value{99}), LockMode::kShared).ok());
  for (int64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  Status st = lm.Acquire(1, LockId::Key(0, "T", Value{3}), LockMode::kExclusive);
  EXPECT_TRUE(st.IsAborted()) << st;
  EXPECT_EQ(lm.EscalationStatsOf(1).escalations, 0u);
  // The key locks (including the just-granted trigger) stay intact until the
  // caller rolls back — the transaction never loses coverage mid-flight.
  EXPECT_EQ(lm.HeldCount(1), 4u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Holds(2, LockId::Key(0, "T", Value{99}), LockMode::kShared));
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(LockEscalationTest, EscalationDegradesToAbortWhenItMustNotBlock) {
  // An executor worker (or latch holder) may never park; when the fragment
  // lock would require waiting, the threshold-crossing Acquire aborts
  // instead — the same contract as any other would-wait in that context.
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(10000);  // would hang the test if it parked
  lm.set_escalation_threshold(4);
  ASSERT_TRUE(
      lm.Acquire(2, LockId::Key(0, "T", Value{99}), LockMode::kExclusive).ok());
  for (int64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  // txn 1 is older than the holder, so wait-die would normally park it.
  WorkerContext::is_executor_worker = true;
  Status st = lm.Acquire(1, LockId::Key(0, "T", Value{3}), LockMode::kExclusive);
  WorkerContext::is_executor_worker = false;
  EXPECT_TRUE(st.IsAborted()) << st;
  EXPECT_NE(st.ToString().find("non-blocking"), std::string::npos) << st;
  EXPECT_EQ(lm.EscalationStatsOf(1).escalations, 0u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(LockEscalationTest, WaitDieReclaimWakesParkedWaiterOntoFragmentLock) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(10000);
  lm.set_escalation_threshold(4);
  LockId contested = LockId::Key(0, "T", Value{0});
  // Younger txn 2 holds the contested key; older txn 1 parks on it.
  ASSERT_TRUE(lm.Acquire(2, contested, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread older([&] {
    Status st = lm.Acquire(1, contested, LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st;
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  // txn 2 crosses the threshold and escalates. The reclaim wakes the parked
  // waiter, which re-evaluates, now conflicts with the fragment lock, and
  // parks again (it is older than the holder, so wait-die lets it wait).
  for (int64_t k = 1; k < 4; ++k) {
    ASSERT_TRUE(
        lm.Acquire(2, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  EXPECT_EQ(lm.EscalationStatsOf(2).escalations, 1u);
  EXPECT_TRUE(lm.Holds(2, LockId::Table(0, "T"), LockMode::kExclusive));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  // The escalated holder finishing hands the key to the waiter.
  lm.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(granted.load());
  EXPECT_TRUE(lm.Holds(1, contested, LockMode::kExclusive));
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(LockEscalationTest, WoundWaitEscalationWoundsYoungerKeyHolder) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWoundWait);
  lm.set_wait_timeout_ms(2000);
  lm.set_escalation_threshold(4);
  ASSERT_TRUE(
      lm.Acquire(5, LockId::Key(0, "T", Value{99}), LockMode::kExclusive).ok());
  for (int64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  // The older txn 1 crosses the threshold: the escalated fragment acquire
  // wounds the younger key holder and parks until it releases.
  std::atomic<bool> escalated{false};
  std::thread older([&] {
    Status st =
        lm.Acquire(1, LockId::Key(0, "T", Value{3}), LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st;
    escalated.store(true);
  });
  // Act as the victim: its next acquire observes the wound and aborts.
  Status victim = Status::OK();
  for (int i = 0; i < 200 && victim.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    victim = lm.Acquire(5, LockId::Key(1, "T", Value{0}), LockMode::kShared);
  }
  EXPECT_TRUE(victim.IsAborted()) << victim;
  EXPECT_NE(victim.ToString().find("wounded"), std::string::npos) << victim;
  lm.ReleaseAll(5);
  older.join();
  EXPECT_TRUE(escalated.load());
  EXPECT_TRUE(lm.Holds(1, LockId::Table(0, "T"), LockMode::kExclusive));
  EXPECT_EQ(lm.EscalationStatsOf(1).escalations, 1u);
  EXPECT_EQ(lm.EscalationStatsOf(1).entries_reclaimed, 4u);
  EXPECT_EQ(lm.TotalLocks(), 1u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(LockEscalationTest, PeakShardEntriesTracksHighWaterMark) {
  LockManager lm(/*num_shards=*/1);
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(
        lm.Acquire(1, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  EXPECT_EQ(lm.PeakShardEntries(), 10u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.PeakShardEntries(), 10u);  // the peak persists past release
  lm.ResetPeakEntries();
  EXPECT_EQ(lm.PeakShardEntries(), 0u);
  // With escalation the same footprint peaks at threshold + 1 (the keys
  // plus the fragment lock, just before the reclaim), not the key count.
  lm.set_escalation_threshold(4);
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(
        lm.Acquire(2, LockId::Key(0, "T", Value{k}), LockMode::kExclusive)
            .ok());
  }
  EXPECT_EQ(lm.PeakShardEntries(), 5u);
  lm.ReleaseAll(2);
}

SystemConfig EscalationConfig(int threshold) {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 500;
  cfg.maintain_max_attempts = 8;
  cfg.maintain_retry_base_us = 1000;
  cfg.lock_escalation_threshold = threshold;
  return cfg;
}

TEST(LockEscalationTest, BulkDeltaEscalatesAndStaysConsistent) {
  // End to end: a bulk maintenance delta's per-row key locks collapse into
  // fragment locks, the peak lock-table footprint drops accordingly, and
  // the view still matches the from-scratch join.
  auto run = [](int threshold, uint64_t* escalations, size_t* peak) {
    ParallelSystem sys(EscalationConfig(threshold));
    ViewManager manager(&sys);
    RegisterSimpleView(sys, manager);
    std::vector<Row> rows;
    for (int64_t i = 0; i < 64; ++i) {
      rows.push_back({Value{1000 + i}, Value{i % 5}, Value{i}});
    }
    sys.locks().ResetPeakEntries();
    MaintenanceAnalysis analysis;
    manager.ApplyDelta(DeltaBatch::Inserts("A", std::move(rows)), &analysis)
        .status()
        .Check();
    EXPECT_EQ(sys.locks().TotalLocks(), 0u);
    ASSERT_TRUE(manager.CheckAllConsistent().ok());
    *escalations = analysis.escalations;
    *peak = sys.locks().PeakShardEntries();
  };
  uint64_t esc_off = 0, esc_on = 0;
  size_t peak_off = 0, peak_on = 0;
  run(/*threshold=*/0, &esc_off, &peak_off);
  run(/*threshold=*/8, &esc_on, &peak_on);
  EXPECT_EQ(esc_off, 0u);
  EXPECT_GT(esc_on, 0u);
  EXPECT_LT(peak_on, peak_off);
}

TEST(LockEscalationTest, MaintenanceRetryAbsorbsEscalationConflicts) {
  // A blocker's key lock on the delta's fragment makes the escalating
  // maintenance transaction abort (wait-die: the maintenance txn is
  // younger); the bounded retry loop absorbs the aborts and commits once
  // the blocker goes away.
  ParallelSystem sys(EscalationConfig(/*threshold=*/8));
  ViewManager manager(&sys);
  RegisterSimpleView(sys, manager);
  Row contested = {Value{100}, Value{1}, Value{1}};
  uint64_t blocker = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", contested, blocker).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sys.Abort(blocker).Check();
  });
  std::vector<Row> rows;
  for (int64_t i = 0; i < 64; ++i) {
    rows.push_back({Value{1000 + i}, Value{i % 5}, Value{i}});
  }
  MaintenanceAnalysis analysis;
  Result<MaintenanceReport> result =
      manager.ApplyDelta(DeltaBatch::Inserts("A", std::move(rows)), &analysis);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(analysis.escalations, 0u);
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(manager.CheckAllConsistent().ok());
}

// -------------------------------------------------- Reader/writer latches

TEST(NodeLatchTest, SharedHoldersOverlap) {
  NodeLatch latch;
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};
  auto reader = [&] {
    latch.AcquireShared();
    inside.fetch_add(1);
    // Spin until the other reader is inside too (bounded): overlap proves
    // shared mode admits concurrent readers.
    for (int i = 0; i < 2000 && inside.load() < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (inside.load() >= 2) both_seen.store(true);
    inside.fetch_sub(1);
    latch.ReleaseShared();
  };
  std::thread t1(reader), t2(reader);
  t1.join();
  t2.join();
  EXPECT_TRUE(both_seen.load());
}

TEST(NodeLatchTest, WriterExcludesReadersAndWriters) {
  NodeLatch latch;
  latch.AcquireExclusive();
  std::atomic<bool> reader_in{false};
  std::atomic<bool> writer_in{false};
  std::thread reader([&] {
    latch.AcquireShared();
    reader_in.store(true);
    latch.ReleaseShared();
  });
  std::thread writer([&] {
    latch.AcquireExclusive();
    writer_in.store(true);
    latch.ReleaseExclusive();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(reader_in.load());
  EXPECT_FALSE(writer_in.load());
  latch.ReleaseExclusive();
  reader.join();
  writer.join();
  EXPECT_TRUE(reader_in.load());
  EXPECT_TRUE(writer_in.load());
}

TEST(NodeLatchTest, ExclusiveIsReentrant) {
  NodeLatch latch;
  latch.AcquireExclusive();
  latch.AcquireExclusive();
  // Exclusive subsumes shared on the owning thread.
  latch.AcquireShared();
  latch.ReleaseShared();
  latch.ReleaseExclusive();
  latch.ReleaseExclusive();
  std::atomic<bool> acquired{false};
  std::thread other([&] {
    latch.AcquireExclusive();
    acquired.store(true);
    latch.ReleaseExclusive();
  });
  other.join();
  EXPECT_TRUE(acquired.load());
}

TEST(NodeLatchTest, NestedSharedSkipsWaitingWriterGate) {
  // A shared holder re-acquiring shared must not queue behind a waiting
  // writer — that would deadlock (writer waits for readers, reader waits
  // for writer).
  NodeLatch latch;
  latch.AcquireShared();
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    latch.AcquireExclusive();
    writer_in.store(true);
    latch.ReleaseExclusive();
  });
  // Give the writer time to start waiting, then nest a shared acquire.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_in.load());
  latch.AcquireShared();  // must not block
  latch.ReleaseShared();
  latch.ReleaseShared();
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(NodeLatchTest, RwDisabledMakesSharedExclusive) {
  // Baseline mode: shared degrades to the old exclusive recursive latch.
  NodeLatch latch;
  latch.set_rw_enabled(false);
  latch.AcquireShared();
  latch.AcquireShared();  // recursive, must not self-deadlock
  std::atomic<bool> other_in{false};
  std::thread other([&] {
    latch.AcquireShared();
    other_in.store(true);
    latch.ReleaseShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(other_in.load());  // "shared" excludes in baseline mode
  latch.ReleaseShared();
  latch.ReleaseShared();
  other.join();
  EXPECT_TRUE(other_in.load());
}

TEST(EngineLockingTest, CrashClearsLockTable) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t1).ok());
  sys.Crash();
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(sys.Recover().ok());
  uint64_t t2 = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t2).ok());
  ASSERT_TRUE(sys.Commit(t2).ok());
}

}  // namespace
}  // namespace pjvm
