#ifndef PJVM_COMMON_METRICS_H_
#define PJVM_COMMON_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pjvm {

/// \brief Unit costs for the four primitive operations of the paper's model
/// (Section 3.1): SEARCH, FETCH, INSERT (in I/Os) and SEND (network).
///
/// Defaults follow the paper: "SEARCH takes one I/O, FETCH takes one I/O, and
/// INSERT takes two I/Os", and "the time spent on SEND is much smaller than
/// the time spent on SEARCH, FETCH, and INSERT", so SEND contributes zero to
/// the I/O metric but is still counted as messages.
struct CostWeights {
  double search = 1.0;
  double fetch = 1.0;
  double insert = 2.0;
  double send = 0.0;
};

/// \brief Per-node activity counters for one node of the parallel system.
struct NodeCounters {
  uint64_t searches = 0;
  uint64_t fetches = 0;
  uint64_t inserts = 0;
  uint64_t sends = 0;
  uint64_t bytes_sent = 0;
  /// Breakdown of `inserts` (write I/Os) by what was written — base
  /// relations, auxiliary structures (ARs/GIs), and views. Lets experiments
  /// isolate the delta-join compute cost the way the paper's Section 3.3
  /// measurement does ("we only measured the time spent on the second
  /// step"), by subtracting the write categories all methods share.
  uint64_t base_writes = 0;
  uint64_t structure_writes = 0;
  uint64_t view_writes = 0;

  /// Weighted I/O total for this node (the paper's per-node work, which
  /// drives response time as the max over nodes).
  double IO(const CostWeights& w) const {
    return w.search * searches + w.fetch * fetches + w.insert * inserts +
           w.send * sends;
  }

  /// Weighted I/O excluding every write (the join-compute portion).
  double ComputeIO(const CostWeights& w) const {
    return w.search * searches + w.fetch * fetches;
  }

  NodeCounters& operator+=(const NodeCounters& o) {
    searches += o.searches;
    fetches += o.fetches;
    inserts += o.inserts;
    sends += o.sends;
    bytes_sent += o.bytes_sent;
    base_writes += o.base_writes;
    structure_writes += o.structure_writes;
    view_writes += o.view_writes;
    return *this;
  }
  friend NodeCounters operator-(NodeCounters a, const NodeCounters& b) {
    a.searches -= b.searches;
    a.fetches -= b.fetches;
    a.inserts -= b.inserts;
    a.sends -= b.sends;
    a.bytes_sent -= b.bytes_sent;
    a.base_writes -= b.base_writes;
    a.structure_writes -= b.structure_writes;
    a.view_writes -= b.view_writes;
    return a;
  }
};

/// \brief Metering for the whole parallel system: one NodeCounters per data
/// server node.
///
/// The two summary metrics mirror the paper's Section 3.1:
///  - TotalWorkload() — "the sum of the work done over all the nodes" (TW);
///  - ResponseTime()  — the max per-node work, i.e. the makespan when all
///    nodes proceed in parallel.
class CostTracker {
 public:
  explicit CostTracker(int num_nodes, CostWeights weights = CostWeights{})
      : weights_(weights), nodes_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const CostWeights& weights() const { return weights_; }

  /// Category of a write charge, for the per-category breakdown.
  enum class WriteKind { kBase, kStructure, kView };

  void ChargeSearch(int node, uint64_t n = 1) { nodes_[node].searches += n; }
  void ChargeFetch(int node, uint64_t n = 1) { nodes_[node].fetches += n; }
  void ChargeInsert(int node, uint64_t n = 1) { nodes_[node].inserts += n; }
  void ChargeWrite(int node, WriteKind kind) {
    nodes_[node].inserts += 1;
    switch (kind) {
      case WriteKind::kBase:
        nodes_[node].base_writes += 1;
        break;
      case WriteKind::kStructure:
        nodes_[node].structure_writes += 1;
        break;
      case WriteKind::kView:
        nodes_[node].view_writes += 1;
        break;
    }
  }
  /// Max over nodes of the join-compute I/O (searches + fetches only) — the
  /// paper's Figure 14 measurement.
  double ComputeResponseTime() const;
  void ChargeSend(int node, uint64_t bytes) {
    nodes_[node].sends += 1;
    nodes_[node].bytes_sent += bytes;
  }
  /// Charges extra I/Os that are not one of the three primitives (e.g. the
  /// page reads/writes of an external sort); counted as fetches.
  void ChargeIOPages(int node, uint64_t pages) { nodes_[node].fetches += pages; }

  const NodeCounters& node(int i) const { return nodes_[i]; }

  /// Sum over nodes of weighted I/O (the paper's TW).
  double TotalWorkload() const;
  /// Max over nodes of weighted I/O (response time in I/Os).
  double ResponseTime() const;
  /// Total message count across nodes.
  uint64_t TotalSends() const;
  /// Number of nodes that performed any work (I/O or sends) — used to verify
  /// the single-node / few-node / all-node locality claims.
  int NodesTouched() const;

  void Reset();

  /// Copies the current counters (for before/after diffs around a phase).
  std::vector<NodeCounters> Snapshot() const { return nodes_; }

  std::string ToString() const;

 private:
  CostWeights weights_;
  std::vector<NodeCounters> nodes_;
};

}  // namespace pjvm

#endif  // PJVM_COMMON_METRICS_H_
