#include "workload/tpcr.h"

#include "common/rng.h"

namespace pjvm {

Schema CustomerSchema() {
  return Schema({{"custkey", ValueType::kInt64},
                 {"acctbal", ValueType::kDouble},
                 {"name", ValueType::kString}});
}

Schema OrdersSchema() {
  return Schema({{"orderkey", ValueType::kInt64},
                 {"custkey", ValueType::kInt64},
                 {"totalprice", ValueType::kDouble}});
}

Schema LineitemSchema() {
  return Schema({{"orderkey", ValueType::kInt64},
                 {"partkey", ValueType::kInt64},
                 {"suppkey", ValueType::kInt64},
                 {"extendedprice", ValueType::kDouble},
                 {"discount", ValueType::kDouble}});
}

TableDef CustomerTableDef() {
  TableDef def;
  def.name = "customer";
  def.schema = CustomerSchema();
  def.partition = PartitionSpec::Hash("custkey");
  return def;
}

TableDef OrdersTableDef() {
  TableDef def;
  def.name = "orders";
  def.schema = OrdersSchema();
  def.partition = PartitionSpec::Hash("orderkey");
  def.indexes.push_back(IndexSpec{"custkey", /*clustered=*/false});
  return def;
}

TableDef LineitemTableDef() {
  TableDef def;
  def.name = "lineitem";
  def.schema = LineitemSchema();
  def.partition = PartitionSpec::Hash("partkey");
  def.indexes.push_back(IndexSpec{"orderkey", /*clustered=*/false});
  return def;
}

TpcrData GenerateTpcr(const TpcrConfig& config) {
  TpcrData data;
  data.config = config;
  Rng rng(config.seed);
  data.customer.reserve(config.customers);
  for (int64_t c = 0; c < config.customers; ++c) {
    data.customer.push_back(
        {Value{c}, Value{rng.UniformDouble() * 10000.0},
         Value{"Customer#" + std::to_string(c)}});
  }
  int64_t total_keys = config.customers + config.extra_customer_keys;
  int64_t orderkey = 0;
  data.orders.reserve(total_keys * config.orders_per_customer);
  for (int64_t c = 0; c < total_keys; ++c) {
    for (int o = 0; o < config.orders_per_customer; ++o) {
      data.orders.push_back(
          {Value{orderkey}, Value{c}, Value{rng.UniformDouble() * 100000.0}});
      for (int l = 0; l < config.lineitems_per_order; ++l) {
        data.lineitem.push_back({Value{orderkey},
                                 Value{rng.UniformInt(0, 9999)},
                                 Value{rng.UniformInt(0, 99)},
                                 Value{rng.UniformDouble() * 5000.0},
                                 Value{rng.UniformDouble() * 0.1}});
      }
      ++orderkey;
    }
  }
  return data;
}

Status LoadTpcr(ParallelSystem* sys, const TpcrData& data) {
  PJVM_RETURN_NOT_OK(sys->CreateTable(CustomerTableDef()));
  PJVM_RETURN_NOT_OK(sys->CreateTable(OrdersTableDef()));
  PJVM_RETURN_NOT_OK(sys->CreateTable(LineitemTableDef()));
  PJVM_RETURN_NOT_OK(sys->InsertMany("customer", data.customer));
  PJVM_RETURN_NOT_OK(sys->InsertMany("orders", data.orders));
  PJVM_RETURN_NOT_OK(sys->InsertMany("lineitem", data.lineitem));
  return Status::OK();
}

Row MakeDeltaCustomer(const TpcrConfig& config, int64_t i) {
  int64_t custkey = config.customers + (i % config.extra_customer_keys);
  return {Value{custkey}, Value{static_cast<double>(i)},
          Value{"DeltaCustomer#" + std::to_string(i)}};
}

JoinViewDef MakeJv1() {
  // create join view JV1 as select c.custkey, c.acctbal, o.orderkey,
  // o.totalprice from orders o, customer c where c.custkey = o.custkey;
  JoinViewDef def;
  def.name = "JV1";
  def.bases = {{"customer", "c"}, {"orders", "o"}};
  def.edges = {{{"c", "custkey"}, {"o", "custkey"}}};
  def.projection = {{"c", "custkey"},
                    {"c", "acctbal"},
                    {"o", "orderkey"},
                    {"o", "totalprice"}};
  def.partition_on = ColumnRef{"c", "custkey"};
  return def;
}

JoinViewDef MakeJv2() {
  // create join view JV2 as select c.custkey, c.acctbal, o.orderkey,
  // o.totalprice, l.discount, l.extendedprice from orders o, customer c,
  // lineitem l where c.custkey = o.custkey and o.orderkey = l.orderkey;
  JoinViewDef def;
  def.name = "JV2";
  def.bases = {{"customer", "c"}, {"orders", "o"}, {"lineitem", "l"}};
  def.edges = {{{"c", "custkey"}, {"o", "custkey"}},
               {{"o", "orderkey"}, {"l", "orderkey"}}};
  def.projection = {{"c", "custkey"},   {"c", "acctbal"},
                    {"o", "orderkey"},  {"o", "totalprice"},
                    {"l", "discount"},  {"l", "extendedprice"}};
  def.partition_on = ColumnRef{"c", "custkey"};
  return def;
}

std::vector<TableSizeRow> TableSizes(const ParallelSystem& sys) {
  std::vector<TableSizeRow> out;
  for (const char* name : {"customer", "orders", "lineitem"}) {
    TableSizeRow row;
    row.name = name;
    row.rows = sys.RowCount(name);
    row.bytes = sys.TableBytes(name);
    out.push_back(row);
  }
  return out;
}

}  // namespace pjvm
