#include "workload/openloop.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "workload/zipf.h"

namespace pjvm {

const char* ArrivalProcessToString(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kFixedRate: return "fixed";
  }
  return "?";
}

const char* OpClassToString(OpClass op) {
  switch (op) {
    case OpClass::kPointRead: return "point_read";
    case OpClass::kRangeScan: return "range_scan";
    case OpClass::kUpdate: return "update";
  }
  return "?";
}

std::vector<Arrival> BuildArrivalSchedule(const TenantSpec& spec,
                                          uint64_t duration_ns) {
  std::vector<Arrival> out;
  if (spec.rate_per_sec <= 0.0 || duration_ns == 0) return out;
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0x5bd1e995);
  const double gap_ns = 1e9 / spec.rate_per_sec;
  double point = std::max(0.0, spec.point_read_frac);
  double range = std::max(0.0, spec.range_scan_frac);
  double update = std::max(0.0, spec.update_frac);
  double total = point + range + update;
  if (total <= 0.0) {
    point = total = 1.0;  // Degenerate mix: everything a point read.
  }
  double t_ns = 0.0;
  for (;;) {
    if (spec.process == ArrivalProcess::kPoisson) {
      // Exponential gap via inverse CDF; UniformDouble() < 1 so the log
      // argument stays positive.
      t_ns += -std::log(1.0 - rng.UniformDouble()) * gap_ns;
    } else {
      t_ns += gap_ns;
    }
    if (t_ns >= static_cast<double>(duration_ns)) break;
    Arrival a;
    a.at_ns = static_cast<uint64_t>(t_ns);
    double dice = rng.UniformDouble() * total;
    a.op = dice < point             ? OpClass::kPointRead
           : dice < point + range   ? OpClass::kRangeScan
                                    : OpClass::kUpdate;
    out.push_back(a);
  }
  return out;
}

Status RegisterTenantViews(ViewManager* manager,
                           std::vector<TenantSpec>* tenants,
                           MaintenanceMethod method) {
  for (TenantSpec& spec : *tenants) {
    JoinViewDef def;
    def.name = "JV_" + spec.name;
    def.bases = {{"A", "A"}, {"B", "B"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}};
    def.partition_on = ColumnRef{"A", "e"};
    PJVM_RETURN_NOT_OK(manager->RegisterView(def, method));
    spec.view = def.name;
  }
  return Status::OK();
}

namespace {

/// Tenant row-id stride: keeps concurrently-updating tenants' A keys (and
/// hence their views' A-side rows) disjoint.
constexpr int64_t kTenantIdStride = 1'000'000'000;

/// One enqueued operation, fully materialized at schedule time so workers
/// never touch the (single-threaded) per-tenant generators.
struct PendingOp {
  int tenant = 0;
  OpClass op = OpClass::kPointRead;
  uint64_t scheduled_ns = 0;
  Value point_key;
  Value range_lo, range_hi;
  DeltaBatch batch;
};

/// MPMC FIFO queue with shutdown; Pop blocks until an op or done-and-empty.
class OpQueue {
 public:
  void Push(PendingOp op) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      q_.push_back(std::move(op));
    }
    cv_.notify_one();
  }

  bool Pop(PendingOp* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !q_.empty() || done_; });
    if (q_.empty()) return false;
    *out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  size_t Depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingOp> q_;
  bool done_ = false;
};

/// Lock-free accumulation for one (tenant, op class) pair.
struct Accum {
  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> resubmits{0};
  std::atomic<uint64_t> violations{0};
  LatencyHistogram latency;
  LatencyHistogram queue_wait;
  LatencyHistogram service;
  std::unique_ptr<WindowedHistogram> windowed;
};

std::vector<WindowQuantiles> ToWindowQuantiles(const WindowedHistogram& wh) {
  std::vector<WindowQuantiles> out;
  for (const WindowedHistogram::Window& w : wh.Windows()) {
    WindowQuantiles q;
    q.index = w.index;
    q.start_ms = static_cast<double>(w.start_ns) / 1e6;
    q.count = w.data.count;
    q.p50 = w.data.P50();
    q.p95 = w.data.P95();
    q.p99 = w.data.P99();
    q.mean = w.data.Mean();
    q.max = w.data.count > 0 ? static_cast<double>(w.data.max) : 0.0;
    out.push_back(q);
  }
  return out;
}

}  // namespace

OpenLoopDriver::OpenLoopDriver(ViewManager* manager, OpenLoopConfig config)
    : manager_(manager), config_(std::move(config)) {}

Result<OpenLoopResult> OpenLoopDriver::Run() {
  if (ran_) return Status::InvalidArgument("OpenLoopDriver::Run called twice");
  ran_ = true;
  if (config_.tenants.empty()) {
    return Status::InvalidArgument("open-loop config has no tenants");
  }
  ParallelSystem* sys = manager_->system();
  for (const TenantSpec& spec : config_.tenants) {
    if (manager_->view(spec.view) == nullptr) {
      return Status::NotFound("tenant '" + spec.name + "': view '" +
                              spec.view + "' is not registered");
    }
  }
  const int num_tenants = static_cast<int>(config_.tenants.size());
  const uint64_t duration_ns = config_.duration_ms * 1'000'000;
  const uint64_t window_ns = std::max<uint64_t>(1, config_.window_ms) * 1'000'000;
  // Windows are bucketed by scheduled arrival time, which is bounded by the
  // horizon — size the ring to retain every window of the run.
  const int num_windows = static_cast<int>(duration_ns / window_ns) + 2;

  // --- Per-tenant generator state (scheduler-thread-only once started). ---
  struct TenantRuntime {
    std::vector<Arrival> schedule;
    std::unique_ptr<ZipfGenerator> zipf;
    std::unique_ptr<UpdateStreamGenerator> stream;
    std::unique_ptr<Rng> read_rng;
    /// Upper bound of row ids this tenant's stream has handed out; point
    /// reads draw from [0, this) (a missed probe still pays its cost).
    int64_t issued_rows = 0;
  };
  std::vector<TenantRuntime> runtimes(num_tenants);
  for (int t = 0; t < num_tenants; ++t) {
    const TenantSpec& spec = config_.tenants[t];
    TenantRuntime& rt = runtimes[t];
    rt.schedule = BuildArrivalSchedule(spec, duration_ns);
    rt.zipf = std::make_unique<ZipfGenerator>(
        std::max<int64_t>(1, config_.b_join_keys), spec.zipf_theta,
        spec.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
    rt.read_rng = std::make_unique<Rng>(spec.seed ^ 0x0f0f0f0f0f0f0f0fULL);
    ZipfGenerator* zipf = rt.zipf.get();
    const int64_t base_id = kTenantIdStride * (t + 1);
    TenantRuntime* rt_ptr = &rt;
    rt.stream = std::make_unique<UpdateStreamGenerator>(
        "A", spec.update_mix, spec.seed,
        [zipf, base_id, rt_ptr](int64_t i) -> Row {
          const int64_t id = base_id + i;
          rt_ptr->issued_rows = i + 1;
          // Join attribute from the Zipf sampler: rank 0 is the hot key.
          return {Value{id}, Value{zipf->Next()}, Value{id * 3}};
        },
        [](const Row& row, Rng& rng) -> Row {
          // The updated image changes the non-key payload e, so maintenance
          // replaces the row's view tuples without moving its join edges.
          return {row[0], row[1],
                  Value{row[2].AsInt64() + 7 + static_cast<int64_t>(
                                                   rng.Next() % 1024)}};
        });
  }

  // Warmup: seed each tenant's live rows through full maintenance, before
  // any clock starts; excluded from every histogram and counter.
  for (int t = 0; t < num_tenants; ++t) {
    if (config_.warmup_rows_per_tenant <= 0) break;
    DeltaBatch batch =
        runtimes[t].stream->NextBatch(config_.warmup_rows_per_tenant);
    PJVM_RETURN_NOT_OK(manager_->ApplyDelta(std::move(batch)).status());
  }

  // --- Telemetry sinks. ---
  std::vector<std::array<Accum, kNumOpClasses>> accums(num_tenants);
  std::vector<std::unique_ptr<WindowedHistogram>> tenant_windows;
  for (int t = 0; t < num_tenants; ++t) {
    for (int o = 0; o < kNumOpClasses; ++o) {
      accums[t][o].windowed =
          std::make_unique<WindowedHistogram>(window_ns, num_windows);
    }
    tenant_windows.push_back(
        std::make_unique<WindowedHistogram>(window_ns, num_windows));
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (config_.publish_metrics) {
    reg.SetHelp("pjvm_slo_latency_ns",
                "Open-loop latency from scheduled arrival to completion");
    reg.SetHelp("pjvm_slo_queue_wait_ns",
                "Open-loop wait from scheduled arrival to dispatch");
    reg.SetHelp("pjvm_slo_service_ns",
                "Open-loop service time from dispatch to completion");
    reg.SetHelp("pjvm_slo_ops_offered", "Open-loop scheduled arrivals");
    reg.SetHelp("pjvm_slo_ops_completed", "Open-loop completed operations");
    reg.SetHelp("pjvm_slo_violations",
                "Open-loop completions over the tenant's SLO threshold");
  }

  OpQueue read_queue;
  std::vector<OpQueue> write_queues(num_tenants);
  std::atomic<uint64_t> last_completion_ns{0};
  Status first_error = Status::OK();
  std::mutex error_mu;

  const auto start = std::chrono::steady_clock::now();
  auto now_ns = [&start]() -> uint64_t {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  // --- The worker body: dispatch, execute, measure from scheduled time. ---
  auto execute = [&](PendingOp& op) {
    const TenantSpec& spec = config_.tenants[op.tenant];
    Accum& acc = accums[op.tenant][static_cast<int>(op.op)];
    const uint64_t dispatch_ns = now_ns();
    const uint64_t queue_wait =
        dispatch_ns > op.scheduled_ns ? dispatch_ns - op.scheduled_ns : 0;
    WorkloadTagScope tag_scope(
        WorkloadTag{spec.name, spec.view, OpClassToString(op.op)});
    bool ok = true;
    // The client's contract is "this op happens": an Aborted status (a
    // wait-die victim — possible for locking reads as well as for updates
    // that exhaust the ViewManager's bounded retry) is re-submitted as part
    // of the same arrival, and the re-submissions are counted.
    auto run_with_resubmit = [&](auto&& attempt) {
      for (;;) {
        Status st = attempt();
        if (st.ok()) return;
        if (!st.IsAborted()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
          ok = false;
          return;
        }
        acc.resubmits.fetch_add(1, std::memory_order_relaxed);
      }
    };
    switch (op.op) {
      case OpClass::kPointRead:
        run_with_resubmit([&] {
          return sys->SelectEq(spec.view, "A.e", op.point_key).status();
        });
        break;
      case OpClass::kRangeScan:
        run_with_resubmit([&] {
          return sys->SelectRange(spec.view, "A.c", op.range_lo, op.range_hi)
              .status();
        });
        break;
      case OpClass::kUpdate:
        run_with_resubmit(
            [&] { return manager_->ApplyDelta(op.batch).status(); });
        break;
    }
    const uint64_t end_ns = now_ns();
    uint64_t prev = last_completion_ns.load(std::memory_order_relaxed);
    while (end_ns > prev && !last_completion_ns.compare_exchange_weak(
                                prev, end_ns, std::memory_order_relaxed)) {
    }
    if (!ok) {
      acc.failed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const uint64_t latency =
        end_ns > op.scheduled_ns ? end_ns - op.scheduled_ns : 0;
    const uint64_t service = end_ns - dispatch_ns;
    acc.completed.fetch_add(1, std::memory_order_relaxed);
    acc.latency.Record(latency);
    acc.queue_wait.Record(queue_wait);
    acc.service.Record(service);
    acc.windowed->Record(latency, op.scheduled_ns);
    tenant_windows[op.tenant]->Record(latency, op.scheduled_ns);
    const bool violated = latency > spec.slo_ns;
    if (violated) acc.violations.fetch_add(1, std::memory_order_relaxed);
    if (config_.publish_metrics) {
      const std::vector<MetricLabel> labels = {
          {"tenant", spec.name}, {"op", OpClassToString(op.op)}};
      reg.windowed("pjvm_slo_latency_ns", labels, window_ns, num_windows)
          ->Record(latency, op.scheduled_ns);
      reg.histogram("pjvm_slo_queue_wait_ns", labels)->Record(queue_wait);
      reg.histogram("pjvm_slo_service_ns", labels)->Record(service);
      reg.counter("pjvm_slo_ops_completed", labels)->Increment();
      if (violated) reg.counter("pjvm_slo_violations", labels)->Increment();
    }
  };

  // --- Threads: read pool, per-tenant writers, per-tenant schedulers. ---
  std::vector<std::thread> threads;
  const int read_workers = std::max(1, config_.read_workers);
  threads.reserve(read_workers + 2 * num_tenants);
  for (int w = 0; w < read_workers; ++w) {
    threads.emplace_back([&] {
      PendingOp op;
      while (read_queue.Pop(&op)) execute(op);
    });
  }
  for (int t = 0; t < num_tenants; ++t) {
    threads.emplace_back([&, t] {
      PendingOp op;
      while (write_queues[t].Pop(&op)) execute(op);
    });
  }
  std::vector<std::thread> schedulers;
  schedulers.reserve(num_tenants);
  for (int t = 0; t < num_tenants; ++t) {
    schedulers.emplace_back([&, t] {
      const TenantSpec& spec = config_.tenants[t];
      TenantRuntime& rt = runtimes[t];
      const int64_t key_domain = std::max<int64_t>(1, config_.b_join_keys);
      const int64_t range_span = std::max<int64_t>(1, key_domain / 8);
      for (const Arrival& arrival : rt.schedule) {
        PendingOp op;
        op.tenant = t;
        op.op = arrival.op;
        op.scheduled_ns = arrival.at_ns;
        switch (arrival.op) {
          case OpClass::kPointRead: {
            // Probe the view's partitioning attribute (A.e = 3 * row id):
            // routed to one node, over the tenant's own id range.
            const int64_t hi = std::max<int64_t>(1, rt.issued_rows);
            const int64_t id = kTenantIdStride * (t + 1) +
                               rt.read_rng->UniformInt(0, hi - 1);
            op.point_key = Value{id * 3};
            break;
          }
          case OpClass::kRangeScan: {
            const int64_t lo = rt.read_rng->UniformInt(0, key_domain - 1);
            op.range_lo = Value{lo};
            op.range_hi = Value{lo + range_span};
            break;
          }
          case OpClass::kUpdate: {
            // Materialized here, in schedule order, so the stream's
            // delete/update targets are applied FIFO by this tenant's
            // single writer thread.
            op.batch = rt.stream->NextBatch(spec.update_batch_rows);
            break;
          }
        }
        // Open-loop: release the op at its scheduled instant, never earlier
        // and regardless of whether earlier ops completed. sleep_until is a
        // no-op once the schedule is in the past.
        std::this_thread::sleep_until(
            start + std::chrono::nanoseconds(arrival.at_ns));
        accums[t][static_cast<int>(arrival.op)].offered.fetch_add(
            1, std::memory_order_relaxed);
        if (config_.publish_metrics) {
          reg.counter("pjvm_slo_ops_offered",
                      {{"tenant", spec.name},
                       {"op", OpClassToString(arrival.op)}})
              ->Increment();
        }
        if (arrival.op == OpClass::kUpdate) {
          write_queues[t].Push(std::move(op));
        } else {
          read_queue.Push(std::move(op));
        }
      }
    });
  }
  for (std::thread& th : schedulers) th.join();
  // All arrivals offered; let the workers drain the backlog and exit.
  read_queue.Close();
  for (OpQueue& q : write_queues) q.Close();
  for (std::thread& th : threads) th.join();

  {
    std::lock_guard<std::mutex> lock(error_mu);
    PJVM_RETURN_NOT_OK(first_error);
  }

  // --- Assemble the report. ---
  OpenLoopResult result;
  result.horizon_ms = static_cast<double>(config_.duration_ms);
  const uint64_t wall_ns = std::max(last_completion_ns.load(), duration_ns);
  result.wall_ms = static_cast<double>(wall_ns) / 1e6;
  const double wall_s = static_cast<double>(wall_ns) / 1e9;
  const double horizon_s = static_cast<double>(duration_ns) / 1e9;
  for (int t = 0; t < num_tenants; ++t) {
    TenantResult tr;
    tr.tenant = config_.tenants[t].name;
    for (int o = 0; o < kNumOpClasses; ++o) {
      Accum& acc = accums[t][o];
      OpClassStats& s = tr.ops[o];
      s.offered = acc.offered.load();
      s.completed = acc.completed.load();
      s.failed = acc.failed.load();
      s.resubmits = acc.resubmits.load();
      s.slo_violations = acc.violations.load();
      s.latency = acc.latency.Snapshot();
      s.queue_wait = acc.queue_wait.Snapshot();
      s.service = acc.service.Snapshot();
      s.windows = ToWindowQuantiles(*acc.windowed);
      tr.offered += s.offered;
      tr.completed += s.completed;
      tr.slo_violations += s.slo_violations;
    }
    tr.windows = ToWindowQuantiles(*tenant_windows[t]);
    tr.offered_per_sec =
        horizon_s > 0.0 ? static_cast<double>(tr.offered) / horizon_s : 0.0;
    tr.achieved_per_sec =
        wall_s > 0.0 ? static_cast<double>(tr.completed) / wall_s : 0.0;
    tr.goodput_per_sec =
        wall_s > 0.0
            ? static_cast<double>(tr.completed - tr.slo_violations) / wall_s
            : 0.0;
    result.total_offered += tr.offered;
    result.total_completed += tr.completed;
    result.tenants.push_back(std::move(tr));
  }
  return result;
}

}  // namespace pjvm
