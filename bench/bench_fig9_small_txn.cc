// Reproduces Figure 9: per-node response time of one transaction inserting
// 400 tuples, where index nested loops is the join method of choice. The
// auxiliary relation curve falls as 3|A|/L; the naive curve stays near |A|.

#include <iostream>

#include "bench/bench_util.h"
#include "model/figures.h"

int main() {
  pjvm::model::Figure fig = pjvm::model::MakeFigure9();
  pjvm::model::PrintFigure(fig, std::cout);
  pjvm::bench::WriteFigureJson("fig9_small_txn", fig);
  return 0;
}
