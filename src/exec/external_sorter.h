#ifndef PJVM_EXEC_EXTERNAL_SORTER_H_
#define PJVM_EXEC_EXTERNAL_SORTER_H_

#include <cstdint>
#include <vector>

#include "common/row.h"

namespace pjvm {

/// \brief Sorts rows by one key column under a memory budget of M pages,
/// reporting the page I/O a disk-based external sort would incur.
///
/// The data itself is sorted in memory (this is a simulator), but the cost
/// is the classic multiway-merge formula the paper's model uses:
/// a dataset of P pages with M pages of memory needs ceil(log_M(P)) passes
/// over the data when P > M, and the paper charges |B| * log_M |B| page
/// I/Os for sorting and |B| for a scan of already-sorted data.
class ExternalSorter {
 public:
  ExternalSorter(int memory_pages, int rows_per_page)
      : memory_pages_(memory_pages), rows_per_page_(rows_per_page) {}

  /// Number of passes over the data to sort `pages` pages with the budget:
  /// 0 when it fits in memory is still 1 pass (read once), matching the
  /// paper's convention that sorting costs pages * ceil(log_M pages) >= pages.
  uint64_t SortPasses(uint64_t pages) const;

  /// Page I/Os charged to sort `pages` pages: pages * SortPasses(pages).
  uint64_t SortCostPages(uint64_t pages) const;

  /// Sorts rows by `key_col` and returns the charged page I/Os for a dataset
  /// of the rows' size.
  uint64_t Sort(std::vector<Row>* rows, int key_col) const;

  uint64_t PagesFor(size_t row_count) const {
    return (row_count + rows_per_page_ - 1) / rows_per_page_;
  }

  int memory_pages() const { return memory_pages_; }
  int rows_per_page() const { return rows_per_page_; }

 private:
  int memory_pages_;
  int rows_per_page_;
};

}  // namespace pjvm

#endif  // PJVM_EXEC_EXTERNAL_SORTER_H_
