file(REMOVE_RECURSE
  "libpjvm_view.a"
)
