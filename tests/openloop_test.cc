#include "workload/openloop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "engine/system.h"
#include "view/view_manager.h"
#include "workload/twotable.h"

namespace pjvm {
namespace {

// ------------------------------------------------------ Arrival schedules

TenantSpec PoissonSpec(uint64_t seed = 3) {
  TenantSpec spec;
  spec.name = "t0";
  spec.rate_per_sec = 10000.0;
  spec.process = ArrivalProcess::kPoisson;
  spec.seed = seed;
  return spec;
}

TEST(ArrivalScheduleTest, DeterministicInSeed) {
  auto a = BuildArrivalSchedule(PoissonSpec(3), 100'000'000);
  auto b = BuildArrivalSchedule(PoissonSpec(3), 100'000'000);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ns, b[i].at_ns);
    EXPECT_EQ(a[i].op, b[i].op);
  }
  auto c = BuildArrivalSchedule(PoissonSpec(4), 100'000'000);
  bool identical = a.size() == c.size();
  for (size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i].at_ns == c[i].at_ns;
  }
  EXPECT_FALSE(identical) << "different seeds must give different schedules";
}

TEST(ArrivalScheduleTest, ArrivalsAreOrderedAndInsideTheHorizon) {
  constexpr uint64_t kHorizon = 200'000'000;
  auto sched = BuildArrivalSchedule(PoissonSpec(), kHorizon);
  ASSERT_FALSE(sched.empty());
  for (size_t i = 0; i < sched.size(); ++i) {
    EXPECT_LT(sched[i].at_ns, kHorizon);
    if (i > 0) EXPECT_GE(sched[i].at_ns, sched[i - 1].at_ns);
  }
}

TEST(ArrivalScheduleTest, PoissonMeanGapMatchesTheRate) {
  // 10k/s over 1 simulated second: the mean inter-arrival gap must be
  // within a few percent of 1/rate = 100us (law of large numbers; seed is
  // fixed, so this is deterministic, not flaky).
  TenantSpec spec = PoissonSpec();
  constexpr uint64_t kHorizon = 1'000'000'000;
  auto sched = BuildArrivalSchedule(spec, kHorizon);
  ASSERT_GT(sched.size(), 5000u);
  double mean_gap_ns =
      static_cast<double>(sched.back().at_ns) / (sched.size() - 1);
  double expected_ns = 1e9 / spec.rate_per_sec;
  EXPECT_NEAR(mean_gap_ns, expected_ns, expected_ns * 0.05);
  // Exponential gaps: the variance is ~mean^2, far from the zero variance
  // of a metronome. Check the coefficient of variation is near 1.
  double sq = 0.0;
  for (size_t i = 1; i < sched.size(); ++i) {
    double g = static_cast<double>(sched[i].at_ns - sched[i - 1].at_ns);
    sq += (g - mean_gap_ns) * (g - mean_gap_ns);
  }
  double cv = std::sqrt(sq / (sched.size() - 1)) / mean_gap_ns;
  EXPECT_GT(cv, 0.8);
  EXPECT_LT(cv, 1.2);
}

TEST(ArrivalScheduleTest, FixedRateIsAMetronome) {
  TenantSpec spec = PoissonSpec();
  spec.process = ArrivalProcess::kFixedRate;
  spec.rate_per_sec = 1000.0;  // gap = 1ms exactly
  auto sched = BuildArrivalSchedule(spec, 10'000'000);
  // The first arrival is one gap in (t=0 would be "before the run"), and
  // the horizon bound is exclusive: gaps at 1ms..9ms.
  ASSERT_EQ(sched.size(), 9u);
  EXPECT_EQ(sched[0].at_ns, 1'000'000u);
  for (size_t i = 1; i < sched.size(); ++i) {
    EXPECT_EQ(sched[i].at_ns - sched[i - 1].at_ns, 1'000'000u);
  }
}

TEST(ArrivalScheduleTest, OpMixFollowsTheConfiguredFractions) {
  TenantSpec spec = PoissonSpec();
  spec.point_read_frac = 0.7;
  spec.range_scan_frac = 0.2;
  spec.update_frac = 0.1;
  auto sched = BuildArrivalSchedule(spec, 1'000'000'000);
  ASSERT_GT(sched.size(), 5000u);
  double counts[kNumOpClasses] = {0, 0, 0};
  for (const Arrival& a : sched) counts[static_cast<int>(a.op)]++;
  double n = static_cast<double>(sched.size());
  EXPECT_NEAR(counts[0] / n, 0.7, 0.03);
  EXPECT_NEAR(counts[1] / n, 0.2, 0.03);
  EXPECT_NEAR(counts[2] / n, 0.1, 0.03);
}

// --------------------------------------------------------- End-to-end runs

struct OpenLoopFixture {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;

  explicit OpenLoopFixture(MaintenanceMethod method, int tenants,
                           double rate_per_sec) {
    SystemConfig cfg;
    cfg.num_nodes = 2;
    cfg.enable_locking = true;
    cfg.lock_policy = LockPolicy::kWaitDie;
    sys = std::make_unique<ParallelSystem>(cfg);
    TwoTableConfig tt;
    tt.b_join_keys = 16;
    tt.fanout = 2;
    LoadTwoTable(sys.get(), tt).Check();
    manager = std::make_unique<ViewManager>(sys.get());
    config.b_join_keys = tt.b_join_keys;
    for (int t = 0; t < tenants; ++t) {
      TenantSpec spec;
      spec.name = "t" + std::to_string(t);
      spec.rate_per_sec = rate_per_sec;
      spec.seed = 40 + t;
      config.tenants.push_back(spec);
    }
    RegisterTenantViews(manager.get(), &config.tenants, method).Check();
  }

  OpenLoopConfig config;
};

TEST(OpenLoopDriverTest, UnloadedRunCompletesEveryArrival) {
  OpenLoopFixture fx(MaintenanceMethod::kAuxRelation, /*tenants=*/2,
                     /*rate_per_sec=*/200.0);
  fx.config.duration_ms = 400;
  fx.config.window_ms = 100;
  fx.config.read_workers = 2;
  fx.config.warmup_rows_per_tenant = 8;
  fx.config.publish_metrics = false;
  OpenLoopDriver driver(fx.manager.get(), fx.config);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->tenants.size(), 2u);
  EXPECT_GT(result->total_offered, 0u);
  // Unloaded: nothing fails, everything offered completes.
  EXPECT_EQ(result->total_completed, result->total_offered);
  for (const TenantResult& tr : result->tenants) {
    EXPECT_EQ(tr.completed, tr.offered);
    uint64_t per_class = 0;
    for (const OpClassStats& ops : tr.ops) {
      EXPECT_EQ(ops.failed, 0u);
      EXPECT_EQ(ops.completed, ops.offered);
      EXPECT_EQ(ops.latency.count, ops.completed);
      per_class += ops.completed;
      // latency = queue_wait + service, recorded per completion.
      EXPECT_EQ(ops.queue_wait.count, ops.completed);
      EXPECT_EQ(ops.service.count, ops.completed);
    }
    EXPECT_EQ(per_class, tr.completed);
    // Windowed quantiles exist and cover the run.
    EXPECT_FALSE(tr.windows.empty());
    uint64_t windowed = 0;
    for (const WindowQuantiles& w : tr.windows) windowed += w.count;
    EXPECT_EQ(windowed, tr.offered);
  }
  // The maintained views stayed consistent with their definitions under
  // the concurrent multi-tenant mix.
  EXPECT_TRUE(fx.manager->CheckAllConsistent().ok());
  EXPECT_TRUE(fx.sys->CheckInvariants().ok());
}

TEST(OpenLoopDriverTest, OverloadedRunRecordsQueueWaitNotJustService) {
  // Updates are serialized per tenant through one writer thread; offering
  // update-heavy load far above its drain rate must surface as queue wait
  // (latency from the SCHEDULED arrival), with wall time extending past the
  // horizon to drain the backlog. This is exactly what a closed-loop driver
  // cannot measure.
  OpenLoopFixture fx(MaintenanceMethod::kNaive, /*tenants=*/1,
                     /*rate_per_sec=*/4000.0);
  fx.config.duration_ms = 250;
  fx.config.window_ms = 125;
  fx.config.read_workers = 2;
  fx.config.warmup_rows_per_tenant = 8;
  fx.config.publish_metrics = false;
  TenantSpec& spec = fx.config.tenants[0];
  spec.point_read_frac = 0.0;
  spec.range_scan_frac = 0.0;
  spec.update_frac = 1.0;
  OpenLoopDriver driver(fx.manager.get(), fx.config);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->tenants.size(), 1u);
  const TenantResult& tr = result->tenants[0];
  EXPECT_EQ(tr.completed, tr.offered) << "backlog must drain, not drop";
  const OpClassStats& upd = tr.ops[static_cast<int>(OpClass::kUpdate)];
  ASSERT_GT(upd.completed, 0u);
  // At 4000/s offered the backlog dominates: p99 queue wait must dwarf p99
  // service time, and end-to-end latency must reflect the wait.
  EXPECT_GT(upd.queue_wait.P99(), upd.service.P99());
  EXPECT_GE(upd.latency.max, upd.queue_wait.max);
  EXPECT_GE(result->wall_ms, result->horizon_ms);
  EXPECT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(OpenLoopDriverTest, RunIsSingleUse) {
  OpenLoopFixture fx(MaintenanceMethod::kAuxRelation, 1, 50.0);
  fx.config.duration_ms = 40;
  fx.config.publish_metrics = false;
  OpenLoopDriver driver(fx.manager.get(), fx.config);
  ASSERT_TRUE(driver.Run().ok());
  EXPECT_FALSE(driver.Run().ok());
}

TEST(OpenLoopDriverTest, RejectsEmptyTenantList) {
  OpenLoopFixture fx(MaintenanceMethod::kAuxRelation, 1, 50.0);
  fx.config.tenants.clear();
  OpenLoopDriver driver(fx.manager.get(), fx.config);
  EXPECT_FALSE(driver.Run().ok());
}

}  // namespace
}  // namespace pjvm
