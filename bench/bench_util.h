#ifndef PJVM_BENCH_BENCH_UTIL_H_
#define PJVM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/system.h"
#include "model/figures.h"
#include "obs/metrics_registry.h"
#include "view/maintainer.h"
#include "view/view_manager.h"
#include "workload/tpcr.h"
#include "workload/twotable.h"

namespace pjvm::bench {

// --------------------------------------------------------------- JSON output
//
// Every bench_* target emits its results as BENCH_<name>.json through the
// same writer, so downstream tooling parses one schema: a top-level object
// with "bench" plus named sections (figures, latency summaries, raw tables).
// The output directory defaults to the working directory and is overridden
// with PJVM_BENCH_DIR.

/// \brief Minimal streaming JSON writer: explicit Begin/End with automatic
/// comma placement. No dependency, no DOM.
class JsonWriter {
 public:
  JsonWriter() { os_.precision(12); }

  JsonWriter& BeginObject() {
    Comma();
    os_ << "{";
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndObject() {
    os_ << "}";
    first_.pop_back();
    return *this;
  }
  JsonWriter& BeginArray() {
    Comma();
    os_ << "[";
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndArray() {
    os_ << "]";
    first_.pop_back();
    return *this;
  }
  /// Writes `"key":`; the next value belongs to it.
  JsonWriter& Key(const std::string& k) {
    Comma();
    os_ << Quote(k) << ":";
    pending_key_ = true;
    return *this;
  }
  /// Non-finite doubles (the advisor uses inf for "excluded by budget")
  /// become null — JSON has no inf/nan literals.
  JsonWriter& Num(double v) {
    Comma();
    if (std::isfinite(v)) {
      os_ << v;
    } else {
      os_ << "null";
    }
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Comma();
    os_ << v;
    return *this;
  }
  JsonWriter& Uint(uint64_t v) {
    Comma();
    os_ << v;
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& Str(const std::string& s) {
    Comma();
    os_ << Quote(s);
    return *this;
  }
  /// Splices pre-rendered JSON (e.g. another writer's output) as one value.
  JsonWriter& Raw(const std::string& json) {
    Comma();
    os_ << json;
    return *this;
  }

  std::string str() const { return os_.str(); }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
    return out;
  }

 private:
  void Comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ",";
      first_.back() = false;
    }
  }

  std::ostringstream os_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// A latency summary (count/mean/min/max and the log-bucket quantiles) as a
/// JSON object. Unit is whatever the histogram recorded (benches record ns).
inline std::string LatencyJson(const HistogramData& d) {
  JsonWriter w;
  w.BeginObject()
      .Key("count").Uint(d.count)
      .Key("sum").Uint(d.sum)
      .Key("mean").Num(d.Mean())
      .Key("min").Uint(d.count > 0 ? d.min : 0)
      .Key("max").Uint(d.count > 0 ? d.max : 0)
      .Key("p50").Num(d.P50())
      .Key("p95").Num(d.P95())
      .Key("p99").Num(d.P99())
      .EndObject();
  return w.str();
}

/// A model::Figure as {title, xlabel, ylabel, series: [{label, xs, ys}]}.
inline std::string FigureJson(const model::Figure& fig) {
  JsonWriter w;
  w.BeginObject()
      .Key("title").Str(fig.title)
      .Key("xlabel").Str(fig.xlabel)
      .Key("ylabel").Str(fig.ylabel)
      .Key("series").BeginArray();
  for (const model::Series& s : fig.series) {
    w.BeginObject().Key("label").Str(s.label).Key("xs").BeginArray();
    for (double x : s.xs) w.Num(x);
    w.EndArray().Key("ys").BeginArray();
    for (double y : s.ys) w.Num(y);
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

/// Run metadata stamped into every bench report — enough to answer "which
/// build, when, on how many cores" when BENCH_*.json files from different
/// commits are compared. The git sha comes from PJVM_GIT_SHA when set (CI
/// exports it; no .git directory needed there), else from `git rev-parse`.
inline std::string RunMetadataJson() {
  std::string sha = "unknown";
  if (const char* env = std::getenv("PJVM_GIT_SHA");
      env != nullptr && env[0] != '\0') {
    sha = env;
  } else if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) sha = line;
    }
    ::pclose(pipe);
  }
  char date[32] = "unknown";
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&now, &tm) != nullptr) {
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ", &tm);
  }
  JsonWriter w;
  w.BeginObject()
      .Key("git_sha").Str(sha)
      .Key("date").Str(date)
      .Key("host_cores").Uint(std::thread::hardware_concurrency())
      .EndObject();
  return w.str();
}

/// \brief Collects named JSON sections and writes BENCH_<name>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Output directory: PJVM_BENCH_DIR, or the working directory.
  static std::string OutputDir() {
    const char* dir = std::getenv("PJVM_BENCH_DIR");
    return (dir != nullptr && dir[0] != '\0') ? dir : ".";
  }

  void Add(const std::string& key, std::string raw_json) {
    sections_.emplace_back(key, std::move(raw_json));
  }
  void AddFigure(const std::string& key, const model::Figure& fig) {
    Add(key, FigureJson(fig));
  }
  void AddLatency(const std::string& key, const HistogramData& d) {
    Add(key, LatencyJson(d));
  }

  /// Writes the report; prints the path (or the error) to stdout.
  void Write() const {
    JsonWriter w;
    w.BeginObject().Key("bench").Str(name_);
    w.Key("meta").Raw(RunMetadataJson());
    for (const auto& [key, json] : sections_) w.Key(key).Raw(json);
    w.EndObject();
    std::string path = OutputDir() + "/BENCH_" + name_ + ".json";
    std::ofstream file(path);
    file << w.str() << "\n";
    if (file.good()) {
      std::cout << "\nwrote " << path << "\n";
    } else {
      std::cout << "\nFAILED to write " << path << "\n";
    }
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// One-call export for the pure model-figure benches.
inline void WriteFigureJson(const std::string& bench_name,
                            const model::Figure& fig) {
  BenchReport report(bench_name);
  report.AddFigure("figure", fig);
  report.Write();
}

/// Cost and wall-time of one measured maintenance run.
struct RunResult {
  double total_workload_io = 0.0;
  double response_time_io = 0.0;
  uint64_t sends = 0;
  int nodes_touched = 0;
  double wall_ms = 0.0;
  size_t view_rows_written = 0;
};

/// Applies `delta` through `manager`, metering the maintenance transaction
/// (cost counters are reset first, so setup/backfill is excluded).
inline RunResult MeterDelta(ViewManager* manager, DeltaBatch delta) {
  ParallelSystem* sys = manager->system();
  sys->cost().Reset();
  auto start = std::chrono::steady_clock::now();
  auto report = manager->ApplyDelta(std::move(delta));
  auto end = std::chrono::steady_clock::now();
  report.status().Check();
  RunResult r;
  r.total_workload_io = sys->cost().TotalWorkload();
  r.response_time_io = sys->cost().ResponseTime();
  r.sends = sys->cost().TotalSends();
  r.nodes_touched = sys->cost().NodesTouched();
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  r.view_rows_written = report->view_rows_inserted + report->view_rows_deleted;
  return r;
}

/// A TPC-R system with JV1 and JV2 registered under `method` — the setup of
/// the paper's Section 3.3 experiment.
struct TpcrBench {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
  TpcrConfig tpcr;

  TpcrBench(int num_nodes, MaintenanceMethod method, int64_t customers = 1500) {
    SystemConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.rows_per_page = 16;
    sys = std::make_unique<ParallelSystem>(cfg);
    tpcr.customers = customers;
    tpcr.extra_customer_keys = 256;
    LoadTpcr(sys.get(), GenerateTpcr(tpcr)).Check();
    manager = std::make_unique<ViewManager>(sys.get());
    manager->RegisterView(MakeJv1(), method).Check();
    manager->RegisterView(MakeJv2(), method).Check();
  }

  /// The paper's delta: `n` new customers, each matching existing orders.
  DeltaBatch DeltaCustomers(int n) {
    std::vector<Row> rows;
    rows.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(MakeDeltaCustomer(tpcr, i));
    }
    return DeltaBatch::Inserts("customer", rows);
  }
};

inline void PrintHeader(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace pjvm::bench

#endif  // PJVM_BENCH_BENCH_UTIL_H_
