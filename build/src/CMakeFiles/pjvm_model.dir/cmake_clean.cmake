file(REMOVE_RECURSE
  "CMakeFiles/pjvm_model.dir/model/analytical.cc.o"
  "CMakeFiles/pjvm_model.dir/model/analytical.cc.o.d"
  "CMakeFiles/pjvm_model.dir/model/figures.cc.o"
  "CMakeFiles/pjvm_model.dir/model/figures.cc.o.d"
  "libpjvm_model.a"
  "libpjvm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
