file(REMOVE_RECURSE
  "CMakeFiles/pjvm_workload.dir/workload/tpcr.cc.o"
  "CMakeFiles/pjvm_workload.dir/workload/tpcr.cc.o.d"
  "CMakeFiles/pjvm_workload.dir/workload/twotable.cc.o"
  "CMakeFiles/pjvm_workload.dir/workload/twotable.cc.o.d"
  "CMakeFiles/pjvm_workload.dir/workload/update_stream.cc.o"
  "CMakeFiles/pjvm_workload.dir/workload/update_stream.cc.o.d"
  "CMakeFiles/pjvm_workload.dir/workload/zipf.cc.o"
  "CMakeFiles/pjvm_workload.dir/workload/zipf.cc.o.d"
  "libpjvm_workload.a"
  "libpjvm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
