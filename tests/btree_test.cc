#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/merged_tree.h"
#include "storage/row_id.h"

namespace pjvm {
namespace {

using Tree = BPlusTree<uint64_t>;

TEST(BTreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_keys(), 0u);
  EXPECT_EQ(t.num_items(), 0u);
  EXPECT_EQ(t.Find(Value{1}), nullptr);
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BTreeTest, SingleInsertFind) {
  Tree t;
  t.Insert(Value{5}, 100);
  ASSERT_NE(t.Find(Value{5}), nullptr);
  EXPECT_EQ(t.Find(Value{5})->at(0), 100u);
  EXPECT_EQ(t.Find(Value{6}), nullptr);
  EXPECT_EQ(t.num_keys(), 1u);
  EXPECT_EQ(t.num_items(), 1u);
}

TEST(BTreeTest, DuplicateKeysShareEntry) {
  Tree t;
  t.Insert(Value{5}, 1);
  t.Insert(Value{5}, 2);
  t.Insert(Value{5}, 3);
  const auto* list = t.Find(Value{5});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->size(), 3u);
  EXPECT_EQ(t.num_keys(), 1u);
  EXPECT_EQ(t.num_items(), 3u);
}

TEST(BTreeTest, SplitsKeepAllKeysFindable) {
  Tree t(/*max_keys=*/4);
  for (int64_t i = 0; i < 500; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  EXPECT_GT(t.height(), 1);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_NE(t.Find(Value{i}), nullptr) << "missing key " << i;
  }
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

TEST(BTreeTest, ReverseInsertionOrder) {
  Tree t(4);
  for (int64_t i = 499; i >= 0; --i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  for (int64_t i = 0; i < 500; ++i) ASSERT_NE(t.Find(Value{i}), nullptr);
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

TEST(BTreeTest, RemoveMissingKeyFails) {
  Tree t;
  t.Insert(Value{1}, 10);
  EXPECT_TRUE(t.Remove(Value{2}, 10).IsNotFound());
  EXPECT_TRUE(t.Remove(Value{1}, 99).IsNotFound());
  EXPECT_TRUE(t.Remove(Value{1}, 10).ok());
  EXPECT_TRUE(t.empty());
}

TEST(BTreeTest, RemoveOneDuplicateKeepsOthers) {
  Tree t;
  t.Insert(Value{7}, 1);
  t.Insert(Value{7}, 2);
  EXPECT_TRUE(t.Remove(Value{7}, 1).ok());
  const auto* list = t.Find(Value{7});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->size(), 1u);
  EXPECT_EQ(list->at(0), 2u);
}

TEST(BTreeTest, DeleteEverythingAscending) {
  Tree t(4);
  for (int64_t i = 0; i < 300; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(t.Remove(Value{i}, static_cast<uint64_t>(i)).ok()) << i;
    ASSERT_TRUE(t.CheckInvariants().ok()) << i << ": " << t.CheckInvariants();
  }
  EXPECT_TRUE(t.empty());
}

TEST(BTreeTest, DeleteEverythingDescending) {
  Tree t(4);
  for (int64_t i = 0; i < 300; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  for (int64_t i = 299; i >= 0; --i) {
    ASSERT_TRUE(t.Remove(Value{i}, static_cast<uint64_t>(i)).ok()) << i;
    ASSERT_TRUE(t.CheckInvariants().ok()) << i << ": " << t.CheckInvariants();
  }
  EXPECT_TRUE(t.empty());
}

TEST(BTreeTest, ScanRangeInOrder) {
  Tree t(8);
  for (int64_t i = 0; i < 100; ++i) t.Insert(Value{i * 2}, static_cast<uint64_t>(i));
  std::vector<int64_t> keys;
  t.ScanRange(Value{10}, Value{30}, [&](const Value& k, const uint64_t&) {
    keys.push_back(k.AsInt64());
    return true;
  });
  std::vector<int64_t> expected = {10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30};
  EXPECT_EQ(keys, expected);
}

TEST(BTreeTest, ScanRangeEarlyStop) {
  Tree t;
  for (int64_t i = 0; i < 20; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  int visits = 0;
  t.ScanRange(Value{0}, Value{19}, [&](const Value&, const uint64_t&) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(BTreeTest, ForEachEntryVisitsAllInOrder) {
  Tree t(4);
  for (int64_t i = 50; i >= 1; --i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  int64_t prev = 0;
  size_t count = 0;
  t.ForEachEntry([&](const Value& k, const Tree::PostingList& list) {
    EXPECT_GT(k.AsInt64(), prev);
    prev = k.AsInt64();
    count += list.size();
    return true;
  });
  EXPECT_EQ(count, 50u);
}

TEST(BTreeTest, StringKeys) {
  Tree t(4);
  std::vector<std::string> words = {"pear", "apple", "fig",   "kiwi",
                                    "lime", "mango", "grape", "plum"};
  for (size_t i = 0; i < words.size(); ++i) {
    t.Insert(Value{words[i]}, static_cast<uint64_t>(i));
  }
  for (size_t i = 0; i < words.size(); ++i) {
    const auto* list = t.Find(Value{words[i]});
    ASSERT_NE(list, nullptr);
    EXPECT_EQ(list->at(0), i);
  }
  // In-order scan yields sorted words.
  std::vector<std::string> scanned;
  t.ForEachEntry([&](const Value& k, const Tree::PostingList&) {
    scanned.push_back(k.AsString());
    return true;
  });
  std::vector<std::string> sorted = words;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(scanned, sorted);
}

TEST(BTreeTest, GlobalRowIdPayload) {
  BPlusTree<GlobalRowId> t;
  t.Insert(Value{1}, GlobalRowId{2, 77});
  t.Insert(Value{1}, GlobalRowId{3, 12});
  const auto* list = t.Find(Value{1});
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0], (GlobalRowId{2, 77}));
  EXPECT_TRUE(t.Remove(Value{1}, GlobalRowId{2, 77}).ok());
  EXPECT_EQ(t.Find(Value{1})->size(), 1u);
}

// Property-style fuzz against a reference std::multimap, over several tree
// fanouts and seeds.
class BTreeFuzzTest : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BTreeFuzzTest, MatchesReferenceUnderRandomOps) {
  auto [max_keys, seed] = GetParam();
  Tree t(max_keys);
  std::multimap<int64_t, uint64_t> ref;
  Rng rng(seed);
  for (int step = 0; step < 4000; ++step) {
    int64_t key = rng.UniformInt(0, 80);
    if (rng.Bernoulli(0.6) || ref.empty()) {
      uint64_t item = rng.Next() % 1000;
      t.Insert(Value{key}, item);
      ref.emplace(key, item);
    } else {
      auto range = ref.equal_range(key);
      if (range.first == range.second) {
        EXPECT_TRUE(t.Remove(Value{key}, 0).IsNotFound());
      } else {
        uint64_t item = range.first->second;
        ASSERT_TRUE(t.Remove(Value{key}, item).ok());
        ref.erase(range.first);
      }
    }
    if (step % 256 == 0) {
      ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
    }
  }
  ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  EXPECT_EQ(t.num_items(), ref.size());
  // Every reference key's multiset matches.
  for (auto it = ref.begin(); it != ref.end();) {
    int64_t key = it->first;
    std::multiset<uint64_t> want;
    while (it != ref.end() && it->first == key) want.insert(it++->second);
    const auto* list = t.Find(Value{key});
    ASSERT_NE(list, nullptr) << "key " << key;
    std::multiset<uint64_t> got(list->begin(), list->end());
    EXPECT_EQ(got, want) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndSeeds, BTreeFuzzTest,
    ::testing::Combine(::testing::Values(4, 8, 64),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// Composite-key range scans: the merged co-clustered layout flattens
// (join_key, source_tag, source_pk) into one order-preserving byte string
// (storage/merged_tree.h) and relies on the B+-tree's ScanRange to walk one
// join key's interleaved rows — sources first, view tuples last.
// ---------------------------------------------------------------------------

using StringTree = BPlusTree<uint64_t>;

// Scans [RangeLo(key), RangeHi(key)] and returns the items in scan order.
std::vector<uint64_t> ScanJoinKey(const StringTree& t, const Value& key) {
  std::vector<uint64_t> out;
  t.ScanRange(mergedkey::RangeLo(key), mergedkey::RangeHi(key),
              [&](const Value&, uint64_t item) {
                out.push_back(item);
                return true;
              });
  return out;
}

TEST(MergedKeyBTreeTest, TaggedKeysOrderSourcesBeforeView) {
  // Composite keys for one join key sort by tag: member 0, member 1, view.
  Value key{42};
  std::string a = mergedkey::EncodeComposite(key, mergedkey::kSourceTagFirst,
                                             {Value{int64_t{7}}})
                      .AsString();
  std::string b =
      mergedkey::EncodeComposite(key, mergedkey::kSourceTagFirst + 1,
                                 {Value{int64_t{0}}})
          .AsString();
  std::string v =
      mergedkey::EncodeComposite(key, mergedkey::kViewTag, {Value{int64_t{1}}})
          .AsString();
  EXPECT_LT(a, b);
  EXPECT_LT(b, v);
  // All three share the join key's prefix and decode back to their tags.
  size_t plen = mergedkey::KeyPrefix(key).size();
  EXPECT_EQ(mergedkey::DecodeTag(a, plen), mergedkey::kSourceTagFirst);
  EXPECT_EQ(mergedkey::DecodeTag(b, plen), mergedkey::kSourceTagFirst + 1);
  EXPECT_EQ(mergedkey::DecodeTag(v, plen), mergedkey::kViewTag);
}

TEST(MergedKeyBTreeTest, EncodingPreservesJoinKeyOrder) {
  // Lexicographic order of the encoded prefixes == value order, including
  // negatives (INT64), sign transitions (DOUBLE), and embedded NULs (STRING).
  std::vector<Value> ints = {Value{int64_t{-100}}, Value{int64_t{-1}},
                             Value{int64_t{0}}, Value{int64_t{1}},
                             Value{int64_t{1000}}};
  for (size_t i = 1; i < ints.size(); ++i) {
    EXPECT_LT(mergedkey::KeyPrefix(ints[i - 1]), mergedkey::KeyPrefix(ints[i]));
  }
  std::vector<Value> dbls = {Value{-2.5}, Value{-0.25}, Value{0.0}, Value{0.25},
                             Value{2.5}};
  for (size_t i = 1; i < dbls.size(); ++i) {
    EXPECT_LT(mergedkey::KeyPrefix(dbls[i - 1]), mergedkey::KeyPrefix(dbls[i]));
  }
  std::vector<Value> strs = {Value{std::string("")},
                             Value{std::string("a")},
                             Value{std::string({'a', '\0', 'b'})},
                             Value{std::string("ab")},
                             Value{std::string("b")}};
  for (size_t i = 1; i < strs.size(); ++i) {
    EXPECT_LT(mergedkey::KeyPrefix(strs[i - 1]), mergedkey::KeyPrefix(strs[i]));
  }
}

TEST(MergedKeyBTreeTest, CursorCrossesTagBoundariesInOrder) {
  // Interleave three join keys x two tags x several pks, inserted shuffled;
  // one range descent per join key must yield that key's rows grouped by
  // tag, and nothing from neighboring keys.
  StringTree t(4);
  struct Entry {
    int64_t key;
    uint8_t tag;
    int64_t pk;
    uint64_t item;
  };
  std::vector<Entry> entries;
  uint64_t next = 0;
  for (int64_t key : {10, 20, 30}) {
    for (uint8_t tag :
         {mergedkey::kSourceTagFirst,
          static_cast<uint8_t>(mergedkey::kSourceTagFirst + 1),
          mergedkey::kViewTag}) {
      for (int64_t pk = 0; pk < 4; ++pk) {
        entries.push_back(Entry{key, tag, pk, next++});
      }
    }
  }
  Rng rng(7);
  for (size_t i = entries.size(); i > 1; --i) {
    std::swap(entries[i - 1], entries[rng.Next() % i]);
  }
  for (const Entry& e : entries) {
    t.Insert(mergedkey::EncodeComposite(Value{e.key}, e.tag, {Value{e.pk}}),
             e.item);
  }
  ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  for (int64_t key : {10, 20, 30}) {
    std::vector<uint64_t> got = ScanJoinKey(t, Value{key});
    ASSERT_EQ(got.size(), 12u) << "key " << key;
    // Items were numbered in (key, tag, pk) order, so an in-order cursor
    // yields them consecutively — crossing both tag boundaries.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_EQ(got[i], got[i - 1] + 1) << "key " << key << " pos " << i;
    }
  }
  // Early-exit stops inside the range.
  size_t seen = 0;
  t.ScanRange(mergedkey::RangeLo(Value{int64_t{20}}),
              mergedkey::RangeHi(Value{int64_t{20}}),
              [&](const Value&, uint64_t) { return ++seen < 5; });
  EXPECT_EQ(seen, 5u);
}

TEST(MergedKeyBTreeTest, EmptyRangeYieldsNothing) {
  StringTree t(4);
  for (int64_t key : {10, 30}) {
    t.Insert(mergedkey::EncodeComposite(Value{key}, mergedkey::kViewTag,
                                        {Value{int64_t{0}}}),
             static_cast<uint64_t>(key));
  }
  // A key strictly between two populated neighbors scans nothing, as does
  // one beyond both ends — and an empty tree scans nothing at all.
  EXPECT_TRUE(ScanJoinKey(t, Value{int64_t{20}}).empty());
  EXPECT_TRUE(ScanJoinKey(t, Value{int64_t{5}}).empty());
  EXPECT_TRUE(ScanJoinKey(t, Value{int64_t{40}}).empty());
  StringTree empty;
  EXPECT_TRUE(ScanJoinKey(empty, Value{int64_t{10}}).empty());
}

TEST(MergedTreeFragmentTest, BagSemanticsAndByteAccounting) {
  MergedTreeFragment frag;
  Row row = {Value{int64_t{1}}, Value{int64_t{2}}};
  frag.InsertEntry(Value{int64_t{1}}, mergedkey::kViewTag, {}, row);
  frag.InsertEntry(Value{int64_t{1}}, mergedkey::kViewTag, {}, row);
  EXPECT_EQ(frag.num_entries(), 2u);
  EXPECT_GT(frag.byte_size(), 0u);
  // Removing one duplicate keeps the other; removing a missing row fails.
  ASSERT_TRUE(
      frag.RemoveEntry(Value{int64_t{1}}, mergedkey::kViewTag, {}, row).ok());
  EXPECT_EQ(frag.num_entries(), 1u);
  Row other = {Value{int64_t{9}}, Value{int64_t{9}}};
  EXPECT_TRUE(frag.RemoveEntry(Value{int64_t{1}}, mergedkey::kViewTag, {}, other)
                  .IsNotFound());
  ASSERT_TRUE(
      frag.RemoveEntry(Value{int64_t{1}}, mergedkey::kViewTag, {}, row).ok());
  EXPECT_TRUE(frag.empty());
  EXPECT_EQ(frag.byte_size(), 0u);
}

}  // namespace
}  // namespace pjvm
