file(REMOVE_RECURSE
  "CMakeFiles/pjvm_exec.dir/exec/external_sorter.cc.o"
  "CMakeFiles/pjvm_exec.dir/exec/external_sorter.cc.o.d"
  "CMakeFiles/pjvm_exec.dir/exec/join_chooser.cc.o"
  "CMakeFiles/pjvm_exec.dir/exec/join_chooser.cc.o.d"
  "CMakeFiles/pjvm_exec.dir/exec/local_join.cc.o"
  "CMakeFiles/pjvm_exec.dir/exec/local_join.cc.o.d"
  "libpjvm_exec.a"
  "libpjvm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
