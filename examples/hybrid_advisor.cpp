// The cost-based method chooser sketched in the paper's conclusion: "it is
// impossible to say that one method is always the best ... our analytical
// model could form the basis for a cost model that would enable a system to
// choose the best approach automatically."
//
// This example profiles three different operational environments and lets
// the advisor pick a maintenance method for each, then demonstrates the
// chosen method running.

#include <cmath>
#include <cstdio>
#include <string>

#include "engine/system.h"
#include "view/hybrid_advisor.h"
#include "view/view_manager.h"
#include "workload/twotable.h"

using namespace pjvm;

namespace {

void Demonstrate(const char* scenario, const WorkloadProfile& profile) {
  Advice advice = ChooseMethod(profile);
  std::printf("--- %s ---\n", scenario);
  std::printf("  txn size %.0f tuples, budget %.0f KB, |B| = %.0f pages\n",
              profile.tuples_per_txn, profile.storage_budget_bytes / 1024.0,
              profile.other_relation_pages);
  std::printf("  est. TW/txn: naive %.0f, aux %s, gi %s\n", advice.naive_io,
              std::isinf(advice.aux_io)
                  ? "(no space)"
                  : std::to_string(static_cast<long>(advice.aux_io)).c_str(),
              std::isinf(advice.gi_io)
                  ? "(no space)"
                  : std::to_string(static_cast<long>(advice.gi_io)).c_str());
  std::printf("  choice: %s\n  why: %s\n\n",
              MaintenanceMethodToString(advice.method),
              advice.rationale.c_str());
}

}  // namespace

int main() {
  WorkloadProfile trickle;
  trickle.num_nodes = 16;
  trickle.fanout = 4;
  trickle.tuples_per_txn = 2;
  trickle.other_relation_pages = 6400;
  trickle.base_clustered_on_join = true;
  trickle.storage_budget_bytes = 512 * 1024 * 1024;
  trickle.ar_bytes = 100 * 1024 * 1024;
  trickle.gi_bytes = 12 * 1024 * 1024;
  Demonstrate("real-time trickle feed (plenty of disk)", trickle);

  WorkloadProfile tight = trickle;
  tight.storage_budget_bytes = 20 * 1024 * 1024;
  Demonstrate("same feed, storage-constrained warehouse", tight);

  WorkloadProfile bulk = trickle;
  bulk.tuples_per_txn = 50000;
  bulk.num_nodes = 8;
  Demonstrate("nightly bulk load (txn ~ |B| pages)", bulk);

  // Run the trickle scenario's chosen method for real.
  Advice advice = ChooseMethod(trickle);
  SystemConfig cfg;
  cfg.num_nodes = 8;
  ParallelSystem sys(cfg);
  TwoTableConfig data;
  data.b_join_keys = 500;
  data.fanout = 4;
  LoadTwoTable(&sys, data).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), advice.method).Check();
  sys.cost().Reset();
  for (int64_t i = 0; i < 10; ++i) {
    manager.InsertRow("A", MakeDeltaA(data, i)).status().Check();
  }
  std::printf("ran 10 trickle transactions under %s: %s\n",
              MaintenanceMethodToString(advice.method),
              sys.cost().ToString().c_str());
  manager.CheckAllConsistent().Check();
  std::printf("views verified.\n");
  return 0;
}
