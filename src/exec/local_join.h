#ifndef PJVM_EXEC_LOCAL_JOIN_H_
#define PJVM_EXEC_LOCAL_JOIN_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "engine/node.h"

namespace pjvm {

/// \brief One match produced by a local join: the probing (outer) tuple
/// paired with a fragment (inner) tuple.
struct JoinedPair {
  Row outer;
  Row inner;
};

/// \brief Joins `outer` tuples against the local fragment of `table` at
/// `node` using the index on `inner_col` (index nested loops).
///
/// Charges, per outer tuple, one SEARCH plus one FETCH per match when the
/// index is non-clustered (via Node::IndexProbe).
Result<std::vector<JoinedPair>> IndexNestedLoopJoin(
    Node* node, const std::string& table, int inner_col,
    const std::vector<Row>& outer, int outer_col,
    uint64_t txn_id = kAutoCommitTxnId);

/// \brief Joins `outer` tuples against the local fragment of `table` at
/// `node` with a sort-merge join under `memory_pages` of sort memory.
///
/// Cost model (matching the paper's Section 3.1.2): the time is dominated by
/// the inner fragment — a scan (|B_i| page I/Os) when the fragment is
/// clustered on `inner_col`, or a sort (|B_i| * ceil(log_M |B_i|)) when not.
/// The outer side is assumed to fit in memory (the paper's assumption 3).
/// Pages are charged to `node` in `tracker`.
Result<std::vector<JoinedPair>> SortMergeJoinFragment(
    Node* node, const std::string& table, int inner_col,
    const std::vector<Row>& outer, int outer_col, int memory_pages,
    CostTracker* tracker, uint64_t txn_id = kAutoCommitTxnId);

}  // namespace pjvm

#endif  // PJVM_EXEC_LOCAL_JOIN_H_
