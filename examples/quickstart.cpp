// Quickstart: stand up a 4-node parallel system, create two partitioned
// base tables, declare a materialized join view in SQL, pick a maintenance
// method, and watch the view stay correct under inserts/deletes/updates.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "engine/system.h"
#include "sql/parser.h"
#include "view/view_manager.h"

using namespace pjvm;

int main() {
  // 1. A shared-nothing parallel RDBMS with 4 data server nodes.
  SystemConfig config;
  config.num_nodes = 4;
  ParallelSystem sys(config);

  // 2. Two base relations, hash-partitioned on their keys — note that
  //    neither is partitioned on the join attribute, which is exactly the
  //    situation where view maintenance gets expensive.
  TableDef customers;
  customers.name = "customers";
  customers.schema = Schema({{"id", ValueType::kInt64},
                             {"region", ValueType::kInt64},
                             {"name", ValueType::kString}});
  customers.partition = PartitionSpec::Hash("id");
  sys.CreateTable(customers).Check();

  TableDef orders;
  orders.name = "orders";
  orders.schema = Schema({{"order_id", ValueType::kInt64},
                          {"customer_id", ValueType::kInt64},
                          {"amount", ValueType::kDouble}});
  orders.partition = PartitionSpec::Hash("order_id");
  sys.CreateTable(orders).Check();

  // 3. Some initial data.
  for (int64_t i = 0; i < 8; ++i) {
    sys.Insert("customers",
               {Value{i}, Value{i % 3}, Value{"Customer#" + std::to_string(i)}})
        .Check();
    sys.Insert("orders", {Value{100 + i}, Value{i % 8}, Value{42.5 * (i + 1)}})
        .Check();
  }

  // 4. Declare a materialized join view in SQL and register it under the
  //    auxiliary relation method — the paper's cheap single-node scheme.
  ViewManager manager(&sys);
  auto view_def = sql::ParseCreateView(
      "CREATE JOIN VIEW customer_orders AS "
      "SELECT c.name, c.region, o.order_id, o.amount "
      "FROM customers c, orders o "
      "WHERE c.id = o.customer_id AND o.amount > 50.0 "
      "PARTITIONED ON c.region;");
  view_def.status().Check();
  manager.RegisterView(*view_def, MaintenanceMethod::kAuxRelation).Check();
  std::printf("view registered: %s\n", view_def->ToString().c_str());
  std::printf("backfilled rows: %zu\n\n",
              manager.view("customer_orders")->RowCount());

  // 5. Updates maintain the view incrementally, inside one distributed
  //    transaction per call. Costs are metered as the paper's SEARCH /
  //    FETCH / INSERT / SEND primitives.
  sys.cost().Reset();
  manager.InsertRow("orders", {Value{200}, Value{3}, Value{99.0}})
      .status()
      .Check();
  std::printf("after insert: %zu view rows, cost: %s\n",
              manager.view("customer_orders")->RowCount(),
              sys.cost().ToString().c_str());

  manager.DeleteRow("orders", {Value{103}, Value{3}, Value{42.5 * 4}})
      .status()
      .Check();
  manager
      .UpdateRow("customers", {Value{3}, Value{0}, Value{"Customer#3"}},
                 {Value{3}, Value{2}, Value{"Customer#3-moved"}})
      .status()
      .Check();
  std::printf("after delete+update: %zu view rows\n",
              manager.view("customer_orders")->RowCount());

  // 6. Query the view (routed by its partitioning attribute) and verify it
  //    against a from-scratch recomputation.
  auto rows = sys.SelectEq("customer_orders", "c.region", Value{2});
  rows.status().Check();
  std::printf("\nview rows in region 2:\n");
  for (const Row& row : *rows) {
    std::printf("  %s\n", RowToString(row).c_str());
  }
  manager.CheckAllConsistent().Check();
  std::printf("\nconsistency check passed: view == from-scratch join\n");
  return 0;
}
