#include "view/explain.h"

#include <cstdio>
#include <sstream>

namespace pjvm {

int CountTouchedNodes(const std::vector<NodeCounters>& deltas) {
  int touched = 0;
  for (const NodeCounters& c : deltas) {
    if (c.searches + c.fetches + c.inserts + c.sends > 0) ++touched;
  }
  return touched;
}

std::string MaintenanceAnalysis::ToString() const {
  std::ostringstream os;
  char line[256];
  os << "EXPLAIN ANALYZE maintenance of '" << table << "' (+"
     << base_inserts << "/-" << base_deletes << " base rows)\n";
  std::snprintf(line, sizeof(line),
                "  %-5s %9s %9s %9s %7s | %6s %6s %6s | %10s\n", "node",
                "searches", "fetches", "inserts", "sends", "base_w", "struct",
                "view_w", "IO");
  os << line;
  for (size_t i = 0; i < per_node.size(); ++i) {
    const NodeCounters& c = per_node[i];
    if (c.searches + c.fetches + c.inserts + c.sends == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  %-5zu %9llu %9llu %9llu %7llu | %6llu %6llu %6llu | "
                  "%10.1f\n",
                  i, static_cast<unsigned long long>(c.searches),
                  static_cast<unsigned long long>(c.fetches),
                  static_cast<unsigned long long>(c.inserts),
                  static_cast<unsigned long long>(c.sends),
                  static_cast<unsigned long long>(c.base_writes),
                  static_cast<unsigned long long>(c.structure_writes),
                  static_cast<unsigned long long>(c.view_writes), c.IO(weights));
    os << line;
  }
  for (const ViewPhase& phase : views) {
    std::snprintf(line, sizeof(line),
                  "  view %s [%s]: +%zu/-%zu rows, %zu probes, %d node(s), "
                  "%.3f ms\n",
                  phase.view.c_str(), MaintenanceMethodToString(phase.method),
                  phase.rows_inserted, phase.rows_deleted, phase.probes,
                  phase.nodes_touched, phase.wall_ms);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "  TW=%.1f RT=%.1f messages=%llu bytes=%llu "
                "nodes_touched=%d/%zu structure_writes=%zu wall=%.3f ms\n",
                total_workload, response_time,
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(bytes_sent), nodes_touched,
                per_node.size(), report.structure_writes, wall_ms);
  os << line;
  if (attempts > 1) {
    std::snprintf(line, sizeof(line),
                  "  retries: %d attempts, %.3f ms backoff\n", attempts,
                  static_cast<double>(backoff_ns) / 1e6);
    os << line;
    for (size_t i = 0; i < attempt_aborts.size(); ++i) {
      os << "    attempt " << (i + 1) << " aborted: " << attempt_aborts[i]
         << "\n";
    }
  }
  if (escalations > 0) {
    std::snprintf(line, sizeof(line),
                  "  escalations: %llu fragment lock(s) replaced %llu key "
                  "lock entries\n",
                  static_cast<unsigned long long>(escalations),
                  static_cast<unsigned long long>(lock_entries_reclaimed));
    os << line;
  }
  if (escrow_ops > 0 || vlock_upgrades > 0) {
    std::snprintf(line, sizeof(line),
                  "  escrow: %llu in-place group increment(s) under V locks, "
                  "%llu V->X upgrade(s)\n",
                  static_cast<unsigned long long>(escrow_ops),
                  static_cast<unsigned long long>(vlock_upgrades));
    os << line;
  }
  if (!report.notes.empty()) os << "  notes: " << report.notes << "\n";
  return os.str();
}

namespace {

// Minimal JSON string escaping for abort reasons (quotes and backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string MaintenanceAnalysis::ToJson() const {
  std::ostringstream os;
  os << "{\"table\":\"" << table << "\",\"base_inserts\":" << base_inserts
     << ",\"base_deletes\":" << base_deletes << ",\"per_node\":[";
  for (size_t i = 0; i < per_node.size(); ++i) {
    const NodeCounters& c = per_node[i];
    if (i > 0) os << ",";
    os << "{\"node\":" << i << ",\"searches\":" << c.searches
       << ",\"fetches\":" << c.fetches << ",\"inserts\":" << c.inserts
       << ",\"sends\":" << c.sends << ",\"base_writes\":" << c.base_writes
       << ",\"structure_writes\":" << c.structure_writes
       << ",\"view_writes\":" << c.view_writes << ",\"io\":" << c.IO(weights)
       << "}";
  }
  os << "],\"views\":[";
  for (size_t i = 0; i < views.size(); ++i) {
    const ViewPhase& phase = views[i];
    if (i > 0) os << ",";
    os << "{\"view\":\"" << phase.view << "\",\"method\":\""
       << MaintenanceMethodToString(phase.method)
       << "\",\"rows_inserted\":" << phase.rows_inserted
       << ",\"rows_deleted\":" << phase.rows_deleted
       << ",\"probes\":" << phase.probes
       << ",\"nodes_touched\":" << phase.nodes_touched
       << ",\"wall_ms\":" << phase.wall_ms << "}";
  }
  os << "],\"total_workload\":" << total_workload
     << ",\"response_time\":" << response_time << ",\"messages\":" << messages
     << ",\"bytes_sent\":" << bytes_sent
     << ",\"nodes_touched\":" << nodes_touched << ",\"wall_ms\":" << wall_ms
     << ",\"attempts\":" << attempts << ",\"backoff_ns\":" << backoff_ns
     << ",\"escalations\":" << escalations
     << ",\"lock_entries_reclaimed\":" << lock_entries_reclaimed
     << ",\"escrow_ops\":" << escrow_ops
     << ",\"vlock_upgrades\":" << vlock_upgrades
     << ",\"attempt_aborts\":[";
  for (size_t i = 0; i < attempt_aborts.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(attempt_aborts[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

}  // namespace pjvm
