#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/row_id.h"

namespace pjvm {
namespace {

using Tree = BPlusTree<uint64_t>;

TEST(BTreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_keys(), 0u);
  EXPECT_EQ(t.num_items(), 0u);
  EXPECT_EQ(t.Find(Value{1}), nullptr);
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BTreeTest, SingleInsertFind) {
  Tree t;
  t.Insert(Value{5}, 100);
  ASSERT_NE(t.Find(Value{5}), nullptr);
  EXPECT_EQ(t.Find(Value{5})->at(0), 100u);
  EXPECT_EQ(t.Find(Value{6}), nullptr);
  EXPECT_EQ(t.num_keys(), 1u);
  EXPECT_EQ(t.num_items(), 1u);
}

TEST(BTreeTest, DuplicateKeysShareEntry) {
  Tree t;
  t.Insert(Value{5}, 1);
  t.Insert(Value{5}, 2);
  t.Insert(Value{5}, 3);
  const auto* list = t.Find(Value{5});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->size(), 3u);
  EXPECT_EQ(t.num_keys(), 1u);
  EXPECT_EQ(t.num_items(), 3u);
}

TEST(BTreeTest, SplitsKeepAllKeysFindable) {
  Tree t(/*max_keys=*/4);
  for (int64_t i = 0; i < 500; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  EXPECT_GT(t.height(), 1);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_NE(t.Find(Value{i}), nullptr) << "missing key " << i;
  }
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

TEST(BTreeTest, ReverseInsertionOrder) {
  Tree t(4);
  for (int64_t i = 499; i >= 0; --i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  for (int64_t i = 0; i < 500; ++i) ASSERT_NE(t.Find(Value{i}), nullptr);
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

TEST(BTreeTest, RemoveMissingKeyFails) {
  Tree t;
  t.Insert(Value{1}, 10);
  EXPECT_TRUE(t.Remove(Value{2}, 10).IsNotFound());
  EXPECT_TRUE(t.Remove(Value{1}, 99).IsNotFound());
  EXPECT_TRUE(t.Remove(Value{1}, 10).ok());
  EXPECT_TRUE(t.empty());
}

TEST(BTreeTest, RemoveOneDuplicateKeepsOthers) {
  Tree t;
  t.Insert(Value{7}, 1);
  t.Insert(Value{7}, 2);
  EXPECT_TRUE(t.Remove(Value{7}, 1).ok());
  const auto* list = t.Find(Value{7});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->size(), 1u);
  EXPECT_EQ(list->at(0), 2u);
}

TEST(BTreeTest, DeleteEverythingAscending) {
  Tree t(4);
  for (int64_t i = 0; i < 300; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(t.Remove(Value{i}, static_cast<uint64_t>(i)).ok()) << i;
    ASSERT_TRUE(t.CheckInvariants().ok()) << i << ": " << t.CheckInvariants();
  }
  EXPECT_TRUE(t.empty());
}

TEST(BTreeTest, DeleteEverythingDescending) {
  Tree t(4);
  for (int64_t i = 0; i < 300; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  for (int64_t i = 299; i >= 0; --i) {
    ASSERT_TRUE(t.Remove(Value{i}, static_cast<uint64_t>(i)).ok()) << i;
    ASSERT_TRUE(t.CheckInvariants().ok()) << i << ": " << t.CheckInvariants();
  }
  EXPECT_TRUE(t.empty());
}

TEST(BTreeTest, ScanRangeInOrder) {
  Tree t(8);
  for (int64_t i = 0; i < 100; ++i) t.Insert(Value{i * 2}, static_cast<uint64_t>(i));
  std::vector<int64_t> keys;
  t.ScanRange(Value{10}, Value{30}, [&](const Value& k, const uint64_t&) {
    keys.push_back(k.AsInt64());
    return true;
  });
  std::vector<int64_t> expected = {10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30};
  EXPECT_EQ(keys, expected);
}

TEST(BTreeTest, ScanRangeEarlyStop) {
  Tree t;
  for (int64_t i = 0; i < 20; ++i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  int visits = 0;
  t.ScanRange(Value{0}, Value{19}, [&](const Value&, const uint64_t&) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(BTreeTest, ForEachEntryVisitsAllInOrder) {
  Tree t(4);
  for (int64_t i = 50; i >= 1; --i) t.Insert(Value{i}, static_cast<uint64_t>(i));
  int64_t prev = 0;
  size_t count = 0;
  t.ForEachEntry([&](const Value& k, const Tree::PostingList& list) {
    EXPECT_GT(k.AsInt64(), prev);
    prev = k.AsInt64();
    count += list.size();
    return true;
  });
  EXPECT_EQ(count, 50u);
}

TEST(BTreeTest, StringKeys) {
  Tree t(4);
  std::vector<std::string> words = {"pear", "apple", "fig",   "kiwi",
                                    "lime", "mango", "grape", "plum"};
  for (size_t i = 0; i < words.size(); ++i) {
    t.Insert(Value{words[i]}, static_cast<uint64_t>(i));
  }
  for (size_t i = 0; i < words.size(); ++i) {
    const auto* list = t.Find(Value{words[i]});
    ASSERT_NE(list, nullptr);
    EXPECT_EQ(list->at(0), i);
  }
  // In-order scan yields sorted words.
  std::vector<std::string> scanned;
  t.ForEachEntry([&](const Value& k, const Tree::PostingList&) {
    scanned.push_back(k.AsString());
    return true;
  });
  std::vector<std::string> sorted = words;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(scanned, sorted);
}

TEST(BTreeTest, GlobalRowIdPayload) {
  BPlusTree<GlobalRowId> t;
  t.Insert(Value{1}, GlobalRowId{2, 77});
  t.Insert(Value{1}, GlobalRowId{3, 12});
  const auto* list = t.Find(Value{1});
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0], (GlobalRowId{2, 77}));
  EXPECT_TRUE(t.Remove(Value{1}, GlobalRowId{2, 77}).ok());
  EXPECT_EQ(t.Find(Value{1})->size(), 1u);
}

// Property-style fuzz against a reference std::multimap, over several tree
// fanouts and seeds.
class BTreeFuzzTest : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BTreeFuzzTest, MatchesReferenceUnderRandomOps) {
  auto [max_keys, seed] = GetParam();
  Tree t(max_keys);
  std::multimap<int64_t, uint64_t> ref;
  Rng rng(seed);
  for (int step = 0; step < 4000; ++step) {
    int64_t key = rng.UniformInt(0, 80);
    if (rng.Bernoulli(0.6) || ref.empty()) {
      uint64_t item = rng.Next() % 1000;
      t.Insert(Value{key}, item);
      ref.emplace(key, item);
    } else {
      auto range = ref.equal_range(key);
      if (range.first == range.second) {
        EXPECT_TRUE(t.Remove(Value{key}, 0).IsNotFound());
      } else {
        uint64_t item = range.first->second;
        ASSERT_TRUE(t.Remove(Value{key}, item).ok());
        ref.erase(range.first);
      }
    }
    if (step % 256 == 0) {
      ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
    }
  }
  ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  EXPECT_EQ(t.num_items(), ref.size());
  // Every reference key's multiset matches.
  for (auto it = ref.begin(); it != ref.end();) {
    int64_t key = it->first;
    std::multiset<uint64_t> want;
    while (it != ref.end() && it->first == key) want.insert(it++->second);
    const auto* list = t.Find(Value{key});
    ASSERT_NE(list, nullptr) << "key " << key;
    std::multiset<uint64_t> got(list->begin(), list->end());
    EXPECT_EQ(got, want) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndSeeds, BTreeFuzzTest,
    ::testing::Combine(::testing::Values(4, 8, 64),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace pjvm
