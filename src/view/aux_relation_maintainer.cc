#include "view/aux_relation_maintainer.h"

#include "view/merged_storage.h"

namespace pjvm {

Status AuxRelationMaintainer::ProcessSign(uint64_t txn, int updated_base,
                                          const MaintenancePlan& plan,
                                          const std::vector<Row>& rows,
                                          const std::vector<GlobalRowId>& gids,
                                          bool is_delete,
                                          MaintenanceReport* report) {
  // If the updated base has an AR on the first step's join attribute (or is
  // itself partitioned on it), the structure-maintenance phase already
  // shipped each delta tuple to that attribute's hash home; seed there so
  // the first probe is local, matching the paper's single "send to node j".
  int colocate_col = -1;
  if (!plan.steps.empty()) {
    const PlanStep& first = plan.steps.front();
    const TableDef& updated_def = bound().base_def(updated_base);
    bool has_structure =
        resolver_
            ->ArFor(updated_def.name, first.source_col,
                    bound().needed_cols(updated_base),
                    bound().base_preds(updated_base))
            .ok() ||
        (updated_def.partition.is_hash() &&
         updated_def.PartitionColumn() == first.source_col);
    if (has_structure) colocate_col = first.source_col;
  }

  PJVM_ASSIGN_OR_RETURN(std::vector<Partial> partials,
                        SeedPartials(updated_base, rows, gids, colocate_col));
  MergedViewStorage* merged = resolver_->MergedFor(view_->table_name());
  for (const PlanStep& step : plan.steps) {
    // Merged co-clustered layout: a step targeting a cluster member probes
    // the view's merged tree — one range descent instead of an AR index
    // search per tuple. Non-member targets keep the AR path below.
    if (merged != nullptr &&
        merged->CoversBase(step.target_base, step.target_col)) {
      PJVM_ASSIGN_OR_RETURN(
          partials, MergedRoutedStep(txn, step, merged, partials, report));
      if (partials.empty()) return Status::OK();
      continue;
    }
    const TableDef& target_def = bound().base_def(step.target_base);
    ProbeTarget target;
    if (target_def.partition.is_hash() &&
        target_def.PartitionColumn() == step.target_col) {
      // "If some base relation is partitioned on the join attribute, the
      // auxiliary relation for that base relation is unnecessary."
      target = BaseProbeTarget(step);
    } else {
      PJVM_ASSIGN_OR_RETURN(
          ArAccess ar,
          resolver_->ArFor(target_def.name, step.target_col,
                           bound().needed_cols(step.target_base),
                           bound().base_preds(step.target_base)));
      target.table = ar.table;
      target.probe_col = ar.probe_col;
      target.needed_map = ar.needed_pos;
      target.preds = ar.residual_preds;
    }
    PJVM_ASSIGN_OR_RETURN(partials,
                          RoutedStep(txn, step, target, partials, report));
    if (partials.empty()) return Status::OK();
  }
  return EmitToView(txn, partials, is_delete, report);
}

}  // namespace pjvm
