#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "storage/heap_file.h"
#include "storage/stats.h"
#include "storage/table_fragment.h"

namespace pjvm {
namespace {

// ---------------------------------------------------------------- HeapFile

TEST(HeapFileTest, InsertGetDelete) {
  HeapFile heap(4);
  LocalRowId a = heap.Insert({Value{1}});
  LocalRowId b = heap.Insert({Value{2}});
  EXPECT_EQ(heap.num_rows(), 2u);
  ASSERT_NE(heap.Get(a), nullptr);
  EXPECT_EQ((*heap.Get(a))[0], Value{1});
  EXPECT_TRUE(heap.Delete(a).ok());
  EXPECT_EQ(heap.Get(a), nullptr);
  EXPECT_EQ(heap.num_rows(), 1u);
  ASSERT_NE(heap.Get(b), nullptr);
}

TEST(HeapFileTest, DeleteMissingIsNotFound) {
  HeapFile heap;
  EXPECT_TRUE(heap.Delete(0).IsNotFound());
  LocalRowId a = heap.Insert({Value{1}});
  EXPECT_TRUE(heap.Delete(a).ok());
  EXPECT_TRUE(heap.Delete(a).IsNotFound());
}

TEST(HeapFileTest, SlotsAreRecycled) {
  HeapFile heap;
  LocalRowId a = heap.Insert({Value{1}});
  ASSERT_TRUE(heap.Delete(a).ok());
  LocalRowId b = heap.Insert({Value{2}});
  EXPECT_EQ(a, b);
  EXPECT_EQ((*heap.Get(b))[0], Value{2});
}

TEST(HeapFileTest, RidsAreStableAcrossOtherDeletes) {
  HeapFile heap;
  LocalRowId a = heap.Insert({Value{1}});
  LocalRowId b = heap.Insert({Value{2}});
  LocalRowId c = heap.Insert({Value{3}});
  ASSERT_TRUE(heap.Delete(b).ok());
  EXPECT_EQ((*heap.Get(a))[0], Value{1});
  EXPECT_EQ((*heap.Get(c))[0], Value{3});
}

TEST(HeapFileTest, PageAccounting) {
  HeapFile heap(/*rows_per_page=*/4);
  EXPECT_EQ(heap.num_pages(), 0u);
  for (int i = 0; i < 9; ++i) heap.Insert({Value{i}});
  EXPECT_EQ(heap.num_pages(), 3u);  // ceil(9/4)
  EXPECT_EQ(heap.PageOf(0), 0u);
  EXPECT_EQ(heap.PageOf(3), 0u);
  EXPECT_EQ(heap.PageOf(4), 1u);
  EXPECT_EQ(heap.PageOf(8), 2u);
}

TEST(HeapFileTest, ByteSizeTracksLiveRows) {
  HeapFile heap;
  LocalRowId a = heap.Insert({Value{1}, Value{"abcd"}});  // 8 + 5
  EXPECT_EQ(heap.byte_size(), 13u);
  heap.Insert({Value{2}});
  EXPECT_EQ(heap.byte_size(), 21u);
  ASSERT_TRUE(heap.Delete(a).ok());
  EXPECT_EQ(heap.byte_size(), 8u);
}

TEST(HeapFileTest, UpdateReplacesInPlace) {
  HeapFile heap;
  LocalRowId a = heap.Insert({Value{1}});
  ASSERT_TRUE(heap.Update(a, {Value{9}}).ok());
  EXPECT_EQ((*heap.Get(a))[0], Value{9});
  EXPECT_TRUE(heap.Update(999, {Value{1}}).IsNotFound());
}

TEST(HeapFileTest, ForEachSkipsDeleted) {
  HeapFile heap;
  heap.Insert({Value{1}});
  LocalRowId b = heap.Insert({Value{2}});
  heap.Insert({Value{3}});
  ASSERT_TRUE(heap.Delete(b).ok());
  std::vector<int64_t> seen;
  heap.ForEach([&](LocalRowId, const Row& row) {
    seen.push_back(row[0].AsInt64());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 3}));
}

// ------------------------------------------------------------ TableFragment

Schema KvSchema() {
  return Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}});
}

TEST(FragmentTest, InsertValidatesSchema) {
  TableFragment frag(KvSchema());
  EXPECT_TRUE(frag.Insert({Value{1}, Value{"a"}}).ok());
  EXPECT_FALSE(frag.Insert({Value{1}}).ok());
  EXPECT_FALSE(frag.Insert({Value{"x"}, Value{"a"}}).ok());
  EXPECT_EQ(frag.num_rows(), 1u);
}

TEST(FragmentTest, IndexProbeFindsMatches) {
  TableFragment frag(KvSchema());
  ASSERT_TRUE(frag.CreateIndex(0, /*clustered=*/false).ok());
  ASSERT_TRUE(frag.Insert({Value{1}, Value{"a"}}).ok());
  ASSERT_TRUE(frag.Insert({Value{2}, Value{"b"}}).ok());
  ASSERT_TRUE(frag.Insert({Value{1}, Value{"c"}}).ok());
  auto probe = frag.Probe(0, Value{1});
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->rows.size(), 2u);
  EXPECT_EQ(frag.Probe(0, Value{99})->rows.size(), 0u);
}

TEST(FragmentTest, ProbeWithoutIndexFails) {
  TableFragment frag(KvSchema());
  EXPECT_FALSE(frag.Probe(0, Value{1}).ok());
  // ScanEq works without an index.
  ASSERT_TRUE(frag.Insert({Value{1}, Value{"a"}}).ok());
  EXPECT_EQ(frag.ScanEq(0, Value{1}).rows.size(), 1u);
}

TEST(FragmentTest, IndexBackfillsExistingRows) {
  TableFragment frag(KvSchema());
  ASSERT_TRUE(frag.Insert({Value{5}, Value{"a"}}).ok());
  ASSERT_TRUE(frag.Insert({Value{5}, Value{"b"}}).ok());
  ASSERT_TRUE(frag.CreateIndex(0, false).ok());
  EXPECT_EQ(frag.Probe(0, Value{5})->rows.size(), 2u);
  EXPECT_TRUE(frag.CheckInvariants().ok());
}

TEST(FragmentTest, AtMostOneClusteredIndex) {
  TableFragment frag(KvSchema());
  ASSERT_TRUE(frag.CreateIndex(0, /*clustered=*/true).ok());
  EXPECT_FALSE(frag.CreateIndex(1, /*clustered=*/true).ok());
  EXPECT_TRUE(frag.CreateIndex(1, /*clustered=*/false).ok());
}

TEST(FragmentTest, DuplicateIndexRejected) {
  TableFragment frag(KvSchema());
  ASSERT_TRUE(frag.CreateIndex(0, false).ok());
  EXPECT_EQ(frag.CreateIndex(0, false).code(), StatusCode::kAlreadyExists);
}

TEST(FragmentTest, DeleteExactRemovesOneInstance) {
  TableFragment frag(KvSchema());
  frag.EnableRowLookup();
  Row dup = {Value{1}, Value{"same"}};
  ASSERT_TRUE(frag.Insert(dup).ok());
  ASSERT_TRUE(frag.Insert(dup).ok());
  ASSERT_TRUE(frag.DeleteExact(dup).ok());
  EXPECT_EQ(frag.num_rows(), 1u);
  ASSERT_TRUE(frag.DeleteExact(dup).ok());
  EXPECT_EQ(frag.num_rows(), 0u);
  EXPECT_TRUE(frag.DeleteExact(dup).status().IsNotFound());
}

TEST(FragmentTest, DeleteExactWorksWithoutLookup) {
  TableFragment frag(KvSchema());
  ASSERT_TRUE(frag.Insert({Value{1}, Value{"a"}}).ok());
  ASSERT_TRUE(frag.DeleteExact({Value{1}, Value{"a"}}).ok());
  EXPECT_EQ(frag.num_rows(), 0u);
}

TEST(FragmentTest, DeleteMaintainsIndexes) {
  TableFragment frag(KvSchema());
  frag.EnableRowLookup();
  ASSERT_TRUE(frag.CreateIndex(0, false).ok());
  ASSERT_TRUE(frag.Insert({Value{1}, Value{"a"}}).ok());
  ASSERT_TRUE(frag.Insert({Value{1}, Value{"b"}}).ok());
  ASSERT_TRUE(frag.DeleteExact({Value{1}, Value{"a"}}).ok());
  auto probe = frag.Probe(0, Value{1});
  ASSERT_TRUE(probe.ok());
  ASSERT_EQ(probe->rows.size(), 1u);
  EXPECT_EQ(probe->rows[0][1], Value{"b"});
  EXPECT_TRUE(frag.CheckInvariants().ok()) << frag.CheckInvariants();
}

TEST(FragmentTest, ProbeReportsPagesTouched) {
  TableFragment frag(KvSchema(), /*rows_per_page=*/2);
  ASSERT_TRUE(frag.CreateIndex(0, true).ok());
  // Four matching rows across two pages (rids 0..3, 2 per page).
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(frag.Insert({Value{7}, Value{"x"}}).ok());
  }
  auto probe = frag.Probe(0, Value{7});
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->rows.size(), 4u);
  EXPECT_EQ(probe->pages_touched, 2u);
}

TEST(FragmentTest, RandomizedInvariants) {
  TableFragment frag(KvSchema());
  frag.EnableRowLookup();
  ASSERT_TRUE(frag.CreateIndex(0, false).ok());
  ASSERT_TRUE(frag.CreateIndex(1, false).ok());
  Rng rng(99);
  std::vector<Row> live;
  for (int step = 0; step < 2000; ++step) {
    if (rng.Bernoulli(0.65) || live.empty()) {
      Row row = {Value{rng.UniformInt(0, 50)},
                 Value{std::string(1, static_cast<char>('a' + rng.UniformInt(0, 25)))}};
      ASSERT_TRUE(frag.Insert(row).ok());
      live.push_back(row);
    } else {
      size_t pick = rng.Next() % live.size();
      ASSERT_TRUE(frag.DeleteExact(live[pick]).ok());
      live.erase(live.begin() + pick);
    }
  }
  EXPECT_EQ(frag.num_rows(), live.size());
  ASSERT_TRUE(frag.CheckInvariants().ok()) << frag.CheckInvariants();
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, ComputeFromIndex) {
  TableFragment frag(KvSchema());
  ASSERT_TRUE(frag.CreateIndex(0, false).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(frag.Insert({Value{i % 4}, Value{"x"}}).ok());
  }
  ColumnStats stats = ComputeColumnStats(frag, 0);
  EXPECT_EQ(stats.row_count, 12u);
  EXPECT_EQ(stats.distinct_count, 4u);
  EXPECT_DOUBLE_EQ(stats.AvgFanout(), 3.0);
}

TEST(StatsTest, ComputeByScanWithoutIndex) {
  TableFragment frag(KvSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(frag.Insert({Value{i % 5}, Value{"x"}}).ok());
  }
  ColumnStats stats = ComputeColumnStats(frag, 0);
  EXPECT_EQ(stats.row_count, 10u);
  EXPECT_EQ(stats.distinct_count, 5u);
}

TEST(StatsTest, MergeSums) {
  ColumnStats a{10, 5};
  ColumnStats b{20, 10};
  ColumnStats merged = MergeColumnStats({a, b});
  EXPECT_EQ(merged.row_count, 30u);
  EXPECT_EQ(merged.distinct_count, 15u);
  EXPECT_DOUBLE_EQ(merged.AvgFanout(), 2.0);
}

TEST(StatsTest, EmptyFanoutIsZero) {
  ColumnStats empty;
  EXPECT_DOUBLE_EQ(empty.AvgFanout(), 0.0);
}

}  // namespace
}  // namespace pjvm
