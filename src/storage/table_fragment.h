#ifndef PJVM_STORAGE_TABLE_FRAGMENT_H_
#define PJVM_STORAGE_TABLE_FRAGMENT_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/mvcc.h"
#include "storage/row_id.h"

namespace pjvm {

/// \brief A secondary access path on one fragment column.
struct LocalIndex {
  int column = -1;
  /// Clustered means the fragment is physically organized so that all rows
  /// with one key value are co-located (the paper charges zero FETCHes for a
  /// clustered probe on that assumption; a non-clustered probe pays one FETCH
  /// per matching row).
  bool clustered = false;
  BPlusTree<LocalRowId> tree;

  LocalIndex(int col, bool is_clustered)
      : column(col), clustered(is_clustered) {}
};

/// \brief Result of an index probe: the matching rows and their rids.
struct ProbeResult {
  std::vector<Row> rows;
  std::vector<LocalRowId> rids;
  /// Distinct heap pages the matches live on (what a clustered probe pays).
  size_t pages_touched = 0;
};

/// \brief One node's horizontal fragment of a table: a heap file plus any
/// local indexes, and optionally an exact-row lookup structure.
///
/// Fragments are the unit the engine's per-node operations act on; all cost
/// accounting (SEARCH/FETCH/INSERT) is done by the caller, which knows the
/// node identity, using the counts this class reports.
class TableFragment {
 public:
  explicit TableFragment(Schema schema, int rows_per_page = 64);

  TableFragment(const TableFragment&) = delete;
  TableFragment& operator=(const TableFragment&) = delete;

  const Schema& schema() const { return schema_; }

  /// Creates an index on `column`. At most one index per fragment may be
  /// clustered, and at most one index per column may exist.
  Status CreateIndex(int column, bool clustered);

  bool HasIndexOn(int column) const { return FindIndex(column) != nullptr; }
  bool has_indexes() const { return !indexes_.empty(); }
  size_t num_indexes() const { return indexes_.size(); }
  const LocalIndex* FindIndex(int column) const;
  /// All indexes, for callers that need to visit every access path (e.g.
  /// index-key locking).
  std::vector<const LocalIndex*> Indexes() const;

  /// Enables O(1) lookup of rows by full content (used by view fragments so
  /// incremental deletes do not scan).
  void EnableRowLookup();

  /// Inserts a row (validated against the schema), maintaining all indexes.
  Result<LocalRowId> Insert(Row row);

  /// Deletes the row at `lrid`, maintaining all indexes. With `keep_slot`
  /// the heap slot stays reserved (see HeapFile::DeleteKeepSlot) so the row
  /// can be restored at the same lrid by InsertAt — the transactional-delete
  /// path, which must survive an abort without moving the row.
  Status DeleteByRid(LocalRowId lrid, bool keep_slot = false);

  /// Deletes one row equal to `row` (bag semantics: exactly one instance).
  /// Uses the row-lookup structure when enabled, otherwise scans.
  Result<LocalRowId> DeleteExact(const Row& row, bool keep_slot = false);

  /// Recycles a slot previously deleted with `keep_slot` (commit path).
  void ReleaseSlot(LocalRowId lrid) { heap_.ReleaseSlot(lrid); }

  /// Restores a row into its reserved slot, maintaining all indexes (abort
  /// path; the inverse of a keep_slot delete).
  Status InsertAt(LocalRowId lrid, Row row);

  /// Finds the rid of one row equal to `row` without deleting it.
  Result<LocalRowId> FindExact(const Row& row) const;

  /// All rows whose `column` equals `key`, via the index on that column.
  /// Returns InvalidArgument if no such index exists.
  Result<ProbeResult> Probe(int column, const Value& key) const;

  /// All rows whose `column` equals `key`, by scanning (no index needed).
  ProbeResult ScanEq(int column, const Value& key) const;

  const Row* Get(LocalRowId lrid) const { return heap_.Get(lrid); }

  /// Visits every live row. Returning false stops.
  void ForEach(const std::function<bool(LocalRowId, const Row&)>& fn) const {
    heap_.ForEach(fn);
  }

  /// Copies out all live rows (test/utility convenience).
  std::vector<Row> AllRows() const;

  size_t num_rows() const { return heap_.num_rows(); }
  size_t num_pages() const { return heap_.num_pages(); }
  size_t byte_size() const { return heap_.byte_size(); }
  const HeapFile& heap() const { return heap_; }

  /// Internal consistency: every index entry points at a live row with the
  /// indexed key, and every live row appears in every index.
  Status CheckInvariants() const;

  // --- Multi-version snapshot state (see storage/mvcc.h) ---
  //
  // When enabled, the fragment carries an immutable versioned snapshot
  // (base image + delta chain) published through one atomic shared_ptr.
  // Readers capture it with MvccHead() — a single wait-free acquire load —
  // and never touch the live heap/indexes. All *stores* (publish, fold,
  // reset) are serialized by the SnapshotManager's publish lock; the
  // fragment itself takes no locks.

  /// Builds the initial base image from the current live rows at `epoch`.
  void EnableMvcc(uint64_t epoch);
  bool mvcc_enabled() const { return mvcc_enabled_; }

  /// Current snapshot state (null when MVCC is off). Wait-free.
  std::shared_ptr<const MvccState> MvccHead() const {
    return mvcc_.load(std::memory_order_acquire);
  }

  /// Publishes one committed transaction's ops as a delta at `epoch`.
  /// Caller holds the SnapshotManager publish lock.
  void MvccPublish(uint64_t epoch, std::vector<MvccOp> ops);

  /// Folds the delta chain into a fresh base image when it has grown past
  /// the fold threshold AND every delta is at or below `watermark` (the
  /// minimum active read epoch) — folding a delta a live reader has not yet
  /// applied would tear its snapshot. Returns the number of deltas folded
  /// away (0 when nothing was done). Caller holds the publish lock.
  size_t MvccMaybeFold(uint64_t watermark);

  /// Rebuilds the snapshot state from the live rows at `epoch` (recovery,
  /// checkpoint restore, index DDL — quiescent points). Returns the number
  /// of chain deltas dropped. Caller holds the publish lock.
  size_t MvccResetFromLive(uint64_t epoch);

  /// Deltas currently chained above the base (metrics / tests).
  size_t MvccChainDeltas() const;

 private:
  void IndexInsert(LocalRowId lrid, const Row& row);
  Status IndexRemove(LocalRowId lrid, const Row& row);

  Schema schema_;
  HeapFile heap_;
  std::vector<std::unique_ptr<LocalIndex>> indexes_;
  bool has_clustered_ = false;

  bool row_lookup_enabled_ = false;
  std::unordered_map<uint64_t, std::vector<LocalRowId>> row_lookup_;

  std::shared_ptr<const MvccBase> BuildBaseFromLive(uint64_t epoch) const;

  bool mvcc_enabled_ = false;
  /// Fold once the chain carries at least this many ops (and the watermark
  /// allows). Amortizes the O(rows) fold against the writes that caused it.
  size_t mvcc_fold_ops_ = 64;
  std::atomic<std::shared_ptr<const MvccState>> mvcc_;
};

}  // namespace pjvm

#endif  // PJVM_STORAGE_TABLE_FRAGMENT_H_
