// Reproduces Figure 7: total workload (TW, I/Os) of a single-tuple insert
// vs the number of data server nodes L, for the five method variants.
//
// Two outputs: the analytical model's series (the paper's actual figure),
// and a *measured* overlay from the engine for the three implementable
// variants — the engine's metered I/O minus the base and view updates the
// model omits (validated to match exactly in cost_agreement_test).

#include <cstdio>

#include "bench/bench_util.h"
#include "model/figures.h"

namespace pjvm {
namespace {

double MeasuredTw(MaintenanceMethod method, int nodes, bool clustered) {
  SystemConfig sys_cfg;
  sys_cfg.num_nodes = nodes;
  sys_cfg.rows_per_page = 4;
  ParallelSystem sys(sys_cfg);
  TwoTableConfig cfg;
  cfg.b_join_keys = 100;
  cfg.fanout = 10;
  cfg.b_clustered_on_d = clustered;
  LoadTwoTable(&sys, cfg).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), method).Check();
  sys.cost().Reset();
  auto report = manager.InsertRow("A", MakeDeltaA(cfg, 0));
  report.status().Check();
  double insert_w = sys.config().weights.insert;
  return sys.cost().TotalWorkload() - insert_w -
         insert_w * static_cast<double>(report->view_rows_inserted);
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  model::Figure fig = model::MakeFigure7();
  model::PrintFigure(fig, std::cout);

  bench::PrintHeader("Figure 7 measured overlay (engine, N=10)");
  std::printf("%8s %14s %14s %14s\n", "nodes", "aux_measured",
              "naive_nc_meas", "gi_nc_meas");
  model::Figure measured;
  measured.title = "Figure 7 measured overlay (engine, N=10)";
  measured.xlabel = fig.xlabel;
  measured.ylabel = fig.ylabel;
  measured.series = {{"aux_measured", {}, {}},
                     {"naive_nc_measured", {}, {}},
                     {"gi_nc_measured", {}, {}}};
  for (int l : {2, 4, 8, 16, 32}) {
    double aux = MeasuredTw(MaintenanceMethod::kAuxRelation, l, true);
    double naive = MeasuredTw(MaintenanceMethod::kNaive, l, false);
    double gi = MeasuredTw(MaintenanceMethod::kGlobalIndex, l, false);
    std::printf("%8d %14.1f %14.1f %14.1f\n", l, aux, naive, gi);
    double ys[] = {aux, naive, gi};
    for (int s = 0; s < 3; ++s) {
      measured.series[s].xs.push_back(l);
      measured.series[s].ys.push_back(ys[s]);
    }
  }
  bench::BenchReport report("fig7_tw_vs_nodes");
  report.AddFigure("model", fig);
  report.AddFigure("measured", measured);
  report.Write();
  return 0;
}
