#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/catalog.h"
#include "engine/partitioner.h"
#include "engine/system.h"

namespace pjvm {
namespace {

Schema AbSchema() {
  return Schema({{"a", ValueType::kInt64}, {"c", ValueType::kInt64}});
}

TableDef HashTableDef(const std::string& name, const std::string& col) {
  TableDef def;
  def.name = name;
  def.schema = AbSchema();
  def.partition = PartitionSpec::Hash(col);
  return def;
}

// ---------------------------------------------------------------- Catalog

TEST(CatalogTest, AddAndGet) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(HashTableDef("A", "a")).ok());
  ASSERT_TRUE(cat.Has("A"));
  auto def = cat.Get("A");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ((*def)->name, "A");
  EXPECT_FALSE(cat.Get("B").ok());
}

TEST(CatalogTest, RejectsDuplicatesAndBadColumns) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(HashTableDef("A", "a")).ok());
  EXPECT_EQ(cat.AddTable(HashTableDef("A", "a")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(cat.AddTable(HashTableDef("B", "nope")).ok());
  TableDef bad_index = HashTableDef("C", "a");
  bad_index.indexes.push_back({"ghost", false});
  EXPECT_FALSE(cat.AddTable(bad_index).ok());
}

TEST(CatalogTest, RejectsTwoClusteredIndexes) {
  TableDef def = HashTableDef("A", "a");
  def.indexes.push_back({"a", true});
  def.indexes.push_back({"c", true});
  Catalog cat;
  EXPECT_FALSE(cat.AddTable(def).ok());
}

TEST(CatalogTest, ListByKind) {
  Catalog cat;
  TableDef base = HashTableDef("A", "a");
  TableDef aux = HashTableDef("ar_A", "c");
  aux.kind = TableKind::kAuxiliary;
  ASSERT_TRUE(cat.AddTable(base).ok());
  ASSERT_TRUE(cat.AddTable(aux).ok());
  EXPECT_EQ(cat.ListNames().size(), 2u);
  EXPECT_EQ(cat.ListNames(TableKind::kBase),
            (std::vector<std::string>{"A"}));
  EXPECT_EQ(cat.ListNames(TableKind::kAuxiliary),
            (std::vector<std::string>{"ar_A"}));
}

TEST(CatalogTest, PartitionColumnResolution) {
  TableDef def = HashTableDef("A", "c");
  EXPECT_EQ(def.PartitionColumn(), 1);
  TableDef rr;
  rr.name = "R";
  rr.schema = AbSchema();
  EXPECT_EQ(rr.PartitionColumn(), -1);
}

TEST(CatalogTest, DropTable) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(HashTableDef("A", "a")).ok());
  EXPECT_TRUE(cat.DropTable("A").ok());
  EXPECT_FALSE(cat.Has("A"));
  EXPECT_TRUE(cat.DropTable("A").IsNotFound());
}

// ------------------------------------------------------------- Partitioner

TEST(PartitionerTest, DeterministicAndInRange) {
  for (int64_t k = 0; k < 1000; ++k) {
    int node = NodeForKey(Value{k}, 8);
    EXPECT_GE(node, 0);
    EXPECT_LT(node, 8);
    EXPECT_EQ(node, NodeForKey(Value{k}, 8));
  }
}

TEST(PartitionerTest, SpreadsKeysAcrossNodes) {
  std::set<int> hit;
  for (int64_t k = 0; k < 200; ++k) hit.insert(NodeForKey(Value{k}, 8));
  EXPECT_EQ(hit.size(), 8u);
}

// ---------------------------------------------------------------- System

SystemConfig SmallConfig(int nodes = 4) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  return cfg;
}

TEST(SystemTest, CreateTableOnAllNodes) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(sys.node(i)->fragment("A"), nullptr);
  }
}

TEST(SystemTest, HashInsertRoutesToHomeNode) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  for (int64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k * 10}}).ok());
  }
  EXPECT_EQ(sys.RowCount("A"), 40u);
  // Every row is on its hash home node.
  for (int i = 0; i < 4; ++i) {
    sys.node(i)->fragment("A")->ForEach([&](LocalRowId, const Row& row) {
      EXPECT_EQ(NodeForKey(row[0], 4), i) << RowToString(row);
      return true;
    });
  }
}

TEST(SystemTest, RoundRobinSpreadsEvenly) {
  ParallelSystem sys(SmallConfig());
  TableDef def;
  def.name = "V";
  def.schema = AbSchema();
  def.partition = PartitionSpec::RoundRobin();
  ASSERT_TRUE(sys.CreateTable(def).ok());
  for (int64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(sys.Insert("V", {Value{k}, Value{k}}).ok());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sys.node(i)->fragment("V")->num_rows(), 5u);
  }
}

TEST(SystemTest, InsertChargesOneInsertAtOneNode) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  sys.cost().Reset();
  ASSERT_TRUE(sys.Insert("A", {Value{7}, Value{8}}).ok());
  EXPECT_DOUBLE_EQ(sys.cost().TotalWorkload(), 2.0);  // INSERT = 2 I/Os
  EXPECT_EQ(sys.cost().NodesTouched(), 1);
  EXPECT_EQ(sys.cost().TotalSends(), 0u);
}

TEST(SystemTest, InsertValidatesRows) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  EXPECT_FALSE(sys.Insert("A", {Value{"bad"}, Value{1}}).ok());
  EXPECT_FALSE(sys.Insert("NoSuch", {Value{1}, Value{1}}).ok());
}

TEST(SystemTest, DeleteExactHashRouted) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  Row row = {Value{3}, Value{33}};
  ASSERT_TRUE(sys.Insert("A", row).ok());
  ASSERT_TRUE(sys.DeleteExact("A", row).ok());
  EXPECT_EQ(sys.RowCount("A"), 0u);
  EXPECT_TRUE(sys.DeleteExact("A", row).IsNotFound());
}

TEST(SystemTest, DeleteExactRoundRobinSearchesNodes) {
  ParallelSystem sys(SmallConfig());
  TableDef def;
  def.name = "V";
  def.schema = AbSchema();
  ASSERT_TRUE(sys.CreateTable(def).ok());
  Row row = {Value{3}, Value{33}};
  ASSERT_TRUE(sys.Insert("V", row).ok());
  ASSERT_TRUE(sys.DeleteExact("V", row).ok());
  EXPECT_EQ(sys.RowCount("V"), 0u);
}

TEST(SystemTest, SelectEqOnPartitionColumnIsSingleNode) {
  ParallelSystem sys(SmallConfig());
  TableDef def = HashTableDef("A", "a");
  def.indexes.push_back({"a", false});
  ASSERT_TRUE(sys.CreateTable(def).ok());
  for (int64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}).ok());
  }
  sys.cost().Reset();
  auto rows = sys.SelectEq("A", "a", Value{5});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(sys.cost().NodesTouched(), 1);
}

TEST(SystemTest, SelectEqOnOtherColumnTouchesAllNodes) {
  ParallelSystem sys(SmallConfig());
  TableDef def = HashTableDef("A", "a");
  def.indexes.push_back({"c", false});
  ASSERT_TRUE(sys.CreateTable(def).ok());
  for (int64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k % 4}}).ok());
  }
  sys.cost().Reset();
  auto rows = sys.SelectEq("A", "c", Value{2});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 8u);
  EXPECT_EQ(sys.cost().NodesTouched(), 4);
}

TEST(SystemTest, IndexProbeChargesFetchesOnlyWhenNonClustered) {
  ParallelSystem sys(SmallConfig(1));
  TableDef def;
  def.name = "B";
  def.schema = AbSchema();
  def.partition = PartitionSpec::Hash("a");
  def.indexes.push_back({"c", false});
  ASSERT_TRUE(sys.CreateTable(def).ok());
  TableDef defc;
  defc.name = "Bc";
  defc.schema = AbSchema();
  defc.partition = PartitionSpec::Hash("a");
  defc.indexes.push_back({"c", true});
  ASSERT_TRUE(sys.CreateTable(defc).ok());
  for (int64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(sys.Insert("B", {Value{k}, Value{1}}).ok());
    ASSERT_TRUE(sys.Insert("Bc", {Value{k}, Value{1}}).ok());
  }
  int c_col = 1;
  sys.cost().Reset();
  ASSERT_TRUE(sys.node(0)->IndexProbe("B", c_col, Value{1}).ok());
  // Non-clustered: 1 search + 6 fetches = 7 I/Os.
  EXPECT_DOUBLE_EQ(sys.cost().TotalWorkload(), 7.0);
  sys.cost().Reset();
  ASSERT_TRUE(sys.node(0)->IndexProbe("Bc", c_col, Value{1}).ok());
  // Clustered: 1 search, matches ride along on the leaf page.
  EXPECT_DOUBLE_EQ(sys.cost().TotalWorkload(), 1.0);
}

TEST(SystemTest, ScanAllGathersEverything) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}).ok());
  }
  std::vector<Row> rows = sys.ScanAll("A");
  EXPECT_EQ(rows.size(), 10u);
}

TEST(SystemTest, CheckInvariantsPasses) {
  ParallelSystem sys(SmallConfig());
  TableDef def = HashTableDef("A", "a");
  def.indexes.push_back({"c", false});
  ASSERT_TRUE(sys.CreateTable(def).ok());
  for (int64_t k = 0; k < 25; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k % 3}}).ok());
  }
  EXPECT_TRUE(sys.CheckInvariants().ok());
}

TEST(SystemTest, DropTableRemovesFragments) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  ASSERT_TRUE(sys.DropTable("A").ok());
  EXPECT_EQ(sys.node(0)->fragment("A"), nullptr);
  EXPECT_FALSE(sys.catalog().Has("A"));
}

}  // namespace
}  // namespace pjvm
