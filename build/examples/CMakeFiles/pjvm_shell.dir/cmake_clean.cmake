file(REMOVE_RECURSE
  "CMakeFiles/pjvm_shell.dir/pjvm_shell.cpp.o"
  "CMakeFiles/pjvm_shell.dir/pjvm_shell.cpp.o.d"
  "pjvm_shell"
  "pjvm_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
