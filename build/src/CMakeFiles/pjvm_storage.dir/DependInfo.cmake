
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/pjvm_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/pjvm_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/histogram.cc" "src/CMakeFiles/pjvm_storage.dir/storage/histogram.cc.o" "gcc" "src/CMakeFiles/pjvm_storage.dir/storage/histogram.cc.o.d"
  "/root/repo/src/storage/stats.cc" "src/CMakeFiles/pjvm_storage.dir/storage/stats.cc.o" "gcc" "src/CMakeFiles/pjvm_storage.dir/storage/stats.cc.o.d"
  "/root/repo/src/storage/table_fragment.cc" "src/CMakeFiles/pjvm_storage.dir/storage/table_fragment.cc.o" "gcc" "src/CMakeFiles/pjvm_storage.dir/storage/table_fragment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
