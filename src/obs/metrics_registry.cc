#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace pjvm {

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string LabeledName(const std::string& base,
                        const std::vector<MetricLabel>& labels) {
  if (labels.empty()) return base;
  std::string out = base + "{";
  const char* sep = "";
  for (const MetricLabel& label : labels) {
    out += sep;
    out += label.key + "=\"" + EscapeLabelValue(label.value) + "\"";
    sep = ",";
  }
  out += "}";
  return out;
}

int HistogramData::BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  return 64 - std::countl_zero(v);  // floor(log2(v)) + 1, in [1, 64]
}

uint64_t HistogramData::BucketLo(int i) {
  if (i <= 0) return 0;
  return uint64_t{1} << (i - 1);
}

uint64_t HistogramData::BucketHi(int i) {
  if (i <= 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void HistogramData::Add(uint64_t v) {
  ++buckets[BucketIndex(v)];
  ++count;
  sum += v;
  if (count == 1) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count - 1);
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(cum + buckets[i]) > rank) {
      double within = (rank - static_cast<double>(cum)) /
                      static_cast<double>(buckets[i]);
      double lo = static_cast<double>(BucketLo(i));
      double hi = static_cast<double>(BucketHi(i));
      double v = lo + within * (hi - lo);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cum += buckets[i];
  }
  return static_cast<double>(max);
}

void LatencyHistogram::Record(uint64_t v) {
  buckets_[HistogramData::BucketIndex(v)].fetch_add(1,
                                                    std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramData LatencyHistogram::Snapshot() const {
  HistogramData d;
  for (int i = 0; i < HistogramData::kNumBuckets; ++i) {
    d.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = d.count > 0 ? min_.load(std::memory_order_relaxed) : 0;
  d.max = max_.load(std::memory_order_relaxed);
  return d;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(uint64_t window_ns, int num_windows)
    : window_ns_(window_ns == 0 ? 1 : window_ns) {
  slots_.reserve(std::max(1, num_windows));
  for (int i = 0; i < std::max(1, num_windows); ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void WindowedHistogram::Record(uint64_t v, uint64_t now_ns) {
  const uint64_t epoch = now_ns / window_ns_;
  Slot& slot = *slots_[epoch % slots_.size()];
  uint64_t cur = slot.epoch.load(std::memory_order_acquire);
  while (cur != epoch) {
    // The ring only moves forward: a late recorder whose slot was already
    // claimed by a newer epoch records into that newer window rather than
    // resurrecting the old one.
    if (cur != kEmpty && cur > epoch) break;
    if (slot.epoch.compare_exchange_weak(cur, epoch,
                                         std::memory_order_acq_rel)) {
      slot.hist.Reset();
      break;
    }
  }
  slot.hist.Record(v);
  cumulative_.Record(v);
}

std::vector<WindowedHistogram::Window> WindowedHistogram::Windows() const {
  std::vector<Window> out;
  for (const auto& slot : slots_) {
    uint64_t epoch = slot->epoch.load(std::memory_order_acquire);
    if (epoch == kEmpty) continue;
    Window w;
    w.index = epoch;
    w.start_ns = epoch * window_ns_;
    w.data = slot->hist.Snapshot();
    if (w.data.count == 0) continue;
    out.push_back(std::move(w));
  }
  std::sort(out.begin(), out.end(),
            [](const Window& a, const Window& b) { return a.index < b.index; });
  return out;
}

HistogramData WindowedHistogram::Cumulative() const {
  return cumulative_.Snapshot();
}

void WindowedHistogram::Reset() {
  for (auto& slot : slots_) {
    slot->epoch.store(kEmpty, std::memory_order_release);
    slot->hist.Reset();
  }
  cumulative_.Reset();
}

namespace {

thread_local const WorkloadTag* tl_workload_tag = nullptr;

}  // namespace

WorkloadTagScope::WorkloadTagScope(WorkloadTag tag)
    : tag_(std::move(tag)), prev_(tl_workload_tag) {
  tl_workload_tag = &tag_;
}

WorkloadTagScope::~WorkloadTagScope() { tl_workload_tag = prev_; }

const WorkloadTag* WorkloadTagScope::Current() { return tl_workload_tag; }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

WindowedHistogram* MetricsRegistry::windowed(const std::string& name,
                                             uint64_t window_ns,
                                             int num_windows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windowed_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedHistogram>(window_ns, num_windows);
  }
  return slot.get();
}

void MetricsRegistry::SetHelp(const std::string& base,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[base] = help;
}

namespace {

/// Splits "base{a="b"}" into ("base", "a=\"b\"").
std::pair<std::string, std::string> SplitLabels(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), labels};
}

/// Escapes a metric name for use as a JSON object key: labeled series names
/// contain literal double quotes (`a="b"`).
std::string JsonKey(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  std::string all = labels;
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  if (all.empty()) return base;
  return base + "{" + all + "}";
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // The exposition format requires all lines of one metric family to be
  // contiguous, with a single HELP/TYPE header. Lexicographic iteration over
  // the raw series names does not guarantee that (`foo` < `foo_bar` <
  // `foo{...}` interleaves two families), so series are grouped by base name
  // first.
  struct Family {
    const char* type = "untyped";
    std::vector<std::string> lines;
  };
  std::map<std::string, Family> families;

  auto render_histogram = [](const std::string& base,
                             const std::string& labels,
                             const HistogramData& d,
                             std::vector<std::string>* lines) {
    uint64_t cum = 0;
    for (int i = 0; i < HistogramData::kNumBuckets; ++i) {
      if (d.buckets[i] == 0) continue;
      cum += d.buckets[i];
      lines->push_back(
          WithLabels(base + "_bucket", labels,
                     "le=\"" + std::to_string(HistogramData::BucketHi(i)) +
                         "\"") +
          " " + std::to_string(cum));
    }
    lines->push_back(WithLabels(base + "_bucket", labels, "le=\"+Inf\"") + " " +
                     std::to_string(d.count));
    lines->push_back(WithLabels(base + "_sum", labels) + " " +
                     std::to_string(d.sum));
    lines->push_back(WithLabels(base + "_count", labels) + " " +
                     std::to_string(d.count));
  };

  for (const auto& [name, counter] : counters_) {
    auto [base, labels] = SplitLabels(name);
    Family& fam = families[base];
    fam.type = "counter";
    fam.lines.push_back(WithLabels(base, labels) + " " +
                        std::to_string(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    auto [base, labels] = SplitLabels(name);
    Family& fam = families[base];
    fam.type = "gauge";
    std::ostringstream v;
    v.precision(12);
    v << gauge->value();
    fam.lines.push_back(WithLabels(base, labels) + " " + v.str());
  }
  for (const auto& [name, hist] : histograms_) {
    auto [base, labels] = SplitLabels(name);
    Family& fam = families[base];
    fam.type = "histogram";
    render_histogram(base, labels, hist->Snapshot(), &fam.lines);
  }
  // Windowed histograms expose their all-time cumulative merge; per-window
  // quantiles live in ToJson (Prometheus derives windows by scraping).
  for (const auto& [name, wh] : windowed_) {
    auto [base, labels] = SplitLabels(name);
    Family& fam = families[base];
    fam.type = "histogram";
    render_histogram(base, labels, wh->Cumulative(), &fam.lines);
  }

  std::ostringstream os;
  for (const auto& [base, fam] : families) {
    auto help = help_.find(base);
    // HELP text is free-form but must escape backslash and newline.
    std::string help_text =
        help != help_.end() ? help->second : "pjvm metric " + base;
    std::string escaped;
    for (char c : help_text) {
      if (c == '\\') {
        escaped += "\\\\";
      } else if (c == '\n') {
        escaped += "\\n";
      } else {
        escaped += c;
      }
    }
    os << "# HELP " << base << " " << escaped << "\n";
    os << "# TYPE " << base << " " << fam.type << "\n";
    for (const std::string& line : fam.lines) os << line << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, counter] : counters_) {
    os << sep << "\n    " << JsonKey(name) << ": " << counter->value();
    sep = ",";
  }
  os << "\n  },\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, gauge] : gauges_) {
    os << sep << "\n    " << JsonKey(name) << ": " << gauge->value();
    sep = ",";
  }
  os << "\n  },\n  \"histograms\": {";
  sep = "";
  auto hist_json = [](std::ostringstream& o, const HistogramData& d) {
    o << "{\"count\": " << d.count << ", \"sum\": " << d.sum
      << ", \"mean\": " << d.Mean() << ", \"min\": " << d.min
      << ", \"max\": " << d.max << ", \"p50\": " << d.P50()
      << ", \"p95\": " << d.P95() << ", \"p99\": " << d.P99() << "}";
  };
  for (const auto& [name, hist] : histograms_) {
    os << sep << "\n    " << JsonKey(name) << ": ";
    hist_json(os, hist->Snapshot());
    sep = ",";
  }
  os << "\n  },\n  \"windowed\": {";
  sep = "";
  for (const auto& [name, wh] : windowed_) {
    os << sep << "\n    " << JsonKey(name) << ": {\"window_ns\": "
       << wh->window_ns() << ", \"cumulative\": ";
    hist_json(os, wh->Cumulative());
    os << ", \"windows\": [";
    const char* wsep = "";
    for (const WindowedHistogram::Window& w : wh->Windows()) {
      os << wsep << "{\"index\": " << w.index
         << ", \"start_ns\": " << w.start_ns;
      os << ", \"data\": ";
      hist_json(os, w.data);
      os << "}";
      wsep = ",";
    }
    os << "]}";
    sep = ",";
  }
  os << "\n  }\n}\n";
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, w] : windowed_) w->Reset();
}

}  // namespace pjvm
