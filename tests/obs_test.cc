#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace pjvm {
namespace {

// ------------------------------------------------------------ HistogramData

TEST(HistogramDataTest, EmptyIsAllZero) {
  HistogramData d;
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_EQ(d.Mean(), 0.0);
  EXPECT_EQ(d.P50(), 0.0);
  EXPECT_EQ(d.P95(), 0.0);
  EXPECT_EQ(d.P99(), 0.0);
  EXPECT_EQ(d.Quantile(0.0), 0.0);
  EXPECT_EQ(d.Quantile(1.0), 0.0);
}

TEST(HistogramDataTest, SingleValueIsExactAtEveryQuantile) {
  HistogramData d;
  d.Add(37);
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.sum, 37u);
  EXPECT_EQ(d.min, 37u);
  EXPECT_EQ(d.max, 37u);
  // The clamp to [min, max] makes a single value exact despite the
  // bucket's [32, 63] resolution.
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(d.P50(), 37.0);
  EXPECT_DOUBLE_EQ(d.P99(), 37.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 37.0);
}

TEST(HistogramDataTest, RepeatedEqualValuesStayExact) {
  HistogramData d;
  for (int i = 0; i < 1000; ++i) d.Add(100);
  EXPECT_DOUBLE_EQ(d.P50(), 100.0);
  EXPECT_DOUBLE_EQ(d.P95(), 100.0);
  EXPECT_DOUBLE_EQ(d.P99(), 100.0);
}

TEST(HistogramDataTest, BucketLayout) {
  // Bucket 0 holds only the value 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(HistogramData::BucketIndex(0), 0);
  EXPECT_EQ(HistogramData::BucketIndex(1), 1);
  EXPECT_EQ(HistogramData::BucketIndex(2), 2);
  EXPECT_EQ(HistogramData::BucketIndex(3), 2);
  EXPECT_EQ(HistogramData::BucketIndex(4), 3);
  EXPECT_EQ(HistogramData::BucketIndex(UINT64_MAX), 64);
  for (int i = 1; i < HistogramData::kNumBuckets; ++i) {
    EXPECT_EQ(HistogramData::BucketIndex(HistogramData::BucketLo(i)), i);
    EXPECT_EQ(HistogramData::BucketIndex(HistogramData::BucketHi(i)), i);
  }
  EXPECT_EQ(HistogramData::BucketHi(1) + 1, HistogramData::BucketLo(2));
}

TEST(HistogramDataTest, QuantilesMonotoneAndBounded) {
  HistogramData d;
  for (uint64_t v = 1; v <= 1000; ++v) d.Add(v);
  double p50 = d.P50(), p95 = d.P95(), p99 = d.P99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, static_cast<double>(d.min));
  EXPECT_LE(p99, static_cast<double>(d.max));
  // Log buckets are coarse, but the median of 1..1000 must land in the
  // right bucket: [256, 1000].
  EXPECT_GE(p50, 256.0);
}

TEST(HistogramDataTest, MergeIsExactForCountSumMinMax) {
  HistogramData a, b;
  for (uint64_t v : {1u, 5u, 9u}) a.Add(v);
  for (uint64_t v : {100u, 200u}) b.Add(v);
  HistogramData merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count, 5u);
  EXPECT_EQ(merged.sum, 315u);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, 200u);
  // Element-wise bucket addition: merging equals recording everything into
  // one histogram.
  HistogramData direct;
  for (uint64_t v : {1u, 5u, 9u, 100u, 200u}) direct.Add(v);
  EXPECT_EQ(merged.buckets, direct.buckets);
  EXPECT_DOUBLE_EQ(merged.P50(), direct.P50());
}

TEST(HistogramDataTest, MergeWithEmptyIsIdentityBothWays) {
  HistogramData a, empty;
  a.Add(42);
  HistogramData m1 = a;
  m1.Merge(empty);
  EXPECT_EQ(m1.count, 1u);
  EXPECT_EQ(m1.min, 42u);
  HistogramData m2 = empty;
  m2.Merge(a);
  EXPECT_EQ(m2.count, 1u);
  EXPECT_EQ(m2.min, 42u);
  EXPECT_EQ(m2.max, 42u);
}

// --------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, ConcurrentRecordLosesNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramData d = hist.Snapshot();
  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(d.count, kTotal);
  EXPECT_EQ(d.sum, kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, kTotal - 1);
}

TEST(LatencyHistogramTest, ResetZeroes) {
  LatencyHistogram hist;
  hist.Record(7);
  hist.Reset();
  HistogramData d = hist.Snapshot();
  EXPECT_EQ(d.count, 0u);
  hist.Record(3);
  d = hist.Snapshot();
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.min, 3u);
  EXPECT_EQ(d.max, 3u);
}

// ----------------------------------------- Quantile error bounds and merges

TEST(HistogramDataTest, QuantileRelativeErrorBoundedByBucketWidth) {
  // Bucket i holds [2^(i-1), 2^i - 1]: any point inside is within 2x of any
  // other. With interpolation clamped to the bucket, the reported quantile
  // can therefore be off from the exact order statistic by at most 2x in
  // either direction. Check against exact quantiles of a deterministic
  // pseudo-random sample.
  HistogramData d;
  std::vector<uint64_t> values;
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 50000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    uint64_t v = 1 + x % 1'000'000;
    values.push_back(v);
    d.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    double exact = static_cast<double>(
        values[static_cast<size_t>(q * (values.size() - 1))]);
    double approx = d.Quantile(q);
    EXPECT_GE(approx, exact / 2.0) << "q=" << q;
    EXPECT_LE(approx, exact * 2.0) << "q=" << q;
  }
}

TEST(HistogramDataTest, MergeIsAssociativeAndCommutativeBitEqual) {
  // Merge is element-wise addition, so any merge tree over the same parts
  // must produce identical buckets/count/sum/min/max — and therefore
  // bit-equal quantiles. This is what makes per-thread histograms safe to
  // combine in whatever order workers finish.
  HistogramData parts[3];
  uint64_t x = 2463534242;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 1000; ++i) {
      x ^= x << 13;
      x ^= x >> 17;
      x ^= x << 5;
      parts[p].Add(x % (1u << (10 + 4 * p)));
    }
  }
  HistogramData left = parts[0];   // (a + b) + c
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  HistogramData right = parts[1];  // a + (b + c)
  right.Merge(parts[2]);
  HistogramData right2 = parts[0];
  right2.Merge(right);
  HistogramData swapped = parts[2];  // c + b + a
  swapped.Merge(parts[1]);
  swapped.Merge(parts[0]);
  for (const HistogramData* m : {&right2, &swapped}) {
    EXPECT_EQ(left.buckets, m->buckets);
    EXPECT_EQ(left.count, m->count);
    EXPECT_EQ(left.sum, m->sum);
    EXPECT_EQ(left.min, m->min);
    EXPECT_EQ(left.max, m->max);
    EXPECT_EQ(left.P50(), m->P50());    // bit-equal, not just approximate
    EXPECT_EQ(left.P99(), m->P99());
  }
}

TEST(LatencyHistogramTest, CrossThreadSnapshotsMergeToDirectRecording) {
  // Four threads record disjoint ranges into their own histograms; merging
  // the snapshots (in any order) equals recording everything into one.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  LatencyHistogram per_thread[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&per_thread, t] {
      for (int i = 0; i < kPerThread; ++i) {
        per_thread[t].Record(static_cast<uint64_t>(t * kPerThread + i) * 31);
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramData direct;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      direct.Add(static_cast<uint64_t>(t * kPerThread + i) * 31);
    }
  }
  HistogramData forward, backward;
  for (int t = 0; t < kThreads; ++t) forward.Merge(per_thread[t].Snapshot());
  for (int t = kThreads - 1; t >= 0; --t) {
    backward.Merge(per_thread[t].Snapshot());
  }
  EXPECT_EQ(forward.buckets, direct.buckets);
  EXPECT_EQ(backward.buckets, direct.buckets);
  EXPECT_EQ(forward.count, direct.count);
  EXPECT_EQ(forward.sum, direct.sum);
  EXPECT_EQ(forward.min, direct.min);
  EXPECT_EQ(forward.max, direct.max);
  EXPECT_EQ(forward.P99(), backward.P99());
}

// -------------------------------------------------------- WindowedHistogram

TEST(WindowedHistogramTest, RecordsLandInTheirTimeWindow) {
  WindowedHistogram wh(/*window_ns=*/1000, /*num_windows=*/8);
  wh.Record(100, 500);    // window 0
  wh.Record(200, 999);    // window 0
  wh.Record(5000, 1500);  // window 1
  auto windows = wh.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 0u);
  EXPECT_EQ(windows[0].start_ns, 0u);
  EXPECT_EQ(windows[0].data.count, 2u);
  EXPECT_EQ(windows[1].index, 1u);
  EXPECT_EQ(windows[1].start_ns, 1000u);
  EXPECT_EQ(windows[1].data.count, 1u);
  // Warmup (window 0) and steady state (window 1) stay distinguishable.
  EXPECT_LT(windows[0].data.P50(), windows[1].data.P50());
  EXPECT_EQ(wh.Cumulative().count, 3u);
}

TEST(WindowedHistogramTest, RingEvictsOldestButCumulativeKeepsAll) {
  WindowedHistogram wh(/*window_ns=*/100, /*num_windows=*/4);
  for (uint64_t w = 0; w < 10; ++w) {
    wh.Record(w + 1, w * 100 + 50);
  }
  auto windows = wh.Windows();
  ASSERT_EQ(windows.size(), 4u);  // only the most recent 4 retained
  EXPECT_EQ(windows.front().index, 6u);
  EXPECT_EQ(windows.back().index, 9u);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_LT(windows[i - 1].index, windows[i].index);  // oldest first
  }
  HistogramData all = wh.Cumulative();
  EXPECT_EQ(all.count, 10u);  // evicted windows still counted here
  EXPECT_EQ(all.min, 1u);
  EXPECT_EQ(all.max, 10u);
}

TEST(WindowedHistogramTest, SparseWindowsSkipEmptySlots) {
  WindowedHistogram wh(/*window_ns=*/100, /*num_windows=*/8);
  wh.Record(1, 50);     // window 0
  wh.Record(2, 650);    // window 6: windows 1..5 never recorded
  auto windows = wh.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 0u);
  EXPECT_EQ(windows[1].index, 6u);
}

TEST(WindowedHistogramTest, ResetClearsWindowsAndCumulative) {
  WindowedHistogram wh(/*window_ns=*/100, /*num_windows=*/4);
  wh.Record(9, 10);
  wh.Reset();
  EXPECT_TRUE(wh.Windows().empty());
  EXPECT_EQ(wh.Cumulative().count, 0u);
  wh.Record(3, 250);
  ASSERT_EQ(wh.Windows().size(), 1u);
  EXPECT_EQ(wh.Windows()[0].index, 2u);
}

// ------------------------------------------------- Label escaping and names

TEST(LabeledNameTest, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  std::string name = LabeledName(
      "pjvm_slo_latency_ns",
      {{"tenant", "t\"0\""}, {"view", "JV\\x"}, {"op", "line\none"}});
  EXPECT_EQ(name,
            "pjvm_slo_latency_ns{tenant=\"t\\\"0\\\"\",view=\"JV\\\\x\","
            "op=\"line\\none\"}");
}

TEST(LabeledNameTest, NoLabelsIsBareBase) {
  EXPECT_EQ(LabeledName("pjvm_x", {}), "pjvm_x");
}

// ------------------------------------ Prometheus exposition compliance pass

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* c = reg.counter("txns");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(reg.counter("txns"), c);  // same handle on re-lookup
  EXPECT_EQ(reg.counter("txns")->value(), 5u);
  reg.gauge("depth")->Set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth")->value(), 2.5);
  reg.histogram("lat")->Record(8);
  EXPECT_EQ(reg.histogram("lat")->Snapshot().count, 1u);
}

TEST(MetricsRegistryTest, PrometheusTextSplicesLabels) {
  MetricsRegistry reg;
  reg.counter("pjvm_txns_total{method=\"NAIVE\"}")->Increment(3);
  reg.histogram("pjvm_lat_ns{method=\"AUX\"}")->Record(5);
  std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE pjvm_txns_total counter"), std::string::npos);
  EXPECT_NE(text.find("pjvm_txns_total{method=\"NAIVE\"} 3"),
            std::string::npos);
  // Histogram `le` labels merge with the metric's own labels.
  EXPECT_NE(text.find("pjvm_lat_ns_bucket{method=\"AUX\",le=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pjvm_lat_ns_bucket{method=\"AUX\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pjvm_lat_ns_sum{method=\"AUX\"} 5"), std::string::npos);
  EXPECT_NE(text.find("pjvm_lat_ns_count{method=\"AUX\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ResetClearsValuesButKeepsHandles) {
  MetricsRegistry reg;
  Counter* c = reg.counter("n");
  c->Increment(9);
  reg.histogram("h")->Record(4);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.counter("n"), c);
  EXPECT_EQ(reg.histogram("h")->Snapshot().count, 0u);
}

// ---------------------------------------- CostTracker snapshots under load

TEST(NodeCountersTest, DiffCoversEveryField) {
  NodeCounters after;
  after.searches = 10;
  after.fetches = 20;
  after.inserts = 30;
  after.sends = 40;
  after.bytes_sent = 50;
  after.base_writes = 6;
  after.structure_writes = 7;
  after.view_writes = 8;
  NodeCounters before;
  before.searches = 1;
  before.fetches = 2;
  before.inserts = 3;
  before.sends = 4;
  before.bytes_sent = 5;
  before.base_writes = 1;
  before.structure_writes = 2;
  before.view_writes = 3;
  NodeCounters d = after - before;
  EXPECT_EQ(d.searches, 9u);
  EXPECT_EQ(d.fetches, 18u);
  EXPECT_EQ(d.inserts, 27u);
  EXPECT_EQ(d.sends, 36u);
  EXPECT_EQ(d.bytes_sent, 45u);
  EXPECT_EQ(d.base_writes, 5u);
  EXPECT_EQ(d.structure_writes, 5u);
  EXPECT_EQ(d.view_writes, 5u);
}

TEST(CostTrackerTest, SnapshotDiffIsExactUnderConcurrentCharging) {
  constexpr int kNodes = 4;
  constexpr int kRounds = 5000;
  CostTracker tracker(kNodes);
  // Pre-existing charges the diff must subtract away.
  tracker.ChargeSearch(0, 100);
  tracker.ChargeWrite(2, CostTracker::WriteKind::kView);
  std::vector<NodeCounters> before = tracker.Snapshot();

  std::vector<std::thread> threads;
  for (int n = 0; n < kNodes; ++n) {
    threads.emplace_back([&tracker, n] {
      for (int i = 0; i < kRounds; ++i) {
        tracker.ChargeSearch(n);
        tracker.ChargeFetch(n, 2);
        tracker.ChargeWrite(n, CostTracker::WriteKind::kStructure);
        tracker.ChargeSend(n, 16);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<NodeCounters> after = tracker.Snapshot();
  ASSERT_EQ(before.size(), static_cast<size_t>(kNodes));
  ASSERT_EQ(after.size(), static_cast<size_t>(kNodes));
  for (int n = 0; n < kNodes; ++n) {
    NodeCounters d = after[n] - before[n];
    EXPECT_EQ(d.searches, static_cast<uint64_t>(kRounds)) << "node " << n;
    EXPECT_EQ(d.fetches, static_cast<uint64_t>(2 * kRounds));
    EXPECT_EQ(d.inserts, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(d.structure_writes, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(d.base_writes, 0u);
    EXPECT_EQ(d.view_writes, 0u);
    EXPECT_EQ(d.sends, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(d.bytes_sent, static_cast<uint64_t>(16 * kRounds));
  }
}

// ------------------------------------------------------------------ Tracer

/// The process-global tracer carries state across tests: each test clears
/// recorded spans up front (quiescent here) and disables tracing on exit.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TracerTest, DisabledSpanGuardRecordsNothing) {
  size_t before = Tracer::Global().Snapshot().size();
  {
    SpanGuard span("noop", "test");
    span.set_detail("ignored");
  }
  TraceInstant("noop", "test", 0, 0, "");
  EXPECT_EQ(Tracer::Global().Snapshot().size(), before);
}

TEST_F(TracerTest, SpansNestAndCaptureCostDeltas) {
  Tracer::Global().Enable();
  CostTracker cost(2);
  cost.ChargeSearch(1, 50);  // pre-span charge the delta must exclude
  {
    SpanGuard outer("txn", "test");
    {
      SpanGuard inner("probe", "test", /*node=*/1, &cost, "NAIVE");
      cost.ChargeSearch(1, 3);
      cost.ChargeFetch(1, 2);
    }
  }
  std::vector<TraceSpan> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes (and records) first.
  const TraceSpan& inner = spans[0];
  const TraceSpan& outer = spans[1];
  EXPECT_STREQ(inner.name, "probe");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.node, 1);
  ASSERT_TRUE(inner.has_cost);
  EXPECT_EQ(inner.cost.searches, 3u);
  EXPECT_EQ(inner.cost.fetches, 2u);
  EXPECT_STREQ(outer.name, "txn");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_FALSE(outer.has_cost);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
}

TEST_F(TracerTest, ConcurrentRecordAndSnapshotLoseNothing) {
  Tracer::Global().Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 2000;  // > Chunk capacity: exercises links
  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Every observed span must be fully formed (name always set).
      for (const TraceSpan& s : Tracer::Global().Snapshot()) {
        EXPECT_STREQ(s.name, "worker_span");
      }
    }
  });
  std::vector<std::thread> writers;
  size_t base = Tracer::Global().Snapshot().size();
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanGuard span("worker_span", "test");
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(Tracer::Global().Snapshot().size(),
            base + static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST_F(TracerTest, ChromeTraceJsonEscapesAndTags) {
  Tracer::Global().Enable();
  Tracer::Global().SetCurrentThreadName("test \"main\"");
  {
    SpanGuard span("quoted", "test", /*node=*/3, nullptr, "NAIVE");
    span.set_detail("a\"b\nc");
  }
  TraceInstant("send", "net", 1, 64, "1->2");
  std::string json = Tracer::Global().ChromeTraceJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test \\\"main\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"a\\\"b\\nc\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":3"), std::string::npos);
  EXPECT_NE(json.find("\"method\":\"NAIVE\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
  // No raw control characters may survive escaping.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n');
  }
}

TEST_F(TracerTest, ClearDropsSpansButKeepsThreadNames) {
  Tracer::Global().Enable();
  { SpanGuard span("gone", "test"); }
  EXPECT_GE(Tracer::Global().Snapshot().size(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().Snapshot().size(), 0u);
  { SpanGuard span("kept", "test"); }
  EXPECT_EQ(Tracer::Global().Snapshot().size(), 1u);
}

}  // namespace
}  // namespace pjvm
