#include "engine/executor.h"

#include "common/metrics.h"
#include "common/worker_context.h"
#include "obs/trace.h"

namespace pjvm {

NodeExecutor::NodeExecutor(int num_nodes, bool inline_mode)
    : num_nodes_(num_nodes), inline_mode_(inline_mode), queues_(num_nodes) {
  if (inline_mode_) return;
  workers_.reserve(num_nodes_);
  for (int i = 0; i < num_nodes_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

NodeExecutor::~NodeExecutor() { Shutdown(); }

void NodeExecutor::WorkerLoop(int node) {
  // Tasks drained by this thread must never park on a transaction lock: a
  // parked task blocks the node's whole FIFO queue, possibly including
  // tasks of the very transaction that holds the contended lock. The lock
  // manager consults this flag and aborts instead of waiting.
  WorkerContext::is_executor_worker = true;
  if (Tracer::Global().enabled()) {
    Tracer::Global().SetCurrentThreadName("node-" + std::to_string(node) +
                                          " worker");
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return stopping_ || !queues_[node].empty(); });
    if (queues_[node].empty()) {
      if (stopping_) return;  // Drained: safe to exit.
      continue;
    }
    std::function<void()> fn = std::move(queues_[node].front());
    queues_[node].pop_front();
    lock.unlock();
    fn();
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void NodeExecutor::SubmitToNode(int node, std::function<void()> fn) {
  if (inline_mode_) {
    fn();
    return;
  }
  // The submitter's transaction meter (if any) travels with the task: the
  // worker activates it for the task's duration, so the transaction's
  // fan-out charges land in its own meter no matter which thread runs them.
  CostTracker::TxnMeter* meter = CostTracker::ActiveMeter();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[node].push_back([meter, fn = std::move(fn)] {
      CostTracker::MeterScope scope(meter);
      fn();
    });
    ++pending_;
  }
  work_cv_.notify_all();
}

void NodeExecutor::SubmitToAll(const std::function<void(int)>& fn) {
  if (inline_mode_) {
    for (int i = 0; i < num_nodes_; ++i) fn(i);
    return;
  }
  CostTracker::TxnMeter* meter = CostTracker::ActiveMeter();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < num_nodes_; ++i) {
      queues_[i].push_back([meter, fn, i] {
        CostTracker::MeterScope scope(meter);
        fn(i);
      });
      ++pending_;
    }
  }
  work_cv_.notify_all();
}

void NodeExecutor::WaitAll() {
  if (inline_mode_) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

Status NodeExecutor::RunBatch(const std::vector<int>& nodes,
                              const std::function<Status(int)>& fn) {
  std::vector<Status> statuses(nodes.size(), Status::OK());
  if (inline_mode_) {
    for (size_t i = 0; i < nodes.size(); ++i) statuses[i] = fn(nodes[i]);
  } else {
    // Shared with the worker-side wrappers: the batch must outlive this
    // frame if a worker is still finishing its decrement when we wake.
    auto batch = std::make_shared<Batch>();
    batch->remaining = nodes.size();
    for (size_t i = 0; i < nodes.size(); ++i) {
      int node = nodes[i];
      SubmitToNode(node, [&statuses, &fn, batch, node, i] {
        statuses[i] = fn(node);
        {
          std::lock_guard<std::mutex> lock(batch->mu);
          --batch->remaining;
        }
        batch->cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] { return batch->remaining == 0; });
  }
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

Status NodeExecutor::RunOnAllNodes(const std::function<Status(int)>& fn) {
  std::vector<int> nodes(num_nodes_);
  for (int i = 0; i < num_nodes_; ++i) nodes[i] = i;
  return RunBatch(nodes, fn);
}

Status NodeExecutor::RunOnNodes(const std::vector<int>& nodes,
                                const std::function<Status(int)>& fn) {
  return RunBatch(nodes, fn);
}

void NodeExecutor::Shutdown() {
  if (inline_mode_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

}  // namespace pjvm
