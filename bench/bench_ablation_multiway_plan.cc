// Ablation: the multi-way maintenance-plan optimization problem of
// Section 2.2 ("it is impossible to state which alternative is best without
// considering relational statistics").
//
// For a 3-way view with a delta on the middle relation, enumerates every
// valid join order, costs each with the statistics-driven estimator, and
// then *executes* each order's shape by measuring the greedy plan against a
// deliberately skewed database: one neighbour has fanout 1, the other
// fanout 16. Joining the low-fanout side first is substantially cheaper.

#include <cstdio>

#include "bench/bench_util.h"
#include "view/planner.h"

namespace pjvm {
namespace {

// B(d) joins A on c=d with fanout `a_fan`, and C on f=g with fanout `c_fan`.
std::unique_ptr<ParallelSystem> BuildSkewed(int64_t a_fan, int64_t c_fan) {
  SystemConfig cfg;
  cfg.num_nodes = 8;
  cfg.rows_per_page = 8;
  auto sys = std::make_unique<ParallelSystem>(cfg);
  TableDef a;
  a.name = "A";
  a.schema = Schema({{"a", ValueType::kInt64}, {"c", ValueType::kInt64}});
  a.partition = PartitionSpec::Hash("a");
  TableDef b;
  b.name = "B";
  b.schema = Schema({{"b", ValueType::kInt64},
                     {"d", ValueType::kInt64},
                     {"f", ValueType::kInt64}});
  b.partition = PartitionSpec::Hash("b");
  TableDef c;
  c.name = "C";
  c.schema = Schema({{"g", ValueType::kInt64}, {"h", ValueType::kInt64}});
  c.partition = PartitionSpec::Hash("h");
  sys->CreateTable(a).Check();
  sys->CreateTable(b).Check();
  sys->CreateTable(c).Check();
  int64_t id = 0;
  for (int64_t k = 0; k < 32; ++k) {
    for (int64_t r = 0; r < a_fan; ++r) {
      sys->Insert("A", {Value{id++}, Value{k}}).Check();
    }
    for (int64_t r = 0; r < c_fan; ++r) {
      sys->Insert("C", {Value{k}, Value{id++}}).Check();
    }
  }
  return sys;
}

JoinViewDef SkewedView() {
  JoinViewDef def;
  def.name = "JV3";
  def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}, {{"B", "f"}, {"C", "g"}}};
  return def;
}

double MeasureDeltaOnB(int64_t a_fan, int64_t c_fan) {
  auto sys = BuildSkewed(a_fan, c_fan);
  ViewManager manager(sys.get());
  manager.RegisterView(SkewedView(), MaintenanceMethod::kAuxRelation).Check();
  std::vector<Row> batch;
  for (int64_t i = 0; i < 32; ++i) {
    batch.push_back({Value{1000 + i}, Value{i % 32}, Value{i % 32}});
  }
  sys->cost().Reset();
  manager.ApplyDelta(DeltaBatch::Inserts("B", batch)).status().Check();
  return sys->cost().TotalWorkload();
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  // Part 1: plan enumeration + cost estimates on the skewed statistics.
  auto sys = BuildSkewed(/*a_fan=*/1, /*c_fan=*/16);
  ViewManager manager(sys.get());
  manager.RegisterView(SkewedView(), MaintenanceMethod::kAuxRelation).Check();
  const ViewRegistration* reg = manager.registration("JV3");
  FanoutFn fanout = [&](int base, int) {
    return base == 0 ? 1.0 : (base == 2 ? 16.0 : 1.0);
  };
  bench::PrintHeader("All maintenance plans for a delta on B (Section 2.2)");
  bench::BenchReport report("ablation_multiway_plan");
  bench::JsonWriter plans;
  plans.BeginArray();
  for (const MaintenancePlan& plan : EnumerateAllPlans(reg->bound, 1)) {
    double cost = EstimatePlanCost(reg->bound, plan, fanout);
    std::printf("%-46s est. cost %8.1f\n", plan.ToString(reg->bound).c_str(),
                cost);
    plans.BeginObject()
        .Key("plan").Str(plan.ToString(reg->bound))
        .Key("estimated_cost").Num(cost)
        .EndObject();
  }
  plans.EndArray();
  report.Add("plans", plans.str());
  auto greedy = PlanMaintenance(reg->bound, 1, fanout);
  greedy.status().Check();
  std::printf("greedy choice: %s\n", greedy->ToString(reg->bound).c_str());
  {
    bench::JsonWriter choice;
    choice.Str(greedy->ToString(reg->bound));
    report.Add("greedy_choice", choice.str());
  }

  // Part 2: measured effect — the same delta against mirrored skews. The
  // greedy planner always joins the fanout-1 neighbour first, so total work
  // stays low regardless of which side is the expensive one.
  bench::PrintHeader("Measured TW for 32-tuple delta on B (greedy planner)");
  double tw_1_16 = MeasureDeltaOnB(1, 16);
  double tw_16_1 = MeasureDeltaOnB(16, 1);
  double tw_16_16 = MeasureDeltaOnB(16, 16);
  std::printf("A-fanout=1,  C-fanout=16 : %8.1f I/Os\n", tw_1_16);
  std::printf("A-fanout=16, C-fanout=1  : %8.1f I/Os\n", tw_16_1);
  std::printf("A-fanout=16, C-fanout=16 : %8.1f I/Os (no cheap side exists)\n",
              tw_16_16);
  bench::JsonWriter measured;
  measured.BeginArray();
  auto emit = [&](int a_fan, int c_fan, double tw) {
    measured.BeginObject()
        .Key("a_fanout").Int(a_fan)
        .Key("c_fanout").Int(c_fan)
        .Key("tw_io").Num(tw)
        .EndObject();
  };
  emit(1, 16, tw_1_16);
  emit(16, 1, tw_16_1);
  emit(16, 16, tw_16_16);
  measured.EndArray();
  report.Add("measured_tw", measured.str());
  report.Write();
  return 0;
}
