#include "storage/heap_file.h"

namespace pjvm {

HeapFile::HeapFile(int rows_per_page) : rows_per_page_(rows_per_page) {}

LocalRowId HeapFile::Insert(Row row) {
  byte_size_ += RowByteSize(row);
  ++live_count_;
  if (!free_list_.empty()) {
    LocalRowId lrid = free_list_.back();
    free_list_.pop_back();
    slots_[lrid] = std::move(row);
    return lrid;
  }
  slots_.push_back(std::move(row));
  return static_cast<LocalRowId>(slots_.size() - 1);
}

const Row* HeapFile::Get(LocalRowId lrid) const {
  if (lrid >= slots_.size() || !slots_[lrid].has_value()) return nullptr;
  return &*slots_[lrid];
}

Status HeapFile::Delete(LocalRowId lrid) {
  PJVM_RETURN_NOT_OK(DeleteKeepSlot(lrid));
  free_list_.push_back(lrid);
  return Status::OK();
}

Status HeapFile::DeleteKeepSlot(LocalRowId lrid) {
  if (lrid >= slots_.size() || !slots_[lrid].has_value()) {
    return Status::NotFound("heap: no row at lrid " + std::to_string(lrid));
  }
  byte_size_ -= RowByteSize(*slots_[lrid]);
  --live_count_;
  slots_[lrid].reset();
  return Status::OK();
}

Status HeapFile::InsertAt(LocalRowId lrid, Row row) {
  if (lrid >= slots_.size() || slots_[lrid].has_value()) {
    return Status::Internal("heap: slot " + std::to_string(lrid) +
                            " is not an empty reserved slot");
  }
  byte_size_ += RowByteSize(row);
  ++live_count_;
  slots_[lrid] = std::move(row);
  return Status::OK();
}

Status HeapFile::Update(LocalRowId lrid, Row row) {
  if (lrid >= slots_.size() || !slots_[lrid].has_value()) {
    return Status::NotFound("heap: no row at lrid " + std::to_string(lrid));
  }
  byte_size_ -= RowByteSize(*slots_[lrid]);
  byte_size_ += RowByteSize(row);
  slots_[lrid] = std::move(row);
  return Status::OK();
}

void HeapFile::ForEach(
    const std::function<bool(LocalRowId, const Row&)>& fn) const {
  for (LocalRowId lrid = 0; lrid < slots_.size(); ++lrid) {
    if (slots_[lrid].has_value()) {
      if (!fn(lrid, *slots_[lrid])) return;
    }
  }
}

size_t HeapFile::num_pages() const {
  return (slots_.size() + rows_per_page_ - 1) / rows_per_page_;
}

}  // namespace pjvm
