file(REMOVE_RECURSE
  "libpjvm_model.a"
)
