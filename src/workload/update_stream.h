#ifndef PJVM_WORKLOAD_UPDATE_STREAM_H_
#define PJVM_WORKLOAD_UPDATE_STREAM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "view/maintainer.h"

namespace pjvm {

/// \brief Mix of operations in a generated update stream.
struct UpdateMix {
  double insert_frac = 1.0;
  double delete_frac = 0.0;
  double update_frac = 0.0;
};

/// \brief Deterministic generator of DeltaBatches against one table — the
/// "stream of updates" of the paper's operational-warehouse scenario.
///
/// The generator tracks which of its rows are live so deletes and updates
/// always target existing tuples. `make_row(i)` supplies the i-th fresh row;
/// `mutate(row)` produces the updated image of a row.
class UpdateStreamGenerator {
 public:
  UpdateStreamGenerator(std::string table, UpdateMix mix, uint64_t seed,
                        std::function<Row(int64_t)> make_row,
                        std::function<Row(const Row&, Rng&)> mutate);

  /// Next batch of `ops` operations.
  DeltaBatch NextBatch(int ops);

  size_t live_rows() const { return live_.size(); }

 private:
  std::string table_;
  UpdateMix mix_;
  Rng rng_;
  std::function<Row(int64_t)> make_row_;
  std::function<Row(const Row&, Rng&)> mutate_;
  std::vector<Row> live_;
  int64_t next_id_ = 0;
};

}  // namespace pjvm

#endif  // PJVM_WORKLOAD_UPDATE_STREAM_H_
