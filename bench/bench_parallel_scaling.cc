// Wall-clock scaling of the thread-per-node executor.
//
// The cost model's counters are identical in sequential (inline) and parallel
// execution by construction — this bench measures what changes: elapsed time.
// SystemConfig::io_stall_ns turns every charged I/O unit into simulated
// device time, so the sequential reference's wall clock tracks TW (the sum of
// all nodes' work) while the executor's wall clock tracks response time (the
// max over nodes, the paper's "all nodes proceed in parallel"). The measured
// workload is the naive method's all-node broadcast probe phase plus the
// batched base insert — the two fan-out paths with per-node balanced work.
//
// Emits BENCH_parallel_scaling.json with per-L wall times, the speedup, and
// whether the two modes' cost counters matched exactly.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workload/twotable.h"

namespace pjvm {
namespace {

constexpr uint64_t kStallNs = 50 * 1000;  // 50us per weighted I/O unit.
constexpr int kDeltaRows = 240;

/// One metered run; returns wall ms and a counter fingerprint via `out`.
double RunOnce(int nodes, bool parallel, std::string* fingerprint) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  cfg.parallel_execution = parallel;
  cfg.io_stall_ns = kStallNs;
  ParallelSystem sys(cfg);
  TwoTableConfig tt;
  tt.b_join_keys = 150;
  tt.fanout = 8;
  tt.b_clustered_on_d = false;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kNaive).Check();

  // Delta keys beyond B's key range: every node still pays the full broadcast
  // probe (one index SEARCH per delta tuple per node), but no join results
  // materialize, so the serial view-apply tail stays negligible and the
  // measured time is the fan-out phases themselves.
  std::vector<Row> rows;
  rows.reserve(kDeltaRows);
  for (int64_t i = 0; i < kDeltaRows; ++i) {
    rows.push_back({Value{1000000 + i}, Value{tt.b_join_keys + i}, Value{i}});
  }
  bench::RunResult r =
      bench::MeterDelta(&manager, DeltaBatch::Inserts("A", rows));

  std::ostringstream os;
  for (int i = 0; i < nodes; ++i) {
    NodeCounters c = sys.cost().node(i);
    os << i << ":" << c.searches << "," << c.fetches << "," << c.inserts << ","
       << c.sends << ";";
  }
  os << "TW=" << r.total_workload_io << " RT=" << r.response_time_io
     << " sends=" << r.sends << " touched=" << r.nodes_touched;
  *fingerprint = os.str();
  return r.wall_ms;
}

struct Sample {
  int nodes = 0;
  double seq_ms = 0.0;
  double par_ms = 0.0;
  bool counters_match = false;
  double Speedup() const { return par_ms > 0.0 ? seq_ms / par_ms : 0.0; }
};

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  bench::PrintHeader("Parallel scaling: wall clock, sequential vs executor");
  std::printf("%8s %12s %12s %10s %10s\n", "nodes", "seq_ms", "par_ms",
              "speedup", "identical");
  std::vector<Sample> samples;
  for (int l : {1, 2, 4, 8}) {
    Sample s;
    s.nodes = l;
    std::string seq_fp, par_fp;
    s.seq_ms = RunOnce(l, /*parallel=*/false, &seq_fp);
    s.par_ms = RunOnce(l, /*parallel=*/true, &par_fp);
    s.counters_match = seq_fp == par_fp;
    std::printf("%8d %12.1f %12.1f %9.2fx %10s\n", l, s.seq_ms, s.par_ms,
                s.Speedup(), s.counters_match ? "yes" : "NO");
    samples.push_back(s);
  }

  std::ofstream json("BENCH_parallel_scaling.json");
  json << "{\n  \"io_stall_ns\": " << kStallNs
       << ",\n  \"delta_rows\": " << kDeltaRows << ",\n  \"points\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    json << "    {\"nodes\": " << s.nodes << ", \"seq_wall_ms\": " << s.seq_ms
         << ", \"par_wall_ms\": " << s.par_ms << ", \"speedup\": "
         << s.Speedup() << ", \"counters_identical\": "
         << (s.counters_match ? "true" : "false") << "}"
         << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  return 0;
}
