#ifndef PJVM_SQL_PARSER_H_
#define PJVM_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "view/view_def.h"

namespace pjvm::sql {

/// \brief Parses a CREATE VIEW statement into a JoinViewDef.
///
/// Grammar (keywords case-insensitive; JOIN in "CREATE JOIN VIEW" optional):
///
///   CREATE [JOIN] VIEW name AS
///   SELECT ( '*' | alias.col (',' alias.col)* )
///   FROM table [alias] (',' table [alias])*
///   WHERE cond (AND cond)*
///   [PARTITIONED ON alias.col] [';']
///
///   cond := alias.col '=' alias.col            -- equi-join edge
///         | alias.col op literal               -- selection predicate
///   op   := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
///   literal := integer | double | 'string'
///
/// A condition comparing two column references is classified as a join
/// edge; one comparing a column to a literal as a selection. The result is
/// *not* validated against a catalog — pass it to ViewManager::RegisterView
/// (or JoinViewDef::Validate) for that.
Result<JoinViewDef> ParseCreateView(const std::string& statement);

}  // namespace pjvm::sql

#endif  // PJVM_SQL_PARSER_H_
