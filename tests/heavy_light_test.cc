#include "view/heavy_light.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics_registry.h"
#include "tests/view_test_util.h"
#include "txn/lock_manager.h"
#include "view/maintainer.h"
#include "view/materialized_view.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// A two-table setup with one Zipf-style hot join key: B.d = 0 has
// `hot_rows` rows while keys 1..light_keys have one each, so an A row with
// c = 0 classifies heavy and every other key classifies light at the
// default threshold.
struct SkewFixture {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> mgr;
  int64_t next_a = 0;

  explicit SkewFixture(SystemConfig cfg, int64_t hot_rows = 40,
                       int64_t light_keys = 20) {
    cfg.rows_per_page = 4;
    sys = std::make_unique<ParallelSystem>(cfg);
    sys->CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
    sys->CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
    int64_t bkey = 0;
    for (int64_t r = 0; r < hot_rows; ++r) {
      sys->Insert("B", {Value{bkey}, Value{int64_t{0}}, Value{bkey * 10}})
          .Check();
      ++bkey;
    }
    for (int64_t k = 1; k <= light_keys; ++k) {
      sys->Insert("B", {Value{bkey}, Value{k}, Value{bkey * 10}}).Check();
      ++bkey;
    }
    mgr = std::make_unique<ViewManager>(sys.get());
  }

  JoinViewDef View(const std::string& name) {
    JoinViewDef def;
    def.name = name;
    def.bases = {{"A", "A"}, {"B", "B"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}};
    def.partition_on = ColumnRef{"A", "e"};
    return def;
  }

  Row ARow(int64_t join_key) {
    int64_t k = next_a++;
    return {Value{k}, Value{join_key}, Value{k * 100}};
  }
};

SystemConfig HlConfig(int num_nodes) {
  SystemConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.heavy_light = true;
  return cfg;
}

// ------------------------------------------------------------- classifier

TEST(HeavyLightClassifierTest, HysteresisPromotesAtThresholdDemotesAtHalf) {
  // Single node so the merged statistics are exact: key 0 x10 plus keys
  // 1..8 x1 gives avg fanout 18/9 = 2 and ratio(key 0) = 10/2 = 5 >= 4.
  SystemConfig cfg;
  cfg.num_nodes = 1;
  ParallelSystem sys(cfg);
  ASSERT_TRUE(sys.CreateTable(MakeTableDef("B", BSchema(), "b")).ok());
  std::vector<Row> zeros;
  int64_t bkey = 0;
  for (int r = 0; r < 10; ++r) {
    Row row{Value{bkey}, Value{int64_t{0}}, Value{bkey * 10}};
    zeros.push_back(row);
    ASSERT_TRUE(sys.Insert("B", row).ok());
    ++bkey;
  }
  for (int64_t k = 1; k <= 8; ++k) {
    ASSERT_TRUE(sys.Insert("B", {Value{bkey}, Value{k}, Value{bkey * 10}}).ok());
    ++bkey;
  }

  HeavyLightClassifier cls(&sys, /*promote_ratio=*/4.0, /*stats_refresh_ops=*/1);
  EXPECT_TRUE(cls.HeavyKey("B", 1, Value{int64_t{0}}));
  EXPECT_FALSE(cls.HeavyKey("B", 1, Value{int64_t{3}}));
  EXPECT_EQ(cls.heavy_keys_live(), 1u);

  // Drift into the hysteresis band [promote/2, promote): key 0 x5 gives
  // ratio 5 / (13/9) ~= 3.46. A promoted key stays heavy there; a fresh
  // classifier scores the same ratio light — that asymmetry IS the
  // hysteresis, and it's what stops a boundary key from thrashing.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sys.DeleteExact("B", zeros.back()).ok());
    zeros.pop_back();
  }
  cls.RecordOps("B", 1);  // crosses stats_refresh_ops -> rebuild on next use
  EXPECT_TRUE(cls.HeavyKey("B", 1, Value{int64_t{0}}));
  HeavyLightClassifier fresh(&sys, 4.0, 1);
  EXPECT_FALSE(fresh.HeavyKey("B", 1, Value{int64_t{0}}));

  // Below half the threshold the promoted key demotes: key 0 x2 gives
  // ratio 2 / (10/9) = 1.8 < 2.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sys.DeleteExact("B", zeros.back()).ok());
    zeros.pop_back();
  }
  cls.RecordOps("B", 1);
  EXPECT_FALSE(cls.HeavyKey("B", 1, Value{int64_t{0}}));
  EXPECT_EQ(cls.heavy_keys_live(), 0u);
}

TEST(HeavyLightClassifierTest, StatsRefreshFollowsHotKeyDrift) {
  // Regression for the stale-statistics bug: histograms were built once and
  // never refreshed, so after the hot key drifts the classifier kept
  // scoring yesterday's distribution. stats_refresh_ops = 0 preserves that
  // behaviour for contrast.
  SystemConfig cfg;
  cfg.num_nodes = 1;
  ParallelSystem sys(cfg);
  ASSERT_TRUE(sys.CreateTable(MakeTableDef("B", BSchema(), "b")).ok());
  std::vector<Row> zeros;
  int64_t bkey = 0;
  for (int r = 0; r < 12; ++r) {
    Row row{Value{bkey}, Value{int64_t{0}}, Value{bkey * 10}};
    zeros.push_back(row);
    ASSERT_TRUE(sys.Insert("B", row).ok());
    ++bkey;
  }
  for (int64_t k = 1; k <= 6; ++k) {
    ASSERT_TRUE(sys.Insert("B", {Value{bkey}, Value{k}, Value{bkey * 10}}).ok());
    ++bkey;
  }

  HeavyLightClassifier refreshing(&sys, 4.0, /*stats_refresh_ops=*/8);
  HeavyLightClassifier stale(&sys, 4.0, /*stats_refresh_ops=*/0);
  const Value key0{int64_t{0}};
  const Value key5{int64_t{5}};
  EXPECT_TRUE(refreshing.HeavyKey("B", 1, key0));
  EXPECT_FALSE(refreshing.HeavyKey("B", 1, key5));
  EXPECT_TRUE(stale.HeavyKey("B", 1, key0));
  EXPECT_FALSE(stale.HeavyKey("B", 1, key5));

  // The hot key moves from 0 to 5.
  for (const Row& row : zeros) ASSERT_TRUE(sys.DeleteExact("B", row).ok());
  for (int r = 0; r < 12; ++r) {
    ASSERT_TRUE(sys.Insert("B", {Value{bkey}, Value{int64_t{5}}, Value{1}}).ok());
    ++bkey;
  }
  refreshing.RecordOps("B", 24);
  stale.RecordOps("B", 24);

  EXPECT_TRUE(refreshing.HeavyKey("B", 1, key5));   // follows the drift
  EXPECT_FALSE(refreshing.HeavyKey("B", 1, key0));  // demoted
  EXPECT_FALSE(stale.HeavyKey("B", 1, key5));       // the pre-fix behaviour
  EXPECT_TRUE(stale.HeavyKey("B", 1, key0));
}

TEST(HeavyLightStoreTest, AppendCancelsOppositeSignChurn) {
  DeferredDeltaStore store;
  Row r1{Value{1}, Value{0}, Value{100}};
  Row r2{Value{2}, Value{0}, Value{200}};
  EXPECT_FALSE(store.Append("V", 0, /*is_delete=*/false, r1, {0, 0}));
  EXPECT_FALSE(store.Append("V", 0, /*is_delete=*/false, r2, {0, 1}));
  EXPECT_EQ(store.rows("V"), 2u);
  // A delete matching a buffered insert annihilates it.
  EXPECT_TRUE(store.Append("V", 0, /*is_delete=*/true, r1, {0, 0}));
  EXPECT_EQ(store.rows("V"), 1u);
  EXPECT_EQ(store.cancelled(), 2u);
  // An unmatched delete buffers; an insert matching it annihilates.
  Row r3{Value{3}, Value{0}, Value{300}};
  EXPECT_FALSE(store.Append("V", 0, /*is_delete=*/true, r3, {1, 0}));
  EXPECT_TRUE(store.Append("V", 0, /*is_delete=*/false, r3, {1, 1}));
  EXPECT_EQ(store.rows("V"), 1u);
  EXPECT_EQ(store.Find("V")->inserts.size(), 1u);
  EXPECT_EQ(RowToString(store.Find("V")->inserts[0]), RowToString(r2));
  store.Clear("V");
  EXPECT_EQ(store.total_rows(), 0u);
}

// -------------------------------------------------------- fold equivalence

// Runs one skewed update stream (hot inserts, hot churn, light traffic)
// under the given settings and returns the view's settled content bag.
std::map<std::string, int> RunStream(bool heavy_light, MaintenanceMethod method,
                                     bool mvcc, size_t* deferred_peak) {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.heavy_light = heavy_light;
  cfg.deferred_fold_rows = 1000;  // no auto-fold: the test folds explicitly
  cfg.mvcc_reads = mvcc;
  SkewFixture fx(cfg);
  fx.mgr->RegisterView(fx.View("V"), method).Check();

  std::vector<Row> hot;
  for (int i = 0; i < 6; ++i) {
    hot.push_back(fx.ARow(0));
    EXPECT_TRUE(fx.mgr->InsertRow("A", hot.back()).ok());
  }
  // Churn: half the hot inserts are deleted within the deferral window.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(fx.mgr->DeleteRow("A", hot[i]).ok());
  }
  for (int64_t k = 1; k <= 5; ++k) {
    EXPECT_TRUE(fx.mgr->InsertRow("A", fx.ARow(k)).ok());
  }
  Row light_churn = fx.ARow(7);
  EXPECT_TRUE(fx.mgr->InsertRow("A", light_churn).ok());
  EXPECT_TRUE(fx.mgr->DeleteRow("A", light_churn).ok());

  if (deferred_peak != nullptr) *deferred_peak = fx.mgr->DeferredRows("V");
  EXPECT_TRUE(fx.mgr->FoldAllDeferred().ok());
  EXPECT_EQ(fx.mgr->DeferredRows("V"), 0u);
  EXPECT_TRUE(fx.mgr->CheckAllConsistent().ok());
  return RowBag(fx.mgr->view("V")->Contents());
}

TEST(HeavyLightFoldTest, FoldEqualsEagerByteForByteAllMethods) {
  for (MaintenanceMethod method :
       {MaintenanceMethod::kNaive, MaintenanceMethod::kAuxRelation,
        MaintenanceMethod::kGlobalIndex}) {
    for (bool mvcc : {false, true}) {
      SCOPED_TRACE(std::string(MaintenanceMethodToString(method)) +
                   (mvcc ? "+mvcc" : ""));
      size_t deferred_peak = 0;
      std::map<std::string, int> deferred =
          RunStream(/*heavy_light=*/true, method, mvcc, &deferred_peak);
      std::map<std::string, int> eager =
          RunStream(/*heavy_light=*/false, method, mvcc, nullptr);
      // Something was actually deferred (the hot rows minus cancelled
      // churn), and the folded contents match eager maintenance exactly.
      EXPECT_EQ(deferred_peak, 3u);
      EXPECT_EQ(deferred, eager);
    }
  }
}

TEST(HeavyLightFoldTest, ForeignBaseDeltaFoldsFirst) {
  // A delta on B while V buffers A-side rows must fold the buffer before
  // its own base update, or the fold would join against a moved neighbour.
  SystemConfig cfg = HlConfig(4);
  cfg.deferred_fold_rows = 0;  // event-only folds
  SkewFixture fx(cfg);
  fx.mgr->RegisterView(fx.View("V"), MaintenanceMethod::kAuxRelation).Check();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.mgr->InsertRow("A", fx.ARow(0)).ok());
  }
  ASSERT_EQ(fx.mgr->DeferredRows("V"), 4u);
  // New hot-key B row: joins with the buffered A rows too.
  ASSERT_TRUE(
      fx.mgr->InsertRow("B", {Value{999}, Value{int64_t{0}}, Value{1}}).ok());
  EXPECT_EQ(fx.mgr->DeferredRows("V"), 0u);  // folded before the B delta
  ASSERT_TRUE(fx.mgr->CheckAllConsistent().ok());
}

TEST(HeavyLightFoldTest, SizeTriggerFoldsAutomatically) {
  SystemConfig cfg = HlConfig(4);
  cfg.deferred_fold_rows = 3;
  SkewFixture fx(cfg);
  fx.mgr->RegisterView(fx.View("V"), MaintenanceMethod::kGlobalIndex).Check();
  Counter* folds = MetricsRegistry::Global().counter("pjvm_deferred_folds");
  const uint64_t before = folds->value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fx.mgr->InsertRow("A", fx.ARow(0)).ok());
  }
  EXPECT_EQ(fx.mgr->DeferredRows("V"), 0u);  // third row crossed the trigger
  EXPECT_EQ(folds->value(), before + 1);
  ASSERT_TRUE(fx.mgr->CheckAllConsistent().ok());
}

// --------------------------------------------------- fold under contention

TEST(HeavyLightFoldTest, FoldRetriesAsWaitDieVictimWithoutLossOrDuplication) {
  SystemConfig cfg = HlConfig(2);
  cfg.enable_locking = true;
  cfg.deferred_fold_rows = 0;
  cfg.maintain_retry_base_us = 2000;
  SkewFixture fx(cfg);
  fx.mgr->RegisterView(fx.View("V"), MaintenanceMethod::kAuxRelation).Check();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.mgr->InsertRow("A", fx.ARow(0)).ok());
  }
  ASSERT_EQ(fx.mgr->DeferredRows("V"), 4u);

  Counter* retries = MetricsRegistry::Global().counter("pjvm_maintain_retries");
  const uint64_t retries_before = retries->value();
  // An older transaction holds the view fragment the fold X-locks up front,
  // so every fold attempt is the wait-die victim until the blocker commits.
  uint64_t blocker = fx.sys->Begin();
  ASSERT_TRUE(fx.sys->locks()
                  .Acquire(blocker, LockId::Table(0, "V"), LockMode::kExclusive)
                  .ok());
  std::thread release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fx.sys->Commit(blocker).Check();
  });
  ASSERT_TRUE(fx.mgr->FoldView("V").ok());
  release.join();

  EXPECT_GT(retries->value(), retries_before);  // at least one aborted attempt
  EXPECT_EQ(fx.mgr->DeferredRows("V"), 0u);
  // Nothing lost (all four hot derivations present) and nothing duplicated
  // (an attempt that aborted must not have re-applied buffered rows).
  ASSERT_TRUE(fx.mgr->CheckAllConsistent().ok());
}

// ------------------------------------------------------------ crash safety

TEST(HeavyLightFoldTest, CrashBeforeFoldRecoversViaRecoverViews) {
  SystemConfig cfg = HlConfig(4);
  cfg.deferred_fold_rows = 0;
  SkewFixture fx(cfg);
  fx.mgr->RegisterView(fx.View("V"), MaintenanceMethod::kGlobalIndex).Check();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fx.mgr->InsertRow("A", fx.ARow(0)).ok());
  }
  ASSERT_TRUE(fx.mgr->InsertRow("A", fx.ARow(2)).ok());
  ASSERT_GT(fx.mgr->DeferredRows("V"), 0u);

  // Crash with the fold still owed. The buffered rows' base updates were
  // committed transactions, so they survive; their view derivations were
  // never applied.
  fx.sys->Crash();
  ASSERT_TRUE(fx.sys->Recover().ok());
  ASSERT_TRUE(fx.mgr->RecoverViews().ok());
  EXPECT_EQ(fx.mgr->DeferredRows("V"), 0u);
  ASSERT_TRUE(fx.mgr->CheckAllConsistent().ok());
  // The recovered view really contains the hot derivations.
  auto expected = EvaluateViewFromScratch(fx.sys.get(),
                                          fx.mgr->registration("V")->bound);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(RowBag(fx.mgr->view("V")->Contents()), RowBag(*expected));
  EXPECT_GT(expected->size(), 0u);
}

}  // namespace
}  // namespace pjvm
