#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "net/message.h"
#include "net/network.h"

namespace pjvm {
namespace {

TEST(MessageTest, ByteSizeCountsPayload) {
  Message msg;
  msg.table = "orders";  // 6 bytes
  msg.rows.push_back({Value{1}, Value{"abc"}});  // 8 + 4
  msg.rids = {1, 2};  // 16
  EXPECT_EQ(msg.ByteSize(), 16u + 6u + 12u + 16u);
}

TEST(MessageTest, KindNames) {
  EXPECT_STREQ(MessageKindToString(MessageKind::kTuples), "TUPLES");
  EXPECT_STREQ(MessageKindToString(MessageKind::kRidProbe), "RID_PROBE");
}

TEST(NetworkTest, SendDeliversToDestinationQueue) {
  CostTracker cost(4);
  Network net(4, &cost);
  Message msg;
  msg.from = 0;
  msg.to = 2;
  msg.table = "t";
  ASSERT_TRUE(net.Send(msg).ok());
  EXPECT_FALSE(net.Poll(1).has_value());
  auto got = net.Poll(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->table, "t");
  EXPECT_FALSE(net.Poll(2).has_value());
}

TEST(NetworkTest, CrossNodeSendChargesSender) {
  CostTracker cost(4);
  Network net(4, &cost);
  Message msg;
  msg.from = 1;
  msg.to = 3;
  ASSERT_TRUE(net.Send(msg).ok());
  EXPECT_EQ(cost.node(1).sends, 1u);
  EXPECT_EQ(cost.node(3).sends, 0u);
}

TEST(NetworkTest, SelfSendIsConceptualAndFree) {
  // The paper's dashed arrows: same-node "sends" cost nothing.
  CostTracker cost(4);
  Network net(4, &cost);
  Message msg;
  msg.from = 2;
  msg.to = 2;
  ASSERT_TRUE(net.Send(msg).ok());
  EXPECT_EQ(cost.node(2).sends, 0u);
  EXPECT_TRUE(net.Poll(2).has_value());  // But it is still delivered.
  EXPECT_EQ(net.PairCount(2, 2), 1u);    // And counted as a message.
}

TEST(NetworkTest, BroadcastChargesLSends) {
  // The naive method's model term: L*SEND including the self-copy.
  CostTracker cost(8);
  Network net(8, &cost);
  Message msg;
  ASSERT_TRUE(net.Broadcast(3, msg).ok());
  EXPECT_EQ(cost.node(3).sends, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(net.Poll(i).has_value()) << "node " << i;
  }
}

TEST(NetworkTest, RejectsBadNodes) {
  CostTracker cost(2);
  Network net(2, &cost);
  Message msg;
  msg.from = -1;
  msg.to = 0;
  EXPECT_FALSE(net.Send(msg).ok());
  msg.from = 0;
  msg.to = 5;
  EXPECT_FALSE(net.Send(msg).ok());
  EXPECT_FALSE(net.Broadcast(9, Message{}).ok());
}

TEST(NetworkTest, PairCountsAndTotals) {
  CostTracker cost(3);
  Network net(3, &cost);
  Message msg;
  msg.from = 0;
  msg.to = 1;
  ASSERT_TRUE(net.Send(msg).ok());
  ASSERT_TRUE(net.Send(msg).ok());
  msg.to = 2;
  ASSERT_TRUE(net.Send(msg).ok());
  EXPECT_EQ(net.PairCount(0, 1), 2u);
  EXPECT_EQ(net.PairCount(0, 2), 1u);
  EXPECT_EQ(net.PairCount(1, 0), 0u);
  EXPECT_EQ(net.TotalMessages(), 3u);
  EXPECT_GT(net.TotalBytes(), 0u);
  net.ResetCounters();
  EXPECT_EQ(net.TotalMessages(), 0u);
  EXPECT_EQ(net.PairCount(0, 1), 0u);
}

TEST(NetworkTest, HasPendingTracksQueues) {
  CostTracker cost(2);
  Network net(2, &cost);
  EXPECT_FALSE(net.HasPending());
  Message msg;
  msg.from = 0;
  msg.to = 1;
  ASSERT_TRUE(net.Send(msg).ok());
  EXPECT_TRUE(net.HasPending());
  net.Poll(1);
  EXPECT_FALSE(net.HasPending());
}

TEST(NetworkTest, PollTxnSkipsOtherTransactionsMessages) {
  // Regression for the broadcast/drain stale-queue hazard: with several
  // maintenance transactions in flight, a plain Poll() can dequeue another
  // transaction's message. PollTxn must pluck only its own, leaving the
  // rest queued in order.
  CostTracker cost(2);
  Network net(2, &cost);
  for (uint64_t txn : {7u, 9u, 7u, 9u}) {
    Message msg;
    msg.from = 0;
    msg.to = 1;
    msg.txn_id = txn;
    ASSERT_TRUE(net.Send(msg).ok());
  }
  auto got = net.PollTxn(1, 9);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->txn_id, 9u);
  // Txn 7's messages were not disturbed and stay FIFO.
  got = net.PollTxn(1, 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->txn_id, 7u);
  EXPECT_EQ(net.PendingCount(1), 2u);
  EXPECT_FALSE(net.PollTxn(1, 5).has_value());  // absent txn: nothing taken
  EXPECT_EQ(net.PendingCount(1), 2u);
}

TEST(NetworkTest, InterleavedBroadcastDrainsSeeOnlyOwnTxn) {
  // Two broadcast rounds interleave in the shared per-node queues; each
  // drain loop must retrieve exactly its own copies and leave the queues
  // empty overall.
  CostTracker cost(3);
  Network net(3, &cost);
  Message a;
  a.txn_id = 1;
  ASSERT_TRUE(net.Broadcast(0, a).ok());
  Message b;
  b.txn_id = 2;
  ASSERT_TRUE(net.Broadcast(1, b).ok());
  for (int node = 0; node < 3; ++node) {
    auto got = net.PollTxn(node, 2);  // drain txn 2 first despite FIFO order
    ASSERT_TRUE(got.has_value()) << "node " << node;
    EXPECT_EQ(got->txn_id, 2u);
    EXPECT_EQ(got->from, 1);
  }
  for (int node = 0; node < 3; ++node) {
    auto got = net.PollTxn(node, 1);
    ASSERT_TRUE(got.has_value()) << "node " << node;
    EXPECT_EQ(got->txn_id, 1u);
    EXPECT_EQ(got->from, 0);
  }
  EXPECT_FALSE(net.HasPending());
}

TEST(NetworkTest, ConcurrentPerTxnDrainsNeverCrossTransactions) {
  // The live version of the interleaving hazard: two transactions run
  // broadcast+drain rounds from different threads against the same per-node
  // queues. A drain loop built on plain Poll() dequeues whichever message is
  // at the head — including the other transaction's; PollTxn must hand each
  // thread exactly its own copies, in its own FIFO order, every round.
  constexpr int kNodes = 4;
  constexpr int kRounds = 200;
  CostTracker cost(kNodes);
  Network net(kNodes, &cost);
  auto driver = [&](uint64_t txn, int from) {
    for (int r = 0; r < kRounds; ++r) {
      Message msg;
      msg.txn_id = txn;
      msg.table = std::to_string(txn) + ":" + std::to_string(r);
      EXPECT_TRUE(net.Broadcast(from, msg).ok());
      for (int node = 0; node < kNodes; ++node) {
        std::optional<Message> got = net.PollTxn(node, txn);
        ASSERT_TRUE(got.has_value()) << "txn " << txn << " round " << r
                                     << " node " << node;
        EXPECT_EQ(got->txn_id, txn);
        EXPECT_EQ(got->table, msg.table);
        EXPECT_EQ(got->from, from);
      }
    }
  };
  std::thread t1([&] { driver(1, 0); });
  std::thread t2([&] { driver(2, 1); });
  t1.join();
  t2.join();
  EXPECT_FALSE(net.HasPending());
}

TEST(NetworkTest, SendAndDeliverBypassesStaleQueuedMessages) {
  // A stale message is already queued at the destination; a synchronous hop
  // must hand back its own payload, not the queued one, and must not
  // disturb the queue.
  CostTracker cost(2);
  Network net(2, &cost);
  Message stale;
  stale.from = 0;
  stale.to = 1;
  stale.txn_id = 42;
  stale.table = "stale";
  ASSERT_TRUE(net.Send(stale).ok());
  Message mine;
  mine.from = 0;
  mine.to = 1;
  mine.txn_id = 99;
  mine.table = "mine";
  auto got = net.SendAndDeliver(mine);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->txn_id, 99u);
  EXPECT_EQ(got->table, "mine");
  // The hop was charged and counted like a real send...
  EXPECT_EQ(cost.node(0).sends, 2u);
  EXPECT_EQ(net.PairCount(0, 1), 2u);
  // ...but the stale message is still the only thing queued.
  EXPECT_EQ(net.PendingCount(1), 1u);
  auto queued = net.Poll(1);
  ASSERT_TRUE(queued.has_value());
  EXPECT_EQ(queued->table, "stale");
}

TEST(NetworkTest, FifoPerDestination) {
  CostTracker cost(2);
  Network net(2, &cost);
  for (int i = 0; i < 3; ++i) {
    Message msg;
    msg.from = 0;
    msg.to = 1;
    msg.txn_id = static_cast<uint64_t>(i);
    ASSERT_TRUE(net.Send(msg).ok());
  }
  for (uint64_t i = 0; i < 3; ++i) {
    auto got = net.Poll(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->txn_id, i);
  }
}

}  // namespace
}  // namespace pjvm
