#include "view/ar_minimizer.h"

#include <algorithm>
#include <map>

#include "net/message.h"

namespace pjvm {

namespace {

std::string ArName(const std::string& table, const std::string& column) {
  return "__ar_" + table + "_" + column;
}

}  // namespace

std::string ArRegistry::Fingerprint(const std::vector<BoundPred>& preds) {
  // Order-insensitive: sort rendered predicates.
  std::vector<std::string> parts;
  parts.reserve(preds.size());
  for (const BoundPred& p : preds) {
    parts.push_back(std::to_string(p.col) + PredOpToString(p.op) +
                    p.constant.ToString() +
                    ValueTypeToString(p.constant.type()));
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& s : parts) out += s + "&";
  return out;
}

bool ArRegistry::PassesPreds(const Row& full_row,
                             const std::vector<BoundPred>& preds) {
  for (const BoundPred& bp : preds) {
    SelectionPred pred;
    pred.op = bp.op;
    pred.constant = bp.constant;
    if (!pred.Eval(full_row[bp.col])) return false;
  }
  return true;
}

Status ArRegistry::Require(const std::string& table, int col,
                           const std::vector<int>& needed_cols,
                           const std::vector<BoundPred>& preds) {
  ++refs_[{table, col}];
  auto it = entries_.find({table, col});
  if (it == entries_.end()) {
    PJVM_ASSIGN_OR_RETURN(const TableDef* base, sys_->catalog().Get(table));
    Entry entry;
    entry.base_table = table;
    entry.col = col;
    entry.ar_table = ArName(table, base->schema.column(col).name);
    std::set<int> cols(needed_cols.begin(), needed_cols.end());
    cols.insert(col);
    for (const BoundPred& p : preds) cols.insert(p.col);
    entry.cols.assign(cols.begin(), cols.end());
    entry.filtered = !preds.empty();
    entry.preds = preds;
    entry.fingerprint = Fingerprint(preds);
    PJVM_RETURN_NOT_OK(Build(entry));
    entries_.emplace(std::make_pair(table, col), std::move(entry));
    return Status::OK();
  }
  Entry& entry = it->second;
  std::set<int> want(entry.cols.begin(), entry.cols.end());
  for (int c : needed_cols) want.insert(c);
  bool widen = want.size() != entry.cols.size();
  bool generalize =
      entry.filtered && entry.fingerprint != Fingerprint(preds);
  if (!widen && !generalize) return Status::OK();
  std::vector<int> new_cols(want.begin(), want.end());
  bool filtered = entry.filtered && !generalize;
  return Rebuild(entry, new_cols,
                 filtered, filtered ? entry.preds : std::vector<BoundPred>{});
}

Status ArRegistry::Build(Entry& entry) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* base,
                        sys_->catalog().Get(entry.base_table));
  TableDef def;
  def.name = entry.ar_table;
  def.schema = base->schema.Project(entry.cols);
  def.kind = TableKind::kAuxiliary;
  const std::string& col_name = base->schema.column(entry.col).name;
  def.partition = PartitionSpec::Hash(col_name);
  // "We maintain a clustered index I_A on A.c for AR_A."
  def.indexes.push_back(IndexSpec{col_name, /*clustered=*/true});
  PJVM_RETURN_NOT_OK(sys_->CreateTable(def));
  // Backfill from the base table (bulk load; routed by hash, no maintenance
  // metering intended — callers reset the cost tracker after setup).
  for (int i = 0; i < sys_->num_nodes(); ++i) {
    // Copy the qualifying rows out under node i's latch, then insert with the
    // latch released: Insert latches the AR row's *home* node, and holding one
    // node's latch while taking another's would invert latch order.
    std::vector<Row> rows;
    {
      NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
      const TableFragment* frag = sys_->node(i)->fragment(entry.base_table);
      frag->ForEach([&](LocalRowId, const Row& row) {
        if (entry.filtered && !PassesPreds(row, entry.preds)) return true;
        rows.push_back(ProjectRow(row, entry.cols));
        return true;
      });
    }
    for (Row& row : rows) {
      PJVM_RETURN_NOT_OK(sys_->Insert(entry.ar_table, std::move(row)));
    }
  }
  return Status::OK();
}

Status ArRegistry::Rebuild(Entry& entry, const std::vector<int>& cols,
                           bool filtered, const std::vector<BoundPred>& preds) {
  PJVM_RETURN_NOT_OK(sys_->DropTable(entry.ar_table));
  entry.cols = cols;
  entry.filtered = filtered;
  entry.preds = preds;
  entry.fingerprint = Fingerprint(preds);
  return Build(entry);
}

Status ArRegistry::Release(const std::string& table, int col) {
  auto ref = refs_.find({table, col});
  if (ref == refs_.end() || ref->second <= 0) {
    return Status::NotFound("no auxiliary relation reference for " + table +
                            " column " + std::to_string(col));
  }
  if (--ref->second > 0) return Status::OK();
  refs_.erase(ref);
  auto it = entries_.find({table, col});
  if (it != entries_.end()) {
    PJVM_RETURN_NOT_OK(sys_->DropTable(it->second.ar_table));
    entries_.erase(it);
  }
  return Status::OK();
}

Result<ArAccess> ArRegistry::Access(const std::string& table, int col,
                                    const std::vector<int>& needed_cols,
                                    const std::vector<BoundPred>& preds) const {
  auto it = entries_.find({table, col});
  if (it == entries_.end()) {
    return Status::NotFound("no auxiliary relation for " + table + " column " +
                            std::to_string(col));
  }
  const Entry& entry = it->second;
  auto pos_of = [&entry](int full_col) -> int {
    auto pos = std::lower_bound(entry.cols.begin(), entry.cols.end(), full_col);
    if (pos == entry.cols.end() || *pos != full_col) return -1;
    return static_cast<int>(pos - entry.cols.begin());
  };
  ArAccess access;
  access.table = entry.ar_table;
  access.probe_col = pos_of(col);
  for (int c : needed_cols) {
    int p = pos_of(c);
    if (p < 0) {
      return Status::Internal("AR '" + entry.ar_table +
                              "' does not cover needed column " +
                              std::to_string(c) + "; Require() it first");
    }
    access.needed_pos.push_back(p);
  }
  // If the AR is filtered with exactly the consumer's predicates, nothing
  // remains to check at probe time; otherwise remap them to AR positions.
  if (!(entry.filtered && entry.fingerprint == Fingerprint(preds))) {
    for (const BoundPred& bp : preds) {
      int p = pos_of(bp.col);
      if (p < 0) {
        return Status::Internal("AR '" + entry.ar_table +
                                "' does not cover predicate column");
      }
      BoundPred remapped = bp;
      remapped.col = p;
      access.residual_preds.push_back(remapped);
    }
  }
  return access;
}

Result<size_t> ArRegistry::ApplyDelta(uint64_t txn, const DeltaBatch& delta) {
  size_t writes = 0;
  for (auto& [key, entry] : entries_) {
    if (entry.base_table != delta.table) continue;
    auto apply = [&](const std::vector<Row>& rows,
                     const std::vector<GlobalRowId>& gids,
                     bool is_delete) -> Status {
      for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        if (entry.filtered && !PassesPreds(row, entry.preds)) continue;
        Row ar_row = ProjectRow(row, entry.cols);
        int dest = sys_->HomeNodeForKey(row[entry.col]);
        int from = i < gids.size() && gids[i].node >= 0 ? gids[i].node : dest;
        if (from != dest) {
          Message msg;
          msg.kind = is_delete ? MessageKind::kDeleteTuples : MessageKind::kTuples;
          msg.from = from;
          msg.to = dest;
          msg.table = entry.ar_table;
          msg.rows.push_back(ar_row);
          msg.txn_id = txn;
          // Synchronous hop (see Network::SendAndDeliver): a Send/Poll pair
          // would race with concurrent maintenance transactions.
          PJVM_RETURN_NOT_OK(
              sys_->network().SendAndDeliver(std::move(msg)).status());
        }
        if (is_delete) {
          PJVM_RETURN_NOT_OK(
              sys_->node(dest)->DeleteExact(txn, entry.ar_table, ar_row));
        } else {
          PJVM_RETURN_NOT_OK(
              sys_->node(dest)->Insert(txn, entry.ar_table, std::move(ar_row))
                  .status());
        }
        ++writes;
      }
      return Status::OK();
    };
    PJVM_RETURN_NOT_OK(apply(delta.deletes, delta.delete_gids, true));
    PJVM_RETURN_NOT_OK(apply(delta.inserts, delta.insert_gids, false));
  }
  return writes;
}

size_t ArRegistry::StorageBytes() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    bytes += sys_->TableBytes(entry.ar_table);
  }
  return bytes;
}

size_t ArRegistry::UnminimizedBytes() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    bytes += sys_->TableBytes(entry.base_table);
  }
  return bytes;
}

std::vector<std::string> ArRegistry::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, entry] : entries_) names.push_back(entry.ar_table);
  return names;
}

Status ArRegistry::CheckConsistent() const {
  for (const auto& [key, entry] : entries_) {
    // Expected contents: pi(sigma(base)).
    std::map<std::string, int> expected;
    for (const Row& row : sys_->ScanAll(entry.base_table)) {
      if (entry.filtered && !PassesPreds(row, entry.preds)) continue;
      expected[RowToString(ProjectRow(row, entry.cols))]++;
    }
    std::map<std::string, int> actual;
    size_t misplaced = 0;
    for (int i = 0; i < sys_->num_nodes(); ++i) {
      NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
      const TableFragment* frag = sys_->node(i)->fragment(entry.ar_table);
      int probe_pos = -1;
      {
        auto pos =
            std::lower_bound(entry.cols.begin(), entry.cols.end(), entry.col);
        probe_pos = static_cast<int>(pos - entry.cols.begin());
      }
      int node = i;
      frag->ForEach([&](LocalRowId, const Row& row) {
        actual[RowToString(row)]++;
        if (sys_->HomeNodeForKey(row[probe_pos]) != node) ++misplaced;
        return true;
      });
    }
    if (expected != actual) {
      return Status::Internal("AR '" + entry.ar_table +
                              "' diverged from pi(sigma(" + entry.base_table +
                              "))");
    }
    if (misplaced > 0) {
      return Status::Internal("AR '" + entry.ar_table + "' has " +
                              std::to_string(misplaced) +
                              " rows on the wrong node");
    }
  }
  return Status::OK();
}

}  // namespace pjvm
