// Reproduces Figure 10: per-node response time of one transaction inserting
// 6,500 tuples — approximately |B| pages — where sort-merge wins and the
// naive method with clustered base relations beats the AR and GI methods
// (the paper's Section 3.1.2 crossover result).

#include <iostream>

#include "bench/bench_util.h"
#include "model/figures.h"

int main() {
  pjvm::model::Figure fig = pjvm::model::MakeFigure10();
  pjvm::model::PrintFigure(fig, std::cout);
  pjvm::bench::WriteFigureJson("fig10_large_txn", fig);
  return 0;
}
