#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace pjvm {

ZipfGenerator::ZipfGenerator(int64_t n, double theta, uint64_t seed)
    : rng_(seed) {
  cdf_.reserve(n);
  double cumulative = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    cumulative += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_.push_back(cumulative);
  }
  // Normalize to [0, 1].
  for (double& x : cdf_) x /= cumulative;
}

int64_t ZipfGenerator::Next() {
  double u = rng_.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int64_t>(cdf_.size()) - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace pjvm
