#ifndef PJVM_OBS_TRACE_H_
#define PJVM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace pjvm {

/// \brief One completed trace event.
///
/// Spans nest by time on their recording thread: a transaction span encloses
/// its phase spans, which enclose the per-node task spans that ran on that
/// worker. `name`/`category`/`method` are static strings (call sites pass
/// literals); anything dynamic goes in `detail`.
struct TraceSpan {
  enum class Kind : uint8_t {
    kComplete = 0,  ///< Chrome "X" event: start + duration.
    kInstant,       ///< Chrome "i" event: a point in time (e.g. one SEND).
  };

  const char* name = "";
  const char* category = "";
  Kind kind = Kind::kComplete;
  /// Tracer-assigned index of the recording thread (Chrome tid).
  int tid = 0;
  /// Data-server node the span's work belongs to; -1 for coordinator scope.
  int node = -1;
  /// Maintenance method tag (MaintenanceMethodToString) or nullptr.
  const char* method = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Nesting depth on the recording thread at the time the span opened.
  int depth = 0;
  /// CostTracker delta charged to `node` while the span was open (per-node
  /// task spans only; see SpanGuard).
  bool has_cost = false;
  NodeCounters cost;
  /// Payload bytes (network events).
  uint64_t bytes = 0;
  /// Free-form label: view name, table, "from->to" hop, ...
  std::string detail;
};

/// \brief Process-wide low-overhead tracer with thread-local span buffers.
///
/// Hot path (Record, via SpanGuard): no locks. Each thread appends completed
/// spans to its own chunked buffer; a chunk's entries are published with a
/// release store of its count, and full chunks are linked with a release
/// store of `next`, so Snapshot()/export can read concurrently from any
/// thread with acquire loads and never see a partially-written span. The
/// buffer registry (first span of a new thread, thread naming) takes a mutex
/// — a cold path.
///
/// When disabled (the default) a SpanGuard costs one relaxed atomic load and
/// Record is never reached; cost accounting is independent of the tracer
/// either way (spans only *read* CostTracker counters).
///
/// Enable/Disable/Clear are coordinator-side operations: call them while no
/// traced work is in flight (the executor's WaitAll barrier orders worker
/// writes before the coordinator's next step).
class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Drops every recorded span (buffers and thread names survive). Requires
  /// quiescence: no thread may be recording concurrently.
  void Clear();

  /// Appends one completed event to the calling thread's buffer. Called by
  /// SpanGuard and by instant-event sites; callers check enabled() first.
  void Record(TraceSpan span);

  /// Names the calling thread in exported traces (e.g. "node-3 worker").
  void SetCurrentThreadName(std::string name);

  /// Copies every span recorded so far, in per-thread recording order.
  /// Safe to call concurrently with Record.
  std::vector<TraceSpan> Snapshot() const;

  /// The trace as Chrome trace-event JSON (chrome://tracing / Perfetto).
  std::string ChromeTraceJson() const;
  /// Writes ChromeTraceJson() to `path`.
  Status ExportChromeTrace(const std::string& path) const;

  /// Monotonic nanoseconds since process start (the span timebase).
  static uint64_t NowNs();

  // --- SpanGuard support (owner-thread only) ---
  int OpenSpan();    ///< Increments the thread's open depth; returns depth.
  void CloseSpan();  ///< Decrements the thread's open depth.

 private:
  struct Chunk {
    static constexpr size_t kCapacity = 256;
    TraceSpan spans[kCapacity];
    std::atomic<size_t> count{0};
    std::atomic<Chunk*> next{nullptr};

    ~Chunk() { delete next.load(std::memory_order_acquire); }
  };

  struct ThreadBuffer {
    int tid = 0;
    std::string name;  // guarded by Tracer::mu_
    std::unique_ptr<Chunk> head;
    Chunk* tail = nullptr;  // owner-thread only (coordinator during Clear)
    int depth = 0;          // owner-thread only
  };

  Tracer() = default;
  ThreadBuffer* LocalBuffer();

  static thread_local ThreadBuffer* tl_buffer_;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ registration and names
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// \brief RAII span: records a TraceSpan covering its lifetime.
///
/// When `cost` and `node >= 0` are given, the guard snapshots that node's
/// CostTracker counters at open and close and stores the difference in the
/// span — the I/Os and sends charged inside the span. Pass the node whose
/// work the enclosed code performs (per-node task spans); coordinator-scope
/// spans omit it.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, const char* category, int node = -1,
                     CostTracker* cost = nullptr, const char* method = nullptr);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attaches a free-form label to the span; no-op when tracing is off.
  void set_detail(std::string detail);

 private:
  bool active_ = false;
  CostTracker* cost_ = nullptr;
  NodeCounters start_cost_;
  TraceSpan span_;
};

/// Records an instant event (e.g. one network SEND) when tracing is on.
void TraceInstant(const char* name, const char* category, int node,
                  uint64_t bytes, std::string detail);

}  // namespace pjvm

#endif  // PJVM_OBS_TRACE_H_
