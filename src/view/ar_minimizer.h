#ifndef PJVM_VIEW_AR_MINIMIZER_H_
#define PJVM_VIEW_AR_MINIMIZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/system.h"
#include "view/maintainer.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief Registry of auxiliary relations with the paper's storage
/// minimization (Section 2.1.2).
///
/// An auxiliary relation AR_R = rho(pi(sigma(R))) for a (table, join column)
/// pair stores only the columns any consuming view needs and, when every
/// consumer agrees on the selection predicates, only the sigma-passing rows.
/// Views that join the same table on the same attribute share one AR
/// ("keep only one auxiliary relation AR_A for all the join views that use
/// the same join attribute A.c"): a new consumer that needs more columns
/// widens the AR (rebuild), and one with different predicates generalizes it
/// to unfiltered, pushing the predicates back to probe time.
class ArRegistry {
 public:
  explicit ArRegistry(ParallelSystem* sys) : sys_(sys) {}

  /// Ensures an AR for (table, col) exists covering `needed_cols` and usable
  /// under `preds` (full-schema columns). Creates, widens, or generalizes as
  /// needed, backfilling from the base table.
  Status Require(const std::string& table, int col,
                 const std::vector<int>& needed_cols,
                 const std::vector<BoundPred>& preds);

  /// Drops one reference to the AR for (table, col); the AR table is
  /// removed once no registered view needs it. NotFound if absent.
  Status Release(const std::string& table, int col);

  /// Access descriptor for a consumer (see StructureResolver::ArFor).
  Result<ArAccess> Access(const std::string& table, int col,
                          const std::vector<int>& needed_cols,
                          const std::vector<BoundPred>& preds) const;

  bool Has(const std::string& table, int col) const {
    return entries_.count({table, col}) > 0;
  }

  /// Propagates one base-table delta into every AR of that table: each row
  /// is shipped from its arrival node to the AR's hash home (one SEND) and
  /// inserted/deleted there. Rows failing a filtered AR's predicates are
  /// skipped. Returns the number of AR writes performed.
  Result<size_t> ApplyDelta(uint64_t txn, const DeltaBatch& delta);

  /// Total bytes across all ARs (the method's storage overhead).
  size_t StorageBytes() const;
  /// Bytes the ARs would occupy without minimization (full base copies).
  size_t UnminimizedBytes() const;

  /// Names of all AR tables.
  std::vector<std::string> TableNames() const;

  /// Verifies every AR equals pi(sigma(base)) re-partitioned on its column:
  /// exact multiset equality plus per-node placement.
  Status CheckConsistent() const;

 private:
  struct Entry {
    std::string ar_table;
    std::string base_table;
    int col = -1;  // Full-schema column the AR is partitioned/clustered on.
    std::vector<int> cols;  // Ascending full-schema columns stored.
    bool filtered = false;
    std::vector<BoundPred> preds;  // Meaningful when filtered.
    std::string fingerprint;       // Of preds, for sharing decisions.
  };

  static std::string Fingerprint(const std::vector<BoundPred>& preds);
  Status Build(Entry& entry);
  Status Rebuild(Entry& entry, const std::vector<int>& cols, bool filtered,
                 const std::vector<BoundPred>& preds);
  static bool PassesPreds(const Row& full_row,
                          const std::vector<BoundPred>& preds);

  ParallelSystem* sys_;
  std::map<std::pair<std::string, int>, Entry> entries_;
  std::map<std::pair<std::string, int>, int> refs_;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_AR_MINIMIZER_H_
