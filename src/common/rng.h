#ifndef PJVM_COMMON_RNG_H_
#define PJVM_COMMON_RNG_H_

#include <cstdint>

namespace pjvm {

/// \brief Deterministic pseudo-random generator (xoshiro256**).
///
/// All data generation and randomized property tests use this generator so
/// that every run of every workload is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace pjvm

#endif  // PJVM_COMMON_RNG_H_
