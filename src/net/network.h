#ifndef PJVM_NET_NETWORK_H_
#define PJVM_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/message.h"

namespace pjvm {

/// \brief The simulated shared-nothing interconnect.
///
/// Every cross-node data movement in the engine goes through Send(); this is
/// what makes the paper's SEND accounting and the per-method locality claims
/// (single-node vs few-node vs all-node) measurable and testable.
///
/// Semantics follow the paper's model:
///  - a point-to-point send where source == destination is "conceptual": the
///    message is delivered but no SEND is charged (the dashed lines in
///    Figures 2/4/6);
///  - Broadcast() charges one SEND per destination including the sender's
///    own node, matching the naive method's L*SEND term.
class Network {
 public:
  Network(int num_nodes, CostTracker* tracker);

  int num_nodes() const { return num_nodes_; }

  /// Enqueues `msg` for `msg.to`, charging SEND to `msg.from` unless the
  /// message stays on-node.
  Status Send(Message msg);

  /// Sends a copy of `msg` to every node (setting to/from), charging
  /// `num_nodes` SENDs to the sender as in the paper's naive-method model.
  Status Broadcast(int from, const Message& msg);

  /// Dequeues the next pending message for `node`, if any.
  std::optional<Message> Poll(int node);

  /// True if any node has undelivered messages.
  bool HasPending() const;
  size_t PendingCount(int node) const { return queues_[node].size(); }

  /// Messages sent from i to j since construction/reset (self-sends are
  /// counted here even though they cost nothing).
  uint64_t PairCount(int from, int to) const {
    return pair_counts_[from * num_nodes_ + to];
  }
  uint64_t TotalMessages() const { return total_messages_; }
  uint64_t TotalBytes() const { return total_bytes_; }

  void ResetCounters();

 private:
  Status Validate(const Message& msg) const;

  int num_nodes_;
  CostTracker* tracker_;
  std::vector<std::deque<Message>> queues_;
  std::vector<uint64_t> pair_counts_;
  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace pjvm

#endif  // PJVM_NET_NETWORK_H_
