# Empty dependencies file for bench_fig8_tw_vs_fanout.
# This may be replaced when dependencies are built.
