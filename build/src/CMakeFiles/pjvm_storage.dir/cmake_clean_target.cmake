file(REMOVE_RECURSE
  "libpjvm_storage.a"
)
