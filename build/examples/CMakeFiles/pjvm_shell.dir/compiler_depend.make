# Empty compiler generated dependencies file for pjvm_shell.
# This may be replaced when dependencies are built.
