# Empty compiler generated dependencies file for pjvm_storage.
# This may be replaced when dependencies are built.
