#include "view/merged_storage.h"

#include <algorithm>
#include <numeric>

#include "engine/node.h"
#include "obs/metrics_registry.h"
#include "txn/lock_manager.h"
#include "view/view_manager.h"

namespace pjvm {

namespace {

bool PassesPreds(const Row& full_row, const std::vector<BoundPred>& preds) {
  for (const BoundPred& bp : preds) {
    SelectionPred pred;
    pred.op = bp.op;
    pred.constant = bp.constant;
    if (!pred.Eval(full_row[bp.col])) return false;
  }
  return true;
}

/// Working-row equivalence classes under the view's join edges: two working
/// indices are equivalent when some chain of equi-join edges forces them
/// equal in every join result. The class containing the view's partitioning
/// attribute defines the merged cluster.
class WorkingUnionFind {
 public:
  explicit WorkingUnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

bool MergedViewStorage::Eligible(const SystemConfig& config,
                                 const BoundView& bound,
                                 MaintenanceMethod method,
                                 MaintenanceTiming timing) {
  return config.merged_ar_storage &&
         method == MaintenanceMethod::kAuxRelation &&
         timing == MaintenanceTiming::kImmediate && !bound.is_aggregate() &&
         bound.output_partition_col() >= 0;
}

MergedViewStorage::MergedViewStorage(ParallelSystem* sys,
                                     const BoundView& bound)
    : sys_(sys),
      view_name_(bound.def().name),
      lock_table_("__merged_" + bound.def().name),
      view_pcol_(bound.output_partition_col()) {
  // The partitioning attribute as a working-row index.
  const int pw = bound.output_indices()[bound.output_partition_col()];
  WorkingUnionFind uf(bound.working_width());
  for (const BoundEdge& e : bound.bound_edges()) {
    int li = *bound.WorkingIndex(e.left_base, e.left_col);
    int ri = *bound.WorkingIndex(e.right_base, e.right_col);
    uf.Union(li, ri);
  }
  const int cls = uf.Find(pw);
  // Every distinct (base, col) edge endpoint in the partition class becomes
  // a member, in deterministic (base, col) order for stable tags.
  std::set<std::pair<int, int>> endpoints;
  for (const BoundEdge& e : bound.bound_edges()) {
    if (uf.Find(*bound.WorkingIndex(e.left_base, e.left_col)) == cls) {
      endpoints.insert({e.left_base, e.left_col});
    }
    if (uf.Find(*bound.WorkingIndex(e.right_base, e.right_col)) == cls) {
      endpoints.insert({e.right_base, e.right_col});
    }
  }
  for (const auto& [base, col] : endpoints) {
    Member m;
    m.base_idx = base;
    m.source_table = bound.base_def(base).name;
    m.col = col;
    m.preds = bound.base_preds(base);
    std::set<int> cols(bound.needed_cols(base).begin(),
                       bound.needed_cols(base).end());
    cols.insert(col);
    for (const BoundPred& p : m.preds) cols.insert(p.col);
    m.cols.assign(cols.begin(), cols.end());
    for (int c : bound.needed_cols(base)) {
      auto pos = std::lower_bound(m.cols.begin(), m.cols.end(), c);
      m.needed_pos.push_back(static_cast<int>(pos - m.cols.begin()));
    }
    m.tag = static_cast<uint8_t>(mergedkey::kSourceTagFirst + members_.size());
    members_.push_back(std::move(m));
  }
  trees_.reserve(sys_->num_nodes());
  for (int i = 0; i < sys_->num_nodes(); ++i) {
    trees_.push_back(std::make_unique<MergedTreeFragment>());
  }
}

bool MergedViewStorage::CoversBase(int base_idx, int col) const {
  for (const Member& m : members_) {
    if (m.base_idx == base_idx && m.col == col) return true;
  }
  return false;
}

Status MergedViewStorage::EnsureRange(uint64_t txn, int node,
                                      const Value& key) {
  if (txn == kAutoCommitTxnId) return Status::OK();
  std::string prefix = mergedkey::KeyPrefix(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (txns_[txn].ranges.count({node, prefix}) > 0) return Status::OK();
  }
  // Lock before charge, and before any latch (lock-before-latch order): a
  // wait-die loser must leave no trace. One EXCLUSIVE lock serves every
  // probe and edit of the range — the probes of a maintenance transaction
  // are always followed by edits of the same range, so starting exclusive
  // avoids the forbidden shared->exclusive upgrade.
  if (sys_->config().enable_locking) {
    PJVM_RETURN_NOT_OK(sys_->locks().Acquire(
        txn, LockId::IndexKey(node, lock_table_, 0, key),
        LockMode::kExclusive));
  }
  sys_->cost().ChargeSearch(node);
  sys_->cost().ChargeDescent(node);
  range_ops_.fetch_add(1, std::memory_order_relaxed);
  static Counter* range_counter =
      MetricsRegistry::Global().counter("pjvm_merged_range_ops");
  range_counter->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  txns_[txn].ranges.insert({node, std::move(prefix)});
  return Status::OK();
}

Status MergedViewStorage::ApplyEdit(uint64_t txn, int node, const Value& key,
                                    uint8_t tag, const Row& row,
                                    bool is_insert) {
  PJVM_RETURN_NOT_OK(EnsureRange(txn, node, key));
  {
    NodeLatchGuard latch(*sys_->node(node), LatchMode::kExclusive);
    if (is_insert) {
      trees_[node]->InsertEntry(key, tag, Row{}, row);
    } else {
      Status st = trees_[node]->RemoveEntry(key, tag, Row{}, row);
      if (!st.ok()) {
        return Status::Internal("merged storage '" + lock_table_ +
                                "': missing entry for delete of " +
                                RowToString(row) + ": " + st.ToString());
      }
    }
  }
  if (txn != kAutoCommitTxnId) {
    std::lock_guard<std::mutex> lock(mu_);
    txns_[txn].journal.push_back(Edit{node, key, tag, row, is_insert});
  }
  return Status::OK();
}

Status MergedViewStorage::ProbeMember(
    uint64_t txn, int node, int base_idx, int col, const Value& key,
    const std::function<Status(const Row&)>& fn) {
  const Member* member = nullptr;
  for (const Member& m : members_) {
    if (m.base_idx == base_idx && m.col == col) {
      member = &m;
      break;
    }
  }
  if (member == nullptr) {
    return Status::InvalidArgument("merged storage '" + lock_table_ +
                                   "' has no member for base " +
                                   std::to_string(base_idx) + " col " +
                                   std::to_string(col));
  }
  PJVM_RETURN_NOT_OK(EnsureRange(txn, node, key));
  Status st = Status::OK();
  NodeLatchGuard latch(*sys_->node(node), LatchMode::kShared);
  trees_[node]->ScanKey(key, [&](uint8_t tag, const Row& row) {
    // Tags scan in order; stop once past the member's run.
    if (tag > member->tag) return false;
    if (tag < member->tag) return true;
    st = fn(ProjectRow(row, member->needed_pos));
    return st.ok();
  });
  return st;
}

Status MergedViewStorage::MirrorDelta(uint64_t txn, const DeltaBatch& delta) {
  for (const Member& m : members_) {
    if (m.source_table != delta.table) continue;
    // Deletes before inserts, mirroring the AR/GI structure-update order.
    for (const Row& row : delta.deletes) {
      if (!PassesPreds(row, m.preds)) continue;
      const Value& key = row[m.col];
      PJVM_RETURN_NOT_OK(ApplyEdit(txn, sys_->HomeNodeForKey(key), key, m.tag,
                                   ProjectRow(row, m.cols),
                                   /*is_insert=*/false));
    }
    for (const Row& row : delta.inserts) {
      if (!PassesPreds(row, m.preds)) continue;
      const Value& key = row[m.col];
      PJVM_RETURN_NOT_OK(ApplyEdit(txn, sys_->HomeNodeForKey(key), key, m.tag,
                                   ProjectRow(row, m.cols),
                                   /*is_insert=*/true));
    }
  }
  return Status::OK();
}

Status MergedViewStorage::ApplyViewEdit(uint64_t txn, int node, const Row& row,
                                        bool is_delete) {
  return ApplyEdit(txn, node, row[view_pcol_], mergedkey::kViewTag, row,
                   /*is_insert=*/!is_delete);
}

void MergedViewStorage::OnCommit(uint64_t txn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    txns_.erase(txn);
  }
  MetricsRegistry::Global()
      .gauge("pjvm_merged_bytes")
      ->Set(static_cast<double>(TreeBytes()));
}

void MergedViewStorage::OnAbort(uint64_t txn) {
  TxnState state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end()) return;
    state = std::move(it->second);
    txns_.erase(it);
  }
  // Inverse edits in reverse order, while the transaction still holds its
  // range locks (the caller aborts the system transaction — releasing the
  // locks — only after this returns).
  for (auto it = state.journal.rbegin(); it != state.journal.rend(); ++it) {
    NodeLatchGuard latch(*sys_->node(it->node), LatchMode::kExclusive);
    if (it->was_insert) {
      trees_[it->node]->RemoveEntry(it->join_key, it->tag, Row{}, it->row)
          .Check();
    } else {
      trees_[it->node]->InsertEntry(it->join_key, it->tag, Row{}, it->row);
    }
  }
}

Status MergedViewStorage::RebuildFromHeaps() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    txns_.clear();
  }
  const int n = sys_->num_nodes();
  // Stage (dest, key, tag, row) entries source node by source node — member
  // rows live at their base's partition home, not the join key's — then load
  // each destination tree under its own exclusive latch. Never two latches
  // at once.
  struct Staged {
    Value key;
    uint8_t tag;
    Row row;
  };
  std::vector<std::vector<Staged>> staged(n);
  for (const Member& m : members_) {
    for (int i = 0; i < n; ++i) {
      NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
      const TableFragment* frag = sys_->node(i)->fragment(m.source_table);
      if (frag == nullptr) continue;
      frag->ForEach([&](LocalRowId, const Row& row) {
        if (!PassesPreds(row, m.preds)) return true;
        const Value& key = row[m.col];
        staged[sys_->HomeNodeForKey(key)].push_back(
            Staged{key, m.tag, ProjectRow(row, m.cols)});
        return true;
      });
    }
  }
  for (int i = 0; i < n; ++i) {
    NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
    const TableFragment* frag = sys_->node(i)->fragment(view_name_);
    if (frag == nullptr) continue;
    frag->ForEach([&](LocalRowId, const Row& row) {
      staged[sys_->HomeNodeForKey(row[view_pcol_])].push_back(
          Staged{row[view_pcol_], mergedkey::kViewTag, row});
      return true;
    });
  }
  for (int i = 0; i < n; ++i) {
    NodeLatchGuard latch(*sys_->node(i), LatchMode::kExclusive);
    trees_[i]->Clear();
    for (Staged& s : staged[i]) {
      trees_[i]->InsertEntry(s.key, s.tag, Row{}, s.row);
    }
    PJVM_RETURN_NOT_OK(trees_[i]->CheckInvariants());
  }
  MetricsRegistry::Global()
      .gauge("pjvm_merged_bytes")
      ->Set(static_cast<double>(TreeBytes()));
  return Status::OK();
}

Status MergedViewStorage::CheckConsistent() const {
  const int n = sys_->num_nodes();
  // Expected per node: the multiset of (tag, row) entries the heaps imply.
  std::vector<std::map<std::pair<int, std::string>, int>> expected(n);
  for (const Member& m : members_) {
    for (int i = 0; i < n; ++i) {
      NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
      const TableFragment* frag = sys_->node(i)->fragment(m.source_table);
      if (frag == nullptr) continue;
      frag->ForEach([&](LocalRowId, const Row& row) {
        if (!PassesPreds(row, m.preds)) return true;
        expected[sys_->HomeNodeForKey(row[m.col])]
                [{m.tag, RowToString(ProjectRow(row, m.cols))}]++;
        return true;
      });
    }
  }
  for (int i = 0; i < n; ++i) {
    NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
    const TableFragment* frag = sys_->node(i)->fragment(view_name_);
    if (frag == nullptr) continue;
    frag->ForEach([&](LocalRowId, const Row& row) {
      expected[sys_->HomeNodeForKey(row[view_pcol_])]
              [{mergedkey::kViewTag, RowToString(row)}]++;
      return true;
    });
  }
  for (int i = 0; i < n; ++i) {
    std::map<std::pair<int, std::string>, int> actual;
    NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
    PJVM_RETURN_NOT_OK(trees_[i]->CheckInvariants());
    trees_[i]->ForEach([&](uint8_t tag, const Row& row) {
      actual[{tag, RowToString(row)}]++;
      return true;
    });
    if (actual != expected[i]) {
      return Status::Internal(
          "merged storage '" + lock_table_ + "' node " + std::to_string(i) +
          " diverged from heap contents (" + std::to_string(actual.size()) +
          " distinct entries vs " + std::to_string(expected[i].size()) +
          " expected)");
    }
  }
  return Status::OK();
}

size_t MergedViewStorage::TreeBytes() const {
  size_t bytes = 0;
  for (int i = 0; i < sys_->num_nodes(); ++i) {
    NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
    bytes += trees_[i]->byte_size();
  }
  return bytes;
}

uint64_t MergedViewStorage::range_ops() const {
  return range_ops_.load(std::memory_order_relaxed);
}

}  // namespace pjvm
