#include "view/view_manager.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "common/rng.h"

#include "net/message.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "view/aux_relation_maintainer.h"
#include "view/global_index_maintainer.h"
#include "view/naive_maintainer.h"

namespace pjvm {

// ----------------------------------------------------------------- GiRegistry

namespace {

std::string GiName(const std::string& table, const std::string& column) {
  return "__gi_" + table + "_" + column;
}

}  // namespace

Row GiRegistry::EntryRow(const Value& key, GlobalRowId gid) {
  return Row{key, Value{static_cast<int64_t>(gid.node)},
             Value{static_cast<int64_t>(gid.lrid)}};
}

Status GiRegistry::Require(const std::string& table, int col) {
  ++refs_[{table, col}];
  if (Has(table, col)) return Status::OK();
  PJVM_ASSIGN_OR_RETURN(const TableDef* base, sys_->catalog().Get(table));
  Entry entry;
  entry.base_table = table;
  entry.col = col;
  entry.gi_table = GiName(table, base->schema.column(col).name);
  TableDef def;
  def.name = entry.gi_table;
  def.schema = Schema({{"key", base->schema.column(col).type},
                       {"node", ValueType::kInt64},
                       {"lrid", ValueType::kInt64}});
  def.kind = TableKind::kGlobalIndex;
  def.partition = PartitionSpec::Hash("key");
  // An entry's posting list lives together: probing it is one SEARCH with no
  // per-item fetches, which "clustered" models.
  def.indexes.push_back(IndexSpec{"key", /*clustered=*/true});
  PJVM_RETURN_NOT_OK(sys_->CreateTable(def));
  PJVM_RETURN_NOT_OK(Backfill(entry));
  entries_.emplace(std::make_pair(table, col), std::move(entry));
  return Status::OK();
}

Status GiRegistry::Backfill(const Entry& entry) {
  for (int i = 0; i < sys_->num_nodes(); ++i) {
    const TableFragment* frag = sys_->node(i)->fragment(entry.base_table);
    Status st = Status::OK();
    int node = i;
    frag->ForEach([&](LocalRowId lrid, const Row& row) {
      st = sys_->Insert(entry.gi_table,
                        EntryRow(row[entry.col], GlobalRowId{node, lrid}));
      return st.ok();
    });
    PJVM_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status GiRegistry::Release(const std::string& table, int col) {
  auto ref = refs_.find({table, col});
  if (ref == refs_.end() || ref->second <= 0) {
    return Status::NotFound("no global index reference for " + table +
                            " column " + std::to_string(col));
  }
  if (--ref->second > 0) return Status::OK();
  refs_.erase(ref);
  auto it = entries_.find({table, col});
  if (it != entries_.end()) {
    PJVM_RETURN_NOT_OK(sys_->DropTable(it->second.gi_table));
    entries_.erase(it);
  }
  return Status::OK();
}

Result<std::string> GiRegistry::Access(const std::string& table,
                                       int col) const {
  auto it = entries_.find({table, col});
  if (it == entries_.end()) {
    return Status::NotFound("no global index for " + table + " column " +
                            std::to_string(col));
  }
  return it->second.gi_table;
}

Result<size_t> GiRegistry::ApplyDelta(uint64_t txn, const DeltaBatch& delta) {
  size_t writes = 0;
  for (auto& [key, entry] : entries_) {
    if (entry.base_table != delta.table) continue;
    auto apply = [&](const std::vector<Row>& rows,
                     const std::vector<GlobalRowId>& gids,
                     bool is_delete) -> Status {
      if (rows.size() != gids.size()) {
        return Status::InvalidArgument(
            "global index maintenance requires one gid per delta row");
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        const Value& k = rows[i][entry.col];
        Row entry_row = EntryRow(k, gids[i]);
        int dest = sys_->HomeNodeForKey(k);
        int from = gids[i].node;
        if (from != dest) {
          Message msg;
          msg.kind = is_delete ? MessageKind::kDeleteTuples : MessageKind::kTuples;
          msg.from = from;
          msg.to = dest;
          msg.table = entry.gi_table;
          msg.rows.push_back(entry_row);
          msg.txn_id = txn;
          // Synchronous hop (see Network::SendAndDeliver): a Send/Poll pair
          // would race with concurrent maintenance transactions.
          PJVM_RETURN_NOT_OK(
              sys_->network().SendAndDeliver(std::move(msg)).status());
        }
        if (is_delete) {
          PJVM_RETURN_NOT_OK(
              sys_->node(dest)->DeleteExact(txn, entry.gi_table, entry_row));
        } else {
          PJVM_RETURN_NOT_OK(
              sys_->node(dest)->Insert(txn, entry.gi_table, std::move(entry_row))
                  .status());
        }
        ++writes;
      }
      return Status::OK();
    };
    PJVM_RETURN_NOT_OK(apply(delta.deletes, delta.delete_gids, true));
    PJVM_RETURN_NOT_OK(apply(delta.inserts, delta.insert_gids, false));
  }
  return writes;
}

Status GiRegistry::RebuildAll() {
  for (auto& [key, entry] : entries_) {
    PJVM_ASSIGN_OR_RETURN(const TableDef* def,
                          sys_->catalog().Get(entry.gi_table));
    TableDef copy = *def;
    PJVM_RETURN_NOT_OK(sys_->DropTable(entry.gi_table));
    PJVM_RETURN_NOT_OK(sys_->CreateTable(copy));
    PJVM_RETURN_NOT_OK(Backfill(entry));
  }
  return Status::OK();
}

size_t GiRegistry::StorageBytes() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    bytes += sys_->TableBytes(entry.gi_table);
  }
  return bytes;
}

std::vector<std::string> GiRegistry::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, entry] : entries_) names.push_back(entry.gi_table);
  return names;
}

Status GiRegistry::CheckConsistent() const {
  for (const auto& [key, entry] : entries_) {
    size_t base_rows = sys_->RowCount(entry.base_table);
    size_t entries_count = sys_->RowCount(entry.gi_table);
    if (base_rows != entries_count) {
      return Status::Internal("GI '" + entry.gi_table + "' has " +
                              std::to_string(entries_count) + " entries for " +
                              std::to_string(base_rows) + " base rows");
    }
    for (int i = 0; i < sys_->num_nodes(); ++i) {
      const TableFragment* frag = sys_->node(i)->fragment(entry.gi_table);
      Status st = Status::OK();
      int node = i;
      frag->ForEach([&](LocalRowId, const Row& row) {
        if (sys_->HomeNodeForKey(row[0]) != node) {
          st = Status::Internal("GI '" + entry.gi_table +
                                "' entry on wrong node");
          return false;
        }
        int owner = static_cast<int>(row[1].AsInt64());
        LocalRowId lrid = static_cast<LocalRowId>(row[2].AsInt64());
        const TableFragment* base_frag =
            sys_->node(owner)->fragment(entry.base_table);
        const Row* base_row =
            base_frag == nullptr ? nullptr : base_frag->Get(lrid);
        if (base_row == nullptr || !((*base_row)[entry.col] == row[0])) {
          st = Status::Internal("GI '" + entry.gi_table +
                                "' entry does not resolve: " + RowToString(row));
          return false;
        }
        return true;
      });
      PJVM_RETURN_NOT_OK(st);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- ViewManager

const char* MaintenanceTimingToString(MaintenanceTiming timing) {
  switch (timing) {
    case MaintenanceTiming::kImmediate:
      return "IMMEDIATE";
    case MaintenanceTiming::kDeferred:
      return "DEFERRED";
  }
  return "UNKNOWN";
}

std::vector<std::pair<int, int>> ViewManager::ProbeColumns(
    const BoundView& bound) {
  std::vector<std::pair<int, int>> out;
  for (const BoundEdge& edge : bound.bound_edges()) {
    out.emplace_back(edge.left_base, edge.left_col);
    out.emplace_back(edge.right_base, edge.right_col);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Status ViewManager::CreateStructures(const BoundView& bound,
                                     MaintenanceMethod method) {
  for (const auto& [base, col] : ProbeColumns(bound)) {
    const TableDef& def = bound.base_def(base);
    const std::string& col_name = def.schema.column(col).name;
    bool co_partitioned =
        def.partition.is_hash() && def.PartitionColumn() == col;
    // Any method may probe the raw base when it is co-partitioned (and the
    // naive method always does), which needs a local index on the attribute.
    if (method == MaintenanceMethod::kNaive || co_partitioned) {
      PJVM_RETURN_NOT_OK(
          sys_->CreateIndexOn(def.name, col_name, /*clustered=*/false));
    }
    if (co_partitioned) continue;  // "the AR/GI for that relation is unnecessary"
    switch (method) {
      case MaintenanceMethod::kNaive:
        break;
      case MaintenanceMethod::kAuxRelation:
        PJVM_RETURN_NOT_OK(ars_.Require(def.name, col, bound.needed_cols(base),
                                        bound.base_preds(base)));
        break;
      case MaintenanceMethod::kGlobalIndex:
        PJVM_RETURN_NOT_OK(gis_.Require(def.name, col));
        break;
    }
  }
  return Status::OK();
}

Status ViewManager::RegisterView(const JoinViewDef& def,
                                 MaintenanceMethod method,
                                 MaintenanceTiming timing) {
  if (views_.count(def.name) > 0) {
    return Status::AlreadyExists("view '" + def.name + "' already registered");
  }
  PJVM_ASSIGN_OR_RETURN(BoundView bound, BoundView::Bind(def, sys_->catalog()));
  PJVM_RETURN_NOT_OK(CreateStructures(bound, method));
  // Merged co-clustered layout: built before the view table so Create knows
  // to skip the partition index (the tree replaces it as the key-ordered
  // access path). A partition attribute that joins nothing yields an empty
  // cluster — the tree would interleave view rows with no probe-side
  // members, charging descents it can never save — so the separate layout
  // is kept silently in that case.
  std::unique_ptr<MergedViewStorage> store;
  if (MergedViewStorage::Eligible(sys_->config(), bound, method, timing)) {
    store = std::make_unique<MergedViewStorage>(sys_, bound);
    if (store->members().empty()) store.reset();
  }
  const bool merged = store != nullptr;
  PJVM_ASSIGN_OR_RETURN(MaterializedView mv,
                        MaterializedView::Create(sys_, bound, merged));

  ViewRegistration reg;
  reg.bound = std::move(bound);
  reg.method = method;
  reg.timing = timing;
  reg.view = std::make_unique<MaterializedView>(std::move(mv));
  switch (method) {
    case MaintenanceMethod::kNaive:
      reg.maintainer =
          std::make_unique<NaiveMaintainer>(sys_, reg.view.get(), this);
      break;
    case MaintenanceMethod::kAuxRelation:
      reg.maintainer =
          std::make_unique<AuxRelationMaintainer>(sys_, reg.view.get(), this);
      break;
    case MaintenanceMethod::kGlobalIndex:
      reg.maintainer =
          std::make_unique<GlobalIndexMaintainer>(sys_, reg.view.get(), this);
      break;
  }

  // Backfill the view from the current base contents.
  PJVM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        EvaluateViewFromScratch(sys_, reg.bound));
  for (Row& row : rows) {
    PJVM_RETURN_NOT_OK(sys_->Insert(def.name, std::move(row)));
  }
  if (merged) {
    // Loaded after the backfill so RebuildFromHeaps sees the full view; the
    // hook keeps the tree in step with every later ApplyOutputs, and the
    // storage overlay attributes the trees' bytes to the view's TableBytes
    // line (EXPLAIN ANALYZE storage reporting).
    PJVM_RETURN_NOT_OK(store->RebuildFromHeaps());
    MergedViewStorage* raw = store.get();
    reg.view->set_merged_hook(
        [raw](uint64_t txn, int node, const Row& row, bool is_delete) {
          return raw->ApplyViewEdit(txn, node, row, is_delete);
        });
    sys_->SetStorageOverlay(def.name, [raw] { return raw->TreeBytes(); });
    merged_.emplace(def.name, std::move(store));
  }
  auto [vit, inserted] = views_.emplace(def.name, std::move(reg));
  (void)inserted;
  // Escrow routing for eligible aggregate views: registered against the
  // *stored* registration's BoundView (stable for the view's lifetime) and
  // wired as the MaterializedView's per-contribution hook. The registry
  // itself rejects ineligible shapes (non-aggregate, round-robin); deferred
  // timing stays eager — its refresh runs whole recompute-and-diff
  // transactions, not per-group increments.
  if (escrow_ != nullptr && !merged &&
      vit->second.timing == MaintenanceTiming::kImmediate &&
      vit->second.bound.is_aggregate()) {
    ViewRegistration& stored = vit->second;
    escrow_->AddView(def.name, &stored.bound);
    EscrowRegistry* esc = escrow_.get();
    const std::string view_name = def.name;
    stored.view->set_escrow_hook(
        [esc, view_name](uint64_t txn, int node, const Row& row,
                         bool is_delete) {
          return esc->Apply(txn, node, view_name, row, is_delete);
        });
  }
  return Status::OK();
}

int ViewManager::BaseIndexOf(const ViewRegistration& reg,
                             const std::string& table) {
  for (int i = 0; i < reg.bound.num_bases(); ++i) {
    if (reg.bound.base_def(i).name == table) return i;
  }
  return -1;
}

Result<MaintenanceReport> ViewManager::ApplyDelta(DeltaBatch delta,
                                                  MaintenanceAnalysis* analysis) {
  if (!sys_->catalog().Has(delta.table)) {
    return Status::NotFound("no base table '" + delta.table + "'");
  }
  // Normalize updates into delete+insert pairs.
  for (auto& [old_row, new_row] : delta.updates) {
    delta.deletes.push_back(std::move(old_row));
    delta.inserts.push_back(std::move(new_row));
  }
  delta.updates.clear();

  // Heavy/light: hold the routing/fold mutex for the whole transaction, and
  // restore the deferral invariant first — a view buffering deltas of one
  // base must fold *before* a delta on any other base of it runs, or the
  // fold would join its buffered rows against neighbours that have moved.
  const bool hl = classifier_ != nullptr;
  std::unique_lock<std::mutex> hl_lock;
  if (hl) {
    hl_lock = std::unique_lock<std::mutex>(hl_mu_);
    for (auto& [name, reg] : views_) {
      int base_idx = BaseIndexOf(reg, delta.table);
      if (base_idx < 0) continue;
      const DeferredDeltaStore::Buffer* buf = deferred_.Find(name);
      if (buf != nullptr && buf->rows() > 0 && buf->base_idx != base_idx) {
        PJVM_RETURN_NOT_OK(FoldViewLocked(name, reg));
      }
    }
  }

  // Per-transaction metering: when an analysis is requested, a TxnMeter is
  // activated around each attempt, so every I/O charge this transaction
  // makes — on this thread or on executor workers running its tasks — lands
  // in the meter's own slots, unpolluted by concurrent maintenance
  // transactions (global Snapshot() diffs would attribute *everything the
  // system did meanwhile* to this transaction). The meter only mirrors
  // charges, so the global counters are identical whether or not anyone is
  // watching. messages/bytes remain global interconnect diffs over the
  // bracket; see the caveat in explain.h.
  const uint64_t msgs_before = sys_->network().TotalMessages();
  const uint64_t bytes_before = sys_->network().TotalBytes();
  std::unique_ptr<CostTracker::TxnMeter> meter;
  const uint64_t t0 = Tracer::NowNs();

  // Ambient multi-tenant attribution: when a driver tagged this thread
  // (workload/openloop.h), spans carry the tenant and the emitted metric
  // series gain tenant/view labels, so per-tenant SLO telemetry exists
  // without a tenant parameter on this API.
  const WorkloadTag* tag = WorkloadTagScope::Current();
  SpanGuard txn_span("maintain_txn", "view");
  txn_span.set_detail(delta.table + " +" + std::to_string(delta.inserts.size()) +
                      "/-" + std::to_string(delta.deletes.size()) +
                      (tag != nullptr ? " tenant=" + tag->tenant : ""));

  // Rows the current attempt routed into a view's deferred buffer. Staging
  // is per attempt and flushed only after Commit, so a wait-die-aborted
  // attempt neither loses nor duplicates buffered rows.
  struct StagedRow {
    const std::string* view;
    int base_idx;
    bool is_delete;
    Row row;
    GlobalRowId gid;
  };
  std::vector<StagedRow> staged;

  auto run = [&](uint64_t txn) -> Result<MaintenanceReport> {
    MaintenanceReport total;
    staged.clear();
    {
      // 1. Update the base relation, capturing each row's global row id.
      //    Deletes must be located before removal (GIs reference their rids).
      SpanGuard span("base_update", "view");
      delta.delete_gids.clear();
      for (const Row& row : delta.deletes) {
        PJVM_ASSIGN_OR_RETURN(GlobalRowId gid,
                              sys_->LocateExact(delta.table, row));
        delta.delete_gids.push_back(gid);
        PJVM_RETURN_NOT_OK(sys_->DeleteExact(delta.table, row, txn));
      }
      delta.insert_gids.clear();
      if (!delta.inserts.empty()) {
        // Batch insert: rows are grouped by home node and applied by each
        // node's worker in parallel, with gids in delta order.
        PJVM_ASSIGN_OR_RETURN(
            delta.insert_gids,
            sys_->InsertManyReturningIds(delta.table, delta.inserts, txn));
      }
    }
    {
      // 2. Update the auxiliary structures (shared across views, done once).
      SpanGuard span("structure_update", "view");
      PJVM_ASSIGN_OR_RETURN(size_t ar_writes, ars_.ApplyDelta(txn, delta));
      PJVM_ASSIGN_OR_RETURN(size_t gi_writes, gis_.ApplyDelta(txn, delta));
      total.structure_writes = ar_writes + gi_writes;
      // 2.5 Mirror the delta into each merged co-clustered tree. The rows
      // were just shipped to their key homes by the AR update, so the
      // mirror performs no sends — only in-range tree edits.
      for (auto& [name, store] : merged_) {
        PJVM_RETURN_NOT_OK(store->MirrorDelta(txn, delta));
      }
    }
    // 3. Maintain every dependent view.
    for (auto& [name, reg] : views_) {
      int base_idx = BaseIndexOf(reg, delta.table);
      if (base_idx < 0) continue;
      if (reg.timing == MaintenanceTiming::kDeferred) {
        reg.stale = true;  // Brought current later by RefreshView().
        continue;
      }
      // Heavy/light routing: heavy rows are staged for the view's deferred
      // buffer and only the light remainder is maintained eagerly in this
      // transaction. A delete whose content matches a buffered insert MUST
      // buffer regardless of its key's class — that insert's derivations
      // were never applied, so an eager delete would remove view rows that
      // don't exist (the pair annihilates at flush instead). Symmetrically,
      // an insert matching a buffered delete buffers and annihilates.
      const DeltaBatch* effective = &delta;
      DeltaBatch light;
      if (hl) {
        light.table = delta.table;
        std::map<std::string, int> avail_ins =
            deferred_.SignedCounts(name, /*deletes=*/false);
        std::map<std::string, int> avail_del =
            deferred_.SignedCounts(name, /*deletes=*/true);
        auto route = [&](bool is_delete, const Row& row,
                         GlobalRowId gid) -> bool {
          std::map<std::string, int>& opposite =
              is_delete ? avail_ins : avail_del;
          std::map<std::string, int>& same = is_delete ? avail_del : avail_ins;
          std::string rendered = RowToString(row);
          auto match = opposite.find(rendered);
          bool buffer = false;
          if (match != opposite.end() && match->second > 0) {
            --match->second;  // Annihilates when the attempt commits.
            buffer = true;
          } else if (classifier_->IsHeavy(reg.bound, base_idx, row)) {
            ++same[rendered];
            buffer = true;
          }
          if (buffer) {
            staged.push_back(StagedRow{&name, base_idx, is_delete, row, gid});
          }
          return buffer;
        };
        for (size_t i = 0; i < delta.deletes.size(); ++i) {
          if (!route(true, delta.deletes[i], delta.delete_gids[i])) {
            light.deletes.push_back(delta.deletes[i]);
            light.delete_gids.push_back(delta.delete_gids[i]);
          }
        }
        for (size_t i = 0; i < delta.inserts.size(); ++i) {
          if (!route(false, delta.inserts[i], delta.insert_gids[i])) {
            light.inserts.push_back(delta.inserts[i]);
            light.insert_gids.push_back(delta.insert_gids[i]);
          }
        }
        effective = &light;
      }
      const char* method_str = MaintenanceMethodToString(reg.method);
      std::vector<NodeCounters> view_before;
      if (analysis != nullptr) view_before = meter->Snapshot();
      const uint64_t view_t0 = Tracer::NowNs();
      SpanGuard view_span("maintain_view", "view", -1, nullptr, method_str);
      view_span.set_detail(name);
      PJVM_ASSIGN_OR_RETURN(MaintenanceReport report,
                            reg.maintainer->ApplyDelta(txn, base_idx,
                                                       *effective));
      uint64_t view_ns = Tracer::NowNs() - view_t0;
      MetricsRegistry::Global()
          .histogram(std::string("pjvm_maintain_view_ns{method=\"") +
                     method_str + "\"}")
          ->Record(view_ns);
      if (tag != nullptr) {
        // The updating tenant pays for maintaining every dependent view —
        // including other tenants' — so the labeled series carries both the
        // payer (tenant) and the maintained view.
        MetricsRegistry::Global()
            .histogram("pjvm_maintain_view_ns",
                       {{"method", method_str},
                        {"tenant", tag->tenant},
                        {"view", name}})
            ->Record(view_ns);
      }
      if (analysis != nullptr) {
        std::vector<NodeCounters> view_after = meter->Snapshot();
        for (size_t i = 0; i < view_after.size(); ++i) {
          view_after[i] = view_after[i] - view_before[i];
        }
        MaintenanceAnalysis::ViewPhase phase;
        phase.view = name;
        phase.method = reg.method;
        phase.wall_ms = static_cast<double>(view_ns) / 1e6;
        phase.rows_inserted = report.view_rows_inserted;
        phase.rows_deleted = report.view_rows_deleted;
        phase.probes = report.probes;
        phase.nodes_touched = CountTouchedNodes(view_after);
        analysis->views.push_back(std::move(phase));
      }
      total += report;
    }
    return total;
  };
  // Bounded retry: under wait-die a maintenance transaction can be chosen as
  // the deadlock-avoidance victim (or time out waiting) and surface an
  // Aborted status from some lock acquisition. The victim's locks are all
  // released by Abort; it backs off (exponentially, with jitter so repeat
  // offenders don't re-collide in lockstep) and re-runs the whole transaction
  // under a fresh Begin(). Only Aborted statuses retry — real errors surface
  // immediately — and the loop is bounded by maintain_max_attempts, after
  // which the Aborted status reaches the caller.
  static Counter* retries_counter =
      MetricsRegistry::Global().counter("pjvm_maintain_retries");
  const int max_attempts = std::max(1, sys_->config().maintain_max_attempts);
  const int base_us = sys_->config().maintain_retry_base_us;
  Result<MaintenanceReport> result =
      Status::Internal("maintenance: no attempt ran");
  if (analysis != nullptr) {
    analysis->attempts = 1;
    analysis->backoff_ns = 0;
    analysis->attempt_aborts.clear();
  }
  uint64_t lineage = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    uint64_t txn = sys_->Begin();
    if (lineage == 0) {
      lineage = txn;
    } else {
      // A restart keeps the lineage's original timestamp (the classic
      // wait-die/wound-wait anti-starvation rule): each retry runs under a
      // fresh txn id — reusing the id would confuse WAL replay — but is
      // never again the youngest transaction in every conflict it meets.
      sys_->locks().SetAge(txn, lineage);
    }
    // Per-view phases (and the meter's charges) from a killed attempt would
    // double-count; each attempt meters from zero.
    if (analysis != nullptr) {
      analysis->views.clear();
      analysis->attempts = attempt;
      meter = std::make_unique<CostTracker::TxnMeter>(sys_->num_nodes());
    }
    std::optional<CostTracker::MeterScope> meter_scope;
    if (meter != nullptr) meter_scope.emplace(meter.get());
    result = run(txn);
    if (result.ok()) {
      if (analysis != nullptr) {
        // Read before Commit: ReleaseAll clears the per-txn tally.
        const LockManager::TxnEscalationStats esc =
            sys_->locks().EscalationStatsOf(txn);
        analysis->escalations = esc.escalations;
        analysis->lock_entries_reclaimed = esc.entries_reclaimed;
        if (escrow_ != nullptr) {
          // Same timing rule: the commit epilogue clears the journal's tally.
          const EscrowRegistry::TxnStats est = escrow_->StatsOf(txn);
          analysis->escrow_ops = est.escrow_ops;
          analysis->vlock_upgrades = est.vlock_upgrades;
        }
      }
      // A commit failure (e.g. an injected crash mid-2PC) is not retryable:
      // the system needs Recover(), not another attempt.
      PJVM_RETURN_NOT_OK(sys_->Commit(txn));
      for (auto& [name, store] : merged_) store->OnCommit(txn);
      break;
    }
    meter_scope.reset();
    // Roll the merged trees back before the locks go: once ReleaseAll runs,
    // a successor can descend into the ranges this attempt edited.
    for (auto& [name, store] : merged_) store->OnAbort(txn);
    sys_->Abort(txn).Check();
    MetricsRegistry::Global().counter("pjvm_maintain_txns_aborted")->Increment();
    if (analysis != nullptr) {
      analysis->attempt_aborts.push_back(result.status().ToString());
    }
    if (!result.status().IsAborted() || attempt == max_attempts) return result;
    retries_counter->Increment();
    if (base_us > 0) {
      // Delay uniformly in [step, 2*step) where step = base * 2^(attempt-1).
      // The exponent is capped: blockers hold their locks for at most a
      // commit's worth of WAL forces, so sleeping far past that scale (an
      // uncapped 2^15 step is seconds) only throttles the retrier without
      // reducing conflicts.
      Rng jitter(txn * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(attempt));
      int64_t step = static_cast<int64_t>(base_us)
                     << std::min(attempt - 1, 6);
      int64_t delay = step + jitter.UniformInt(0, step - 1);
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
      if (analysis != nullptr) {
        analysis->backoff_ns += static_cast<uint64_t>(delay) * 1000;
      }
    }
  }

  if (hl && result.ok()) {
    // The transaction committed: flush its staged rows into the deferred
    // buffers (Append cancels opposite-sign churn), account the stream
    // against the planner statistics, and fold any buffer that crossed the
    // size trigger. An error here surfaces even though the delta committed:
    // the buffers are intact, so nothing is lost, and silent failure would
    // let them grow without bound.
    for (StagedRow& s : staged) {
      deferred_.Append(*s.view, s.base_idx, s.is_delete, std::move(s.row),
                       s.gid);
    }
    classifier_->RecordOps(delta.table,
                           delta.inserts.size() + delta.deletes.size());
    UpdateDeferredGauge();
    const int trigger = sys_->config().deferred_fold_rows;
    if (trigger > 0) {
      for (auto& [name, reg] : views_) {
        if (deferred_.rows(name) >= static_cast<size_t>(trigger)) {
          PJVM_RETURN_NOT_OK(FoldViewLocked(name, reg));
        }
      }
    }
  }

  const uint64_t txn_ns = Tracer::NowNs() - t0;
  MetricsRegistry::Global().counter("pjvm_maintain_txns")->Increment();
  MetricsRegistry::Global().histogram("pjvm_maintain_txn_ns")->Record(txn_ns);
  if (tag != nullptr) {
    MetricsRegistry::Global()
        .histogram("pjvm_maintain_txn_ns", {{"tenant", tag->tenant}})
        ->Record(txn_ns);
    // Windowed per-tenant maintenance latency: one rotating histogram per
    // tenant so warmup and steady state report separately (1s windows).
    MetricsRegistry::Global()
        .windowed("pjvm_slo_maintain_txn_ns", {{"tenant", tag->tenant}})
        ->Record(txn_ns, t0);
  }
  if (analysis != nullptr) {
    analysis->table = delta.table;
    analysis->base_inserts = delta.inserts.size();
    analysis->base_deletes = delta.deletes.size();
    analysis->weights = sys_->cost().weights();
    analysis->per_node = meter->Snapshot();
    analysis->total_workload = 0.0;
    analysis->response_time = 0.0;
    for (const NodeCounters& c : analysis->per_node) {
      double io = c.IO(analysis->weights);
      analysis->total_workload += io;
      analysis->response_time = std::max(analysis->response_time, io);
    }
    analysis->messages = sys_->network().TotalMessages() - msgs_before;
    analysis->bytes_sent = sys_->network().TotalBytes() - bytes_before;
    analysis->nodes_touched = CountTouchedNodes(analysis->per_node);
    analysis->wall_ms = static_cast<double>(txn_ns) / 1e6;
    analysis->report = *result;
  }
  return result;
}

Status ViewManager::UnregisterView(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' is not registered");
  }
  if (classifier_ != nullptr) {
    // Buffered deltas die with the view.
    std::lock_guard<std::mutex> lock(hl_mu_);
    deferred_.Clear(name);
    UpdateDeferredGauge();
  }
  const ViewRegistration& reg = it->second;
  for (const auto& [base, col] : ProbeColumns(reg.bound)) {
    const TableDef& def = reg.bound.base_def(base);
    bool co_partitioned =
        def.partition.is_hash() && def.PartitionColumn() == col;
    if (co_partitioned) continue;
    switch (reg.method) {
      case MaintenanceMethod::kNaive:
        break;
      case MaintenanceMethod::kAuxRelation:
        PJVM_RETURN_NOT_OK(ars_.Release(def.name, col));
        break;
      case MaintenanceMethod::kGlobalIndex:
        PJVM_RETURN_NOT_OK(gis_.Release(def.name, col));
        break;
    }
  }
  if (merged_.count(name) > 0) {
    sys_->ClearStorageOverlay(name);
    merged_.erase(name);
  }
  if (escrow_ != nullptr) escrow_->RemoveView(name);
  PJVM_RETURN_NOT_OK(sys_->DropTable(name));
  views_.erase(it);
  return Status::OK();
}

Status ViewManager::RefreshView(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' is not registered");
  }
  ViewRegistration& reg = it->second;
  if (reg.timing == MaintenanceTiming::kImmediate || !reg.stale) {
    return Status::OK();
  }
  PJVM_RETURN_NOT_OK(RecomputeAndDiff(name, reg));
  reg.stale = false;
  return Status::OK();
}

Status ViewManager::RecomputeAndDiff(const std::string& name,
                                     ViewRegistration& reg) {
  // Charge what the recomputation reads: a full scan of every base
  // relation's fragments (sort/hash join passes are subsumed by the
  // engine's memory budget at these scales; a refresh is scan-dominated).
  for (int i = 0; i < reg.bound.num_bases(); ++i) {
    const std::string& table = reg.bound.base_def(i).name;
    for (int n = 0; n < sys_->num_nodes(); ++n) {
      const TableFragment* frag = sys_->node(n)->fragment(table);
      if (frag != nullptr) sys_->cost().ChargeIOPages(n, frag->num_pages());
    }
  }
  PJVM_ASSIGN_OR_RETURN(std::vector<Row> expected,
                        EvaluateViewFromScratch(sys_, reg.bound));
  // Diff against stored contents (bag semantics) and apply the difference.
  std::map<std::string, std::pair<int, Row>> delta;  // rendered -> (count, row)
  for (Row& row : expected) {
    auto [entry, inserted] =
        delta.try_emplace(RowToString(row), 0, std::move(row));
    entry->second.first += 1;
    (void)inserted;
  }
  for (Row& row : sys_->ScanAll(name)) {
    auto [entry, inserted] =
        delta.try_emplace(RowToString(row), 0, std::move(row));
    entry->second.first -= 1;
    (void)inserted;
  }
  uint64_t txn = sys_->Begin();
  for (auto& [key, counted] : delta) {
    auto& [count, row] = counted;
    for (; count > 0; --count) {
      PJVM_RETURN_NOT_OK(sys_->Insert(name, row, txn));
    }
    for (; count < 0; ++count) {
      PJVM_RETURN_NOT_OK(sys_->DeleteExact(name, row, txn));
    }
  }
  return sys_->Commit(txn);
}

Status ViewManager::RefreshAllViews() {
  for (auto& [name, reg] : views_) {
    PJVM_RETURN_NOT_OK(RefreshView(name));
  }
  return Status::OK();
}

bool ViewManager::IsStale(const std::string& name) const {
  auto it = views_.find(name);
  return it != views_.end() && it->second.stale;
}

MaterializedView* ViewManager::view(const std::string& name) {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.view.get();
}

const ViewRegistration* ViewManager::registration(
    const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> ViewManager::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& [name, reg] : views_) names.push_back(name);
  return names;
}

void ViewManager::UpdateDeferredGauge() {
  MetricsRegistry::Global()
      .gauge("pjvm_deferred_delta_rows")
      ->Set(static_cast<double>(deferred_.total_rows()));
  MetricsRegistry::Global()
      .gauge("pjvm_deferred_rows_cancelled")
      ->Set(static_cast<double>(deferred_.cancelled()));
}

Status ViewManager::FoldViewLocked(const std::string& name,
                                   ViewRegistration& reg) {
  const DeferredDeltaStore::Buffer* buf = deferred_.Find(name);
  if (buf == nullptr || buf->rows() == 0) return Status::OK();
  static Counter* folds =
      MetricsRegistry::Global().counter("pjvm_deferred_folds");
  static Counter* retries_counter =
      MetricsRegistry::Global().counter("pjvm_maintain_retries");
  SpanGuard span("deferred_fold", "view", -1, nullptr,
                 MaintenanceMethodToString(reg.method));
  span.set_detail(name + " rows=" + std::to_string(buf->rows()));

  // The buffered rows' base and structure updates were applied eagerly when
  // they arrived, so the fold is pure view maintenance: the same
  // Maintainer::ApplyDelta contract as step 3 of a normal transaction.
  DeltaBatch batch;
  batch.table = reg.bound.base_def(buf->base_idx).name;
  batch.inserts = buf->inserts;
  batch.insert_gids = buf->insert_gids;
  batch.deletes = buf->deletes;
  batch.delete_gids = buf->delete_gids;
  const int updated_base = buf->base_idx;

  // Same bounded-retry shape as ApplyDelta: a fold can be the wait-die
  // victim of a concurrent reader/writer and must back off and re-run under
  // a fresh transaction id with its lineage's age.
  const int max_attempts = std::max(1, sys_->config().maintain_max_attempts);
  const int base_us = sys_->config().maintain_retry_base_us;
  uint64_t lineage = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    uint64_t txn = sys_->Begin();
    if (lineage == 0) {
      lineage = txn;
    } else {
      sys_->locks().SetAge(txn, lineage);
    }
    Status st = Status::OK();
    if (sys_->config().enable_locking) {
      // One fragment-granularity X lock per node on the view table up
      // front: the fold rewrites many rows of a few hot keys, so per-key
      // locks would flood the table and escalate anyway (PR 5); taking the
      // fragment lock first lets the coverage fast path answer every
      // per-row acquire below it.
      for (int n = 0; n < sys_->num_nodes() && st.ok(); ++n) {
        st = sys_->locks().Acquire(txn, LockId::Table(n, name),
                                   LockMode::kExclusive);
      }
    }
    if (st.ok()) {
      reg.maintainer->set_fold_mode(true);
      Result<MaintenanceReport> rep =
          reg.maintainer->ApplyDelta(txn, updated_base, batch);
      reg.maintainer->set_fold_mode(false);
      st = rep.status();
    }
    if (st.ok()) {
      // A commit failure (e.g. an injected crash mid-2PC) is not retryable;
      // the buffer stays intact for RecoverViews to reconcile.
      PJVM_RETURN_NOT_OK(sys_->Commit(txn));
      for (auto& [mname, store] : merged_) store->OnCommit(txn);
      // Only a durably committed fold empties the buffer: a wait-die victim
      // retries with every buffered row intact, and a success never
      // re-applies one.
      deferred_.Clear(name);
      UpdateDeferredGauge();
      folds->Increment();
      return Status::OK();
    }
    for (auto& [mname, store] : merged_) store->OnAbort(txn);
    sys_->Abort(txn).Check();
    MetricsRegistry::Global().counter("pjvm_maintain_txns_aborted")->Increment();
    if (!st.IsAborted() || attempt == max_attempts) return st;
    retries_counter->Increment();
    if (base_us > 0) {
      Rng jitter(txn * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(attempt));
      int64_t step = static_cast<int64_t>(base_us) << std::min(attempt - 1, 6);
      std::this_thread::sleep_for(
          std::chrono::microseconds(step + jitter.UniformInt(0, step - 1)));
    }
  }
  return Status::Internal("deferred fold: no attempt ran");
}

Status ViewManager::FoldView(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' is not registered");
  }
  std::lock_guard<std::mutex> lock(hl_mu_);
  return FoldViewLocked(name, it->second);
}

Status ViewManager::FoldAllDeferred() {
  std::lock_guard<std::mutex> lock(hl_mu_);
  for (auto& [name, reg] : views_) {
    PJVM_RETURN_NOT_OK(FoldViewLocked(name, reg));
  }
  return Status::OK();
}

size_t ViewManager::DeferredRows(const std::string& name) const {
  std::lock_guard<std::mutex> lock(hl_mu_);
  return deferred_.rows(name);
}

Status ViewManager::RecoverViews() {
  // The crash wiped the heaps with the journal's in-flight state still
  // resident (Crash() presumes every in-flight transaction aborted without
  // running its hook — there is no heap left to roll back). Committed
  // escrow deltas were replayed from the WALs by Recover(); drop the stale
  // journal so the next first touch re-seeds from the recovered rows.
  if (escrow_ != nullptr) escrow_->Reset();
  PJVM_RETURN_NOT_OK(gis_.RebuildAll());
  std::lock_guard<std::mutex> lock(hl_mu_);
  for (auto& [name, reg] : views_) {
    if (deferred_.rows(name) == 0) continue;
    // The buffered rows' base effects were recovered from the WAL, but
    // their gids reference pre-crash heap positions (rids are not stable
    // across a heap rebuild). Discard the buffer and reconcile the view
    // from the recovered bases instead.
    deferred_.Clear(name);
    PJVM_RETURN_NOT_OK(RecomputeAndDiff(name, reg));
  }
  UpdateDeferredGauge();
  // The merged trees live outside the WAL'd heaps (they are derived state,
  // like the GIs above); rebuild each from the recovered heaps.
  for (auto& [name, store] : merged_) {
    PJVM_RETURN_NOT_OK(store->RebuildFromHeaps());
  }
  return Status::OK();
}

Status ViewManager::CheckAllConsistent() {
  // Buffered heavy-key deltas are view work the system still owes; the
  // oracle compares settled state, so fold everything first.
  if (classifier_ != nullptr) PJVM_RETURN_NOT_OK(FoldAllDeferred());
  for (auto& [name, reg] : views_) {
    // A stale deferred view is *expected* to lag; only fresh contents are
    // held to the oracle.
    if (reg.stale) continue;
    PJVM_ASSIGN_OR_RETURN(std::vector<Row> expected,
                          EvaluateViewFromScratch(sys_, reg.bound));
    std::vector<Row> actual = reg.view->Contents();
    std::map<std::string, int> want, got;
    for (const Row& r : expected) want[RowToString(r)]++;
    for (const Row& r : actual) got[RowToString(r)]++;
    if (want != got) {
      std::string detail;
      for (const auto& [row, count] : want) {
        auto it = got.find(row);
        int have = it == got.end() ? 0 : it->second;
        if (have != count) {
          detail += " expected " + std::to_string(count) + "x" + row + " got " +
                    std::to_string(have) + ";";
        }
      }
      for (const auto& [row, count] : got) {
        if (want.count(row) == 0) {
          detail += " unexpected " + std::to_string(count) + "x" + row + ";";
        }
      }
      return Status::Internal("view '" + name +
                              "' diverged from from-scratch join:" + detail);
    }
  }
  // Invariant 10 (DESIGN.md): each merged tree holds exactly the rows its
  // members' heaps and the view's heap imply — merged ≡ separate contents.
  for (auto& [name, store] : merged_) {
    PJVM_RETURN_NOT_OK(store->CheckConsistent());
  }
  // Escrow invariant: at a quiescent point the journal must be empty —
  // every group's heap row then carries exactly the committed image the
  // X-lock (eager) path would have produced, which the oracle compare
  // above just proved byte-for-byte.
  if (escrow_ != nullptr) PJVM_RETURN_NOT_OK(escrow_->CheckConsistent());
  PJVM_RETURN_NOT_OK(ars_.CheckConsistent());
  PJVM_RETURN_NOT_OK(gis_.CheckConsistent());
  return sys_->CheckInvariants();
}

}  // namespace pjvm
