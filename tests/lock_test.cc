#include <gtest/gtest.h>

#include "engine/system.h"
#include "tests/view_test_util.h"
#include "txn/lock_manager.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// ------------------------------------------------------------ LockManager

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).ok());
  EXPECT_EQ(lm.TotalLocks(), 2u);
}

TEST(LockManagerTest, ExclusiveConflictsAbortImmediately) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
  // Different keys do not conflict.
  EXPECT_TRUE(lm.Acquire(2, LockId::Key(0, "T", Value{6}), LockMode::kExclusive)
                  .ok());
}

TEST(LockManagerTest, ReacquisitionAndUpgrade) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  // Reacquire and upgrade by the sole holder are fine.
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, id, LockMode::kExclusive));
  // After the upgrade, others are locked out.
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReaders) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  LockId a = LockId::Key(0, "T", Value{1});
  LockId b = LockId::Key(1, "T", Value{2});
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, b, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.HeldCount(1), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_TRUE(lm.Acquire(2, a, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, TableLockCoversKeys) {
  LockManager lm;
  LockId table = LockId::Table(0, "T");
  LockId key = LockId::Key(0, "T", Value{5});
  // Writer holds a key; a scanner's table-S lock conflicts.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, table, LockMode::kShared).IsAborted());
  lm.ReleaseAll(1);
  // Scanner holds the table; a writer's key-X conflicts.
  ASSERT_TRUE(lm.Acquire(2, table, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).IsAborted());
  // But a reading probe is compatible with the table-S lock.
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
}

TEST(LockManagerTest, DifferentTablesAndNodesIndependent) {
  LockManager lm;
  ASSERT_TRUE(
      lm.Acquire(1, LockId::Table(0, "T"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, LockId::Table(0, "U"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(3, LockId::Table(1, "T"), LockMode::kExclusive).ok());
}

TEST(LockManagerTest, IndexKeyLocksDistinguishColumns) {
  LockManager lm;
  LockId c0 = LockId::IndexKey(0, "T", 0, Value{5});
  LockId c1 = LockId::IndexKey(0, "T", 1, Value{5});
  ASSERT_TRUE(lm.Acquire(1, c0, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, c1, LockMode::kExclusive).ok());
}

// -------------------------------------------------- Engine-level locking

SystemConfig LockingConfig(int nodes = 4) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  cfg.enable_locking = true;
  return cfg;
}

TableDef SimpleTable() {
  TableDef def;
  def.name = "T";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  def.partition = PartitionSpec::Hash("k");
  def.indexes.push_back(IndexSpec{"k", false});
  return def;
}

TEST(EngineLockingTest, ConflictingWritersAbort) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  uint64_t t2 = sys.Begin();
  Row row = {Value{7}, Value{1}};
  ASSERT_TRUE(sys.Insert("T", row, t1).ok());
  // Same row content (and same index keys): t2 must be refused.
  EXPECT_TRUE(sys.Insert("T", row, t2).IsAborted());
  // A different key is fine.
  EXPECT_TRUE(sys.Insert("T", {Value{8}, Value{1}}, t2).ok());
  ASSERT_TRUE(sys.Commit(t1).ok());
  ASSERT_TRUE(sys.Commit(t2).ok());
  EXPECT_EQ(sys.RowCount("T"), 2u);
}

TEST(EngineLockingTest, ReaderBlocksWriterOnSameIndexKey) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  ASSERT_TRUE(sys.Insert("T", {Value{7}, Value{1}}).ok());
  uint64_t reader = sys.Begin();
  int home = sys.HomeNodeForKey(Value{7});
  ASSERT_TRUE(sys.node(home)->IndexProbe("T", 0, Value{7}, reader).ok());
  uint64_t writer = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{7}, Value{2}}, writer).IsAborted());
  // No-wait policy: the refused transaction rolls back (releasing any locks
  // it picked up before the conflict).
  ASSERT_TRUE(sys.Abort(writer).ok());
  // Readers of the same key coexist.
  uint64_t reader2 = sys.Begin();
  EXPECT_TRUE(sys.node(home)->IndexProbe("T", 0, Value{7}, reader2).ok());
  ASSERT_TRUE(sys.Commit(reader).ok());
  ASSERT_TRUE(sys.Commit(reader2).ok());
  // Now the writer (a fresh txn; the old one aborted its statement) may go.
  uint64_t writer2 = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{7}, Value{2}}, writer2).ok());
  ASSERT_TRUE(sys.Commit(writer2).ok());
}

TEST(EngineLockingTest, CommitAndAbortReleaseLocks) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t1).ok());
  EXPECT_GT(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(sys.Commit(t1).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  uint64_t t2 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{2}, Value{2}}, t2).ok());
  ASSERT_TRUE(sys.Abort(t2).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
}

TEST(EngineLockingTest, AutocommitOpsAreNotLocked) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
}

TEST(EngineLockingTest, MaintenanceTransactionsSerializeOnConflicts) {
  // Two ViewManager deltas run back-to-back (each commits) — with locking
  // enabled, each must acquire and fully release its footprint.
  SystemConfig cfg = LockingConfig();
  ParallelSystem sys(cfg);
  sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
  sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
  for (int64_t k = 0; k < 10; ++k) {
    sys.Insert("B", {Value{k}, Value{k % 5}, Value{k}}).Check();
  }
  ViewManager manager(&sys);
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  ASSERT_TRUE(manager.RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(manager.InsertRow("A", {Value{i}, Value{i % 5}, Value{i}}).ok())
        << i;
    EXPECT_EQ(sys.locks().TotalLocks(), 0u) << "locks leaked after txn " << i;
  }
  ASSERT_TRUE(manager.CheckAllConsistent().ok())
      << manager.CheckAllConsistent();
}

TEST(EngineLockingTest, CrashClearsLockTable) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t1).ok());
  sys.Crash();
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(sys.Recover().ok());
  uint64_t t2 = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t2).ok());
  ASSERT_TRUE(sys.Commit(t2).ok());
}

}  // namespace
}  // namespace pjvm
