// Ablation: skewed update streams and delta-aware maintenance planning.
//
// Real warehouse activity is Zipfian — a few hot keys receive most updates
// and have most matches. Two effects matter for maintenance:
//  1. the *fanout per delta tuple* varies wildly, so a plan ordered by
//     column averages can be badly wrong for a specific batch;
//  2. the hot keys concentrate work on few nodes.
//
// This bench builds a 3-way view whose two neighbour relations are skewed
// in opposite directions, drives hot-key and cold-key batches through the
// real maintainer (which plans per delta using exact index counts), and
// reports measured TW. A batch-oblivious plan would pay the hot side's
// fanout on one of the two batches; the delta-aware planner keeps both
// cheap. The equi-depth histogram's estimates are printed alongside the
// true counts for the same keys.

#include <cstdio>

#include "bench/bench_util.h"
#include "storage/histogram.h"
#include "view/planner.h"
#include "workload/zipf.h"

namespace pjvm {
namespace {

std::unique_ptr<ParallelSystem> BuildSkewed() {
  SystemConfig cfg;
  cfg.num_nodes = 8;
  cfg.rows_per_page = 8;
  auto sys = std::make_unique<ParallelSystem>(cfg);
  TableDef a;
  a.name = "A";
  a.schema = Schema({{"a", ValueType::kInt64}, {"c", ValueType::kInt64}});
  a.partition = PartitionSpec::Hash("a");
  TableDef b;
  b.name = "B";
  b.schema = Schema({{"b", ValueType::kInt64},
                     {"d", ValueType::kInt64},
                     {"f", ValueType::kInt64}});
  b.partition = PartitionSpec::Hash("b");
  TableDef c;
  c.name = "C";
  c.schema = Schema({{"g", ValueType::kInt64}, {"h", ValueType::kInt64}});
  c.partition = PartitionSpec::Hash("h");
  sys->CreateTable(a).Check();
  sys->CreateTable(b).Check();
  sys->CreateTable(c).Check();
  // Zipf-sized match lists, mirrored: A is hot on low keys, C on high keys.
  ZipfGenerator zipf_a(64, 1.0, 11), zipf_c(64, 1.0, 13);
  int64_t id = 0;
  for (int i = 0; i < 3000; ++i) {
    sys->Insert("A", {Value{id++}, Value{zipf_a.Next()}}).Check();
    sys->Insert("C", {Value{63 - zipf_c.Next()}, Value{id++}}).Check();
  }
  return sys;
}

JoinViewDef ChainView() {
  JoinViewDef def;
  def.name = "JV3";
  def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}, {{"B", "f"}, {"C", "g"}}};
  return def;
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  auto sys = BuildSkewed();
  ViewManager manager(sys.get());
  manager.RegisterView(ChainView(), MaintenanceMethod::kAuxRelation).Check();

  // Histogram vs exact counts on A.c (hot key 0 ... cold key 63).
  bench::PrintHeader("Equi-depth histogram vs exact match counts (A.c, Zipf)");
  std::vector<Value> values;
  for (const Row& row : sys->ScanAll("A")) values.push_back(row[1]);
  EquiDepthHistogram hist = EquiDepthHistogram::Build(values, 16);
  std::printf("%8s %12s %12s\n", "key", "exact", "histogram");
  bench::BenchReport report("ablation_skew");
  bench::JsonWriter estimates;
  estimates.BeginArray();
  for (int64_t key : {0, 1, 4, 16, 63}) {
    size_t exact = 0;
    for (const Row& row : sys->ScanAll("A")) {
      if (row[1] == Value{key}) ++exact;
    }
    double est = hist.EstimateEq(Value{key});
    std::printf("%8lld %12zu %12.1f\n", static_cast<long long>(key), exact,
                est);
    estimates.BeginObject()
        .Key("key").Int(key)
        .Key("exact").Uint(exact)
        .Key("histogram_estimate").Num(est)
        .EndObject();
  }
  estimates.EndArray();
  report.Add("histogram_vs_exact", estimates.str());

  // Mirrored hot/cold batches through the real (delta-aware) maintainer.
  // The view-output size is fixed by the key fanouts; what the plan controls
  // is the *intermediate* work — probing the cold side first keeps the
  // partial count small. We report the join-compute I/O (searches+fetches),
  // which is where a wrong order would pay the hot side's fanout early.
  bench::PrintHeader(
      "16-tuple deltas on B: join-compute I/O under delta-aware plans");
  bench::JsonWriter batches;
  batches.BeginArray();
  auto run = [&](int64_t a_key, int64_t c_key, const char* label) {
    std::vector<Row> rows;
    static int64_t next = 100000;
    for (int i = 0; i < 16; ++i) {
      rows.push_back({Value{next++}, Value{a_key}, Value{c_key}});
    }
    sys->cost().Reset();
    manager.ApplyDelta(DeltaBatch::Inserts("B", rows)).status().Check();
    double compute = 0.0;
    for (int n = 0; n < sys->num_nodes(); ++n) {
      compute += sys->cost().node(n).ComputeIO(sys->cost().weights());
    }
    std::printf("%-46s %9.0f compute I/Os  (%.0f total)\n", label, compute,
                sys->cost().TotalWorkload());
    batches.BeginObject()
        .Key("label").Str(label)
        .Key("a_key").Int(a_key)
        .Key("c_key").Int(c_key)
        .Key("compute_io").Num(compute)
        .Key("total_io").Num(sys->cost().TotalWorkload())
        .EndObject();
  };
  run(0, 0, "A hot (654 matches), C cold (~11): C joined 1st");
  run(63, 63, "A cold (~14), C hot (654): A joined 1st");
  run(32, 32, "both moderate");
  batches.EndArray();
  report.Add("delta_batches", batches.str());
  report.Write();
  manager.CheckAllConsistent().Check();
  std::printf(
      "\nThe two mirrored batches cost within ~2x of each other; a fixed "
      "join\norder would make one of them probe ~650 partials per delta "
      "tuple.\nViews verified against the from-scratch join after all "
      "batches.\n");
  return 0;
}
