#ifndef PJVM_WORKLOAD_TPCR_H_
#define PJVM_WORKLOAD_TPCR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/system.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief Shape of the paper's Section 3.3 data set (Table 1), scaled.
///
/// customer (custkey, acctbal, name)      partitioned on custkey
/// orders   (orderkey, custkey, totalprice) partitioned on orderkey
/// lineitem (orderkey, partkey, suppkey, extendedprice, discount)
///                                        partitioned on partkey
///
/// Every custkey in [0, customers + extra_customer_keys) has exactly
/// `orders_per_customer` orders; every order has `lineitems_per_order`
/// lineitems. The extra keys exist so that freshly inserted customers (the
/// paper's 128-tuple delta) match pre-existing orders, exactly as in the
/// paper's experiment.
struct TpcrConfig {
  int64_t customers = 3000;
  int64_t extra_customer_keys = 256;
  int orders_per_customer = 1;
  int lineitems_per_order = 4;
  uint64_t seed = 42;
};

/// \brief Generated rows (deterministic for a given config).
struct TpcrData {
  TpcrConfig config;
  std::vector<Row> customer;
  std::vector<Row> orders;
  std::vector<Row> lineitem;
};

Schema CustomerSchema();
Schema OrdersSchema();
Schema LineitemSchema();

/// Table definitions with the paper's partitioning attributes, plus
/// non-clustered indexes on the join attributes (the paper's step (1):
/// "we created a non-clustered index on the custkey attribute of orders and
/// another on the orderkey attribute of lineitem").
TableDef CustomerTableDef();
TableDef OrdersTableDef();
TableDef LineitemTableDef();

TpcrData GenerateTpcr(const TpcrConfig& config);

/// Creates the three tables in `sys` and loads `data`.
Status LoadTpcr(ParallelSystem* sys, const TpcrData& data);

/// A fresh customer row whose custkey is `customers + i` — it matches the
/// pre-generated orders for that key (the paper's delta tuples "each have
/// one matching tuple in the orders relation").
Row MakeDeltaCustomer(const TpcrConfig& config, int64_t i);

/// JV1: customer x orders on custkey (Section 3.3).
JoinViewDef MakeJv1();
/// JV2: customer x orders x lineitem on custkey and orderkey (Section 3.3).
JoinViewDef MakeJv2();

/// \brief One row of the Table 1 report.
struct TableSizeRow {
  std::string name;
  size_t rows = 0;
  size_t bytes = 0;
};

/// Sizes of the three loaded tables, in Table 1's format.
std::vector<TableSizeRow> TableSizes(const ParallelSystem& sys);

}  // namespace pjvm

#endif  // PJVM_WORKLOAD_TPCR_H_
