// Ablation: the AR storage-minimization techniques of Section 2.1.2.
//
// Uses JV2's lineitem auxiliary relation (lineitem is the wide relation:
// 5 columns, of which JV2 needs only 3). Compares the extra storage of
// (a) full-copy auxiliary relations, (b) projection-minimized ARs, (c)
// selection+projection-minimized ARs, and (d) global indexes. Also
// demonstrates AR sharing: two views on the same join attribute use one AR.
//
// The final section sweeps the merged co-clustered layout
// (SystemConfig::merged_ar_storage, view/merged_storage.h) against the
// separate layout on the same customer-insert delta stream, reporting
// per-delta maintenance I/O — searches, fetches, writes, sends, and tree
// descents — and verifying the two layouts' view contents are
// fingerprint-identical.

#include <cstdio>

#include "bench/bench_util.h"

namespace pjvm {
namespace {

struct Setup {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
};

Setup Build() {
  Setup s;
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 16;
  s.sys = std::make_unique<ParallelSystem>(cfg);
  TpcrConfig tpcr;
  tpcr.customers = 2000;
  LoadTpcr(s.sys.get(), GenerateTpcr(tpcr)).Check();
  s.manager = std::make_unique<ViewManager>(s.sys.get());
  return s;
}

size_t LineitemArBytes(const JoinViewDef& def) {
  Setup s = Build();
  s.manager->RegisterView(def, MaintenanceMethod::kAuxRelation).Check();
  for (const std::string& name : s.manager->ars().TableNames()) {
    if (name.find("lineitem") != std::string::npos) {
      return s.sys->TableBytes(name);
    }
  }
  return 0;
}

size_t LineitemGiBytes(const JoinViewDef& def) {
  Setup s = Build();
  s.manager->RegisterView(def, MaintenanceMethod::kGlobalIndex).Check();
  for (const std::string& name : s.manager->gis().TableNames()) {
    if (name.find("lineitem") != std::string::npos) {
      return s.sys->TableBytes(name);
    }
  }
  return 0;
}

// One layout's run over the merged-vs-separate delta sweep.
struct LayoutRun {
  NodeCounters totals;          // Summed over nodes, deltas only.
  uint64_t range_ops = 0;       // Merged range descents (0 for separate).
  size_t merged_bytes = 0;      // Merged trees' footprint (0 for separate).
  size_t jv1_bytes = 0;         // JV1's TableBytes (incl. overlay).
  std::map<std::string, int> jv1;  // View fingerprints after the stream.
  std::map<std::string, int> jv2;
};

std::map<std::string, int> Fingerprint(ViewManager* manager,
                                       const std::string& name) {
  std::map<std::string, int> bag;
  for (const Row& row : manager->view(name)->Contents()) {
    bag[RowToString(row)]++;
  }
  return bag;
}

LayoutRun RunDeltaSweep(bool merged, int deltas) {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 16;
  cfg.merged_ar_storage = merged;
  auto sys = std::make_unique<ParallelSystem>(cfg);
  TpcrConfig tpcr;
  tpcr.customers = 1000;
  tpcr.extra_customer_keys = 256;
  LoadTpcr(sys.get(), GenerateTpcr(tpcr)).Check();
  ViewManager manager(sys.get());
  manager.RegisterView(MakeJv1(), MaintenanceMethod::kAuxRelation).Check();
  manager.RegisterView(MakeJv2(), MaintenanceMethod::kAuxRelation).Check();

  MergedViewStorage* store = manager.merged_storage("JV1");
  uint64_t range_ops_before = store != nullptr ? store->range_ops() : 0;
  sys->cost().Reset();
  for (int i = 0; i < deltas; ++i) {
    manager
        .ApplyDelta(
            DeltaBatch::Inserts("customer", {MakeDeltaCustomer(tpcr, i)}))
        .status()
        .Check();
  }
  LayoutRun run;
  for (const NodeCounters& c : sys->cost().Snapshot()) run.totals += c;
  run.range_ops = store != nullptr ? store->range_ops() - range_ops_before : 0;
  run.merged_bytes = store != nullptr ? store->TreeBytes() : 0;
  run.jv1_bytes = sys->TableBytes("JV1");
  run.jv1 = Fingerprint(&manager, "JV1");
  run.jv2 = Fingerprint(&manager, "JV2");
  manager.CheckAllConsistent().Check();
  return run;
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  // Full copy: SELECT * keeps every lineitem column in the AR.
  JoinViewDef full = MakeJv2();
  full.name = "JV2full";
  full.projection.clear();
  full.partition_on.reset();
  // Projection-minimized: the paper's JV2 needs orderkey, discount,
  // extendedprice of lineitem (3 of 5 columns).
  JoinViewDef projected = MakeJv2();
  // Selection+projection-minimized: only discounted items.
  JoinViewDef filtered = MakeJv2();
  filtered.name = "JV2f";
  filtered.selections = {{{"l", "discount"}, PredOp::kGt, Value{0.05}}};

  Setup base = Build();
  size_t lineitem_bytes = base.sys->TableBytes("lineitem");
  size_t full_bytes = LineitemArBytes(full);
  size_t proj_bytes = LineitemArBytes(projected);
  size_t filt_bytes = LineitemArBytes(filtered);
  size_t gi_bytes = LineitemGiBytes(projected);

  bench::PrintHeader(
      "AR storage minimization: the lineitem structure for JV2 (Sec. 2.1.2)");
  std::printf("%-38s %12zu bytes\n", "lineitem base relation", lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "full-copy AR (select *)", full_bytes,
              double(full_bytes) / lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "projected AR (paper's JV2 columns)", proj_bytes,
              double(proj_bytes) / lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "sigma+pi AR (discount > 0.05)", filt_bytes,
              double(filt_bytes) / lineitem_bytes);
  std::printf("%-38s %12zu bytes (%.2fx of base)\n",
              "global index (same attribute)", gi_bytes,
              double(gi_bytes) / lineitem_bytes);

  bench::BenchReport report("ablation_ar_storage");
  {
    bench::JsonWriter storage;
    storage.BeginObject()
        .Key("lineitem_base_bytes").Uint(lineitem_bytes)
        .Key("full_copy_ar_bytes").Uint(full_bytes)
        .Key("projected_ar_bytes").Uint(proj_bytes)
        .Key("filtered_ar_bytes").Uint(filt_bytes)
        .Key("global_index_bytes").Uint(gi_bytes)
        .EndObject();
    report.Add("lineitem_structure", storage.str());
  }

  // Sharing: JV2 plus a second view joining lineitem on the same attribute.
  {
    Setup s = Build();
    s.manager->RegisterView(MakeJv2(), MaintenanceMethod::kAuxRelation).Check();
    size_t one_view = s.manager->ars().StorageBytes();
    size_t ar_count_before = s.manager->ars().TableNames().size();
    JoinViewDef second = MakeJv2();
    second.name = "JV2b";
    second.projection = {{"c", "custkey"}, {"l", "extendedprice"}};
    second.partition_on = ColumnRef{"c", "custkey"};
    s.manager->RegisterView(second, MaintenanceMethod::kAuxRelation).Check();
    size_t two_views = s.manager->ars().StorageBytes();
    bench::PrintHeader("AR sharing across views (Section 2.1.2)");
    std::printf("ARs after JV2 only:    %8zu bytes across %zu AR table(s)\n",
                one_view, ar_count_before);
    std::printf("ARs after JV2 + JV2b:  %8zu bytes across %zu AR table(s)\n",
                two_views, s.manager->ars().TableNames().size());
    std::printf("growth factor:         %.2fx (unshared would be ~2x)\n",
                double(two_views) / one_view);
    bench::JsonWriter sharing;
    sharing.BeginObject()
        .Key("one_view_ar_bytes").Uint(one_view)
        .Key("two_view_ar_bytes").Uint(two_views)
        .Key("ar_tables").Uint(s.manager->ars().TableNames().size())
        .Key("growth_factor").Num(double(two_views) / one_view)
        .EndObject();
    report.Add("ar_sharing", sharing.str());
  }

  // Merged co-clustered layout vs separate structures, same delta stream.
  {
    const int kDeltas = 40;
    LayoutRun separate = RunDeltaSweep(/*merged=*/false, kDeltas);
    LayoutRun merged = RunDeltaSweep(/*merged=*/true, kDeltas);
    bool identical = separate.jv1 == merged.jv1 && separate.jv2 == merged.jv2;
    double descent_drop =
        separate.totals.descents == 0
            ? 0.0
            : 1.0 - double(merged.totals.descents) /
                        double(separate.totals.descents);
    bench::PrintHeader(
        "Merged co-clustered storage vs separate structures (per-delta I/O)");
    std::printf("%-22s %12s %12s\n", "per-delta average", "separate", "merged");
    auto per = [&](uint64_t v) { return double(v) / kDeltas; };
    std::printf("%-22s %12.2f %12.2f\n", "searches",
                per(separate.totals.searches), per(merged.totals.searches));
    std::printf("%-22s %12.2f %12.2f\n", "fetches",
                per(separate.totals.fetches), per(merged.totals.fetches));
    std::printf("%-22s %12.2f %12.2f\n", "writes",
                per(separate.totals.inserts), per(merged.totals.inserts));
    std::printf("%-22s %12.2f %12.2f\n", "sends", per(separate.totals.sends),
                per(merged.totals.sends));
    std::printf("%-22s %12.2f %12.2f  (-%.0f%%)\n", "tree descents",
                per(separate.totals.descents), per(merged.totals.descents),
                descent_drop * 100);
    std::printf("%-22s %12s %12.2f\n", "merged range ops", "-",
                per(merged.range_ops));
    std::printf("merged trees: %zu bytes (JV1 TableBytes %zu -> %zu)\n",
                merged.merged_bytes, separate.jv1_bytes, merged.jv1_bytes);
    std::printf("view fingerprints identical: %s\n",
                identical ? "yes" : "NO -- BUG");
    bench::JsonWriter sweep;
    sweep.BeginObject()
        .Key("deltas").Int(kDeltas)
        .Key("separate").BeginObject()
        .Key("searches").Uint(separate.totals.searches)
        .Key("fetches").Uint(separate.totals.fetches)
        .Key("writes").Uint(separate.totals.inserts)
        .Key("sends").Uint(separate.totals.sends)
        .Key("descents").Uint(separate.totals.descents)
        .EndObject()
        .Key("merged").BeginObject()
        .Key("searches").Uint(merged.totals.searches)
        .Key("fetches").Uint(merged.totals.fetches)
        .Key("writes").Uint(merged.totals.inserts)
        .Key("sends").Uint(merged.totals.sends)
        .Key("descents").Uint(merged.totals.descents)
        .Key("range_ops").Uint(merged.range_ops)
        .Key("tree_bytes").Uint(merged.merged_bytes)
        .EndObject()
        .Key("descent_reduction").Num(descent_drop)
        .Key("fingerprints_identical").Bool(identical)
        .EndObject();
    report.Add("merged_layout_sweep", sweep.str());
    if (!identical) {
      std::printf("ERROR: merged layout diverged from separate layout\n");
      return 1;
    }
  }
  report.Write();
  return 0;
}
