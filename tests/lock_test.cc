#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "engine/system.h"
#include "obs/metrics_registry.h"
#include "tests/view_test_util.h"
#include "txn/lock_manager.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// ------------------------------------------------------------ LockManager

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).ok());
  EXPECT_EQ(lm.TotalLocks(), 2u);
}

TEST(LockManagerTest, ExclusiveConflictsAbortImmediately) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
  // Different keys do not conflict.
  EXPECT_TRUE(lm.Acquire(2, LockId::Key(0, "T", Value{6}), LockMode::kExclusive)
                  .ok());
}

TEST(LockManagerTest, ReacquisitionAndUpgrade) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  // Reacquire and upgrade by the sole holder are fine.
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, id, LockMode::kExclusive));
  // After the upgrade, others are locked out.
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReaders) {
  LockManager lm;
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, id, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  LockId a = LockId::Key(0, "T", Value{1});
  LockId b = LockId::Key(1, "T", Value{2});
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, b, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.HeldCount(1), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_TRUE(lm.Acquire(2, a, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, TableLockCoversKeys) {
  LockManager lm;
  LockId table = LockId::Table(0, "T");
  LockId key = LockId::Key(0, "T", Value{5});
  // Writer holds a key; a scanner's table-S lock conflicts.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, table, LockMode::kShared).IsAborted());
  lm.ReleaseAll(1);
  // Scanner holds the table; a writer's key-X conflicts.
  ASSERT_TRUE(lm.Acquire(2, table, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).IsAborted());
  // But a reading probe is compatible with the table-S lock.
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
}

TEST(LockManagerTest, DifferentTablesAndNodesIndependent) {
  LockManager lm;
  ASSERT_TRUE(
      lm.Acquire(1, LockId::Table(0, "T"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, LockId::Table(0, "U"), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(3, LockId::Table(1, "T"), LockMode::kExclusive).ok());
}

TEST(LockManagerTest, IndexKeyLocksDistinguishColumns) {
  LockManager lm;
  LockId c0 = LockId::IndexKey(0, "T", 0, Value{5});
  LockId c1 = LockId::IndexKey(0, "T", 1, Value{5});
  ASSERT_TRUE(lm.Acquire(1, c0, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, c1, LockMode::kExclusive).ok());
}

// -------------------------------------------------- Engine-level locking

SystemConfig LockingConfig(int nodes = 4) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  cfg.enable_locking = true;
  return cfg;
}

TableDef SimpleTable() {
  TableDef def;
  def.name = "T";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  def.partition = PartitionSpec::Hash("k");
  def.indexes.push_back(IndexSpec{"k", false});
  return def;
}

TEST(EngineLockingTest, ConflictingWritersAbort) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  uint64_t t2 = sys.Begin();
  Row row = {Value{7}, Value{1}};
  ASSERT_TRUE(sys.Insert("T", row, t1).ok());
  // Same row content (and same index keys): t2 must be refused.
  EXPECT_TRUE(sys.Insert("T", row, t2).IsAborted());
  // A different key is fine.
  EXPECT_TRUE(sys.Insert("T", {Value{8}, Value{1}}, t2).ok());
  ASSERT_TRUE(sys.Commit(t1).ok());
  ASSERT_TRUE(sys.Commit(t2).ok());
  EXPECT_EQ(sys.RowCount("T"), 2u);
}

TEST(EngineLockingTest, ReaderBlocksWriterOnSameIndexKey) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  ASSERT_TRUE(sys.Insert("T", {Value{7}, Value{1}}).ok());
  uint64_t reader = sys.Begin();
  int home = sys.HomeNodeForKey(Value{7});
  ASSERT_TRUE(sys.node(home)->IndexProbe("T", 0, Value{7}, reader).ok());
  uint64_t writer = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{7}, Value{2}}, writer).IsAborted());
  // No-wait policy: the refused transaction rolls back (releasing any locks
  // it picked up before the conflict).
  ASSERT_TRUE(sys.Abort(writer).ok());
  // Readers of the same key coexist.
  uint64_t reader2 = sys.Begin();
  EXPECT_TRUE(sys.node(home)->IndexProbe("T", 0, Value{7}, reader2).ok());
  ASSERT_TRUE(sys.Commit(reader).ok());
  ASSERT_TRUE(sys.Commit(reader2).ok());
  // Now the writer (a fresh txn; the old one aborted its statement) may go.
  uint64_t writer2 = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{7}, Value{2}}, writer2).ok());
  ASSERT_TRUE(sys.Commit(writer2).ok());
}

TEST(EngineLockingTest, CommitAndAbortReleaseLocks) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t1).ok());
  EXPECT_GT(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(sys.Commit(t1).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  uint64_t t2 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{2}, Value{2}}, t2).ok());
  ASSERT_TRUE(sys.Abort(t2).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
}

TEST(EngineLockingTest, AutocommitOpsAreNotLocked) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
}

TEST(EngineLockingTest, MaintenanceTransactionsSerializeOnConflicts) {
  // Two ViewManager deltas run back-to-back (each commits) — with locking
  // enabled, each must acquire and fully release its footprint.
  SystemConfig cfg = LockingConfig();
  ParallelSystem sys(cfg);
  sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
  sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
  for (int64_t k = 0; k < 10; ++k) {
    sys.Insert("B", {Value{k}, Value{k % 5}, Value{k}}).Check();
  }
  ViewManager manager(&sys);
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  ASSERT_TRUE(manager.RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(manager.InsertRow("A", {Value{i}, Value{i % 5}, Value{i}}).ok())
        << i;
    EXPECT_EQ(sys.locks().TotalLocks(), 0u) << "locks leaked after txn " << i;
  }
  ASSERT_TRUE(manager.CheckAllConsistent().ok())
      << manager.CheckAllConsistent();
}

// ------------------------------------------------------------- Wait-die

TEST(WaitDieTest, YoungerRequesterDiesImmediately) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(5000);
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).ok());
  // txn 2 is younger than the holder: killed without parking (the 5 s
  // timeout would hang the test if it waited).
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, id, LockMode::kShared).IsAborted());
}

TEST(WaitDieTest, OlderRequesterWaitsUntilRelease) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(10000);
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread older([&] {
    Status st = lm.Acquire(1, id, LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st;
    acquired.store(true);
  });
  // The older transaction parks rather than dying...
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  // ...and is granted the lock once the younger holder releases.
  lm.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_TRUE(lm.Holds(1, id, LockMode::kExclusive));
}

TEST(WaitDieTest, WaitTimesOutWhenHolderNeverReleases) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(30);
  LockId id = LockId::Key(0, "T", Value{5});
  ASSERT_TRUE(lm.Acquire(2, id, LockMode::kExclusive).ok());
  // Older waiter, but the holder never releases: bounded by the timeout.
  EXPECT_TRUE(lm.Acquire(1, id, LockMode::kExclusive).IsAborted());
  EXPECT_FALSE(lm.Holds(1, id, LockMode::kExclusive));
}

TEST(WaitDieTest, OppositeOrderAcquisitionTerminates) {
  // txn 1 (older) holds a, txn 2 (younger) holds b; each then requests the
  // other's lock. Plain blocking 2PL deadlocks here; wait-die must kill the
  // younger and let the older proceed, in bounded time.
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(10000);
  LockId a = LockId::Key(0, "T", Value{1});
  LockId b = LockId::Key(0, "T", Value{2});
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, b, LockMode::kExclusive).ok());
  Status st1;
  std::thread older([&] { st1 = lm.Acquire(1, b, LockMode::kExclusive); });
  // Give the older transaction a moment to park on b.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The younger requests a, held by an older transaction: it dies.
  Status st2 = lm.Acquire(2, a, LockMode::kExclusive);
  EXPECT_TRUE(st2.IsAborted()) << st2;
  // The victim rolls back, which wakes and grants the older waiter.
  lm.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(st1.ok()) << st1;
  EXPECT_TRUE(lm.Holds(1, a, LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, b, LockMode::kExclusive));
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.TotalLocks(), 0u);
}

TEST(WaitDieTest, MultiThreadStressTerminatesAndReleases) {
  LockManager lm;
  lm.set_policy(LockPolicy::kWaitDie);
  lm.set_wait_timeout_ms(1000);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 100;
  constexpr int64_t kKeys = 4;  // small key space: plenty of conflicts
  std::atomic<uint64_t> next_txn{1};
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5eed + static_cast<uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        uint64_t txn = next_txn.fetch_add(1);
        bool ok = true;
        for (int j = 0; j < 2 && ok; ++j) {
          LockId id = LockId::Key(0, "T", Value{rng.UniformInt(0, kKeys - 1)});
          LockMode mode =
              rng.Bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
          ok = lm.Acquire(txn, id, mode).ok();
        }
        if (ok) commits.fetch_add(1);
        lm.ReleaseAll(txn);  // commit and abort both release everything
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm.TotalLocks(), 0u);
  EXPECT_GT(commits.load(), 0u);
}

// ------------------------------------------------- Maintenance retry loop

SystemConfig WaitDieConfig(int max_attempts, int base_us) {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.rows_per_page = 4;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 200;
  cfg.maintain_max_attempts = max_attempts;
  cfg.maintain_retry_base_us = base_us;
  return cfg;
}

void RegisterSimpleView(ParallelSystem& sys, ViewManager& manager) {
  sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
  sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
  for (int64_t k = 0; k < 10; ++k) {
    sys.Insert("B", {Value{k}, Value{k % 5}, Value{k}}).Check();
  }
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  ASSERT_TRUE(manager.RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
}

TEST(MaintenanceRetryTest, RetriesUntilConflictClears) {
  ParallelSystem sys(WaitDieConfig(/*max_attempts=*/8, /*base_us=*/1000));
  ViewManager manager(&sys);
  RegisterSimpleView(sys, manager);
  // A raw transaction holds X locks on the row the maintenance transaction
  // needs. The maintenance txn is younger, so every attempt dies instantly;
  // the retry loop backs off until the blocker goes away.
  Row contested = {Value{100}, Value{1}, Value{1}};
  uint64_t blocker = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", contested, blocker).ok());
  Counter* retries = MetricsRegistry::Global().counter("pjvm_maintain_retries");
  const uint64_t retries_before = retries->value();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Abort (not commit): a raw insert bypasses view maintenance, so letting
    // it commit would legitimately diverge the view from its bases.
    sys.Abort(blocker).Check();
  });
  Result<MaintenanceReport> result = manager.InsertRow("A", contested);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(retries->value() - retries_before, 1u);
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(manager.CheckAllConsistent().ok());
}

TEST(MaintenanceRetryTest, ExhaustedRetriesSurfaceAborted) {
  ParallelSystem sys(WaitDieConfig(/*max_attempts=*/2, /*base_us=*/200));
  ViewManager manager(&sys);
  RegisterSimpleView(sys, manager);
  Row contested = {Value{100}, Value{1}, Value{1}};
  uint64_t blocker = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", contested, blocker).ok());
  // The blocker never releases: both attempts die and the Aborted status
  // reaches the client.
  Result<MaintenanceReport> result = manager.InsertRow("A", contested);
  EXPECT_TRUE(result.status().IsAborted()) << result.status();
  ASSERT_TRUE(sys.Abort(blocker).ok());
  // With the conflict gone the same delta goes through.
  ASSERT_TRUE(manager.InsertRow("A", contested).ok());
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(manager.CheckAllConsistent().ok());
}

TEST(EngineLockingTest, CrashClearsLockTable) {
  ParallelSystem sys(LockingConfig());
  ASSERT_TRUE(sys.CreateTable(SimpleTable()).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t1).ok());
  sys.Crash();
  EXPECT_EQ(sys.locks().TotalLocks(), 0u);
  ASSERT_TRUE(sys.Recover().ok());
  uint64_t t2 = sys.Begin();
  EXPECT_TRUE(sys.Insert("T", {Value{1}, Value{1}}, t2).ok());
  ASSERT_TRUE(sys.Commit(t2).ok());
}

}  // namespace
}  // namespace pjvm
