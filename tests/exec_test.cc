#include <gtest/gtest.h>

#include <algorithm>

#include "engine/system.h"
#include "exec/external_sorter.h"
#include "exec/join_chooser.h"
#include "exec/local_join.h"

namespace pjvm {
namespace {

// ------------------------------------------------------------ ExternalSorter

TEST(ExternalSorterTest, SortsRowsByKey) {
  ExternalSorter sorter(/*memory_pages=*/4, /*rows_per_page=*/4);
  std::vector<Row> rows = {{Value{3}}, {Value{1}}, {Value{2}}};
  sorter.Sort(&rows, 0);
  EXPECT_EQ(rows[0][0], Value{1});
  EXPECT_EQ(rows[1][0], Value{2});
  EXPECT_EQ(rows[2][0], Value{3});
}

TEST(ExternalSorterTest, StableForEqualKeys) {
  ExternalSorter sorter(4, 4);
  std::vector<Row> rows = {{Value{1}, Value{"first"}}, {Value{1}, Value{"second"}}};
  sorter.Sort(&rows, 0);
  EXPECT_EQ(rows[0][1], Value{"first"});
}

TEST(ExternalSorterTest, PassCountMatchesLogFormula) {
  ExternalSorter sorter(/*memory_pages=*/100, /*rows_per_page=*/64);
  EXPECT_EQ(sorter.SortPasses(1), 1u);
  EXPECT_EQ(sorter.SortPasses(100), 1u);   // log_100(100) = 1
  EXPECT_EQ(sorter.SortPasses(101), 2u);   // just over one pass
  EXPECT_EQ(sorter.SortPasses(6400), 2u);  // the paper's |B| with M=100
  EXPECT_EQ(sorter.SortPasses(10000), 2u);
  EXPECT_EQ(sorter.SortPasses(10001), 3u);
}

TEST(ExternalSorterTest, CostIsPagesTimesPasses) {
  ExternalSorter sorter(100, 64);
  EXPECT_EQ(sorter.SortCostPages(6400), 12800u);
  EXPECT_EQ(sorter.SortCostPages(50), 50u);
}

TEST(ExternalSorterTest, PagesForRoundsUp) {
  ExternalSorter sorter(100, 64);
  EXPECT_EQ(sorter.PagesFor(0), 0u);
  EXPECT_EQ(sorter.PagesFor(1), 1u);
  EXPECT_EQ(sorter.PagesFor(64), 1u);
  EXPECT_EQ(sorter.PagesFor(65), 2u);
}

// ------------------------------------------------------------ JoinChooser

TEST(JoinChooserTest, SmallDeltaPrefersIndexJoin) {
  JoinChoiceInput in;
  in.outer_tuples = 10;
  in.per_tuple_index_io = 2.0;  // search + one fetch
  in.inner_pages = 1600;
  in.inner_clustered = false;
  in.memory_pages = 100;
  JoinChoice choice = ChooseLocalJoin(in);
  EXPECT_EQ(choice.algorithm, JoinAlgorithm::kIndexNestedLoops);
  EXPECT_DOUBLE_EQ(choice.index_io, 20.0);
  EXPECT_DOUBLE_EQ(choice.sort_merge_io, 3200.0);
}

TEST(JoinChooserTest, HugeDeltaPrefersSortMerge) {
  JoinChoiceInput in;
  in.outer_tuples = 10000;
  in.per_tuple_index_io = 1.0;
  in.inner_pages = 800;
  in.inner_clustered = true;
  JoinChoice choice = ChooseLocalJoin(in);
  EXPECT_EQ(choice.algorithm, JoinAlgorithm::kSortMerge);
  EXPECT_DOUBLE_EQ(choice.sort_merge_io, 800.0);
}

TEST(JoinChooserTest, CrossoverNearInnerPages) {
  // With a clustered inner of P pages and 1 I/O per outer tuple, the
  // crossover is exactly at P outer tuples — the paper's Section 3.1.2
  // observation that naive+clustered wins once |A| approaches |B| pages.
  JoinChoiceInput in;
  in.inner_pages = 500;
  in.inner_clustered = true;
  in.per_tuple_index_io = 1.0;
  in.outer_tuples = 500;
  EXPECT_EQ(ChooseLocalJoin(in).algorithm, JoinAlgorithm::kIndexNestedLoops);
  in.outer_tuples = 501;
  EXPECT_EQ(ChooseLocalJoin(in).algorithm, JoinAlgorithm::kSortMerge);
}

// ------------------------------------------------------------ Local joins

Schema AbSchema() {
  return Schema({{"a", ValueType::kInt64}, {"c", ValueType::kInt64}});
}

class LocalJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemConfig cfg;
    cfg.num_nodes = 1;
    cfg.rows_per_page = 4;
    sys_ = std::make_unique<ParallelSystem>(cfg);
    TableDef def;
    def.name = "B";
    def.schema = AbSchema();
    def.partition = PartitionSpec::Hash("a");
    def.indexes.push_back({"c", false});
    ASSERT_TRUE(sys_->CreateTable(def).ok());
    // Join column c has fanout 2: keys 0..4, two rows each.
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(sys_->Insert("B", {Value{i}, Value{i % 5}}).ok());
    }
  }

  std::unique_ptr<ParallelSystem> sys_;
};

TEST_F(LocalJoinTest, IndexNestedLoopFindsAllMatches) {
  std::vector<Row> outer = {{Value{100}, Value{2}}, {Value{101}, Value{4}}};
  auto result = IndexNestedLoopJoin(sys_->node(0), "B", 1, outer, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);  // 2 outer tuples x fanout 2
  for (const JoinedPair& p : *result) {
    EXPECT_EQ(p.outer[1], p.inner[1]);
  }
}

TEST_F(LocalJoinTest, IndexNestedLoopNoMatches) {
  std::vector<Row> outer = {{Value{1}, Value{77}}};
  auto result = IndexNestedLoopJoin(sys_->node(0), "B", 1, outer, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(LocalJoinTest, SortMergeMatchesIndexJoinOutput) {
  std::vector<Row> outer;
  for (int64_t k = 0; k < 5; ++k) outer.push_back({Value{200 + k}, Value{k}});
  auto inl = IndexNestedLoopJoin(sys_->node(0), "B", 1, outer, 1);
  auto smj = SortMergeJoinFragment(sys_->node(0), "B", 1, outer, 1, 100,
                                   &sys_->cost());
  ASSERT_TRUE(inl.ok());
  ASSERT_TRUE(smj.ok());
  auto key = [](const JoinedPair& p) {
    return RowToString(p.outer) + "|" + RowToString(p.inner);
  };
  std::vector<std::string> a, b;
  for (const auto& p : *inl) a.push_back(key(p));
  for (const auto& p : *smj) b.push_back(key(p));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
}

TEST_F(LocalJoinTest, SortMergeChargesSortWhenNotClustered) {
  sys_->cost().Reset();
  std::vector<Row> outer = {{Value{1}, Value{0}}};
  ASSERT_TRUE(SortMergeJoinFragment(sys_->node(0), "B", 1, outer, 1,
                                    /*memory_pages=*/2, &sys_->cost())
                  .ok());
  // 10 rows / 4 per page = 3 pages; M=2 -> ceil(log_2 3) = 2 passes.
  EXPECT_DOUBLE_EQ(sys_->cost().TotalWorkload(), 6.0);
}

TEST_F(LocalJoinTest, SortMergeChargesScanWhenClustered) {
  TableDef def;
  def.name = "Bc";
  def.schema = AbSchema();
  def.partition = PartitionSpec::Hash("a");
  def.indexes.push_back({"c", true});
  ASSERT_TRUE(sys_->CreateTable(def).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(sys_->Insert("Bc", {Value{i}, Value{i % 5}}).ok());
  }
  sys_->cost().Reset();
  std::vector<Row> outer = {{Value{1}, Value{0}}};
  ASSERT_TRUE(SortMergeJoinFragment(sys_->node(0), "Bc", 1, outer, 1, 2,
                                    &sys_->cost())
                  .ok());
  EXPECT_DOUBLE_EQ(sys_->cost().TotalWorkload(), 3.0);  // Just the scan.
}

TEST_F(LocalJoinTest, MissingTableIsNotFound) {
  std::vector<Row> outer = {{Value{1}, Value{0}}};
  EXPECT_FALSE(
      SortMergeJoinFragment(sys_->node(0), "Nope", 1, outer, 1, 2, &sys_->cost())
          .ok());
  EXPECT_FALSE(IndexNestedLoopJoin(sys_->node(0), "Nope", 1, outer, 1).ok());
}

}  // namespace
}  // namespace pjvm
