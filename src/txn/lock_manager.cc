#include "txn/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/worker_context.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace pjvm {

const char* LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
    case LockMode::kValue:
      return "V";
  }
  return "?";
}

const char* LockPolicyToString(LockPolicy policy) {
  switch (policy) {
    case LockPolicy::kNoWait:
      return "no_wait";
    case LockPolicy::kWaitDie:
      return "wait_die";
    case LockPolicy::kWoundWait:
      return "wound_wait";
  }
  return "?";
}

std::string LockId::ToString() const {
  std::string out = "node" + std::to_string(node) + "/" + table;
  if (whole_table) {
    out += "/*";
  } else {
    out += "/#" + std::to_string(key_hash);
  }
  return out;
}

LockManager::LockManager(int num_shards) { set_num_shards(num_shards); }

void LockManager::set_num_shards(int n) {
  n = std::max(1, n);
  for (const auto& shard : shards_) {
    if (shard && !shard->locks.empty()) return;  // live locks: keep layout
  }
  shards_.clear();
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

const LockManager::Shard& LockManager::ShardOf(const LockId& id) const {
  // Fragment-granular: every lock of one (node, table) pair maps to the same
  // shard, so table↔key coverage checks and release-wakeups stay single-shard.
  uint64_t h = std::hash<std::string>{}(id.table);
  h = h * 1099511628211ULL ^
      (static_cast<uint64_t>(id.node) * 0x9e3779b97f4a7c15ULL);
  return *shards_[h % shards_.size()];
}

void LockManager::CollectConflicts(const Shard& shard, uint64_t txn_id,
                                   const LockId& id, LockMode mode,
                                   std::set<uint64_t>* out) {
  auto collect_from = [&](const LockId& other_id) {
    auto it = shard.locks.find(other_id);
    if (it == shard.locks.end()) return;
    for (const auto& [holder, held_mode] : it->second.holders) {
      if (holder == txn_id) continue;
      if (!Compatible(held_mode, mode)) out->insert(holder);
    }
  };

  // Direct conflicts on the same resource.
  collect_from(id);
  if (id.whole_table) {
    // A table lock conflicts with any key lock of the fragment held by
    // someone else (scan the fragment's key entries).
    LockId lo{id.node, id.table, 0, false};
    for (auto it = shard.locks.lower_bound(lo); it != shard.locks.end(); ++it) {
      if (it->first.node != id.node || it->first.table != id.table) break;
      if (it->first.whole_table) continue;
      collect_from(it->first);
    }
  } else {
    // A key lock conflicts with a fragment-level lock.
    collect_from(LockId::Table(id.node, id.table));
  }
}

Status LockManager::ConflictAborted(uint64_t txn_id, const LockId& id,
                                    LockMode mode,
                                    const std::set<uint64_t>& holders,
                                    const char* why) {
  std::string msg = std::string("lock conflict on ") + id.ToString() +
                    ": txn " + std::to_string(txn_id) + " wants " +
                    LockModeToString(mode) + ", held by txn " +
                    std::to_string(*holders.begin()) + " (" + why + ")";
  return Status::Aborted(std::move(msg));
}

void LockManager::Grant(Shard& shard, uint64_t txn_id, const LockId& id,
                        LockMode mode) {
  static Counter* vlock_grants =
      MetricsRegistry::Global().counter("pjvm_vlock_grants");
  static Counter* vlock_upgrades =
      MetricsRegistry::Global().counter("pjvm_vlock_upgrades");
  Entry& entry = shard.locks[id];
  auto [holder, inserted] = entry.holders.try_emplace(txn_id, mode);
  if (!inserted) {
    LockMode joined = ModeJoin(holder->second, mode);
    if (holder->second == LockMode::kValue && joined == LockMode::kExclusive) {
      // V→X escalation (group birth/death): the grant implies we are the
      // sole holder, since the conflict loop drained the other V holders.
      vlock_upgrades->Increment();
    }
    holder->second = joined;
  } else {
    if (mode == LockMode::kValue) vlock_grants->Increment();
    ++shard.entry_holders;
    shard.peak_entry_holders =
        std::max(shard.peak_entry_holders, shard.entry_holders);
    if (!id.whole_table) {
      ++shard.key_counts[FragKey{txn_id, id.node, id.table}];
    }
  }
  shard.by_txn[txn_id].insert(id);
}

void LockManager::SetAge(uint64_t txn_id, uint64_t age) {
  std::lock_guard<std::mutex> lock(age_mu_);
  ages_[txn_id] = age;
}

uint64_t LockManager::AgeOf(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(age_mu_);
  auto it = ages_.find(txn_id);
  return it == ages_.end() ? txn_id : it->second;
}

bool LockManager::IsWounded(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(wound_mu_);
  return wounded_.count(txn_id) > 0;
}

void LockManager::WoundYoungerHolders(uint64_t txn_id,
                                      const std::set<uint64_t>& holders) {
  static Counter* wounds =
      MetricsRegistry::Global().counter("pjvm_lock_wounds");
  const uint64_t my_age = AgeOf(txn_id);
  std::lock_guard<std::mutex> lock(wound_mu_);
  for (uint64_t holder : holders) {
    if (AgeOf(holder) <= my_age) continue;
    if (wounded_.insert(holder).second) wounds->Increment();
    // Wake a parked victim so it re-checks its wound flag. If it registered
    // but has not reached wait() yet, the notify is lost and the wait
    // timeout backstops — a bounded stall, never a missed abort.
    auto parked = parked_.find(holder);
    if (parked != parked_.end() && parked->second) {
      parked->second->notify_all();
    }
  }
}

Status LockManager::Acquire(uint64_t txn_id, const LockId& id, LockMode mode) {
  static Counter* kills =
      MetricsRegistry::Global().counter("pjvm_lock_deadlock_kills");
  static Counter* shard_contention =
      MetricsRegistry::Global().counter("pjvm_lock_shard_contention");

  // A wounded transaction aborts at its next lock request even if that
  // request would have been grantable: the older wounder is waiting for us.
  if (policy_ == LockPolicy::kWoundWait && IsWounded(txn_id)) {
    kills->Increment();
    return Status::Aborted("lock conflict on " + id.ToString() + ": txn " +
                           std::to_string(txn_id) +
                           " wounded by an older transaction (wound-wait)");
  }

  Shard& shard = ShardOf(id);
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard_contention->Increment();
    lock.lock();
  }
  // Already held at sufficient strength?
  auto it = shard.locks.find(id);
  if (it != shard.locks.end()) {
    auto held = it->second.holders.find(txn_id);
    if (held != it->second.holders.end()) {
      if (held->second == LockMode::kExclusive || mode == held->second) {
        return Status::OK();
      }
      // Upgrade request (S→X, V→X, or a cross-mode S/V mix that joins to
      // X): proceeds through the same conflict loop; grantable once no
      // *other* transaction holds a conflicting mode.
    }
  }
  // Coverage fast path: a key request answered by the fragment lock an
  // escalated (or scanning) transaction already holds — no new entry.
  if (!id.whole_table) {
    auto frag = shard.locks.find(LockId::Table(id.node, id.table));
    if (frag != shard.locks.end()) {
      auto held = frag->second.holders.find(txn_id);
      if (held != frag->second.holders.end() &&
          (held->second == LockMode::kExclusive || mode == held->second)) {
        return Status::OK();
      }
    }
  }

  Status st = AcquireLocked(lock, shard, txn_id, id, mode);
  if (!st.ok() || id.whole_table || escalation_threshold_ <= 0) return st;
  return MaybeEscalateLocked(lock, shard, txn_id, id);
}

Status LockManager::AcquireLocked(std::unique_lock<std::mutex>& lock,
                                  Shard& shard, uint64_t txn_id,
                                  const LockId& id, LockMode mode) {
  static Counter* waits =
      MetricsRegistry::Global().counter("pjvm_lock_waits");
  static Counter* kills =
      MetricsRegistry::Global().counter("pjvm_lock_deadlock_kills");
  static Counter* timeouts =
      MetricsRegistry::Global().counter("pjvm_lock_wait_timeouts");
  static LatencyHistogram* wait_ns =
      MetricsRegistry::Global().histogram("pjvm_lock_wait_ns");

  auto wounded_abort = [&]() {
    kills->Increment();
    return Status::Aborted("lock conflict on " + id.ToString() + ": txn " +
                           std::to_string(txn_id) +
                           " wounded by an older transaction (wound-wait)");
  };

  const bool may_block = (policy_ == LockPolicy::kWaitDie ||
                          policy_ == LockPolicy::kWoundWait) &&
                         wait_timeout_ms_ > 0 && !WorkerContext::MustNotBlock();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_timeout_ms_);
  std::optional<SpanGuard> wait_span;
  uint64_t wait_start_ns = 0;
  bool waited = false;

  auto finish_wait = [&](bool /*granted*/) {
    if (!waited) return;
    wait_ns->Record(Tracer::NowNs() - wait_start_ns);
    wait_span.reset();
  };

  std::set<uint64_t> conflicts;
  for (;;) {
    conflicts.clear();
    CollectConflicts(shard, txn_id, id, mode, &conflicts);
    if (conflicts.empty()) {
      Grant(shard, txn_id, id, mode);
      finish_wait(true);
      return Status::OK();
    }
    if (policy_ == LockPolicy::kNoWait) {
      return ConflictAborted(txn_id, id, mode, conflicts, "no-wait");
    }
    uint64_t oldest_conflict = UINT64_MAX;
    if (policy_ != LockPolicy::kNoWait) {
      for (uint64_t holder : conflicts) {
        oldest_conflict = std::min(oldest_conflict, AgeOf(holder));
      }
    }
    if (policy_ == LockPolicy::kWaitDie && oldest_conflict < AgeOf(txn_id)) {
      // Wait-die: die if ANY conflicting holder is older (by lineage age,
      // see SetAge) — the re-check after each wakeup means a newly arrived
      // older holder kills a sleeping waiter too.
      kills->Increment();
      finish_wait(false);
      return ConflictAborted(txn_id, id, mode, conflicts, "wait-die kill");
    }
    if (policy_ == LockPolicy::kWoundWait) {
      // Wound every younger conflicting holder, then wait for the conflict
      // to clear (the requester never dies under wound-wait).
      WoundYoungerHolders(txn_id, conflicts);
    }
    if (!may_block) {
      finish_wait(false);
      return ConflictAborted(txn_id, id, mode, conflicts,
                             "would-wait in non-blocking context");
    }
    if (!waited) {
      waited = true;
      waits->Increment();
      wait_start_ns = Tracer::NowNs();
      if (Tracer::Global().enabled()) {
        wait_span.emplace("lock_wait", "txn", id.node);
        wait_span->set_detail(id.ToString());
      }
    }
    // Park on the entry's condition variable. The shared_ptr keeps the cv
    // alive even if the entry is erased while we sleep (Clear, or the last
    // holder of a covering entry releasing).
    Entry& entry = shard.locks[id];
    if (!entry.waiters) {
      entry.waiters = std::make_shared<std::condition_variable>();
    }
    std::shared_ptr<std::condition_variable> cv = entry.waiters;
    ++entry.waiter_count;
    if (policy_ == LockPolicy::kWoundWait) {
      std::lock_guard<std::mutex> wg(wound_mu_);
      parked_[txn_id] = cv;
    }
    std::cv_status wake = cv->wait_until(lock, deadline);
    if (policy_ == LockPolicy::kWoundWait) {
      std::lock_guard<std::mutex> wg(wound_mu_);
      parked_.erase(txn_id);
    }
    // The map may have changed while parked; re-find before bookkeeping.
    auto it2 = shard.locks.find(id);
    if (it2 != shard.locks.end() && it2->second.waiters == cv) {
      --it2->second.waiter_count;
      if (it2->second.holders.empty() && it2->second.waiter_count == 0) {
        shard.locks.erase(it2);
      }
    }
    if (policy_ == LockPolicy::kWoundWait && IsWounded(txn_id)) {
      finish_wait(false);
      return wounded_abort();
    }
    if (wake == std::cv_status::timeout) {
      conflicts.clear();
      CollectConflicts(shard, txn_id, id, mode, &conflicts);
      if (conflicts.empty()) {
        Grant(shard, txn_id, id, mode);
        finish_wait(true);
        return Status::OK();
      }
      timeouts->Increment();
      finish_wait(false);
      return ConflictAborted(txn_id, id, mode, conflicts, "wait timeout");
    }
  }
}

Status LockManager::MaybeEscalateLocked(std::unique_lock<std::mutex>& lock,
                                        Shard& shard, uint64_t txn_id,
                                        const LockId& id) {
  static Counter* escalations =
      MetricsRegistry::Global().counter("pjvm_lock_escalations");
  static Counter* reclaimed_total =
      MetricsRegistry::Global().counter("pjvm_lock_entries_reclaimed");

  const FragKey frag_key{txn_id, id.node, id.table};
  {
    auto count = shard.key_counts.find(frag_key);
    if (count == shard.key_counts.end() ||
        count->second < static_cast<size_t>(escalation_threshold_)) {
      return Status::OK();
    }
  }

  // Snapshot the fragment's key locks and derive the escalated mode: the
  // fragment lock must be at least as strong as the join of every key lock
  // it replaces (all-S → S, all-V → V, any mix or any X → X).
  std::optional<LockMode> folded;
  std::vector<LockId> keys;
  auto by_txn = shard.by_txn.find(txn_id);
  if (by_txn != shard.by_txn.end()) {
    const LockId lo{id.node, id.table, 0, false};
    for (auto it = by_txn->second.lower_bound(lo);
         it != by_txn->second.end(); ++it) {
      if (it->node != id.node || it->table != id.table) break;
      if (it->whole_table) continue;
      keys.push_back(*it);
      auto entry = shard.locks.find(*it);
      if (entry != shard.locks.end()) {
        auto held = entry->second.holders.find(txn_id);
        if (held != entry->second.holders.end()) {
          folded = folded ? ModeJoin(*folded, held->second) : held->second;
        }
      }
    }
  }
  const LockMode mode = folded.value_or(LockMode::kShared);

  // The fragment acquire runs the full policy loop and may park (it keeps
  // the key locks while waiting, so the transaction never loses coverage).
  // A kill, wound, timeout, or non-blocking would-wait aborts the Acquire
  // that triggered escalation; the caller's abort-and-retry path takes over.
  Status st =
      AcquireLocked(lock, shard, txn_id, LockId::Table(id.node, id.table),
                    mode);
  if (!st.ok()) return st;

  // Swap: drop the key entries the fragment lock now covers, waking their
  // waiters so they re-evaluate (they will now conflict with the fragment
  // lock and re-park / die per policy).
  size_t reclaimed = 0;
  for (const LockId& key : keys) {
    auto entry = shard.locks.find(key);
    if (entry != shard.locks.end() && entry->second.holders.erase(txn_id)) {
      ++reclaimed;
      --shard.entry_holders;
      if (entry->second.holders.empty() &&
          entry->second.waiter_count == 0) {
        shard.locks.erase(entry);
      } else if (entry->second.waiter_count > 0 && entry->second.waiters) {
        entry->second.waiters->notify_all();
      }
    }
    by_txn->second.erase(key);
  }
  // Re-find the count: another thread of this transaction may have granted
  // further key locks in this fragment while we were parked above; those
  // stay as key entries and keep their count toward a future escalation.
  auto count = shard.key_counts.find(frag_key);
  if (count != shard.key_counts.end()) {
    if (count->second <= reclaimed) {
      shard.key_counts.erase(count);
    } else {
      count->second -= reclaimed;
    }
  }

  escalations->Increment();
  reclaimed_total->Increment(reclaimed);
  {
    std::lock_guard<std::mutex> eg(esc_mu_);
    TxnEscalationStats& stats = esc_stats_[txn_id];
    ++stats.escalations;
    stats.entries_reclaimed += reclaimed;
  }
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_txn.find(txn_id);
    if (it == shard.by_txn.end()) continue;
    for (const LockId& id : it->second) {
      auto entry = shard.locks.find(id);
      if (entry != shard.locks.end()) {
        if (entry->second.holders.erase(txn_id)) --shard.entry_holders;
        if (entry->second.holders.empty() &&
            entry->second.waiter_count == 0) {
          shard.locks.erase(entry);
        }
      }
      // Wake waiters of every entry on this (node, table): releasing a key
      // lock can unblock a fragment-lock waiter and vice versa, and waiters
      // park on the entry they requested, not the one they conflicted with.
      LockId lo{id.node, id.table, 0, false};
      for (auto w = shard.locks.lower_bound(lo); w != shard.locks.end(); ++w) {
        if (w->first.node != id.node || w->first.table != id.table) break;
        if (w->second.waiter_count > 0 && w->second.waiters) {
          w->second.waiters->notify_all();
        }
      }
    }
    shard.by_txn.erase(it);
    shard.key_counts.erase(
        shard.key_counts.lower_bound(
            FragKey{txn_id, std::numeric_limits<int>::min(), ""}),
        shard.key_counts.lower_bound(
            FragKey{txn_id + 1, std::numeric_limits<int>::min(), ""}));
  }
  // The transaction is finished (commit or abort); its wound flag, if any,
  // is moot. Txn ids are never reused, so clearing after release is safe —
  // any Acquire that observed the flag has already aborted.
  {
    std::lock_guard<std::mutex> wg(wound_mu_);
    wounded_.erase(txn_id);
    parked_.erase(txn_id);
  }
  {
    std::lock_guard<std::mutex> eg(esc_mu_);
    esc_stats_.erase(txn_id);
  }
  std::lock_guard<std::mutex> ag(age_mu_);
  ages_.erase(txn_id);
}

void LockManager::Clear() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, entry] : shard.locks) {
      if (entry.waiter_count > 0 && entry.waiters) {
        entry.waiters->notify_all();
      }
    }
    shard.locks.clear();
    shard.by_txn.clear();
    shard.key_counts.clear();
    shard.entry_holders = 0;
  }
  {
    std::lock_guard<std::mutex> wg(wound_mu_);
    wounded_.clear();
  }
  {
    std::lock_guard<std::mutex> eg(esc_mu_);
    esc_stats_.clear();
  }
  std::lock_guard<std::mutex> ag(age_mu_);
  ages_.clear();
}

size_t LockManager::HeldCount(uint64_t txn_id) const {
  size_t count = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_txn.find(txn_id);
    if (it != shard.by_txn.end()) count += it->second.size();
  }
  return count;
}

bool LockManager::Holds(uint64_t txn_id, const LockId& id,
                        LockMode mode) const {
  const Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto strong_enough = [&](const LockId& candidate) {
    auto it = shard.locks.find(candidate);
    if (it == shard.locks.end()) return false;
    auto held = it->second.holders.find(txn_id);
    if (held == it->second.holders.end()) return false;
    return held->second == LockMode::kExclusive || mode == held->second;
  };
  if (strong_enough(id)) return true;
  // An escalated transaction holds the fragment lock instead of its key
  // entries; coverage counts as holding.
  return !id.whole_table && strong_enough(LockId::Table(id.node, id.table));
}

size_t LockManager::TotalLocks() const {
  size_t count = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, entry] : shard.locks) {
      count += entry.holders.size();
    }
  }
  return count;
}

size_t LockManager::PeakShardEntries() const {
  size_t peak = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    peak = std::max(peak, shard.peak_entry_holders);
  }
  return peak;
}

void LockManager::ResetPeakEntries() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.peak_entry_holders = shard.entry_holders;
  }
}

LockManager::TxnEscalationStats LockManager::EscalationStatsOf(
    uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(esc_mu_);
  auto it = esc_stats_.find(txn_id);
  return it == esc_stats_.end() ? TxnEscalationStats{} : it->second;
}

}  // namespace pjvm
