#ifndef PJVM_COMMON_METRICS_H_
#define PJVM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pjvm {

/// \brief Unit costs for the four primitive operations of the paper's model
/// (Section 3.1): SEARCH, FETCH, INSERT (in I/Os) and SEND (network).
///
/// Defaults follow the paper: "SEARCH takes one I/O, FETCH takes one I/O, and
/// INSERT takes two I/Os", and "the time spent on SEND is much smaller than
/// the time spent on SEARCH, FETCH, and INSERT", so SEND contributes zero to
/// the I/O metric but is still counted as messages.
struct CostWeights {
  double search = 1.0;
  double fetch = 1.0;
  double insert = 2.0;
  double send = 0.0;
};

/// \brief Per-node activity counters for one node of the parallel system.
struct NodeCounters {
  uint64_t searches = 0;
  uint64_t fetches = 0;
  uint64_t inserts = 0;
  uint64_t sends = 0;
  uint64_t bytes_sent = 0;
  /// Breakdown of `inserts` (write I/Os) by what was written — base
  /// relations, auxiliary structures (ARs/GIs), and views. Lets experiments
  /// isolate the delta-join compute cost the way the paper's Section 3.3
  /// measurement does ("we only measured the time spent on the second
  /// step"), by subtracting the write categories all methods share.
  uint64_t base_writes = 0;
  uint64_t structure_writes = 0;
  uint64_t view_writes = 0;
  /// Tree descents: root-to-leaf traversals of any key-ordered structure
  /// (index probe, per-index maintenance on a write, merged-tree range
  /// descent). A locality metric, NOT part of the paper's cost model — it is
  /// excluded from IO()/ComputeIO() so TW/RT stay bit-identical whether or
  /// not descents are counted. The merged-storage ablation compares layouts
  /// by this number.
  uint64_t descents = 0;

  /// Weighted I/O total for this node (the paper's per-node work, which
  /// drives response time as the max over nodes).
  double IO(const CostWeights& w) const {
    return w.search * searches + w.fetch * fetches + w.insert * inserts +
           w.send * sends;
  }

  /// Weighted I/O excluding every write (the join-compute portion).
  double ComputeIO(const CostWeights& w) const {
    return w.search * searches + w.fetch * fetches;
  }

  NodeCounters& operator+=(const NodeCounters& o) {
    searches += o.searches;
    fetches += o.fetches;
    inserts += o.inserts;
    sends += o.sends;
    bytes_sent += o.bytes_sent;
    base_writes += o.base_writes;
    structure_writes += o.structure_writes;
    view_writes += o.view_writes;
    descents += o.descents;
    return *this;
  }
  friend NodeCounters operator-(NodeCounters a, const NodeCounters& b) {
    a.searches -= b.searches;
    a.fetches -= b.fetches;
    a.inserts -= b.inserts;
    a.sends -= b.sends;
    a.bytes_sent -= b.bytes_sent;
    a.base_writes -= b.base_writes;
    a.structure_writes -= b.structure_writes;
    a.view_writes -= b.view_writes;
    a.descents -= b.descents;
    return a;
  }
};

/// \brief Metering for the whole parallel system: one NodeCounters per data
/// server node.
///
/// The two summary metrics mirror the paper's Section 3.1:
///  - TotalWorkload() — "the sum of the work done over all the nodes" (TW);
///  - ResponseTime()  — the max per-node work, i.e. the makespan when all
///    nodes proceed in parallel.
///
/// Counters are lock-free atomics so the thread-per-node executor's workers
/// can charge concurrently. Each worker only ever charges its own node, but
/// the relaxed atomics also make cross-node charges (e.g. a SEND charged to
/// the message source from another node's worker) race-free. All aggregates
/// (TW, response time, per-node sums) are order-independent, so parallel and
/// sequential execution of the same work meter identically.
class CostTracker {
 private:
  /// Cache-line-padded atomic mirror of NodeCounters: one slot per node, so
  /// workers charging their own node never contend or false-share.
  struct alignas(64) AtomicCounters {
    std::atomic<uint64_t> searches{0};
    std::atomic<uint64_t> fetches{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> sends{0};
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> base_writes{0};
    std::atomic<uint64_t> structure_writes{0};
    std::atomic<uint64_t> view_writes{0};
    std::atomic<uint64_t> descents{0};

    NodeCounters Load() const {
      NodeCounters c;
      c.searches = searches.load(std::memory_order_relaxed);
      c.fetches = fetches.load(std::memory_order_relaxed);
      c.inserts = inserts.load(std::memory_order_relaxed);
      c.sends = sends.load(std::memory_order_relaxed);
      c.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
      c.base_writes = base_writes.load(std::memory_order_relaxed);
      c.structure_writes = structure_writes.load(std::memory_order_relaxed);
      c.view_writes = view_writes.load(std::memory_order_relaxed);
      c.descents = descents.load(std::memory_order_relaxed);
      return c;
    }
    void Clear() {
      searches.store(0, std::memory_order_relaxed);
      fetches.store(0, std::memory_order_relaxed);
      inserts.store(0, std::memory_order_relaxed);
      sends.store(0, std::memory_order_relaxed);
      bytes_sent.store(0, std::memory_order_relaxed);
      base_writes.store(0, std::memory_order_relaxed);
      structure_writes.store(0, std::memory_order_relaxed);
      view_writes.store(0, std::memory_order_relaxed);
      descents.store(0, std::memory_order_relaxed);
    }
  };

 public:
  explicit CostTracker(int num_nodes, CostWeights weights = CostWeights{})
      : weights_(weights), nodes_(num_nodes) {}

  /// \brief Exact per-transaction attribution under concurrency.
  ///
  /// Diffing global Snapshot()s around a transaction attributes *everything
  /// the system did meanwhile* to that transaction — a concurrent
  /// maintenance transaction's I/O pollutes the bracket. A TxnMeter instead
  /// mirrors, into its own per-node slots, every charge made while it is
  /// active on the charging thread (see MeterScope); NodeExecutor hands the
  /// submitting thread's active meter to the worker for the duration of each
  /// task, so a transaction's fan-out work is captured on whichever thread
  /// performs it. Global counters are unaffected.
  class TxnMeter {
   public:
    explicit TxnMeter(int num_nodes) : nodes_(num_nodes) {}
    std::vector<NodeCounters> Snapshot() const {
      std::vector<NodeCounters> out;
      out.reserve(nodes_.size());
      for (const AtomicCounters& c : nodes_) out.push_back(c.Load());
      return out;
    }

   private:
    friend class CostTracker;
    std::vector<AtomicCounters> nodes_;
  };

  /// RAII thread-local activation of a TxnMeter (restores the previous one,
  /// so scopes nest). The meter must outlive the scope *and* every executor
  /// task submitted while it is active (RunOnNodes/RunOnAllNodes barriers
  /// guarantee the latter).
  class MeterScope {
   public:
    explicit MeterScope(TxnMeter* meter) : prev_(active_meter_) {
      active_meter_ = meter;
    }
    ~MeterScope() { active_meter_ = prev_; }
    MeterScope(const MeterScope&) = delete;
    MeterScope& operator=(const MeterScope&) = delete;

   private:
    TxnMeter* prev_ = nullptr;
  };

  /// The meter active on this thread (null when none); what the executor
  /// captures at submit time.
  static TxnMeter* ActiveMeter() { return active_meter_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const CostWeights& weights() const { return weights_; }

  /// Category of a write charge, for the per-category breakdown.
  enum class WriteKind { kBase, kStructure, kView };

  void ChargeSearch(int node, uint64_t n = 1) {
    nodes_[node].searches.fetch_add(n, std::memory_order_relaxed);
    if (TxnMeter* m = active_meter_) {
      m->nodes_[node].searches.fetch_add(n, std::memory_order_relaxed);
    }
    Stall(weights_.search * n);
  }
  void ChargeFetch(int node, uint64_t n = 1) {
    nodes_[node].fetches.fetch_add(n, std::memory_order_relaxed);
    if (TxnMeter* m = active_meter_) {
      m->nodes_[node].fetches.fetch_add(n, std::memory_order_relaxed);
    }
    Stall(weights_.fetch * n);
  }
  void ChargeInsert(int node, uint64_t n = 1) {
    nodes_[node].inserts.fetch_add(n, std::memory_order_relaxed);
    if (TxnMeter* m = active_meter_) {
      m->nodes_[node].inserts.fetch_add(n, std::memory_order_relaxed);
    }
    Stall(weights_.insert * n);
  }
  void ChargeWrite(int node, WriteKind kind) {
    nodes_[node].inserts.fetch_add(1, std::memory_order_relaxed);
    TxnMeter* m = active_meter_;
    if (m != nullptr) {
      m->nodes_[node].inserts.fetch_add(1, std::memory_order_relaxed);
    }
    switch (kind) {
      case WriteKind::kBase:
        nodes_[node].base_writes.fetch_add(1, std::memory_order_relaxed);
        if (m != nullptr) {
          m->nodes_[node].base_writes.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case WriteKind::kStructure:
        nodes_[node].structure_writes.fetch_add(1, std::memory_order_relaxed);
        if (m != nullptr) {
          m->nodes_[node].structure_writes.fetch_add(1,
                                                     std::memory_order_relaxed);
        }
        break;
      case WriteKind::kView:
        nodes_[node].view_writes.fetch_add(1, std::memory_order_relaxed);
        if (m != nullptr) {
          m->nodes_[node].view_writes.fetch_add(1, std::memory_order_relaxed);
        }
        break;
    }
    Stall(weights_.insert);
  }
  /// Max over nodes of the join-compute I/O (searches + fetches only) — the
  /// paper's Figure 14 measurement.
  double ComputeResponseTime() const;
  void ChargeSend(int node, uint64_t bytes) {
    nodes_[node].sends.fetch_add(1, std::memory_order_relaxed);
    nodes_[node].bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    if (TxnMeter* m = active_meter_) {
      m->nodes_[node].sends.fetch_add(1, std::memory_order_relaxed);
      m->nodes_[node].bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    }
    // No stall: the paper's SEND weight is ~0 against SEARCH/FETCH/INSERT.
  }
  /// Counts `n` root-to-leaf tree descents on `node`. A pure locality
  /// metric: no Stall, no contribution to IO()/TW/RT — the paper's model is
  /// unchanged; the merged-storage ablation reads this to compare layouts.
  void ChargeDescent(int node, uint64_t n = 1) {
    nodes_[node].descents.fetch_add(n, std::memory_order_relaxed);
    if (TxnMeter* m = active_meter_) {
      m->nodes_[node].descents.fetch_add(n, std::memory_order_relaxed);
    }
  }
  /// Charges extra I/Os that are not one of the three primitives (e.g. the
  /// page reads/writes of an external sort); counted as fetches.
  void ChargeIOPages(int node, uint64_t pages) {
    nodes_[node].fetches.fetch_add(pages, std::memory_order_relaxed);
    if (TxnMeter* m = active_meter_) {
      m->nodes_[node].fetches.fetch_add(pages, std::memory_order_relaxed);
    }
    Stall(weights_.fetch * pages);
  }

  /// Plain snapshot of one node's counters.
  NodeCounters node(int i) const { return nodes_[i].Load(); }

  /// Sum over nodes of weighted I/O (the paper's TW).
  double TotalWorkload() const;
  /// Max over nodes of weighted I/O (response time in I/Os).
  double ResponseTime() const;
  /// Total message count across nodes.
  uint64_t TotalSends() const;
  /// Number of nodes that performed any work (I/O or sends) — used to verify
  /// the single-node / few-node / all-node locality claims.
  int NodesTouched() const;

  void Reset();

  /// Copies the current counters (for before/after diffs around a phase).
  std::vector<NodeCounters> Snapshot() const;

  /// Sleeps the charging thread for `ns` nanoseconds per weighted I/O unit
  /// it charges from now on (0 disables; the default). This turns the cost
  /// model into simulated device time: with the thread-per-node executor,
  /// wall clock then tracks ResponseTime (max over nodes) instead of TW —
  /// the effect bench_parallel_scaling measures. Counters are unaffected.
  void SetIoStallNanos(uint64_t ns) {
    stall_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t io_stall_nanos() const {
    return stall_ns_.load(std::memory_order_relaxed);
  }

  std::string ToString() const;

 private:
  void Stall(double weighted_units) const;

  static thread_local TxnMeter* active_meter_;

  CostWeights weights_;
  std::vector<AtomicCounters> nodes_;
  std::atomic<uint64_t> stall_ns_{0};
};

}  // namespace pjvm

#endif  // PJVM_COMMON_METRICS_H_
