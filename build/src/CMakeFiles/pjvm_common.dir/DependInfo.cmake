
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/pjvm_common.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/pjvm_common.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/pjvm_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/pjvm_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/row.cc" "src/CMakeFiles/pjvm_common.dir/common/row.cc.o" "gcc" "src/CMakeFiles/pjvm_common.dir/common/row.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/pjvm_common.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/pjvm_common.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pjvm_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pjvm_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/pjvm_common.dir/common/value.cc.o" "gcc" "src/CMakeFiles/pjvm_common.dir/common/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
