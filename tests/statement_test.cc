#include <gtest/gtest.h>

#include <sstream>

#include "sql/executor.h"
#include "sql/statement.h"
#include "tests/view_test_util.h"

namespace pjvm {
namespace {

using sql::Executor;
using sql::ParsedStatement;
using sql::ParseStatement;
using sql::StatementKind;

// ------------------------------------------------------------- Parsing

TEST(StatementParseTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE t (a INT, b DOUBLE, c STRING) PARTITIONED ON a;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kCreateTable);
  EXPECT_EQ(stmt->create_table.name, "t");
  ASSERT_EQ(stmt->create_table.schema.num_columns(), 3);
  EXPECT_EQ(stmt->create_table.schema.column(0).type, ValueType::kInt64);
  EXPECT_EQ(stmt->create_table.schema.column(1).type, ValueType::kDouble);
  EXPECT_EQ(stmt->create_table.schema.column(2).type, ValueType::kString);
  EXPECT_TRUE(stmt->create_table.partition.is_hash());
  EXPECT_EQ(stmt->create_table.partition.column, "a");
}

TEST(StatementParseTest, CreateTableTypeAliases) {
  auto stmt =
      ParseStatement("CREATE TABLE t (a BIGINT, b REAL, c VARCHAR)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->create_table.schema.column(0).type, ValueType::kInt64);
  EXPECT_EQ(stmt->create_table.schema.column(1).type, ValueType::kDouble);
  EXPECT_EQ(stmt->create_table.schema.column(2).type, ValueType::kString);
  // Round-robin when no PARTITIONED ON.
  EXPECT_FALSE(stmt->create_table.partition.is_hash());
}

TEST(StatementParseTest, CreateViewWithUsingClause) {
  auto stmt = ParseStatement(
      "CREATE JOIN VIEW v AS SELECT * FROM A, B WHERE A.c = B.d USING GI;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kCreateView);
  EXPECT_EQ(stmt->method, MaintenanceMethod::kGlobalIndex);
  EXPECT_EQ(stmt->create_view.name, "v");
  // Default method is AR.
  auto stmt2 = ParseStatement(
      "CREATE VIEW v AS SELECT * FROM A, B WHERE A.c = B.d");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2->method, MaintenanceMethod::kAuxRelation);
  auto stmt3 = ParseStatement(
      "CREATE VIEW v AS SELECT * FROM A, B WHERE A.c = B.d USING NAIVE");
  ASSERT_TRUE(stmt3.ok());
  EXPECT_EQ(stmt3->method, MaintenanceMethod::kNaive);
  EXPECT_FALSE(
      ParseStatement(
          "CREATE VIEW v AS SELECT * FROM A, B WHERE A.c = B.d USING BOGUS")
          .ok());
}

TEST(StatementParseTest, InsertMultipleRows) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 2.5, 'x'), (2, -3.5, 'y');");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_EQ(stmt->table, "t");
  ASSERT_EQ(stmt->rows.size(), 2u);
  EXPECT_EQ(stmt->rows[0], (Row{Value{1}, Value{2.5}, Value{"x"}}));
  EXPECT_EQ(stmt->rows[1][1], Value{-3.5});
}

TEST(StatementParseTest, DeleteByValues) {
  auto stmt = ParseStatement("DELETE FROM t VALUES (7, 'gone')");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kDelete);
  ASSERT_EQ(stmt->rows.size(), 1u);
}

TEST(StatementParseTest, ExplainAnalyzeWrapsInsertOrDelete) {
  auto ins = ParseStatement("EXPLAIN ANALYZE INSERT INTO t VALUES (1, 2)");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->kind, StatementKind::kExplainAnalyze);
  EXPECT_FALSE(ins->analyze_delete);
  EXPECT_EQ(ins->table, "t");
  ASSERT_EQ(ins->rows.size(), 1u);
  auto del = ParseStatement("EXPLAIN ANALYZE DELETE FROM t VALUES (1, 2);");
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ(del->kind, StatementKind::kExplainAnalyze);
  EXPECT_TRUE(del->analyze_delete);
  // Only the two DML forms can be analyzed; plain EXPLAIN still works.
  EXPECT_FALSE(ParseStatement("EXPLAIN ANALYZE SELECT * FROM t").ok());
  EXPECT_EQ(ParseStatement("EXPLAIN t")->kind, StatementKind::kExplain);
}

TEST(StatementParseTest, SelectWithAndWithoutWhere) {
  auto all = ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->kind, StatementKind::kSelect);
  EXPECT_FALSE(all->where.has_value());
  auto filtered = ParseStatement("SELECT * FROM v WHERE c.region = 10;");
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  ASSERT_TRUE(filtered->where.has_value());
  EXPECT_EQ(filtered->where->first, "c.region");
  EXPECT_EQ(filtered->where->second, Value{10});
}

TEST(StatementParseTest, ShowStatements) {
  EXPECT_EQ(ParseStatement("SHOW TABLES")->kind, StatementKind::kShowTables);
  EXPECT_EQ(ParseStatement("SHOW COST;")->kind, StatementKind::kShowCost);
  EXPECT_FALSE(ParseStatement("SHOW NOTHING").ok());
}

TEST(StatementParseTest, MalformedStatementsRejected) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t a INT").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a WIDGET)").ok());
  EXPECT_FALSE(ParseStatement("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES 1, 2").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE a < 3").ok());
  EXPECT_FALSE(ParseStatement("DROP TABLE t").ok());
}

// ------------------------------------------------------------- Executor

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    SystemConfig cfg;
    cfg.num_nodes = 4;
    sys_ = std::make_unique<ParallelSystem>(cfg);
    manager_ = std::make_unique<ViewManager>(sys_.get());
    executor_ = std::make_unique<Executor>(manager_.get());
  }

  Status Run(const std::string& script) {
    return executor_->ExecuteScript(script, out_);
  }

  std::unique_ptr<ParallelSystem> sys_;
  std::unique_ptr<ViewManager> manager_;
  std::unique_ptr<Executor> executor_;
  std::ostringstream out_;
};

TEST_F(ExecutorTest, FullLifecycleScript) {
  ASSERT_TRUE(Run(R"sql(
    CREATE TABLE A (a INT, c INT, e INT) PARTITIONED ON a;
    CREATE TABLE B (b INT, d INT, f INT) PARTITIONED ON b;
    INSERT INTO B VALUES (1, 5, 10), (2, 5, 20), (3, 6, 30);
    CREATE JOIN VIEW jv AS SELECT A.e, B.f FROM A, B WHERE A.c = B.d
      PARTITIONED ON A.e USING AR;
    INSERT INTO A VALUES (100, 5, 7);
  )sql")
                  .ok())
      << out_.str();
  EXPECT_EQ(manager_->view("jv")->RowCount(), 2u);
  ASSERT_TRUE(Run("DELETE FROM B VALUES (1, 5, 10);").ok());
  EXPECT_EQ(manager_->view("jv")->RowCount(), 1u);
  ASSERT_TRUE(manager_->CheckAllConsistent().ok())
      << manager_->CheckAllConsistent();
}

TEST_F(ExecutorTest, SelectPrintsRowsAndCount) {
  ASSERT_TRUE(Run(R"sql(
    CREATE TABLE t (k INT, v STRING) PARTITIONED ON k;
    INSERT INTO t VALUES (1, 'one'), (2, 'two');
  )sql")
                  .ok());
  out_.str("");
  ASSERT_TRUE(Run("SELECT * FROM t;").ok());
  std::string printed = out_.str();
  EXPECT_NE(printed.find("(1, one)"), std::string::npos);
  EXPECT_NE(printed.find("(2 row(s))"), std::string::npos);
}

TEST_F(ExecutorTest, SelectWhereRoutesByPartitionColumn) {
  ASSERT_TRUE(Run(R"sql(
    CREATE TABLE t (k INT, v STRING) PARTITIONED ON k;
    INSERT INTO t VALUES (1, 'one'), (2, 'two'), (1, 'uno');
  )sql")
                  .ok());
  out_.str("");
  ASSERT_TRUE(Run("SELECT * FROM t WHERE k = 1;").ok());
  EXPECT_NE(out_.str().find("(2 row(s))"), std::string::npos);
}

TEST_F(ExecutorTest, ErrorsSurfaceWithoutSideEffects) {
  EXPECT_FALSE(Run("INSERT INTO missing VALUES (1);").ok());
  EXPECT_FALSE(Run("SELECT * FROM missing;").ok());
  ASSERT_TRUE(Run("CREATE TABLE t (k INT) PARTITIONED ON k;").ok());
  // Wrong arity fails and leaves the table empty (txn aborted).
  EXPECT_FALSE(Run("INSERT INTO t VALUES (1, 2);").ok());
  EXPECT_EQ(sys_->RowCount("t"), 0u);
}

TEST_F(ExecutorTest, ShowTablesListsKinds) {
  ASSERT_TRUE(Run(R"sql(
    CREATE TABLE A (a INT, c INT) PARTITIONED ON a;
    CREATE TABLE B (b INT, d INT) PARTITIONED ON b;
    CREATE VIEW jv AS SELECT * FROM A, B WHERE A.c = B.d USING GI;
  )sql")
                  .ok())
      << out_.str();
  out_.str("");
  ASSERT_TRUE(Run("SHOW TABLES;").ok());
  std::string printed = out_.str();
  EXPECT_NE(printed.find("BASE A"), std::string::npos);
  EXPECT_NE(printed.find("VIEW jv"), std::string::npos);
  EXPECT_NE(printed.find("GLOBAL_INDEX"), std::string::npos);
}

TEST_F(ExecutorTest, AggregateViewThroughExecutor) {
  ASSERT_TRUE(Run(R"sql(
    CREATE TABLE A (a INT, c INT) PARTITIONED ON a;
    CREATE TABLE B (b INT, d INT, f DOUBLE) PARTITIONED ON b;
    INSERT INTO B VALUES (1, 5, 1.5), (2, 5, 2.5);
    CREATE VIEW agg AS SELECT A.c, COUNT(*), SUM(B.f) FROM A, B
      WHERE A.c = B.d GROUP BY A.c USING AR;
    INSERT INTO A VALUES (9, 5);
  )sql")
                  .ok())
      << out_.str();
  std::vector<Row> rows = manager_->view("agg")->Contents();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][2], Value{int64_t{2}});
  EXPECT_DOUBLE_EQ(rows[0][3].AsDouble(), 4.0);
}

TEST_F(ExecutorTest, ExplainShowsMaintenancePlans) {
  ASSERT_TRUE(Run(R"sql(
    CREATE TABLE A (a INT, c INT) PARTITIONED ON a;
    CREATE TABLE B (b INT, d INT, f INT) PARTITIONED ON b;
    CREATE TABLE C (g INT, h INT) PARTITIONED ON h;
    CREATE VIEW jv AS SELECT * FROM A, B, C
      WHERE A.c = B.d AND B.f = C.g USING GI;
  )sql")
                  .ok())
      << out_.str();
  out_.str("");
  ASSERT_TRUE(Run("EXPLAIN B;").ok());
  std::string printed = out_.str();
  EXPECT_NE(printed.find("view jv"), std::string::npos);
  EXPECT_NE(printed.find("GLOBAL_INDEX"), std::string::npos);
  EXPECT_NE(printed.find("delta(B)"), std::string::npos);
  EXPECT_NE(printed.find("est. cost/tuple"), std::string::npos);
  // A table with no views says so; a missing table errors.
  ASSERT_TRUE(Run("CREATE TABLE lonely (x INT);").ok());
  out_.str("");
  ASSERT_TRUE(Run("EXPLAIN lonely;").ok());
  EXPECT_NE(out_.str().find("no registered views"), std::string::npos);
  EXPECT_FALSE(Run("EXPLAIN missing;").ok());
}

TEST_F(ExecutorTest, ShowCostReportsTracker) {
  ASSERT_TRUE(Run("CREATE TABLE t (k INT) PARTITIONED ON k;").ok());
  out_.str("");
  ASSERT_TRUE(Run("SHOW COST;").ok());
  EXPECT_NE(out_.str().find("CostTracker"), std::string::npos);
}

}  // namespace
}  // namespace pjvm
