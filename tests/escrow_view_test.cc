#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/metrics_registry.h"
#include "tests/view_test_util.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// Escrow (value-lock) maintenance of aggregate join views
// (SystemConfig::escrow_aggregates): hot-group increments apply in place
// under V locks, group birth/death escalates V->X, and the journal folds
// per-transaction deltas at commit. The contract under test everywhere:
// with the knob on, committed view contents are byte-for-byte what the
// eager X-lock path produces, the journal is empty at quiescence, and no
// lock survives its transaction.

/// TwoTableFixture with the concurrency knobs escrow needs (locking on).
struct EscrowFixture {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
  int64_t next_a_key = 0;

  EscrowFixture(int num_nodes, bool escrow, bool mvcc,
                LockPolicy policy = LockPolicy::kWaitDie, int64_t b_keys = 6,
                int64_t fanout = 2) {
    SystemConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.rows_per_page = 4;
    cfg.enable_locking = true;
    cfg.lock_policy = policy;
    cfg.mvcc_reads = mvcc;
    cfg.escrow_aggregates = escrow;
    sys = std::make_unique<ParallelSystem>(cfg);
    sys->CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
    sys->CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
    int64_t bkey = 0;
    for (int64_t k = 0; k < b_keys; ++k) {
      for (int64_t r = 0; r < fanout; ++r) {
        sys->Insert("B", {Value{bkey}, Value{k}, Value{bkey * 10}}).Check();
        ++bkey;
      }
    }
    manager = std::make_unique<ViewManager>(sys.get());
  }

  Row NextARow(int64_t join_key) {
    int64_t k = next_a_key++;
    return {Value{k}, Value{join_key}, Value{k * 100}};
  }
};

// SELECT A.c, COUNT(*), SUM(B.f) FROM A, B WHERE A.c = B.d GROUP BY A.c
JoinViewDef CountSumView() {
  JoinViewDef def;
  def.name = "AGG";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.aggregates = {{AggFn::kCount, {}}, {AggFn::kSum, {"B", "f"}}};
  def.group_by = {{"A", "c"}};
  return def;
}

/// Deterministic op stream: inserts and deletes on a few hot join keys so
/// groups are born, incremented from both sides, and die. Two fixtures fed
/// the same seed see the identical stream.
void RunScript(EscrowFixture& fx, int seed, int steps = 60) {
  Rng rng(seed);
  std::vector<Row> live;
  for (int step = 0; step < steps; ++step) {
    if (step % 12 == 7) {
      // Occasionally grow a group from the B side too.
      Row b = {Value{int64_t{10000 + seed * 1000 + step}}, Value{int64_t{1}},
               Value{int64_t{5}}};
      ASSERT_TRUE(fx.manager->InsertRow("B", b).ok()) << "step " << step;
      continue;
    }
    if (live.empty() || rng.Bernoulli(0.55)) {
      Row row = fx.NextARow(rng.UniformInt(0, 3));
      ASSERT_TRUE(fx.manager->InsertRow("A", row).ok()) << "step " << step;
      live.push_back(row);
    } else {
      size_t pick = rng.Next() % live.size();
      ASSERT_TRUE(fx.manager->DeleteRow("A", live[pick]).ok())
          << "step " << step;
      live.erase(live.begin() + pick);
    }
  }
}

// ------------------------------------------------------------ equivalence

class EscrowEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<MaintenanceMethod, bool>> {};

TEST_P(EscrowEquivalenceTest, MatchesEagerByteForByte) {
  auto [method, mvcc] = GetParam();
  EscrowFixture on(4, /*escrow=*/true, mvcc);
  EscrowFixture off(4, /*escrow=*/false, mvcc);
  ASSERT_NE(on.manager->escrow(), nullptr);
  ASSERT_EQ(off.manager->escrow(), nullptr);
  ASSERT_TRUE(on.manager->RegisterView(CountSumView(), method).ok());
  ASSERT_TRUE(off.manager->RegisterView(CountSumView(), method).ok());

  Counter* ops = MetricsRegistry::Global().counter("pjvm_escrow_ops");
  const uint64_t ops_before = ops->value();
  RunScript(on, 31 + static_cast<int>(method));
  RunScript(off, 31 + static_cast<int>(method));
  // The escrow path actually engaged (this is not eager-vs-eager).
  EXPECT_GT(ops->value(), ops_before);

  EXPECT_EQ(RowBag(on.manager->view("AGG")->Contents()),
            RowBag(off.manager->view("AGG")->Contents()));
  ASSERT_TRUE(on.manager->CheckAllConsistent().ok())
      << on.manager->CheckAllConsistent();
  ASSERT_TRUE(off.manager->CheckAllConsistent().ok())
      << off.manager->CheckAllConsistent();
  // Quiescence: no journal residue, no lock survives its transaction.
  ASSERT_TRUE(on.manager->escrow()->CheckConsistent().ok())
      << on.manager->escrow()->CheckConsistent();
  EXPECT_EQ(on.sys->locks().TotalLocks(), 0u);
}

TEST_P(EscrowEquivalenceTest, CrashRecoveryReplaysEscrowDeltas) {
  auto [method, mvcc] = GetParam();
  EscrowFixture on(3, /*escrow=*/true, mvcc);
  EscrowFixture off(3, /*escrow=*/false, mvcc);
  ASSERT_TRUE(on.manager->RegisterView(CountSumView(), method).ok());
  ASSERT_TRUE(off.manager->RegisterView(CountSumView(), method).ok());
  RunScript(on, 47, /*steps=*/40);
  RunScript(off, 47, /*steps=*/40);

  // Committed escrow increments live in the WAL as logical kEscrowDelta
  // records; a crash must reconstruct exactly the pre-crash groups.
  on.sys->Crash();
  ASSERT_TRUE(on.sys->Recover().ok());
  ASSERT_TRUE(on.manager->RecoverViews().ok());

  EXPECT_EQ(RowBag(on.manager->view("AGG")->Contents()),
            RowBag(off.manager->view("AGG")->Contents()));
  ASSERT_TRUE(on.manager->CheckAllConsistent().ok())
      << on.manager->CheckAllConsistent();
  // More maintenance after recovery keeps working (journal was reset).
  ASSERT_TRUE(on.manager->InsertRow("A", on.NextARow(1)).ok());
  ASSERT_TRUE(on.manager->CheckAllConsistent().ok());
}

std::string EscrowParamName(
    const ::testing::TestParamInfo<std::tuple<MaintenanceMethod, bool>>&
        info) {
  return std::string(MaintenanceMethodToString(std::get<0>(info.param))) +
         (std::get<1>(info.param) ? "Mvcc" : "Locks");
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsBothReadPaths, EscrowEquivalenceTest,
    ::testing::Combine(::testing::Values(MaintenanceMethod::kNaive,
                                         MaintenanceMethod::kAuxRelation,
                                         MaintenanceMethod::kGlobalIndex),
                       ::testing::Bool()),
    EscrowParamName);

// ------------------------------------------------------- birth/death edges

TEST(EscrowGroupLifecycleTest, GroupsVanishAtZeroCountAndAreReborn) {
  EscrowFixture fx(2, /*escrow=*/true, /*mvcc=*/false);
  ASSERT_TRUE(
      fx.manager->RegisterView(CountSumView(), MaintenanceMethod::kAuxRelation)
          .ok());
  Row a = fx.NextARow(2);
  ASSERT_TRUE(fx.manager->InsertRow("A", a).ok());  // Birth: V->X escalation.
  EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 1u);
  Row a2 = fx.NextARow(2);
  ASSERT_TRUE(fx.manager->InsertRow("A", a2).ok());  // Pure escrow increment.
  ASSERT_TRUE(fx.manager->DeleteRow("A", a2).ok());
  // Death: the transaction's own count delta would go negative, so the
  // journal escalates to X and the eager path deletes the group row.
  ASSERT_TRUE(fx.manager->DeleteRow("A", a).ok());
  EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 0u);
  // Rebirth under the same key.
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(2)).ok());
  EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 1u);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  ASSERT_TRUE(fx.manager->escrow()->CheckConsistent().ok());
  EXPECT_EQ(fx.sys->locks().TotalLocks(), 0u);
}

// The group-death race: concurrent increments and decrements drive a hot
// group's COUNT(*) through zero while several transactions hold V locks.
// Two holders that both need the V->X upgrade deadlock unless the policy
// kills one; the killed attempt must roll its journal entries back before
// the bounded retry re-requests locks. Asserts: every client call commits
// (retries absorb the kills), the view matches the oracle, no resurrection
// of a dead group, and neither locks nor journal entries leak.
TEST(EscrowGroupDeathRaceTest, UpgradeDeadlocksResolveUnderBothPolicies) {
  for (LockPolicy policy : {LockPolicy::kWaitDie, LockPolicy::kWoundWait}) {
    SCOPED_TRACE(LockPolicyToString(policy));
    EscrowFixture fx(2, /*escrow=*/true, /*mvcc=*/false, policy,
                     /*b_keys=*/4, /*fanout=*/1);
    ASSERT_TRUE(fx.manager
                    ->RegisterView(CountSumView(),
                                   MaintenanceMethod::kAuxRelation)
                    .ok());
    constexpr int kThreads = 4;
    constexpr int kRounds = 10;
    // Pre-generate each thread's rows single-threaded; all share join key 3
    // so every transaction fights over one group.
    std::vector<std::vector<Row>> rows(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      for (int r = 0; r < kRounds; ++r) rows[t].push_back(fx.NextARow(3));
    }
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&fx, &rows, &failures, t] {
        for (const Row& row : rows[t]) {
          // Insert-then-delete swings the group's count through zero from
          // this thread's perspective; interleaved with the other threads
          // the group is born and dies many times.
          if (!fx.manager->InsertRow("A", row).ok()) ++failures;
          if (!fx.manager->DeleteRow("A", row).ok()) ++failures;
        }
      });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
    // Every insert was deleted: the group must be gone, not resurrected at
    // count zero by a late V-lock increment.
    EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 0u);
    ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
        << fx.manager->CheckAllConsistent();
    // Retry lineage: killed attempts released their V locks and rolled
    // their journal entries back — nothing outlives the storm.
    ASSERT_TRUE(fx.manager->escrow()->CheckConsistent().ok())
        << fx.manager->escrow()->CheckConsistent();
    EXPECT_EQ(fx.sys->locks().TotalLocks(), 0u);
  }
}

// Sustained mixed load on several hot groups (no full deaths): the pure
// escrow fast path under real thread interleavings, checked against the
// from-scratch oracle at the end.
TEST(EscrowGroupDeathRaceTest, ConcurrentIncrementsMatchOracle) {
  EscrowFixture fx(2, /*escrow=*/true, /*mvcc=*/false, LockPolicy::kWaitDie,
                   /*b_keys=*/4, /*fanout=*/2);
  ASSERT_TRUE(
      fx.manager->RegisterView(CountSumView(), MaintenanceMethod::kAuxRelation)
          .ok());
  // Anchor rows keep every group alive through the storm.
  for (int64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(k)).ok());
  }
  constexpr int kThreads = 4;
  constexpr int kOps = 16;
  std::vector<std::vector<Row>> rows(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kOps; ++r) rows[t].push_back(fx.NextARow(r % 4));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fx, &rows, &failures, t] {
      for (size_t i = 0; i < rows[t].size(); ++i) {
        if (!fx.manager->InsertRow("A", rows[t][i]).ok()) ++failures;
        // Delete every other row again to mix decrements in.
        if (i % 2 == 1 && !fx.manager->DeleteRow("A", rows[t][i]).ok()) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  ASSERT_TRUE(fx.manager->escrow()->CheckConsistent().ok());
  EXPECT_EQ(fx.sys->locks().TotalLocks(), 0u);
}

// ----------------------------------------------------- SUM(DOUBLE) bytes

// Floating-point SUM is order-sensitive: (0.1 + 1e16) - 1e16 == 0.0, not
// 0.1. The escrow journal must fold deltas in the same order the eager
// path applies them (commit order; ascending txn id within a provisional
// image), never "optimize" an abort into a subtraction, and produce
// bit-identical doubles to the eager path for the same serial history.
TEST(EscrowDoubleSumTest, FoldOrderMatchesEagerBitForBit) {
  for (bool mvcc : {false, true}) {
    SCOPED_TRACE(mvcc ? "mvcc" : "locks");
    EscrowFixture on(2, /*escrow=*/true, mvcc);
    EscrowFixture off(2, /*escrow=*/false, mvcc);
    for (EscrowFixture* fx : {&on, &off}) {
      TableDef sales;
      sales.name = "sales";
      sales.schema = Schema({{"sk", ValueType::kInt64},
                             {"ck", ValueType::kInt64},
                             {"amount", ValueType::kDouble}});
      sales.partition = PartitionSpec::Hash("sk");
      fx->sys->CreateTable(sales).Check();
      fx->sys->Insert("A", fx->NextARow(2)).Check();
      JoinViewDef def;
      def.name = "REV";
      def.bases = {{"A", "A"}, {"sales", "s"}};
      def.edges = {{{"A", "c"}, {"s", "ck"}}};
      def.group_by = {{"A", "c"}};
      def.aggregates = {{AggFn::kCount, {}}, {AggFn::kSum, {"s", "amount"}}};
      ASSERT_TRUE(
          fx->manager->RegisterView(def, MaintenanceMethod::kAuxRelation)
              .ok());
      // Catastrophic-cancellation script: any fold-order deviation (or an
      // abort implemented as subtraction) changes the result bits.
      Row s1 = {Value{int64_t{1}}, Value{int64_t{2}}, Value{0.1}};
      Row s2 = {Value{int64_t{2}}, Value{int64_t{2}}, Value{1e16}};
      Row s3 = {Value{int64_t{3}}, Value{int64_t{2}}, Value{3.25}};
      ASSERT_TRUE(fx->manager->InsertRow("sales", s1).ok());
      ASSERT_TRUE(fx->manager->InsertRow("sales", s2).ok());
      ASSERT_TRUE(fx->manager->DeleteRow("sales", s2).ok());
      ASSERT_TRUE(fx->manager->InsertRow("sales", s3).ok());
      ASSERT_TRUE(fx->manager->DeleteRow("sales", s1).ok());
    }
    std::vector<Row> got = on.manager->view("REV")->Contents();
    std::vector<Row> want = off.manager->view("REV")->Contents();
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    // Exact Value comparison — for doubles this is bit-for-bit, not
    // epsilon-close.
    EXPECT_EQ(got, want);
    ASSERT_EQ(want.size(), 1u);
    // The eager fold is ((0.1 + 1e16) - 1e16 + 3.25) - 0.1: the 0.1 was
    // absorbed into 1e16's rounding, so anything but the eager order shows.
    // (This also means the incremental sum — under EITHER path — differs
    // from a from-scratch recompute (3.25 vs 3.15): order sensitivity is
    // inherent to incremental float maintenance, so the recompute oracle
    // only applies once the group has died and been recomputed from rows.)
    EXPECT_EQ(want[0][3].AsDouble(), ((0.1 + 1e16) - 1e16 + 3.25) - 0.1);
    // Drive the group through death (a DOUBLE-sum group, so the V->X
    // escalation path folds doubles too); the empty view satisfies the
    // oracle again.
    Row s3 = {Value{int64_t{3}}, Value{int64_t{2}}, Value{3.25}};
    ASSERT_TRUE(on.manager->DeleteRow("sales", s3).ok());
    ASSERT_TRUE(off.manager->DeleteRow("sales", s3).ok());
    EXPECT_EQ(on.manager->view("REV")->RowCount(), 0u);
    ASSERT_TRUE(on.manager->CheckAllConsistent().ok())
        << on.manager->CheckAllConsistent();
    ASSERT_TRUE(off.manager->CheckAllConsistent().ok());
    ASSERT_TRUE(on.manager->escrow()->CheckConsistent().ok());
  }
}

// ------------------------------------------------------ metrics / EXPLAIN

TEST(EscrowExplainTest, AttributesEscrowWorkToTheTransaction) {
  EscrowFixture fx(2, /*escrow=*/true, /*mvcc=*/false);
  ASSERT_TRUE(
      fx.manager->RegisterView(CountSumView(), MaintenanceMethod::kAuxRelation)
          .ok());
  Counter* grants = MetricsRegistry::Global().counter("pjvm_vlock_grants");
  const uint64_t grants_before = grants->value();
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(1)).ok());  // Birth.
  MaintenanceAnalysis analysis;
  DeltaBatch delta = DeltaBatch::Inserts("A", {fx.NextARow(1)});
  ASSERT_TRUE(fx.manager->ApplyDelta(std::move(delta), &analysis).ok());
  // The second insert is a pure in-place escrow increment.
  EXPECT_GT(analysis.escrow_ops, 0u);
  EXPECT_GT(grants->value(), grants_before);
  EXPECT_NE(analysis.ToString().find("escrow:"), std::string::npos)
      << analysis.ToString();
  EXPECT_NE(analysis.ToJson().find("\"escrow_ops\":"), std::string::npos);
}

}  // namespace
}  // namespace pjvm
