#include <gtest/gtest.h>

#include <memory>

#include "model/analytical.h"
#include "tests/view_test_util.h"
#include "view/view_manager.h"
#include "workload/twotable.h"

namespace pjvm {
namespace {

// These tests close the loop between the two halves of the reproduction:
// the engine's *metered* I/O for the Section 3.1 workload must equal the
// analytical model's closed-form TW, under the same counting rules. The
// model omits the base-relation update and the view update ("the same
// updates must be performed ... for any of the three methods, so we omit
// them"), so the engine side subtracts exactly those charges.

struct Measured {
  double tw = 0.0;       // Model-comparable maintenance I/O.
  uint64_t sends = 0;    // All messages, including the base/view ones.
  size_t view_rows = 0;  // Join tuples produced.
};

Measured MeasureSingleInsert(MaintenanceMethod method, int num_nodes,
                             int64_t fanout, bool clustered_on_d) {
  SystemConfig sys_cfg;
  sys_cfg.num_nodes = num_nodes;
  sys_cfg.rows_per_page = 4;
  auto sys = std::make_unique<ParallelSystem>(sys_cfg);
  TwoTableConfig cfg;
  cfg.b_join_keys = 100;
  cfg.fanout = fanout;
  cfg.b_clustered_on_d = clustered_on_d;
  LoadTwoTable(sys.get(), cfg).Check();
  ViewManager manager(sys.get());
  manager.RegisterView(MakeModelView(), method).Check();

  sys->cost().Reset();
  auto report = manager.InsertRow("A", MakeDeltaA(cfg, 0));
  report.status().Check();

  Measured m;
  m.view_rows = report->view_rows_inserted;
  double insert_w = sys->config().weights.insert;
  // Subtract the base insert and the view inserts, as the model does.
  m.tw = sys->cost().TotalWorkload() - insert_w -
         insert_w * static_cast<double>(m.view_rows);
  m.sends = sys->cost().TotalSends();
  return m;
}

model::ModelParams ParamsFor(int num_nodes, int64_t fanout) {
  model::ModelParams p;
  p.num_nodes = num_nodes;
  p.fanout = static_cast<double>(fanout);
  return p;
}

class TwAgreement : public ::testing::TestWithParam<std::tuple<int, int64_t>> {
};

TEST_P(TwAgreement, AuxRelationMatchesModelExactly) {
  auto [nodes, fanout] = GetParam();
  Measured m =
      MeasureSingleInsert(MaintenanceMethod::kAuxRelation, nodes, fanout, true);
  EXPECT_DOUBLE_EQ(m.tw, model::TwAuxRelation(ParamsFor(nodes, fanout)));
  EXPECT_EQ(m.view_rows, static_cast<size_t>(fanout));
}

TEST_P(TwAgreement, NaiveNonClusteredMatchesModelExactly) {
  auto [nodes, fanout] = GetParam();
  Measured m =
      MeasureSingleInsert(MaintenanceMethod::kNaive, nodes, fanout, false);
  EXPECT_DOUBLE_EQ(m.tw,
                   model::TwNaive(ParamsFor(nodes, fanout), /*clustered=*/false));
}

TEST_P(TwAgreement, NaiveClusteredMatchesModelExactly) {
  auto [nodes, fanout] = GetParam();
  Measured m =
      MeasureSingleInsert(MaintenanceMethod::kNaive, nodes, fanout, true);
  EXPECT_DOUBLE_EQ(m.tw,
                   model::TwNaive(ParamsFor(nodes, fanout), /*clustered=*/true));
}

TEST_P(TwAgreement, GiDistributedNonClusteredMatchesModelExactly) {
  auto [nodes, fanout] = GetParam();
  Measured m = MeasureSingleInsert(MaintenanceMethod::kGlobalIndex, nodes,
                                   fanout, false);
  EXPECT_DOUBLE_EQ(m.tw, model::TwGlobalIndex(ParamsFor(nodes, fanout),
                                              /*distributed_clustered=*/false));
}

TEST_P(TwAgreement, GiDistributedClusteredMatchesModelApproximately) {
  auto [nodes, fanout] = GetParam();
  Measured m = MeasureSingleInsert(MaintenanceMethod::kGlobalIndex, nodes,
                                   fanout, true);
  // The model assumes the N matches spread over exactly K = min(N, L)
  // nodes; hash placement can land them on fewer, making the engine cheaper
  // by the difference. The engine must never exceed the model.
  double predicted = model::TwGlobalIndex(ParamsFor(nodes, fanout),
                                          /*distributed_clustered=*/true);
  EXPECT_LE(m.tw, predicted);
  EXPECT_GE(m.tw, 3.0);  // At least INSERT + SEARCH.
}

std::string TwName(
    const ::testing::TestParamInfo<std::tuple<int, int64_t>>& info) {
  return "L" + std::to_string(std::get<0>(info.param)) + "_N" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwAgreement,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(1, 4, 10)),
                         TwName);

// SEND counts for the two deterministic methods.
TEST(SendAgreementTest, AuxUsesTwoSendsPlusViewRouting) {
  Measured m = MeasureSingleInsert(MaintenanceMethod::kAuxRelation, 8, 4, true);
  // 1 ship to the AR node + 1 ship of the join tuples to the view node; the
  // hash placement can make either hop local (free), never more than 2.
  EXPECT_LE(m.sends, 2u);
}

TEST(SendAgreementTest, NaiveUsesAtLeastLSends) {
  int nodes = 8;
  Measured m = MeasureSingleInsert(MaintenanceMethod::kNaive, nodes, 4, true);
  EXPECT_GE(m.sends, static_cast<uint64_t>(nodes));
  // L broadcast + at most K result sends.
  EXPECT_LE(m.sends, static_cast<uint64_t>(nodes) + 4);
}

// Response-time trend: for the paper's small-update regime, the measured
// per-node maintenance I/O of the AR method shrinks with L while the naive
// method's stays roughly flat (Figures 9 and 14's shape).
TEST(ResponseTrendTest, AuxScalesOutNaiveDoesNot) {
  // B must dwarf the delta (the paper's small-update regime) or the naive
  // method's sort-merge scan would win, as Figure 10 shows it should.
  auto response = [](MaintenanceMethod method, int nodes) {
    SystemConfig sys_cfg;
    sys_cfg.num_nodes = nodes;
    sys_cfg.rows_per_page = 4;
    ParallelSystem sys(sys_cfg);
    TwoTableConfig cfg;
    cfg.b_join_keys = 2048;
    cfg.fanout = 1;
    LoadTwoTable(&sys, cfg).Check();
    ViewManager manager(&sys);
    manager.RegisterView(MakeModelView(), method).Check();
    std::vector<Row> batch;
    for (int64_t i = 0; i < 64; ++i) batch.push_back(MakeDeltaA(cfg, i));
    sys.cost().Reset();
    manager.ApplyDelta(DeltaBatch::Inserts("A", batch)).status().Check();
    return sys.cost().ResponseTime();
  };
  double aux_4 = response(MaintenanceMethod::kAuxRelation, 4);
  double aux_16 = response(MaintenanceMethod::kAuxRelation, 16);
  EXPECT_LT(aux_16, aux_4 * 0.6);  // Near-linear scale-out.
  double naive_4 = response(MaintenanceMethod::kNaive, 4);
  double naive_16 = response(MaintenanceMethod::kNaive, 16);
  // Quadrupling the nodes buys the naive method far less than linear (its
  // sort-merge fallback does shrink |B_i|, so allow up to ~2.5x, not 4x).
  EXPECT_GT(naive_16, naive_4 * 0.4);
  // And AR beats naive outright once L > 3 (the model's Figure 9 regime).
  EXPECT_LT(aux_4, naive_4);
  EXPECT_LT(aux_16, naive_16);
}

}  // namespace
}  // namespace pjvm
