// Multi-way join views (the paper's Section 2.2): a three-relation view,
// the auxiliary relations it requires on each join attribute, the
// maintenance-plan choices that arise when the *middle* relation is
// updated, and the statistics-driven planner that picks among them.

#include <cstdio>

#include "engine/system.h"
#include "sql/parser.h"
#include "view/planner.h"
#include "view/view_manager.h"

using namespace pjvm;

int main() {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  ParallelSystem sys(cfg);

  // suppliers(sk, city) -- parts supplied --> supplies(sk, pk, qty)
  //                         <-- parts(pk, kind)
  TableDef suppliers;
  suppliers.name = "suppliers";
  suppliers.schema =
      Schema({{"sk", ValueType::kInt64}, {"city", ValueType::kString}});
  suppliers.partition = PartitionSpec::Hash("city");
  sys.CreateTable(suppliers).Check();
  TableDef supplies;
  supplies.name = "supplies";
  supplies.schema = Schema({{"sk", ValueType::kInt64},
                            {"pk", ValueType::kInt64},
                            {"qty", ValueType::kInt64}});
  supplies.partition = PartitionSpec::Hash("qty");
  sys.CreateTable(supplies).Check();
  TableDef parts;
  parts.name = "parts";
  parts.schema =
      Schema({{"pk", ValueType::kInt64}, {"kind", ValueType::kString}});
  parts.partition = PartitionSpec::Hash("kind");
  sys.CreateTable(parts).Check();

  const char* cities[] = {"madison", "seattle", "dayton"};
  for (int64_t s = 0; s < 9; ++s) {
    sys.Insert("suppliers", {Value{s}, Value{cities[s % 3]}}).Check();
  }
  for (int64_t p = 0; p < 6; ++p) {
    sys.Insert("parts", {Value{p}, Value{p % 2 ? "bolt" : "nut"}}).Check();
  }
  for (int64_t i = 0; i < 18; ++i) {
    sys.Insert("supplies", {Value{i % 9}, Value{i % 6}, Value{i * 10}}).Check();
  }

  ViewManager manager(&sys);
  auto def = sql::ParseCreateView(
      "CREATE JOIN VIEW supply_chain AS "
      "SELECT s.city, p.kind, u.qty "
      "FROM suppliers s, supplies u, parts p "
      "WHERE s.sk = u.sk AND u.pk = p.pk "
      "PARTITIONED ON s.city;");
  def.status().Check();
  manager.RegisterView(*def, MaintenanceMethod::kAuxRelation).Check();

  std::printf("view: %s\n", def->ToString().c_str());
  std::printf("backfilled %zu rows\n\n",
              manager.view("supply_chain")->RowCount());

  std::printf("auxiliary relations created (one per non-co-partitioned join "
              "attribute):\n");
  for (const std::string& name : manager.ars().TableNames()) {
    std::printf("  %-28s %6zu rows  %8zu bytes\n", name.c_str(),
                sys.RowCount(name), sys.TableBytes(name));
  }

  // The Section 2.2 optimization problem: a delta on the middle relation
  // (`supplies`) can join toward suppliers first or parts first.
  const ViewRegistration* reg = manager.registration("supply_chain");
  FanoutFn live_stats = [&](int base, int col) {
    const std::string& table = reg->bound.base_def(base).name;
    double rows = static_cast<double>(sys.RowCount(table));
    (void)col;
    return rows > 0 ? rows / 6.0 : 1.0;  // Rough demo statistics.
  };
  std::printf("\nmaintenance plans for a delta on `supplies`:\n");
  for (const MaintenancePlan& plan : EnumerateAllPlans(reg->bound, 1)) {
    std::printf("  %-56s est. cost %.1f\n", plan.ToString(reg->bound).c_str(),
                EstimatePlanCost(reg->bound, plan, live_stats));
  }

  // Updates on the middle relation flow through both auxiliary relations.
  sys.cost().Reset();
  manager.InsertRow("supplies", {Value{2}, Value{3}, Value{999}})
      .status()
      .Check();
  std::printf("\ninsert into supplies: %s\n", sys.cost().ToString().c_str());
  manager.DeleteRow("supplies", {Value{0}, Value{0}, Value{0}})
      .status()
      .Check();
  manager.CheckAllConsistent().Check();
  std::printf("view verified after middle-relation insert + delete: %zu rows\n",
              manager.view("supply_chain")->RowCount());
  return 0;
}
