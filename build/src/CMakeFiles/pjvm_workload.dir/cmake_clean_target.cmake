file(REMOVE_RECURSE
  "libpjvm_workload.a"
)
