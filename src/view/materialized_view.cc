#include "view/materialized_view.h"

#include <map>
#include <unordered_map>

#include "net/message.h"
#include "txn/snapshot_manager.h"

namespace pjvm {

std::vector<Row> MaterializedView::Contents() const {
  if (sys_->config().mvcc_reads) {
    // One snapshot scope around the scan: every node is read at the same
    // commit epoch, so a concurrent ApplyDelta is either fully visible or
    // fully invisible.
    SnapshotScope scope(&sys_->snapshots());
    return sys_->ScanAll(table_name());
  }
  return sys_->ScanAll(table_name());
}

Result<MaterializedView> MaterializedView::Create(ParallelSystem* sys,
                                                  BoundView bound,
                                                  bool merged_layout) {
  TableDef def;
  def.name = bound.def().name;
  def.schema = bound.output_schema();
  def.kind = TableKind::kView;
  if (bound.output_partition_col() >= 0) {
    const std::string& pcol =
        def.schema.column(bound.output_partition_col()).name;
    def.partition = PartitionSpec::Hash(pcol);
    // Under the merged layout the co-clustered tree is the view's ordered
    // access path; a per-fragment index would just charge a second descent
    // per insert for a structure nothing reads.
    if (!merged_layout) {
      def.indexes.push_back(IndexSpec{pcol, /*clustered=*/false});
    }
  } else {
    def.partition = PartitionSpec::RoundRobin();
  }
  PJVM_RETURN_NOT_OK(sys->CreateTable(def));
  return MaterializedView(sys, std::move(bound));
}

int MaterializedView::DestinationOf(const Row& output_row) {
  if (bound_.output_partition_col() >= 0) {
    return sys_->HomeNodeForKey(output_row[bound_.output_partition_col()]);
  }
  // A global aggregate (no GROUP BY) keeps its single row at node 0.
  if (bound_.is_aggregate()) return 0;
  const TableDef* def = *sys_->catalog().Get(table_name());
  return sys_->HomeNodeForRow(*def, output_row);
}

Status MaterializedView::ApplyOutputs(uint64_t txn, int source_node,
                                      std::vector<Row> rows, bool is_delete,
                                      size_t* applied) {
  if (rows.empty()) return Status::OK();
  if (bound_.is_aggregate()) {
    return ApplyAggregateContributions(txn, source_node, std::move(rows),
                                       is_delete, applied);
  }
  std::map<int, std::vector<Row>> by_dest;
  if (is_delete && bound_.output_partition_col() < 0) {
    // Round-robin view: locate each victim by probing nodes in order.
    for (Row& row : rows) {
      int found = -1;
      for (int i = 0; i < sys_->num_nodes(); ++i) {
        NodeLatchGuard latch(*sys_->node(i), LatchMode::kShared);
        const TableFragment* frag = sys_->node(i)->fragment(table_name());
        sys_->cost().ChargeSearch(i);
        if (frag->FindExact(row).ok()) {
          found = i;
          break;
        }
      }
      if (found < 0) {
        return Status::NotFound("view '" + table_name() +
                                "': delete target missing: " + RowToString(row));
      }
      by_dest[found].push_back(std::move(row));
    }
  } else {
    for (Row& row : rows) {
      by_dest[DestinationOf(row)].push_back(std::move(row));
    }
  }
  for (auto& [dest, dest_rows] : by_dest) {
    Message msg;
    msg.kind = is_delete ? MessageKind::kDeleteTuples : MessageKind::kJoinResults;
    msg.from = source_node;
    msg.to = dest;
    msg.table = table_name();
    msg.rows = dest_rows;
    msg.txn_id = txn;
    // Synchronous hop: this thread consumes the message at the destination.
    // A Send/Poll pair here could steal a concurrent transaction's message
    // from the shared queue.
    PJVM_ASSIGN_OR_RETURN(Message delivered,
                          sys_->network().SendAndDeliver(std::move(msg)));
    for (Row& row : delivered.rows) {
      if (is_delete) {
        PJVM_RETURN_NOT_OK(sys_->node(dest)->DeleteExact(txn, table_name(), row));
        if (merged_hook_) {
          PJVM_RETURN_NOT_OK(merged_hook_(txn, dest, row, /*is_delete=*/true));
        }
      } else {
        if (merged_hook_) {
          PJVM_RETURN_NOT_OK(merged_hook_(txn, dest, row, /*is_delete=*/false));
        }
        PJVM_RETURN_NOT_OK(
            sys_->node(dest)->Insert(txn, table_name(), std::move(row)).status());
      }
      ++*applied;
    }
  }
  return Status::OK();
}

namespace {

Value AddValue(const Value& a, const Value& b, bool negate_b) {
  if (a.is_int64()) {
    return Value{a.AsInt64() + (negate_b ? -b.AsInt64() : b.AsInt64())};
  }
  return Value{a.AsDouble() + (negate_b ? -b.AsDouble() : b.AsDouble())};
}

}  // namespace

Status MaterializedView::ApplyAggregateContributions(uint64_t txn,
                                                     int source_node,
                                                     std::vector<Row> rows,
                                                     bool is_delete,
                                                     size_t* applied) {
  int width = bound_.StoredGroupWidth();
  std::map<int, std::vector<Row>> by_dest;
  for (Row& row : rows) by_dest[DestinationOf(row)].push_back(std::move(row));
  for (auto& [dest, dest_rows] : by_dest) {
    Message msg;
    msg.kind = is_delete ? MessageKind::kDeleteTuples : MessageKind::kJoinResults;
    msg.from = source_node;
    msg.to = dest;
    msg.table = table_name();
    msg.rows = dest_rows;
    msg.txn_id = txn;
    PJVM_ASSIGN_OR_RETURN(Message delivered,
                          sys_->network().SendAndDeliver(std::move(msg)));
    Node* node = sys_->node(dest);
    TableFragment* frag = node->fragment(table_name());
    for (Row& contribution : delivered.rows) {
      if (escrow_hook_) {
        PJVM_ASSIGN_OR_RETURN(bool handled,
                              escrow_hook_(txn, dest, contribution, is_delete));
        if (handled) {
          ++*applied;
          continue;
        }
      }
      // Pin the group across this read-modify-write: without the group's X
      // lock taken BEFORE the probe, a concurrent transaction can fold the
      // group between our read of the old image and our DeleteExact of it,
      // turning the delete into a spurious NotFound (the hot-key aggregate
      // race). The id matches what DeleteExact/Insert acquire below, so the
      // re-acquisition there is free; grouped views use the partition
      // column's index-key id (the same one escrow V locks name), global
      // aggregates the fragment id.
      if (txn != kAutoCommitTxnId && sys_->config().enable_locking) {
        LockId group_lock =
            bound_.output_partition_col() >= 0
                ? LockId::IndexKey(
                      dest, table_name(), bound_.output_partition_col(),
                      contribution[bound_.output_partition_col()])
                : LockId::Table(dest, table_name());
        PJVM_RETURN_NOT_OK(
            sys_->locks().Acquire(txn, group_lock, LockMode::kExclusive));
      }
      // Locate the current group row, if any.
      Row old_row;
      bool found = false;
      if (bound_.output_partition_col() >= 0) {
        // One SEARCH through the index on the partitioning group column,
        // then filter by the full group prefix.
        PJVM_ASSIGN_OR_RETURN(
            ProbeResult probe,
            node->IndexProbe(table_name(), bound_.output_partition_col(),
                             contribution[bound_.output_partition_col()]));
        for (Row& candidate : probe.rows) {
          if (std::equal(candidate.begin(), candidate.begin() + width,
                         contribution.begin())) {
            old_row = std::move(candidate);
            found = true;
            break;
          }
        }
      } else {
        // Global aggregate: at most one row, scan the (single-row) fragment.
        NodeLatchGuard latch(*node, LatchMode::kShared);
        sys_->cost().ChargeSearch(dest);
        frag->ForEach([&](LocalRowId, const Row& candidate) {
          old_row = candidate;
          found = true;
          return false;
        });
      }
      if (!found) {
        if (is_delete) {
          return Status::Internal("aggregate view '" + table_name() +
                                  "': delete for a missing group " +
                                  RowToString(contribution));
        }
        PJVM_RETURN_NOT_OK(
            node->Insert(txn, table_name(), std::move(contribution)).status());
        ++*applied;
        continue;
      }
      Row new_row = old_row;
      for (size_t i = width; i < contribution.size(); ++i) {
        new_row[i] = AddValue(new_row[i], contribution[i], is_delete);
      }
      PJVM_RETURN_NOT_OK(node->DeleteExact(txn, table_name(), old_row));
      int64_t count = new_row[bound_.StoredCountIndex()].AsInt64();
      if (count < 0) {
        return Status::Internal("aggregate view '" + table_name() +
                                "': negative group count");
      }
      if (count > 0) {
        PJVM_RETURN_NOT_OK(
            node->Insert(txn, table_name(), std::move(new_row)).status());
      }
      ++*applied;
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> EvaluateViewFromScratch(ParallelSystem* sys,
                                                 const BoundView& bound) {
  int n = bound.num_bases();
  // Connected join order starting from base 0 (Validate guarantees one).
  std::vector<bool> filled(n, false);
  std::vector<int> order = {0};
  filled[0] = true;
  while (static_cast<int>(order.size()) < n) {
    for (const BoundEdge& e : bound.bound_edges()) {
      int next = -1;
      if (filled[e.left_base] && !filled[e.right_base]) next = e.right_base;
      if (filled[e.right_base] && !filled[e.left_base]) next = e.left_base;
      if (next >= 0) {
        filled[next] = true;
        order.push_back(next);
        break;
      }
    }
  }

  // Seed with base order[0]'s selection-filtered needed tuples.
  std::vector<Row> partials;
  {
    int b0 = order[0];
    for (const Row& row : sys->ScanAll(bound.base_def(b0).name)) {
      if (!bound.RowPassesSelections(b0, row)) continue;
      Row working(bound.working_width());
      Row part = bound.ProjectNeeded(b0, row);
      for (size_t j = 0; j < part.size(); ++j) {
        working[bound.needed_offset(b0) + j] = std::move(part[j]);
      }
      partials.push_back(std::move(working));
    }
  }

  std::fill(filled.begin(), filled.end(), false);
  filled[order[0]] = true;
  for (size_t step = 1; step < order.size(); ++step) {
    int target = order[step];
    // Edges between the target and filled bases; the first drives the hash
    // join, the rest are residual filters.
    std::vector<BoundEdge> connecting;
    for (const BoundEdge& e : bound.bound_edges()) {
      if ((e.left_base == target && filled[e.right_base]) ||
          (e.right_base == target && filled[e.left_base])) {
        connecting.push_back(e);
      }
    }
    if (connecting.empty()) {
      return Status::Internal("evaluate: disconnected join order");
    }
    BoundEdge drive = connecting[0];
    int target_col = drive.left_base == target ? drive.left_col : drive.right_col;
    int source_base = drive.left_base == target ? drive.right_base : drive.left_base;
    int source_col = drive.left_base == target ? drive.right_col : drive.left_col;

    // Build a hash table over the target base's (filtered, needed) tuples.
    std::unordered_map<Value, std::vector<Row>, ValueHash> table;
    PJVM_ASSIGN_OR_RETURN(int key_pos, bound.NeededPos(target, target_col));
    for (const Row& row : sys->ScanAll(bound.base_def(target).name)) {
      if (!bound.RowPassesSelections(target, row)) continue;
      Row part = bound.ProjectNeeded(target, row);
      table[part[key_pos]].push_back(std::move(part));
    }

    PJVM_ASSIGN_OR_RETURN(int probe_idx,
                          bound.WorkingIndex(source_base, source_col));
    std::vector<Row> next;
    for (const Row& working : partials) {
      auto it = table.find(working[probe_idx]);
      if (it == table.end()) continue;
      for (const Row& part : it->second) {
        Row extended = working;
        for (size_t j = 0; j < part.size(); ++j) {
          extended[bound.needed_offset(target) + j] = part[j];
        }
        // Residual edge checks.
        bool ok = true;
        for (size_t e = 1; e < connecting.size() && ok; ++e) {
          const BoundEdge& edge = connecting[e];
          PJVM_ASSIGN_OR_RETURN(int li,
                                bound.WorkingIndex(edge.left_base, edge.left_col));
          PJVM_ASSIGN_OR_RETURN(
              int ri, bound.WorkingIndex(edge.right_base, edge.right_col));
          ok = extended[li] == extended[ri];
        }
        if (ok) next.push_back(std::move(extended));
      }
    }
    partials = std::move(next);
    filled[target] = true;
  }

  std::vector<Row> outputs;
  outputs.reserve(partials.size());
  for (const Row& working : partials) {
    outputs.push_back(bound.OutputRow(working));
  }
  // Aggregate views store folded group rows, not raw join tuples.
  return bound.FoldAggregates(outputs);
}

}  // namespace pjvm
