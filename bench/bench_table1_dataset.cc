// Reproduces Table 1: the TPC-R-style test data set sizes.
//
// The paper loads customer 0.15M / orders 1.5M / lineitem 6M (25MB / 178MB /
// 764MB on Teradata). We generate the same schema and fanouts at a
// configurable scale (default ~50x down so the bench runs in seconds) and
// report rows and bytes; the row *ratios* (1 : 10 : 40 in the paper's data
// via the 1-order/4-lineitem fanouts at its scale) are what the maintenance
// experiments depend on.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace pjvm;
  int64_t customers = argc > 1 ? std::atoll(argv[1]) : 3000;

  SystemConfig cfg;
  cfg.num_nodes = 8;
  cfg.rows_per_page = 16;
  ParallelSystem sys(cfg);
  TpcrConfig tpcr;
  tpcr.customers = customers;
  tpcr.extra_customer_keys = 256;
  LoadTpcr(&sys, GenerateTpcr(tpcr)).Check();

  bench::PrintHeader("Table 1: test data set (scaled TPC-R)");
  std::printf("%-12s %12s %14s %14s\n", "relation", "rows", "bytes",
              "paper_rows");
  const char* paper_rows[] = {"0.15M", "1.5M", "6M"};
  int i = 0;
  bench::BenchReport report("table1_dataset");
  bench::JsonWriter relations;
  relations.BeginArray();
  for (const TableSizeRow& row : TableSizes(sys)) {
    std::printf("%-12s %12zu %14zu %14s\n", row.name.c_str(), row.rows,
                row.bytes, paper_rows[i]);
    relations.BeginObject()
        .Key("relation").Str(row.name)
        .Key("rows").Uint(row.rows)
        .Key("bytes").Uint(row.bytes)
        .Key("paper_rows").Str(paper_rows[i])
        .EndObject();
    ++i;
  }
  relations.EndArray();
  std::printf("\nfanouts: 1 order/customer key, 4 lineitems/order "
              "(as in Section 3.3)\n");
  report.Add("relations", relations.str());
  report.Write();
  return 0;
}
