# Empty dependencies file for pjvm_workload.
# This may be replaced when dependencies are built.
