file(REMOVE_RECURSE
  "CMakeFiles/pjvm_engine.dir/engine/catalog.cc.o"
  "CMakeFiles/pjvm_engine.dir/engine/catalog.cc.o.d"
  "CMakeFiles/pjvm_engine.dir/engine/node.cc.o"
  "CMakeFiles/pjvm_engine.dir/engine/node.cc.o.d"
  "CMakeFiles/pjvm_engine.dir/engine/system.cc.o"
  "CMakeFiles/pjvm_engine.dir/engine/system.cc.o.d"
  "libpjvm_engine.a"
  "libpjvm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
