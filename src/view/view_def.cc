#include "view/view_def.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace pjvm {

const char* PredOpToString(PredOp op) {
  switch (op) {
    case PredOp::kEq:
      return "=";
    case PredOp::kNe:
      return "<>";
    case PredOp::kLt:
      return "<";
    case PredOp::kLe:
      return "<=";
    case PredOp::kGt:
      return ">";
    case PredOp::kGe:
      return ">=";
  }
  return "?";
}

bool SelectionPred::Eval(const Value& v) const {
  switch (op) {
    case PredOp::kEq:
      return v == constant;
    case PredOp::kNe:
      return v != constant;
    case PredOp::kLt:
      return v < constant;
    case PredOp::kLe:
      return v <= constant;
    case PredOp::kGt:
      return v > constant;
    case PredOp::kGe:
      return v >= constant;
  }
  return false;
}

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  if (fn == AggFn::kCount) return "COUNT(*)";
  return std::string(AggFnToString(fn)) + "(" + column.ToString() + ")";
}

Result<int> JoinViewDef::BaseIndexOfAlias(const std::string& alias) const {
  for (size_t i = 0; i < bases.size(); ++i) {
    if (bases[i].alias == alias) return static_cast<int>(i);
  }
  return Status::NotFound("view '" + name + "': no base aliased '" + alias + "'");
}

std::string JoinViewDef::ToString() const {
  std::string out = "CREATE VIEW " + name + " AS SELECT ";
  if (projection.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) out += ", ";
      out += projection[i].ToString();
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < bases.size(); ++i) {
    if (i > 0) out += ", ";
    out += bases[i].table + " " + bases[i].alias;
  }
  out += " WHERE ";
  bool first = true;
  for (const JoinEdge& e : edges) {
    if (!first) out += " AND ";
    out += e.ToString();
    first = false;
  }
  for (const SelectionPred& p : selections) {
    if (!first) out += " AND ";
    out += p.ToString();
    first = false;
  }
  if (!group_by.empty() || !aggregates.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i].ToString();
    }
    out += " AGGREGATES ";
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (i > 0) out += ", ";
      out += aggregates[i].ToString();
    }
  }
  if (partition_on.has_value()) {
    out += " PARTITIONED ON " + partition_on->ToString();
  }
  return out;
}

namespace {

Status CheckColumnRef(const JoinViewDef& def, const Catalog& catalog,
                      const ColumnRef& ref, const char* what) {
  PJVM_ASSIGN_OR_RETURN(int base, def.BaseIndexOfAlias(ref.alias));
  PJVM_ASSIGN_OR_RETURN(const TableDef* table,
                        catalog.Get(def.bases[base].table));
  if (!table->schema.HasColumn(ref.column)) {
    return Status::InvalidArgument("view '" + def.name + "': " + what + " " +
                                   ref.ToString() + " names a column '" +
                                   ref.column + "' not in table '" +
                                   table->name + "'");
  }
  return Status::OK();
}

}  // namespace

Status JoinViewDef::Validate(const Catalog& catalog) const {
  if (name.empty()) {
    return Status::InvalidArgument("view name must be non-empty");
  }
  if (bases.empty()) {
    return Status::InvalidArgument("view '" + name + "' has no base relations");
  }
  std::set<std::string> aliases;
  std::set<std::string> tables;
  for (const BaseRef& base : bases) {
    if (!catalog.Has(base.table)) {
      return Status::NotFound("view '" + name + "': base table '" + base.table +
                              "' does not exist");
    }
    if (!aliases.insert(base.alias).second) {
      return Status::InvalidArgument("view '" + name + "': duplicate alias '" +
                                     base.alias + "'");
    }
    if (!tables.insert(base.table).second) {
      return Status::NotImplemented(
          "view '" + name + "': table '" + base.table +
          "' appears more than once (self-joins are not supported)");
    }
  }
  if (bases.size() >= 2 && edges.empty()) {
    return Status::InvalidArgument("view '" + name +
                                   "' joins multiple tables with no edge");
  }
  for (const JoinEdge& edge : edges) {
    PJVM_RETURN_NOT_OK(CheckColumnRef(*this, catalog, edge.left, "join edge"));
    PJVM_RETURN_NOT_OK(CheckColumnRef(*this, catalog, edge.right, "join edge"));
    if (edge.left.alias == edge.right.alias) {
      return Status::InvalidArgument("view '" + name + "': join edge " +
                                     edge.ToString() + " joins a base to itself");
    }
    // Equi-join endpoints must have comparable (identical) types.
    int lb = *BaseIndexOfAlias(edge.left.alias);
    int rb = *BaseIndexOfAlias(edge.right.alias);
    const TableDef* lt = *catalog.Get(bases[lb].table);
    const TableDef* rt = *catalog.Get(bases[rb].table);
    ValueType ltype = lt->schema.column(*lt->schema.ColumnIndex(edge.left.column)).type;
    ValueType rtype = rt->schema.column(*rt->schema.ColumnIndex(edge.right.column)).type;
    if (ltype != rtype) {
      return Status::InvalidArgument("view '" + name + "': join edge " +
                                     edge.ToString() + " compares " +
                                     ValueTypeToString(ltype) + " with " +
                                     ValueTypeToString(rtype));
    }
  }
  for (const SelectionPred& pred : selections) {
    PJVM_RETURN_NOT_OK(CheckColumnRef(*this, catalog, pred.column, "selection"));
  }
  for (const ColumnRef& ref : projection) {
    PJVM_RETURN_NOT_OK(CheckColumnRef(*this, catalog, ref, "projection"));
  }
  if (is_aggregate()) {
    if (!projection.empty()) {
      return Status::InvalidArgument(
          "view '" + name +
          "': aggregate views define their output via GROUP BY; the "
          "projection must be empty");
    }
    for (const ColumnRef& ref : group_by) {
      PJVM_RETURN_NOT_OK(CheckColumnRef(*this, catalog, ref, "group-by column"));
    }
    for (const AggregateSpec& agg : aggregates) {
      if (agg.fn == AggFn::kCount) continue;
      PJVM_RETURN_NOT_OK(
          CheckColumnRef(*this, catalog, agg.column, "aggregate column"));
      int base = *BaseIndexOfAlias(agg.column.alias);
      const TableDef* table = *catalog.Get(bases[base].table);
      ValueType type =
          table->schema.column(*table->schema.ColumnIndex(agg.column.column))
              .type;
      if (type == ValueType::kString) {
        return Status::InvalidArgument("view '" + name + "': cannot " +
                                       agg.ToString() + " over a STRING column");
      }
    }
    if (partition_on.has_value() &&
        std::find(group_by.begin(), group_by.end(), *partition_on) ==
            group_by.end()) {
      return Status::InvalidArgument(
          "view '" + name + "': an aggregate view's partitioning attribute "
          "must be one of its group-by columns");
    }
  } else if (!group_by.empty()) {
    return Status::InvalidArgument("view '" + name +
                                   "': GROUP BY requires at least one aggregate");
  }
  if (partition_on.has_value()) {
    PJVM_RETURN_NOT_OK(
        CheckColumnRef(*this, catalog, *partition_on, "partitioning attribute"));
    if (!is_aggregate() && !projection.empty() &&
        std::find(projection.begin(), projection.end(), *partition_on) ==
            projection.end()) {
      return Status::InvalidArgument(
          "view '" + name + "': partitioning attribute " +
          partition_on->ToString() + " must appear in the projection");
    }
  }
  // The join graph must be connected so every base can be reached from the
  // updated one during maintenance.
  std::vector<bool> reached(bases.size(), false);
  std::vector<int> frontier = {0};
  reached[0] = true;
  while (!frontier.empty()) {
    int cur = frontier.back();
    frontier.pop_back();
    for (const JoinEdge& edge : edges) {
      int lb = *BaseIndexOfAlias(edge.left.alias);
      int rb = *BaseIndexOfAlias(edge.right.alias);
      int other = -1;
      if (lb == cur && !reached[rb]) other = rb;
      if (rb == cur && !reached[lb]) other = lb;
      if (other >= 0) {
        reached[other] = true;
        frontier.push_back(other);
      }
    }
  }
  for (size_t i = 0; i < bases.size(); ++i) {
    if (!reached[i]) {
      return Status::InvalidArgument("view '" + name + "': base '" +
                                     bases[i].alias +
                                     "' is not connected to the join graph");
    }
  }
  return Status::OK();
}

Result<BoundView> BoundView::Bind(const JoinViewDef& def,
                                  const Catalog& catalog) {
  PJVM_RETURN_NOT_OK(def.Validate(catalog));
  BoundView bound;
  bound.def_ = def;
  int n = static_cast<int>(def.bases.size());
  bound.base_defs_.reserve(n);
  for (const BaseRef& base : def.bases) {
    PJVM_ASSIGN_OR_RETURN(const TableDef* table, catalog.Get(base.table));
    bound.base_defs_.push_back(*table);
  }

  // Resolve edges.
  for (const JoinEdge& edge : def.edges) {
    BoundEdge be;
    PJVM_ASSIGN_OR_RETURN(be.left_base, def.BaseIndexOfAlias(edge.left.alias));
    PJVM_ASSIGN_OR_RETURN(
        be.left_col,
        bound.base_defs_[be.left_base].schema.ColumnIndex(edge.left.column));
    PJVM_ASSIGN_OR_RETURN(be.right_base, def.BaseIndexOfAlias(edge.right.alias));
    PJVM_ASSIGN_OR_RETURN(
        be.right_col,
        bound.base_defs_[be.right_base].schema.ColumnIndex(edge.right.column));
    bound.bound_edges_.push_back(be);
  }

  // Resolve selections per base.
  bound.preds_.resize(n);
  for (const SelectionPred& pred : def.selections) {
    PJVM_ASSIGN_OR_RETURN(int base, def.BaseIndexOfAlias(pred.column.alias));
    BoundPred bp;
    PJVM_ASSIGN_OR_RETURN(
        bp.col, bound.base_defs_[base].schema.ColumnIndex(pred.column.column));
    bp.op = pred.op;
    bp.constant = pred.constant;
    bound.preds_[base].push_back(bp);
  }

  // Needed columns per base: projection (or all if SELECT *), group-by and
  // aggregate columns, join columns, selection columns, and the view
  // partitioning attribute.
  std::vector<std::set<int>> needed(n);
  if (def.projection.empty() && !def.is_aggregate()) {
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < bound.base_defs_[i].schema.num_columns(); ++c) {
        needed[i].insert(c);
      }
    }
  } else {
    for (const ColumnRef& ref : def.projection) {
      int base = *def.BaseIndexOfAlias(ref.alias);
      needed[base].insert(*bound.base_defs_[base].schema.ColumnIndex(ref.column));
    }
    for (const ColumnRef& ref : def.group_by) {
      int base = *def.BaseIndexOfAlias(ref.alias);
      needed[base].insert(*bound.base_defs_[base].schema.ColumnIndex(ref.column));
    }
    for (const AggregateSpec& agg : def.aggregates) {
      if (agg.fn == AggFn::kCount) continue;
      int base = *def.BaseIndexOfAlias(agg.column.alias);
      needed[base].insert(
          *bound.base_defs_[base].schema.ColumnIndex(agg.column.column));
    }
  }
  for (const BoundEdge& be : bound.bound_edges_) {
    needed[be.left_base].insert(be.left_col);
    needed[be.right_base].insert(be.right_col);
  }
  for (int i = 0; i < n; ++i) {
    for (const BoundPred& bp : bound.preds_[i]) needed[i].insert(bp.col);
  }
  if (def.partition_on.has_value()) {
    int base = *def.BaseIndexOfAlias(def.partition_on->alias);
    needed[base].insert(
        *bound.base_defs_[base].schema.ColumnIndex(def.partition_on->column));
  }

  bound.needed_cols_.resize(n);
  bound.needed_schemas_.resize(n);
  bound.needed_offsets_.resize(n);
  int offset = 0;
  for (int i = 0; i < n; ++i) {
    bound.needed_cols_[i].assign(needed[i].begin(), needed[i].end());
    bound.needed_schemas_[i] =
        bound.base_defs_[i].schema.Project(bound.needed_cols_[i]);
    bound.needed_offsets_[i] = offset;
    offset += static_cast<int>(bound.needed_cols_[i].size());
  }
  bound.working_width_ = offset;

  if (def.is_aggregate()) {
    // Stored row layout: [group columns..., __count, aggregate values...].
    std::vector<Column> out_cols;
    for (const ColumnRef& ref : def.group_by) {
      int base = *def.BaseIndexOfAlias(ref.alias);
      int full_col = *bound.base_defs_[base].schema.ColumnIndex(ref.column);
      PJVM_ASSIGN_OR_RETURN(int idx, bound.WorkingIndex(base, full_col));
      bound.group_indices_.push_back(idx);
      out_cols.push_back(
          Column{ref.ToString(),
                 bound.base_defs_[base].schema.column(full_col).type});
    }
    out_cols.push_back(Column{"__count", ValueType::kInt64});
    for (const AggregateSpec& agg : def.aggregates) {
      BoundAggregate ba;
      ba.fn = agg.fn;
      if (agg.fn == AggFn::kCount) {
        ba.working_index = -1;
        ba.type = ValueType::kInt64;
      } else {
        int base = *def.BaseIndexOfAlias(agg.column.alias);
        int full_col =
            *bound.base_defs_[base].schema.ColumnIndex(agg.column.column);
        PJVM_ASSIGN_OR_RETURN(ba.working_index,
                              bound.WorkingIndex(base, full_col));
        ba.type = bound.base_defs_[base].schema.column(full_col).type;
      }
      out_cols.push_back(Column{agg.ToString(), ba.type});
      bound.bound_aggregates_.push_back(ba);
    }
    bound.output_schema_ = Schema(std::move(out_cols));
    if (!def.group_by.empty()) {
      bound.output_partition_col_ = 0;
      if (def.partition_on.has_value()) {
        for (size_t i = 0; i < def.group_by.size(); ++i) {
          if (def.group_by[i] == *def.partition_on) {
            bound.output_partition_col_ = static_cast<int>(i);
            break;
          }
        }
      }
    }
    return bound;
  }

  // Output row: projection applied to the working row.
  std::vector<Column> out_cols;
  if (def.projection.empty()) {
    for (int i = 0; i < n; ++i) {
      for (size_t j = 0; j < bound.needed_cols_[i].size(); ++j) {
        bound.output_indices_.push_back(bound.needed_offsets_[i] +
                                        static_cast<int>(j));
        out_cols.push_back(
            Column{def.bases[i].alias + "." + bound.needed_schemas_[i].column(j).name,
                   bound.needed_schemas_[i].column(j).type});
      }
    }
  } else {
    for (const ColumnRef& ref : def.projection) {
      int base = *def.BaseIndexOfAlias(ref.alias);
      int full_col = *bound.base_defs_[base].schema.ColumnIndex(ref.column);
      PJVM_ASSIGN_OR_RETURN(int idx, bound.WorkingIndex(base, full_col));
      bound.output_indices_.push_back(idx);
      out_cols.push_back(
          Column{ref.ToString(),
                 bound.base_defs_[base].schema.column(full_col).type});
    }
  }
  bound.output_schema_ = Schema(std::move(out_cols));

  if (def.partition_on.has_value()) {
    int base = *def.BaseIndexOfAlias(def.partition_on->alias);
    int full_col =
        *bound.base_defs_[base].schema.ColumnIndex(def.partition_on->column);
    PJVM_ASSIGN_OR_RETURN(int working_idx, bound.WorkingIndex(base, full_col));
    // Find that working index inside the output indices.
    for (size_t i = 0; i < bound.output_indices_.size(); ++i) {
      if (bound.output_indices_[i] == working_idx) {
        bound.output_partition_col_ = static_cast<int>(i);
        break;
      }
    }
    if (bound.output_partition_col_ < 0) {
      return Status::Internal("view '" + def.name +
                              "': partition attribute missing from output");
    }
  }
  return bound;
}

Result<int> BoundView::NeededPos(int base, int full_col) const {
  const std::vector<int>& cols = needed_cols_[base];
  auto it = std::lower_bound(cols.begin(), cols.end(), full_col);
  if (it == cols.end() || *it != full_col) {
    return Status::InvalidArgument(
        "column " + std::to_string(full_col) + " of base " +
        std::to_string(base) + " is not needed by view '" + def_.name + "'");
  }
  return static_cast<int>(it - cols.begin());
}

Result<int> BoundView::WorkingIndex(int base, int full_col) const {
  PJVM_ASSIGN_OR_RETURN(int pos, NeededPos(base, full_col));
  return needed_offsets_[base] + pos;
}

bool BoundView::RowPassesSelections(int base, const Row& full_row) const {
  for (const BoundPred& bp : preds_[base]) {
    SelectionPred pred;
    pred.op = bp.op;
    pred.constant = bp.constant;
    if (!pred.Eval(full_row[bp.col])) return false;
  }
  return true;
}

Row BoundView::ProjectNeeded(int base, const Row& full_row) const {
  return ProjectRow(full_row, needed_cols_[base]);
}

Row BoundView::OutputRow(const Row& working) const {
  if (!is_aggregate()) return ProjectRow(working, output_indices_);
  Row out;
  out.reserve(StoredGroupWidth() + 1 + bound_aggregates_.size());
  for (int idx : group_indices_) out.push_back(working[idx]);
  out.push_back(Value{int64_t{1}});  // __count contribution.
  for (const BoundAggregate& agg : bound_aggregates_) {
    switch (agg.fn) {
      case AggFn::kCount:
        out.push_back(Value{int64_t{1}});
        break;
      case AggFn::kSum:
        out.push_back(working[agg.working_index]);
        break;
    }
  }
  return out;
}

namespace {

Value AddValues(const Value& a, const Value& b, bool negate_b) {
  if (a.is_int64()) {
    return Value{a.AsInt64() + (negate_b ? -b.AsInt64() : b.AsInt64())};
  }
  return Value{a.AsDouble() + (negate_b ? -b.AsDouble() : b.AsDouble())};
}

}  // namespace

std::vector<Row> BoundView::FoldAggregates(const std::vector<Row>& rows) const {
  if (!is_aggregate()) return rows;
  // Keyed by the group prefix; values accumulate count + aggregates.
  std::unordered_map<Row, Row, RowHash> groups;
  int width = StoredGroupWidth();
  for (const Row& contribution : rows) {
    Row key(contribution.begin(), contribution.begin() + width);
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(std::move(key), contribution);
      continue;
    }
    Row& acc = it->second;
    for (size_t i = width; i < contribution.size(); ++i) {
      acc[i] = AddValues(acc[i], contribution[i], /*negate_b=*/false);
    }
  }
  std::vector<Row> out;
  out.reserve(groups.size());
  for (auto& [key, row] : groups) out.push_back(std::move(row));
  return out;
}

std::vector<int> BoundView::EdgesIncidentTo(int base) const {
  std::vector<int> out;
  for (size_t i = 0; i < bound_edges_.size(); ++i) {
    if (bound_edges_[i].left_base == base || bound_edges_[i].right_base == base) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace pjvm
