#include <gtest/gtest.h>

#include "sql/executor.h"
#include "tests/view_test_util.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// ----------------------------------------------------- View deregistration

TEST(UnregisterViewTest, DropsViewTableAndStructures) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  EXPECT_EQ(fx.manager->ars().TableNames().size(), 2u);
  ASSERT_TRUE(fx.manager->UnregisterView("JV").ok());
  EXPECT_FALSE(fx.sys->catalog().Has("JV"));
  EXPECT_TRUE(fx.manager->ars().TableNames().empty());
  EXPECT_EQ(fx.manager->view("JV"), nullptr);
  // A delta after the drop maintains nothing and still succeeds.
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
}

TEST(UnregisterViewTest, SharedArSurvivesUntilLastView) {
  TwoTableFixture fx(4, 8, 2);
  JoinViewDef v1 = fx.MakeView("JV1");
  JoinViewDef v2 = fx.MakeView("JV2", false);
  ASSERT_TRUE(
      fx.manager->RegisterView(v1, MaintenanceMethod::kAuxRelation).ok());
  ASSERT_TRUE(
      fx.manager->RegisterView(v2, MaintenanceMethod::kAuxRelation).ok());
  EXPECT_EQ(fx.manager->ars().TableNames().size(), 2u);
  ASSERT_TRUE(fx.manager->UnregisterView("JV1").ok());
  // JV2 still needs the ARs.
  EXPECT_EQ(fx.manager->ars().TableNames().size(), 2u);
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(5)).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  ASSERT_TRUE(fx.manager->UnregisterView("JV2").ok());
  EXPECT_TRUE(fx.manager->ars().TableNames().empty());
}

TEST(UnregisterViewTest, GiReleasedAtZeroReferences) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kGlobalIndex)
                  .ok());
  EXPECT_EQ(fx.manager->gis().TableNames().size(), 2u);
  ASSERT_TRUE(fx.manager->UnregisterView("JV").ok());
  EXPECT_TRUE(fx.manager->gis().TableNames().empty());
}

TEST(UnregisterViewTest, NameCanBeReusedAfterDrop) {
  TwoTableFixture fx(2, 5, 1);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
                  .ok());
  ASSERT_TRUE(fx.manager->UnregisterView("JV").ok());
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(2)).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(UnregisterViewTest, UnknownViewIsNotFound) {
  TwoTableFixture fx(2, 5, 1);
  EXPECT_TRUE(fx.manager->UnregisterView("ghost").IsNotFound());
}

TEST(UnregisterViewTest, DropViewStatementWorks) {
  TwoTableFixture fx(2, 5, 1);
  sql::Executor executor(fx.manager.get());
  std::ostringstream out;
  ASSERT_TRUE(executor
                  .Execute(
                      "CREATE VIEW jv AS SELECT * FROM A, B WHERE A.c = B.d;",
                      out)
                  .ok())
      << out.str();
  ASSERT_TRUE(executor.Execute("DROP VIEW jv;", out).ok());
  EXPECT_FALSE(fx.sys->catalog().Has("jv"));
  EXPECT_FALSE(executor.Execute("DROP VIEW jv;", out).ok());
  EXPECT_FALSE(executor.Execute("DROP TABLE A;", out).ok());
}

// ---------------------------------------------------------- Checkpointing

TEST(CheckpointTest, RecoveryRestoresSnapshotPlusSuffix) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i)).ok());
  }
  ASSERT_TRUE(fx.sys->Checkpoint().ok());
  // WALs are truncated by the checkpoint.
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(fx.sys->node(n)->wal().size(), 0u) << "node " << n;
  }
  // Post-checkpoint work, including a delete of pre-checkpoint data.
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(6)).ok());
  ASSERT_TRUE(fx.manager->DeleteRow("A", {Value{1}, Value{1}, Value{100}}).ok());
  auto base_before = RowBag(fx.sys->ScanAll("A"));
  auto view_before = RowBag(fx.manager->view("JV")->Contents());

  fx.sys->Crash();
  ASSERT_TRUE(fx.sys->Recover().ok());
  ASSERT_TRUE(fx.manager->RebuildGlobalIndexes().ok());
  EXPECT_EQ(RowBag(fx.sys->ScanAll("A")), base_before);
  EXPECT_EQ(RowBag(fx.manager->view("JV")->Contents()), view_before);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

TEST(CheckpointTest, RefusedWhileTransactionInFlight) {
  TwoTableFixture fx(2, 4, 1);
  uint64_t txn = fx.sys->Begin();
  ASSERT_TRUE(fx.sys->Insert("A", fx.NextARow(1), txn).ok());
  EXPECT_TRUE(fx.sys->Checkpoint().IsAborted());
  ASSERT_TRUE(fx.sys->Commit(txn).ok());
  EXPECT_TRUE(fx.sys->Checkpoint().ok());
}

TEST(CheckpointTest, UncommittedWorkAfterCheckpointStillRollsBack) {
  TwoTableFixture fx(4, 4, 1);
  ASSERT_TRUE(fx.sys->Insert("A", fx.NextARow(0)).ok());
  ASSERT_TRUE(fx.sys->Checkpoint().ok());
  uint64_t txn = fx.sys->Begin();
  ASSERT_TRUE(fx.sys->Insert("A", fx.NextARow(1), txn).ok());
  fx.sys->Crash();  // Txn never committed.
  ASSERT_TRUE(fx.sys->Recover().ok());
  EXPECT_EQ(fx.sys->RowCount("A"), 1u);
}

TEST(CheckpointTest, RepeatedCheckpointsKeepLatestState) {
  TwoTableFixture fx(2, 4, 1);
  ASSERT_TRUE(fx.sys->Insert("A", fx.NextARow(0)).ok());
  ASSERT_TRUE(fx.sys->Checkpoint().ok());
  ASSERT_TRUE(fx.sys->Insert("A", fx.NextARow(1)).ok());
  ASSERT_TRUE(fx.sys->Checkpoint().ok());
  ASSERT_TRUE(fx.sys->Insert("A", fx.NextARow(2)).ok());
  fx.sys->Crash();
  ASSERT_TRUE(fx.sys->Recover().ok());
  EXPECT_EQ(fx.sys->RowCount("A"), 3u);
  EXPECT_TRUE(fx.sys->CheckInvariants().ok());
}

TEST(CheckpointTest, DroppedTableObsoletesItsSnapshot) {
  TwoTableFixture fx(2, 4, 1);
  TableDef extra = MakeTableDef("X", CSchema(), "g");
  fx.sys->CreateTable(extra).Check();
  fx.sys->Insert("X", {Value{1}, Value{2}, Value{3}}).Check();
  ASSERT_TRUE(fx.sys->Checkpoint().ok());
  ASSERT_TRUE(fx.sys->DropTable("X").ok());
  fx.sys->Crash();
  ASSERT_TRUE(fx.sys->Recover().ok());
  EXPECT_FALSE(fx.sys->catalog().Has("X"));
  EXPECT_TRUE(fx.sys->CheckInvariants().ok());
}

}  // namespace
}  // namespace pjvm
