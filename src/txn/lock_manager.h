#ifndef PJVM_TXN_LOCK_MANAGER_H_
#define PJVM_TXN_LOCK_MANAGER_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace pjvm {

/// \brief Lock modes: shared (readers), exclusive (writers), and value
/// (escrow increments on aggregate group rows — compatible with other value
/// locks, conflicting with both readers and writers).
enum class LockMode { kShared = 0, kExclusive, kValue };

const char* LockModeToString(LockMode mode);

/// \brief How a conflicting Acquire is resolved.
enum class LockPolicy {
  /// Conflicts fail immediately with Aborted; the caller rolls back and
  /// retries. Deadlock-free by construction, but every conflict is a
  /// client-visible abort.
  kNoWait = 0,
  /// Wait-die deadlock avoidance: an *older* requester (smaller txn id)
  /// parks on the entry's condition variable until the conflict clears or
  /// a timeout fires; a *younger* requester dies (Aborted) immediately.
  kWaitDie,
  /// Wound-wait deadlock avoidance: an *older* requester wounds every
  /// younger conflicting holder (they abort at their next Acquire or
  /// wakeup) and then parks until the conflict clears; a *younger*
  /// requester parks behind the older holder. Waits-for edges point
  /// young -> old and wounded transactions always release, so cycles
  /// cannot persist.
  kWoundWait,
};

const char* LockPolicyToString(LockPolicy policy);

/// \brief Identity of a lockable resource: a key of a table's fragment at
/// one node, or the whole fragment (key_hash absent).
struct LockId {
  int node = -1;
  std::string table;
  /// Hash of the locked key value; 0 + whole_table=true locks the fragment.
  uint64_t key_hash = 0;
  bool whole_table = false;

  static LockId Key(int node, std::string table, const Value& key) {
    return LockId{node, std::move(table), key.Hash(), false};
  }
  /// A key value within one indexed column (so probes of A.c = 5 conflict
  /// with writers of rows whose c = 5, but not with other columns' keys).
  static LockId IndexKey(int node, std::string table, int column,
                         const Value& key) {
    uint64_t h = key.Hash() ^ (0x9e3779b97f4a7c15ULL * (column + 1));
    return LockId{node, std::move(table), h, false};
  }
  static LockId Table(int node, std::string table) {
    return LockId{node, std::move(table), 0, true};
  }

  friend bool operator<(const LockId& a, const LockId& b) {
    return std::tie(a.node, a.table, a.whole_table, a.key_hash) <
           std::tie(b.node, b.table, b.whole_table, b.key_hash);
  }
  std::string ToString() const;
};

/// \brief Strict two-phase locking with a configurable conflict policy.
///
/// Under the default **wait-die** policy a conflicting Acquire blocks when
/// the requester is older (smaller txn id) than every conflicting holder —
/// it parks on the contended entry's condition variable until ReleaseAll
/// wakes it or `wait_timeout_ms` fires — and dies with Aborted when any
/// conflicting holder is older. Because a transaction only ever waits for
/// younger transactions, every waits-for edge points old → young and cycles
/// are impossible; no waits-for graph is needed. Timeouts also return
/// Aborted, so the caller's abort-and-retry path handles both uniformly.
/// **Wound-wait** inverts the victim choice: an older requester wounds the
/// younger holders (they observe the wound and abort at their next Acquire
/// or wakeup) and waits for them to release; a younger requester simply
/// waits behind the older holder. The legacy **no-wait** policy (every
/// conflict aborts instantly) remains available for comparison runs —
/// bench_contention measures all three.
///
/// Two execution contexts must never block regardless of policy (see
/// common/worker_context.h): node-executor workers, whose FIFO queues would
/// suffer head-of-line scheduling deadlocks, and threads holding a node
/// latch, which the lock holder may need to make progress. For them a
/// would-wait decision degrades to an immediate Aborted.
///
/// Locks are held until ReleaseAll at commit/abort (strictness). A
/// transaction's own locks never conflict with it, and a shared lock it
/// holds upgrades to exclusive when it is the only conflicting holder.
/// The wait-die test is re-evaluated on every wakeup: a new older holder
/// arriving while we slept kills the waiter.
///
/// **Value (escrow) locks.** `LockMode::kValue` implements the paper-family
/// V lock for commutative aggregate increments (view/escrow.h). The
/// compatibility matrix:
///
///             held S    held V    held X
///   want S      ok        —         —
///   want V      —         ok        —
///   want X      —         —         —
///
/// Two maintenance transactions incrementing the same COUNT/SUM group row
/// both hold V on its index key and proceed in parallel; a reader's S probe
/// or a writer's X still conflicts, so snapshots stay consistent. A V→X
/// upgrade (group birth/death — the non-commutative edges) goes through the
/// normal conflict loop: it waits for (or kills, per policy) the other V
/// holders, and its grant therefore implies the upgrader is the sole
/// holder. V grants and V→X upgrades are counted in `pjvm_vlock_grants` /
/// `pjvm_vlock_upgrades`.
///
/// Table-granularity locks conflict with every key of that fragment, so a
/// sort-merge scan can take one fragment lock instead of thousands of key
/// locks.
///
/// **Sharding.** The lock table is split into `num_shards` shards, each with
/// its own mutex and entry map, so acquires, parks, and release-wakeups on
/// disjoint fragments never contend on a common mutex. The shard key is the
/// (node, table) pair — not the full lock id — because correctness requires
/// two whole-fragment operations to be atomic within one shard:
/// CollectConflicts checks table-lock ↔ key-lock coverage across every entry
/// of the fragment, and ReleaseAll wakes waiters parked anywhere on the
/// released fragment. Failed shard try-locks are counted in
/// `pjvm_lock_shard_contention`.
///
/// **Lock escalation.** A bulk maintenance transaction takes one key lock per
/// written row plus one per index key — a 10k-row delta fills a fragment's
/// shard with ~20k entries. When `escalation_threshold` is non-zero and a
/// transaction's key-lock count on one (node, table) fragment crosses it, the
/// granting Acquire escalates in place: it acquires the fragment-granularity
/// lock (exclusive if any of the key locks is exclusive, shared otherwise)
/// through the normal conflict loop — so all three policies, lineage ages,
/// and `WorkerContext::MustNotBlock` apply exactly as for any other acquire —
/// and then releases the transaction's key entries the fragment lock now
/// covers, waking their waiters so they re-evaluate against the fragment
/// lock. Because the fragment and its keys share a shard, the swap is atomic
/// under one shard mutex: no moment exists where the transaction holds
/// neither the keys nor the fragment. Later key acquires on the escalated
/// fragment are answered by the coverage fast path without creating entries.
/// If the fragment lock cannot be granted (no-wait conflict, wait-die kill,
/// a wound, a timeout, or a would-wait in a non-blocking context), the
/// Acquire that triggered escalation returns Aborted and the caller's
/// abort-and-retry path — e.g. the ViewManager maintenance retry loop, which
/// keeps lineage ages across attempts — resolves it. Escalations are counted
/// in `pjvm_lock_escalations` / `pjvm_lock_entries_reclaimed` and reported
/// per transaction (EXPLAIN ANALYZE) via EscalationStatsOf.
class LockManager {
 public:
  explicit LockManager(int num_shards = kDefaultShards);

  /// Acquires (or upgrades) a lock. Aborted when the conflict policy kills
  /// the request (no-wait conflict, wait-die death, a wound, a wait
  /// timeout, or a would-wait in a context that must not block).
  Status Acquire(uint64_t txn_id, const LockId& id, LockMode mode);

  /// Releases everything the transaction holds (commit or abort), wakes
  /// waiters parked on the released entries, and clears any wound flag —
  /// the transaction is finished either way.
  void ReleaseAll(uint64_t txn_id);

  /// Number of distinct resources the transaction holds locks on.
  size_t HeldCount(uint64_t txn_id) const;
  /// True if `txn_id` holds a lock on `id` at least as strong as `mode` —
  /// either the exact entry or, for a key lock, a covering fragment lock
  /// (what an escalated transaction holds instead of its key entries).
  bool Holds(uint64_t txn_id, const LockId& id, LockMode mode) const;

  /// Total live lock entries (tests / introspection).
  size_t TotalLocks() const;

  /// High-water mark of (entry, holder) pairs in the fullest single shard
  /// since construction / the last ResetPeakEntries. This is the number the
  /// escalation threshold bounds: without escalation a bulk delta's peak
  /// tracks its row count; with it, roughly the threshold.
  size_t PeakShardEntries() const;
  void ResetPeakEntries();

  /// Per-transaction escalation tally, for EXPLAIN ANALYZE. Valid while the
  /// transaction still holds locks (read it before ReleaseAll clears it).
  struct TxnEscalationStats {
    uint64_t escalations = 0;
    uint64_t entries_reclaimed = 0;
  };
  TxnEscalationStats EscalationStatsOf(uint64_t txn_id) const;

  /// Drops every lock (crash recovery: all in-flight txns are aborted) and
  /// wakes all waiters; their conflicts are gone, so they acquire.
  void Clear();

  /// Registers a priority timestamp for `txn_id` that differs from its id.
  /// Wait-die and wound-wait order transactions by age; a retry loop that
  /// restarts an aborted transaction under a fresh id passes the lineage's
  /// FIRST id here so the restart keeps its original timestamp — the
  /// textbook anti-starvation rule (a restarted transaction is never again
  /// the youngest). Cleared by ReleaseAll/Clear.
  void SetAge(uint64_t txn_id, uint64_t age);

  LockPolicy policy() const { return policy_; }
  void set_policy(LockPolicy policy) { policy_ = policy; }
  /// Upper bound on one blocking wait; expiry returns Aborted.
  void set_wait_timeout_ms(int ms) { wait_timeout_ms_ = ms; }
  int wait_timeout_ms() const { return wait_timeout_ms_; }

  /// Re-shards the (empty) lock table. Only legal before any lock is held;
  /// a call while entries exist is ignored (tests re-use managers).
  void set_num_shards(int n);
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Key-lock count per (txn, fragment) at which the granting Acquire
  /// escalates to the fragment lock. 0 (the default here; engines configure
  /// SystemConfig::lock_escalation_threshold) disables escalation.
  void set_escalation_threshold(int n) { escalation_threshold_ = std::max(0, n); }
  int escalation_threshold() const { return escalation_threshold_; }

  static constexpr int kDefaultShards = 16;

 private:
  struct Entry {
    // Holders by txn with their strongest mode.
    std::map<uint64_t, LockMode> holders;
    // Present while any txn is parked on this entry. Owned by shared_ptr so
    // a waiter can keep it alive across entry erasure (last holder released
    // while others still wait).
    std::shared_ptr<std::condition_variable> waiters;
    int waiter_count = 0;
  };

  /// Key-lock footprint of one transaction on one (node, table) fragment —
  /// keyed txn-first so ReleaseAll can drop a transaction's range.
  using FragKey = std::tuple<uint64_t, int, std::string>;

  /// One independent slice of the lock table. All entries of one
  /// (node, table) fragment live in the same shard (see class comment).
  struct Shard {
    mutable std::mutex mu;
    std::map<LockId, Entry> locks;
    std::map<uint64_t, std::set<LockId>> by_txn;
    /// Live key-lock (non-whole_table) counts per (txn, fragment); what the
    /// escalation threshold is compared against.
    std::map<FragKey, size_t> key_counts;
    /// Live (entry, holder) pairs in this shard and their high-water mark.
    size_t entry_holders = 0;
    size_t peak_entry_holders = 0;
  };

  Shard& ShardOf(const LockId& id) {
    return const_cast<Shard&>(
        static_cast<const LockManager*>(this)->ShardOf(id));
  }
  const Shard& ShardOf(const LockId& id) const;

  /// Collects holders (other than `txn_id`) conflicting with the request,
  /// considering table-vs-key coverage (a table lock covers all keys and
  /// vice versa). Empty means the lock is grantable. `shard.mu` held.
  static void CollectConflicts(const Shard& shard, uint64_t txn_id,
                               const LockId& id, LockMode mode,
                               std::set<uint64_t>* out);
  static Status ConflictAborted(uint64_t txn_id, const LockId& id,
                                LockMode mode,
                                const std::set<uint64_t>& holders,
                                const char* why);
  static void Grant(Shard& shard, uint64_t txn_id, const LockId& id,
                    LockMode mode);

  /// The conflict / policy / park loop of Acquire, entered with `lock` (on
  /// `shard.mu`) held; may release and re-take it while parked. Both the
  /// client-visible Acquire and the escalation path run through it, so
  /// policy semantics are identical for the two.
  Status AcquireLocked(std::unique_lock<std::mutex>& lock, Shard& shard,
                       uint64_t txn_id, const LockId& id, LockMode mode);

  /// If `txn_id`'s key-lock count on `id`'s fragment has reached the
  /// threshold, swaps the key entries for one fragment lock (see the class
  /// comment). Called with `lock` held, immediately after a key-lock grant;
  /// a non-OK status aborts the triggering Acquire.
  Status MaybeEscalateLocked(std::unique_lock<std::mutex>& lock, Shard& shard,
                             uint64_t txn_id, const LockId& id);
  static bool Compatible(LockMode held, LockMode wanted) {
    // S/S and V/V are the only compatible pairs: readers share, escrow
    // increments commute, and everything else conflicts (see the class
    // comment's matrix).
    return held == wanted && held != LockMode::kExclusive;
  }
  /// Least upper bound of two modes a single transaction holds on one
  /// resource: equal modes stay, any mix joins to exclusive (S+V demands
  /// both read- and increment-stability, which only X gives — and the mix
  /// can only arise for a sole holder, since S and V conflict across txns).
  static LockMode ModeJoin(LockMode a, LockMode b) {
    return a == b ? a : LockMode::kExclusive;
  }

  /// The priority timestamp wait-die/wound-wait compare: the registered
  /// age if SetAge was called for this transaction, its id otherwise.
  uint64_t AgeOf(uint64_t txn_id) const;

  /// True if `txn_id` has been wounded (and should abort).
  bool IsWounded(uint64_t txn_id) const;
  /// Wounds every conflicting holder younger than `txn_id`; wakes any that
  /// are parked. Called with a shard mutex held (lock order: shard → wound).
  void WoundYoungerHolders(uint64_t txn_id, const std::set<uint64_t>& holders);

  std::vector<std::unique_ptr<Shard>> shards_;
  LockPolicy policy_ = LockPolicy::kNoWait;
  int wait_timeout_ms_ = 500;
  int escalation_threshold_ = 0;

  /// Per-transaction escalation tallies (EXPLAIN ANALYZE). Leaf mutex like
  /// age_mu_: taken under shard mutexes, never the reverse.
  mutable std::mutex esc_mu_;
  std::map<uint64_t, TxnEscalationStats> esc_stats_;

  /// Wound-wait victim state. Ordered strictly after any shard mutex; never
  /// held while taking a shard mutex.
  mutable std::mutex wound_mu_;
  std::set<uint64_t> wounded_;
  /// Where each parked transaction sleeps, so a wound can wake its victim
  /// promptly (the victim re-checks its wound flag on every wakeup).
  std::map<uint64_t, std::shared_ptr<std::condition_variable>> parked_;

  /// Retry-lineage timestamps (SetAge). Leaf mutex: taken under shard or
  /// wound mutexes, never the reverse.
  mutable std::mutex age_mu_;
  std::map<uint64_t, uint64_t> ages_;
};

}  // namespace pjvm

#endif  // PJVM_TXN_LOCK_MANAGER_H_
