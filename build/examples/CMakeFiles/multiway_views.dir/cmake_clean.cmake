file(REMOVE_RECURSE
  "CMakeFiles/multiway_views.dir/multiway_views.cpp.o"
  "CMakeFiles/multiway_views.dir/multiway_views.cpp.o.d"
  "multiway_views"
  "multiway_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiway_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
