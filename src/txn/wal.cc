#include "txn/wal.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace pjvm {

const char* LogRecordTypeToString(LogRecordType type) {
  switch (type) {
    case LogRecordType::kInsert:
      return "INSERT";
    case LogRecordType::kDelete:
      return "DELETE";
    case LogRecordType::kPrepare:
      return "PREPARE";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kAbort:
      return "ABORT";
    case LogRecordType::kEscrowDelta:
      return "ESCROW_DELTA";
  }
  return "UNKNOWN";
}

std::string LogRecord::ToString() const {
  std::string out = "[" + std::to_string(lsn) + " txn=" + std::to_string(txn_id) +
                    " " + LogRecordTypeToString(type);
  if (!table.empty()) out += " " + table;
  if (!row.empty()) out += " " + RowToString(row);
  out += "]";
  return out;
}

uint64_t Wal::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = next_lsn_++;
  uint64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  // Free forcing: appends are durable immediately (the original model).
  if (force_ns_ == 0) durable_lsn_ = lsn;
  return lsn;
}

Status Wal::Force(uint64_t lsn) {
  static LatencyHistogram* batch_size =
      MetricsRegistry::Global().histogram("pjvm_group_commit_batch_size");
  static LatencyHistogram* waits_ns =
      MetricsRegistry::Global().histogram("pjvm_group_commit_waits_ns");

  std::unique_lock<std::mutex> lock(mu_);
  if (lsn >= next_lsn_) lsn = next_lsn_ - 1;
  if (force_ns_ == 0 || durable_lsn_ >= lsn) return Status::OK();

  // The simulated device write. Sleeps wall-clock time only — forcing is a
  // latency model, not an I/O primitive, so it must never move the
  // CostTracker counters (the equivalence suites compare them bit-exactly).
  auto device_force = [this, &lock](uint64_t target) {
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::nanoseconds(force_ns_));
    lock.lock();
    durable_lsn_ = std::max(durable_lsn_, target);
  };

  if (!group_commit_) {
    // Per-txn force: every committer pays its own device write, one at a
    // time (the contention bench's baseline mode). A committer that arrives
    // while another force is in flight does NOT ride that round even if it
    // covers its LSN — sharing an in-progress device write with concurrent
    // committers is exactly the optimization group commit adds, so the
    // ablation baseline must not get it for free.
    while (force_in_progress_) {
      force_cv_.wait(lock);
    }
    force_in_progress_ = true;
    device_force(lsn);
    force_in_progress_ = false;
    force_cv_.notify_all();
    return Status::OK();
  }

  ++round_requests_;
  uint64_t wait_start_ns = 0;
  for (;;) {
    if (durable_lsn_ >= lsn) {
      // Follower: a leader's round covered our LSN while we parked.
      if (wait_start_ns != 0) {
        waits_ns->Record(Tracer::NowNs() - wait_start_ns);
      }
      return Status::OK();
    }
    if (!force_in_progress_) break;  // become this round's leader
    if (wait_start_ns == 0) wait_start_ns = Tracer::NowNs();
    force_cv_.wait(lock);
  }

  // Leader: hold the force open briefly so concurrent committers' appends
  // join this round, then force everything logged so far in one write.
  force_in_progress_ = true;
  if (window_us_ > 0 || window_hook_) {
    // The hook (a test seam) runs with the window open and the log unlocked,
    // so whatever it appends deterministically joins this round.
    std::function<void()> hook = window_hook_;
    lock.unlock();
    if (hook) hook();
    if (window_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(window_us_));
    }
    lock.lock();
  }
  uint64_t target = next_lsn_ - 1;  // everything appended up to now
  uint64_t batch = round_requests_;
  round_requests_ = 0;
  device_force(target);
  batch_size->Record(batch);
  force_in_progress_ = false;
  force_cv_.notify_all();
  return Status::OK();
}

void Wal::Clear() {
  static Counter* checkpoint_forces =
      MetricsRegistry::Global().counter("pjvm_wal_checkpoint_forces");

  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t tail = next_lsn_ - 1;
  if (force_ns_ > 0 && durable_lsn_ < tail) {
    // An unforced tail exists. Wait out any in-flight force round (it may
    // already cover it), then pay the device write ourselves: truncation
    // advances the durable watermark, and a watermark that outruns the
    // device turns a later DiscardUnforced "crash" into silent corruption.
    while (force_in_progress_) force_cv_.wait(lock);
    if (durable_lsn_ < tail) {
      force_in_progress_ = true;
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::nanoseconds(force_ns_));
      lock.lock();
      durable_lsn_ = std::max(durable_lsn_, tail);
      force_in_progress_ = false;
      force_cv_.notify_all();
      checkpoint_forces->Increment();
    }
  }
  // Drop only the checkpointed prefix: records appended while the force
  // slept are not covered by this checkpoint and stay in the log.
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [tail](const LogRecord& rec) {
                                  return rec.lsn <= tail;
                                }),
                 records_.end());
  durable_lsn_ = std::max(durable_lsn_, tail);
}

void Wal::DiscardUnforced() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.erase(
      std::remove_if(records_.begin(), records_.end(),
                     [this](const LogRecord& rec) {
                       return rec.lsn > durable_lsn_;
                     }),
      records_.end());
}

void Wal::ReplayCommitted(
    const std::function<bool(uint64_t)>& is_committed,
    const std::function<void(const LogRecord&)>& apply) const {
  for (const LogRecord& rec : records_) {
    if (rec.type != LogRecordType::kInsert &&
        rec.type != LogRecordType::kDelete &&
        rec.type != LogRecordType::kEscrowDelta) {
      continue;
    }
    if (!is_committed(rec.txn_id)) continue;
    apply(rec);
  }
}

}  // namespace pjvm
