#include <gtest/gtest.h>

#include "tests/view_test_util.h"
#include "view/view_manager.h"
#include "workload/tpcr.h"
#include "workload/update_stream.h"
#include "workload/zipf.h"

namespace pjvm {
namespace {

// The capstone soak test: a TPC-R warehouse carrying FIVE views at once —
// JV1 under every maintenance method, the 3-way JV2, and an aggregate view —
// fed by skewed update streams against all three base tables, interleaved
// with crashes, recoveries, checkpoints, and a view drop. After every phase,
// every view must equal its from-scratch recomputation and every auxiliary
// structure must be exact.
class WarehouseSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemConfig cfg;
    cfg.num_nodes = 4;
    cfg.rows_per_page = 8;
    sys_ = std::make_unique<ParallelSystem>(cfg);
    tpcr_.customers = 300;
    tpcr_.extra_customer_keys = 128;
    LoadTpcr(sys_.get(), GenerateTpcr(tpcr_)).Check();
    manager_ = std::make_unique<ViewManager>(sys_.get());

    JoinViewDef jv1_naive = MakeJv1();
    jv1_naive.name = "JV1_naive";
    JoinViewDef jv1_gi = MakeJv1();
    jv1_gi.name = "JV1_gi";
    manager_->RegisterView(MakeJv1(), MaintenanceMethod::kAuxRelation).Check();
    manager_->RegisterView(jv1_naive, MaintenanceMethod::kNaive).Check();
    manager_->RegisterView(jv1_gi, MaintenanceMethod::kGlobalIndex).Check();
    manager_->RegisterView(MakeJv2(), MaintenanceMethod::kAuxRelation).Check();

    JoinViewDef agg;
    agg.name = "rev_by_cust";
    agg.bases = {{"customer", "c"}, {"orders", "o"}};
    agg.edges = {{{"c", "custkey"}, {"o", "custkey"}}};
    agg.group_by = {{"c", "custkey"}};
    agg.aggregates = {{AggFn::kCount, {}}, {AggFn::kSum, {"o", "totalprice"}}};
    manager_->RegisterView(agg, MaintenanceMethod::kGlobalIndex).Check();
  }

  void VerifyAll(const char* phase) {
    Status st = manager_->CheckAllConsistent();
    ASSERT_TRUE(st.ok()) << phase << ": " << st;
    // The three JV1 replicas agree exactly.
    auto bag = RowBag(manager_->view("JV1")->Contents());
    EXPECT_EQ(bag, RowBag(manager_->view("JV1_naive")->Contents())) << phase;
    EXPECT_EQ(bag, RowBag(manager_->view("JV1_gi")->Contents())) << phase;
  }

  std::unique_ptr<ParallelSystem> sys_;
  std::unique_ptr<ViewManager> manager_;
  TpcrConfig tpcr_;
};

TEST_F(WarehouseSoakTest, SurvivesEverythingAtOnce) {
  VerifyAll("after setup");

  // Phase 1: skewed customer churn (inserts, deletes, updates).
  TpcrConfig capture = tpcr_;
  UpdateStreamGenerator customers(
      "customer", UpdateMix{0.5, 0.25, 0.25}, 101,
      [capture](int64_t i) { return MakeDeltaCustomer(capture, i); },
      [](const Row& row, Rng& rng) {
        Row out = row;
        out[1] = Value{rng.UniformDouble() * 5000.0};
        return out;
      });
  for (int b = 0; b < 6; ++b) {
    ASSERT_TRUE(manager_->ApplyDelta(customers.NextBatch(6)).ok()) << b;
  }
  VerifyAll("after customer churn");

  // Phase 2: Zipf-skewed new orders for existing customers (with their
  // lineitems arriving as separate transactions on another table).
  ZipfGenerator zipf(tpcr_.customers, 1.0, 55);
  int64_t next_orderkey = 1000000;
  for (int b = 0; b < 4; ++b) {
    std::vector<Row> orders_batch;
    std::vector<Row> lineitem_batch;
    for (int i = 0; i < 5; ++i) {
      int64_t orderkey = next_orderkey++;
      orders_batch.push_back({Value{orderkey}, Value{zipf.Next()},
                              Value{double(orderkey % 997)}});
      for (int l = 0; l < 2; ++l) {
        lineitem_batch.push_back({Value{orderkey}, Value{int64_t{l}},
                                  Value{int64_t{b}}, Value{1.0}, Value{0.05}});
      }
    }
    ASSERT_TRUE(
        manager_->ApplyDelta(DeltaBatch::Inserts("orders", orders_batch)).ok());
    ASSERT_TRUE(
        manager_->ApplyDelta(DeltaBatch::Inserts("lineitem", lineitem_batch))
            .ok());
  }
  VerifyAll("after order/lineitem streams");

  // Phase 3: crash, recover, rebuild GIs, keep going.
  sys_->Crash();
  ASSERT_TRUE(sys_->Recover().ok());
  ASSERT_TRUE(manager_->RebuildGlobalIndexes().ok());
  VerifyAll("after crash+recover");
  ASSERT_TRUE(manager_->ApplyDelta(customers.NextBatch(5)).ok());
  VerifyAll("after post-recovery churn");

  // Phase 4: checkpoint, more churn, crash again — recovery replays only
  // the post-checkpoint suffix.
  ASSERT_TRUE(sys_->Checkpoint().ok());
  ASSERT_TRUE(manager_->ApplyDelta(customers.NextBatch(5)).ok());
  sys_->Crash();
  ASSERT_TRUE(sys_->Recover().ok());
  ASSERT_TRUE(manager_->RebuildGlobalIndexes().ok());
  VerifyAll("after checkpoint+crash");

  // Phase 5: drop one JV1 replica mid-life; the others keep working.
  ASSERT_TRUE(manager_->UnregisterView("JV1_naive").ok());
  ASSERT_TRUE(manager_->ApplyDelta(customers.NextBatch(5)).ok());
  Status st = manager_->CheckAllConsistent();
  ASSERT_TRUE(st.ok()) << "after view drop: " << st;
  EXPECT_EQ(RowBag(manager_->view("JV1")->Contents()),
            RowBag(manager_->view("JV1_gi")->Contents()));

  // Phase 6: a failed maintenance transaction leaves no trace.
  auto before = RowBag(manager_->view("JV2")->Contents());
  sys_->txns().InjectFailure(FailurePoint::kAfterPrepare);
  EXPECT_FALSE(manager_->ApplyDelta(customers.NextBatch(4)).ok());
  Status rec = sys_->Recover();
  ASSERT_TRUE(rec.ok()) << rec;
  ASSERT_TRUE(manager_->RebuildGlobalIndexes().ok());
  EXPECT_EQ(RowBag(manager_->view("JV2")->Contents()), before);
  st = manager_->CheckAllConsistent();
  ASSERT_TRUE(st.ok()) << "after injected failure: " << st;
}

TEST_F(WarehouseSoakTest, LongRandomizedChurnStaysConsistent) {
  Rng rng(2026);
  UpdateStreamGenerator customers(
      "customer", UpdateMix{0.6, 0.2, 0.2}, 7,
      [cfg = tpcr_](int64_t i) { return MakeDeltaCustomer(cfg, i); },
      [](const Row& row, Rng& r) {
        Row out = row;
        out[1] = Value{r.UniformDouble() * 1000.0};
        return out;
      });
  for (int b = 0; b < 25; ++b) {
    ASSERT_TRUE(manager_->ApplyDelta(customers.NextBatch(4)).ok()) << b;
    if (b % 10 == 9) VerifyAll("periodic");
  }
  VerifyAll("final");
}

// Crash matrix: every maintenance method x every 2PC failure point. The
// injected crash hits the Nth maintenance transaction; whatever the logs
// decided must hold after recovery, and the views must match from-scratch.
class CrashMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<MaintenanceMethod, FailurePoint>> {};

TEST_P(CrashMatrixTest, AtomicityHoldsAtEveryFailurePoint) {
  auto [method, failure] = GetParam();
  TwoTableFixture fx(4, 10, 2);
  ASSERT_TRUE(fx.manager->RegisterView(fx.MakeView("JV"), method).ok());
  // Two committed batches, then a batch whose commit crashes.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i)).ok());
  }
  size_t base_before = fx.sys->RowCount("A");
  auto view_before = RowBag(fx.manager->view("JV")->Contents());
  fx.sys->txns().InjectFailure(failure);
  EXPECT_FALSE(fx.manager->InsertRow("A", fx.NextARow(5)).ok());
  ASSERT_TRUE(fx.sys->Recover().ok());
  ASSERT_TRUE(fx.manager->RebuildGlobalIndexes().ok());
  if (failure == FailurePoint::kAfterDecision) {
    // The decision was durable: the transaction committed.
    EXPECT_EQ(fx.sys->RowCount("A"), base_before + 1);
  } else {
    EXPECT_EQ(fx.sys->RowCount("A"), base_before);
    EXPECT_EQ(RowBag(fx.manager->view("JV")->Contents()), view_before);
  }
  Status st = fx.manager->CheckAllConsistent();
  ASSERT_TRUE(st.ok()) << st;
  // The system keeps working after recovery.
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(7)).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

std::string CrashMatrixName(
    const ::testing::TestParamInfo<CrashMatrixTest::ParamType>& info) {
  std::string name = MaintenanceMethodToString(std::get<0>(info.param));
  switch (std::get<1>(info.param)) {
    case FailurePoint::kBeforePrepare:
      name += "_BeforePrepare";
      break;
    case FailurePoint::kAfterPrepare:
      name += "_AfterPrepare";
      break;
    case FailurePoint::kAfterDecision:
      name += "_AfterDecision";
      break;
    case FailurePoint::kNone:
      name += "_None";
      break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CrashMatrixTest,
    ::testing::Combine(::testing::Values(MaintenanceMethod::kNaive,
                                         MaintenanceMethod::kAuxRelation,
                                         MaintenanceMethod::kGlobalIndex),
                       ::testing::Values(FailurePoint::kBeforePrepare,
                                         FailurePoint::kAfterPrepare,
                                         FailurePoint::kAfterDecision)),
    CrashMatrixName);

}  // namespace
}  // namespace pjvm
