file(REMOVE_RECURSE
  "CMakeFiles/pjvm_txn.dir/txn/lock_manager.cc.o"
  "CMakeFiles/pjvm_txn.dir/txn/lock_manager.cc.o.d"
  "CMakeFiles/pjvm_txn.dir/txn/txn_manager.cc.o"
  "CMakeFiles/pjvm_txn.dir/txn/txn_manager.cc.o.d"
  "CMakeFiles/pjvm_txn.dir/txn/wal.cc.o"
  "CMakeFiles/pjvm_txn.dir/txn/wal.cc.o.d"
  "libpjvm_txn.a"
  "libpjvm_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
