#ifndef PJVM_VIEW_PLANNER_H_
#define PJVM_VIEW_PLANNER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief One step of a maintenance plan: join the partial results (which
/// cover the already-filled bases) with `target_base`.
struct PlanStep {
  /// Base being brought in by this step.
  int target_base = -1;
  /// Full-schema column of the target used for routing and probing.
  int target_col = -1;
  /// Already-filled base providing the join key, and its column.
  int source_base = -1;
  int source_col = -1;
  /// Additional edges between the target and already-filled bases that must
  /// be re-verified after the probe (cyclic join graphs).
  std::vector<BoundEdge> residual;
};

/// \brief Order in which the non-updated bases are joined when a delta
/// arrives on `updated_base` (Section 2.2's optimization problem: "there are
/// many choices as to how to use the auxiliary relations").
struct MaintenancePlan {
  int updated_base = -1;
  std::vector<PlanStep> steps;

  std::string ToString(const BoundView& view) const;
};

/// Estimated average join fanout of probing `base` on its `full_col` (rows
/// per distinct key). Supplied from live table statistics.
using FanoutFn = std::function<double(int base, int full_col)>;

/// \brief Greedy statistics-driven planner: repeatedly joins the reachable
/// base whose probe column has the smallest estimated fanout, keeping
/// intermediate result sizes small.
Result<MaintenancePlan> PlanMaintenance(const BoundView& view, int updated_base,
                                        const FanoutFn& fanout);

/// Estimated matches in (base, full_col) for one specific key value —
/// exact when an index exists, histogram-based otherwise.
using KeyFanoutFn =
    std::function<double(int base, int full_col, const Value& key)>;

/// \brief Delta-aware greedy planner: candidate steps whose join key comes
/// from the *updated* base are scored with the actual key values of this
/// delta (averaged through `key_fanout`), so a batch that hits a skewed
/// column's cold keys plans differently from one hitting its hot keys.
/// Steps keyed by not-yet-joined values fall back to `avg_fanout`.
Result<MaintenancePlan> PlanMaintenanceForDelta(
    const BoundView& view, int updated_base, const std::vector<Row>& delta_rows,
    const FanoutFn& avg_fanout, const KeyFanoutFn& key_fanout);

/// \brief All valid join orders (for the plan-choice ablation study).
/// Exponential in the number of bases; fine for the 3-5 base views the paper
/// considers.
std::vector<MaintenancePlan> EnumerateAllPlans(const BoundView& view,
                                               int updated_base);

/// \brief Cost of a plan under the simple model: each step routes and probes
/// every current partial tuple (1 send + 1 search each) and multiplies the
/// partial count by the step's fanout.
double EstimatePlanCost(const BoundView& view, const MaintenancePlan& plan,
                        const FanoutFn& fanout);

}  // namespace pjvm

#endif  // PJVM_VIEW_PLANNER_H_
