#include "net/message.h"

namespace pjvm {

const char* MessageKindToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kTuples:
      return "TUPLES";
    case MessageKind::kDeleteTuples:
      return "DELETE_TUPLES";
    case MessageKind::kProbe:
      return "PROBE";
    case MessageKind::kRidProbe:
      return "RID_PROBE";
    case MessageKind::kJoinResults:
      return "JOIN_RESULTS";
    case MessageKind::kControl:
      return "CONTROL";
  }
  return "UNKNOWN";
}

size_t Message::ByteSize() const {
  size_t bytes = 16 + table.size() + control.size();
  for (const Row& row : rows) bytes += RowByteSize(row);
  bytes += rids.size() * sizeof(LocalRowId);
  return bytes;
}

}  // namespace pjvm
