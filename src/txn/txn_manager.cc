#include "txn/txn_manager.h"

namespace pjvm {

uint64_t TxnManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_txn_id_++;
  states_[id] = TxnState::kActive;
  return id;
}

TxnState TxnManager::state(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The durable decision outlives the working state: a forgotten committed
  // transaction still reads as committed.
  if (committed_ids_.count(txn_id) > 0) return TxnState::kCommitted;
  auto it = states_.find(txn_id);
  if (it == states_.end()) return TxnState::kAborted;
  return it->second;
}

bool TxnManager::IsCommitted(uint64_t txn_id) const {
  if (txn_id == kAutoCommitTxnId) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return committed_ids_.count(txn_id) > 0;
}

bool TxnManager::HasActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : states_) {
    if (state == TxnState::kActive || state == TxnState::kPreparing) {
      return true;
    }
  }
  return false;
}

Status TxnManager::MarkPreparing(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(txn_id);
  if (it == states_.end() || it->second != TxnState::kActive) {
    return Status::Aborted("txn " + std::to_string(txn_id) + " is not active");
  }
  it->second = TxnState::kPreparing;
  return Status::OK();
}

Status TxnManager::LogCommitDecision(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(txn_id);
  if (it == states_.end() ||
      (it->second != TxnState::kActive && it->second != TxnState::kPreparing)) {
    return Status::Aborted("txn " + std::to_string(txn_id) +
                           " cannot commit from its current state");
  }
  it->second = TxnState::kCommitted;
  committed_ids_.insert(txn_id);
  return Status::OK();
}

Status TxnManager::MarkAborted(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  // Check the durable decision set, not states_: the working state of a
  // committed transaction may already have been forgotten.
  if (committed_ids_.count(txn_id) > 0) {
    return Status::Internal("txn " + std::to_string(txn_id) +
                            " already committed; cannot abort");
  }
  states_[txn_id] = TxnState::kAborted;
  return Status::OK();
}

void TxnManager::PushUndo(uint64_t txn_id, UndoOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  undo_[txn_id].push_back(std::move(op));
}

std::vector<UndoOp> TxnManager::TakeUndoReversed(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<UndoOp> ops;
  auto it = undo_.find(txn_id);
  if (it == undo_.end()) return ops;
  ops.assign(it->second.rbegin(), it->second.rend());
  undo_.erase(it);
  return ops;
}

void TxnManager::DiscardUndo(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  undo_.erase(txn_id);
}

void TxnManager::PushVersionOp(uint64_t txn_id, TxnVersionOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  version_ops_[txn_id].push_back(std::move(op));
}

std::vector<TxnVersionOp> TxnManager::TakeVersionOps(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnVersionOp> ops;
  auto it = version_ops_.find(txn_id);
  if (it == version_ops_.end()) return ops;
  ops = std::move(it->second);
  version_ops_.erase(it);
  return ops;
}

void TxnManager::AddParticipant(uint64_t txn_id, int node) {
  std::lock_guard<std::mutex> lock(mu_);
  participants_[txn_id].insert(node);
}

std::set<int> TxnManager::participants(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = participants_.find(txn_id);
  if (it == participants_.end()) return {};
  return it->second;
}

void TxnManager::Forget(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  states_.erase(txn_id);
  undo_.erase(txn_id);
  participants_.erase(txn_id);
  version_ops_.erase(txn_id);
}

size_t TxnManager::PruneCommittedBelow(uint64_t low_water) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t before = committed_ids_.size();
  committed_ids_.erase(committed_ids_.begin(),
                       committed_ids_.lower_bound(low_water));
  return before - committed_ids_.size();
}

uint64_t TxnManager::next_txn_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_txn_id_;
}

size_t TxnManager::TrackedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_.size();
}

bool TxnManager::ShouldFailAt(FailurePoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failure_ == point && point != FailurePoint::kNone) {
    failure_ = FailurePoint::kNone;
    return true;
  }
  return false;
}

void TxnManager::CrashAndRecover() {
  std::lock_guard<std::mutex> lock(mu_);
  // Presumed abort: in-flight transactions simply vanish (state() reports
  // kAborted for untracked ids); participants and undo lists die with them.
  states_.clear();
  undo_.clear();
  participants_.clear();
  version_ops_.clear();
  failure_ = FailurePoint::kNone;
}

}  // namespace pjvm
