// Threaded isolation tests for the MVCC snapshot read path
// (SystemConfig::mvcc_reads): readers pin a commit epoch and never touch key
// locks or node latches, writers publish whole transactions atomically, and
// version GC respects the minimum active read epoch. Runs under TSan via
// scripts/run_tsan.sh.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "txn/snapshot_manager.h"
#include "view_test_util.h"

namespace pjvm {
namespace {

/// Two-table setup mirroring TwoTableFixture, but with a caller-controlled
/// SystemConfig so the same workload can run with mvcc_reads / locking
/// toggled. B has `fanout` rows per join-key value in [0, b_keys).
struct MvccFixture {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
  int64_t next_a_key = 0;

  MvccFixture(bool mvcc_reads, bool locking, int num_nodes = 2,
              int64_t b_keys = 8, int64_t fanout = 2,
              bool b_indexed_on_d = false) {
    SystemConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.rows_per_page = 4;
    cfg.enable_locking = locking;
    cfg.mvcc_reads = mvcc_reads;
    sys = std::make_unique<ParallelSystem>(cfg);
    TableDef a = MakeTableDef("A", ASchema(), "a");
    TableDef b = MakeTableDef("B", BSchema(), "b");
    if (b_indexed_on_d) b.indexes.push_back(IndexSpec{"d", true});
    sys->CreateTable(a).Check();
    sys->CreateTable(b).Check();
    int64_t bkey = 0;
    for (int64_t k = 0; k < b_keys; ++k) {
      for (int64_t r = 0; r < fanout; ++r) {
        sys->Insert("B", {Value{bkey}, Value{k}, Value{bkey * 10}}).Check();
        ++bkey;
      }
    }
    manager = std::make_unique<ViewManager>(sys.get());
  }

  JoinViewDef MakeView(const std::string& name) {
    JoinViewDef def;
    def.name = name;
    def.bases = {{"A", "A"}, {"B", "B"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}};
    def.partition_on = ColumnRef{"A", "e"};
    return def;
  }

  Row NextARow(int64_t join_key) {
    int64_t k = next_a_key++;
    return {Value{k}, Value{join_key}, Value{k * 100}};
  }
};

uint64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().counter(name)->value();
}

// A transaction's writes are invisible to snapshot readers until Commit, and
// a scope pinned before the commit keeps reading the old epoch (repeatable
// read), while a fresh read after the commit sees the new rows.
TEST(SnapshotIsolationTest, ReadersSeeOnlyCommittedEpochs) {
  MvccFixture fx(/*mvcc_reads=*/true, /*locking=*/true);
  for (int i = 0; i < 4; ++i) {
    fx.sys->Insert("A", fx.NextARow(i % 4)).Check();
  }
  ASSERT_EQ(fx.sys->RowCount("A"), 4u);

  uint64_t txn = fx.sys->Begin();
  fx.sys->Insert("A", fx.NextARow(0), txn).Check();
  fx.sys->Insert("A", fx.NextARow(1), txn).Check();
  // Uncommitted writes are invisible to every snapshot read.
  EXPECT_EQ(fx.sys->RowCount("A"), 4u);
  EXPECT_EQ(fx.sys->ScanAll("A").size(), 4u);

  {
    SnapshotScope pinned(&fx.sys->snapshots());
    EXPECT_EQ(fx.sys->RowCount("A"), 4u);
    fx.sys->Commit(txn).Check();
    // The pinned scope still reads its original epoch after the commit.
    EXPECT_EQ(fx.sys->RowCount("A"), 4u);
    EXPECT_EQ(fx.sys->ScanAll("A").size(), 4u);
  }
  // A fresh read sees the committed transaction in full.
  EXPECT_EQ(fx.sys->RowCount("A"), 6u);
  EXPECT_EQ(fx.sys->ScanAll("A").size(), 6u);
}

// With mvcc_reads off an explicit read transaction takes S locks; with it on
// the same reads hold zero locks.
TEST(SnapshotIsolationTest, ExplicitReaderTakesNoLocksUnderMvcc) {
  for (bool mvcc : {false, true}) {
    MvccFixture fx(mvcc, /*locking=*/true);
    for (int i = 0; i < 6; ++i) {
      fx.sys->Insert("A", fx.NextARow(i % 4)).Check();
    }
    uint64_t txn = fx.sys->Begin();
    // Unindexed non-partition column: the locked path takes per-fragment
    // S locks; the snapshot path reads the pinned version chain instead.
    ASSERT_TRUE(fx.sys->SelectEq("A", "c", Value{int64_t{1}}, txn).ok());
    if (mvcc) {
      EXPECT_EQ(fx.sys->locks().HeldCount(txn), 0u) << "mvcc=" << mvcc;
    } else {
      EXPECT_GT(fx.sys->locks().HeldCount(txn), 0u) << "mvcc=" << mvcc;
    }
    fx.sys->Commit(txn).Check();
    EXPECT_EQ(fx.sys->locks().TotalLocks(), 0u);
  }
}

// While a writer transaction sits on X locks mid-transaction, snapshot
// readers complete without acquiring a single node latch or lock wait, and
// observe only the pre-transaction state.
TEST(SnapshotIsolationTest, ReadersNeverBlockOnWriterKeyLocks) {
  MvccFixture fx(/*mvcc_reads=*/true, /*locking=*/true);
  for (int i = 0; i < 8; ++i) {
    fx.sys->Insert("A", fx.NextARow(i % 4)).Check();
  }

  std::mutex mu;
  std::condition_variable cv;
  bool parked = false;
  bool release = false;
  std::thread writer([&] {
    uint64_t txn = fx.sys->Begin();
    for (int i = 0; i < 4; ++i) {
      Row row{Value{int64_t{100 + i}}, Value{int64_t{i % 4}},
              Value{int64_t{(100 + i) * 100}}};
      fx.sys->Insert("A", row, txn).Check();
    }
    {
      std::unique_lock<std::mutex> lk(mu);
      parked = true;
      cv.notify_all();
      cv.wait(lk, [&] { return release; });
    }
    fx.sys->Commit(txn).Check();
  });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return parked; });
  }
  // The writer is parked holding its X locks; nothing else runs, so any
  // metric movement below comes from the reads we issue here.
  ASSERT_GT(fx.sys->locks().TotalLocks(), 0u);
  uint64_t shared0 = CounterValue("pjvm_node_latch_shared");
  uint64_t excl0 = CounterValue("pjvm_node_latch_exclusive");
  uint64_t waits0 = CounterValue("pjvm_lock_waits");

  EXPECT_EQ(fx.sys->ScanAll("A").size(), 8u);
  EXPECT_EQ(fx.sys->RowCount("A"), 8u);
  // Routed probe on the partition column, fan-out probe on a non-partition
  // column, and a range scan — all snapshot reads.
  ASSERT_TRUE(fx.sys->SelectEq("A", "a", Value{int64_t{0}}).ok());
  Result<std::vector<Row>> by_c = fx.sys->SelectEq("A", "c", Value{int64_t{1}});
  ASSERT_TRUE(by_c.ok());
  for (const Row& row : by_c.value()) {
    EXPECT_LT(row[0].AsInt64(), 100) << "saw an uncommitted row";
  }
  Result<std::vector<Row>> range = fx.sys->SelectRange(
      "A", "a", Value{int64_t{0}}, Value{int64_t{1000}});
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range.value().size(), 8u);

  EXPECT_EQ(CounterValue("pjvm_node_latch_shared"), shared0);
  EXPECT_EQ(CounterValue("pjvm_node_latch_exclusive"), excl0);
  EXPECT_EQ(CounterValue("pjvm_lock_waits"), waits0);

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  writer.join();
  EXPECT_EQ(fx.sys->RowCount("A"), 12u);
  EXPECT_EQ(fx.sys->locks().TotalLocks(), 0u);
}

// Concurrent view maintenance never exposes a torn snapshot: every A row has
// exactly `fanout` join partners in B, so within any single snapshot scope
// |JV| == fanout * |A| — a base insert and its view updates become visible
// in the same epoch or not at all.
TEST(SnapshotIsolationTest, NoTornReadsAcrossBaseAndView) {
  constexpr int64_t kFanout = 2;
  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 8;
  MvccFixture fx(/*mvcc_reads=*/true, /*locking=*/true, /*num_nodes=*/2,
                 /*b_keys=*/8, kFanout);
  fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kAuxRelation)
      .Check();

  std::vector<std::vector<Row>> writer_rows(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kInsertsPerWriter; ++i) {
      writer_rows[w].push_back(fx.NextARow((w * kInsertsPerWriter + i) % 8));
    }
  }

  std::atomic<bool> done{false};
  std::atomic<int> writer_failures{0};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (Row& row : writer_rows[w]) {
        if (!fx.manager->InsertRow("A", std::move(row)).ok()) {
          writer_failures.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        SnapshotScope scope(&fx.sys->snapshots());
        size_t a = fx.sys->RowCount("A");
        size_t jv = fx.sys->RowCount("JV");
        if (jv != a * kFanout) torn_reads.fetch_add(1);
      }
    });
  }
  threads[0].join();
  threads[1].join();
  done.store(true);
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(writer_failures.load(), 0);
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(fx.sys->RowCount("A"),
            static_cast<size_t>(kWriters * kInsertsPerWriter));
  EXPECT_EQ(fx.sys->RowCount("JV"),
            static_cast<size_t>(kWriters * kInsertsPerWriter * kFanout));
  fx.manager->CheckAllConsistent().Check();
  EXPECT_EQ(fx.sys->locks().TotalLocks(), 0u);
}

// Version GC never reclaims a version some live reader can still see: while
// a scope is pinned at an old epoch the delta chains grow past the fold
// threshold without folding, and the pinned reader keeps seeing its epoch's
// exact contents; once the scope closes, the next publish folds and
// pjvm_mvcc_gc_reclaimed advances.
TEST(SnapshotIsolationTest, GcNeverReclaimsVisibleVersions) {
  // One node: all inserts land on one fragment, so its delta chain passes
  // the per-fragment fold threshold (64 ops) deterministically.
  MvccFixture fx(/*mvcc_reads=*/true, /*locking=*/false, /*num_nodes=*/1);
  for (int i = 0; i < 10; ++i) {
    fx.sys->Insert("A", fx.NextARow(i % 8)).Check();
  }
  const auto bag0 = RowBag(fx.sys->ScanAll("A"));
  ASSERT_EQ(bag0.size(), 10u);

  uint64_t reclaimed0 = CounterValue("pjvm_mvcc_gc_reclaimed");
  {
    SnapshotScope pinned(&fx.sys->snapshots());
    // 100 autocommit inserts: far past the fold threshold (64 ops), but the
    // pinned scope holds the GC watermark at its epoch, so nothing folds.
    for (int i = 0; i < 100; ++i) {
      fx.sys->Insert("A", fx.NextARow(i % 8)).Check();
    }
    EXPECT_EQ(CounterValue("pjvm_mvcc_gc_reclaimed"), reclaimed0);
    // The pinned reader still sees exactly its epoch's rows.
    EXPECT_EQ(RowBag(fx.sys->ScanAll("A")), bag0);
    EXPECT_EQ(fx.sys->RowCount("A"), 10u);
  }
  // Scope released: the next publish's piggybacked fold reclaims the chain.
  fx.sys->Insert("A", fx.NextARow(0)).Check();
  EXPECT_GT(CounterValue("pjvm_mvcc_gc_reclaimed"), reclaimed0);
  EXPECT_EQ(fx.sys->RowCount("A"), 111u);
}

// The same single-threaded workload charges bit-identical cost counters with
// mvcc_reads on and off — the snapshot read path mirrors the locked path's
// cost formulas exactly, so paper-figure experiments are unaffected.
TEST(SnapshotIsolationTest, CostParityMvccOnOff) {
  auto run = [](bool mvcc) {
    MvccFixture fx(mvcc, /*locking=*/true, /*num_nodes=*/2, /*b_keys=*/8,
                   /*fanout=*/2, /*b_indexed_on_d=*/true);
    fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kAuxRelation)
        .Check();
    std::vector<Row> a_rows;
    for (int i = 0; i < 12; ++i) a_rows.push_back(fx.NextARow(i % 8));
    for (const Row& row : a_rows) {
      fx.manager->InsertRow("A", row).status().Check();
    }
    fx.manager->DeleteRow("A", a_rows[3]).status().Check();
    // Indexed probe, unindexed fan-out probe, routed probe, indexed range,
    // unindexed range, and full scans.
    fx.sys->SelectEq("B", "d", Value{int64_t{3}}).status().Check();
    fx.sys->SelectEq("A", "c", Value{int64_t{2}}).status().Check();
    fx.sys->SelectEq("A", "a", Value{int64_t{5}}).status().Check();
    fx.sys->SelectRange("B", "d", Value{int64_t{1}}, Value{int64_t{5}})
        .status()
        .Check();
    fx.sys->SelectRange("A", "e", Value{int64_t{0}}, Value{int64_t{700}})
        .status()
        .Check();
    fx.sys->ScanAll("JV");
    fx.sys->RowCount("A");
    fx.manager->CheckAllConsistent().Check();
    return fx.sys->cost().Snapshot();
  };
  std::vector<NodeCounters> off = run(false);
  std::vector<NodeCounters> on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].searches, on[i].searches) << "node " << i;
    EXPECT_EQ(off[i].fetches, on[i].fetches) << "node " << i;
    EXPECT_EQ(off[i].inserts, on[i].inserts) << "node " << i;
    EXPECT_EQ(off[i].sends, on[i].sends) << "node " << i;
    EXPECT_EQ(off[i].bytes_sent, on[i].bytes_sent) << "node " << i;
    EXPECT_EQ(off[i].base_writes, on[i].base_writes) << "node " << i;
    EXPECT_EQ(off[i].structure_writes, on[i].structure_writes) << "node " << i;
    EXPECT_EQ(off[i].view_writes, on[i].view_writes) << "node " << i;
  }
}

// Crash recovery rebuilds every fragment's snapshot from the replayed heap:
// reads after Recover() see exactly the committed state, and new writes
// version normally.
TEST(SnapshotIsolationTest, RecoveryRebuildsSnapshots) {
  MvccFixture fx(/*mvcc_reads=*/true, /*locking=*/true);
  for (int i = 0; i < 5; ++i) {
    fx.sys->Insert("A", fx.NextARow(i % 4)).Check();
  }
  uint64_t committed = fx.sys->Begin();
  fx.sys->Insert("A", fx.NextARow(0), committed).Check();
  fx.sys->Commit(committed).Check();
  uint64_t in_flight = fx.sys->Begin();
  fx.sys->Insert("A", fx.NextARow(1), in_flight).Check();
  const auto expected = RowBag(fx.sys->ScanAll("A"));
  ASSERT_EQ(fx.sys->RowCount("A"), 6u);

  fx.sys->Crash();
  fx.sys->Recover().Check();

  // The in-flight transaction rolled back; snapshots match the recovered
  // heap exactly.
  EXPECT_EQ(RowBag(fx.sys->ScanAll("A")), expected);
  EXPECT_EQ(fx.sys->RowCount("A"), 6u);
  fx.sys->Insert("A", fx.NextARow(2)).Check();
  EXPECT_EQ(fx.sys->RowCount("A"), 7u);
}

}  // namespace
}  // namespace pjvm
