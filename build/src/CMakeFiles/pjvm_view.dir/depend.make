# Empty dependencies file for pjvm_view.
# This may be replaced when dependencies are built.
