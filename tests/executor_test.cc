#include "engine/executor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/system.h"
#include "net/network.h"
#include "tests/view_test_util.h"
#include "view/maintainer.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// ---------------------------------------------------------------------------
// NodeExecutor unit behavior.
// ---------------------------------------------------------------------------

TEST(NodeExecutorTest, TasksForOneNodeRunInOrderOnOneWorkerThread) {
  NodeExecutor exec(4);
  std::vector<int> order;  // Only node 2's worker writes: no race.
  std::thread::id worker{};
  bool single_thread = true;
  for (int i = 0; i < 200; ++i) {
    exec.SubmitToNode(2, [&, i] {
      if (order.empty()) {
        worker = std::this_thread::get_id();
      } else if (worker != std::this_thread::get_id()) {
        single_thread = false;
      }
      order.push_back(i);
    });
  }
  exec.WaitAll();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(single_thread);
  EXPECT_NE(worker, std::this_thread::get_id());
}

TEST(NodeExecutorTest, SubmitToAllReachesEveryNodeConcurrently) {
  constexpr int kNodes = 6;
  NodeExecutor exec(kNodes);
  std::vector<int> hits(kNodes, 0);  // Slot i touched only by worker i.
  exec.SubmitToAll([&](int node) { hits[node]++; });
  exec.WaitAll();
  for (int i = 0; i < kNodes; ++i) EXPECT_EQ(hits[i], 1) << "node " << i;
}

TEST(NodeExecutorTest, RunOnAllNodesReturnsFirstErrorInNodeOrder) {
  NodeExecutor exec(8);
  Status st = exec.RunOnAllNodes([](int node) -> Status {
    if (node >= 3) return Status::Internal("boom at node " + std::to_string(node));
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("boom at node 3"), std::string::npos)
      << st.ToString();
}

TEST(NodeExecutorTest, InlineModeRunsOnCallerThread) {
  NodeExecutor exec(4, /*inline_mode=*/true);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  exec.RunOnAllNodes([&](int) -> Status {
        if (std::this_thread::get_id() != caller) all_on_caller = false;
        return Status::OK();
      })
      .Check();
  EXPECT_TRUE(all_on_caller);
}

TEST(NodeExecutorTest, ShutdownDrainsPendingWorkAndIsIdempotent) {
  NodeExecutor exec(3);
  std::vector<int> done(3, 0);
  for (int n = 0; n < 3; ++n) {
    exec.SubmitToNode(n, [&, n] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done[n] = 1;
    });
  }
  exec.Shutdown();
  exec.Shutdown();
  for (int n = 0; n < 3; ++n) EXPECT_EQ(done[n], 1) << "node " << n;
}

TEST(NetworkTest, PollWaitReceivesCrossThreadSend) {
  CostTracker cost(2);
  Network net(2, &cost);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Message m;
    m.kind = MessageKind::kProbe;
    m.from = 0;
    m.to = 1;
    net.Send(std::move(m)).Check();
  });
  std::optional<Message> got = net.PollWait(1, /*timeout_ms=*/5000);
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, 0);
  EXPECT_EQ(got->to, 1);
}

// ---------------------------------------------------------------------------
// The central property of this layer: parallel execution must be
// observationally identical to the sequential reference — same query
// results, same view contents, and bit-identical cost-model output (every
// per-node counter, TW, response time, locality, and per-pair messages).
// ---------------------------------------------------------------------------

void FingerprintCounters(ParallelSystem& sys, std::ostringstream* os) {
  const CostTracker& cost = sys.cost();
  for (int i = 0; i < sys.num_nodes(); ++i) {
    NodeCounters c = cost.node(i);
    *os << "node" << i << ":" << c.searches << "," << c.fetches << ","
        << c.inserts << "," << c.sends << "," << c.bytes_sent << ","
        << c.base_writes << "," << c.structure_writes << "," << c.view_writes
        << "\n";
  }
  *os << "TW=" << cost.TotalWorkload() << " RT=" << cost.ResponseTime()
      << " CRT=" << cost.ComputeResponseTime()
      << " touched=" << cost.NodesTouched() << " sends=" << cost.TotalSends()
      << "\n";
  Network& net = sys.network();
  *os << "msgs=" << net.TotalMessages() << " bytes=" << net.TotalBytes()
      << "\n";
  for (int i = 0; i < sys.num_nodes(); ++i) {
    for (int j = 0; j < sys.num_nodes(); ++j) {
      if (net.PairCount(i, j) != 0) {
        *os << "pair " << i << "->" << j << ":" << net.PairCount(i, j) << "\n";
      }
    }
  }
}

void FingerprintRows(const std::string& tag, std::vector<Row> rows,
                     std::ostringstream* os) {
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) keys.push_back(RowToString(row));
  std::sort(keys.begin(), keys.end());
  *os << tag << "(" << keys.size() << "):";
  for (const std::string& k : keys) *os << k << ";";
  *os << "\n";
}

/// Runs an identical randomized maintenance + query workload under the given
/// execution mode and returns a full observable fingerprint.
std::string RunWorkload(MaintenanceMethod method, bool parallel, int num_nodes,
                        int steps, uint64_t seed) {
  SystemConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.rows_per_page = 4;
  cfg.parallel_execution = parallel;
  ParallelSystem sys(cfg);
  sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
  sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
  // Bulk-load B through the batched path so InsertMany's home-node fan-out is
  // part of what gets compared.
  std::vector<Row> b_rows;
  int64_t bkey = 0;
  for (int64_t k = 0; k < 12; ++k) {
    for (int64_t r = 0; r < 3; ++r) {
      b_rows.push_back({Value{bkey}, Value{k}, Value{bkey * 10}});
      ++bkey;
    }
  }
  sys.InsertMany("B", b_rows).Check();

  ViewManager manager(&sys);
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  manager.RegisterView(def, method).Check();

  Rng rng(seed);
  std::vector<Row> live;
  int64_t next_a = 0;
  for (int step = 0; step < steps; ++step) {
    double dice = rng.UniformDouble();
    if (dice < 0.6 || live.empty()) {
      int64_t k = next_a++;
      Row row = {Value{k}, Value{rng.UniformInt(0, 15)}, Value{k * 100}};
      manager.InsertRow("A", row).status().Check();
      live.push_back(row);
    } else if (dice < 0.8) {
      size_t pick = rng.Next() % live.size();
      manager.DeleteRow("A", live[pick]).status().Check();
      live.erase(live.begin() + pick);
    } else {
      size_t pick = rng.Next() % live.size();
      Row old_row = live[pick];
      Row new_row = old_row;
      new_row[1] = Value{rng.UniformInt(0, 15)};
      manager.UpdateRow("A", old_row, new_row).status().Check();
      live[pick] = new_row;
    }
  }
  manager.CheckAllConsistent().Check();

  std::ostringstream os;
  // Fan-out reads: SelectEq on a non-partitioning column broadcasts to every
  // node; SelectRange and ScanAll always touch all fragments.
  FingerprintRows("eq", sys.SelectEq("A", "c", Value{3}).value(), &os);
  FingerprintRows("range", sys.SelectRange("B", "d", Value{2}, Value{9}).value(),
                  &os);
  FingerprintRows("scan", sys.ScanAll("A"), &os);
  FingerprintRows("view", sys.ScanAll(manager.view("JV")->table_name()), &os);
  FingerprintCounters(sys, &os);
  return os.str();
}

class ParallelEquivalence : public ::testing::TestWithParam<MaintenanceMethod> {
};

TEST_P(ParallelEquivalence, CostModelOutputsIdenticalToSequentialReference) {
  for (int nodes : {1, 4, 7}) {
    std::string seq = RunWorkload(GetParam(), /*parallel=*/false, nodes,
                                  /*steps=*/60, /*seed=*/17);
    std::string par = RunWorkload(GetParam(), /*parallel=*/true, nodes,
                                  /*steps=*/60, /*seed=*/17);
    EXPECT_EQ(seq, par) << "L=" << nodes;
  }
}

// Stress: repeat with fresh seeds so thread interleavings vary run to run; any
// lost update, double charge, or order-dependent merge shows up as a
// fingerprint mismatch.
TEST_P(ParallelEquivalence, StressRepeatedRunsStayIdentical) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    std::string seq = RunWorkload(GetParam(), /*parallel=*/false, /*nodes=*/5,
                                  /*steps=*/40, seed);
    std::string par = RunWorkload(GetParam(), /*parallel=*/true, /*nodes=*/5,
                                  /*steps=*/40, seed);
    ASSERT_EQ(seq, par) << "seed " << seed;
  }
}

std::string MethodName(const ::testing::TestParamInfo<MaintenanceMethod>& info) {
  return MaintenanceMethodToString(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ParallelEquivalence,
                         ::testing::Values(MaintenanceMethod::kNaive,
                                           MaintenanceMethod::kAuxRelation,
                                           MaintenanceMethod::kGlobalIndex),
                         MethodName);

}  // namespace
}  // namespace pjvm
