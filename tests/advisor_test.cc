#include <gtest/gtest.h>

#include <cmath>

#include "tests/view_test_util.h"
#include "view/hybrid_advisor.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

WorkloadProfile BaseProfile() {
  WorkloadProfile p;
  p.num_nodes = 32;
  p.fanout = 10;
  p.tuples_per_txn = 16;
  p.other_relation_pages = 6400;
  p.memory_pages = 100;
  p.base_clustered_on_join = true;
  p.storage_budget_bytes = 1e9;
  p.ar_bytes = 1e6;
  p.gi_bytes = 1e5;
  return p;
}

TEST(AdvisorTest, SmallUpdatesWithSpacePickAuxRelation) {
  Advice advice = ChooseMethod(BaseProfile());
  EXPECT_EQ(advice.method, MaintenanceMethod::kAuxRelation);
  EXPECT_LT(advice.aux_io, advice.naive_io);
  EXPECT_LT(advice.aux_io, advice.gi_io);
  EXPECT_FALSE(advice.rationale.empty());
}

TEST(AdvisorTest, TightBudgetFallsBackToGlobalIndex) {
  WorkloadProfile p = BaseProfile();
  p.storage_budget_bytes = 5e5;  // GI fits, AR does not.
  Advice advice = ChooseMethod(p);
  EXPECT_EQ(advice.method, MaintenanceMethod::kGlobalIndex);
  EXPECT_TRUE(std::isinf(advice.aux_io));
}

TEST(AdvisorTest, NoBudgetMeansNaive) {
  WorkloadProfile p = BaseProfile();
  p.storage_budget_bytes = 0;
  Advice advice = ChooseMethod(p);
  EXPECT_EQ(advice.method, MaintenanceMethod::kNaive);
  EXPECT_TRUE(std::isinf(advice.aux_io));
  EXPECT_TRUE(std::isinf(advice.gi_io));
}

TEST(AdvisorTest, HugeUpdatesPickNaiveEvenWithSpace) {
  // The paper's Figure 10 insight: once a transaction's tuple count rivals
  // |B| pages, the naive method with clustered base relations wins.
  WorkloadProfile p = BaseProfile();
  p.tuples_per_txn = 7000;
  p.num_nodes = 8;
  Advice advice = ChooseMethod(p);
  EXPECT_EQ(advice.method, MaintenanceMethod::kNaive);
  EXPECT_LT(advice.naive_io, advice.aux_io);
}

TEST(AdvisorTest, AdviceAgreesWithMeasuredEngineCosts) {
  // The advisor must rank methods the same way the real engine does for the
  // small-update case.
  auto measured_io = [](MaintenanceMethod method) {
    TwoTableFixture fx(8, 50, 4);
    fx.manager->RegisterView(fx.MakeView("JV"), method).Check();
    fx.sys->cost().Reset();
    fx.manager->InsertRow("A", fx.NextARow(7)).status().Check();
    return fx.sys->cost().TotalWorkload();
  };
  double naive = measured_io(MaintenanceMethod::kNaive);
  double aux = measured_io(MaintenanceMethod::kAuxRelation);
  double gi = measured_io(MaintenanceMethod::kGlobalIndex);
  WorkloadProfile p = BaseProfile();
  p.num_nodes = 8;
  p.fanout = 4;
  p.tuples_per_txn = 1;
  Advice advice = ChooseMethod(p);
  EXPECT_EQ(advice.method, MaintenanceMethod::kAuxRelation);
  EXPECT_LT(aux, gi);
  EXPECT_LT(gi, naive);
}

// ------------------------------------------ AR storage accounting (ablation)

TEST(ArStorageTest, MinimizedArIsSmallerThanFullCopy) {
  TwoTableFixture fx(4, 30, 4);
  JoinViewDef def = fx.MakeView("JV", false);
  def.projection = {{"A", "e"}, {"B", "f"}};  // Drop keys from the AR.
  ASSERT_TRUE(
      fx.manager->RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
  size_t minimized = fx.manager->ars().StorageBytes();
  size_t full_copy = fx.manager->ars().UnminimizedBytes();
  EXPECT_GT(minimized, 0u);
  EXPECT_LT(minimized, full_copy);
}

TEST(ArStorageTest, FilteredArStoresOnlyPassingRows) {
  TwoTableFixture fx(4, 30, 2);
  JoinViewDef def = fx.MakeView("JV");
  def.selections = {{{"B", "f"}, PredOp::kLt, Value{100}}};  // f = 10*bkey.
  ASSERT_TRUE(
      fx.manager->RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
  // Only B rows with f < 100 (bkey < 10) are in the AR.
  size_t ar_rows = 0;
  for (const std::string& name : fx.manager->ars().TableNames()) {
    if (name.find("_B_") != std::string::npos) {
      ar_rows = fx.sys->RowCount(name);
    }
  }
  EXPECT_EQ(ar_rows, 10u);
  EXPECT_LT(ar_rows, fx.sys->RowCount("B"));
}

TEST(ArStorageTest, GiIsSmallerThanAr) {
  // The paper: "global indices usually require less extra storage than
  // auxiliary relations". Make base rows wide so the difference shows.
  SystemConfig cfg;
  cfg.num_nodes = 4;
  ParallelSystem sys(cfg);
  TableDef a = MakeTableDef("A", ASchema(), "a");
  TableDef b;
  b.name = "B";
  b.schema = Schema({{"b", ValueType::kInt64},
                     {"d", ValueType::kInt64},
                     {"f", ValueType::kInt64},
                     {"pad", ValueType::kString}});
  b.partition = PartitionSpec::Hash("b");
  sys.CreateTable(a).Check();
  sys.CreateTable(b).Check();
  for (int64_t k = 0; k < 50; ++k) {
    sys.Insert("B", {Value{k}, Value{k % 10}, Value{k},
                     Value{std::string(100, 'x')}})
        .Check();
  }
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  ViewManager m_ar(&sys);
  ASSERT_TRUE(m_ar.RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
  size_t ar_bytes = m_ar.ars().StorageBytes();

  ParallelSystem sys2(cfg);
  sys2.CreateTable(a).Check();
  sys2.CreateTable(b).Check();
  for (int64_t k = 0; k < 50; ++k) {
    sys2.Insert("B", {Value{k}, Value{k % 10}, Value{k},
                      Value{std::string(100, 'x')}})
        .Check();
  }
  ViewManager m_gi(&sys2);
  ASSERT_TRUE(m_gi.RegisterView(def, MaintenanceMethod::kGlobalIndex).ok());
  size_t gi_bytes = m_gi.gis().StorageBytes();
  EXPECT_LT(gi_bytes, ar_bytes);
  EXPECT_GT(gi_bytes, 0u);
}

}  // namespace
}  // namespace pjvm
