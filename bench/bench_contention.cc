// Multi-client contention bench: N concurrent updater threads drive
// single-row maintenance transactions against one shared join view, with
// join keys drawn from a small pool so transactions collide on the AR's
// clustered-index key locks.
//
// Two lock policies run over the same workload:
//  - no-wait: a conflicting acquire aborts the transaction immediately and
//    the abort is client-visible (maintain_max_attempts = 1); the client
//    must re-submit until its transaction commits.
//  - wait-die: conflicting acquires park (older waits, younger dies) and
//    the ViewManager absorbs deadlock-avoidance kills in its bounded retry
//    loop, so the client sees no aborts at all.
//
// Reported per policy: committed throughput, client-visible latency
// (p50/p95/p99 over the full submit-to-commit interval, retries included),
// client-visible aborts, wait-die deadlock kills, lock waits, and internal
// maintenance retries. Each run ends with the from-scratch consistency
// oracle: under either policy the view must match its bases exactly.
//
// Usage: bench_contention [threads] [txns_per_thread] [key_pool] [nodes]

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "txn/lock_manager.h"

namespace pjvm::bench {
namespace {

struct ContentionConfig {
  int threads = 8;
  int txns_per_thread = 50;
  // Distinct join keys shared by all updaters. The default of one hot key is
  // the worst case for no-wait: every pair of concurrent transactions
  // conflicts on the same AR index-key lock.
  int64_t key_pool = 1;
  int nodes = 4;
};

struct PolicyResult {
  std::string policy;
  uint64_t committed = 0;
  uint64_t client_aborts = 0;
  double wall_ms = 0.0;
  double committed_per_sec = 0.0;
  uint64_t deadlock_kills = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_wait_timeouts = 0;
  uint64_t maintain_retries = 0;
  HistogramData latency;
};

PolicyResult RunPolicy(const ContentionConfig& cc, LockPolicy policy) {
  PolicyResult result;
  result.policy = policy == LockPolicy::kWaitDie ? "wait_die" : "no_wait";

  SystemConfig cfg;
  cfg.num_nodes = cc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = policy;
  cfg.lock_wait_timeout_ms = 500;
  // Under no-wait every conflict surfaces to the client; under wait-die the
  // maintenance retry loop absorbs them.
  cfg.maintain_max_attempts = policy == LockPolicy::kWaitDie ? 8 : 1;
  cfg.maintain_retry_base_us = 100;
  ParallelSystem sys(cfg);

  // The paper's two-relation setup, with a tiny B key domain so concurrent
  // updaters collide on the same AR index-key locks.
  TwoTableConfig tt;
  tt.b_join_keys = cc.key_pool;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kAuxRelation)
      .Check();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t kills0 = metrics.counter("pjvm_lock_deadlock_kills")->value();
  const uint64_t waits0 = metrics.counter("pjvm_lock_waits")->value();
  const uint64_t touts0 = metrics.counter("pjvm_lock_wait_timeouts")->value();
  const uint64_t retries0 = metrics.counter("pjvm_maintain_retries")->value();

  LatencyHistogram latency;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> client_aborts{0};

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> updaters;
  updaters.reserve(cc.threads);
  for (int t = 0; t < cc.threads; ++t) {
    updaters.emplace_back([&, t] {
      for (int i = 0; i < cc.txns_per_thread; ++i) {
        // Unique A key per logical transaction; the join attribute cycles
        // through B's small key pool, so concurrent transactions hit the
        // same AR index-key locks.
        Row row = MakeDeltaA(tt, static_cast<int64_t>(t) * 1000000 + i);
        auto t0 = std::chrono::steady_clock::now();
        // The client's contract is "this update happens": a client-visible
        // abort means re-submitting the whole transaction.
        for (;;) {
          auto report = manager.InsertRow("A", row);
          if (report.ok()) break;
          if (!report.status().IsAborted()) report.status().Check();
          client_aborts.fetch_add(1);
        }
        auto t1 = std::chrono::steady_clock::now();
        committed.fetch_add(1);
        latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (auto& th : updaters) th.join();
  auto end = std::chrono::steady_clock::now();

  result.committed = committed.load();
  result.client_aborts = client_aborts.load();
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  result.committed_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.committed / result.wall_ms : 0.0;
  result.deadlock_kills =
      metrics.counter("pjvm_lock_deadlock_kills")->value() - kills0;
  result.lock_waits = metrics.counter("pjvm_lock_waits")->value() - waits0;
  result.lock_wait_timeouts =
      metrics.counter("pjvm_lock_wait_timeouts")->value() - touts0;
  result.maintain_retries =
      metrics.counter("pjvm_maintain_retries")->value() - retries0;
  result.latency = latency.Snapshot();

  // The whole point of running maintenance inside the transaction: however
  // the interleaving went, the view must equal the from-scratch join.
  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after quiesce").Check();
  }
  return result;
}

std::string PolicyJson(const PolicyResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("policy").Str(r.policy)
      .Key("committed").Uint(r.committed)
      .Key("client_visible_aborts").Uint(r.client_aborts)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("committed_per_sec").Num(r.committed_per_sec)
      .Key("deadlock_kills").Uint(r.deadlock_kills)
      .Key("lock_waits").Uint(r.lock_waits)
      .Key("lock_wait_timeouts").Uint(r.lock_wait_timeouts)
      .Key("maintain_retries").Uint(r.maintain_retries)
      .Key("client_latency_ns").Raw(LatencyJson(r.latency))
      .EndObject();
  return w.str();
}

void Run(const ContentionConfig& cc) {
  PrintHeader("contention: " + std::to_string(cc.threads) + " updaters x " +
              std::to_string(cc.txns_per_thread) + " txns, " +
              std::to_string(cc.key_pool) + " join keys, " +
              std::to_string(cc.nodes) + " nodes");
  BenchReport report("contention");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("threads").Int(cc.threads)
        .Key("txns_per_thread").Int(cc.txns_per_thread)
        .Key("key_pool").Int(cc.key_pool)
        .Key("nodes").Int(cc.nodes)
        .EndObject();
    report.Add("config", w.str());
  }
  for (LockPolicy policy : {LockPolicy::kNoWait, LockPolicy::kWaitDie}) {
    PolicyResult r = RunPolicy(cc, policy);
    std::cout << r.policy << ": committed=" << r.committed
              << " aborts=" << r.client_aborts
              << " throughput=" << r.committed_per_sec << "/s"
              << " p95=" << r.latency.P95() / 1e6 << "ms"
              << " kills=" << r.deadlock_kills << " waits=" << r.lock_waits
              << " retries=" << r.maintain_retries << "\n";
    report.Add(r.policy, PolicyJson(r));
  }
  report.Write();
}

}  // namespace
}  // namespace pjvm::bench

int main(int argc, char** argv) {
  pjvm::bench::ContentionConfig cc;
  if (argc > 1) cc.threads = std::stoi(argv[1]);
  if (argc > 2) cc.txns_per_thread = std::stoi(argv[2]);
  if (argc > 3) cc.key_pool = std::stoll(argv[3]);
  if (argc > 4) cc.nodes = std::stoi(argv[4]);
  pjvm::bench::Run(cc);
  return 0;
}
