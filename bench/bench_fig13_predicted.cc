// Reproduces Figure 13: the analytical model's *predicted* view maintenance
// time for JV1 (customer x orders) and JV2 (+ lineitem) under the naive and
// auxiliary relation methods, for 2/4/8 data server nodes and 128 inserted
// customer tuples — the prediction the paper validates against Teradata in
// Figure 14. (The paper scales its y-axis by a constant, "the time unit is
// 128 I/Os"; we print raw per-node I/Os, so only ratios are comparable.)

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "model/figures.h"

int main() {
  using namespace pjvm;
  using namespace pjvm::model;
  Figure fig = MakeFigure13();
  PrintFigure(fig, std::cout);

  TpcrExperimentParams p;
  std::printf("\nspeedup of AR over naive (predicted):\n");
  std::printf("%8s %12s %12s\n", "nodes", "JV1", "JV2");
  bench::BenchReport report("fig13_predicted");
  report.AddFigure("figure", fig);
  bench::JsonWriter speedups;
  speedups.BeginArray();
  for (int l : {2, 4, 8}) {
    double jv1 = PredictJv1(l, p, false) / PredictJv1(l, p, true);
    double jv2 = PredictJv2(l, p, false) / PredictJv2(l, p, true);
    std::printf("%8d %11.1fx %11.1fx\n", l, jv1, jv2);
    speedups.BeginObject()
        .Key("nodes").Int(l)
        .Key("jv1_ar_speedup").Num(jv1)
        .Key("jv2_ar_speedup").Num(jv2)
        .EndObject();
  }
  speedups.EndArray();
  report.Add("ar_over_naive_speedup", speedups.str());
  report.Write();
  return 0;
}
