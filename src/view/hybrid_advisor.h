#ifndef PJVM_VIEW_HYBRID_ADVISOR_H_
#define PJVM_VIEW_HYBRID_ADVISOR_H_

#include <string>

#include "model/analytical.h"
#include "view/maintainer.h"

namespace pjvm {

/// \brief Description of the expected update workload against one view,
/// plus the space each method would consume.
///
/// The paper's conclusion: "the method of choice depends on the environment,
/// in particular the update activity on base relations and the amount of
/// available storage space ... Our analytical model could form the basis
/// for a cost model that would enable a system to choose the best approach
/// automatically." This advisor is that cost model.
struct WorkloadProfile {
  /// L.
  int num_nodes = 8;
  /// N: average join fanout per updated tuple.
  double fanout = 10.0;
  /// Average number of tuples changed per maintenance transaction.
  double tuples_per_txn = 1.0;
  /// Pages of the relation being probed (the paper's |B|).
  double other_relation_pages = 6400.0;
  /// Sort memory in pages (M).
  int memory_pages = 100;
  /// Whether the probed base carries a clustered index on the join
  /// attribute (enables naive-clustered / GI-distributed-clustered).
  bool base_clustered_on_join = false;
  /// Extra storage available, and what each method would use, in bytes.
  double storage_budget_bytes = 0.0;
  double ar_bytes = 0.0;
  double gi_bytes = 0.0;
};

/// \brief Costed recommendation.
struct Advice {
  MaintenanceMethod method = MaintenanceMethod::kNaive;
  /// Estimated per-transaction total workload (I/Os summed over nodes) per
  /// method; infinity when a method does not fit the storage budget.
  double naive_io = 0.0;
  double aux_io = 0.0;
  double gi_io = 0.0;
  std::string rationale;
};

/// Picks the cheapest method whose structures fit in the storage budget,
/// using the paper's response-time model (index vs sort-merge crossover
/// included).
Advice ChooseMethod(const WorkloadProfile& profile);

}  // namespace pjvm

#endif  // PJVM_VIEW_HYBRID_ADVISOR_H_
