#include <gtest/gtest.h>

#include "tests/view_test_util.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// Deferred (batch-refresh) maintenance: the traditional warehouse mode the
// paper's operational scenario is contrasted against. A deferred view lags
// base updates and is brought current by RefreshView().

TEST(DeferredViewTest, StaysStaleUntilRefreshed) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation,
                                 MaintenanceTiming::kDeferred)
                  .ok());
  EXPECT_FALSE(fx.manager->IsStale("JV"));
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
  EXPECT_TRUE(fx.manager->IsStale("JV"));
  EXPECT_EQ(fx.manager->view("JV")->RowCount(), 0u);  // Lagging.
  // A stale deferred view is exempt from the consistency oracle.
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
  ASSERT_TRUE(fx.manager->RefreshView("JV").ok());
  EXPECT_FALSE(fx.manager->IsStale("JV"));
  EXPECT_EQ(fx.manager->view("JV")->RowCount(), 2u);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

TEST(DeferredViewTest, RefreshHandlesInsertsDeletesUpdates) {
  TwoTableFixture fx(4, 10, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV", false),
                                 MaintenanceMethod::kNaive,
                                 MaintenanceTiming::kDeferred)
                  .ok());
  Rng rng(5);
  std::vector<Row> live;
  for (int step = 0; step < 40; ++step) {
    if (rng.Bernoulli(0.6) || live.empty()) {
      Row row = fx.NextARow(rng.UniformInt(0, 12));
      ASSERT_TRUE(fx.manager->InsertRow("A", row).ok());
      live.push_back(row);
    } else {
      size_t pick = rng.Next() % live.size();
      ASSERT_TRUE(fx.manager->DeleteRow("A", live[pick]).ok());
      live.erase(live.begin() + pick);
    }
    if (step % 13 == 12) {
      ASSERT_TRUE(fx.manager->RefreshView("JV").ok()) << step;
      ASSERT_TRUE(fx.manager->CheckAllConsistent().ok()) << step;
    }
  }
  ASSERT_TRUE(fx.manager->RefreshAllViews().ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

TEST(DeferredViewTest, RefreshOfFreshViewIsNoOp) {
  TwoTableFixture fx(2, 5, 1);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation,
                                 MaintenanceTiming::kDeferred)
                  .ok());
  fx.sys->cost().Reset();
  ASSERT_TRUE(fx.manager->RefreshView("JV").ok());
  EXPECT_DOUBLE_EQ(fx.sys->cost().TotalWorkload(), 0.0);
  EXPECT_FALSE(fx.manager->RefreshView("ghost").ok());
}

TEST(DeferredViewTest, ImmediateAndDeferredCoexist) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("live"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  JoinViewDef lagged = fx.MakeView("lagged");
  ASSERT_TRUE(fx.manager
                  ->RegisterView(lagged, MaintenanceMethod::kAuxRelation,
                                 MaintenanceTiming::kDeferred)
                  .ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i)).ok());
  }
  EXPECT_EQ(fx.manager->view("live")->RowCount(), 12u);
  EXPECT_EQ(fx.manager->view("lagged")->RowCount(), 0u);
  ASSERT_TRUE(fx.manager->RefreshView("lagged").ok());
  EXPECT_EQ(RowBag(fx.manager->view("live")->Contents()),
            RowBag(fx.manager->view("lagged")->Contents()));
}

TEST(DeferredViewTest, RefreshCostIsScanDominatedAndAmortizes) {
  // Immediate maintenance pays per transaction; deferred pays one scan per
  // refresh. For many tiny transactions between refreshes, deferred total
  // cost is lower — the amortization that traditional warehouses exploit,
  // at the price of staleness (the paper's operational scenario rejects
  // exactly this trade).
  auto total_io = [](MaintenanceTiming timing) {
    TwoTableFixture fx(4, 256, 2, /*rows_per_page=*/4);
    fx.manager
        ->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive, timing)
        .Check();
    fx.sys->cost().Reset();
    for (int i = 0; i < 64; ++i) {
      fx.manager->InsertRow("A", fx.NextARow(i % 256)).status().Check();
    }
    if (timing == MaintenanceTiming::kDeferred) {
      fx.manager->RefreshView("JV").Check();
    }
    return fx.sys->cost().TotalWorkload();
  };
  double immediate = total_io(MaintenanceTiming::kImmediate);
  double deferred = total_io(MaintenanceTiming::kDeferred);
  EXPECT_LT(deferred, immediate);
}

TEST(DeferredViewTest, AggregateViewsRefreshToo) {
  TwoTableFixture fx(4, 6, 2);
  JoinViewDef agg;
  agg.name = "AGG";
  agg.bases = {{"A", "A"}, {"B", "B"}};
  agg.edges = {{{"A", "c"}, {"B", "d"}}};
  agg.group_by = {{"A", "c"}};
  agg.aggregates = {{AggFn::kCount, {}}};
  ASSERT_TRUE(fx.manager
                  ->RegisterView(agg, MaintenanceMethod::kGlobalIndex,
                                 MaintenanceTiming::kDeferred)
                  .ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i % 3)).ok());
  }
  ASSERT_TRUE(fx.manager->RefreshView("AGG").ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  EXPECT_EQ(fx.manager->view("AGG")->RowCount(), 3u);
}

}  // namespace
}  // namespace pjvm
