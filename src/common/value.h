#ifndef PJVM_COMMON_VALUE_H_
#define PJVM_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace pjvm {

/// \brief Runtime type of a Value / column.
enum class ValueType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Human-readable type name ("INT64" etc.).
const char* ValueTypeToString(ValueType t);

/// \brief A dynamically-typed SQL value: INT64, DOUBLE, or STRING.
///
/// Values are totally ordered within a type (comparisons across types are a
/// programming error and abort), hashable, and cheap to copy for the numeric
/// types. They are the unit of partitioning, indexing, and join-key
/// comparison throughout the engine.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  Value(int64_t v) : repr_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : repr_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}              // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const { return static_cast<ValueType>(repr_.index()); }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Typed accessors abort on type mismatch (programming error).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Stable 64-bit hash; equal values hash equally. Used for partitioning,
  /// so it must be deterministic across runs and platforms.
  uint64_t Hash() const;

  /// Approximate on-disk footprint in bytes (used for Table 1 size reports).
  size_t ByteSize() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Total order; comparing values of different types aborts.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

 private:
  std::variant<int64_t, double, std::string> repr_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// std::hash-compatible functor for Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

}  // namespace pjvm

#endif  // PJVM_COMMON_VALUE_H_
