#include "view/global_index_maintainer.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <set>
#include <tuple>

#include "obs/trace.h"

namespace pjvm {

namespace {

/// Columns of every global-index table: (key, node, lrid).
constexpr int kGiKeyCol = 0;
constexpr int kGiNodeCol = 1;
constexpr int kGiLridCol = 2;

}  // namespace

Status GlobalIndexMaintainer::ProcessSign(uint64_t txn, int updated_base,
                                          const MaintenancePlan& plan,
                                          const std::vector<Row>& rows,
                                          const std::vector<GlobalRowId>& gids,
                                          bool is_delete,
                                          MaintenanceReport* report) {
  int colocate_col = -1;
  if (!plan.steps.empty()) {
    const PlanStep& first = plan.steps.front();
    const TableDef& updated_def = bound().base_def(updated_base);
    bool has_structure =
        resolver_->GiFor(updated_def.name, first.source_col).ok() ||
        (updated_def.partition.is_hash() &&
         updated_def.PartitionColumn() == first.source_col);
    if (has_structure) colocate_col = first.source_col;
  }

  PJVM_ASSIGN_OR_RETURN(std::vector<Partial> partials,
                        SeedPartials(updated_base, rows, gids, colocate_col));
  for (const PlanStep& step : plan.steps) {
    const TableDef& target_def = bound().base_def(step.target_base);
    if (target_def.partition.is_hash() &&
        target_def.PartitionColumn() == step.target_col) {
      // Co-partitioned base: no global index needed for this step.
      PJVM_ASSIGN_OR_RETURN(partials, RoutedStep(txn, step, BaseProbeTarget(step),
                                                 partials, report));
      if (partials.empty()) return Status::OK();
      continue;
    }
    PJVM_ASSIGN_OR_RETURN(std::string gi_table,
                          resolver_->GiFor(target_def.name, step.target_col));

    // Large-batch crossover: when per-node scan beats the few-node index
    // plan, fall back to the broadcast sort-merge join (Figure 11's plateau).
    const std::string& col_name =
        target_def.schema.column(step.target_col).name;
    bool dist_clustered = target_def.HasClusteredIndexOn(col_name);
    double fan = EstimateFanout(step.target_base, step.target_col);
    double k_nodes = std::min<double>(fan, sys_->num_nodes());
    double inner_pages_per_node =
        static_cast<double>(sys_->TablePages(target_def.name)) /
        sys_->num_nodes();
    double inl_per_node = static_cast<double>(partials.size()) *
                          (1.0 + (dist_clustered ? k_nodes : fan)) /
                          sys_->num_nodes();
    double smj_per_node =
        dist_clustered
            ? inner_pages_per_node
            : inner_pages_per_node *
                  std::max(1.0, std::ceil(std::log(std::max(
                                              inner_pages_per_node, 2.0)) /
                                          std::log(static_cast<double>(
                                              sys_->config().sort_memory_pages))));
    if (smj_per_node < inl_per_node) {
      PJVM_ASSIGN_OR_RETURN(partials, BroadcastStep(txn, step, partials, report));
    } else {
      PJVM_ASSIGN_OR_RETURN(
          partials, GlobalIndexStep(txn, step, gi_table, partials, report));
    }
    if (partials.empty()) return Status::OK();
  }
  return EmitToView(txn, partials, is_delete, report);
}

Result<std::vector<Maintainer::Partial>> GlobalIndexMaintainer::GlobalIndexStep(
    uint64_t txn, const PlanStep& step, const std::string& gi_table,
    const std::vector<Partial>& in, MaintenanceReport* report) {
  std::vector<Partial> out;
  PJVM_ASSIGN_OR_RETURN(int key_idx,
                        bound().WorkingIndex(step.source_base, step.source_col));
  const TableDef& target_def = bound().base_def(step.target_base);
  const std::string& col_name = target_def.schema.column(step.target_col).name;
  bool dist_clustered = target_def.HasClusteredIndexOn(col_name);

  // Phase 0 (coordinator): route each partial to its key's global-index home
  // node. Ships stay on the caller thread so their SEND charges accrue to the
  // producing nodes in batch order, exactly as before.
  std::vector<std::vector<size_t>> at_home(sys_->num_nodes());
  for (size_t i = 0; i < in.size(); ++i) {
    const Partial& p = in[i];
    const Value& key = p.working[key_idx];
    int gi_home = sys_->HomeNodeForKey(key);
    if (gi_home != p.node) {
      Message msg;
      msg.kind = MessageKind::kProbe;
      msg.from = p.node;
      msg.to = gi_home;
      msg.table = gi_table;
      msg.rows.push_back(p.working);
      PJVM_RETURN_NOT_OK(Ship(std::move(msg)));
    }
    at_home[gi_home].push_back(i);
  }

  // A pending remote fetch: partial `partial_idx` matched `rids` at `owner`.
  struct FetchWork {
    size_t partial_idx = 0;
    int owner = -1;
    std::vector<LocalRowId> rids;
    std::vector<Partial> out;
  };

  // Phase 1: every involved home node probes its global-index fragment on its
  // own worker (the paper's few-node property: only the homes of the delta's
  // key values participate), forwards each rid list to the owning node, and
  // records one FetchWork per (partial, owner).
  std::vector<int> homes;
  for (int n = 0; n < sys_->num_nodes(); ++n) {
    if (!at_home[n].empty()) homes.push_back(n);
  }
  std::vector<std::vector<FetchWork>> home_work(sys_->num_nodes());
  std::vector<MaintenanceReport> home_rep(sys_->num_nodes());
  {
  SpanGuard lookup_span("gi_lookup", "phase", -1, nullptr,
                        MaintenanceMethodToString(method()));
  lookup_span.set_detail(gi_table);
  PJVM_RETURN_NOT_OK(
      sys_->executor().RunOnNodes(homes, [&](int gi_home) -> Status {
        SpanGuard span("gi_probe_node", "task", gi_home, &sys_->cost(),
                       MaintenanceMethodToString(method()));
        // Fold mode (heavy/light deferred folds): the batch repeats a few
        // hot keys, so the GI rid-list lookup is memoized per distinct key —
        // one SEARCH serves every duplicate. Eager mode probes per tuple.
        std::map<std::string, std::map<int, std::vector<LocalRowId>>> memo;
        for (size_t i : at_home[gi_home]) {
          const Partial& p = in[i];
          const Value& key = p.working[key_idx];
          std::map<int, std::vector<LocalRowId>>* grouped = nullptr;
          std::map<int, std::vector<LocalRowId>> rids_by_node;
          auto it = fold_mode_ ? memo.find(key.ToString()) : memo.end();
          if (it != memo.end()) {
            grouped = &it->second;
          } else {
            // One SEARCH in the (clustered-on-key) global index fragment.
            PJVM_ASSIGN_OR_RETURN(
                ProbeResult entries,
                sys_->node(gi_home)->IndexProbe(gi_table, kGiKeyCol, key, txn));
            ++home_rep[gi_home].probes;
            // Group the matching global row ids by owning node — the paper's
            // K nodes.
            for (const Row& entry : entries.rows) {
              rids_by_node[static_cast<int>(entry[kGiNodeCol].AsInt64())]
                  .push_back(
                      static_cast<LocalRowId>(entry[kGiLridCol].AsInt64()));
            }
            grouped = fold_mode_
                          ? &memo.emplace(key.ToString(), std::move(rids_by_node))
                                 .first->second
                          : &rids_by_node;
          }
          for (auto& [owner, rids] : *grouped) {
            // "With the global row ids of those tuples residing at that node,
            // the tuple is sent there."
            Message msg;
            msg.kind = MessageKind::kRidProbe;
            msg.from = gi_home;
            msg.to = owner;
            msg.table = target_def.name;
            msg.rows.push_back(p.working);
            msg.rids = rids;
            PJVM_RETURN_NOT_OK(Ship(std::move(msg)));
            // The memoized rid lists are shared by later duplicates of the
            // key, so fold mode copies them into the FetchWork.
            home_work[gi_home].push_back(FetchWork{
                i, owner, fold_mode_ ? rids : std::move(rids), {}});
          }
        }
        return Status::OK();
      }));
  }

  // Deterministic output order: the sequential implementation emitted per
  // partial (batch order), then per owner ascending within a partial.
  std::vector<FetchWork*> works;
  for (int n : homes) {
    report->probes += home_rep[n].probes;
    for (FetchWork& w : home_work[n]) works.push_back(&w);
  }
  std::sort(works.begin(), works.end(),
            [](const FetchWork* a, const FetchWork* b) {
              return std::tie(a->partial_idx, a->owner) <
                     std::tie(b->partial_idx, b->owner);
            });
  std::vector<std::vector<FetchWork*>> by_owner(sys_->num_nodes());
  for (FetchWork* w : works) by_owner[w->owner].push_back(w);
  std::vector<int> owners;
  for (int n = 0; n < sys_->num_nodes(); ++n) {
    if (!by_owner[n].empty()) owners.push_back(n);
  }

  // Phase 2: every owning node fetches its rid lists on its own worker.
  SpanGuard fetch_span("gi_fetch", "phase", -1, nullptr,
                       MaintenanceMethodToString(method()));
  fetch_span.set_detail(target_def.name);
  PJVM_RETURN_NOT_OK(
      sys_->executor().RunOnNodes(owners, [&](int owner) -> Status {
        SpanGuard span("gi_fetch_node", "task", owner, &sys_->cost(),
                       MaintenanceMethodToString(method()));
        TableFragment* frag = sys_->node(owner)->fragment(target_def.name);
        if (frag == nullptr) {
          return Status::NotFound("GI step: missing fragment '" +
                                  target_def.name + "'");
        }
        // Fold mode: duplicates of a key fetch the same rid list, so the
        // selected-and-projected target tuples are memoized per key — the
        // heap FETCHes (and their charges) are paid once per distinct key.
        std::map<std::string, std::vector<Row>> memo;
        for (FetchWork* w : by_owner[owner]) {
          const Partial& p = in[w->partial_idx];
          const Value& key = p.working[key_idx];
          const std::vector<Row>* needed_rows = nullptr;
          std::vector<Row> fresh;
          auto it = fold_mode_ ? memo.find(key.ToString()) : memo.end();
          if (it != memo.end()) {
            needed_rows = &it->second;
          } else {
            size_t fetched_rows = 0;
            for (LocalRowId rid : w->rids) {
              const Row* row = frag->Get(rid);
              if (row == nullptr || !((*row)[step.target_col] == key)) {
                return Status::Internal("GI step: stale global index entry " +
                                        GlobalRowId{owner, rid}.ToString() +
                                        " for key " + key.ToString());
              }
              ++fetched_rows;
              // Global indexes cover all rows; selections apply post-fetch.
              if (!bound().RowPassesSelections(step.target_base, *row)) {
                continue;
              }
              fresh.push_back(bound().ProjectNeeded(step.target_base, *row));
            }
            // Distributed clustered: one key's matches at a node share a page
            // (the paper's assumption), so the whole rid list costs one FETCH.
            // Distributed non-clustered: one FETCH per row.
            sys_->cost().ChargeFetch(
                owner,
                dist_clustered ? (fetched_rows > 0 ? 1 : 0) : fetched_rows);
            needed_rows =
                fold_mode_
                    ? &memo.emplace(key.ToString(), std::move(fresh)).first->second
                    : &fresh;
          }
          for (const Row& needed : *needed_rows) {
            PJVM_RETURN_NOT_OK(Extend(step, p, needed, owner, &w->out));
          }
        }
        return Status::OK();
      }));

  for (FetchWork* w : works) {
    out.insert(out.end(), std::make_move_iterator(w->out.begin()),
               std::make_move_iterator(w->out.end()));
  }
  return out;
}

}  // namespace pjvm
