# Empty compiler generated dependencies file for pjvm_common.
# This may be replaced when dependencies are built.
