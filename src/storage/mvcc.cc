#include "storage/mvcc.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace pjvm {

namespace {

/// Deltas visible at `epoch`, oldest first (application order). The chain
/// is newest-first and epochs decrease along it, so the visible portion is
/// a suffix; collect then reverse.
std::vector<const MvccDelta*> VisibleDeltas(const MvccState& state,
                                            uint64_t epoch) {
  std::vector<const MvccDelta*> deltas;
  for (const MvccDelta* d = state.head.get(); d != nullptr;
       d = d->prev.get()) {
    if (d->epoch <= epoch) deltas.push_back(d);
  }
  std::reverse(deltas.begin(), deltas.end());
  return deltas;
}

/// Newest delta visible at `epoch`, or nullptr (shape queries).
const MvccDelta* NewestVisible(const MvccState& state, uint64_t epoch) {
  for (const MvccDelta* d = state.head.get(); d != nullptr;
       d = d->prev.get()) {
    if (d->epoch <= epoch) return d;
  }
  return nullptr;
}

/// Fully composed visible image: base rows then chain inserts in commit
/// order, with deletes tombstoning (nulling) one content-equal entry each.
/// Entries left null are deleted; callers skip them.
std::vector<const Row*> VisibleRows(const MvccState& state, uint64_t epoch) {
  const MvccBase& base = *state.base;
  std::vector<const Row*> rows;
  rows.reserve(base.rows.size());
  // hash(row) -> slot in `rows`, for content-equal delete resolution.
  std::unordered_multimap<uint64_t, size_t> by_hash;
  by_hash.reserve(base.rows.size());
  for (const Row& row : base.rows) {
    by_hash.emplace(HashRow(row), rows.size());
    rows.push_back(&row);
  }
  for (const MvccDelta* d : VisibleDeltas(state, epoch)) {
    for (const MvccOp& op : d->ops) {
      if (op.kind == MvccOp::Kind::kInsert) {
        by_hash.emplace(HashRow(op.row), rows.size());
        rows.push_back(&op.row);
      } else {
        auto [begin, end] = by_hash.equal_range(HashRow(op.row));
        for (auto it = begin; it != end; ++it) {
          if (*rows[it->second] == op.row) {
            rows[it->second] = nullptr;
            by_hash.erase(it);
            break;
          }
        }
      }
    }
  }
  return rows;
}

int IndexOrdinal(const MvccBase& base, int column) {
  for (size_t i = 0; i < base.index_meta.size(); ++i) {
    if (base.index_meta[i].column == column) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const MvccIndexMeta* MvccFindIndex(const MvccState& state, int column) {
  if (state.base == nullptr) return nullptr;
  int ord = IndexOrdinal(*state.base, column);
  return ord < 0 ? nullptr : &state.base->index_meta[ord];
}

size_t MvccNumPages(const MvccState& state, uint64_t epoch) {
  const MvccDelta* d = NewestVisible(state, epoch);
  return d != nullptr ? d->num_pages : state.base->num_pages;
}

size_t MvccNumRows(const MvccState& state, uint64_t epoch) {
  // Composed exactly, not taken from the newest visible delta's rows_after:
  // that count was captured at op-execution time, and commits from other
  // transactions may interleave between an op and its publish, so it is
  // only exact single-threaded. Row counts must be exact at any epoch (the
  // torn-read tests compare |JV| against fanout * |A|).
  if (state.head == nullptr) return state.base->rows.size();
  size_t count = 0;
  for (const Row* row : VisibleRows(state, epoch)) {
    if (row != nullptr) ++count;
  }
  return count;
}

MvccProbeOut MvccProbe(const MvccState& state, uint64_t epoch, int column,
                       const Value& key) {
  MvccProbeOut out;
  const MvccBase& base = *state.base;
  // Matches in arrival order: base postings first, then chain ops applied
  // in commit order. A delete drops one content-equal match — the victim
  // necessarily carried `key` in `column`, so restricting to key-matching
  // ops loses nothing.
  std::vector<const Row*> matches;
  int ord = IndexOrdinal(base, column);
  if (ord >= 0) {
    auto it = base.postings[ord].find(key);
    if (it != base.postings[ord].end()) {
      matches.reserve(it->second.size());
      for (size_t slot : it->second) {
        matches.push_back(&base.rows[slot]);
      }
    }
  } else {
    for (const Row& row : base.rows) {
      if (row[column] == key) matches.push_back(&row);
    }
  }
  for (const MvccDelta* d : VisibleDeltas(state, epoch)) {
    for (const MvccOp& op : d->ops) {
      if (!(op.row[column] == key)) continue;
      if (op.kind == MvccOp::Kind::kInsert) {
        matches.push_back(&op.row);
      } else {
        for (auto it = matches.begin(); it != matches.end(); ++it) {
          if (**it == op.row) {
            matches.erase(it);
            break;
          }
        }
      }
    }
  }
  out.rows.reserve(matches.size());
  for (const Row* row : matches) out.rows.push_back(*row);
  return out;
}

size_t MvccProbeCount(const MvccState& state, uint64_t epoch, int column,
                      const Value& key) {
  const MvccBase& base = *state.base;
  size_t count = 0;
  int ord = IndexOrdinal(base, column);
  if (ord >= 0) {
    auto it = base.postings[ord].find(key);
    if (it != base.postings[ord].end()) count = it->second.size();
  } else {
    for (const Row& row : base.rows) {
      if (row[column] == key) ++count;
    }
  }
  for (const MvccDelta* d : VisibleDeltas(state, epoch)) {
    for (const MvccOp& op : d->ops) {
      if (!(op.row[column] == key)) continue;
      if (op.kind == MvccOp::Kind::kInsert) {
        ++count;
      } else if (count > 0) {
        --count;
      }
    }
  }
  return count;
}

size_t MvccScanRange(const MvccState& state, uint64_t epoch, int column,
                     const Value& lo, const Value& hi, std::vector<Row>* out) {
  const MvccBase& base = *state.base;
  int ord = IndexOrdinal(base, column);
  size_t delivered = 0;
  if (ord >= 0) {
    // Keys present in the visible range: base postings plus any key a
    // visible chain op touches (a chain insert may introduce a new key).
    std::set<Value> keys;
    const auto& postings = base.postings[ord];
    for (auto it = postings.lower_bound(lo);
         it != postings.end() && (it->first < hi || it->first == hi); ++it) {
      keys.insert(it->first);
    }
    for (const MvccDelta* d : VisibleDeltas(state, epoch)) {
      for (const MvccOp& op : d->ops) {
        const Value& v = op.row[column];
        if ((lo < v || lo == v) && (v < hi || v == hi)) keys.insert(v);
      }
    }
    for (const Value& key : keys) {
      MvccProbeOut probe = MvccProbe(state, epoch, column, key);
      delivered += probe.rows.size();
      out->insert(out->end(), std::make_move_iterator(probe.rows.begin()),
                  std::make_move_iterator(probe.rows.end()));
    }
  } else {
    for (const Row* row : VisibleRows(state, epoch)) {
      if (row == nullptr) continue;
      const Value& v = (*row)[column];
      if ((lo < v || lo == v) && (v < hi || v == hi)) {
        out->push_back(*row);
        ++delivered;
      }
    }
  }
  return delivered;
}

std::vector<Row> MvccAllRows(const MvccState& state, uint64_t epoch) {
  std::vector<const Row*> live = VisibleRows(state, epoch);
  std::vector<Row> rows;
  rows.reserve(live.size());
  for (const Row* row : live) {
    if (row != nullptr) rows.push_back(*row);
  }
  return rows;
}

size_t MvccChainLength(const MvccState& state) {
  size_t n = 0;
  for (const MvccDelta* d = state.head.get(); d != nullptr; d = d->prev.get()) {
    ++n;
  }
  return n;
}

std::shared_ptr<const MvccBase> MvccFoldAll(const MvccState& state) {
  auto folded = std::make_shared<MvccBase>();
  const MvccBase& old = *state.base;
  folded->epoch = state.head != nullptr ? state.head->epoch : old.epoch;
  folded->rows_per_page = old.rows_per_page;
  folded->num_pages =
      state.head != nullptr ? state.head->num_pages : old.num_pages;
  folded->index_meta = old.index_meta;
  // Compose at the head epoch: every delta folds in.
  std::vector<const Row*> live = VisibleRows(state, folded->epoch);
  folded->rows.reserve(live.size());
  for (const Row* row : live) {
    if (row != nullptr) folded->rows.push_back(*row);
  }
  folded->postings.resize(folded->index_meta.size());
  for (size_t i = 0; i < folded->index_meta.size(); ++i) {
    int col = folded->index_meta[i].column;
    for (size_t slot = 0; slot < folded->rows.size(); ++slot) {
      folded->postings[i][folded->rows[slot][col]].push_back(slot);
    }
  }
  return folded;
}

}  // namespace pjvm
