#ifndef PJVM_COMMON_ROW_H_
#define PJVM_COMMON_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace pjvm {

/// \brief A tuple: a fixed-width sequence of Values described by a Schema.
using Row = std::vector<Value>;

/// Stable 64-bit hash of a whole row (order-sensitive).
uint64_t HashRow(const Row& row);

/// "(v0, v1, ...)" rendering for logs and test failure messages.
std::string RowToString(const Row& row);

/// Returns the row restricted to `indices`, in that order.
Row ProjectRow(const Row& row, const std::vector<int>& indices);

/// Concatenates two rows (used to form join output tuples).
Row ConcatRows(const Row& a, const Row& b);

/// Approximate byte footprint of a row (sum of value footprints).
size_t RowByteSize(const Row& row);

/// std::hash-compatible functor for Row.
struct RowHash {
  size_t operator()(const Row& row) const {
    return static_cast<size_t>(HashRow(row));
  }
};

/// Lexicographic comparison helpers for sorting rows by one key column.
struct RowKeyLess {
  int key_col;
  bool operator()(const Row& a, const Row& b) const {
    return a[key_col] < b[key_col];
  }
};

}  // namespace pjvm

#endif  // PJVM_COMMON_ROW_H_
