# Empty compiler generated dependencies file for pjvm_txn.
# This may be replaced when dependencies are built.
