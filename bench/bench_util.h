#ifndef PJVM_BENCH_BENCH_UTIL_H_
#define PJVM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/system.h"
#include "view/maintainer.h"
#include "view/view_manager.h"
#include "workload/tpcr.h"
#include "workload/twotable.h"

namespace pjvm::bench {

/// Cost and wall-time of one measured maintenance run.
struct RunResult {
  double total_workload_io = 0.0;
  double response_time_io = 0.0;
  uint64_t sends = 0;
  int nodes_touched = 0;
  double wall_ms = 0.0;
  size_t view_rows_written = 0;
};

/// Applies `delta` through `manager`, metering the maintenance transaction
/// (cost counters are reset first, so setup/backfill is excluded).
inline RunResult MeterDelta(ViewManager* manager, DeltaBatch delta) {
  ParallelSystem* sys = manager->system();
  sys->cost().Reset();
  auto start = std::chrono::steady_clock::now();
  auto report = manager->ApplyDelta(std::move(delta));
  auto end = std::chrono::steady_clock::now();
  report.status().Check();
  RunResult r;
  r.total_workload_io = sys->cost().TotalWorkload();
  r.response_time_io = sys->cost().ResponseTime();
  r.sends = sys->cost().TotalSends();
  r.nodes_touched = sys->cost().NodesTouched();
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  r.view_rows_written = report->view_rows_inserted + report->view_rows_deleted;
  return r;
}

/// A TPC-R system with JV1 and JV2 registered under `method` — the setup of
/// the paper's Section 3.3 experiment.
struct TpcrBench {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
  TpcrConfig tpcr;

  TpcrBench(int num_nodes, MaintenanceMethod method, int64_t customers = 1500) {
    SystemConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.rows_per_page = 16;
    sys = std::make_unique<ParallelSystem>(cfg);
    tpcr.customers = customers;
    tpcr.extra_customer_keys = 256;
    LoadTpcr(sys.get(), GenerateTpcr(tpcr)).Check();
    manager = std::make_unique<ViewManager>(sys.get());
    manager->RegisterView(MakeJv1(), method).Check();
    manager->RegisterView(MakeJv2(), method).Check();
  }

  /// The paper's delta: `n` new customers, each matching existing orders.
  DeltaBatch DeltaCustomers(int n) {
    std::vector<Row> rows;
    rows.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(MakeDeltaCustomer(tpcr, i));
    }
    return DeltaBatch::Inserts("customer", rows);
  }
};

inline void PrintHeader(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace pjvm::bench

#endif  // PJVM_BENCH_BENCH_UTIL_H_
