#include "model/analytical.h"

#include <algorithm>
#include <cmath>

namespace pjvm::model {

namespace {

double Ceil(double x) { return std::ceil(x - 1e-9); }

}  // namespace

double ModelParams::K() const {
  return std::min(fanout, static_cast<double>(num_nodes));
}

double ModelParams::BPagesPerNode() const {
  return Ceil(b_pages / num_nodes);
}

double SortPasses(double pages, int memory_pages) {
  if (pages <= 1.0) return 1.0;
  return std::max(1.0, Ceil(std::log(pages) / std::log(memory_pages)));
}

double TwAuxRelation(const ModelParams& p) {
  // (a) 1 SEND to node j; (b) INSERT into AR_A; (c) SEARCH in AR_B (the
  // index is clustered, matches ride on the leaf page); (d) 1 SEND to k.
  return p.insert + p.search;
}

double TwNaive(const ModelParams& p, bool clustered_index) {
  // (a) L SENDs; (b) L SEARCHes + N FETCHes when J_B is non-clustered;
  // (c) K SENDs.
  double tw = p.num_nodes * p.search;
  if (!clustered_index) tw += p.fanout * p.fetch;
  return tw;
}

double TwGlobalIndex(const ModelParams& p, bool distributed_clustered) {
  // (a) 1 SEND; (b) INSERT into GI_A; (c) SEARCH in GI_B; (d) K SENDs;
  // (e) K FETCHes (distributed clustered: one page per node) or N FETCHes
  // (non-clustered: one per matching row); (f) K SENDs.
  double fetches = distributed_clustered ? p.K() : p.fanout;
  return p.insert + p.search + fetches * p.fetch;
}

double SendsAuxRelation(const ModelParams&) { return 2.0; }
double SendsNaive(const ModelParams& p) { return p.num_nodes + p.K(); }
double SendsGlobalIndex(const ModelParams& p) { return 1.0 + 2.0 * p.K(); }

// --- Response time. A_i = ceil(A / L) is the most-loaded node's share of
// --- the delta (the step functions of Figure 12).

double RtAuxIndex(const ModelParams& p, double a_tuples) {
  double a_i = Ceil(a_tuples / p.num_nodes);
  // Per tuple at each node: INSERT into AR_A (2) + SEARCH in AR_B (1).
  return (p.insert + p.search) * a_i;
}

double RtAuxSortMerge(const ModelParams& p, double a_tuples) {
  double a_i = Ceil(a_tuples / p.num_nodes);
  // AR updates still happen per tuple; AR_B is clustered, so the join is a
  // scan of |B_i|.
  return p.insert * a_i + p.BPagesPerNode();
}

double RtAux(const ModelParams& p, double a_tuples) {
  return std::min(RtAuxIndex(p, a_tuples), RtAuxSortMerge(p, a_tuples));
}

double RtNaiveIndex(const ModelParams& p, double a_tuples, bool clustered) {
  // Every node searches for every one of the A tuples; a non-clustered index
  // additionally fetches that node's share of the N matches per tuple.
  double rt = p.search * a_tuples;
  if (!clustered) rt += p.fetch * Ceil(a_tuples * p.fanout / p.num_nodes);
  return rt;
}

double RtNaiveSortMerge(const ModelParams& p, double a_tuples, bool clustered) {
  (void)a_tuples;
  double b_i = p.BPagesPerNode();
  return clustered ? b_i : b_i * SortPasses(b_i, p.memory_pages);
}

double RtNaive(const ModelParams& p, double a_tuples, bool clustered) {
  return std::min(RtNaiveIndex(p, a_tuples, clustered),
                  RtNaiveSortMerge(p, a_tuples, clustered));
}

double RtGiIndex(const ModelParams& p, double a_tuples,
                 bool distributed_clustered) {
  double a_i = Ceil(a_tuples / p.num_nodes);
  // GI home role: INSERT into GI_A + SEARCH in GI_B per local tuple.
  double rt = (p.insert + p.search) * a_i;
  // Probe-owner role: ceil(A*K/L) rid-probes arrive per node; each costs one
  // page (distributed clustered) or its share of the N row fetches.
  if (distributed_clustered) {
    rt += p.fetch * Ceil(a_tuples * p.K() / p.num_nodes);
  } else {
    rt += p.fetch * Ceil(a_tuples * p.fanout / p.num_nodes);
  }
  return rt;
}

double RtGiSortMerge(const ModelParams& p, double a_tuples,
                     bool distributed_clustered) {
  double a_i = Ceil(a_tuples / p.num_nodes);
  double b_i = p.BPagesPerNode();
  double scan =
      distributed_clustered ? b_i : b_i * SortPasses(b_i, p.memory_pages);
  // The GI itself is still maintained per tuple.
  return p.insert * a_i + scan;
}

double RtGi(const ModelParams& p, double a_tuples, bool distributed_clustered) {
  return std::min(RtGiIndex(p, a_tuples, distributed_clustered),
                  RtGiSortMerge(p, a_tuples, distributed_clustered));
}

double TwBatchAux(const ModelParams& p, double a_tuples) {
  double index_plan = TwAuxRelation(p) * a_tuples;
  // Sort-merge: AR updates per tuple plus one full scan of B (clustered ARs).
  double smj_plan = p.insert * a_tuples + p.b_pages;
  return std::min(index_plan, smj_plan);
}

double TwBatchNaive(const ModelParams& p, double a_tuples, bool clustered) {
  // Every node processes every tuple: total work is L times the per-node
  // response time (index) or a full pass over B on every node (sort-merge,
  // where the per-node scans sum back to |B| or |B| * passes).
  return p.num_nodes * RtNaive(p, a_tuples, clustered);
}

double TwBatchGi(const ModelParams& p, double a_tuples,
                 bool distributed_clustered) {
  double index_plan = TwGlobalIndex(p, distributed_clustered) * a_tuples;
  double scan = distributed_clustered
                    ? p.b_pages
                    : p.b_pages * SortPasses(p.BPagesPerNode(), p.memory_pages);
  double smj_plan = p.insert * a_tuples + scan;
  return std::min(index_plan, smj_plan);
}

}  // namespace pjvm::model
