file(REMOVE_RECURSE
  "CMakeFiles/pjvm_sql.dir/sql/executor.cc.o"
  "CMakeFiles/pjvm_sql.dir/sql/executor.cc.o.d"
  "CMakeFiles/pjvm_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/pjvm_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/pjvm_sql.dir/sql/parser.cc.o"
  "CMakeFiles/pjvm_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/pjvm_sql.dir/sql/statement.cc.o"
  "CMakeFiles/pjvm_sql.dir/sql/statement.cc.o.d"
  "libpjvm_sql.a"
  "libpjvm_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
