// Reproduces Figure 11: per-node response time vs number of inserted tuples
// (1..7000) at L = 128, with each method taking min(index join, sort-merge).
// The naive curve rises fast then plateaus; AR and GI flatten much later —
// and near |B| pages the naive method overtakes them.

#include <iostream>

#include "bench/bench_util.h"
#include "model/figures.h"

int main() {
  pjvm::model::Figure fig = pjvm::model::MakeFigure11();
  pjvm::model::PrintFigure(fig, std::cout);
  pjvm::bench::WriteFigureJson("fig11_sweep", fig);
  return 0;
}
