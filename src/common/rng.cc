#include "common/rng.h"

namespace pjvm {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the xoshiro state with SplitMix64 per the reference implementation,
  // which guarantees a non-zero state for any seed.
  uint64_t x = seed;
  for (uint64_t& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % span);
  uint64_t r = Next();
  while (r >= limit) r = Next();
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

}  // namespace pjvm
