#ifndef PJVM_TXN_SNAPSHOT_MANAGER_H_
#define PJVM_TXN_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>

#include "obs/trace.h"

namespace pjvm {

/// \brief Global epoch authority for snapshot reads.
///
/// The epoch protocol is deliberately minimal:
///
///   - `Publish(install)` runs the caller's install callback (which stores
///     new MvccDeltas on the written fragments, stamped with the next epoch)
///     and only *then* advances the global epoch with a release store — all
///     under one publish mutex. A reader that observes epoch E therefore
///     finds every delta with epoch <= E already installed on every
///     fragment: commits become visible atomically across nodes.
///
///   - `AcquireRead()` registers the calling reader at the current epoch
///     (under a separate readers mutex — registration never contends with
///     publishing) and returns that epoch. `ReleaseRead()` unregisters.
///
///   - `Fold(fn)` hands the caller a GC watermark: the minimum epoch any
///     registered reader holds (or the current epoch when none is active).
///     The watermark is computed under the publish mutex *after* any
///     in-flight publish finished advancing the epoch, which closes the
///     race where a fragment folds away a delta while a new reader is
///     registering at the pre-publish epoch: any reader registering from
///     now on gets an epoch >= watermark, and readers registered earlier
///     are counted in the minimum.
///
/// Lock ordering: node latch -> publish_mu_ -> readers_mu_. The publish
/// path never takes node latches, so writers holding latches may call in.
class SnapshotManager {
 public:
  SnapshotManager() = default;

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Last published epoch (acquire: pairs with Publish's release store).
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Registers the caller as a reader at the current epoch and returns it.
  /// Pair with ReleaseRead(). Wait-free relative to publishers.
  uint64_t AcquireRead();
  void ReleaseRead(uint64_t epoch);

  /// Minimum epoch a registered reader holds; current epoch when none.
  uint64_t MinActiveEpoch() const;

  /// Runs `install(next_epoch)` then advances the global epoch to
  /// `next_epoch`, serialized against other publishes and folds. Returns
  /// the epoch assigned. The callback must install every delta for the
  /// committing transaction before returning.
  uint64_t Publish(const std::function<void(uint64_t)>& install);

  /// Runs `fn(watermark)` under the publish lock, where `watermark` is the
  /// minimum active read epoch (see class comment). The callback typically
  /// calls TableFragment::MvccMaybeFold on candidate fragments.
  void Fold(const std::function<void(uint64_t)>& fn);

 private:
  std::atomic<uint64_t> epoch_{0};
  std::mutex publish_mu_;
  mutable std::mutex readers_mu_;
  std::multiset<uint64_t> active_;  // guarded by readers_mu_
};

/// \brief RAII snapshot read scope: pins an epoch for its lifetime and
/// exposes it to nested reads via a thread-local stack, so one logical
/// statement (e.g. MaterializedView::Contents -> ScanAll) reads a single
/// consistent epoch instead of re-acquiring per operator. Opens a
/// "snapshot_read" tracer span tagged with the epoch.
class SnapshotScope {
 public:
  explicit SnapshotScope(SnapshotManager* mgr);
  ~SnapshotScope();

  SnapshotScope(const SnapshotScope&) = delete;
  SnapshotScope& operator=(const SnapshotScope&) = delete;

  uint64_t epoch() const { return epoch_; }
  SnapshotManager* manager() const { return mgr_; }

  /// Innermost scope open on this thread, or nullptr.
  static SnapshotScope* Active();

 private:
  SnapshotManager* mgr_;
  uint64_t epoch_;
  SnapshotScope* prev_;
  SpanGuard span_;
};

}  // namespace pjvm

#endif  // PJVM_TXN_SNAPSHOT_MANAGER_H_
