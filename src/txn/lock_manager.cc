#include "txn/lock_manager.h"

namespace pjvm {

const char* LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

std::string LockId::ToString() const {
  std::string out = "node" + std::to_string(node) + "/" + table;
  if (whole_table) {
    out += "/*";
  } else {
    out += "/#" + std::to_string(key_hash);
  }
  return out;
}

Status LockManager::CheckConflicts(uint64_t txn_id, const LockId& id,
                                   LockMode mode) const {
  auto conflicts_with = [&](const LockId& other_id) -> Status {
    auto it = locks_.find(other_id);
    if (it == locks_.end()) return Status::OK();
    for (const auto& [holder, held_mode] : it->second.holders) {
      if (holder == txn_id) continue;
      if (!Compatible(held_mode, mode)) {
        return Status::Aborted("lock conflict on " + other_id.ToString() +
                               ": txn " + std::to_string(txn_id) + " wants " +
                               LockModeToString(mode) + ", txn " +
                               std::to_string(holder) + " holds " +
                               LockModeToString(held_mode));
      }
    }
    return Status::OK();
  };

  // Direct conflicts on the same resource.
  PJVM_RETURN_NOT_OK(conflicts_with(id));
  if (id.whole_table) {
    // A table lock conflicts with any key lock of the fragment held by
    // someone else (scan the fragment's key entries).
    LockId lo{id.node, id.table, 0, false};
    for (auto it = locks_.lower_bound(lo); it != locks_.end(); ++it) {
      if (it->first.node != id.node || it->first.table != id.table) break;
      if (it->first.whole_table) continue;
      PJVM_RETURN_NOT_OK(conflicts_with(it->first));
    }
  } else {
    // A key lock conflicts with a fragment-level lock.
    PJVM_RETURN_NOT_OK(conflicts_with(LockId::Table(id.node, id.table)));
  }
  return Status::OK();
}

Status LockManager::Acquire(uint64_t txn_id, const LockId& id, LockMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  // Already held at sufficient strength?
  auto it = locks_.find(id);
  if (it != locks_.end()) {
    auto held = it->second.holders.find(txn_id);
    if (held != it->second.holders.end()) {
      if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
        return Status::OK();
      }
      // Upgrade request: allowed only if sole holder of anything
      // conflicting.
    }
  }
  PJVM_RETURN_NOT_OK(CheckConflicts(txn_id, id, mode));
  Entry& entry = locks_[id];
  LockMode& held = entry.holders[txn_id];
  held = (held == LockMode::kExclusive) ? LockMode::kExclusive : mode;
  if (mode == LockMode::kExclusive) held = LockMode::kExclusive;
  by_txn_[txn_id].insert(id);
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_txn_.find(txn_id);
  if (it == by_txn_.end()) return;
  for (const LockId& id : it->second) {
    auto entry = locks_.find(id);
    if (entry == locks_.end()) continue;
    entry->second.holders.erase(txn_id);
    if (entry->second.holders.empty()) locks_.erase(entry);
  }
  by_txn_.erase(it);
}

size_t LockManager::HeldCount(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_txn_.find(txn_id);
  return it == by_txn_.end() ? 0 : it->second.size();
}

bool LockManager::Holds(uint64_t txn_id, const LockId& id,
                        LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(id);
  if (it == locks_.end()) return false;
  auto held = it->second.holders.find(txn_id);
  if (held == it->second.holders.end()) return false;
  return held->second == LockMode::kExclusive || mode == LockMode::kShared;
}

size_t LockManager::TotalLocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [id, entry] : locks_) count += entry.holders.size();
  return count;
}

}  // namespace pjvm
