
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/analytical.cc" "src/CMakeFiles/pjvm_model.dir/model/analytical.cc.o" "gcc" "src/CMakeFiles/pjvm_model.dir/model/analytical.cc.o.d"
  "/root/repo/src/model/figures.cc" "src/CMakeFiles/pjvm_model.dir/model/figures.cc.o" "gcc" "src/CMakeFiles/pjvm_model.dir/model/figures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
