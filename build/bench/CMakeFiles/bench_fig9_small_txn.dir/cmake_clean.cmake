file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_small_txn.dir/bench_fig9_small_txn.cc.o"
  "CMakeFiles/bench_fig9_small_txn.dir/bench_fig9_small_txn.cc.o.d"
  "bench_fig9_small_txn"
  "bench_fig9_small_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_small_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
