file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_measured.dir/bench_fig14_measured.cc.o"
  "CMakeFiles/bench_fig14_measured.dir/bench_fig14_measured.cc.o.d"
  "bench_fig14_measured"
  "bench_fig14_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
