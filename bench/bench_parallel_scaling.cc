// Wall-clock scaling of the thread-per-node executor.
//
// The cost model's counters are identical in sequential (inline) and parallel
// execution by construction — this bench measures what changes: elapsed time.
// SystemConfig::io_stall_ns turns every charged I/O unit into simulated
// device time, so the sequential reference's wall clock tracks TW (the sum of
// all nodes' work) while the executor's wall clock tracks response time (the
// max over nodes, the paper's "all nodes proceed in parallel"). The measured
// workload is the naive method's all-node broadcast probe phase plus the
// batched base insert — the two fan-out paths with per-node balanced work.
//
// Each (nodes, mode) cell runs kIterations times into a log-bucketed latency
// histogram; BENCH_parallel_scaling.json reports p50/p95/p99 per cell (ns),
// the p50 speedup, and whether the two modes' cost counters matched exactly.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics_registry.h"
#include "workload/twotable.h"

namespace pjvm {
namespace {

constexpr uint64_t kStallNs = 50 * 1000;  // 50us per weighted I/O unit.
constexpr int kDeltaRows = 240;
constexpr int kIterations = 5;

/// One metered run; returns wall ns and a counter fingerprint via `out`.
uint64_t RunOnce(int nodes, bool parallel, std::string* fingerprint) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  cfg.parallel_execution = parallel;
  cfg.io_stall_ns = kStallNs;
  ParallelSystem sys(cfg);
  TwoTableConfig tt;
  tt.b_join_keys = 150;
  tt.fanout = 8;
  tt.b_clustered_on_d = false;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kNaive).Check();

  // Delta keys beyond B's key range: every node still pays the full broadcast
  // probe (one index SEARCH per delta tuple per node), but no join results
  // materialize, so the serial view-apply tail stays negligible and the
  // measured time is the fan-out phases themselves.
  std::vector<Row> rows;
  rows.reserve(kDeltaRows);
  for (int64_t i = 0; i < kDeltaRows; ++i) {
    rows.push_back({Value{1000000 + i}, Value{tt.b_join_keys + i}, Value{i}});
  }
  bench::RunResult r =
      bench::MeterDelta(&manager, DeltaBatch::Inserts("A", rows));

  std::ostringstream os;
  for (int i = 0; i < nodes; ++i) {
    NodeCounters c = sys.cost().node(i);
    os << i << ":" << c.searches << "," << c.fetches << "," << c.inserts << ","
       << c.sends << ";";
  }
  os << "TW=" << r.total_workload_io << " RT=" << r.response_time_io
     << " sends=" << r.sends << " touched=" << r.nodes_touched;
  *fingerprint = os.str();
  return static_cast<uint64_t>(r.wall_ms * 1e6);
}

struct Sample {
  int nodes = 0;
  HistogramData seq;
  HistogramData par;
  bool counters_match = false;
  double Speedup() const {
    return par.P50() > 0.0 ? seq.P50() / par.P50() : 0.0;
  }
};

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  bench::PrintHeader("Parallel scaling: wall clock, sequential vs executor");
  std::printf("%8s %12s %12s %12s %10s %10s\n", "nodes", "seq_p50_ms",
              "par_p50_ms", "par_p95_ms", "speedup", "identical");
  std::vector<Sample> samples;
  for (int l : {1, 2, 4, 8}) {
    Sample s;
    s.nodes = l;
    s.counters_match = true;
    for (int it = 0; it < kIterations; ++it) {
      std::string seq_fp, par_fp;
      s.seq.Add(RunOnce(l, /*parallel=*/false, &seq_fp));
      s.par.Add(RunOnce(l, /*parallel=*/true, &par_fp));
      s.counters_match &= seq_fp == par_fp;
    }
    std::printf("%8d %12.1f %12.1f %12.1f %9.2fx %10s\n", l, s.seq.P50() / 1e6,
                s.par.P50() / 1e6, s.par.P95() / 1e6, s.Speedup(),
                s.counters_match ? "yes" : "NO");
    samples.push_back(s);
  }

  bench::BenchReport report("parallel_scaling");
  {
    bench::JsonWriter config;
    config.BeginObject()
        .Key("io_stall_ns").Uint(kStallNs)
        .Key("delta_rows").Int(kDeltaRows)
        .Key("iterations").Int(kIterations)
        .Key("latency_unit").Str("ns")
        .EndObject();
    report.Add("config", config.str());
  }
  bench::JsonWriter points;
  points.BeginArray();
  for (const Sample& s : samples) {
    points.BeginObject()
        .Key("nodes").Int(s.nodes)
        .Key("seq_wall").Raw(bench::LatencyJson(s.seq))
        .Key("par_wall").Raw(bench::LatencyJson(s.par))
        .Key("speedup_p50").Num(s.Speedup())
        .Key("counters_identical").Bool(s.counters_match)
        .EndObject();
  }
  points.EndArray();
  report.Add("points", points.str());
  report.Write();
  return 0;
}
