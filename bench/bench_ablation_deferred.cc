// Ablation: immediate maintenance (the paper's setting) vs deferred batch
// refresh (the traditional warehouse baseline the paper's introduction
// contrasts it with).
//
// Immediate maintenance pays per update transaction but the view is always
// current; deferred maintenance pays one scan-dominated recomputation per
// refresh and the view lags in between. Sweeping the number of update
// transactions between refreshes shows the crossover — and why "use the
// warehouse operationally" (real-time reads) forces the immediate methods
// whose costs the paper compares.

#include <cstdio>

#include "bench/bench_util.h"

namespace pjvm {
namespace {

struct Outcome {
  double io = 0.0;
  size_t txns = 0;
};

Outcome Run(MaintenanceTiming timing, MaintenanceMethod method, int txns) {
  SystemConfig cfg;
  cfg.num_nodes = 8;
  cfg.rows_per_page = 8;
  ParallelSystem sys(cfg);
  TwoTableConfig data;
  data.b_join_keys = 2048;
  data.fanout = 2;
  LoadTwoTable(&sys, data).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), method, timing).Check();
  sys.cost().Reset();
  for (int i = 0; i < txns; ++i) {
    manager.InsertRow("A", MakeDeltaA(data, i)).status().Check();
  }
  if (timing == MaintenanceTiming::kDeferred) {
    manager.RefreshView("JV").Check();
  }
  manager.CheckAllConsistent().Check();
  return Outcome{sys.cost().TotalWorkload(), static_cast<size_t>(txns)};
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  bench::PrintHeader(
      "Immediate vs deferred refresh: total I/O for N single-tuple txns "
      "+ (deferred) one refresh");
  std::printf("%8s %16s %16s %16s %16s\n", "txns", "imm_naive", "imm_aux",
              "deferred", "io_per_txn_aux");
  bench::BenchReport report("ablation_deferred");
  bench::JsonWriter points;
  points.BeginArray();
  for (int txns : {1, 4, 16, 64, 256}) {
    Outcome naive = Run(MaintenanceTiming::kImmediate,
                        MaintenanceMethod::kNaive, txns);
    Outcome aux = Run(MaintenanceTiming::kImmediate,
                      MaintenanceMethod::kAuxRelation, txns);
    Outcome deferred = Run(MaintenanceTiming::kDeferred,
                           MaintenanceMethod::kAuxRelation, txns);
    std::printf("%8d %16.0f %16.0f %16.0f %16.1f\n", txns, naive.io, aux.io,
                deferred.io, aux.io / txns);
    points.BeginObject()
        .Key("txns").Int(txns)
        .Key("immediate_naive_io").Num(naive.io)
        .Key("immediate_aux_io").Num(aux.io)
        .Key("deferred_io").Num(deferred.io)
        .Key("io_per_txn_aux").Num(aux.io / txns)
        .EndObject();
  }
  points.EndArray();
  report.Add("points", points.str());
  report.Write();
  std::printf(
      "\nDeferred amortizes its scans over the interval (winning for long\n"
      "intervals) but the view is stale the whole time; the paper's\n"
      "operational scenario requires current views, i.e. the immediate\n"
      "columns — which is where the AR-vs-naive comparison matters.\n");
  return 0;
}
