#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "view/merged_storage.h"
#include "view/view_manager.h"
#include "view_test_util.h"

namespace pjvm {
namespace {

// Fixture for the merged co-clustered layout (SystemConfig::merged_ar_storage):
// A(a,c,e) and B(b,d,f) hash-partitioned on their keys, joined on c = d, the
// view partitioned on the join attribute so the cluster {A.c, B.d, V} is
// non-empty. `merged` toggles the layout; everything else is identical, which
// is what the fingerprint-equivalence tests rely on.
struct MergedFixture {
  std::unique_ptr<ParallelSystem> sys;
  std::unique_ptr<ViewManager> manager;
  int64_t next_a = 0;
  int64_t next_b = 1000;

  explicit MergedFixture(bool merged, int num_nodes = 4, bool locking = false,
                         bool with_c = false) {
    SystemConfig cfg;
    cfg.num_nodes = num_nodes;
    cfg.rows_per_page = 4;
    cfg.merged_ar_storage = merged;
    cfg.enable_locking = locking;
    sys = std::make_unique<ParallelSystem>(cfg);
    sys->CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
    sys->CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
    if (with_c) sys->CreateTable(MakeTableDef("C", CSchema(), "g")).Check();
    // Seed B with two rows per join key in [0, 10).
    for (int64_t k = 0; k < 10; ++k) {
      for (int64_t r = 0; r < 2; ++r) {
        sys->Insert("B", {Value{next_b}, Value{k}, Value{next_b * 10}}).Check();
        ++next_b;
      }
    }
    manager = std::make_unique<ViewManager>(sys.get());
  }

  // V = A join B on c = d, partitioned on the join attribute A.c.
  JoinViewDef TwoTableView(const std::string& name = "V") {
    JoinViewDef def;
    def.name = name;
    def.bases = {{"A", "A"}, {"B", "B"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}};
    def.partition_on = ColumnRef{"A", "c"};
    return def;
  }

  // V3 = A join B join C, all on the same attribute (c = d, d = g), so the
  // cluster's join-edge closure covers all three bases.
  JoinViewDef ThreeTableView(const std::string& name = "V3") {
    JoinViewDef def;
    def.name = name;
    def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}, {{"B", "d"}, {"C", "g"}}};
    def.partition_on = ColumnRef{"A", "c"};
    return def;
  }

  Row NextARow(int64_t join_key) {
    int64_t k = next_a++;
    return {Value{k}, Value{join_key}, Value{k * 100}};
  }
  Row NextBRow(int64_t join_key) {
    int64_t k = next_b++;
    return {Value{k}, Value{join_key}, Value{k * 10}};
  }

  std::map<std::string, int> ViewBag(const std::string& name = "V") {
    return RowBag(manager->view(name)->Contents());
  }

  uint64_t TotalDescents() {
    uint64_t total = 0;
    for (const NodeCounters& c : sys->cost().Snapshot()) total += c.descents;
    return total;
  }
};

// The same mixed delta stream (inserts and deletes on both bases, plus an
// update) applied to one fixture.
void RunChurn(MergedFixture& fx) {
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(k)).ok());
  }
  ASSERT_TRUE(fx.manager->InsertRow("B", fx.NextBRow(3)).ok());
  ASSERT_TRUE(fx.manager->InsertRow("B", fx.NextBRow(4)).ok());
  // Delete one seeded B row (join key 0) and one A row.
  ASSERT_TRUE(
      fx.manager
          ->DeleteRow("B", {Value{int64_t{1000}}, Value{int64_t{0}},
                            Value{int64_t{10000}}})
          .ok());
  ASSERT_TRUE(fx.manager
                  ->DeleteRow("A", {Value{int64_t{5}}, Value{int64_t{5}},
                                    Value{int64_t{500}}})
                  .ok());
  // Update: move an A row from join key 7 to join key 2.
  ASSERT_TRUE(fx.manager
                  ->UpdateRow("A",
                              {Value{int64_t{7}}, Value{int64_t{7}},
                               Value{int64_t{700}}},
                              {Value{int64_t{7}}, Value{int64_t{2}},
                               Value{int64_t{700}}})
                  .ok());
}

TEST(MergedStorageTest, RegistersClusterMembersWhenEligible) {
  MergedFixture fx(/*merged=*/true);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.TwoTableView(),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  MergedViewStorage* store = fx.manager->merged_storage("V");
  ASSERT_NE(store, nullptr);
  // The join-edge closure of A.c contains both edge endpoints.
  ASSERT_EQ(store->members().size(), 2u);
  EXPECT_TRUE(store->CoversBase(0, 1));  // A.c
  EXPECT_TRUE(store->CoversBase(1, 1));  // B.d
  EXPECT_FALSE(store->CoversBase(0, 2));
  // The backfill is already mirrored (B's 20 seeded rows; no A, no view).
  EXPECT_GT(store->TreeBytes(), 0u);
  ASSERT_TRUE(store->CheckConsistent().ok());
}

TEST(MergedStorageTest, KnobOffOrIneligibleKeepsSeparateLayout) {
  // Knob off: no merged store.
  MergedFixture off(/*merged=*/false);
  ASSERT_TRUE(off.manager
                  ->RegisterView(off.TwoTableView(),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  EXPECT_EQ(off.manager->merged_storage("V"), nullptr);

  // Knob on but the view partitioned on a non-join attribute (A.e): the
  // cluster is empty and the separate layout is kept silently.
  MergedFixture on(/*merged=*/true);
  JoinViewDef def = on.TwoTableView("VP");
  def.partition_on = ColumnRef{"A", "e"};
  ASSERT_TRUE(
      on.manager->RegisterView(def, MaintenanceMethod::kAuxRelation).ok());
  EXPECT_EQ(on.manager->merged_storage("VP"), nullptr);
  ASSERT_TRUE(on.manager->InsertRow("A", on.NextARow(1)).ok());
  ASSERT_TRUE(on.manager->CheckAllConsistent().ok());

  // Knob on but a non-AR method: ineligible.
  MergedFixture gi(/*merged=*/true);
  ASSERT_TRUE(gi.manager
                  ->RegisterView(gi.TwoTableView(),
                                 MaintenanceMethod::kGlobalIndex)
                  .ok());
  EXPECT_EQ(gi.manager->merged_storage("V"), nullptr);
}

TEST(MergedStorageTest, FingerprintIdenticalToSeparateLayout) {
  MergedFixture merged(/*merged=*/true);
  MergedFixture separate(/*merged=*/false);
  for (MergedFixture* fx : {&merged, &separate}) {
    ASSERT_TRUE(fx->manager
                    ->RegisterView(fx->TwoTableView(),
                                   MaintenanceMethod::kAuxRelation)
                    .ok());
    RunChurn(*fx);
    ASSERT_TRUE(fx->manager->CheckAllConsistent().ok());
  }
  EXPECT_EQ(merged.ViewBag(), separate.ViewBag());
  EXPECT_FALSE(merged.ViewBag().empty());
}

TEST(MergedStorageTest, ThreeTableChainFullyMerged) {
  MergedFixture merged(/*merged=*/true, 4, false, /*with_c=*/true);
  MergedFixture separate(/*merged=*/false, 4, false, /*with_c=*/true);
  for (MergedFixture* fx : {&merged, &separate}) {
    for (int64_t k = 0; k < 10; ++k) {
      fx->sys->Insert("C", {Value{k}, Value{k + 50}, Value{k * 7}}).Check();
    }
    ASSERT_TRUE(fx->manager
                    ->RegisterView(fx->ThreeTableView(),
                                   MaintenanceMethod::kAuxRelation)
                    .ok());
  }
  MergedViewStorage* store = merged.manager->merged_storage("V3");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->members().size(), 3u);
  for (MergedFixture* fx : {&merged, &separate}) {
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(fx->manager->InsertRow("A", fx->NextARow(k)).ok());
    }
    ASSERT_TRUE(fx->manager->InsertRow("B", fx->NextBRow(2)).ok());
    ASSERT_TRUE(
        fx->manager
            ->DeleteRow("C", {Value{int64_t{4}}, Value{int64_t{54}},
                              Value{int64_t{28}}})
            .ok());
    ASSERT_TRUE(fx->manager->CheckAllConsistent().ok());
  }
  EXPECT_EQ(merged.ViewBag("V3"), separate.ViewBag("V3"));
  EXPECT_FALSE(merged.ViewBag("V3").empty());
}

TEST(MergedStorageTest, DescentReductionAtLeastThirtyPercent) {
  // The ISSUE's acceptance bar: at the default 4-node config, per-delta
  // maintenance descents drop >= 30% with contents fingerprint-identical.
  MergedFixture merged(/*merged=*/true);
  MergedFixture separate(/*merged=*/false);
  uint64_t counts[2] = {0, 0};
  int i = 0;
  for (MergedFixture* fx : {&merged, &separate}) {
    ASSERT_TRUE(fx->manager
                    ->RegisterView(fx->TwoTableView(),
                                   MaintenanceMethod::kAuxRelation)
                    .ok());
    uint64_t before = fx->TotalDescents();
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(fx->manager->InsertRow("A", fx->NextARow(k)).ok());
    }
    counts[i++] = fx->TotalDescents() - before;
  }
  EXPECT_EQ(merged.ViewBag(), separate.ViewBag());
  ASSERT_GT(counts[1], 0u);
  EXPECT_LE(counts[0] * 100, counts[1] * 70)
      << "merged=" << counts[0] << " separate=" << counts[1];
  // Each maintenance transaction opened at least one key range.
  EXPECT_GT(merged.manager->merged_storage("V")->range_ops(), 0u);
}

TEST(MergedStorageTest, AbortRollsBackTreeEdits) {
  MergedFixture fx(/*merged=*/true);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.TwoTableView(),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  MergedViewStorage* store = fx.manager->merged_storage("V");
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->CheckConsistent().ok());
  // An explicit transaction edits the tree eagerly (insert + delete of a
  // seeded B mirror row); the journal must undo both on abort.
  uint64_t txn = fx.sys->Begin();
  Row view_row = {Value{int64_t{1}}, Value{int64_t{1}}, Value{int64_t{100}},
                  Value{int64_t{1000}}, Value{int64_t{1}},
                  Value{int64_t{10000}}};
  int node = fx.sys->HomeNodeForKey(Value{int64_t{1}});
  ASSERT_TRUE(store->ApplyViewEdit(txn, node, view_row, /*is_delete=*/false)
                  .ok());
  EXPECT_FALSE(store->CheckConsistent().ok());  // Tree now leads the heap.
  store->OnAbort(txn);
  fx.sys->Abort(txn).Check();
  ASSERT_TRUE(store->CheckConsistent().ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(MergedStorageTest, CrashRecoveryRebuildsTrees) {
  MergedFixture fx(/*merged=*/true);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.TwoTableView(),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  RunChurn(fx);
  std::map<std::string, int> before = fx.ViewBag();
  fx.sys->Crash();
  ASSERT_TRUE(fx.sys->Recover().ok());
  ASSERT_TRUE(fx.manager->RecoverViews().ok());
  EXPECT_EQ(fx.ViewBag(), before);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
  // Post-recovery churn keeps working against the rebuilt trees.
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(2)).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(MergedStorageTest, TableBytesAttributesTreesToView) {
  MergedFixture fx(/*merged=*/true);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.TwoTableView(),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  RunChurn(fx);
  MergedViewStorage* store = fx.manager->merged_storage("V");
  ASSERT_NE(store, nullptr);
  ASSERT_GT(store->TreeBytes(), 0u);
  // The overlay folds the merged trees into the view's storage line.
  EXPECT_GE(fx.sys->TableBytes("V"), store->TreeBytes());
  // Unregister drops the overlay and the store with the view.
  ASSERT_TRUE(fx.manager->UnregisterView("V").ok());
  EXPECT_EQ(fx.manager->merged_storage("V"), nullptr);
}

TEST(MergedStorageTest, ConcurrentDeltasStayConsistent) {
  // Wait-die victims must roll their tree edits back before releasing their
  // range locks; invariant 10 (CheckConsistent inside CheckAllConsistent)
  // catches any torn state. Also the TSan target for the merged layout.
  MergedFixture fx(/*merged=*/true, 4, /*locking=*/true);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.TwoTableView(),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 12;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fx, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Distinct key spaces per thread for row identity, shared join keys
        // [0, 4) for range-lock contention.
        int64_t key = 10000 + t * 1000 + i;
        int64_t join_key = (t + i) % 4;
        Row row = {Value{key}, Value{join_key}, Value{key * 100}};
        Result<MaintenanceReport> r =
            fx.manager->ApplyDelta(DeltaBatch::Inserts("A", {row}));
        if (!r.ok()) {
          // Bounded-retry exhaustion surfaces Aborted; anything else is a
          // real failure.
          ASSERT_TRUE(r.status().IsAborted()) << r.status();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

}  // namespace
}  // namespace pjvm
