file(REMOVE_RECURSE
  "CMakeFiles/pjvm_common.dir/common/metrics.cc.o"
  "CMakeFiles/pjvm_common.dir/common/metrics.cc.o.d"
  "CMakeFiles/pjvm_common.dir/common/rng.cc.o"
  "CMakeFiles/pjvm_common.dir/common/rng.cc.o.d"
  "CMakeFiles/pjvm_common.dir/common/row.cc.o"
  "CMakeFiles/pjvm_common.dir/common/row.cc.o.d"
  "CMakeFiles/pjvm_common.dir/common/schema.cc.o"
  "CMakeFiles/pjvm_common.dir/common/schema.cc.o.d"
  "CMakeFiles/pjvm_common.dir/common/status.cc.o"
  "CMakeFiles/pjvm_common.dir/common/status.cc.o.d"
  "CMakeFiles/pjvm_common.dir/common/value.cc.o"
  "CMakeFiles/pjvm_common.dir/common/value.cc.o.d"
  "libpjvm_common.a"
  "libpjvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
