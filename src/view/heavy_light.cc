#include "view/heavy_light.h"

#include <algorithm>

#include "common/row.h"
#include "obs/metrics_registry.h"
#include "storage/stats.h"

namespace pjvm {

namespace {

/// Buckets per fragment histogram. Equi-depth never splits a value, so hot
/// keys are exact at any bucket count; 16 keeps the light tail's estimates
/// reasonable at bench scales.
constexpr int kHistogramBuckets = 16;

std::string HeavyKeyId(const std::string& table, int col, const Value& key) {
  return table + "#" + std::to_string(col) + "#" + key.ToString();
}

}  // namespace

// ------------------------------------------------------ HeavyLightClassifier

HeavyLightClassifier::ColumnStatsEntry& HeavyLightClassifier::StatsFor(
    const std::string& table, int col) {
  auto it = stats_.find({table, col});
  if (it != stats_.end()) return it->second;
  ColumnStatsEntry entry;
  std::vector<ColumnStats> parts;
  for (int n = 0; n < sys_->num_nodes(); ++n) {
    Node* node = sys_->node(n);
    const TableFragment* frag = node->fragment(table);
    if (frag == nullptr) continue;
    // Statistics read the live fragment like every other planning-time
    // estimate; the shared latch keeps concurrent page writers out.
    NodeLatchGuard latch(*node, LatchMode::kShared);
    entry.fragments.push_back(
        BuildFragmentHistogram(*frag, col, kHistogramBuckets));
    parts.push_back(ComputeColumnStats(*frag, col));
  }
  // Table-level average fanout. MergeColumnStats sums per-fragment distinct
  // counts — an upper bound that is 1x..F x inflated when the table is NOT
  // partitioned on `col` (every fragment sees most keys), which deflates the
  // average and over-classifies uniform keys heavy. Classification instead
  // uses the max fragment distinct count: exact in that common case, and a
  // conservative under-count (fewer heavy keys, never a wrong view) when the
  // table IS partitioned on the join column.
  size_t rows = 0;
  size_t distinct = 0;
  for (const ColumnStats& p : parts) {
    rows += p.row_count;
    distinct = std::max(distinct, p.distinct_count);
  }
  entry.avg_fanout =
      distinct == 0
          ? 1.0
          : std::max(1.0, static_cast<double>(rows) /
                              static_cast<double>(distinct));
  return stats_.emplace(std::make_pair(table, col), std::move(entry))
      .first->second;
}

void HeavyLightClassifier::RecordOps(const std::string& table, size_t ops) {
  if (stats_refresh_ops_ <= 0) return;  // Build once, never refresh.
  std::lock_guard<std::mutex> lock(mu_);
  size_t& since = ops_since_build_[table];
  since += ops;
  if (since < static_cast<size_t>(stats_refresh_ops_)) return;
  since = 0;
  // Drop every cached column of the table; the next estimate rebuilds from
  // the fragments as they are *now*, so a drifted hot key reclassifies.
  for (auto it = stats_.begin(); it != stats_.end();) {
    if (it->first.first == table) {
      it = stats_.erase(it);
    } else {
      ++it;
    }
  }
  MetricsRegistry::Global().counter("pjvm_stats_rebuilds")->Increment();
}

double HeavyLightClassifier::EstimateEq(const std::string& table, int col,
                                        const Value& key) {
  std::lock_guard<std::mutex> lock(mu_);
  double rows = 0.0;
  for (const EquiDepthHistogram& hist : StatsFor(table, col).fragments) {
    rows += hist.EstimateEq(key);
  }
  return rows;
}

double HeavyLightClassifier::AvgFanout(const std::string& table, int col) {
  std::lock_guard<std::mutex> lock(mu_);
  return StatsFor(table, col).avg_fanout;
}

bool HeavyLightClassifier::HeavyKey(const std::string& table, int col,
                                    const Value& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const ColumnStatsEntry& stats = StatsFor(table, col);
  double est = 0.0;
  for (const EquiDepthHistogram& hist : stats.fragments) {
    est += hist.EstimateEq(key);
  }
  double ratio = est / stats.avg_fanout;
  std::string id = HeavyKeyId(table, col, key);
  bool was_heavy = heavy_.count(id) > 0;
  // Hysteresis: promote at the full ratio, demote at half of it, so a key
  // sitting exactly on the boundary keeps its regime.
  bool now_heavy =
      was_heavy ? ratio >= promote_ratio_ / 2 : ratio >= promote_ratio_;
  if (now_heavy != was_heavy) {
    if (now_heavy) {
      heavy_.insert(id);
    } else {
      heavy_.erase(id);
    }
    MetricsRegistry::Global()
        .gauge("pjvm_heavy_keys_live")
        ->Set(static_cast<double>(heavy_.size()));
  }
  return now_heavy;
}

bool HeavyLightClassifier::IsHeavy(const BoundView& bound, int updated_base,
                                   const Row& row) {
  for (const BoundEdge& edge : bound.bound_edges()) {
    int my_col, other_base, other_col;
    if (edge.left_base == updated_base) {
      my_col = edge.left_col;
      other_base = edge.right_base;
      other_col = edge.right_col;
    } else if (edge.right_base == updated_base) {
      my_col = edge.right_col;
      other_base = edge.left_base;
      other_col = edge.left_col;
    } else {
      continue;
    }
    if (HeavyKey(bound.base_def(other_base).name, other_col, row[my_col])) {
      return true;
    }
  }
  return false;
}

size_t HeavyLightClassifier::heavy_keys_live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heavy_.size();
}

// -------------------------------------------------------- DeferredDeltaStore

bool DeferredDeltaStore::Append(const std::string& view, int base_idx,
                                bool is_delete, Row row, GlobalRowId gid) {
  Buffer& buf = buffers_[view];
  if (buf.rows() == 0) buf.base_idx = base_idx;
  std::vector<Row>& opposite = is_delete ? buf.inserts : buf.deletes;
  std::vector<GlobalRowId>& opposite_gids =
      is_delete ? buf.insert_gids : buf.delete_gids;
  for (size_t i = 0; i < opposite.size(); ++i) {
    if (opposite[i] == row) {
      opposite.erase(opposite.begin() + i);
      opposite_gids.erase(opposite_gids.begin() + i);
      cancelled_ += 2;  // Both the buffered row and this one vanish.
      return true;
    }
  }
  std::vector<Row>& same = is_delete ? buf.deletes : buf.inserts;
  std::vector<GlobalRowId>& same_gids =
      is_delete ? buf.delete_gids : buf.insert_gids;
  same.push_back(std::move(row));
  same_gids.push_back(gid);
  return false;
}

const DeferredDeltaStore::Buffer* DeferredDeltaStore::Find(
    const std::string& view) const {
  auto it = buffers_.find(view);
  return it == buffers_.end() ? nullptr : &it->second;
}

std::map<std::string, int> DeferredDeltaStore::SignedCounts(
    const std::string& view, bool deletes) const {
  std::map<std::string, int> counts;
  const Buffer* buf = Find(view);
  if (buf == nullptr) return counts;
  for (const Row& row : deletes ? buf->deletes : buf->inserts) {
    ++counts[RowToString(row)];
  }
  return counts;
}

size_t DeferredDeltaStore::rows(const std::string& view) const {
  const Buffer* buf = Find(view);
  return buf == nullptr ? 0 : buf->rows();
}

size_t DeferredDeltaStore::total_rows() const {
  size_t total = 0;
  for (const auto& [name, buf] : buffers_) total += buf.rows();
  return total;
}

void DeferredDeltaStore::Clear(const std::string& view) {
  buffers_.erase(view);
}

}  // namespace pjvm
