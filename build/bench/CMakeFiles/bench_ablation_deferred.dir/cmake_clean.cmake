file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deferred.dir/bench_ablation_deferred.cc.o"
  "CMakeFiles/bench_ablation_deferred.dir/bench_ablation_deferred.cc.o.d"
  "bench_ablation_deferred"
  "bench_ablation_deferred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deferred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
