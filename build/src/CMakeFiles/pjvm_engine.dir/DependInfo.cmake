
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/catalog.cc" "src/CMakeFiles/pjvm_engine.dir/engine/catalog.cc.o" "gcc" "src/CMakeFiles/pjvm_engine.dir/engine/catalog.cc.o.d"
  "/root/repo/src/engine/node.cc" "src/CMakeFiles/pjvm_engine.dir/engine/node.cc.o" "gcc" "src/CMakeFiles/pjvm_engine.dir/engine/node.cc.o.d"
  "/root/repo/src/engine/system.cc" "src/CMakeFiles/pjvm_engine.dir/engine/system.cc.o" "gcc" "src/CMakeFiles/pjvm_engine.dir/engine/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pjvm_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
