# Empty dependencies file for bench_fig9_small_txn.
# This may be replaced when dependencies are built.
