#ifndef PJVM_ENGINE_PARTITIONER_H_
#define PJVM_ENGINE_PARTITIONER_H_

#include "common/value.h"

namespace pjvm {

/// \brief Hash-routes a key value to one of `num_nodes` data server nodes.
///
/// Everything that is "partitioned on attribute c" in the paper — base
/// relations, auxiliary relations, global indexes, and views — uses this one
/// function, so co-partitioned structures land matching keys on the same
/// node (the property the AR method relies on).
inline int NodeForKey(const Value& key, int num_nodes) {
  return static_cast<int>(key.Hash() % static_cast<uint64_t>(num_nodes));
}

}  // namespace pjvm

#endif  // PJVM_ENGINE_PARTITIONER_H_
