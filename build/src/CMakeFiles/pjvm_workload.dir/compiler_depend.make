# Empty compiler generated dependencies file for pjvm_workload.
# This may be replaced when dependencies are built.
