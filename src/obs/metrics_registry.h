#ifndef PJVM_OBS_METRICS_REGISTRY_H_
#define PJVM_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pjvm {

/// \brief Merged, non-atomic view of a latency histogram: what callers
/// aggregate across nodes/runs and compute quantiles from.
///
/// Buckets are log2-spaced: bucket 0 holds the value 0, bucket i (i >= 1)
/// holds values in [2^(i-1), 2^i - 1]. Any two HistogramData share the same
/// layout, so Merge is element-wise addition — per-node or per-run
/// histograms combine exactly (count/sum are lossless; quantiles are
/// bucket-resolution approximations clamped to the merged [min, max]).
struct HistogramData {
  static constexpr int kNumBuckets = 65;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< Valid only when count > 0.
  uint64_t max = 0;  ///< Valid only when count > 0.

  /// Bucket index a value lands in.
  static int BucketIndex(uint64_t v);
  /// Inclusive value range [BucketLo(i), BucketHi(i)] of bucket i.
  static uint64_t BucketLo(int i);
  static uint64_t BucketHi(int i);

  void Add(uint64_t v);
  void Merge(const HistogramData& other);

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
  /// Quantile q in [0, 1]: linear interpolation inside the containing
  /// bucket, clamped to the observed [min, max]. 0 when empty; exact when
  /// all recorded values were equal.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

/// \brief Thread-safe log-bucketed latency histogram (lock-free: relaxed
/// atomic bucket counts; min/max via CAS).
class LatencyHistogram {
 public:
  void Record(uint64_t v);
  HistogramData Snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, HistogramData::kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// \brief Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief Named metrics with Prometheus text exposition and a JSON dump.
///
/// Metric handles are stable for the registry's lifetime; lookup takes a
/// mutex (cold path — call sites cache the returned pointer), updates on the
/// handle are lock-free. Names may carry Prometheus labels inline:
/// `pjvm_maintain_ns{method="NAIVE"}` — exposition splices histogram `le`
/// labels into the given label set.
class MetricsRegistry {
 public:
  /// The process-wide registry the engine records into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LatencyHistogram* histogram(const std::string& name);

  /// Prometheus text exposition format (counters, gauges, and cumulative
  /// histogram buckets with _sum/_count).
  std::string PrometheusText() const;
  /// One JSON object: counters/gauges verbatim, histograms as
  /// {count, sum, mean, min, max, p50, p95, p99}.
  std::string ToJson() const;

  /// Zeroes every metric (registrations and handles survive).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace pjvm

#endif  // PJVM_OBS_METRICS_REGISTRY_H_
