// Reproduces Figure 12: the 1..300-tuple detail of Figure 11, showing the
// step-wise behaviour of the AR method — its response time depends on
// ceil(|A|/L), the most-loaded node's share of the delta.

#include <iostream>

#include "model/figures.h"

int main() {
  pjvm::model::PrintFigure(pjvm::model::MakeFigure12(), std::cout);
  return 0;
}
