file(REMOVE_RECURSE
  "libpjvm_engine.a"
)
