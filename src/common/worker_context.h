#ifndef PJVM_COMMON_WORKER_CONTEXT_H_
#define PJVM_COMMON_WORKER_CONTEXT_H_

namespace pjvm {

/// \brief Thread-local execution context consulted by the lock manager to
/// decide whether a conflicting Acquire may block.
///
/// Two kinds of threads must never park on a transaction lock:
///
///  * **Node-executor workers.** Each node runs one worker draining a FIFO
///    queue; a parked task blocks every queued task behind it, including
///    tasks of the very transaction that holds the contended lock — a
///    scheduling deadlock the wait-die order cannot see.
///  * **Any thread holding a node latch.** The physical latch serialises
///    fragment/WAL access; the lock holder may need that latch to make
///    progress toward its release.
///
/// In these contexts a would-wait decision degrades to an immediate
/// Aborted (the classic no-wait outcome), which the maintenance retry loop
/// absorbs. Client threads outside any latch may block normally.
struct WorkerContext {
  /// Set for the lifetime of a NodeExecutor worker thread.
  static inline thread_local bool is_executor_worker = false;
  /// Number of node latches currently held by this thread.
  static inline thread_local int latch_depth = 0;

  /// True when a blocking lock wait would risk a scheduling deadlock.
  static bool MustNotBlock() {
    return is_executor_worker || latch_depth > 0;
  }
};

/// RAII marker for latch scopes (increments on acquire, decrements on
/// release). Pair one of these with every node-latch guard.
struct LatchDepthScope {
  LatchDepthScope() { ++WorkerContext::latch_depth; }
  ~LatchDepthScope() { --WorkerContext::latch_depth; }
  LatchDepthScope(const LatchDepthScope&) = delete;
  LatchDepthScope& operator=(const LatchDepthScope&) = delete;
};

}  // namespace pjvm

#endif  // PJVM_COMMON_WORKER_CONTEXT_H_
