#include "storage/merged_tree.h"

#include <cstring>

namespace pjvm {
namespace mergedkey {

namespace {

void AppendBigEndian64(uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

}  // namespace

std::string EncodeValueOrdered(const Value& v) {
  std::string out;
  switch (v.type()) {
    case ValueType::kInt64: {
      out.push_back('\x01');
      // Flipping the sign bit maps the signed order onto the unsigned
      // (byte-lexicographic) order.
      AppendBigEndian64(static_cast<uint64_t>(v.AsInt64()) ^
                            (uint64_t{1} << 63),
                        &out);
      break;
    }
    case ValueType::kDouble: {
      out.push_back('\x02');
      double d = v.AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d), "IEEE-754 double expected");
      std::memcpy(&bits, &d, sizeof(bits));
      // IEEE-754 total-order transform: negatives (sign bit set) reverse
      // under byte order, so flip all their bits; non-negatives just need
      // the sign bit set to sort above every negative.
      if (bits >> 63 != 0) {
        bits = ~bits;
      } else {
        bits |= uint64_t{1} << 63;
      }
      AppendBigEndian64(bits, &out);
      break;
    }
    case ValueType::kString: {
      out.push_back('\x03');
      for (char c : v.AsString()) {
        if (c == '\0') {
          // Escape NUL so the {0x00,0x00} terminator stays unique; the
          // 0xFF continuation keeps "a\0..." sorting above "a".
          out.push_back('\x00');
          out.push_back('\xFF');
        } else {
          out.push_back(c);
        }
      }
      out.push_back('\x00');
      out.push_back('\x00');
      break;
    }
  }
  return out;
}

std::string KeyPrefix(const Value& join_key) {
  return EncodeValueOrdered(join_key);
}

Value EncodeComposite(const Value& join_key, uint8_t tag, const Row& pk) {
  std::string key = KeyPrefix(join_key);
  key.push_back(static_cast<char>(tag));
  for (const Value& v : pk) key += EncodeValueOrdered(v);
  return Value(std::move(key));
}

Value RangeLo(const Value& join_key) { return Value(KeyPrefix(join_key)); }

Value RangeHi(const Value& join_key) {
  std::string hi = KeyPrefix(join_key);
  hi.push_back('\xFF');  // Above every tag byte; below every other prefix.
  return Value(std::move(hi));
}

uint8_t DecodeTag(const std::string& composite, size_t prefix_len) {
  return static_cast<uint8_t>(composite[prefix_len]);
}

}  // namespace mergedkey

void MergedTreeFragment::InsertEntry(const Value& join_key, uint8_t tag,
                                     const Row& pk, const Row& row) {
  Value key = mergedkey::EncodeComposite(join_key, tag, pk);
  bytes_ += key.ByteSize() + RowByteSize(row);
  tree_.Insert(key, row);
}

Status MergedTreeFragment::RemoveEntry(const Value& join_key, uint8_t tag,
                                       const Row& pk, const Row& row) {
  Value key = mergedkey::EncodeComposite(join_key, tag, pk);
  PJVM_RETURN_NOT_OK(tree_.Remove(key, row));
  bytes_ -= key.ByteSize() + RowByteSize(row);
  return Status::OK();
}

void MergedTreeFragment::ScanKey(
    const Value& join_key,
    const std::function<bool(uint8_t, const Row&)>& fn) const {
  const size_t prefix_len = mergedkey::KeyPrefix(join_key).size();
  tree_.ScanRange(mergedkey::RangeLo(join_key), mergedkey::RangeHi(join_key),
                  [&](const Value& key, const Row& row) {
                    return fn(mergedkey::DecodeTag(key.AsString(), prefix_len),
                              row);
                  });
}

void MergedTreeFragment::ForEach(
    const std::function<bool(uint8_t, const Row&)>& fn) const {
  bool keep_going = true;
  tree_.ForEachEntry([&](const Value& key,
                         const BPlusTree<Row>::PostingList& list) {
    // The tag sits right after the join-key prefix; the prefix is
    // self-delimiting (fixed width for numerics, {0,0}-terminated for
    // strings), so walk it instead of re-encoding.
    const std::string& k = key.AsString();
    size_t prefix_len = 0;
    switch (k[0]) {
      case '\x01':
      case '\x02':
        prefix_len = 9;
        break;
      default: {  // '\x03': scan for the unescaped {0x00,0x00} terminator.
        size_t i = 1;
        while (!(k[i] == '\0' && k[i + 1] == '\0')) {
          i += (k[i] == '\0') ? 2 : 1;
        }
        prefix_len = i + 2;
        break;
      }
    }
    uint8_t tag = mergedkey::DecodeTag(k, prefix_len);
    for (const Row& row : list) {
      if (!fn(tag, row)) {
        keep_going = false;
        return false;
      }
    }
    return keep_going;
  });
}

void MergedTreeFragment::Clear() {
  tree_ = BPlusTree<Row>();
  bytes_ = 0;
}

}  // namespace pjvm
