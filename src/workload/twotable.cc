#include "workload/twotable.h"

namespace pjvm {

Status LoadTwoTable(ParallelSystem* sys, const TwoTableConfig& config) {
  TableDef a;
  a.name = "A";
  a.schema = Schema({{"a", ValueType::kInt64},
                     {"c", ValueType::kInt64},
                     {"e", ValueType::kInt64}});
  a.partition = PartitionSpec::Hash("a");
  PJVM_RETURN_NOT_OK(sys->CreateTable(a));

  TableDef b;
  b.name = "B";
  b.schema = Schema({{"b", ValueType::kInt64},
                     {"d", ValueType::kInt64},
                     {"f", ValueType::kInt64}});
  b.partition = PartitionSpec::Hash("b");
  b.indexes.push_back(IndexSpec{"d", config.b_clustered_on_d});
  PJVM_RETURN_NOT_OK(sys->CreateTable(b));

  int64_t bkey = 0;
  for (int64_t k = 0; k < config.b_join_keys; ++k) {
    for (int64_t r = 0; r < config.fanout; ++r) {
      PJVM_RETURN_NOT_OK(
          sys->Insert("B", {Value{bkey}, Value{k}, Value{bkey * 7}}));
      ++bkey;
    }
  }
  return Status::OK();
}

Row MakeDeltaA(const TwoTableConfig& config, int64_t i) {
  // Uniformly distributed on the join attribute (assumption 9): cycle
  // through B's key domain deterministically.
  return {Value{i}, Value{i % config.b_join_keys}, Value{i * 3}};
}

JoinViewDef MakeModelView() {
  JoinViewDef def;
  def.name = "JV";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  return def;
}

}  // namespace pjvm
