#include "txn/lock_manager.h"

#include <chrono>
#include <optional>

#include "common/worker_context.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace pjvm {

const char* LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

std::string LockId::ToString() const {
  std::string out = "node" + std::to_string(node) + "/" + table;
  if (whole_table) {
    out += "/*";
  } else {
    out += "/#" + std::to_string(key_hash);
  }
  return out;
}

void LockManager::CollectConflicts(uint64_t txn_id, const LockId& id,
                                   LockMode mode,
                                   std::set<uint64_t>* out) const {
  auto collect_from = [&](const LockId& other_id) {
    auto it = locks_.find(other_id);
    if (it == locks_.end()) return;
    for (const auto& [holder, held_mode] : it->second.holders) {
      if (holder == txn_id) continue;
      if (!Compatible(held_mode, mode)) out->insert(holder);
    }
  };

  // Direct conflicts on the same resource.
  collect_from(id);
  if (id.whole_table) {
    // A table lock conflicts with any key lock of the fragment held by
    // someone else (scan the fragment's key entries).
    LockId lo{id.node, id.table, 0, false};
    for (auto it = locks_.lower_bound(lo); it != locks_.end(); ++it) {
      if (it->first.node != id.node || it->first.table != id.table) break;
      if (it->first.whole_table) continue;
      collect_from(it->first);
    }
  } else {
    // A key lock conflicts with a fragment-level lock.
    collect_from(LockId::Table(id.node, id.table));
  }
}

Status LockManager::ConflictAborted(uint64_t txn_id, const LockId& id,
                                    LockMode mode,
                                    const std::set<uint64_t>& holders,
                                    const char* why) const {
  std::string msg = std::string("lock conflict on ") + id.ToString() +
                    ": txn " + std::to_string(txn_id) + " wants " +
                    LockModeToString(mode) + ", held by txn " +
                    std::to_string(*holders.begin()) + " (" + why + ")";
  return Status::Aborted(std::move(msg));
}

void LockManager::Grant(uint64_t txn_id, const LockId& id, LockMode mode) {
  Entry& entry = locks_[id];
  LockMode& held = entry.holders[txn_id];
  held = (held == LockMode::kExclusive) ? LockMode::kExclusive : mode;
  if (mode == LockMode::kExclusive) held = LockMode::kExclusive;
  by_txn_[txn_id].insert(id);
}

Status LockManager::Acquire(uint64_t txn_id, const LockId& id, LockMode mode) {
  static Counter* waits =
      MetricsRegistry::Global().counter("pjvm_lock_waits");
  static Counter* kills =
      MetricsRegistry::Global().counter("pjvm_lock_deadlock_kills");
  static Counter* timeouts =
      MetricsRegistry::Global().counter("pjvm_lock_wait_timeouts");
  static LatencyHistogram* wait_ns =
      MetricsRegistry::Global().histogram("pjvm_lock_wait_ns");

  std::unique_lock<std::mutex> lock(mu_);
  // Already held at sufficient strength?
  auto it = locks_.find(id);
  if (it != locks_.end()) {
    auto held = it->second.holders.find(txn_id);
    if (held != it->second.holders.end()) {
      if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
        return Status::OK();
      }
      // Upgrade request: proceeds through the same conflict loop; grantable
      // once no *other* transaction holds a conflicting mode.
    }
  }

  const bool may_block = policy_ == LockPolicy::kWaitDie &&
                         wait_timeout_ms_ > 0 && !WorkerContext::MustNotBlock();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_timeout_ms_);
  std::optional<SpanGuard> wait_span;
  uint64_t wait_start_ns = 0;
  bool waited = false;

  auto finish_wait = [&](bool /*granted*/) {
    if (!waited) return;
    wait_ns->Record(Tracer::NowNs() - wait_start_ns);
    wait_span.reset();
  };

  std::set<uint64_t> conflicts;
  for (;;) {
    conflicts.clear();
    CollectConflicts(txn_id, id, mode, &conflicts);
    if (conflicts.empty()) {
      Grant(txn_id, id, mode);
      finish_wait(true);
      return Status::OK();
    }
    if (policy_ == LockPolicy::kNoWait) {
      return ConflictAborted(txn_id, id, mode, conflicts, "no-wait");
    }
    // Wait-die: die if ANY conflicting holder is older (smaller id) — the
    // re-check after each wakeup means a newly arrived older holder kills a
    // sleeping waiter too.
    if (*conflicts.begin() < txn_id) {
      kills->Increment();
      finish_wait(false);
      return ConflictAborted(txn_id, id, mode, conflicts, "wait-die kill");
    }
    if (!may_block) {
      finish_wait(false);
      return ConflictAborted(txn_id, id, mode, conflicts,
                             "would-wait in non-blocking context");
    }
    if (!waited) {
      waited = true;
      waits->Increment();
      wait_start_ns = Tracer::NowNs();
      if (Tracer::Global().enabled()) {
        wait_span.emplace("lock_wait", "txn", id.node);
        wait_span->set_detail(id.ToString());
      }
    }
    // Park on the entry's condition variable. The shared_ptr keeps the cv
    // alive even if the entry is erased while we sleep (Clear, or the last
    // holder of a covering entry releasing).
    Entry& entry = locks_[id];
    if (!entry.waiters) {
      entry.waiters = std::make_shared<std::condition_variable>();
    }
    std::shared_ptr<std::condition_variable> cv = entry.waiters;
    ++entry.waiter_count;
    std::cv_status wake = cv->wait_until(lock, deadline);
    // The map may have changed while parked; re-find before bookkeeping.
    auto it2 = locks_.find(id);
    if (it2 != locks_.end() && it2->second.waiters == cv) {
      --it2->second.waiter_count;
      if (it2->second.holders.empty() && it2->second.waiter_count == 0) {
        locks_.erase(it2);
      }
    }
    if (wake == std::cv_status::timeout) {
      conflicts.clear();
      CollectConflicts(txn_id, id, mode, &conflicts);
      if (conflicts.empty()) {
        Grant(txn_id, id, mode);
        finish_wait(true);
        return Status::OK();
      }
      timeouts->Increment();
      finish_wait(false);
      return ConflictAborted(txn_id, id, mode, conflicts, "wait timeout");
    }
  }
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_txn_.find(txn_id);
  if (it == by_txn_.end()) return;
  for (const LockId& id : it->second) {
    auto entry = locks_.find(id);
    if (entry != locks_.end()) {
      entry->second.holders.erase(txn_id);
      if (entry->second.holders.empty() && entry->second.waiter_count == 0) {
        locks_.erase(entry);
      }
    }
    // Wake waiters of every entry on this (node, table): releasing a key
    // lock can unblock a fragment-lock waiter and vice versa, and waiters
    // park on the entry they requested, not the one they conflicted with.
    LockId lo{id.node, id.table, 0, false};
    for (auto w = locks_.lower_bound(lo); w != locks_.end(); ++w) {
      if (w->first.node != id.node || w->first.table != id.table) break;
      if (w->second.waiter_count > 0 && w->second.waiters) {
        w->second.waiters->notify_all();
      }
    }
  }
  by_txn_.erase(it);
}

void LockManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, entry] : locks_) {
    if (entry.waiter_count > 0 && entry.waiters) {
      entry.waiters->notify_all();
    }
  }
  locks_.clear();
  by_txn_.clear();
}

size_t LockManager::HeldCount(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_txn_.find(txn_id);
  return it == by_txn_.end() ? 0 : it->second.size();
}

bool LockManager::Holds(uint64_t txn_id, const LockId& id,
                        LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(id);
  if (it == locks_.end()) return false;
  auto held = it->second.holders.find(txn_id);
  if (held == it->second.holders.end()) return false;
  return held->second == LockMode::kExclusive || mode == LockMode::kShared;
}

size_t LockManager::TotalLocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [id, entry] : locks_) count += entry.holders.size();
  return count;
}

}  // namespace pjvm
