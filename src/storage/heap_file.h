#ifndef PJVM_STORAGE_HEAP_FILE_H_
#define PJVM_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "storage/row_id.h"

namespace pjvm {

/// \brief A paged heap of rows with stable local row ids.
///
/// Rows live in fixed-capacity pages of `rows_per_page` slots. A local row
/// id encodes (page, slot) as `page * rows_per_page + slot` and is stable
/// until the row is deleted; deleted slots are recycled by later inserts.
/// Page counts feed the cost model (e.g., sort-merge scan cost is the number
/// of pages, as in the paper's |B| and |B_i| quantities).
class HeapFile {
 public:
  explicit HeapFile(int rows_per_page = 64);

  /// Inserts a row, returning its stable local row id.
  LocalRowId Insert(Row row);

  /// Row at `lrid`, or nullptr if the slot is empty/out of range.
  const Row* Get(LocalRowId lrid) const;

  /// Deletes the row at `lrid`; NotFound if the slot is empty.
  Status Delete(LocalRowId lrid);

  /// Deletes the row at `lrid` but keeps the slot reserved: it is NOT added
  /// to the free list, so no later Insert can recycle the lrid until
  /// ReleaseSlot(lrid). Transactional deletes use this so an abort can
  /// restore the row at its original lrid — committed global-index entries
  /// reference (node, lrid), so a row that comes back anywhere else leaves
  /// them dangling.
  Status DeleteKeepSlot(LocalRowId lrid);

  /// Recycles a slot previously emptied by DeleteKeepSlot (commit path).
  void ReleaseSlot(LocalRowId lrid) { free_list_.push_back(lrid); }

  /// Restores a row into its reserved slot (abort path). The slot must be
  /// empty and must not be on the free list — guaranteed for slots emptied
  /// by DeleteKeepSlot and not yet released.
  Status InsertAt(LocalRowId lrid, Row row);

  /// Replaces the row at `lrid`; NotFound if the slot is empty.
  Status Update(LocalRowId lrid, Row row);

  /// Visits every live row. Returning false stops the iteration.
  void ForEach(const std::function<bool(LocalRowId, const Row&)>& fn) const;

  /// Page number holding `lrid`.
  uint64_t PageOf(LocalRowId lrid) const {
    return lrid / static_cast<uint64_t>(rows_per_page_);
  }

  size_t num_rows() const { return live_count_; }
  /// Number of allocated pages (including pages that are now sparse).
  size_t num_pages() const;
  int rows_per_page() const { return rows_per_page_; }
  /// Sum of live rows' byte footprints.
  size_t byte_size() const { return byte_size_; }

 private:
  int rows_per_page_;
  std::vector<std::optional<Row>> slots_;
  std::vector<LocalRowId> free_list_;
  size_t live_count_ = 0;
  size_t byte_size_ = 0;
};

}  // namespace pjvm

#endif  // PJVM_STORAGE_HEAP_FILE_H_
