#include "txn/wal.h"

namespace pjvm {

const char* LogRecordTypeToString(LogRecordType type) {
  switch (type) {
    case LogRecordType::kInsert:
      return "INSERT";
    case LogRecordType::kDelete:
      return "DELETE";
    case LogRecordType::kPrepare:
      return "PREPARE";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kAbort:
      return "ABORT";
  }
  return "UNKNOWN";
}

std::string LogRecord::ToString() const {
  std::string out = "[" + std::to_string(lsn) + " txn=" + std::to_string(txn_id) +
                    " " + LogRecordTypeToString(type);
  if (!table.empty()) out += " " + table;
  if (!row.empty()) out += " " + RowToString(row);
  out += "]";
  return out;
}

uint64_t Wal::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = next_lsn_++;
  uint64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

void Wal::ReplayCommitted(
    const std::function<bool(uint64_t)>& is_committed,
    const std::function<void(const LogRecord&)>& apply) const {
  for (const LogRecord& rec : records_) {
    if (rec.type != LogRecordType::kInsert && rec.type != LogRecordType::kDelete) {
      continue;
    }
    if (!is_committed(rec.txn_id)) continue;
    apply(rec);
  }
}

}  // namespace pjvm
