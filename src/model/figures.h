#ifndef PJVM_MODEL_FIGURES_H_
#define PJVM_MODEL_FIGURES_H_

#include <ostream>
#include <string>
#include <vector>

#include "model/analytical.h"

namespace pjvm::model {

/// \brief One labeled line of a figure.
struct Series {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// \brief A reproduced figure: title, axes, and series.
struct Figure {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  std::vector<Series> series;
};

/// Prints a figure as an aligned table (one x column, one column per series).
void PrintFigure(const Figure& figure, std::ostream& os);

/// \brief Default parameters of Section 3.2: |B| = 6400, M = 100, N = 10,
/// K = min(N, L).
ModelParams PaperParams();

/// Figure 7: TW for a single-tuple insert vs the number of nodes L.
Figure MakeFigure7(ModelParams base = PaperParams());
/// Figure 8: TW for a single-tuple insert vs join fanout N, at L = 32.
Figure MakeFigure8(ModelParams base = PaperParams());
/// Figure 9: response time of one 400-tuple transaction (index joins win).
Figure MakeFigure9(ModelParams base = PaperParams(), double a_tuples = 400);
/// Figure 10: response time of one 6,500-tuple transaction (sort-merge wins).
Figure MakeFigure10(ModelParams base = PaperParams(), double a_tuples = 6500);
/// Figure 11: response time vs inserted tuples (1..7000) at L = 128.
Figure MakeFigure11(ModelParams base = PaperParams());
/// Figure 12: detail of Figure 11 for 1..300 tuples (step-wise ceilings).
Figure MakeFigure12(ModelParams base = PaperParams());

/// \brief Parameters of the Section 3.3 TPC-R experiment: 128 customers
/// inserted, each matching 1 orders tuple, each orders matching 4 lineitem
/// tuples; customer is partitioned on the join attribute custkey.
struct TpcrExperimentParams {
  double delta_tuples = 128;
  double orders_fanout = 1;
  double lineitem_fanout = 4;
};

/// Predicted per-node view maintenance I/O for JV1 (customer x orders).
double PredictJv1(int num_nodes, const TpcrExperimentParams& p, bool aux_method);
/// Predicted per-node view maintenance I/O for JV2 (3-way, adds lineitem).
double PredictJv2(int num_nodes, const TpcrExperimentParams& p, bool aux_method);

/// Figure 13: predicted maintenance time for JV1/JV2 under naive vs AR, for
/// L in {2, 4, 8}.
Figure MakeFigure13(TpcrExperimentParams p = TpcrExperimentParams{});

}  // namespace pjvm::model

#endif  // PJVM_MODEL_FIGURES_H_
