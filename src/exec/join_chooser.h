#ifndef PJVM_EXEC_JOIN_CHOOSER_H_
#define PJVM_EXEC_JOIN_CHOOSER_H_

#include <cstdint>
#include <string>

namespace pjvm {

/// \brief The two local join algorithms the paper's model compares
/// (Section 3.1.2); hash join behaves like sort-merge for this analysis and
/// is subsumed by it.
enum class JoinAlgorithm {
  kIndexNestedLoops = 0,
  kSortMerge,
};

const char* JoinAlgorithmToString(JoinAlgorithm algorithm);

/// \brief Inputs to the per-node join-method decision.
struct JoinChoiceInput {
  /// Outer (delta) tuples this node must process.
  uint64_t outer_tuples = 0;
  /// Index I/O per outer tuple: 1 search + per-match fetches as applicable.
  double per_tuple_index_io = 1.0;
  /// Pages of the inner fragment at this node (the paper's |B_i|).
  uint64_t inner_pages = 0;
  /// Whether the inner fragment is clustered (sorted) on the join attribute.
  bool inner_clustered = false;
  /// Sort memory in pages (the paper's M).
  int memory_pages = 100;
};

/// \brief Costed outcome of the decision.
struct JoinChoice {
  JoinAlgorithm algorithm = JoinAlgorithm::kIndexNestedLoops;
  double index_io = 0.0;
  double sort_merge_io = 0.0;
};

/// Picks min(index nested loops, sort merge) exactly as the paper's response
/// time model does: INL costs outer_tuples * per_tuple_index_io; sort-merge
/// costs |B_i| when clustered, |B_i| * ceil(log_M |B_i|) otherwise.
JoinChoice ChooseLocalJoin(const JoinChoiceInput& input);

}  // namespace pjvm

#endif  // PJVM_EXEC_JOIN_CHOOSER_H_
