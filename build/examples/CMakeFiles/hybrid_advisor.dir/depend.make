# Empty dependencies file for hybrid_advisor.
# This may be replaced when dependencies are built.
