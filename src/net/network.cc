#include "net/network.h"

namespace pjvm {

Network::Network(int num_nodes, CostTracker* tracker)
    : num_nodes_(num_nodes),
      tracker_(tracker),
      queues_(num_nodes),
      pair_counts_(static_cast<size_t>(num_nodes) * num_nodes, 0) {}

Status Network::Validate(const Message& msg) const {
  if (msg.from < 0 || msg.from >= num_nodes_) {
    return Status::InvalidArgument("network: bad source node " +
                                   std::to_string(msg.from));
  }
  if (msg.to < 0 || msg.to >= num_nodes_) {
    return Status::InvalidArgument("network: bad destination node " +
                                   std::to_string(msg.to));
  }
  return Status::OK();
}

Status Network::Send(Message msg) {
  PJVM_RETURN_NOT_OK(Validate(msg));
  size_t bytes = msg.ByteSize();
  pair_counts_[msg.from * num_nodes_ + msg.to] += 1;
  total_messages_ += 1;
  total_bytes_ += bytes;
  if (msg.from != msg.to && tracker_ != nullptr) {
    tracker_->ChargeSend(msg.from, bytes);
  }
  queues_[msg.to].push_back(std::move(msg));
  return Status::OK();
}

Status Network::Broadcast(int from, const Message& msg) {
  if (from < 0 || from >= num_nodes_) {
    return Status::InvalidArgument("network: bad broadcast source");
  }
  for (int to = 0; to < num_nodes_; ++to) {
    Message copy = msg;
    copy.from = from;
    copy.to = to;
    size_t bytes = copy.ByteSize();
    pair_counts_[from * num_nodes_ + to] += 1;
    total_messages_ += 1;
    total_bytes_ += bytes;
    // The paper charges the naive method L*SEND for "sending tuple to each
    // node", i.e. the self-copy is charged too.
    if (tracker_ != nullptr) tracker_->ChargeSend(from, bytes);
    queues_[to].push_back(std::move(copy));
  }
  return Status::OK();
}

std::optional<Message> Network::Poll(int node) {
  if (queues_[node].empty()) return std::nullopt;
  Message msg = std::move(queues_[node].front());
  queues_[node].pop_front();
  return msg;
}

bool Network::HasPending() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

void Network::ResetCounters() {
  std::fill(pair_counts_.begin(), pair_counts_.end(), 0);
  total_messages_ = 0;
  total_bytes_ = 0;
}

}  // namespace pjvm
