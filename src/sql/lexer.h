#ifndef PJVM_SQL_LEXER_H_
#define PJVM_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pjvm::sql {

/// \brief Token categories of the small view-definition SQL dialect.
enum class TokenType {
  kIdent = 0,   // table / column / alias names (case preserved)
  kKeyword,     // CREATE, VIEW, AS, SELECT, FROM, WHERE, AND, PARTITIONED, ON, JOIN
  kInt,         // 123
  kDouble,      // 1.5
  kString,      // 'text'
  kSymbol,      // , . ; * ( )
  kOperator,    // = <> != < <= > >=
  kEnd,
};

const char* TokenTypeToString(TokenType type);

/// \brief One lexed token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // Keywords uppercased; everything else verbatim.
  size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
  bool IsOperator(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Lexes `input` into tokens (a trailing kEnd token is always appended).
/// Fails on unterminated strings or unexpected characters.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace pjvm::sql

#endif  // PJVM_SQL_LEXER_H_
