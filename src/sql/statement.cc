#include "sql/statement.h"

#include <algorithm>
#include <cstdlib>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace pjvm::sql {

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  return s;
}

/// Statement-level recursive descent over the lexed tokens. CREATE VIEW is
/// delegated to ParseCreateView (stripping any trailing USING clause first).
class StatementParser {
 public:
  explicit StatementParser(std::string text) : text_(std::move(text)) {}

  Result<ParsedStatement> Parse() {
    PJVM_ASSIGN_OR_RETURN(tokens_, Lex(text_));
    ParsedStatement out;
    if (Peek().IsKeyword("CREATE")) {
      if (Peek(1).IsKeyword("VIEW") || Peek(1).IsKeyword("JOIN")) {
        return ParseCreateViewStatement();
      }
      return ParseCreateTable();
    }
    if (Peek().type == TokenType::kIdent) {
      std::string word = Upper(Peek().text);
      if (word == "INSERT") return ParseInsert();
      if (word == "DELETE") return ParseDelete();
      if (word == "SHOW") return ParseShow();
      if (word == "EXPLAIN") return ParseExplain();
      if (word == "DROP") return ParseDropView();
    }
    if (Peek().IsKeyword("SELECT")) return ParseSelect();
    return Err("expected CREATE / INSERT / DELETE / SELECT / SHOW / EXPLAIN");
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().offset) + " ('" +
                                   Peek().text + "'): " + msg);
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Err("expected " + std::string(what));
    }
    return Advance().text;
  }

  Status ExpectIdentWord(const char* word) {
    if (Peek().type != TokenType::kIdent || Upper(Peek().text) != word) {
      return Err("expected " + std::string(word));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!Peek().IsSymbol(sym)) return Err("expected '" + std::string(sym) + "'");
    Advance();
    return Status::OK();
  }

  Status EndOfStatement() {
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) return Err("unexpected trailing input");
    return Status::OK();
  }

  Result<ValueType> ParseType() {
    PJVM_ASSIGN_OR_RETURN(std::string name, ExpectIdent("a column type"));
    std::string upper = Upper(name);
    if (upper == "INT" || upper == "INT64" || upper == "BIGINT" ||
        upper == "INTEGER") {
      return ValueType::kInt64;
    }
    if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
      return ValueType::kDouble;
    }
    if (upper == "STRING" || upper == "TEXT" || upper == "VARCHAR") {
      return ValueType::kString;
    }
    return Err("unknown column type '" + name + "'");
  }

  Result<Value> ParseLiteral() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInt:
        Advance();
        return Value{
            static_cast<int64_t>(std::strtoll(tok.text.c_str(), nullptr, 10))};
      case TokenType::kDouble:
        Advance();
        return Value{std::strtod(tok.text.c_str(), nullptr)};
      case TokenType::kString:
        Advance();
        return Value{tok.text};
      default:
        return Err("expected a literal");
    }
  }

  Result<ParsedStatement> ParseCreateTable() {
    ParsedStatement out;
    out.kind = StatementKind::kCreateTable;
    Advance();  // CREATE
    PJVM_RETURN_NOT_OK(ExpectIdentWord("TABLE"));
    PJVM_ASSIGN_OR_RETURN(out.create_table.name, ExpectIdent("table name"));
    PJVM_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<Column> cols;
    while (true) {
      PJVM_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      PJVM_ASSIGN_OR_RETURN(ValueType type, ParseType());
      cols.push_back(Column{col, type});
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    PJVM_RETURN_NOT_OK(ExpectSymbol(")"));
    out.create_table.schema = Schema(std::move(cols));
    if (Peek().IsKeyword("PARTITIONED")) {
      Advance();
      PJVM_RETURN_NOT_OK(Peek().IsKeyword("ON")
                             ? (Advance(), Status::OK())
                             : Err("expected ON after PARTITIONED"));
      PJVM_ASSIGN_OR_RETURN(std::string col, ExpectIdent("partition column"));
      out.create_table.partition = PartitionSpec::Hash(col);
    }
    PJVM_RETURN_NOT_OK(EndOfStatement());
    return out;
  }

  Result<ParsedStatement> ParseCreateViewStatement() {
    // Split off a trailing "USING <method>" (not part of the view grammar).
    ParsedStatement out;
    out.kind = StatementKind::kCreateView;
    std::string view_text = text_;
    size_t using_pos = Upper(text_).rfind(" USING ");
    if (using_pos != std::string::npos) {
      std::string method = Upper(text_.substr(using_pos + 7));
      // Trim whitespace/semicolons.
      while (!method.empty() &&
             (method.back() == ';' || std::isspace(static_cast<unsigned char>(
                                          method.back())))) {
        method.pop_back();
      }
      if (method == "NAIVE") {
        out.method = MaintenanceMethod::kNaive;
      } else if (method == "AR" || method == "AUX" || method == "AUX_RELATION") {
        out.method = MaintenanceMethod::kAuxRelation;
      } else if (method == "GI" || method == "GLOBAL_INDEX") {
        out.method = MaintenanceMethod::kGlobalIndex;
      } else {
        return Status::InvalidArgument("unknown maintenance method '" + method +
                                       "' (try NAIVE, AR, or GI)");
      }
      view_text = text_.substr(0, using_pos);
    }
    PJVM_ASSIGN_OR_RETURN(out.create_view, ParseCreateView(view_text));
    return out;
  }

  Result<std::vector<Row>> ParseValuesLists() {
    std::vector<Row> rows;
    PJVM_RETURN_NOT_OK(ExpectIdentWord("VALUES"));
    while (true) {
      PJVM_RETURN_NOT_OK(ExpectSymbol("("));
      Row row;
      while (true) {
        PJVM_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        row.push_back(std::move(v));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      PJVM_RETURN_NOT_OK(ExpectSymbol(")"));
      rows.push_back(std::move(row));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    return rows;
  }

  Result<ParsedStatement> ParseInsert() {
    ParsedStatement out;
    out.kind = StatementKind::kInsert;
    Advance();  // INSERT
    PJVM_RETURN_NOT_OK(ExpectIdentWord("INTO"));
    PJVM_ASSIGN_OR_RETURN(out.table, ExpectIdent("table name"));
    PJVM_ASSIGN_OR_RETURN(out.rows, ParseValuesLists());
    PJVM_RETURN_NOT_OK(EndOfStatement());
    return out;
  }

  Result<ParsedStatement> ParseDelete() {
    ParsedStatement out;
    out.kind = StatementKind::kDelete;
    Advance();  // DELETE
    PJVM_RETURN_NOT_OK(Peek().IsKeyword("FROM")
                           ? (Advance(), Status::OK())
                           : Err("expected FROM after DELETE"));
    PJVM_ASSIGN_OR_RETURN(out.table, ExpectIdent("table name"));
    PJVM_ASSIGN_OR_RETURN(out.rows, ParseValuesLists());
    PJVM_RETURN_NOT_OK(EndOfStatement());
    return out;
  }

  Result<ParsedStatement> ParseSelect() {
    ParsedStatement out;
    out.kind = StatementKind::kSelect;
    Advance();  // SELECT
    PJVM_RETURN_NOT_OK(ExpectSymbol("*"));
    PJVM_RETURN_NOT_OK(Peek().IsKeyword("FROM")
                           ? (Advance(), Status::OK())
                           : Err("expected FROM"));
    PJVM_ASSIGN_OR_RETURN(out.table, ExpectIdent("table name"));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      PJVM_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      // Qualified names (t.col) are accepted for view columns.
      if (Peek().IsSymbol(".")) {
        Advance();
        PJVM_ASSIGN_OR_RETURN(std::string rest, ExpectIdent("column name"));
        col += "." + rest;
      }
      if (Peek().type == TokenType::kIdent && Upper(Peek().text) == "BETWEEN") {
        Advance();
        PJVM_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
        if (!Peek().IsKeyword("AND")) return Err("expected AND in BETWEEN");
        Advance();
        PJVM_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
        out.where_range =
            ParsedStatement::RangePred{col, std::move(lo), std::move(hi)};
      } else if (Peek().IsOperator("=")) {
        Advance();
        PJVM_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        out.where = std::make_pair(col, std::move(v));
      } else {
        return Err("expected '=' or BETWEEN in WHERE");
      }
    }
    PJVM_RETURN_NOT_OK(EndOfStatement());
    return out;
  }

  Result<ParsedStatement> ParseExplain() {
    ParsedStatement out;
    out.kind = StatementKind::kExplain;
    Advance();  // EXPLAIN
    if (Peek().type == TokenType::kIdent && Upper(Peek().text) == "ANALYZE") {
      Advance();  // ANALYZE
      // The analyzed statement is a real INSERT/DELETE: it executes.
      if (Peek().type == TokenType::kIdent && Upper(Peek().text) == "INSERT") {
        PJVM_ASSIGN_OR_RETURN(out, ParseInsert());
      } else if (Peek().type == TokenType::kIdent &&
                 Upper(Peek().text) == "DELETE") {
        PJVM_ASSIGN_OR_RETURN(out, ParseDelete());
        out.analyze_delete = true;
      } else {
        return Err("EXPLAIN ANALYZE expects INSERT INTO or DELETE FROM");
      }
      out.kind = StatementKind::kExplainAnalyze;
      return out;
    }
    PJVM_ASSIGN_OR_RETURN(out.table, ExpectIdent("table name"));
    PJVM_RETURN_NOT_OK(EndOfStatement());
    return out;
  }

  Result<ParsedStatement> ParseDropView() {
    ParsedStatement out;
    out.kind = StatementKind::kDropView;
    Advance();  // DROP
    if (!Peek().IsKeyword("VIEW")) return Err("only DROP VIEW is supported");
    Advance();
    PJVM_ASSIGN_OR_RETURN(out.table, ExpectIdent("view name"));
    PJVM_RETURN_NOT_OK(EndOfStatement());
    return out;
  }

  Result<ParsedStatement> ParseShow() {
    ParsedStatement out;
    Advance();  // SHOW
    if (Peek().type == TokenType::kIdent) {
      std::string what = Upper(Advance().text);
      if (what == "TABLES") {
        out.kind = StatementKind::kShowTables;
        PJVM_RETURN_NOT_OK(EndOfStatement());
        return out;
      }
      if (what == "COST") {
        out.kind = StatementKind::kShowCost;
        PJVM_RETURN_NOT_OK(EndOfStatement());
        return out;
      }
    }
    return Err("expected SHOW TABLES or SHOW COST");
  }

  std::string text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedStatement> ParseStatement(const std::string& text) {
  return StatementParser(text).Parse();
}

}  // namespace pjvm::sql
