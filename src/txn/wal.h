#ifndef PJVM_TXN_WAL_H_
#define PJVM_TXN_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/row.h"

namespace pjvm {

/// \brief Kind of a write-ahead-log record.
enum class LogRecordType {
  kInsert = 0,
  kDelete,
  kPrepare,
  kCommit,
  kAbort,
};

const char* LogRecordTypeToString(LogRecordType type);

/// \brief One durable log record on one node.
///
/// Data records identify rows by content rather than by row id so that
/// replay is insensitive to row-id recycling (aborted transactions consume
/// ids on the live path but are skipped during replay).
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kInsert;
  std::string table;
  Row row;

  std::string ToString() const;
};

/// \brief A per-node write-ahead log.
///
/// Appends are durable immediately (the simulated failure model loses all
/// in-memory table state but never the log). Recovery replays, in order, the
/// data records of transactions the coordinator decided to commit.
class Wal {
 public:
  /// Appends a record, assigning its LSN. Returns the LSN.
  uint64_t Append(LogRecord record);

  const std::vector<LogRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Visits data records (insert/delete) of transactions for which
  /// `is_committed(txn_id)` is true, in log order.
  void ReplayCommitted(const std::function<bool(uint64_t)>& is_committed,
                       const std::function<void(const LogRecord&)>& apply) const;

  void Clear() { records_.clear(); }

 private:
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 1;
};

}  // namespace pjvm

#endif  // PJVM_TXN_WAL_H_
