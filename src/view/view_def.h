#ifndef PJVM_VIEW_VIEW_DEF_H_
#define PJVM_VIEW_VIEW_DEF_H_

#include <optional>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "engine/catalog.h"

namespace pjvm {

/// \brief A reference to one column of one aliased base relation ("A.c").
struct ColumnRef {
  std::string alias;
  std::string column;

  std::string ToString() const { return alias + "." + column; }
  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.alias == b.alias && a.column == b.column;
  }
};

/// \brief One equi-join predicate between two base relations.
struct JoinEdge {
  ColumnRef left;
  ColumnRef right;

  std::string ToString() const {
    return left.ToString() + " = " + right.ToString();
  }
};

/// \brief Comparison operator of a single-table selection predicate.
enum class PredOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* PredOpToString(PredOp op);

/// \brief A selection predicate "alias.column <op> constant".
struct SelectionPred {
  ColumnRef column;
  PredOp op = PredOp::kEq;
  Value constant;

  bool Eval(const Value& v) const;
  std::string ToString() const {
    return column.ToString() + " " + PredOpToString(op) + " " +
           constant.ToString();
  }
};

/// \brief One base relation of the view, with its alias.
struct BaseRef {
  std::string table;
  std::string alias;
};

/// \brief Aggregate functions supported by aggregate join views.
enum class AggFn {
  kCount = 0,  // COUNT(*)
  kSum,        // SUM(alias.column)
};

const char* AggFnToString(AggFn fn);

/// \brief One aggregate of an aggregate join view's SELECT list.
struct AggregateSpec {
  AggFn fn = AggFn::kCount;
  /// The aggregated column; ignored for COUNT(*).
  ColumnRef column;

  std::string ToString() const;
};

/// \brief The logical definition of a materialized join view:
/// SELECT <projection> FROM <bases> WHERE <edges AND selections>
/// [PARTITIONED ON <partition_on>].
///
/// An empty projection means SELECT * (every column of every base). The
/// equi-join graph over the bases must be connected. Each base table may be
/// referenced at most once (self-joins are not supported — the paper's
/// methods probe the post-update state of the *other* relations, which is
/// only the pre-update state when the updated table appears once).
struct JoinViewDef {
  std::string name;
  std::vector<BaseRef> bases;
  std::vector<JoinEdge> edges;
  std::vector<ColumnRef> projection;
  std::vector<SelectionPred> selections;
  std::optional<ColumnRef> partition_on;
  /// Non-empty `aggregates` makes this an *aggregate join view*: the stored
  /// rows are one per `group_by` key, holding a hidden COUNT(*) (for
  /// correct deletion handling) plus the requested aggregates, maintained
  /// incrementally from the delta-join tuples. `projection` must then be
  /// empty (`group_by` defines the output) and `partition_on`, if set, must
  /// be one of the group-by columns.
  std::vector<ColumnRef> group_by;
  std::vector<AggregateSpec> aggregates;

  bool is_aggregate() const { return !aggregates.empty(); }

  /// Index of the base with this alias, or NotFound.
  Result<int> BaseIndexOfAlias(const std::string& alias) const;

  /// Structural and catalog validation; see class comment for the rules.
  Status Validate(const Catalog& catalog) const;

  std::string ToString() const;
};

/// \brief A JoinEdge resolved to base indices and full-schema column indices.
struct BoundEdge {
  int left_base = -1;
  int left_col = -1;  // Index into the left base's full schema.
  int right_base = -1;
  int right_col = -1;
};

/// \brief A SelectionPred resolved against one base's full schema.
struct BoundPred {
  int col = -1;
  PredOp op = PredOp::kEq;
  Value constant;
};

/// \brief A JoinViewDef compiled against a catalog.
///
/// Binding computes, per base, the *needed columns*: the subset of the
/// base's columns referenced by the projection, the join edges, the
/// selections, and the view partitioning attribute. Maintenance operates on
/// "needed tuples" (full base tuples projected to their needed columns) so
/// the same code paths serve full base relations and storage-minimized
/// auxiliary relations (the paper's Section 2.1.2). The maintenance-time
/// working row is the concatenation of all bases' needed tuples, in base
/// order; the view's stored row is `projection` applied to that.
class BoundView {
 public:
  static Result<BoundView> Bind(const JoinViewDef& def, const Catalog& catalog);

  const JoinViewDef& def() const { return def_; }
  int num_bases() const { return static_cast<int>(base_defs_.size()); }
  const TableDef& base_def(int i) const { return base_defs_[i]; }
  const std::vector<BoundEdge>& bound_edges() const { return bound_edges_; }

  /// Needed column indices of base i (ascending, into the full base schema).
  const std::vector<int>& needed_cols(int i) const { return needed_cols_[i]; }
  /// Schema of base i's needed tuple (column names unprefixed).
  const Schema& needed_schema(int i) const { return needed_schemas_[i]; }
  /// Offset of base i's needed tuple in the concatenated working row.
  int needed_offset(int i) const { return needed_offsets_[i]; }
  int working_width() const { return working_width_; }

  /// Position of base i's full-schema column `full_col` within its needed
  /// tuple; InvalidArgument if the column is not needed.
  Result<int> NeededPos(int base, int full_col) const;
  /// Same, but as an index into the concatenated working row.
  Result<int> WorkingIndex(int base, int full_col) const;

  /// Selection predicates of base i (resolved to full-schema columns).
  const std::vector<BoundPred>& base_preds(int i) const { return preds_[i]; }
  bool RowPassesSelections(int base, const Row& full_row) const;
  /// Projects a full base row to its needed tuple.
  Row ProjectNeeded(int base, const Row& full_row) const;

  /// Indices into the working row producing the view's stored row.
  const std::vector<int>& output_indices() const { return output_indices_; }
  Schema output_schema() const { return output_schema_; }
  /// For plain views: the stored row (projection of the working row).
  /// For aggregate views: a *contribution* row in the stored layout —
  /// [group values..., 1, per-aggregate contribution...] — which
  /// MaterializedView folds into the stored group row.
  Row OutputRow(const Row& working) const;
  /// Column of the *stored view row* the view is hash-partitioned on, or -1
  /// when the view is round-robin.
  int output_partition_col() const { return output_partition_col_; }

  /// Bound edges with one endpoint at base i.
  std::vector<int> EdgesIncidentTo(int base) const;

  // --- Aggregate join views -------------------------------------------

  bool is_aggregate() const { return def_.is_aggregate(); }
  /// Working-row indices of the GROUP BY columns.
  const std::vector<int>& group_indices() const { return group_indices_; }
  /// Bound aggregates: working-row index of the aggregated value (-1 for
  /// COUNT) plus the output type.
  struct BoundAggregate {
    AggFn fn = AggFn::kCount;
    int working_index = -1;
    ValueType type = ValueType::kInt64;
  };
  const std::vector<BoundAggregate>& bound_aggregates() const {
    return bound_aggregates_;
  }
  /// Layout of a *stored* aggregate-view row:
  /// [group cols..., __count, agg values...].
  int StoredGroupWidth() const {
    return static_cast<int>(group_indices_.size());
  }
  int StoredCountIndex() const { return StoredGroupWidth(); }
  int StoredAggIndex(int agg) const { return StoredGroupWidth() + 1 + agg; }

  /// Folds delta-join output rows (contribution rows produced by
  /// OutputRow) into stored aggregate rows — the from-scratch evaluation of
  /// an aggregate view. Non-aggregate views return `rows` unchanged.
  std::vector<Row> FoldAggregates(const std::vector<Row>& rows) const;

 private:
  JoinViewDef def_;
  std::vector<TableDef> base_defs_;
  std::vector<BoundEdge> bound_edges_;
  std::vector<std::vector<int>> needed_cols_;
  std::vector<Schema> needed_schemas_;
  std::vector<int> needed_offsets_;
  int working_width_ = 0;
  std::vector<std::vector<BoundPred>> preds_;
  std::vector<int> output_indices_;
  Schema output_schema_;
  int output_partition_col_ = -1;
  std::vector<int> group_indices_;
  std::vector<BoundAggregate> bound_aggregates_;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_VIEW_DEF_H_
