file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_predicted.dir/bench_fig13_predicted.cc.o"
  "CMakeFiles/bench_fig13_predicted.dir/bench_fig13_predicted.cc.o.d"
  "bench_fig13_predicted"
  "bench_fig13_predicted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_predicted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
