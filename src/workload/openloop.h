#ifndef PJVM_WORKLOAD_OPENLOOP_H_
#define PJVM_WORKLOAD_OPENLOOP_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "view/view_manager.h"
#include "workload/update_stream.h"

namespace pjvm {

/// \brief How a tenant's arrivals are spaced in time.
///
/// Open-loop means the NEXT arrival does not wait for the PREVIOUS
/// operation to finish: arrivals follow a schedule fixed by the offered
/// rate, and an overloaded system accumulates a backlog instead of silently
/// slowing the driver down. Closed-loop drivers (every other bench in this
/// repo) cannot see queueing delay at all — the driver IS the queue.
enum class ArrivalProcess {
  /// Exponential inter-arrival gaps with mean 1/rate (memoryless bursts —
  /// the standard model of independent clients).
  kPoisson = 0,
  /// Deterministic gaps of exactly 1/rate (a metronome; isolates queueing
  /// caused by service-time variance from queueing caused by burstiness).
  kFixedRate,
};

const char* ArrivalProcessToString(ArrivalProcess p);

/// \brief The three operation classes a tenant mixes.
enum class OpClass {
  kPointRead = 0,  ///< Partition-routed SelectEq on the tenant's view.
  kRangeScan,      ///< Fan-out SelectRange on the view's join attribute.
  kUpdate,         ///< A maintenance transaction (ViewManager::ApplyDelta).
};

inline constexpr int kNumOpClasses = 3;

const char* OpClassToString(OpClass op);

/// \brief One tenant of the open-loop driver: its own view over the shared
/// base tables, an offered arrival rate, an op mix, and an SLO threshold.
struct TenantSpec {
  std::string name;
  /// The tenant's registered join view (see RegisterTenantViews).
  std::string view;
  /// Offered load: scheduled arrivals per second across all op classes.
  double rate_per_sec = 100.0;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Op mix (normalized by their sum).
  double point_read_frac = 0.5;
  double range_scan_frac = 0.3;
  double update_frac = 0.2;
  /// Zipf skew of the update stream's join-attribute draws over the shared
  /// B key domain (0 = uniform; ~1 = classic hot-key skew).
  double zipf_theta = 0.9;
  /// Base-table rows changed per update arrival.
  int update_batch_rows = 1;
  /// Insert/delete/update composition of the tenant's update stream.
  UpdateMix update_mix{0.6, 0.2, 0.2};
  uint64_t seed = 1;
  /// Per-op latency SLO, measured from the SCHEDULED arrival time.
  uint64_t slo_ns = 20'000'000;
};

/// \brief One scheduled arrival: offset from run start plus op class.
struct Arrival {
  uint64_t at_ns = 0;
  OpClass op = OpClass::kPointRead;
};

/// Precomputes a tenant's full arrival schedule over `duration_ns`.
/// Deterministic in the spec's seed; pure (no clock, no engine).
std::vector<Arrival> BuildArrivalSchedule(const TenantSpec& spec,
                                          uint64_t duration_ns);

/// \brief Knobs of one open-loop run.
struct OpenLoopConfig {
  std::vector<TenantSpec> tenants;
  /// Arrival-generation horizon. Every arrival scheduled inside it is
  /// executed (the run drains its backlog), so at overload the wall clock
  /// exceeds the horizon and the tail latencies show it.
  uint64_t duration_ms = 1000;
  /// Telemetry window width for the per-window quantiles.
  uint64_t window_ms = 250;
  /// Shared pool executing point reads and range scans. Updates do NOT run
  /// here: each tenant's update stream is applied by a dedicated per-tenant
  /// writer thread, in arrival order (a tenant's stream is a sequence, and
  /// its generator's delete/update targets assume in-order application).
  int read_workers = 4;
  /// Join-key domain of the shared B relation the Zipf ranks map onto.
  int64_t b_join_keys = 64;
  /// Update-stream ops applied per tenant before the clock starts (seeds
  /// the tenant's live rows; excluded from all telemetry).
  int warmup_rows_per_tenant = 0;
  /// Mirror per-tenant series into MetricsRegistry::Global() (the
  /// pjvm_slo_* families) in addition to the returned result.
  bool publish_metrics = true;
};

/// \brief Quantiles of one telemetry window (values are nanoseconds).
struct WindowQuantiles {
  uint64_t index = 0;     ///< scheduled_ns / window_ns.
  double start_ms = 0.0;  ///< Window start, relative to run start.
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// \brief Telemetry of one (tenant, op class) pair.
///
/// `latency` is end-to-end from the scheduled arrival time — queue wait
/// included, so coordinated omission cannot flatter the numbers.
/// `queue_wait` (dispatch - scheduled) and `service` (completion -
/// dispatch) decompose it.
struct OpClassStats {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Client-visible aborted maintenance attempts that were re-submitted
  /// (updates only; the re-submission is part of the same arrival).
  uint64_t resubmits = 0;
  uint64_t slo_violations = 0;
  HistogramData latency;
  HistogramData queue_wait;
  HistogramData service;
  /// Per-window latency quantiles, bucketed by SCHEDULED arrival time (so a
  /// window describes the arrivals offered in it, however late they ran).
  std::vector<WindowQuantiles> windows;
};

/// \brief One tenant's aggregate SLO report.
struct TenantResult {
  std::string tenant;
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  /// Completions that met the tenant's SLO, per second of wall time.
  double goodput_per_sec = 0.0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t slo_violations = 0;
  std::array<OpClassStats, kNumOpClasses> ops;
  /// All op classes merged, windowed by scheduled arrival.
  std::vector<WindowQuantiles> windows;
};

/// \brief The run's outcome: offered vs achieved, per-tenant breakdowns.
struct OpenLoopResult {
  double horizon_ms = 0.0;  ///< The configured generation horizon.
  double wall_ms = 0.0;     ///< Start to last completion (drain included).
  uint64_t total_offered = 0;
  uint64_t total_completed = 0;
  std::vector<TenantResult> tenants;
};

/// Registers one join view per tenant ("JV_<tenant name>", A join B on
/// c = d, partitioned on A.e) under `method` and fills each spec's `view`.
/// The base tables must already exist (LoadTwoTable).
Status RegisterTenantViews(ViewManager* manager,
                           std::vector<TenantSpec>* tenants,
                           MaintenanceMethod method);

/// \brief The open-loop multi-tenant workload driver.
///
/// One scheduler thread per tenant walks the precomputed arrival schedule
/// and enqueues operations at their scheduled instants; a shared worker
/// pool executes reads and a per-tenant writer applies the update stream in
/// order. Latency is measured from the scheduled arrival, queue wait and
/// service time are recorded separately, and per-window quantiles expose
/// warmup vs steady state. See DESIGN.md "Open-loop SLO harness".
class OpenLoopDriver {
 public:
  OpenLoopDriver(ViewManager* manager, OpenLoopConfig config);

  /// Runs the configured schedule to completion (including backlog drain)
  /// and returns the SLO report. Call once per driver instance.
  Result<OpenLoopResult> Run();

 private:
  ViewManager* manager_;
  OpenLoopConfig config_;
  bool ran_ = false;
};

}  // namespace pjvm

#endif  // PJVM_WORKLOAD_OPENLOOP_H_
