# Empty compiler generated dependencies file for bench_ablation_multiway_plan.
# This may be replaced when dependencies are built.
