# Empty dependencies file for multiway_views.
# This may be replaced when dependencies are built.
