# Empty dependencies file for pjvm_sql.
# This may be replaced when dependencies are built.
