#ifndef PJVM_COMMON_STATUS_H_
#define PJVM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace pjvm {

/// \brief Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kAborted,
  kNotImplemented,
  kInternal,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument"
/// etc.).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or an error code plus message.
///
/// This is the Arrow/RocksDB-style error-handling idiom: no exceptions cross
/// library boundaries; fallible functions return Status (or Result<T>) and
/// callers propagate with PJVM_RETURN_NOT_OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process if the status is not OK. Use only in tests, examples,
  /// and benchmark drivers where an error is a bug.
  void Check() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Result models the common "return a value or fail" shape. Accessing the
/// value of an errored Result aborts, so call ok() (or use
/// PJVM_ASSIGN_OR_RETURN) first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, so `return value;` works.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status; must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (this->status().ok()) {
      *this = Result(Status::Internal("Result constructed from OK status"));
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    CheckHasValue();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckHasValue();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckHasValue();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alt` if this Result holds an error.
  T ValueOr(T alt) const {
    if (ok()) return std::get<T>(repr_);
    return alt;
  }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      status().Check();  // Aborts with a useful message.
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace pjvm

/// Propagates a non-OK Status to the caller.
#define PJVM_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::pjvm::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

#define PJVM_CONCAT_IMPL(x, y) x##y
#define PJVM_CONCAT(x, y) PJVM_CONCAT_IMPL(x, y)

/// Evaluates a Result expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define PJVM_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  PJVM_ASSIGN_OR_RETURN_IMPL(PJVM_CONCAT(_pjvm_result_, __LINE__), lhs, rexpr)

#define PJVM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // PJVM_COMMON_STATUS_H_
