#include <gtest/gtest.h>

#include <tuple>

#include "tests/view_test_util.h"
#include "view/maintainer.h"
#include "view/view_manager.h"

namespace pjvm {
namespace {

// The central property of the whole system: for every maintenance method,
// every cluster size, and every view-partitioning choice, the materialized
// view stays equal (as a bag) to the join recomputed from scratch under a
// random stream of inserts, deletes, and updates.
class MaintenanceProperty
    : public ::testing::TestWithParam<
          std::tuple<MaintenanceMethod, int /*nodes*/, bool /*view on A attr*/>> {
};

TEST_P(MaintenanceProperty, ViewMatchesFromScratchUnderRandomOps) {
  auto [method, nodes, partition_on_a] = GetParam();
  TwoTableFixture fx(nodes, /*b_keys=*/12, /*fanout=*/2);
  ASSERT_TRUE(
      fx.manager->RegisterView(fx.MakeView("JV", partition_on_a), method).ok());

  Rng rng(2024 + nodes + static_cast<int>(method));
  std::vector<Row> live_a;
  for (int step = 0; step < 120; ++step) {
    double dice = rng.UniformDouble();
    if (dice < 0.55 || live_a.empty()) {
      Row row = fx.NextARow(rng.UniformInt(0, 15));  // Some keys miss B.
      ASSERT_TRUE(fx.manager->InsertRow("A", row).ok()) << step;
      live_a.push_back(row);
    } else if (dice < 0.8) {
      size_t pick = rng.Next() % live_a.size();
      ASSERT_TRUE(fx.manager->DeleteRow("A", live_a[pick]).ok()) << step;
      live_a.erase(live_a.begin() + pick);
    } else {
      size_t pick = rng.Next() % live_a.size();
      Row old_row = live_a[pick];
      Row new_row = old_row;
      new_row[1] = Value{rng.UniformInt(0, 15)};  // Move to another join key.
      new_row[2] = Value{old_row[2].AsInt64() + 1};
      ASSERT_TRUE(fx.manager->UpdateRow("A", old_row, new_row).ok()) << step;
      live_a[pick] = new_row;
    }
    if (step % 30 == 29) {
      ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
          << "step " << step << ": " << fx.manager->CheckAllConsistent();
    }
  }
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

std::string MaintenancePropertyName(
    const ::testing::TestParamInfo<MaintenanceProperty::ParamType>& info) {
  std::string name = MaintenanceMethodToString(std::get<0>(info.param));
  name += "_L" + std::to_string(std::get<1>(info.param));
  name += std::get<2>(info.param) ? "_partA" : "_roundrobin";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MaintenanceProperty,
    ::testing::Combine(::testing::Values(MaintenanceMethod::kNaive,
                                         MaintenanceMethod::kAuxRelation,
                                         MaintenanceMethod::kGlobalIndex),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(true, false)),
    MaintenancePropertyName);

std::string MethodName(
    const ::testing::TestParamInfo<MaintenanceMethod>& info) {
  return MaintenanceMethodToString(info.param);
}

// Updates on the *other* base relation (B) must maintain the view too: "the
// situation in which base relation B is updated is the same except we switch
// the roles of A and B".
class BothSidesTest : public ::testing::TestWithParam<MaintenanceMethod> {};

TEST_P(BothSidesTest, UpdatesOnEitherBaseMaintainView) {
  TwoTableFixture fx(4, 6, 2);
  ASSERT_TRUE(fx.manager->RegisterView(fx.MakeView("JV"), GetParam()).ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
  // Insert new B rows on key 3: view gains rows via the B side.
  size_t before = fx.manager->view("JV")->RowCount();
  ASSERT_TRUE(
      fx.manager->InsertRow("B", {Value{900}, Value{3}, Value{1}}).ok());
  EXPECT_GT(fx.manager->view("JV")->RowCount(), before);
  // Delete one of the original B rows.
  Row victim = {Value{6}, Value{3}, Value{60}};
  ASSERT_TRUE(fx.manager->DeleteRow("B", victim).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BothSidesTest,
                         ::testing::Values(MaintenanceMethod::kNaive,
                                           MaintenanceMethod::kAuxRelation,
                                           MaintenanceMethod::kGlobalIndex),
                         MethodName);

// All three methods must produce byte-identical view contents.
TEST(MethodEquivalenceTest, IdenticalContentsForIdenticalStreams) {
  std::vector<std::map<std::string, int>> bags;
  for (MaintenanceMethod method :
       {MaintenanceMethod::kNaive, MaintenanceMethod::kAuxRelation,
        MaintenanceMethod::kGlobalIndex}) {
    TwoTableFixture fx(4, 10, 3);
    ASSERT_TRUE(fx.manager->RegisterView(fx.MakeView("JV"), method).ok());
    Rng rng(7);
    std::vector<Row> live;
    for (int step = 0; step < 60; ++step) {
      if (rng.Bernoulli(0.7) || live.empty()) {
        Row row = fx.NextARow(rng.UniformInt(0, 12));
        ASSERT_TRUE(fx.manager->InsertRow("A", row).ok());
        live.push_back(row);
      } else {
        size_t pick = rng.Next() % live.size();
        ASSERT_TRUE(fx.manager->DeleteRow("A", live[pick]).ok());
        live.erase(live.begin() + pick);
      }
    }
    bags.push_back(RowBag(fx.manager->view("JV")->Contents()));
  }
  EXPECT_EQ(bags[0], bags[1]);
  EXPECT_EQ(bags[0], bags[2]);
  EXPECT_FALSE(bags[0].empty());
}

// ------------------------------------------------------- Locality claims

// For a single-tuple insert: the AR method does view-side work at O(1)
// nodes, the GI method at <= 2 + 2K nodes, and the naive method at all L.
TEST(LocalityTest, NodesTouchedMatchesMethodClass) {
  constexpr int kNodes = 8;
  auto nodes_touched_for = [&](MaintenanceMethod method) {
    TwoTableFixture fx(kNodes, 10, /*fanout=*/2);
    fx.MakeView("JV");
    fx.manager->RegisterView(fx.MakeView("JV"), method).Check();
    fx.sys->cost().Reset();
    fx.manager->InsertRow("A", fx.NextARow(5)).status().Check();
    return fx.sys->cost().NodesTouched();
  };
  // Naive broadcasts: every node does work.
  EXPECT_EQ(nodes_touched_for(MaintenanceMethod::kNaive), kNodes);
  // AR: arrival node + AR/join node + view node (some may coincide).
  EXPECT_LE(nodes_touched_for(MaintenanceMethod::kAuxRelation), 3);
  // GI: arrival + GI home + K owner nodes + view node, K = min(N=2, L).
  EXPECT_LE(nodes_touched_for(MaintenanceMethod::kGlobalIndex), 2 + 2 * 2);
}

TEST(LocalityTest, NaiveSendsGrowWithL) {
  uint64_t sends_4, sends_8;
  for (int* out_is_unused = nullptr; out_is_unused == nullptr;) {
    TwoTableFixture fx4(4, 10, 2);
    fx4.manager->RegisterView(fx4.MakeView("JV"), MaintenanceMethod::kNaive)
        .Check();
    fx4.sys->cost().Reset();
    fx4.manager->InsertRow("A", fx4.NextARow(5)).status().Check();
    sends_4 = fx4.sys->cost().TotalSends();
    TwoTableFixture fx8(8, 10, 2);
    fx8.manager->RegisterView(fx8.MakeView("JV"), MaintenanceMethod::kNaive)
        .Check();
    fx8.sys->cost().Reset();
    fx8.manager->InsertRow("A", fx8.NextARow(5)).status().Check();
    sends_8 = fx8.sys->cost().TotalSends();
    break;
  }
  EXPECT_GT(sends_8, sends_4);
  EXPECT_GE(sends_8, 8u);  // At least the L broadcast sends.
}

TEST(LocalityTest, AuxSendsConstantInL) {
  uint64_t prev = 0;
  for (int nodes : {4, 8, 16}) {
    TwoTableFixture fx(nodes, 10, 2);
    fx.manager->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kAuxRelation)
        .Check();
    fx.sys->cost().Reset();
    fx.manager->InsertRow("A", fx.NextARow(5)).status().Check();
    uint64_t sends = fx.sys->cost().TotalSends();
    EXPECT_LE(sends, 3u) << "L=" << nodes;  // AR ship + join-result ship (+1 slack).
    if (prev != 0) EXPECT_EQ(sends, prev);
    prev = sends;
  }
}

// ---------------------------------------------- Three-way views (Sec. 2.2)

JoinViewDef ThreeWayView() {
  JoinViewDef def;
  def.name = "JV3";
  def.bases = {{"A", "A"}, {"B", "B"}, {"C", "C"}};
  // A.c = B.d, B.f = C.g : a chain.
  def.edges = {{{"A", "c"}, {"B", "d"}}, {{"B", "f"}, {"C", "g"}}};
  def.partition_on = ColumnRef{"A", "e"};
  return def;
}

class ThreeWayFixtureTest : public ::testing::TestWithParam<MaintenanceMethod> {
 protected:
  void SetUp() override {
    SystemConfig cfg;
    cfg.num_nodes = 4;
    cfg.rows_per_page = 4;
    sys_ = std::make_unique<ParallelSystem>(cfg);
    sys_->CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
    sys_->CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
    sys_->CreateTable(MakeTableDef("C", CSchema(), "h")).Check();
    // B: join key d in [0,6), f in [0,4). C: g in [0,4), fanout 2.
    for (int64_t k = 0; k < 12; ++k) {
      sys_->Insert("B", {Value{k}, Value{k % 6}, Value{k % 4}}).Check();
    }
    for (int64_t k = 0; k < 8; ++k) {
      sys_->Insert("C", {Value{k % 4}, Value{k + 100}, Value{k}}).Check();
    }
    manager_ = std::make_unique<ViewManager>(sys_.get());
  }

  std::unique_ptr<ParallelSystem> sys_;
  std::unique_ptr<ViewManager> manager_;
};

TEST_P(ThreeWayFixtureTest, DeltasOnEveryBaseMaintainView) {
  ASSERT_TRUE(manager_->RegisterView(ThreeWayView(), GetParam()).ok());
  Rng rng(31);
  // Delta on A.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(manager_
                    ->InsertRow("A", {Value{i}, Value{rng.UniformInt(0, 7)},
                                      Value{i * 10}})
                    .ok());
  }
  ASSERT_TRUE(manager_->CheckAllConsistent().ok())
      << manager_->CheckAllConsistent();
  // Delta on the middle relation B (two incident edges -> two ARs/GIs).
  ASSERT_TRUE(
      manager_->InsertRow("B", {Value{50}, Value{2}, Value{1}}).ok());
  ASSERT_TRUE(manager_->DeleteRow("B", {Value{3}, Value{3}, Value{3}}).ok());
  ASSERT_TRUE(manager_->CheckAllConsistent().ok())
      << manager_->CheckAllConsistent();
  // Delta on C.
  ASSERT_TRUE(manager_->InsertRow("C", {Value{1}, Value{999}, Value{9}}).ok());
  ASSERT_TRUE(manager_->DeleteRow("C", {Value{0}, Value{100}, Value{0}}).ok());
  ASSERT_TRUE(manager_->CheckAllConsistent().ok())
      << manager_->CheckAllConsistent();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ThreeWayFixtureTest,
                         ::testing::Values(MaintenanceMethod::kNaive,
                                           MaintenanceMethod::kAuxRelation,
                                           MaintenanceMethod::kGlobalIndex),
                         MethodName);

// --------------------------------------- Selections / projections / sharing

TEST(MinimizedViewTest, SelectionAndProjectionMaintainedCorrectly) {
  for (MaintenanceMethod method :
       {MaintenanceMethod::kNaive, MaintenanceMethod::kAuxRelation,
        MaintenanceMethod::kGlobalIndex}) {
    TwoTableFixture fx(4, 8, 2);
    JoinViewDef def = fx.MakeView("JV", false);
    def.projection = {{"A", "e"}, {"B", "f"}};
    def.selections = {{{"A", "e"}, PredOp::kGe, Value{300}}};
    ASSERT_TRUE(fx.manager->RegisterView(def, method).ok());
    // e = 100*k: rows 0,1,2 fail the predicate; 3.. pass.
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i % 8)).ok());
    }
    ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
        << MaintenanceMethodToString(method) << ": "
        << fx.manager->CheckAllConsistent();
    // Delete a passing row and a failing row.
    ASSERT_TRUE(
        fx.manager->DeleteRow("A", {Value{4}, Value{4}, Value{400}}).ok());
    ASSERT_TRUE(
        fx.manager->DeleteRow("A", {Value{1}, Value{1}, Value{100}}).ok());
    ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
        << MaintenanceMethodToString(method) << ": "
        << fx.manager->CheckAllConsistent();
  }
}

TEST(SharedArTest, TwoViewsShareOneArOnSameAttribute) {
  TwoTableFixture fx(4, 8, 2);
  JoinViewDef v1 = fx.MakeView("JV1");
  JoinViewDef v2 = fx.MakeView("JV2", false);
  v2.projection = {{"A", "a"}, {"B", "f"}};
  ASSERT_TRUE(
      fx.manager->RegisterView(v1, MaintenanceMethod::kAuxRelation).ok());
  ASSERT_TRUE(
      fx.manager->RegisterView(v2, MaintenanceMethod::kAuxRelation).ok());
  // One AR per (table, join column): A.c and B.d.
  EXPECT_EQ(fx.manager->ars().TableNames().size(), 2u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i)).ok());
  }
  ASSERT_TRUE(fx.manager->DeleteRow("A", {Value{2}, Value{2}, Value{200}}).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

TEST(SharedArTest, DifferentSelectionsGeneralizeTheSharedAr) {
  TwoTableFixture fx(4, 8, 2);
  JoinViewDef v1 = fx.MakeView("JV1");
  v1.selections = {{{"B", "f"}, PredOp::kLt, Value{40}}};
  JoinViewDef v2 = fx.MakeView("JV2");
  v2.selections = {{{"B", "f"}, PredOp::kGe, Value{40}}};
  ASSERT_TRUE(
      fx.manager->RegisterView(v1, MaintenanceMethod::kAuxRelation).ok());
  ASSERT_TRUE(
      fx.manager->RegisterView(v2, MaintenanceMethod::kAuxRelation).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i)).ok());
  }
  ASSERT_TRUE(
      fx.manager->InsertRow("B", {Value{200}, Value{3}, Value{39}}).ok());
  ASSERT_TRUE(
      fx.manager->InsertRow("B", {Value{201}, Value{3}, Value{41}}).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

// ---------------------------------------------------------- Mixed methods

TEST(MixedMethodsTest, DifferentViewsDifferentMethodsCoexist) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV_naive"),
                                 MaintenanceMethod::kNaive)
                  .ok());
  JoinViewDef v2 = fx.MakeView("JV_ar");
  v2.name = "JV_ar";
  ASSERT_TRUE(
      fx.manager->RegisterView(v2, MaintenanceMethod::kAuxRelation).ok());
  JoinViewDef v3 = fx.MakeView("JV_gi");
  v3.name = "JV_gi";
  ASSERT_TRUE(
      fx.manager->RegisterView(v3, MaintenanceMethod::kGlobalIndex).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i % 9)).ok());
  }
  ASSERT_TRUE(fx.manager->DeleteRow("A", {Value{3}, Value{3}, Value{300}}).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  EXPECT_EQ(RowBag(fx.manager->view("JV_naive")->Contents()),
            RowBag(fx.manager->view("JV_ar")->Contents()));
}

// -------------------------------------------------------- Large batches

// A batch big enough to cross the index/sort-merge boundary must still be
// correct (the crossover only changes costs, never contents).
TEST(LargeBatchTest, SortMergeCrossoverKeepsViewCorrect) {
  for (MaintenanceMethod method :
       {MaintenanceMethod::kNaive, MaintenanceMethod::kAuxRelation,
        MaintenanceMethod::kGlobalIndex}) {
    // Tiny pages + tiny sort memory force the sort-merge path quickly.
    SystemConfig cfg;
    cfg.num_nodes = 4;
    cfg.rows_per_page = 2;
    cfg.sort_memory_pages = 2;
    ParallelSystem sys(cfg);
    sys.CreateTable(MakeTableDef("A", ASchema(), "a")).Check();
    sys.CreateTable(MakeTableDef("B", BSchema(), "b")).Check();
    for (int64_t k = 0; k < 10; ++k) {
      sys.Insert("B", {Value{k}, Value{k % 5}, Value{k}}).Check();
    }
    ViewManager manager(&sys);
    JoinViewDef def;
    def.name = "JV";
    def.bases = {{"A", "A"}, {"B", "B"}};
    def.edges = {{{"A", "c"}, {"B", "d"}}};
    def.partition_on = ColumnRef{"A", "e"};
    ASSERT_TRUE(manager.RegisterView(def, method).ok());
    std::vector<Row> batch;
    for (int64_t i = 0; i < 200; ++i) {
      batch.push_back({Value{i}, Value{i % 5}, Value{i}});
    }
    ASSERT_TRUE(manager.ApplyDelta(DeltaBatch::Inserts("A", batch)).ok());
    ASSERT_TRUE(manager.CheckAllConsistent().ok())
        << MaintenanceMethodToString(method) << ": "
        << manager.CheckAllConsistent();
    EXPECT_EQ(manager.view("JV")->RowCount(), 200u * 2u);
  }
}

// ------------------------------------------------------ Crash / recovery

TEST(RecoveryTest, ViewsSurviveCrashAndGisRebuild) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kGlobalIndex)
                  .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(i)).ok());
  }
  auto before = RowBag(fx.manager->view("JV")->Contents());
  fx.sys->Crash();
  ASSERT_TRUE(fx.sys->Recover().ok());
  ASSERT_TRUE(fx.manager->RebuildGlobalIndexes().ok());
  EXPECT_EQ(RowBag(fx.manager->view("JV")->Contents()), before);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
  // And maintenance keeps working after recovery.
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(RecoveryTest, FailedMaintenanceTxnLeavesNoPartialState) {
  TwoTableFixture fx(4, 8, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(2)).ok());
  auto view_before = RowBag(fx.manager->view("JV")->Contents());
  size_t base_before = fx.sys->RowCount("A");
  // Crash the commit of the next maintenance transaction after prepare.
  fx.sys->txns().InjectFailure(FailurePoint::kAfterPrepare);
  EXPECT_FALSE(fx.manager->InsertRow("A", fx.NextARow(3)).ok());
  ASSERT_TRUE(fx.sys->Recover().ok());
  // Base, AR, and view all reflect only the first (committed) insert.
  EXPECT_EQ(fx.sys->RowCount("A"), base_before);
  EXPECT_EQ(RowBag(fx.manager->view("JV")->Contents()), view_before);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

// ------------------------------------------------------------ Edge cases

TEST(EdgeCaseTest, InsertWithNoMatchesLeavesViewUnchanged) {
  TwoTableFixture fx(4, 5, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  ASSERT_TRUE(fx.manager->InsertRow("A", fx.NextARow(999)).ok());
  EXPECT_EQ(fx.manager->view("JV")->RowCount(), 0u);
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(EdgeCaseTest, DeleteOfMissingBaseRowFailsCleanly) {
  TwoTableFixture fx(2, 5, 1);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
                  .ok());
  EXPECT_FALSE(
      fx.manager->DeleteRow("A", {Value{1}, Value{1}, Value{1}}).ok());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(EdgeCaseTest, DuplicateViewRegistrationRejected) {
  TwoTableFixture fx(2, 5, 1);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
                  .ok());
  EXPECT_EQ(fx.manager->RegisterView(fx.MakeView("JV"),
                                     MaintenanceMethod::kAuxRelation)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(EdgeCaseTest, BackfillPopulatesPreexistingData) {
  TwoTableFixture fx(4, 6, 2);
  for (int i = 0; i < 5; ++i) {
    fx.sys->Insert("A", fx.NextARow(i)).Check();
  }
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kAuxRelation)
                  .ok());
  EXPECT_EQ(fx.manager->view("JV")->RowCount(), 10u);  // 5 x fanout 2.
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok());
}

TEST(EdgeCaseTest, DeltaOnUnrelatedTableIsNoOp) {
  TwoTableFixture fx(2, 5, 1);
  TableDef other = MakeTableDef("Other", CSchema(), "g");
  fx.sys->CreateTable(other).Check();
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"), MaintenanceMethod::kNaive)
                  .ok());
  ASSERT_TRUE(
      fx.manager->InsertRow("Other", {Value{1}, Value{2}, Value{3}}).ok());
  EXPECT_EQ(fx.manager->view("JV")->RowCount(), 0u);
}

}  // namespace
}  // namespace pjvm
