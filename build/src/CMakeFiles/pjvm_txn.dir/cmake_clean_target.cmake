file(REMOVE_RECURSE
  "libpjvm_txn.a"
)
