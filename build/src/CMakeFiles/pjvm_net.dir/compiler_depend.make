# Empty compiler generated dependencies file for pjvm_net.
# This may be replaced when dependencies are built.
