#include <gtest/gtest.h>

#include <sstream>

#include "model/analytical.h"
#include "sql/executor.h"
#include "tests/view_test_util.h"

namespace pjvm {
namespace {

class RangeQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemConfig cfg;
    cfg.num_nodes = 4;
    cfg.rows_per_page = 4;
    sys_ = std::make_unique<ParallelSystem>(cfg);
    TableDef def;
    def.name = "T";
    def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
    def.partition = PartitionSpec::Hash("k");
    def.indexes.push_back(IndexSpec{"v", false});
    sys_->CreateTable(def).Check();
    TableDef noidx;
    noidx.name = "U";
    noidx.schema = def.schema;
    noidx.partition = PartitionSpec::Hash("k");
    sys_->CreateTable(noidx).Check();
    for (int64_t i = 0; i < 40; ++i) {
      sys_->Insert("T", {Value{i}, Value{i % 10}}).Check();
      sys_->Insert("U", {Value{i}, Value{i % 10}}).Check();
    }
  }

  std::unique_ptr<ParallelSystem> sys_;
};

TEST_F(RangeQueryTest, InclusiveBoundsViaIndex) {
  auto rows = sys_->SelectRange("T", "v", Value{int64_t{3}}, Value{int64_t{5}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 12u);  // v in {3,4,5}, 4 rows each.
  for (const Row& row : *rows) {
    EXPECT_GE(row[1].AsInt64(), 3);
    EXPECT_LE(row[1].AsInt64(), 5);
  }
}

TEST_F(RangeQueryTest, ScanFallbackMatchesIndexResults) {
  auto via_index =
      sys_->SelectRange("T", "v", Value{int64_t{2}}, Value{int64_t{7}});
  auto via_scan =
      sys_->SelectRange("U", "v", Value{int64_t{2}}, Value{int64_t{7}});
  ASSERT_TRUE(via_index.ok());
  ASSERT_TRUE(via_scan.ok());
  EXPECT_EQ(RowBag(*via_index), RowBag(*via_scan));
}

TEST_F(RangeQueryTest, EmptyAndInvertedRanges) {
  EXPECT_TRUE(
      sys_->SelectRange("T", "v", Value{int64_t{50}}, Value{int64_t{60}})
          ->empty());
  EXPECT_TRUE(sys_->SelectRange("T", "v", Value{int64_t{5}}, Value{int64_t{2}})
                  ->empty());
}

TEST_F(RangeQueryTest, CostChargedPerDeliveredRowWithIndex) {
  sys_->cost().Reset();
  auto rows = sys_->SelectRange("T", "v", Value{int64_t{0}}, Value{int64_t{0}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  // Per node: 1 seek SEARCH; 4 FETCHes across nodes for the delivered rows.
  EXPECT_DOUBLE_EQ(sys_->cost().TotalWorkload(), 4.0 * 1 + 4.0);
}

TEST_F(RangeQueryTest, SingleKeyRangeMatchesSelectEq) {
  auto ranged =
      sys_->SelectRange("T", "v", Value{int64_t{6}}, Value{int64_t{6}});
  auto eq = sys_->SelectEq("T", "v", Value{int64_t{6}});
  ASSERT_TRUE(ranged.ok());
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(RowBag(*ranged), RowBag(*eq));
}

TEST_F(RangeQueryTest, UnknownTableOrColumnFails) {
  EXPECT_FALSE(sys_->SelectRange("Nope", "v", Value{1}, Value{2}).ok());
  EXPECT_FALSE(sys_->SelectRange("T", "ghost", Value{1}, Value{2}).ok());
}

TEST_F(RangeQueryTest, BetweenThroughSqlSurface) {
  ViewManager manager(sys_.get());
  sql::Executor executor(&manager);
  std::ostringstream out;
  ASSERT_TRUE(
      executor.Execute("SELECT * FROM T WHERE v BETWEEN 8 AND 9;", out).ok())
      << out.str();
  EXPECT_NE(out.str().find("(8 row(s))"), std::string::npos) << out.str();
  EXPECT_FALSE(
      executor.Execute("SELECT * FROM T WHERE v BETWEEN 8;", out).ok());
}

// ------------------------------------------ Missing-coverage unit tests

TEST(ModelBatchTwTest, BatchFormulasReduceToSingleTupleTw) {
  model::ModelParams p;
  p.num_nodes = 16;
  p.fanout = 10;
  EXPECT_DOUBLE_EQ(model::TwBatchAux(p, 1), model::TwAuxRelation(p));
  EXPECT_DOUBLE_EQ(model::TwBatchGi(p, 1, true),
                   model::TwGlobalIndex(p, true));
  EXPECT_DOUBLE_EQ(model::TwBatchNaive(p, 1, true),
                   p.num_nodes * 1.0 /* one search per node */);
}

TEST(ModelBatchTwTest, LargeBatchesSwitchToScans) {
  model::ModelParams p;
  p.num_nodes = 8;
  // AR: 3A vs 2A + |B| crosses at A = |B|.
  EXPECT_DOUBLE_EQ(model::TwBatchAux(p, 100), 300.0);
  EXPECT_DOUBLE_EQ(model::TwBatchAux(p, 10000), 2.0 * 10000 + 6400);
  // Naive clustered: L * min(A, |B_i|) = |B| once A >= |B_i|.
  EXPECT_DOUBLE_EQ(model::TwBatchNaive(p, 100000, true), 6400.0);
}

TEST(MetricsWriteKindTest, CategoriesTrackedSeparately) {
  CostTracker t(2);
  t.ChargeWrite(0, CostTracker::WriteKind::kBase);
  t.ChargeWrite(0, CostTracker::WriteKind::kStructure);
  t.ChargeWrite(1, CostTracker::WriteKind::kView);
  t.ChargeWrite(1, CostTracker::WriteKind::kView);
  EXPECT_EQ(t.node(0).base_writes, 1u);
  EXPECT_EQ(t.node(0).structure_writes, 1u);
  EXPECT_EQ(t.node(1).view_writes, 2u);
  EXPECT_EQ(t.node(0).inserts, 2u);
  // ComputeIO excludes all writes.
  t.ChargeSearch(1, 3);
  EXPECT_DOUBLE_EQ(t.ComputeResponseTime(), 3.0);
}

TEST(CreateIndexOnTest, BackfillsAndIsIdempotent) {
  SystemConfig cfg;
  cfg.num_nodes = 2;
  ParallelSystem sys(cfg);
  TableDef def;
  def.name = "T";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  def.partition = PartitionSpec::Hash("k");
  sys.CreateTable(def).Check();
  for (int64_t i = 0; i < 10; ++i) {
    sys.Insert("T", {Value{i}, Value{i % 3}}).Check();
  }
  ASSERT_TRUE(sys.CreateIndexOn("T", "v", false).ok());
  ASSERT_TRUE(sys.CreateIndexOn("T", "v", false).ok());  // No-op.
  auto rows = sys.SelectEq("T", "v", Value{int64_t{1}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_TRUE(sys.CheckInvariants().ok());
  EXPECT_FALSE(sys.CreateIndexOn("T", "ghost", false).ok());
}

}  // namespace
}  // namespace pjvm
