#include "engine/system.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace pjvm {

namespace {

// Shared with node.cc's version bookkeeping: same names resolve to the same
// registry handles.
Gauge* VersionsLiveGauge() {
  static Gauge* g = MetricsRegistry::Global().gauge("pjvm_mvcc_versions_live");
  return g;
}

Counter* GcReclaimedCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("pjvm_mvcc_gc_reclaimed");
  return c;
}

/// Epoch pin for one read entry point: reuses the innermost SnapshotScope's
/// epoch when the caller opened one (one logical statement reads one
/// consistent epoch across operators), otherwise pins a fresh epoch for the
/// duration of this call.
class ReadEpoch {
 public:
  explicit ReadEpoch(SnapshotManager* mgr) {
    SnapshotScope* active = SnapshotScope::Active();
    if (active != nullptr && active->manager() == mgr) {
      epoch_ = active->epoch();
    } else {
      scope_.emplace(mgr);
      epoch_ = scope_->epoch();
    }
  }

  uint64_t value() const { return epoch_; }

 private:
  std::optional<SnapshotScope> scope_;
  uint64_t epoch_ = 0;
};

}  // namespace

ParallelSystem::ParallelSystem(SystemConfig config)
    : config_(config),
      cost_(config.num_nodes, config.weights),
      network_(config.num_nodes, &cost_) {
  // PJVM_TRACE=1 enables tracing; any other non-"0" value is also taken as
  // the export path, so `PJVM_TRACE=/tmp/run.trace.json ./bench_x` needs no
  // code changes. Config fields win over the environment when set.
  if (const char* env = std::getenv("PJVM_TRACE");
      env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    config_.trace_enabled = true;
    if (std::string(env) != "1" && config_.trace_path.empty()) {
      config_.trace_path = env;
    }
  }
  if (config_.trace_enabled) {
    Tracer::Global().Enable();
    Tracer::Global().SetCurrentThreadName("coordinator");
  }
  cost_.SetIoStallNanos(config_.io_stall_ns);
  locks_.set_policy(config_.lock_policy);
  locks_.set_wait_timeout_ms(config_.lock_wait_timeout_ms);
  locks_.set_num_shards(config_.lock_shards);
  locks_.set_escalation_threshold(config_.lock_escalation_threshold);
  nodes_.reserve(config_.num_nodes);
  LockManager* locks = config_.enable_locking ? &locks_ : nullptr;
  SnapshotManager* snaps = config_.mvcc_reads ? &snapshots_ : nullptr;
  for (int i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, &cost_, &txns_, locks, snaps));
    nodes_.back()->latch().set_rw_enabled(config_.rw_latches);
    nodes_.back()->wal().ConfigureForce(config_.wal_force_ns,
                                        config_.group_commit,
                                        config_.group_commit_window_us);
  }
  executor_ = std::make_unique<NodeExecutor>(
      config_.num_nodes, /*inline_mode=*/!config_.parallel_execution);
}

ParallelSystem::~ParallelSystem() {
  executor_->Shutdown();
  // Workers are joined: the trace is quiescent and safe to export. An
  // unwritable path is not worth aborting a teardown over.
  if (config_.trace_enabled && !config_.trace_path.empty()) {
    Status st = Tracer::Global().ExportChromeTrace(config_.trace_path);
    if (!st.ok()) std::fprintf(stderr, "pjvm: %s\n", st.ToString().c_str());
  }
}

Status ParallelSystem::CreateTable(TableDef def) {
  PJVM_RETURN_NOT_OK(catalog_.AddTable(def));
  for (auto& node : nodes_) {
    Status st = node->CreateFragment(def, config_.rows_per_page);
    if (!st.ok()) {
      catalog_.DropTable(def.name).Check();
      return st;
    }
  }
  return Status::OK();
}

Status ParallelSystem::DropTable(const std::string& name) {
  PJVM_RETURN_NOT_OK(catalog_.DropTable(name));
  for (auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->DropFragment(name));
  }
  {
    std::lock_guard<std::mutex> lock(round_robin_mu_);
    round_robin_.erase(name);
  }
  return Status::OK();
}

int ParallelSystem::HomeNodeForRow(const TableDef& def, const Row& row) {
  if (def.partition.is_hash()) {
    int col = def.PartitionColumn();
    return HomeNodeForKey(row[col]);
  }
  std::lock_guard<std::mutex> lock(round_robin_mu_);
  uint64_t& counter = round_robin_[def.name];
  return static_cast<int>(counter++ % config_.num_nodes);
}

Status ParallelSystem::Insert(const std::string& table, Row row,
                              uint64_t txn_id) {
  return InsertReturningId(table, std::move(row), txn_id).status();
}

Result<GlobalRowId> ParallelSystem::InsertReturningId(const std::string& table,
                                                      Row row,
                                                      uint64_t txn_id) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  PJVM_RETURN_NOT_OK(def->schema.ValidateRow(row));
  int target = HomeNodeForRow(*def, row);
  PJVM_ASSIGN_OR_RETURN(LocalRowId lrid,
                        nodes_[target]->Insert(txn_id, table, std::move(row)));
  return GlobalRowId{target, lrid};
}

Result<GlobalRowId> ParallelSystem::LocateExact(const std::string& table,
                                                const Row& row) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  auto try_node = [&](int i) -> Result<GlobalRowId> {
    NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
    const TableFragment* frag = nodes_[i]->fragment(table);
    cost_.ChargeSearch(i);
    PJVM_ASSIGN_OR_RETURN(LocalRowId lrid, frag->FindExact(row));
    return GlobalRowId{i, lrid};
  };
  if (def->partition.is_hash()) {
    return try_node(HomeNodeForKey(row[def->PartitionColumn()]));
  }
  for (int i = 0; i < config_.num_nodes; ++i) {
    Result<GlobalRowId> found = try_node(i);
    if (found.ok()) return found;
    if (!found.status().IsNotFound()) return found;
  }
  return Status::NotFound("row not found in '" + table +
                          "' on any node: " + RowToString(row));
}

Status ParallelSystem::CreateIndexOn(const std::string& table,
                                     const std::string& column,
                                     bool clustered) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  if (def->HasIndexOn(column)) return Status::OK();
  PJVM_RETURN_NOT_OK(
      catalog_.AddIndexToTable(table, IndexSpec{column, clustered}));
  PJVM_ASSIGN_OR_RETURN(int col, def->schema.ColumnIndex(column));
  for (auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->fragment(table)->CreateIndex(col, clustered));
  }
  // The snapshot base images carry index metadata; rebuild them so snapshot
  // reads pick the new access path (DDL is a quiescent point).
  if (config_.mvcc_reads) ResetSnapshots({table});
  return Status::OK();
}

Status ParallelSystem::InsertMany(const std::string& table,
                                  const std::vector<Row>& rows,
                                  uint64_t txn_id) {
  return InsertManyReturningIds(table, rows, txn_id).status();
}

Result<std::vector<GlobalRowId>> ParallelSystem::InsertManyReturningIds(
    const std::string& table, const std::vector<Row>& rows, uint64_t txn_id) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  // Validate and place every row in the caller's thread first: round-robin
  // placement consumes the per-table counter in batch order, exactly as a
  // sequence of single-row Inserts would.
  std::vector<std::vector<size_t>> by_node(config_.num_nodes);
  for (size_t i = 0; i < rows.size(); ++i) {
    PJVM_RETURN_NOT_OK(def->schema.ValidateRow(rows[i]));
    by_node[HomeNodeForRow(*def, rows[i])].push_back(i);
  }
  std::vector<int> targets;
  for (int n = 0; n < config_.num_nodes; ++n) {
    if (!by_node[n].empty()) targets.push_back(n);
  }
  // One task per home node; each worker inserts its rows in batch order, so
  // per-node local row ids, WAL contents, and cost charges are identical to
  // the sequential run.
  std::vector<GlobalRowId> gids(rows.size());
  Status st = executor_->RunOnNodes(targets, [&](int n) -> Status {
    SpanGuard span("insert_batch", "task", n, &cost_);
    span.set_detail(table + " x" + std::to_string(by_node[n].size()));
    for (size_t i : by_node[n]) {
      PJVM_ASSIGN_OR_RETURN(LocalRowId lrid,
                            nodes_[n]->Insert(txn_id, table, rows[i]));
      gids[i] = GlobalRowId{n, lrid};
    }
    return Status::OK();
  });
  PJVM_RETURN_NOT_OK(st);
  return gids;
}

Status ParallelSystem::DeleteExact(const std::string& table, const Row& row,
                                   uint64_t txn_id) {
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  if (def->partition.is_hash()) {
    int target = HomeNodeForRow(*def, row);
    return nodes_[target]->DeleteExact(txn_id, table, row);
  }
  // Round-robin table: the row can be anywhere; try each node.
  for (auto& node : nodes_) {
    Status st = node->DeleteExact(txn_id, table, row);
    if (st.ok()) return st;
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound("row not found in '" + table +
                          "' on any node: " + RowToString(row));
}

std::vector<Row> ParallelSystem::ScanAll(const std::string& table) const {
  std::vector<std::vector<Row>> per_node(config_.num_nodes);
  if (config_.mvcc_reads) {
    ReadEpoch epoch(&snapshots_);
    executor_->RunOnAllNodes([&](int i) -> Status {
      const TableFragment* frag = nodes_[i]->fragment(table);
      if (frag != nullptr && frag->mvcc_enabled()) {
        per_node[i] = MvccAllRows(*frag->MvccHead(), epoch.value());
      }
      return Status::OK();
    }).Check();
  } else {
    executor_->RunOnAllNodes([&](int i) -> Status {
      NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
      const TableFragment* frag = nodes_[i]->fragment(table);
      if (frag != nullptr) per_node[i] = frag->AllRows();
      return Status::OK();
    }).Check();
  }
  std::vector<Row> rows;
  for (std::vector<Row>& part : per_node) {
    rows.insert(rows.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return rows;
}

size_t ParallelSystem::RowCount(const std::string& table) const {
  size_t count = 0;
  if (config_.mvcc_reads) {
    ReadEpoch epoch(&snapshots_);
    for (const auto& node : nodes_) {
      const TableFragment* frag = node->fragment(table);
      if (frag != nullptr && frag->mvcc_enabled()) {
        count += MvccNumRows(*frag->MvccHead(), epoch.value());
      }
    }
    return count;
  }
  for (const auto& node : nodes_) {
    NodeLatchGuard latch(*node, LatchMode::kShared);
    const TableFragment* frag = node->fragment(table);
    if (frag != nullptr) count += frag->num_rows();
  }
  return count;
}

size_t ParallelSystem::TableBytes(const std::string& table) const {
  size_t bytes = 0;
  for (const auto& node : nodes_) {
    NodeLatchGuard latch(*node, LatchMode::kShared);
    const TableFragment* frag = node->fragment(table);
    if (frag != nullptr) bytes += frag->byte_size();
  }
  std::function<size_t()> overlay;
  {
    std::lock_guard<std::mutex> lock(overlay_mu_);
    auto it = storage_overlays_.find(table);
    if (it != storage_overlays_.end()) overlay = it->second;
  }
  // Invoked outside overlay_mu_ and the node latches: the callback latches
  // the nodes itself (lock order latch-after-overlay_mu_ would invert).
  if (overlay) bytes += overlay();
  return bytes;
}

void ParallelSystem::SetStorageOverlay(const std::string& table,
                                       std::function<size_t()> bytes_fn) {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  storage_overlays_[table] = std::move(bytes_fn);
}

void ParallelSystem::ClearStorageOverlay(const std::string& table) {
  std::lock_guard<std::mutex> lock(overlay_mu_);
  storage_overlays_.erase(table);
}

size_t ParallelSystem::TablePages(const std::string& table) const {
  size_t pages = 0;
  for (const auto& node : nodes_) {
    NodeLatchGuard latch(*node, LatchMode::kShared);
    const TableFragment* frag = node->fragment(table);
    if (frag != nullptr) pages += frag->num_pages();
  }
  return pages;
}

Result<std::vector<Row>> ParallelSystem::SelectEq(const std::string& table,
                                                  const std::string& column,
                                                  const Value& key,
                                                  uint64_t txn_id) {
  // Client-scope span over the whole operation (the per-node "task" spans
  // below nest inside it); a driver's WorkloadTag lands in the span detail
  // and a tenant-labeled read counter.
  SpanGuard client_span("select_eq", "client");
  if (const WorkloadTag* tag = WorkloadTagScope::Current(); tag != nullptr) {
    client_span.set_detail(table + " tenant=" + tag->tenant);
    MetricsRegistry::Global()
        .counter("pjvm_client_reads",
                 {{"op", "point"}, {"tenant", tag->tenant}})
        ->Increment();
  } else {
    client_span.set_detail(table);
  }
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  PJVM_ASSIGN_OR_RETURN(int col, def->schema.ColumnIndex(column));
  const bool routed =
      def->partition.is_hash() && def->partition.column == column;
  if (config_.mvcc_reads) {
    // Snapshot path: one wait-free load per fragment, no locks, no latches.
    // Charges mirror the live path exactly (SEARCH + per-row FETCH on a
    // non-clustered probe; per-page I/O on a scan).
    ReadEpoch epoch(&snapshots_);
    auto snap_node = [&](int i, std::vector<Row>* out) -> Status {
      const TableFragment* frag = nodes_[i]->fragment(table);
      std::shared_ptr<const MvccState> state = frag->MvccHead();
      const MvccIndexMeta* meta = MvccFindIndex(*state, col);
      MvccProbeOut r;
      if (meta != nullptr) {
        cost_.ChargeSearch(i);
        r = MvccProbe(*state, epoch.value(), col, key);
        if (!meta->clustered) cost_.ChargeFetch(i, r.rows.size());
      } else {
        cost_.ChargeIOPages(i, MvccNumPages(*state, epoch.value()));
        r = MvccProbe(*state, epoch.value(), col, key);
      }
      out->insert(out->end(), std::make_move_iterator(r.rows.begin()),
                  std::make_move_iterator(r.rows.end()));
      return Status::OK();
    };
    if (routed) {
      std::vector<Row> out;
      PJVM_RETURN_NOT_OK(snap_node(HomeNodeForKey(key), &out));
      return out;
    }
    std::vector<std::vector<Row>> per_node(config_.num_nodes);
    PJVM_RETURN_NOT_OK(executor_->RunOnAllNodes([&](int i) {
      SpanGuard span("select_eq", "task", i, &cost_);
      return snap_node(i, &per_node[i]);
    }));
    std::vector<Row> out;
    for (std::vector<Row>& part : per_node) {
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }
  auto probe_node = [&](int i, std::vector<Row>* out) -> Status {
    if (txn_id != kAutoCommitTxnId) {
      // Explicit transaction: S locks first — lock acquires may block and
      // must never happen under the latch. An index probe locks the probed
      // key inside IndexProbe; a full scan S-locks the whole fragment.
      TableFragment* frag = nodes_[i]->fragment(table);
      if (frag->HasIndexOn(col)) {
        PJVM_ASSIGN_OR_RETURN(
            ProbeResult r, nodes_[i]->IndexProbe(table, col, key, txn_id));
        out->insert(out->end(), std::make_move_iterator(r.rows.begin()),
                    std::make_move_iterator(r.rows.end()));
      } else {
        PJVM_RETURN_NOT_OK(nodes_[i]->AcquireTableShared(txn_id, table));
        NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
        cost_.ChargeIOPages(i, frag->num_pages());
        ProbeResult r = frag->ScanEq(col, key);
        out->insert(out->end(), std::make_move_iterator(r.rows.begin()),
                    std::make_move_iterator(r.rows.end()));
      }
      return Status::OK();
    }
    NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
    TableFragment* frag = nodes_[i]->fragment(table);
    if (frag->HasIndexOn(col)) {
      PJVM_ASSIGN_OR_RETURN(ProbeResult r, nodes_[i]->IndexProbe(table, col, key));
      out->insert(out->end(), std::make_move_iterator(r.rows.begin()),
                  std::make_move_iterator(r.rows.end()));
    } else {
      // Full scan: charge one fetch per page read.
      cost_.ChargeIOPages(i, frag->num_pages());
      ProbeResult r = frag->ScanEq(col, key);
      out->insert(out->end(), std::make_move_iterator(r.rows.begin()),
                  std::make_move_iterator(r.rows.end()));
    }
    return Status::OK();
  };
  if (routed) {
    std::vector<Row> out;
    PJVM_RETURN_NOT_OK(probe_node(HomeNodeForKey(key), &out));
    return out;
  }
  std::vector<std::vector<Row>> per_node(config_.num_nodes);
  if (txn_id != kAutoCommitTxnId) {
    // Blocking S-lock acquires are only legal on the client thread, so an
    // explicit transaction's fan-out runs inline in node order (charges are
    // identical to the worker fan-out — see ParallelEquivalence).
    for (int i = 0; i < config_.num_nodes; ++i) {
      SpanGuard span("select_eq", "task", i, &cost_);
      PJVM_RETURN_NOT_OK(probe_node(i, &per_node[i]));
    }
  } else {
    // Fan-out: every node probes its fragment on its own worker; results are
    // concatenated in node order, matching the sequential loop exactly.
    PJVM_RETURN_NOT_OK(executor_->RunOnAllNodes([&](int i) {
      SpanGuard span("select_eq", "task", i, &cost_);
      return probe_node(i, &per_node[i]);
    }));
  }
  std::vector<Row> out;
  for (std::vector<Row>& part : per_node) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

Result<std::vector<Row>> ParallelSystem::SelectRange(const std::string& table,
                                                     const std::string& column,
                                                     const Value& lo,
                                                     const Value& hi,
                                                     uint64_t txn_id) {
  SpanGuard client_span("select_range", "client");
  if (const WorkloadTag* tag = WorkloadTagScope::Current(); tag != nullptr) {
    client_span.set_detail(table + " tenant=" + tag->tenant);
    MetricsRegistry::Global()
        .counter("pjvm_client_reads",
                 {{"op", "range"}, {"tenant", tag->tenant}})
        ->Increment();
  } else {
    client_span.set_detail(table);
  }
  PJVM_ASSIGN_OR_RETURN(const TableDef* def, catalog_.Get(table));
  PJVM_ASSIGN_OR_RETURN(int col, def->schema.ColumnIndex(column));
  std::vector<Row> out;
  if (hi < lo) return out;
  std::vector<std::vector<Row>> per_node(config_.num_nodes);
  if (config_.mvcc_reads) {
    // Snapshot path: same per-node charges as the live scan below, against
    // the pinned epoch's image. No locks, no latches.
    ReadEpoch epoch(&snapshots_);
    PJVM_RETURN_NOT_OK(executor_->RunOnAllNodes([&](int i) -> Status {
      SpanGuard span("select_range", "task", i, &cost_);
      std::vector<Row>& local = per_node[i];
      const TableFragment* frag = nodes_[i]->fragment(table);
      std::shared_ptr<const MvccState> state = frag->MvccHead();
      if (MvccFindIndex(*state, col) != nullptr) {
        cost_.ChargeSearch(i);  // One seek to the range's start.
        size_t delivered =
            MvccScanRange(*state, epoch.value(), col, lo, hi, &local);
        cost_.ChargeFetch(i, delivered);
      } else {
        cost_.ChargeIOPages(i, MvccNumPages(*state, epoch.value()));
        MvccScanRange(*state, epoch.value(), col, lo, hi, &local);
      }
      return Status::OK();
    }));
    for (std::vector<Row>& part : per_node) {
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }
  // Hash partitioning cannot route a range: every node range-scans its own
  // fragment on its worker thread (inline on the client thread for an
  // explicit transaction, whose fragment S-lock acquires may block).
  auto scan_node = [&](int i) -> Status {
    std::vector<Row>& local = per_node[i];
    TableFragment* frag = nodes_[i]->fragment(table);
    if (txn_id != kAutoCommitTxnId) {
      // Coarse fragment S lock before the latch: covers the whole range
      // (phantom-safe) and may block, which is illegal under the latch.
      PJVM_RETURN_NOT_OK(nodes_[i]->AcquireTableShared(txn_id, table));
    }
    NodeLatchGuard latch(*nodes_[i], LatchMode::kShared);
    const LocalIndex* index = frag->FindIndex(col);
    if (index != nullptr) {
      cost_.ChargeSearch(i);  // One seek to the range's start.
      size_t delivered = 0;
      index->tree.ScanRange(lo, hi, [&](const Value&, const LocalRowId& lrid) {
        local.push_back(*frag->Get(lrid));
        ++delivered;
        return true;
      });
      cost_.ChargeFetch(i, delivered);
    } else {
      cost_.ChargeIOPages(i, frag->num_pages());
      frag->ForEach([&](LocalRowId, const Row& row) {
        if (lo <= row[col] && row[col] <= hi) local.push_back(row);
        return true;
      });
    }
    return Status::OK();
  };
  if (txn_id != kAutoCommitTxnId) {
    for (int i = 0; i < config_.num_nodes; ++i) {
      SpanGuard span("select_range", "task", i, &cost_);
      PJVM_RETURN_NOT_OK(scan_node(i));
    }
  } else {
    PJVM_RETURN_NOT_OK(executor_->RunOnAllNodes([&](int i) -> Status {
      SpanGuard span("select_range", "task", i, &cost_);
      return scan_node(i);
    }));
  }
  for (std::vector<Row>& part : per_node) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

Status ParallelSystem::Commit(uint64_t txn_id) {
  if (txn_id == kAutoCommitTxnId) return Status::OK();
  SpanGuard span("commit_2pc", "txn");
  span.set_detail("txn " + std::to_string(txn_id));
  if (txns_.ShouldFailAt(FailurePoint::kBeforePrepare)) {
    Crash();
    return Status::Aborted("injected crash before prepare");
  }
  PJVM_RETURN_NOT_OK(txns_.MarkPreparing(txn_id));
  // Escrow journal (and any other txn hook) logs its logical records now,
  // before the prepare appends below, so each participant's prepare force
  // covers them (they precede the prepare in the same log).
  const bool hook_pending =
      txn_hook_ != nullptr && txn_hook_->HasPending(txn_id);
  if (hook_pending) PJVM_RETURN_NOT_OK(txn_hook_->OnPrepare(txn_id));
  // Phase 1: every participant durably prepares — the prepare force covers
  // the transaction's earlier data records on that node too (they precede
  // the prepare in the same log). With group commit, concurrent committers
  // share one force round per node. Phase-2 commit records need no force:
  // the commit decision lives in the coordinator (presumed abort), and
  // replay is gated by TxnManager::IsCommitted, not by commit records.
  const auto participant_set = txns_.participants(txn_id);
  const std::vector<int> participants(participant_set.begin(),
                                      participant_set.end());
  std::vector<uint64_t> prepare_lsns;
  prepare_lsns.reserve(participants.size());
  for (int node_id : participants) {
    prepare_lsns.push_back(nodes_[node_id]->wal().Append(
        LogRecord{0, txn_id, LogRecordType::kPrepare, "", {}}));
  }
  if (config_.group_commit && participants.size() > 1) {
    // The prepares land on independent per-node logs, so their forces can
    // overlap — the textbook parallel phase 1. Only worthwhile when forces
    // actually wait (group-commit rounds); in per-txn-force mode the extra
    // threads would buy nothing the device model doesn't serialize anyway.
    std::vector<Status> statuses(participants.size(), Status::OK());
    std::vector<std::thread> forcers;
    forcers.reserve(participants.size() - 1);
    for (size_t i = 1; i < participants.size(); ++i) {
      forcers.emplace_back([this, &participants, &prepare_lsns, &statuses, i] {
        statuses[i] = nodes_[participants[i]]->wal().Force(prepare_lsns[i]);
      });
    }
    statuses[0] = nodes_[participants[0]]->wal().Force(prepare_lsns[0]);
    for (auto& th : forcers) th.join();
    for (const Status& st : statuses) PJVM_RETURN_NOT_OK(st);
  } else {
    for (size_t i = 0; i < participants.size(); ++i) {
      PJVM_RETURN_NOT_OK(nodes_[participants[i]]->wal().Force(prepare_lsns[i]));
    }
  }
  if (txns_.ShouldFailAt(FailurePoint::kAfterPrepare)) {
    Crash();
    return Status::Aborted("injected crash after prepare (presumed abort)");
  }
  // Commit point: the coordinator's durable decision.
  PJVM_RETURN_NOT_OK(txns_.LogCommitDecision(txn_id));
  if (txns_.ShouldFailAt(FailurePoint::kAfterDecision)) {
    Crash();
    return Status::Aborted("injected crash after commit decision");
  }
  // Phase 2: participants learn the outcome.
  for (int node_id : txns_.participants(txn_id)) {
    nodes_[node_id]->wal().Append(
        LogRecord{0, txn_id, LogRecordType::kCommit, "", {}});
  }
  // Version visibility follows the durable commit decision: a reader that
  // sees the new epoch sees only transactions recovery would also replay.
  // Published before lock release so a later writer of the same rows can
  // never publish at an earlier epoch than this transaction.
  if (config_.mvcc_reads) {
    PublishVersions(txn_id);  // folds the hook inside the publish section
  } else if (hook_pending) {
    txn_hook_->OnCommitFold(txn_id);  // version ops unused without MVCC
  }
  // The hook's deterministic heap rewrite runs after the fold/publish and
  // before lock release — the transaction's V locks still pin its groups,
  // and the node latches it takes are ordered after publish_mu is gone.
  if (hook_pending) PJVM_RETURN_NOT_OK(txn_hook_->OnCommitFinalize(txn_id));
  txns_.DiscardUndo(txn_id);
  // The transaction can no longer abort, so the heap slots its deletes kept
  // reserved (for lrid-exact undo) are safe to recycle.
  for (int node_id : txns_.participants(txn_id)) {
    nodes_[node_id]->ReleaseDeferredSlots(txn_id);
  }
  locks_.ReleaseAll(txn_id);  // Strict 2PL: everything released at commit.
  // Working state is done; the durable commit decision survives in the
  // TxnManager's decision set until a checkpoint prunes it.
  txns_.Forget(txn_id);
  return Status::OK();
}

Status ParallelSystem::Abort(uint64_t txn_id) {
  if (txn_id == kAutoCommitTxnId) {
    return Status::InvalidArgument("cannot abort the autocommit pseudo-txn");
  }
  PJVM_RETURN_NOT_OK(txns_.MarkAborted(txn_id));
  // Escrow rollback first, before undo and strictly before ReleaseAll: a
  // successor acquiring the released V locks must see journal state with
  // this transaction's deltas gone (and the heap rows restored).
  if (txn_hook_ != nullptr) txn_hook_->OnAbort(txn_id);
  for (const UndoOp& op : txns_.TakeUndoReversed(txn_id)) {
    PJVM_RETURN_NOT_OK(nodes_[op.node]->ApplyUndo(op));
  }
  for (int node_id : txns_.participants(txn_id)) {
    // Undo re-occupied the reserved slots with the restored rows; drop the
    // reservation bookkeeping without freeing anything.
    nodes_[node_id]->AbandonDeferredSlots(txn_id);
    nodes_[node_id]->wal().Append(
        LogRecord{0, txn_id, LogRecordType::kAbort, "", {}});
  }
  locks_.ReleaseAll(txn_id);
  txns_.Forget(txn_id);
  return Status::OK();
}

Status ParallelSystem::Checkpoint() {
  if (txns_.HasActive()) {
    return Status::Aborted(
        "checkpoint refused: transactions are in flight (quiesce first)");
  }
  for (auto& node : nodes_) node->Checkpoint();
  // Every WAL is truncated: no surviving record can mention a pre-checkpoint
  // txn id, so the commit-decision set is prunable up to the id low-water
  // mark — the durable-state analogue of TxnManager::Forget.
  txns_.PruneCommittedBelow(txns_.next_txn_id());
  return Status::OK();
}

void ParallelSystem::Crash() {
  for (auto& node : nodes_) {
    // The unforced log tail is volatile: a crash loses it (only visible
    // when wal_force_ns > 0; with free forcing every append is durable).
    node->wal().DiscardUnforced();
    node->WipeFragments();
  }
  txns_.CrashAndRecover();
  locks_.Clear();
}

Status ParallelSystem::Recover() {
  for (auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->RecreateFragments(catalog_, config_.rows_per_page));
    PJVM_RETURN_NOT_OK(node->RestoreCheckpoint());
  }
  Status replay_status = Status::OK();
  for (auto& node : nodes_) {
    node->wal().ReplayCommitted(
        [&](uint64_t txn_id) { return txns_.IsCommitted(txn_id); },
        [&](const LogRecord& rec) {
          // Records for tables dropped after the write are obsolete: the
          // drop discarded their data, so replay skips them.
          if (!catalog_.Has(rec.table)) return;
          Status st = node->ApplyLogRecord(rec);
          if (!st.ok() && replay_status.ok()) replay_status = st;
        });
    PJVM_RETURN_NOT_OK(replay_status);
  }
  // Fragments were recreated with empty snapshot bases (no version ops are
  // recorded during replay); rebuild every snapshot from the recovered
  // rows. A reader at the new epoch sees exactly the committed state.
  if (config_.mvcc_reads) ResetSnapshots(catalog_.ListNames());
  return Status::OK();
}

void ParallelSystem::PublishVersions(uint64_t txn_id) {
  std::vector<TxnVersionOp> ops = txns_.TakeVersionOps(txn_id);
  const bool hook_pending =
      txn_hook_ != nullptr && txn_hook_->HasPending(txn_id);
  if (ops.empty() && !hook_pending) return;
  SpanGuard span("mvcc_publish", "txn");
  span.set_detail("txn " + std::to_string(txn_id) + ": " +
                  std::to_string(ops.size()) + " ops");
  // One delta per written fragment, each preserving that fragment's op
  // execution order; all installed at a single epoch so the transaction
  // becomes visible atomically across nodes.
  std::map<std::pair<int, std::string>, std::vector<MvccOp>> by_frag;
  for (TxnVersionOp& op : ops) {
    by_frag[{op.node, op.table}].push_back(std::move(op.op));
  }
  double published = 0;
  snapshots_.Publish([&](uint64_t epoch) {
    if (hook_pending) {
      // Escrow groups record no op-time version ops; the hook folds its
      // committed images *inside* the publish critical section, so the
      // fold order across transactions equals their epoch order.
      for (TxnVersionOp& op : txn_hook_->OnCommitFold(txn_id)) {
        by_frag[{op.node, op.table}].push_back(std::move(op.op));
      }
    }
    for (auto& [where, frag_ops] : by_frag) {
      TableFragment* frag = nodes_[where.first]->fragment(where.second);
      if (frag == nullptr) continue;  // table dropped mid-transaction
      frag->MvccPublish(epoch, std::move(frag_ops));
      published += 1.0;
    }
  });
  if (published > 0) VersionsLiveGauge()->Add(published);
  // Piggybacked GC: fold any written fragment whose chain is both long
  // enough and entirely below the minimum active read epoch.
  snapshots_.Fold([&](uint64_t watermark) {
    for (const auto& [where, frag_ops] : by_frag) {
      (void)frag_ops;
      TableFragment* frag = nodes_[where.first]->fragment(where.second);
      if (frag == nullptr) continue;
      size_t folded = frag->MvccMaybeFold(watermark);
      if (folded > 0) {
        VersionsLiveGauge()->Add(-static_cast<double>(folded));
        GcReclaimedCounter()->Increment(folded);
      }
    }
  });
}

void ParallelSystem::ResetSnapshots(const std::vector<std::string>& tables) {
  double dropped = 0;
  snapshots_.Publish([&](uint64_t epoch) {
    for (auto& node : nodes_) {
      for (const std::string& name : tables) {
        TableFragment* frag = node->fragment(name);
        if (frag != nullptr) {
          dropped += static_cast<double>(frag->MvccResetFromLive(epoch));
        }
      }
    }
  });
  if (dropped > 0) VersionsLiveGauge()->Add(-dropped);
}

Status ParallelSystem::CheckInvariants() const {
  for (const auto& node : nodes_) {
    PJVM_RETURN_NOT_OK(node->CheckInvariants());
  }
  return Status::OK();
}

}  // namespace pjvm
