#ifndef PJVM_TXN_TXN_MANAGER_H_
#define PJVM_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "storage/row_id.h"

namespace pjvm {

/// Transaction id 0 denotes autocommit: single operations outside an
/// explicit transaction, always considered committed.
inline constexpr uint64_t kAutoCommitTxnId = 0;

/// \brief Lifecycle state of a transaction at the coordinator.
enum class TxnState {
  kActive = 0,
  kPreparing,
  kCommitted,
  kAborted,
};

/// \brief Points where tests may inject a coordinator/system crash during
/// two-phase commit.
enum class FailurePoint {
  kNone = 0,
  /// Crash before any participant prepared: transaction must roll back.
  kBeforePrepare,
  /// Crash after all participants prepared but before the coordinator logged
  /// its decision: transaction must roll back (presumed abort).
  kAfterPrepare,
  /// Crash after the coordinator logged commit but before participants were
  /// told: transaction must still commit on recovery.
  kAfterDecision,
};

/// \brief One compensating action for rolling back an in-flight transaction.
///
/// Undo is by row content (delete what was inserted / re-insert what was
/// deleted), applied in reverse order.
struct UndoOp {
  enum class Kind { kDeleteInserted, kReinsertDeleted } kind;
  int node;
  std::string table;
  Row row;
};

/// \brief Transaction coordinator: ids, states, the durable decision log,
/// and per-transaction undo lists.
///
/// The execution engine (ParallelSystem) drives the 2PC protocol; this class
/// holds the authoritative state it reads during recovery.
///
/// All methods are guarded by one internal mutex: per-node executor workers
/// record participants and undo actions concurrently during parallel write
/// fan-outs. The 2PC driver itself stays single-threaded; `participants()`
/// and `committed_ids()` return references that are only stable while no
/// transaction is being started or written to from another thread.
class TxnManager {
 public:
  TxnManager() = default;

  /// Starts a transaction and returns its id (> 0).
  uint64_t Begin();

  TxnState state(uint64_t txn_id) const;
  bool IsActive(uint64_t txn_id) const {
    return state(txn_id) == TxnState::kActive;
  }

  /// True iff the coordinator durably decided commit (autocommit always is).
  bool IsCommitted(uint64_t txn_id) const;

  /// True while any transaction is active or preparing.
  bool HasActive() const;

  /// Transitions used by the engine's 2PC driver.
  Status MarkPreparing(uint64_t txn_id);
  /// Durably logs the commit decision (the 2PC "commit point").
  Status LogCommitDecision(uint64_t txn_id);
  Status MarkAborted(uint64_t txn_id);

  /// Records a compensating action for an in-flight transaction.
  void PushUndo(uint64_t txn_id, UndoOp op);
  /// Takes (and clears) the undo list, most recent first.
  std::vector<UndoOp> TakeUndoReversed(uint64_t txn_id);
  /// Drops the undo list (on commit).
  void DiscardUndo(uint64_t txn_id);

  /// Participants that executed writes for this transaction.
  void AddParticipant(uint64_t txn_id, int node);
  const std::set<int>& participants(uint64_t txn_id);

  /// Failure injection for tests; consumed on first trigger.
  void InjectFailure(FailurePoint point) { failure_ = point; }
  /// Returns true (and clears the injection) when `point` matches.
  bool ShouldFailAt(FailurePoint point);

  /// Ids of all transactions whose decision log says commit.
  const std::set<uint64_t>& committed_ids() const { return committed_ids_; }

  /// Simulated coordinator crash: every non-decided transaction becomes
  /// aborted (presumed abort); undo lists are dropped (state is rebuilt from
  /// logs, not undone live).
  void CrashAndRecover();

 private:
  mutable std::mutex mu_;
  uint64_t next_txn_id_ = 1;
  std::unordered_map<uint64_t, TxnState> states_;
  std::unordered_map<uint64_t, std::vector<UndoOp>> undo_;
  std::unordered_map<uint64_t, std::set<int>> participants_;
  std::set<uint64_t> committed_ids_;
  FailurePoint failure_ = FailurePoint::kNone;
};

}  // namespace pjvm

#endif  // PJVM_TXN_TXN_MANAGER_H_
