file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiway_plan.dir/bench_ablation_multiway_plan.cc.o"
  "CMakeFiles/bench_ablation_multiway_plan.dir/bench_ablation_multiway_plan.cc.o.d"
  "bench_ablation_multiway_plan"
  "bench_ablation_multiway_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiway_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
