file(REMOVE_RECURSE
  "CMakeFiles/pjvm_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/pjvm_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/pjvm_storage.dir/storage/histogram.cc.o"
  "CMakeFiles/pjvm_storage.dir/storage/histogram.cc.o.d"
  "CMakeFiles/pjvm_storage.dir/storage/stats.cc.o"
  "CMakeFiles/pjvm_storage.dir/storage/stats.cc.o.d"
  "CMakeFiles/pjvm_storage.dir/storage/table_fragment.cc.o"
  "CMakeFiles/pjvm_storage.dir/storage/table_fragment.cc.o.d"
  "libpjvm_storage.a"
  "libpjvm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pjvm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
