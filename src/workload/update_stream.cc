#include "workload/update_stream.h"

namespace pjvm {

UpdateStreamGenerator::UpdateStreamGenerator(
    std::string table, UpdateMix mix, uint64_t seed,
    std::function<Row(int64_t)> make_row,
    std::function<Row(const Row&, Rng&)> mutate)
    : table_(std::move(table)),
      mix_(mix),
      rng_(seed),
      make_row_(std::move(make_row)),
      mutate_(std::move(mutate)) {}

DeltaBatch UpdateStreamGenerator::NextBatch(int ops) {
  DeltaBatch batch;
  batch.table = table_;
  double total = mix_.insert_frac + mix_.delete_frac + mix_.update_frac;
  // Deletes and updates must target rows that existed before this batch:
  // ViewManager applies a batch's deletes before its inserts, so touching a
  // same-batch insert would be a use-before-insert.
  size_t stable = live_.size();
  for (int i = 0; i < ops; ++i) {
    double dice = rng_.UniformDouble() * total;
    if (dice < mix_.insert_frac || stable == 0) {
      Row row = make_row_(next_id_++);
      batch.inserts.push_back(row);
      live_.push_back(std::move(row));
    } else if (dice < mix_.insert_frac + mix_.delete_frac) {
      size_t pick = rng_.Next() % stable;
      batch.deletes.push_back(live_[pick]);
      live_.erase(live_.begin() + pick);
      --stable;
    } else {
      size_t pick = rng_.Next() % stable;
      Row new_row = mutate_(live_[pick], rng_);
      batch.updates.emplace_back(live_[pick], new_row);
      // The updated image counts as a fresh row for this batch's purposes.
      live_.erase(live_.begin() + pick);
      --stable;
      live_.push_back(std::move(new_row));
    }
  }
  return batch;
}

}  // namespace pjvm
