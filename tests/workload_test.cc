#include <gtest/gtest.h>

#include <set>

#include "tests/view_test_util.h"
#include "workload/tpcr.h"
#include "workload/twotable.h"
#include "workload/update_stream.h"

namespace pjvm {
namespace {

// ----------------------------------------------------------------- TPC-R

TpcrConfig SmallTpcr() {
  TpcrConfig cfg;
  cfg.customers = 100;
  cfg.extra_customer_keys = 16;
  return cfg;
}

TEST(TpcrTest, FanoutsMatchThePaper) {
  TpcrConfig cfg = SmallTpcr();
  TpcrData data = GenerateTpcr(cfg);
  EXPECT_EQ(data.customer.size(), 100u);
  EXPECT_EQ(data.orders.size(), 116u);       // customers + extra keys.
  EXPECT_EQ(data.lineitem.size(), 116u * 4);  // 4 lineitems per order.
  // "Each customer tuple matches one orders tuple on custkey."
  std::map<int64_t, int> orders_per_cust;
  for (const Row& o : data.orders) orders_per_cust[o[1].AsInt64()]++;
  for (const Row& c : data.customer) {
    EXPECT_EQ(orders_per_cust[c[0].AsInt64()], 1) << RowToString(c);
  }
  // "Each orders tuple matches 4 lineitem tuples on orderkey."
  std::map<int64_t, int> items_per_order;
  for (const Row& l : data.lineitem) items_per_order[l[0].AsInt64()]++;
  for (const Row& o : data.orders) {
    EXPECT_EQ(items_per_order[o[0].AsInt64()], 4);
  }
}

TEST(TpcrTest, DeterministicForSeed) {
  TpcrData a = GenerateTpcr(SmallTpcr());
  TpcrData b = GenerateTpcr(SmallTpcr());
  EXPECT_EQ(a.orders, b.orders);
  EXPECT_EQ(a.customer, b.customer);
}

TEST(TpcrTest, LoadsAndReportsSizes) {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  ParallelSystem sys(cfg);
  TpcrData data = GenerateTpcr(SmallTpcr());
  ASSERT_TRUE(LoadTpcr(&sys, data).ok());
  auto sizes = TableSizes(sys);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0].name, "customer");
  EXPECT_EQ(sizes[0].rows, 100u);
  EXPECT_EQ(sizes[1].rows, 116u);
  EXPECT_EQ(sizes[2].rows, 464u);
  for (const auto& row : sizes) EXPECT_GT(row.bytes, 0u);
}

TEST(TpcrTest, DeltaCustomersMatchExistingOrders) {
  TpcrConfig cfg = SmallTpcr();
  TpcrData data = GenerateTpcr(cfg);
  std::set<int64_t> order_custkeys;
  for (const Row& o : data.orders) order_custkeys.insert(o[1].AsInt64());
  for (int64_t i = 0; i < 32; ++i) {
    Row delta = MakeDeltaCustomer(cfg, i);
    EXPECT_TRUE(order_custkeys.count(delta[0].AsInt64()) > 0)
        << RowToString(delta);
    // And it is not an existing customer.
    EXPECT_GE(delta[0].AsInt64(), cfg.customers);
  }
}

TEST(TpcrTest, Jv1AndJv2MaintainedCorrectly) {
  SystemConfig sys_cfg;
  sys_cfg.num_nodes = 4;
  ParallelSystem sys(sys_cfg);
  TpcrConfig cfg = SmallTpcr();
  ASSERT_TRUE(LoadTpcr(&sys, GenerateTpcr(cfg)).ok());
  ViewManager manager(&sys);
  ASSERT_TRUE(
      manager.RegisterView(MakeJv1(), MaintenanceMethod::kAuxRelation).ok());
  ASSERT_TRUE(
      manager.RegisterView(MakeJv2(), MaintenanceMethod::kAuxRelation).ok());
  EXPECT_EQ(manager.view("JV1")->RowCount(), 100u);
  EXPECT_EQ(manager.view("JV2")->RowCount(), 400u);
  // The paper's experiment: insert delta customers matching existing orders.
  std::vector<Row> delta;
  for (int64_t i = 0; i < 8; ++i) delta.push_back(MakeDeltaCustomer(cfg, i));
  ASSERT_TRUE(manager.ApplyDelta(DeltaBatch::Inserts("customer", delta)).ok());
  EXPECT_EQ(manager.view("JV1")->RowCount(), 108u);
  EXPECT_EQ(manager.view("JV2")->RowCount(), 432u);
  ASSERT_TRUE(manager.CheckAllConsistent().ok())
      << manager.CheckAllConsistent();
}

// -------------------------------------------------------------- TwoTable

TEST(TwoTableTest, LoadsWithRequestedFanout) {
  SystemConfig sys_cfg;
  sys_cfg.num_nodes = 4;
  ParallelSystem sys(sys_cfg);
  TwoTableConfig cfg;
  cfg.b_join_keys = 10;
  cfg.fanout = 3;
  ASSERT_TRUE(LoadTwoTable(&sys, cfg).ok());
  EXPECT_EQ(sys.RowCount("A"), 0u);
  EXPECT_EQ(sys.RowCount("B"), 30u);
  // Fanout check via the clustered index.
  auto rows = sys.SelectEq("B", "d", Value{4});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(TwoTableTest, DeltaTuplesAlwaysMatchFanoutRows) {
  SystemConfig sys_cfg;
  sys_cfg.num_nodes = 2;
  ParallelSystem sys(sys_cfg);
  TwoTableConfig cfg;
  cfg.b_join_keys = 5;
  cfg.fanout = 2;
  ASSERT_TRUE(LoadTwoTable(&sys, cfg).ok());
  ViewManager manager(&sys);
  ASSERT_TRUE(manager.RegisterView(MakeModelView(),
                                   MaintenanceMethod::kAuxRelation)
                  .ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(manager.InsertRow("A", MakeDeltaA(cfg, i)).ok());
  }
  EXPECT_EQ(manager.view("JV")->RowCount(), 20u);  // 10 deltas x fanout 2.
}

// ---------------------------------------------------------- UpdateStream

TEST(UpdateStreamTest, PureInsertStream) {
  UpdateStreamGenerator gen(
      "A", UpdateMix{1.0, 0.0, 0.0}, 5,
      [](int64_t i) { return Row{Value{i}, Value{i % 3}, Value{i}}; },
      [](const Row& r, Rng&) { return r; });
  DeltaBatch batch = gen.NextBatch(20);
  EXPECT_EQ(batch.inserts.size(), 20u);
  EXPECT_TRUE(batch.deletes.empty());
  EXPECT_TRUE(batch.updates.empty());
  EXPECT_EQ(gen.live_rows(), 20u);
}

TEST(UpdateStreamTest, MixedStreamTargetsExistingRows) {
  UpdateStreamGenerator gen(
      "A", UpdateMix{0.5, 0.3, 0.2}, 11,
      [](int64_t i) { return Row{Value{i}, Value{i % 3}, Value{i}}; },
      [](const Row& r, Rng& rng) {
        Row out = r;
        out[1] = Value{rng.UniformInt(0, 2)};
        return out;
      });
  // First batch seeds some rows; later batches mix.
  gen.NextBatch(30);
  for (int b = 0; b < 5; ++b) {
    DeltaBatch batch = gen.NextBatch(20);
    // Deletes and updates only reference rows that pre-existed the batch:
    // none of them appear among the batch's own inserts.
    std::set<std::string> inserted;
    for (const Row& r : batch.inserts) inserted.insert(RowToString(r));
    for (const Row& r : batch.deletes) {
      EXPECT_EQ(inserted.count(RowToString(r)), 0u);
    }
    for (const auto& [old_row, new_row] : batch.updates) {
      EXPECT_EQ(inserted.count(RowToString(old_row)), 0u);
    }
  }
}

TEST(UpdateStreamTest, StreamDrivesMaintenanceConsistently) {
  TwoTableFixture fx(4, 6, 2);
  ASSERT_TRUE(fx.manager
                  ->RegisterView(fx.MakeView("JV"),
                                 MaintenanceMethod::kGlobalIndex)
                  .ok());
  UpdateStreamGenerator gen(
      "A", UpdateMix{0.6, 0.25, 0.15}, 17,
      [](int64_t i) { return Row{Value{i}, Value{i % 8}, Value{i * 2}}; },
      [](const Row& r, Rng& rng) {
        Row out = r;
        out[1] = Value{rng.UniformInt(0, 7)};
        return out;
      });
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(fx.manager->ApplyDelta(gen.NextBatch(10)).ok()) << b;
  }
  EXPECT_EQ(fx.sys->RowCount("A"), gen.live_rows());
  ASSERT_TRUE(fx.manager->CheckAllConsistent().ok())
      << fx.manager->CheckAllConsistent();
}

TEST(UpdateStreamTest, DeterministicForSeed) {
  auto make = [] {
    return UpdateStreamGenerator(
        "A", UpdateMix{0.5, 0.5, 0.0}, 3,
        [](int64_t i) { return Row{Value{i}}; },
        [](const Row& r, Rng&) { return r; });
  };
  UpdateStreamGenerator g1 = make(), g2 = make();
  for (int b = 0; b < 3; ++b) {
    DeltaBatch b1 = g1.NextBatch(15), b2 = g2.NextBatch(15);
    EXPECT_EQ(b1.inserts, b2.inserts);
    EXPECT_EQ(b1.deletes, b2.deletes);
  }
}

}  // namespace
}  // namespace pjvm
