// Multi-client contention bench: N concurrent updater threads drive
// single-row maintenance transactions against one shared join view, with
// join keys drawn from a small pool so transactions collide on the AR's
// clustered-index key locks.
//
// The sweep compares two engine modes over a key-pool x thread-count grid:
//  - baseline: the pre-sharding write path (one lock-table shard, exclusive
//    node latches, per-transaction WAL forces);
//  - scalable: the contention-scalable path (sharded lock table, RW node
//    latches, group commit).
// Both modes charge the same simulated WAL device (force_ns), so the
// difference isolates the concurrency structure, not the hardware model.
//
// Within the scalable mode three lock policies run over the same workload:
//  - no_wait: a conflicting acquire aborts the transaction immediately and
//    the abort is client-visible (maintain_max_attempts = 1); the client
//    must re-submit until its transaction commits.
//  - wait_die: conflicting acquires park (older waits, younger dies) and
//    the ViewManager absorbs deadlock-avoidance kills in its bounded retry
//    loop, so the client sees no aborts at all.
//  - wound_wait: the mirror-image policy (older wounds younger holders);
//    same client-invisible contract as wait_die, different victim choice.
//
// Reported per cell: committed throughput, client-visible latency
// (p50/p95/p99 over the full submit-to-commit interval, retries included),
// client-visible aborts, deadlock kills, wounds, lock waits, shard-mutex
// contention, group-commit rounds, and internal maintenance retries. Each
// cell ends with the from-scratch consistency oracle: whatever the
// interleaving, the view must match its bases exactly.
//
// A separate bulk-delta mode measures lock escalation instead: one
// maintenance transaction applies a [txns_per_thread]-row delta, sweeping
// SystemConfig::lock_escalation_threshold over {off, 64, 256, 1024} and
// recording peak lock-table entries and throughput for each setting. This is
// the footprint claim behind the escalation PR: a bulk transaction's key
// locks collapse into a handful of fragment locks without costing
// throughput. Written to BENCH_contention_bulk.json.
//
// Usage: bench_contention [txns_per_thread] [nodes] [sweep]
//   sweep = "full" (default): modes {baseline, scalable} x policies x
//           key pools {1, 8, 64, 1024} x threads {1, 2, 4, 8}
//   sweep = "ci": just the two wait-die cells CI compares (8 threads,
//           64 keys, baseline vs scalable)
//   sweep = "bulk": the escalation-threshold sweep; [txns_per_thread] is
//           reinterpreted as rows in the single bulk delta

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "txn/lock_manager.h"
#include "view/explain.h"

namespace pjvm::bench {
namespace {

// The simulated WAL device: 5ms per force in BOTH modes, so the baseline
// pays it once per commit per participant node while group commit amortizes
// it across a leader round.
constexpr uint64_t kForceNs = 5'000'000;
constexpr int kWindowUs = 50;

struct ContentionConfig {
  int txns_per_thread = 50;
  int nodes = 4;
  bool ci_only = false;
  bool bulk = false;
};

/// One sweep cell: an engine mode x lock policy x load shape.
struct Cell {
  std::string mode;  // "baseline" or "scalable"
  LockPolicy policy = LockPolicy::kWaitDie;
  int threads = 1;
  int64_t key_pool = 1;
};

struct CellResult {
  Cell cell;
  uint64_t committed = 0;
  uint64_t client_aborts = 0;
  double wall_ms = 0.0;
  double committed_per_sec = 0.0;
  uint64_t deadlock_kills = 0;
  uint64_t wounds = 0;
  uint64_t lock_waits = 0;
  uint64_t lock_wait_timeouts = 0;
  uint64_t shard_contention = 0;
  uint64_t maintain_retries = 0;
  uint64_t group_commit_rounds = 0;
  HistogramData latency;
};

CellResult RunCell(const ContentionConfig& cc, const Cell& cell) {
  CellResult result;
  result.cell = cell;
  const bool baseline = cell.mode == "baseline";

  SystemConfig cfg;
  cfg.num_nodes = cc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = cell.policy;
  cfg.lock_wait_timeout_ms = 500;
  // Under no-wait every conflict surfaces to the client; under the blocking
  // policies the maintenance retry loop absorbs them.
  // Commits hold their locks across multi-millisecond forces, so blocked
  // maintenance needs a deeper retry budget than the default before the
  // abort becomes client-visible.
  cfg.maintain_max_attempts = cell.policy == LockPolicy::kNoWait ? 1 : 16;
  cfg.maintain_retry_base_us = 100;
  // The mode switch: everything this PR added, on or off together.
  cfg.lock_shards = baseline ? 1 : 16;
  cfg.rw_latches = !baseline;
  cfg.wal_force_ns = kForceNs;
  cfg.group_commit = !baseline;
  cfg.group_commit_window_us = kWindowUs;
  ParallelSystem sys(cfg);

  // The paper's two-relation setup, with a tiny B key domain so concurrent
  // updaters collide on the same AR index-key locks.
  TwoTableConfig tt;
  tt.b_join_keys = cell.key_pool;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kAuxRelation)
      .Check();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t kills0 = metrics.counter("pjvm_lock_deadlock_kills")->value();
  const uint64_t wounds0 = metrics.counter("pjvm_lock_wounds")->value();
  const uint64_t waits0 = metrics.counter("pjvm_lock_waits")->value();
  const uint64_t touts0 = metrics.counter("pjvm_lock_wait_timeouts")->value();
  const uint64_t shard0 =
      metrics.counter("pjvm_lock_shard_contention")->value();
  const uint64_t retries0 = metrics.counter("pjvm_maintain_retries")->value();
  const uint64_t rounds0 =
      metrics.histogram("pjvm_group_commit_batch_size")->Snapshot().count;

  LatencyHistogram latency;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> client_aborts{0};

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> updaters;
  updaters.reserve(cell.threads);
  for (int t = 0; t < cell.threads; ++t) {
    updaters.emplace_back([&, t] {
      for (int i = 0; i < cc.txns_per_thread; ++i) {
        // Unique A key per logical transaction; the join attribute cycles
        // through B's small key pool, so concurrent transactions hit the
        // same AR index-key locks.
        Row row = MakeDeltaA(tt, static_cast<int64_t>(t) * 1000000 + i);
        auto t0 = std::chrono::steady_clock::now();
        // The client's contract is "this update happens": a client-visible
        // abort means re-submitting the whole transaction.
        for (;;) {
          auto report = manager.InsertRow("A", row);
          if (report.ok()) break;
          if (!report.status().IsAborted()) report.status().Check();
          client_aborts.fetch_add(1);
        }
        auto t1 = std::chrono::steady_clock::now();
        committed.fetch_add(1);
        latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (auto& th : updaters) th.join();
  auto end = std::chrono::steady_clock::now();

  result.committed = committed.load();
  result.client_aborts = client_aborts.load();
  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  result.committed_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.committed / result.wall_ms : 0.0;
  result.deadlock_kills =
      metrics.counter("pjvm_lock_deadlock_kills")->value() - kills0;
  result.wounds = metrics.counter("pjvm_lock_wounds")->value() - wounds0;
  result.lock_waits = metrics.counter("pjvm_lock_waits")->value() - waits0;
  result.lock_wait_timeouts =
      metrics.counter("pjvm_lock_wait_timeouts")->value() - touts0;
  result.shard_contention =
      metrics.counter("pjvm_lock_shard_contention")->value() - shard0;
  result.maintain_retries =
      metrics.counter("pjvm_maintain_retries")->value() - retries0;
  result.group_commit_rounds =
      metrics.histogram("pjvm_group_commit_batch_size")->Snapshot().count -
      rounds0;
  result.latency = latency.Snapshot();

  // The whole point of running maintenance inside the transaction: however
  // the interleaving went, the view must equal the from-scratch join.
  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after quiesce").Check();
  }
  return result;
}

std::string CellJson(const CellResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("mode").Str(r.cell.mode)
      .Key("policy").Str(LockPolicyToString(r.cell.policy))
      .Key("threads").Int(r.cell.threads)
      .Key("key_pool").Int(r.cell.key_pool)
      .Key("committed").Uint(r.committed)
      .Key("client_visible_aborts").Uint(r.client_aborts)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("committed_per_sec").Num(r.committed_per_sec)
      .Key("deadlock_kills").Uint(r.deadlock_kills)
      .Key("wounds").Uint(r.wounds)
      .Key("lock_waits").Uint(r.lock_waits)
      .Key("lock_wait_timeouts").Uint(r.lock_wait_timeouts)
      .Key("shard_contention").Uint(r.shard_contention)
      .Key("maintain_retries").Uint(r.maintain_retries)
      .Key("group_commit_rounds").Uint(r.group_commit_rounds)
      .Key("client_latency_ns").Raw(LatencyJson(r.latency))
      .EndObject();
  return w.str();
}

// ------------------------------------------------ bulk escalation sweep

struct BulkResult {
  int threshold = 0;
  int rows = 0;
  double wall_ms = 0.0;
  double rows_per_sec = 0.0;
  size_t peak_shard_entries = 0;
  uint64_t escalations = 0;
  uint64_t entries_reclaimed = 0;
  uint64_t analysis_escalations = 0;
  uint64_t analysis_entries_reclaimed = 0;
};

BulkResult RunBulkCell(const ContentionConfig& cc, int threshold) {
  BulkResult result;
  result.threshold = threshold;
  result.rows = cc.txns_per_thread;

  SystemConfig cfg;
  cfg.num_nodes = cc.nodes;
  cfg.rows_per_page = 8;
  cfg.enable_locking = true;
  cfg.lock_policy = LockPolicy::kWaitDie;
  cfg.lock_wait_timeout_ms = 500;
  cfg.maintain_max_attempts = 16;
  cfg.maintain_retry_base_us = 100;
  cfg.lock_shards = 16;
  cfg.rw_latches = true;
  // No WAL device: the bulk cell isolates lock-table bookkeeping, so the
  // run is compute-bound rather than dominated by a simulated force.
  cfg.wal_force_ns = 0;
  cfg.lock_escalation_threshold = threshold;
  ParallelSystem sys(cfg);

  TwoTableConfig tt;
  tt.b_join_keys = 64;
  tt.fanout = 2;
  LoadTwoTable(&sys, tt).Check();
  ViewManager manager(&sys);
  manager.RegisterView(MakeModelView(), MaintenanceMethod::kAuxRelation)
      .Check();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t esc0 = metrics.counter("pjvm_lock_escalations")->value();
  const uint64_t rec0 =
      metrics.counter("pjvm_lock_entries_reclaimed")->value();
  sys.locks().ResetPeakEntries();

  std::vector<Row> rows;
  rows.reserve(result.rows);
  for (int i = 0; i < result.rows; ++i) {
    rows.push_back(MakeDeltaA(tt, 1'000'000 + i));
  }
  MaintenanceAnalysis analysis;
  auto start = std::chrono::steady_clock::now();
  manager.ApplyDelta(DeltaBatch::Inserts("A", std::move(rows)), &analysis)
      .status()
      .Check();
  auto end = std::chrono::steady_clock::now();

  result.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  result.rows_per_sec =
      result.wall_ms > 0.0 ? 1000.0 * result.rows / result.wall_ms : 0.0;
  result.peak_shard_entries = sys.locks().PeakShardEntries();
  result.escalations =
      metrics.counter("pjvm_lock_escalations")->value() - esc0;
  result.entries_reclaimed =
      metrics.counter("pjvm_lock_entries_reclaimed")->value() - rec0;
  result.analysis_escalations = analysis.escalations;
  result.analysis_entries_reclaimed = analysis.lock_entries_reclaimed;

  manager.CheckAllConsistent().Check();
  if (sys.locks().TotalLocks() != 0) {
    Status::Internal("lock table not empty after bulk delta").Check();
  }
  return result;
}

std::string BulkJson(const BulkResult& r) {
  JsonWriter w;
  w.BeginObject()
      .Key("threshold").Int(r.threshold)
      .Key("rows").Int(r.rows)
      .Key("wall_ms").Num(r.wall_ms)
      .Key("rows_per_sec").Num(r.rows_per_sec)
      .Key("peak_shard_entries").Uint(r.peak_shard_entries)
      .Key("escalations").Uint(r.escalations)
      .Key("entries_reclaimed").Uint(r.entries_reclaimed)
      .Key("analysis_escalations").Uint(r.analysis_escalations)
      .Key("analysis_entries_reclaimed").Uint(r.analysis_entries_reclaimed)
      .EndObject();
  return w.str();
}

void RunBulk(const ContentionConfig& cc) {
  PrintHeader("bulk escalation sweep: " +
              std::to_string(cc.txns_per_thread) + " rows, " +
              std::to_string(cc.nodes) + " nodes");
  BenchReport report("contention_bulk");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("rows").Int(cc.txns_per_thread)
        .Key("nodes").Int(cc.nodes)
        .EndObject();
    report.Add("config", w.str());
  }
  JsonWriter sweep;
  sweep.BeginArray();
  for (int threshold : {0, 64, 256, 1024}) {
    BulkResult r = RunBulkCell(cc, threshold);
    std::cout << "threshold="
              << (r.threshold == 0 ? std::string("off")
                                   : std::to_string(r.threshold))
              << ": rows=" << r.rows << " wall_ms=" << r.wall_ms
              << " rows_per_sec=" << r.rows_per_sec
              << " peak_shard_entries=" << r.peak_shard_entries
              << " escalations=" << r.escalations
              << " reclaimed=" << r.entries_reclaimed << "\n";
    sweep.Raw(BulkJson(r));
  }
  sweep.EndArray();
  report.Add("sweep", sweep.str());
  report.Write();
}

std::vector<Cell> BuildSweep(const ContentionConfig& cc) {
  std::vector<Cell> cells;
  if (cc.ci_only) {
    // The throughput claim CI enforces: scalable wait-die must beat the
    // baseline by >= 2x at 8 threads over a 64-key pool.
    cells.push_back({"baseline", LockPolicy::kWaitDie, 8, 64});
    cells.push_back({"scalable", LockPolicy::kWaitDie, 8, 64});
    return cells;
  }
  const std::vector<int64_t> key_pools = {1, 8, 64, 1024};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int64_t keys : key_pools) {
    for (int threads : thread_counts) {
      // The baseline ran wait-die before this PR too; the policy ablation
      // (no-wait vs wait-die vs wound-wait) only makes sense on the
      // scalable path.
      cells.push_back({"baseline", LockPolicy::kWaitDie, threads, keys});
      for (LockPolicy policy : {LockPolicy::kNoWait, LockPolicy::kWaitDie,
                                LockPolicy::kWoundWait}) {
        cells.push_back({"scalable", policy, threads, keys});
      }
    }
  }
  return cells;
}

void Run(const ContentionConfig& cc) {
  if (cc.bulk) {
    RunBulk(cc);
    return;
  }
  std::vector<Cell> cells = BuildSweep(cc);
  PrintHeader("contention sweep: " + std::to_string(cells.size()) +
              " cells x " + std::to_string(cc.txns_per_thread) +
              " txns/thread, " + std::to_string(cc.nodes) + " nodes");
  BenchReport report("contention");
  {
    JsonWriter w;
    w.BeginObject()
        .Key("txns_per_thread").Int(cc.txns_per_thread)
        .Key("nodes").Int(cc.nodes)
        .Key("wal_force_ns").Uint(kForceNs)
        .Key("group_commit_window_us").Int(kWindowUs)
        .Key("sweep").Str(cc.ci_only ? "ci" : "full")
        .EndObject();
    report.Add("config", w.str());
  }
  JsonWriter sweep;
  sweep.BeginArray();
  for (const Cell& cell : cells) {
    CellResult r = RunCell(cc, cell);
    std::cout << r.cell.mode << "/" << LockPolicyToString(r.cell.policy)
              << " threads=" << r.cell.threads << " keys=" << r.cell.key_pool
              << ": committed=" << r.committed
              << " aborts=" << r.client_aborts
              << " throughput=" << r.committed_per_sec << "/s"
              << " p95=" << r.latency.P95() / 1e6 << "ms"
              << " kills=" << r.deadlock_kills << " wounds=" << r.wounds
              << " waits=" << r.lock_waits
              << " retries=" << r.maintain_retries
              << " gc_rounds=" << r.group_commit_rounds << "\n";
    sweep.Raw(CellJson(r));
  }
  sweep.EndArray();
  report.Add("sweep", sweep.str());
  report.Write();
}

}  // namespace
}  // namespace pjvm::bench

int main(int argc, char** argv) {
  pjvm::bench::ContentionConfig cc;
  if (argc > 1) cc.txns_per_thread = std::stoi(argv[1]);
  if (argc > 2) cc.nodes = std::stoi(argv[2]);
  if (argc > 3) {
    cc.ci_only = std::string(argv[3]) == "ci";
    cc.bulk = std::string(argv[3]) == "bulk";
  }
  pjvm::bench::Run(cc);
  return 0;
}
