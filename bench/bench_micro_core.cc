// google-benchmark micro-benchmarks for the substrate the maintenance
// methods are built on: B+-tree operations, hash partitioning, index
// probes, the local join executors, and end-to-end single-tuple maintenance
// under each method.

#include <benchmark/benchmark.h>

#include <memory>

#include "engine/system.h"
#include "exec/local_join.h"
#include "storage/btree.h"
#include "view/view_manager.h"
#include "workload/twotable.h"

namespace pjvm {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree<uint64_t> tree;
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(Value{i * 2654435761 % 100003}, static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(tree.num_items());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeLookup(benchmark::State& state) {
  BPlusTree<uint64_t> tree;
  for (int64_t i = 0; i < state.range(0); ++i) {
    tree.Insert(Value{i}, static_cast<uint64_t>(i));
  }
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(Value{key}));
    key = (key + 7919) % state.range(0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_HashPartitioning(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NodeForKey(Value{k++}, 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashPartitioning);

std::unique_ptr<ParallelSystem> MakeLoadedSystem(int64_t fanout) {
  SystemConfig cfg;
  cfg.num_nodes = 1;
  auto sys = std::make_unique<ParallelSystem>(cfg);
  TwoTableConfig two;
  two.b_join_keys = 1000;
  two.fanout = fanout;
  LoadTwoTable(sys.get(), two).Check();
  return sys;
}

void BM_IndexNestedLoopJoin(benchmark::State& state) {
  auto sys = MakeLoadedSystem(4);
  std::vector<Row> outer;
  for (int64_t i = 0; i < 100; ++i) {
    outer.push_back({Value{i}, Value{i % 1000}, Value{i}});
  }
  for (auto _ : state) {
    auto result = IndexNestedLoopJoin(sys->node(0), "B", 1, outer, 1);
    benchmark::DoNotOptimize(result->size());
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_IndexNestedLoopJoin);

void BM_SortMergeJoin(benchmark::State& state) {
  auto sys = MakeLoadedSystem(4);
  std::vector<Row> outer;
  for (int64_t i = 0; i < 100; ++i) {
    outer.push_back({Value{i}, Value{i % 1000}, Value{i}});
  }
  for (auto _ : state) {
    auto result = SortMergeJoinFragment(sys->node(0), "B", 1, outer, 1, 100,
                                        &sys->cost());
    benchmark::DoNotOptimize(result->size());
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_SortMergeJoin);

void MaintenanceBench(benchmark::State& state, MaintenanceMethod method) {
  SystemConfig cfg;
  cfg.num_nodes = static_cast<int>(state.range(0));
  auto sys = std::make_unique<ParallelSystem>(cfg);
  TwoTableConfig two;
  two.b_join_keys = 500;
  two.fanout = 4;
  LoadTwoTable(sys.get(), two).Check();
  ViewManager manager(sys.get());
  manager.RegisterView(MakeModelView(), method).Check();
  int64_t i = 0;
  for (auto _ : state) {
    manager.InsertRow("A", MakeDeltaA(two, i++)).status().Check();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["io_per_insert"] =
      sys->cost().TotalWorkload() / static_cast<double>(i);
}

void BM_MaintainNaive(benchmark::State& state) {
  MaintenanceBench(state, MaintenanceMethod::kNaive);
}
void BM_MaintainAux(benchmark::State& state) {
  MaintenanceBench(state, MaintenanceMethod::kAuxRelation);
}
void BM_MaintainGi(benchmark::State& state) {
  MaintenanceBench(state, MaintenanceMethod::kGlobalIndex);
}
BENCHMARK(BM_MaintainNaive)->Arg(4)->Arg(16);
BENCHMARK(BM_MaintainAux)->Arg(4)->Arg(16);
BENCHMARK(BM_MaintainGi)->Arg(4)->Arg(16);

}  // namespace
}  // namespace pjvm

BENCHMARK_MAIN();
