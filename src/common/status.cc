#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace pjvm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "PJVM fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace pjvm
