#ifndef PJVM_SQL_STATEMENT_H_
#define PJVM_SQL_STATEMENT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "view/maintainer.h"
#include "view/view_def.h"

namespace pjvm::sql {

/// \brief Kinds of statement the shell dialect supports.
enum class StatementKind {
  /// CREATE TABLE name (col TYPE, ...) [PARTITIONED ON col] — TYPE is one of
  /// INT/INT64/BIGINT, DOUBLE/FLOAT, STRING/TEXT/VARCHAR.
  kCreateTable = 0,
  /// CREATE [JOIN] VIEW ... [USING NAIVE|AR|AUX|GI|GLOBAL_INDEX] — see
  /// ParseCreateView for the view grammar; USING defaults to AR.
  kCreateView,
  /// INSERT INTO t VALUES (lit, ...) [, (lit, ...)]*
  kInsert,
  /// DELETE FROM t VALUES (lit, ...) — deletes one row per exact tuple
  /// (this engine identifies rows by content).
  kDelete,
  /// SELECT * FROM t [WHERE col = literal | WHERE col BETWEEN lo AND hi]
  kSelect,
  /// SHOW TABLES
  kShowTables,
  /// SHOW COST
  kShowCost,
  /// EXPLAIN table — for every registered view over `table`, the
  /// maintenance method, the statistics-driven plan a delta on that table
  /// would use, and its estimated cost.
  kExplain,
  /// EXPLAIN ANALYZE INSERT INTO ... | EXPLAIN ANALYZE DELETE FROM ... —
  /// actually runs the maintenance transaction and reports the measured
  /// per-node I/O breakdown, messages, and nodes touched.
  kExplainAnalyze,
  /// DROP VIEW name — unregisters the view and releases its structures.
  kDropView,
};

/// \brief A parsed statement; the active members depend on `kind`.
struct ParsedStatement {
  StatementKind kind = StatementKind::kShowTables;

  TableDef create_table;                       // kCreateTable
  JoinViewDef create_view;                     // kCreateView
  MaintenanceMethod method = MaintenanceMethod::kAuxRelation;  // kCreateView

  std::string table;                           // kInsert/kDelete/kSelect
  std::vector<Row> rows;                       // kInsert/kDelete
  /// kExplainAnalyze: the analyzed statement deletes rows (else inserts).
  bool analyze_delete = false;
  /// SELECT ... WHERE col = literal.
  std::optional<std::pair<std::string, Value>> where;
  /// SELECT ... WHERE col BETWEEN lo AND hi (inclusive).
  struct RangePred {
    std::string column;
    Value lo;
    Value hi;
  };
  std::optional<RangePred> where_range;
};

/// Parses one statement of the shell dialect.
Result<ParsedStatement> ParseStatement(const std::string& text);

}  // namespace pjvm::sql

#endif  // PJVM_SQL_STATEMENT_H_
