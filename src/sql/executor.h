#ifndef PJVM_SQL_EXECUTOR_H_
#define PJVM_SQL_EXECUTOR_H_

#include <ostream>
#include <string>

#include "sql/statement.h"
#include "view/view_manager.h"

namespace pjvm::sql {

/// \brief Runs parsed statements against a ParallelSystem + ViewManager,
/// writing human-readable results to a stream — the engine behind the
/// interactive shell example and a convenient scripting surface for tests.
///
/// DML against base tables goes through ViewManager::ApplyDelta, so every
/// registered view is maintained (one distributed transaction per
/// statement).
class Executor {
 public:
  explicit Executor(ViewManager* manager) : manager_(manager) {}

  /// Parses and executes one statement; output (rows, confirmations) goes
  /// to `os`. Errors are returned, not printed.
  Status Execute(const std::string& statement, std::ostream& os);

  /// Executes an entire script: statements separated by ';'. Stops at the
  /// first error.
  Status ExecuteScript(const std::string& script, std::ostream& os);

 private:
  Status Run(const ParsedStatement& stmt, std::ostream& os);

  ViewManager* manager_;
};

}  // namespace pjvm::sql

#endif  // PJVM_SQL_EXECUTOR_H_
