#include "storage/histogram.h"

#include <algorithm>

namespace pjvm {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<Value> values,
                                             int num_buckets) {
  EquiDepthHistogram hist;
  hist.total_rows_ = values.size();
  if (values.empty() || num_buckets <= 0) return hist;
  std::sort(values.begin(), values.end());
  size_t target_depth =
      std::max<size_t>(1, (values.size() + num_buckets - 1) / num_buckets);
  size_t i = 0;
  while (i < values.size()) {
    Bucket bucket;
    bucket.lo = values[i];
    bucket.rows = 0;
    bucket.distinct = 0;
    Value prev = values[i];
    bool first = true;
    // Fill to the target depth, but never split one value across buckets
    // (all duplicates of a value stay together so EstimateEq is exact for
    // hot keys).
    while (i < values.size()) {
      if (bucket.rows >= target_depth && values[i] != prev) break;
      if (first || values[i] != prev) {
        ++bucket.distinct;
        prev = values[i];
        first = false;
      }
      ++bucket.rows;
      bucket.hi = values[i];
      ++i;
    }
    hist.buckets_.push_back(std::move(bucket));
  }
  return hist;
}

double EquiDepthHistogram::EstimateEq(const Value& v) const {
  for (const Bucket& bucket : buckets_) {
    if (bucket.lo <= v && v <= bucket.hi) {
      return static_cast<double>(bucket.rows) /
             static_cast<double>(bucket.distinct);
    }
  }
  // Outside every bucket: floor at 1 row (see header). An insert whose key
  // is beyond the build-time domain is not free — it matches at least the
  // row being maintained the next time it is probed.
  return total_rows_ > 0 ? 1.0 : 0.0;
}

double EquiDepthHistogram::EstimateRange(const Value& lo,
                                         const Value& hi) const {
  if (hi < lo) return 0.0;
  double rows = 0.0;
  for (const Bucket& bucket : buckets_) {
    if (hi < bucket.lo || bucket.hi < lo) continue;
    bool fully_inside = lo <= bucket.lo && bucket.hi <= hi;
    if (fully_inside) {
      rows += static_cast<double>(bucket.rows);
    } else {
      // Partial overlap: assume the overlapped fraction of distinct values,
      // at the bucket's average depth. Only numeric ranges interpolate; a
      // partially-overlapped non-numeric bucket contributes half.
      double fraction = 0.5;
      if (bucket.lo.is_int64() && bucket.hi.is_int64() &&
          bucket.hi.AsInt64() > bucket.lo.AsInt64()) {
        double span =
            static_cast<double>(bucket.hi.AsInt64() - bucket.lo.AsInt64());
        double olo = std::max(lo.AsInt64(), bucket.lo.AsInt64());
        double ohi = std::min(hi.AsInt64(), bucket.hi.AsInt64());
        fraction = (ohi - olo + 1) / (span + 1);
      } else if (bucket.lo.is_double() && bucket.hi.is_double() &&
                 bucket.hi.AsDouble() > bucket.lo.AsDouble()) {
        double span = bucket.hi.AsDouble() - bucket.lo.AsDouble();
        double olo = std::max(lo.AsDouble(), bucket.lo.AsDouble());
        double ohi = std::min(hi.AsDouble(), bucket.hi.AsDouble());
        fraction = (ohi - olo) / span;
      }
      rows += fraction * static_cast<double>(bucket.rows);
    }
  }
  return rows;
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = "hist{rows=" + std::to_string(total_rows_);
  for (const Bucket& bucket : buckets_) {
    out += " [" + bucket.lo.ToString() + ".." + bucket.hi.ToString() + "]x" +
           std::to_string(bucket.rows) + "/" + std::to_string(bucket.distinct);
  }
  out += "}";
  return out;
}

EquiDepthHistogram BuildFragmentHistogram(const TableFragment& fragment,
                                          int column, int num_buckets) {
  std::vector<Value> values;
  values.reserve(fragment.num_rows());
  fragment.ForEach([&](LocalRowId, const Row& row) {
    values.push_back(row[column]);
    return true;
  });
  return EquiDepthHistogram::Build(std::move(values), num_buckets);
}

}  // namespace pjvm
