#ifndef PJVM_VIEW_VIEW_MANAGER_H_
#define PJVM_VIEW_VIEW_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "engine/system.h"
#include "view/ar_minimizer.h"
#include "view/escrow.h"
#include "view/explain.h"
#include "view/heavy_light.h"
#include "view/maintainer.h"
#include "view/materialized_view.h"
#include "view/merged_storage.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief Registry of global indexes: distributed (value -> global row ids)
/// structures stored as tables of (key, node, lrid) entries hash-partitioned
/// and clustered on the key (Section 2.1.3).
///
/// Global indexes cover all rows of the base (selections are applied after
/// the fetch), so one GI per (table, column) serves every view.
class GiRegistry {
 public:
  explicit GiRegistry(ParallelSystem* sys) : sys_(sys) {}

  /// Creates (and backfills) the GI for (table, col) if absent.
  Status Require(const std::string& table, int col);

  Result<std::string> Access(const std::string& table, int col) const;
  bool Has(const std::string& table, int col) const {
    return entries_.count({table, col}) > 0;
  }

  /// Drops one reference; the GI table is removed at zero references.
  Status Release(const std::string& table, int col);

  /// Propagates one base-table delta into every GI of that table, using the
  /// delta's global row ids. Returns the number of entry writes.
  Result<size_t> ApplyDelta(uint64_t txn, const DeltaBatch& delta);

  /// Drops and rebuilds every GI from the current base tables. Needed after
  /// crash recovery: local row ids are not stable across a heap rebuild.
  Status RebuildAll();

  size_t StorageBytes() const;
  std::vector<std::string> TableNames() const;

  /// Every entry resolves to a live base row with the indexed key, and every
  /// base row is indexed exactly once.
  Status CheckConsistent() const;

 private:
  struct Entry {
    std::string gi_table;
    std::string base_table;
    int col = -1;
  };

  Status Backfill(const Entry& entry);
  static Row EntryRow(const Value& key, GlobalRowId gid);

  ParallelSystem* sys_;
  std::map<std::pair<std::string, int>, Entry> entries_;
  std::map<std::pair<std::string, int>, int> refs_;
};

/// \brief When a view's contents are brought up to date.
enum class MaintenanceTiming {
  /// Inside every base-update transaction (the paper's setting).
  kImmediate = 0,
  /// The view goes stale as base tables change and is brought current by
  /// RefreshView(): a from-scratch recomputation diffed against the stored
  /// contents — the traditional warehouse's periodic batch refresh, kept as
  /// the baseline the paper's operational scenario argues against.
  kDeferred,
};

const char* MaintenanceTimingToString(MaintenanceTiming timing);

/// \brief How one view is registered for maintenance.
struct ViewRegistration {
  BoundView bound;
  MaintenanceMethod method;
  MaintenanceTiming timing = MaintenanceTiming::kImmediate;
  bool stale = false;
  std::unique_ptr<MaterializedView> view;
  std::unique_ptr<Maintainer> maintainer;
};

/// \brief The system's view-maintenance front end.
///
/// Owns the registered views, their materialized tables, and the shared
/// auxiliary structures (ARs and GIs). ApplyDelta runs the paper's
/// transaction:
///
///   begin transaction
///     update base relation;
///     update auxiliary relations / global indexes;   (method-dependent)
///     update join views;
///   end transaction   (two-phase commit over the touched nodes)
class ViewManager : public StructureResolver {
 public:
  explicit ViewManager(ParallelSystem* sys)
      : sys_(sys), ars_(sys), gis_(sys) {
    if (sys->config().heavy_light) {
      classifier_ = std::make_unique<HeavyLightClassifier>(
          sys, sys->config().heavy_key_threshold,
          sys->config().stats_refresh_ops);
    }
    // Escrow needs the V/X lock protocol to mean anything: without locking
    // there is no eager X serialization to relax, and the byte-for-byte
    // equivalence to the unlocked path would not hold anyway.
    if (sys->config().escrow_aggregates && sys->config().enable_locking) {
      escrow_ = std::make_unique<EscrowRegistry>(sys);
      sys->SetTxnHook(escrow_.get());
    }
  }
  ~ViewManager() {
    // The system outlives this manager in every embedding; the hook must
    // not dangle into the destroyed journal.
    if (escrow_ != nullptr) sys_->SetTxnHook(nullptr);
  }

  ParallelSystem* system() { return sys_; }

  /// Validates and registers `def`, creating the view table, backfilling it
  /// from the base tables, and creating whatever structures `method` needs
  /// (join-attribute indexes; ARs; GIs). Structures are shared across views.
  Status RegisterView(const JoinViewDef& def, MaintenanceMethod method,
                      MaintenanceTiming timing = MaintenanceTiming::kImmediate);

  /// Brings a deferred view current: recomputes the join from scratch
  /// (charging a scan of every base fragment) and applies the difference to
  /// the stored contents. No-op when the view is already fresh.
  Status RefreshView(const std::string& name);
  /// Refreshes every stale deferred view.
  Status RefreshAllViews();
  bool IsStale(const std::string& name) const;

  /// Applies a batch of base-table changes and maintains every dependent
  /// view, all in one distributed transaction. Updates in `delta.updates`
  /// are normalized to delete+insert. Returns the aggregate report.
  ///
  /// Under contention a transaction may be chosen as the wait-die victim;
  /// the attempt is aborted (releasing all its locks) and retried under a
  /// fresh transaction id with exponential backoff + jitter, up to
  /// `SystemConfig::maintain_max_attempts` (`maintain_retry_base_us` sets
  /// the first delay). Retries are counted in `pjvm_maintain_retries`; a
  /// client-visible Aborted status only escapes when attempts are exhausted.
  ///
  /// When `analysis` is non-null it is filled with the transaction's
  /// EXPLAIN ANALYZE: per-node CostTracker deltas, message/byte counts, and
  /// a per-view phase breakdown. Collecting it only reads counters, so the
  /// charged costs are identical with or without it.
  Result<MaintenanceReport> ApplyDelta(DeltaBatch delta,
                                       MaintenanceAnalysis* analysis = nullptr);

  /// Single-row conveniences (each a full maintenance transaction).
  Result<MaintenanceReport> InsertRow(const std::string& table, Row row) {
    return ApplyDelta(DeltaBatch::Inserts(table, {std::move(row)}));
  }
  Result<MaintenanceReport> DeleteRow(const std::string& table, Row row) {
    return ApplyDelta(DeltaBatch::Deletes(table, {std::move(row)}));
  }
  Result<MaintenanceReport> UpdateRow(const std::string& table, Row old_row,
                                      Row new_row) {
    DeltaBatch delta;
    delta.table = table;
    delta.updates.emplace_back(std::move(old_row), std::move(new_row));
    return ApplyDelta(std::move(delta));
  }

  MaterializedView* view(const std::string& name);
  const ViewRegistration* registration(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  /// Recomputes each registered view from scratch and compares (bag
  /// semantics) with the materialized contents — the paper-independent
  /// correctness oracle. Also verifies AR/GI consistency.
  Status CheckAllConsistent();

  /// Removes a view: drops its materialized table and releases its
  /// auxiliary structures (shared ARs/GIs survive while other views need
  /// them; base-table indexes created for the naive method are kept).
  Status UnregisterView(const std::string& name);

  /// Rebuilds the global indexes from base tables (run after Recover()).
  Status RebuildGlobalIndexes() { return gis_.RebuildAll(); }

  /// Full post-crash view recovery: rebuilds the global indexes, then
  /// reconciles any view with buffered heavy-key deltas. Buffered gids
  /// reference pre-crash heap positions (and the base rows the buffered
  /// txns wrote *are* recovered), so the buffers are discarded and each
  /// affected view is brought current by recompute-and-diff instead.
  Status RecoverViews();

  /// Folds one view's buffered heavy-key deltas into the view, in its own
  /// bounded-retry transaction under fragment-level view locks. No-op when
  /// nothing is buffered (or heavy/light is off).
  Status FoldView(const std::string& name);
  /// Folds every view's buffer (run before comparing against the oracle, at
  /// a bench window's end, etc.).
  Status FoldAllDeferred();
  /// Buffered heavy-delta rows for one view.
  size_t DeferredRows(const std::string& name) const;

  /// The heavy/light classifier; nullptr when SystemConfig::heavy_light is
  /// off.
  HeavyLightClassifier* classifier() { return classifier_.get(); }

  /// The escrow journal; nullptr when SystemConfig::escrow_aggregates is
  /// off (or locking is disabled).
  EscrowRegistry* escrow() { return escrow_.get(); }

  ArRegistry& ars() { return ars_; }
  GiRegistry& gis() { return gis_; }

  /// The view's merged co-clustered storage, or nullptr for the separate
  /// layout (SystemConfig::merged_ar_storage off or the view ineligible).
  MergedViewStorage* merged_storage(const std::string& name) {
    auto it = merged_.find(name);
    return it == merged_.end() ? nullptr : it->second.get();
  }

  // StructureResolver:
  Result<ArAccess> ArFor(const std::string& table, int col,
                         const std::vector<int>& needed_cols,
                         const std::vector<BoundPred>& preds) const override {
    return ars_.Access(table, col, needed_cols, preds);
  }
  Result<std::string> GiFor(const std::string& table, int col) const override {
    return gis_.Access(table, col);
  }
  MergedViewStorage* MergedFor(const std::string& view) const override {
    auto it = merged_.find(view);
    return it == merged_.end() ? nullptr : it->second.get();
  }

 private:
  /// Ensures every probe-side structure for `bound` under `method` exists.
  Status CreateStructures(const BoundView& bound, MaintenanceMethod method);
  /// (base table, full column) pairs that some maintenance step may probe.
  static std::vector<std::pair<int, int>> ProbeColumns(const BoundView& bound);
  /// Index of `table` within `reg`'s bases, or -1.
  static int BaseIndexOf(const ViewRegistration& reg, const std::string& table);

  /// Recomputes `name` from scratch and applies the bag difference to the
  /// stored contents in one transaction (the deferred-refresh / recovery
  /// reconciliation primitive).
  Status RecomputeAndDiff(const std::string& name, ViewRegistration& reg);
  /// FoldView body; requires hl_mu_ held.
  Status FoldViewLocked(const std::string& name, ViewRegistration& reg);
  void UpdateDeferredGauge();

  ParallelSystem* sys_;
  ArRegistry ars_;
  GiRegistry gis_;
  std::map<std::string, ViewRegistration> views_;
  /// Merged co-clustered trees, keyed by view name (eligible views only).
  std::map<std::string, std::unique_ptr<MergedViewStorage>> merged_;
  /// Escrow journal for aggregate views (SystemConfig::escrow_aggregates);
  /// registered as the system's TxnHook for this manager's lifetime.
  std::unique_ptr<EscrowRegistry> escrow_;

  // Heavy/light deferred maintenance (SystemConfig::heavy_light). hl_mu_
  // serializes routing decisions, buffer mutation, and folds: a fold joins
  // buffered rows against the neighbours' *current* state, which must not
  // move while it runs. The scalable concurrent write path is heavy_light
  // off; see the knob's doc in engine/system.h.
  mutable std::mutex hl_mu_;
  std::unique_ptr<HeavyLightClassifier> classifier_;
  DeferredDeltaStore deferred_;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_VIEW_MANAGER_H_
