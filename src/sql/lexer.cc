#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace pjvm::sql {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kInt:
      return "integer";
    case TokenType::kDouble:
      return "double";
    case TokenType::kString:
      return "string";
    case TokenType::kSymbol:
      return "symbol";
    case TokenType::kOperator:
      return "operator";
    case TokenType::kEnd:
      return "end of input";
  }
  return "unknown";
}

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "CREATE", "VIEW",        "AS", "SELECT", "FROM",  "WHERE", "AND",
      "JOIN",   "PARTITIONED", "ON", "GROUP",  "BY",    "COUNT", "SUM"};
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), [](char ch) {
        return static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      });
      if (Keywords().count(upper) > 0) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdent, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') is_double = true;
        ++i;
      }
      tokens.push_back({is_double ? TokenType::kDouble : TokenType::kInt,
                        input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n && input[i] != '\'') text += input[i++];
      if (i == n) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(start));
      }
      ++i;  // Closing quote.
      tokens.push_back({TokenType::kString, text, start});
      continue;
    }
    // Multi-character operators first.
    auto two = input.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      tokens.push_back({TokenType::kOperator, two, start});
      i += 2;
      continue;
    }
    if (c == '=' || c == '<' || c == '>') {
      tokens.push_back({TokenType::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    if (c == ',' || c == '.' || c == ';' || c == '*' || c == '(' || c == ')') {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace pjvm::sql
