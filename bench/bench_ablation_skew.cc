// Ablation: heavy/light skew-adaptive maintenance on a Zipfian update stream.
//
// Real warehouse activity is Zipfian — a few hot join keys receive most
// updates and have most matches, so a hot-key insert pays the hot key's full
// view fanout eagerly, and hot churn (insert soon deleted) pays it twice.
// The heavy/light layer defers hot-key view maintenance into per-view delta
// buffers: churned pairs annihilate before ever touching the view, and the
// batch fold probes each distinct hot key once instead of once per tuple.
//
// This bench drives the SAME update stream (Zipf-keyed inserts, every third
// op deleting the previous insert) through two systems — heavy_light on and
// off — across a theta sweep, and reports wall-clock throughput plus a view
// content fingerprint for each cell. At theta = 0 (uniform) no key crosses
// the heavy threshold and both systems run the identical eager path; at
// theta = 1.0 the deferred path should win well over 1.5x while producing
// byte-identical view contents after the final fold.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "view/heavy_light.h"
#include "workload/zipf.h"

namespace pjvm {
namespace {

constexpr int kBRows = 3000;       // preloaded B rows
constexpr int kJoinKeys = 64;      // Zipf domain of the join attribute
constexpr int kStreamOps = 600;    // inserts + deletes per cell
constexpr int kNodes = 4;

struct CellResult {
  double theta = 0.0;
  bool heavy_light = false;
  int ops = 0;
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;
  size_t view_rows = 0;
  std::string fingerprint;
  size_t heavy_keys = 0;
  uint64_t folds = 0;
  double cancelled_rows = 0.0;
};

// Order-insensitive content fingerprint: the sorted multiset of row strings.
std::string Fingerprint(std::vector<Row> rows, size_t* count) {
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) keys.push_back(RowToString(row));
  std::sort(keys.begin(), keys.end());
  *count = keys.size();
  std::string all;
  for (const std::string& k : keys) {
    all += k;
    all += '\n';
  }
  // FNV-1a over the sorted bag; collisions are irrelevant at this scale.
  uint64_t h = 1469598103934665603ull;
  for (char c : all) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

CellResult RunCell(double theta, bool heavy_light) {
  SystemConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.rows_per_page = 8;
  cfg.heavy_light = heavy_light;
  auto sys = std::make_unique<ParallelSystem>(cfg);
  TableDef a;
  a.name = "A";
  a.schema = Schema({{"a", ValueType::kInt64},
                     {"c", ValueType::kInt64},
                     {"e", ValueType::kInt64}});
  a.partition = PartitionSpec::Hash("a");
  TableDef b;
  b.name = "B";
  b.schema = Schema({{"b", ValueType::kInt64},
                     {"d", ValueType::kInt64},
                     {"f", ValueType::kInt64}});
  b.partition = PartitionSpec::Hash("b");
  sys->CreateTable(a).Check();
  sys->CreateTable(b).Check();
  // Same seed for the on and off runs of one theta: identical preload.
  ZipfGenerator preload(kJoinKeys, theta, 17);
  for (int64_t i = 0; i < kBRows; ++i) {
    sys->Insert("B", {Value{i}, Value{preload.Next()}, Value{i * 10}}).Check();
  }
  ViewManager manager(sys.get());
  JoinViewDef def;
  def.name = "V";
  def.bases = {{"A", "A"}, {"B", "B"}};
  def.edges = {{{"A", "c"}, {"B", "d"}}};
  def.partition_on = ColumnRef{"A", "e"};
  manager.RegisterView(def, MaintenanceMethod::kAuxRelation).Check();

  Counter* folds = MetricsRegistry::Global().counter("pjvm_deferred_folds");
  Gauge* cancelled =
      MetricsRegistry::Global().gauge("pjvm_deferred_rows_cancelled");
  const uint64_t folds_before = folds->value();
  const double cancelled_before = cancelled->value();

  // The measured stream: Zipf-keyed inserts; every third op deletes the
  // previous insert (churn inside the deferral window). The final fold is
  // part of the measured time — deferral must not win by leaving work owed.
  ZipfGenerator stream(kJoinKeys, theta, 29);
  int64_t next_a = 0;
  Row prev;
  auto start = std::chrono::steady_clock::now();
  for (int op = 0; op < kStreamOps; ++op) {
    if (op % 3 == 2) {
      manager.DeleteRow("A", prev).status().Check();
    } else {
      int64_t k = next_a++;
      prev = {Value{k}, Value{stream.Next()}, Value{k * 100}};
      manager.InsertRow("A", prev).status().Check();
    }
  }
  manager.FoldAllDeferred().Check();
  auto end = std::chrono::steady_clock::now();

  manager.CheckAllConsistent().Check();
  CellResult r;
  r.theta = theta;
  r.heavy_light = heavy_light;
  r.ops = kStreamOps;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  r.ops_per_sec = kStreamOps / (r.wall_ms / 1000.0);
  r.fingerprint = Fingerprint(manager.view("V")->Contents(), &r.view_rows);
  r.heavy_keys =
      manager.classifier() != nullptr ? manager.classifier()->heavy_keys_live()
                                      : 0;
  r.folds = folds->value() - folds_before;
  r.cancelled_rows = cancelled->value() - cancelled_before;
  return r;
}

}  // namespace
}  // namespace pjvm

int main() {
  using namespace pjvm;
  bench::PrintHeader(
      "Heavy/light ablation: Zipf update stream, deferred hot-key deltas");
  std::printf("%6s %12s %10s %12s %10s %7s %7s %11s\n", "theta", "heavy_light",
              "wall_ms", "ops/sec", "view_rows", "heavy", "folds", "cancelled");

  bench::BenchReport report("ablation_skew");
  bench::JsonWriter cells;
  cells.BeginArray();
  bench::JsonWriter summary;
  summary.BeginArray();
  for (double theta : {0.0, 0.5, 1.0}) {
    CellResult off = RunCell(theta, /*heavy_light=*/false);
    CellResult on = RunCell(theta, /*heavy_light=*/true);
    for (const CellResult* r : {&off, &on}) {
      std::printf("%6.1f %12s %10.1f %12.0f %10zu %7zu %7llu %11.0f\n",
                  r->theta, r->heavy_light ? "on" : "off", r->wall_ms,
                  r->ops_per_sec, r->view_rows,
                  r->heavy_keys, static_cast<unsigned long long>(r->folds),
                  r->cancelled_rows);
      cells.BeginObject()
          .Key("theta").Num(r->theta)
          .Key("heavy_light").Bool(r->heavy_light)
          .Key("ops").Int(r->ops)
          .Key("wall_ms").Num(r->wall_ms)
          .Key("ops_per_sec").Num(r->ops_per_sec)
          .Key("view_rows").Uint(r->view_rows)
          .Key("fingerprint").Str(r->fingerprint)
          .Key("heavy_keys_live").Uint(r->heavy_keys)
          .Key("deferred_folds").Uint(r->folds)
          .Key("cancelled_rows").Num(r->cancelled_rows)
          .EndObject();
    }
    bool match = on.fingerprint == off.fingerprint;
    double speedup = on.ops_per_sec / off.ops_per_sec;
    std::printf("%6.1f %12s   speedup %.2fx, contents %s\n", theta, "--",
                speedup, match ? "identical" : "DIVERGED");
    summary.BeginObject()
        .Key("theta").Num(theta)
        .Key("speedup").Num(speedup)
        .Key("contents_match").Bool(match)
        .EndObject();
    if (!match) {
      std::printf("FATAL: view contents diverged at theta=%.1f\n", theta);
      return 1;
    }
  }
  cells.EndArray();
  summary.EndArray();
  report.Add("cells", cells.str());
  report.Add("summary", summary.str());
  report.Write();
  std::printf(
      "\nAt theta=0 no key crosses the heavy threshold and both systems run\n"
      "the identical eager path; at high theta the deferred path cancels hot\n"
      "churn in the buffer and folds each distinct hot key with one probe.\n"
      "Contents are fingerprint-verified identical in every cell.\n");
  return 0;
}
