file(REMOVE_RECURSE
  "CMakeFiles/cost_agreement_test.dir/cost_agreement_test.cc.o"
  "CMakeFiles/cost_agreement_test.dir/cost_agreement_test.cc.o.d"
  "cost_agreement_test"
  "cost_agreement_test.pdb"
  "cost_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
