#ifndef PJVM_VIEW_MAINTAINER_H_
#define PJVM_VIEW_MAINTAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/system.h"
#include "storage/row_id.h"
#include "view/materialized_view.h"
#include "view/planner.h"
#include "view/view_def.h"

namespace pjvm {

/// \brief The three maintenance methods the paper compares.
enum class MaintenanceMethod {
  kNaive = 0,
  kAuxRelation,
  kGlobalIndex,
};

const char* MaintenanceMethodToString(MaintenanceMethod method);

/// \brief A batch of changes to one base table, expressed as full base rows.
///
/// `insert_gids` / `delete_gids` parallel the row vectors and carry each
/// row's (node, local rid) — the node where the row physically arrived or
/// lived. They are filled by ViewManager when it applies the base update;
/// they seed the maintenance dataflow (the paper's "node i") and identify
/// global-index entries. Updates are normalized to delete+insert pairs by
/// ViewManager before reaching a maintainer.
struct DeltaBatch {
  std::string table;
  std::vector<Row> inserts;
  std::vector<GlobalRowId> insert_gids;
  std::vector<Row> deletes;
  std::vector<GlobalRowId> delete_gids;
  std::vector<std::pair<Row, Row>> updates;  // (old, new); consumed by ViewManager.

  static DeltaBatch Inserts(std::string table, std::vector<Row> rows) {
    DeltaBatch d;
    d.table = std::move(table);
    d.inserts = std::move(rows);
    return d;
  }
  static DeltaBatch Deletes(std::string table, std::vector<Row> rows) {
    DeltaBatch d;
    d.table = std::move(table);
    d.deletes = std::move(rows);
    return d;
  }
};

/// \brief What one maintenance invocation did (counts only; I/O totals come
/// from CostTracker snapshots around the call).
struct MaintenanceReport {
  size_t view_rows_inserted = 0;
  size_t view_rows_deleted = 0;
  /// Writes to auxiliary relations / global indexes for this delta.
  size_t structure_writes = 0;
  /// Join-side index probes issued.
  size_t probes = 0;
  /// Human-readable notes (chosen join algorithm per step etc.).
  std::string notes;

  MaintenanceReport& operator+=(const MaintenanceReport& o) {
    view_rows_inserted += o.view_rows_inserted;
    view_rows_deleted += o.view_rows_deleted;
    structure_writes += o.structure_writes;
    probes += o.probes;
    if (!o.notes.empty()) {
      if (!notes.empty()) notes += "; ";
      notes += o.notes;
    }
    return *this;
  }
};

/// \brief Access descriptor for probing an auxiliary relation.
struct ArAccess {
  /// Name of the AR table ("partitioned on the join attribute, with a
  /// clustered index on it").
  std::string table;
  /// Position of the join attribute inside the AR's schema.
  int probe_col = -1;
  /// For each needed column of the underlying base (in needed order), its
  /// position in the AR's schema. ARs may be wider than one view needs when
  /// shared across views (Section 2.1.2).
  std::vector<int> needed_pos;
  /// Selection predicates the consumer must still apply to probed AR rows
  /// (column indices are positions in the AR's schema). Empty when the AR
  /// itself stores exactly the consumer's sigma-filtered rows.
  std::vector<BoundPred> residual_preds;
};

class MergedViewStorage;

/// \brief How maintainers discover the auxiliary structures ViewManager
/// maintains (implemented by ViewManager).
class StructureResolver {
 public:
  virtual ~StructureResolver() = default;

  /// AR for probing into `table` on full column `col`, shaped for a consumer
  /// that needs `needed_cols` of the base and applies `preds` (full-schema
  /// columns) to it. NotFound if no AR exists (e.g. the base is already
  /// partitioned on `col`).
  virtual Result<ArAccess> ArFor(const std::string& table, int col,
                                 const std::vector<int>& needed_cols,
                                 const std::vector<BoundPred>& preds) const = 0;

  /// Global-index table for `table` on full column `col`; NotFound if none.
  virtual Result<std::string> GiFor(const std::string& table, int col) const = 0;

  /// Merged co-clustered storage of view `view`, or nullptr when the view
  /// uses the separate layout (see view/merged_storage.h).
  virtual MergedViewStorage* MergedFor(const std::string& /*view*/) const {
    return nullptr;
  }
};

/// \brief Base class of the three maintenance strategies. Owns the shared
/// dataflow machinery: seeding partial tuples at the update's arrival node,
/// shipping data between nodes through the interconnect, verifying residual
/// join edges, and emitting finished tuples to the view.
class Maintainer {
 public:
  Maintainer(ParallelSystem* sys, MaterializedView* view,
             const StructureResolver* resolver)
      : sys_(sys), view_(view), resolver_(resolver) {}
  virtual ~Maintainer() = default;

  virtual MaintenanceMethod method() const = 0;

  /// Computes and applies the view change for `delta` (whose base update has
  /// already been applied, and whose structures — ARs/GIs — have already
  /// been updated by ViewManager). `updated_base` is the index of the
  /// delta's table within the view definition.
  Result<MaintenanceReport> ApplyDelta(uint64_t txn, int updated_base,
                                       const DeltaBatch& delta);

  /// Batch-fold mode (heavy/light deferred folds, view/heavy_light.h): the
  /// delta is a buffered batch dominated by a few hot keys, so probe results
  /// are memoized per distinct key within a step — one index probe (and one
  /// GI rid-list fetch) serves every duplicate. Off by default; eager
  /// maintenance keeps its per-tuple cost accounting bit-exact.
  void set_fold_mode(bool on) { fold_mode_ = on; }
  bool fold_mode() const { return fold_mode_; }

 protected:
  /// A partial join result: a working row with the bases joined so far
  /// filled in, currently materialized at `node`.
  struct Partial {
    Row working;
    int node;
  };

  /// Computes the plan (join order over the remaining bases) for this delta
  /// using live statistics.
  Result<MaintenancePlan> Plan(int updated_base) const;

  /// Delta-aware plan: first-step candidates are scored by the actual key
  /// values in `rows` (exact per-key match counts where an index exists),
  /// so skewed batches order their joins by what they will really touch.
  Result<MaintenancePlan> PlanForRows(int updated_base,
                                      const std::vector<Row>& rows) const;

  /// Expected matches for one key in (base, full column): exact via the
  /// index posting lists when available, the average fanout otherwise.
  double EstimateKeyFanout(int base, int full_col, const Value& key) const;

  /// Builds seed partials from delta rows: applies the updated base's
  /// selections, projects to needed columns, and places each seed at its
  /// arrival node (`gids`), or — when `colocate_col` >= 0 — at the hash home
  /// of that column, reflecting that the structure-maintenance ship already
  /// moved the tuple there (AR/GI methods).
  Result<std::vector<Partial>> SeedPartials(int updated_base,
                                            const std::vector<Row>& rows,
                                            const std::vector<GlobalRowId>& gids,
                                            int colocate_col) const;

  /// Sends `msg` and immediately delivers it (synchronous simulated hop).
  Status Ship(Message msg);

  /// True iff all of the step's residual edges hold on `working`.
  Result<bool> ResidualOk(const PlanStep& step, const Row& working) const;

  /// Extends `partial` with one probed target tuple (already in needed
  /// form), runs residual checks, and appends to `out` at node `at_node`.
  Status Extend(const PlanStep& step, const Partial& partial,
                const Row& target_needed, int at_node,
                std::vector<Partial>* out) const;

  /// Routes finished partials to the view (insert or delete).
  Status EmitToView(uint64_t txn, const std::vector<Partial>& completed,
                    bool is_delete, MaintenanceReport* report);

  /// Live average fanout of (base, full column) from table statistics.
  double EstimateFanout(int base, int full_col) const;

  /// Per-sign processing implemented by each method: runs the plan's steps
  /// over the seeds and emits to the view.
  virtual Status ProcessSign(uint64_t txn, int updated_base,
                             const MaintenancePlan& plan,
                             const std::vector<Row>& rows,
                             const std::vector<GlobalRowId>& gids,
                             bool is_delete, MaintenanceReport* report) = 0;

  /// Describes what a plan step probes at a node: which table, which of its
  /// columns, and how a probed row maps to the target base's needed tuple.
  struct ProbeTarget {
    std::string table;
    /// Column to probe, in the probed table's schema.
    int probe_col = -1;
    /// Position in the probed row of each needed column of the target base
    /// (full base rows: the needed column indices themselves; AR rows: the
    /// AR's column positions).
    std::vector<int> needed_map;
    /// Selection predicates to apply to probed rows; column indices are
    /// positions within the probed row.
    std::vector<BoundPred> preds;
  };

  /// ProbeTarget for the raw base table of `step.target_base`.
  ProbeTarget BaseProbeTarget(const PlanStep& step) const;

  /// Joins `group` (partials already located at `node`) against the probe
  /// target's fragment there, choosing index-nested-loops vs sort-merge by
  /// cost (`per_tuple_index_io` is the estimated index I/O per outer tuple
  /// at this node). Extends matches into `out` at `node`.
  Status ProbeGroupAtNode(uint64_t txn, const PlanStep& step,
                          const ProbeTarget& target, int node,
                          std::vector<const Partial*> group, int key_idx,
                          double per_tuple_index_io, MaintenanceReport* report,
                          std::vector<Partial>* out);

  /// The naive method's all-node step: broadcasts every partial to all L
  /// nodes (L SENDs each) and joins at every node. Also the large-batch
  /// fallback of the global-index method.
  Result<std::vector<Partial>> BroadcastStep(uint64_t txn, const PlanStep& step,
                                             const std::vector<Partial>& in,
                                             MaintenanceReport* report);

  /// Single-node step: routes each partial to the hash home of its key in
  /// `target` (one SEND per partial unless already there) and joins there.
  /// Used for co-partitioned bases (naive case 1) and auxiliary relations.
  Result<std::vector<Partial>> RoutedStep(uint64_t txn, const PlanStep& step,
                                          const ProbeTarget& target,
                                          const std::vector<Partial>& in,
                                          MaintenanceReport* report);

  /// RoutedStep's merged-layout twin: routes each partial to its key's hash
  /// home and probes the view's merged co-clustered tree there instead of
  /// the AR's index — one range descent per (txn, node, key), every
  /// subsequent in-range operation free, zero per-row fetches (the member
  /// rows are clustered within the key range by construction).
  Result<std::vector<Partial>> MergedRoutedStep(uint64_t txn,
                                                const PlanStep& step,
                                                MergedViewStorage* merged,
                                                const std::vector<Partial>& in,
                                                MaintenanceReport* report);

  const BoundView& bound() const { return view_->bound(); }

  ParallelSystem* sys_;
  MaterializedView* view_;
  const StructureResolver* resolver_;
  bool fold_mode_ = false;
};

}  // namespace pjvm

#endif  // PJVM_VIEW_MAINTAINER_H_
