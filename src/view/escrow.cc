#include "view/escrow.h"

#include <algorithm>
#include <utility>

#include "engine/node.h"
#include "obs/metrics_registry.h"
#include "txn/txn_manager.h"
#include "txn/wal.h"

namespace pjvm {

namespace {

Value AddValue(const Value& a, const Value& b, bool negate_b) {
  if (a.is_int64()) {
    return Value{a.AsInt64() + (negate_b ? -b.AsInt64() : b.AsInt64())};
  }
  return Value{a.AsDouble() + (negate_b ? -b.AsDouble() : b.AsDouble())};
}

Counter* EscrowOpsCounter() {
  static Counter* c = MetricsRegistry::Global().counter("pjvm_escrow_ops");
  return c;
}

}  // namespace

void EscrowRegistry::AddView(const std::string& name, const BoundView* bound) {
  if (!bound->is_aggregate()) return;
  // The escrow lock identity is the partition-column index key — the one
  // the eager path X-locks and readers S-probe. A round-robin (global)
  // aggregate has no such key and keeps the eager path; the partitioning
  // column must sit inside the group prefix so a contribution row carries
  // the same key value as the stored group row.
  const int pcol = bound->output_partition_col();
  if (pcol < 0 || pcol >= bound->StoredGroupWidth()) return;
  std::lock_guard<std::mutex> lock(mu_);
  views_[name].bound = bound;
}

void EscrowRegistry::RemoveView(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  views_.erase(name);
}

Row EscrowRegistry::FoldedRow(const BoundView& bound, const GroupState& gs) {
  const int width = bound.StoredGroupWidth();
  Row folded = gs.committed;
  // Ascending txn id: the in-flight bytes are a pure function of the
  // resident deltas, independent of arrival/abort history (floating-point
  // addition is not associative, so the order must be canonical).
  for (const auto& [txn, delta] : gs.deltas) {
    (void)txn;
    for (size_t i = width; i < folded.size(); ++i) {
      folded[i] = AddValue(folded[i], delta[i], /*negate_b=*/false);
    }
  }
  return folded;
}

Status EscrowRegistry::RewriteHeapLocked(const std::string& view,
                                         ViewState& vs, const GroupKey& key,
                                         GroupState& gs) {
  Node* node = sys_->node(key.first);
  PJVM_RETURN_NOT_OK(
      node->EscrowReplace(view, gs.lrid, FoldedRow(*vs.bound, gs)));
  const TableFragment* frag = node->fragment(view);
  gs.pages = frag->num_pages();
  gs.rows = frag->num_rows();
  return Status::OK();
}

void EscrowRegistry::MarkExclusiveLocked(uint64_t txn, const std::string& view,
                                         const GroupKey& key) {
  txn_eager_[txn].insert({view, key});
  ++stats_[txn].vlock_upgrades;
}

Result<bool> EscrowRegistry::Apply(uint64_t txn, int node_id,
                                   const std::string& view,
                                   const Row& contribution, bool is_delete) {
  if (txn == kAutoCommitTxnId) return false;
  const BoundView* bound = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto vit = views_.find(view);
    if (vit == views_.end()) return false;
    bound = vit->second.bound;
  }
  const int width = bound->StoredGroupWidth();
  const int count_idx = bound->StoredCountIndex();
  const int pcol = bound->output_partition_col();
  GroupKey key{node_id, Row(contribution.begin(), contribution.begin() + width)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto eit = txn_eager_.find(txn);
    if (eit != txn_eager_.end() && eit->second.count({view, key}) > 0) {
      // Post-escalation: this transaction already maintains the group
      // eagerly under its X lock.
      return false;
    }
  }

  // The escrow lock. Blocking is allowed here (no latch held): concurrent
  // incrementers hold compatible V locks and proceed; an eager writer's X
  // or a reader's S parks us per the configured policy.
  const LockId lid = LockId::IndexKey(node_id, view, pcol, contribution[pcol]);
  PJVM_RETURN_NOT_OK(sys_->locks().Acquire(txn, lid, LockMode::kValue));
  sys_->txns().AddParticipant(txn, node_id);
  Node* node = sys_->node(node_id);

  bool need_birth = false;  // group absent: eager insert / missing-group error
  bool need_death = false;  // own count would go negative: eager replay
  Row synthetic;            // accumulated own delta for the death path
  {
    NodeLatchGuard latch(*node);
    std::lock_guard<std::mutex> lock(mu_);
    auto vit = views_.find(view);
    if (vit == views_.end()) return false;
    ViewState& vs = vit->second;
    auto git = vs.groups.find(key);
    if (git == vs.groups.end()) {
      // First journal touch of this group: seed the committed image from
      // the heap. Journal-absent means settled (commit/abort epilogues drop
      // empty states), and the row cannot move while we hold V — birth and
      // death both commit under X.
      PJVM_ASSIGN_OR_RETURN(ProbeResult probe,
                            node->IndexProbe(view, pcol, contribution[pcol],
                                             kAutoCommitTxnId));
      GroupState seed;
      bool found = false;
      for (size_t i = 0; i < probe.rows.size(); ++i) {
        if (std::equal(probe.rows[i].begin(), probe.rows[i].begin() + width,
                       contribution.begin())) {
          seed.committed = std::move(probe.rows[i]);
          seed.lrid = probe.rids[i];
          found = true;
          break;
        }
      }
      if (found) {
        git = vs.groups.emplace(key, std::move(seed)).first;
      } else {
        need_birth = true;
      }
    }
    if (!need_birth) {
      GroupState& gs = git->second;
      auto dit = gs.deltas.find(txn);
      if (dit == gs.deltas.end()) {
        Row zero(contribution.begin(), contribution.begin() + width);
        zero.push_back(Value{int64_t{0}});
        for (const auto& agg : bound->bound_aggregates()) {
          zero.push_back(agg.type == ValueType::kDouble ? Value{0.0}
                                                        : Value{int64_t{0}});
        }
        dit = gs.deltas.emplace(txn, std::move(zero)).first;
      }
      Row& own = dit->second;
      for (size_t i = width; i < contribution.size(); ++i) {
        own[i] = AddValue(own[i], contribution[i], is_delete);
      }
      if (own[count_idx].AsInt64() < 0) {
        // Conservative group-death rule: a transaction whose accumulated
        // count on this group goes negative leaves escrow entirely. Every
        // delta *resident* in the journal therefore keeps count >= 0, so
        // the committed count can never reach zero while the journal is
        // live — death is decided against settled state, under X.
        synthetic = own;
        gs.deltas.erase(dit);
        auto rit = txn_refs_.find(txn);
        if (rit != txn_refs_.end()) {
          rit->second.erase({view, key});
          if (rit->second.empty()) txn_refs_.erase(rit);
        }
        PJVM_RETURN_NOT_OK(RewriteHeapLocked(view, vs, key, gs));
        if (gs.Settled()) vs.groups.erase(git);
        need_death = true;
      } else {
        PJVM_RETURN_NOT_OK(RewriteHeapLocked(view, vs, key, gs));
        txn_refs_[txn].insert({view, key});
        ++stats_[txn].escrow_ops;
        EscrowOpsCounter()->Increment();
        return true;
      }
    }
  }  // latch and journal mutex released before the blocking upgrade

  // V→X escalation: the upgrade waits out (or kills, per policy) every
  // other V holder, so its grant implies sole ownership — their commit and
  // abort epilogues have run, the journal state for this group is settled
  // and dropped, and the heap row carries exactly the committed image.
  PJVM_RETURN_NOT_OK(sys_->locks().Acquire(txn, lid, LockMode::kExclusive));
  {
    std::lock_guard<std::mutex> lock(mu_);
    MarkExclusiveLocked(txn, view, key);
  }
  if (need_birth) {
    // Group birth (or a missing-group delete, which the eager path reports
    // as the error it is): run the caller's eager fold under the X lock.
    return false;
  }
  (void)need_death;
  PJVM_RETURN_NOT_OK(
      ApplyEagerSynthetic(txn, node_id, view, *bound, synthetic));
  return true;
}

Status EscrowRegistry::ApplyEagerSynthetic(uint64_t txn, int node_id,
                                           const std::string& view,
                                           const BoundView& bound,
                                           const Row& synthetic) {
  // The escalated transaction's accumulated delta, replayed as one signed
  // contribution through the same probe / delete+insert sequence the eager
  // path runs — WAL records, undo actions, and MVCC version ops all flow
  // through the normal Node entry points from here on.
  const int width = bound.StoredGroupWidth();
  const int pcol = bound.output_partition_col();
  Node* node = sys_->node(node_id);
  PJVM_ASSIGN_OR_RETURN(
      ProbeResult probe,
      node->IndexProbe(view, pcol, synthetic[pcol], kAutoCommitTxnId));
  Row old_row;
  bool found = false;
  for (Row& candidate : probe.rows) {
    if (std::equal(candidate.begin(), candidate.begin() + width,
                   synthetic.begin())) {
      old_row = std::move(candidate);
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::Internal("escrow view '" + view +
                            "': escalated group vanished under the X lock " +
                            RowToString(synthetic));
  }
  Row new_row = old_row;
  for (size_t i = width; i < new_row.size(); ++i) {
    new_row[i] = AddValue(new_row[i], synthetic[i], /*negate_b=*/false);
  }
  PJVM_RETURN_NOT_OK(node->DeleteExact(txn, view, old_row));
  const int64_t count = new_row[bound.StoredCountIndex()].AsInt64();
  if (count < 0) {
    return Status::Internal("aggregate view '" + view +
                            "': negative group count");
  }
  if (count > 0) {
    PJVM_RETURN_NOT_OK(node->Insert(txn, view, std::move(new_row)).status());
  }
  return Status::OK();
}

bool EscrowRegistry::HasPending(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_refs_.count(txn_id) > 0 || txn_eager_.count(txn_id) > 0 ||
         stats_.count(txn_id) > 0;
}

Status EscrowRegistry::OnPrepare(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto rit = txn_refs_.find(txn_id);
  if (rit == txn_refs_.end()) return Status::OK();
  for (const GroupRef& ref : rit->second) {
    auto vit = views_.find(ref.first);
    if (vit == views_.end()) continue;
    auto git = vit->second.groups.find(ref.second);
    if (git == vit->second.groups.end()) continue;
    auto dit = git->second.deltas.find(txn_id);
    if (dit == git->second.deltas.end()) continue;
    LogRecord rec;
    rec.txn_id = txn_id;
    rec.type = LogRecordType::kEscrowDelta;
    rec.table = ref.first;
    rec.row = dit->second;
    rec.aux = vit->second.bound->StoredGroupWidth();
    // The Wal is internally synchronized; the participant's prepare record
    // (appended and forced right after this hook) covers these appends.
    sys_->node(ref.second.first)->wal().Append(std::move(rec));
  }
  return Status::OK();
}

std::vector<TxnVersionOp> EscrowRegistry::OnCommitFold(uint64_t txn_id) {
  std::vector<TxnVersionOp> ops;
  std::lock_guard<std::mutex> lock(mu_);
  auto rit = txn_refs_.find(txn_id);
  if (rit == txn_refs_.end()) return ops;
  for (const GroupRef& ref : rit->second) {
    auto vit = views_.find(ref.first);
    if (vit == views_.end()) continue;
    auto git = vit->second.groups.find(ref.second);
    if (git == vit->second.groups.end()) continue;
    GroupState& gs = git->second;
    auto dit = gs.deltas.find(txn_id);
    if (dit == gs.deltas.end()) continue;
    // The commit point: fold this transaction's delta into the committed
    // image. Folds run in commit order (under the publish section with
    // MVCC), so the committed bytes equal the serial eager schedule in
    // that order. The version ops replace the previously published
    // committed image — snapshot readers never see in-flight increments.
    const int width = vit->second.bound->StoredGroupWidth();
    Row old_committed = gs.committed;
    for (size_t i = width; i < gs.committed.size(); ++i) {
      gs.committed[i] =
          AddValue(gs.committed[i], dit->second[i], /*negate_b=*/false);
    }
    gs.deltas.erase(dit);
    gs.finalizing.insert(txn_id);
    MvccOp del;
    del.kind = MvccOp::Kind::kDelete;
    del.row = std::move(old_committed);
    del.pages_after = gs.pages;
    del.rows_after = gs.rows;
    ops.push_back(TxnVersionOp{ref.second.first, ref.first, std::move(del)});
    MvccOp ins;
    ins.kind = MvccOp::Kind::kInsert;
    ins.row = gs.committed;
    ins.pages_after = gs.pages;
    ins.rows_after = gs.rows;
    ops.push_back(TxnVersionOp{ref.second.first, ref.first, std::move(ins)});
  }
  return ops;
}

Status EscrowRegistry::OnCommitFinalize(uint64_t txn_id) {
  std::vector<GroupRef> refs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto rit = txn_refs_.find(txn_id);
    if (rit != txn_refs_.end()) {
      refs.assign(rit->second.begin(), rit->second.end());
    }
  }
  for (const GroupRef& ref : refs) {
    Node* node = sys_->node(ref.second.first);
    NodeLatchGuard latch(*node);
    std::lock_guard<std::mutex> lock(mu_);
    auto vit = views_.find(ref.first);
    if (vit == views_.end()) continue;
    auto git = vit->second.groups.find(ref.second);
    if (git == vit->second.groups.end()) continue;
    GroupState& gs = git->second;
    gs.finalizing.erase(txn_id);
    // Re-derive the heap bytes from the new committed image (still under
    // our own V lock): the settled value must be a pure function of the
    // fold order, not of which concurrent deltas were resident when the
    // row was last rewritten.
    PJVM_RETURN_NOT_OK(RewriteHeapLocked(ref.first, vit->second, ref.second, gs));
    if (gs.Settled()) vit->second.groups.erase(git);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ClearTxnLocked(txn_id);
  return Status::OK();
}

void EscrowRegistry::OnAbort(uint64_t txn_id) {
  std::vector<GroupRef> refs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto rit = txn_refs_.find(txn_id);
    const bool any = rit != txn_refs_.end() || txn_eager_.count(txn_id) > 0 ||
                     stats_.count(txn_id) > 0;
    if (!any) return;
    if (rit != txn_refs_.end()) {
      refs.assign(rit->second.begin(), rit->second.end());
    }
  }
  for (const GroupRef& ref : refs) {
    Node* node = sys_->node(ref.second.first);
    NodeLatchGuard latch(*node);
    std::lock_guard<std::mutex> lock(mu_);
    auto vit = views_.find(ref.first);
    if (vit == views_.end()) continue;
    auto git = vit->second.groups.find(ref.second);
    if (git == vit->second.groups.end()) continue;
    GroupState& gs = git->second;
    // Rollback is a drop, never a subtraction: the heap is restored to
    // committed ⊕ remaining deltas — exact committed-derived bytes even
    // for doubles, where (x + d) - d need not equal x.
    gs.deltas.erase(txn_id);
    gs.finalizing.erase(txn_id);
    RewriteHeapLocked(ref.first, vit->second, ref.second, gs).Check();
    if (gs.Settled()) vit->second.groups.erase(git);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ClearTxnLocked(txn_id);
}

void EscrowRegistry::ClearTxnLocked(uint64_t txn_id) {
  txn_refs_.erase(txn_id);
  txn_eager_.erase(txn_id);
  stats_.erase(txn_id);
}

void EscrowRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, vs] : views_) {
    (void)name;
    vs.groups.clear();
  }
  txn_refs_.clear();
  txn_eager_.clear();
  stats_.clear();
}

Status EscrowRegistry::CheckConsistent() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, vs] : views_) {
    if (!vs.groups.empty()) {
      return Status::Internal(
          "escrow journal for view '" + name + "' holds " +
          std::to_string(vs.groups.size()) +
          " group(s) at a quiescent point (leaked in-flight state)");
    }
  }
  if (!txn_refs_.empty() || !txn_eager_.empty()) {
    return Status::Internal(
        "escrow journal holds per-transaction state at a quiescent point");
  }
  return Status::OK();
}

EscrowRegistry::TxnStats EscrowRegistry::StatsOf(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(txn_id);
  return it == stats_.end() ? TxnStats{} : it->second;
}

}  // namespace pjvm
