#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/system.h"
#include "obs/metrics_registry.h"
#include "txn/txn_manager.h"
#include "txn/wal.h"

namespace pjvm {
namespace {

Schema AbSchema() {
  return Schema({{"a", ValueType::kInt64}, {"c", ValueType::kInt64}});
}

TableDef HashTableDef(const std::string& name, const std::string& col) {
  TableDef def;
  def.name = name;
  def.schema = AbSchema();
  def.partition = PartitionSpec::Hash(col);
  return def;
}

SystemConfig SmallConfig(int nodes = 4) {
  SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rows_per_page = 4;
  return cfg;
}

std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return RowToString(a) < RowToString(b);
  });
  return rows;
}

// ---------------------------------------------------------------- Wal

TEST(WalTest, AppendsAssignIncreasingLsns) {
  Wal wal;
  uint64_t a = wal.Append({0, 1, LogRecordType::kInsert, "T", {Value{1}}});
  uint64_t b = wal.Append({0, 1, LogRecordType::kCommit, "", {}});
  EXPECT_LT(a, b);
  EXPECT_EQ(wal.size(), 2u);
}

TEST(WalTest, ReplaySkipsUncommittedAndControl) {
  Wal wal;
  wal.Append({0, 1, LogRecordType::kInsert, "T", {Value{1}}});
  wal.Append({0, 2, LogRecordType::kInsert, "T", {Value{2}}});
  wal.Append({0, 1, LogRecordType::kCommit, "", {}});
  std::vector<int64_t> applied;
  wal.ReplayCommitted([](uint64_t txn) { return txn == 1; },
                      [&](const LogRecord& rec) {
                        applied.push_back(rec.row[0].AsInt64());
                      });
  EXPECT_EQ(applied, (std::vector<int64_t>{1}));
}

TEST(WalTest, ClearKeepsLsnsMonotonic) {
  Wal wal;
  uint64_t a = wal.Append({0, 1, LogRecordType::kInsert, "T", {Value{1}}});
  uint64_t b = wal.Append({0, 1, LogRecordType::kCommit, "", {}});
  ASSERT_LT(a, b);
  const uint64_t next_before = wal.next_lsn();
  wal.Clear();
  // Truncation drops records but never rewinds the LSN counter: an LSN
  // identifies one append forever.
  EXPECT_EQ(wal.size(), 0u);
  EXPECT_EQ(wal.next_lsn(), next_before);
  uint64_t c = wal.Append({0, 2, LogRecordType::kInsert, "T", {Value{3}}});
  EXPECT_GT(c, b);
}

// ----------------------------------------------------------- Group commit

TEST(GroupCommitTest, FreeForcingKeepsDurableOnAppendSemantics) {
  // The default (force_ns == 0): every append is durable immediately and a
  // crash loses nothing from the log — the pre-group-commit model.
  Wal wal;
  uint64_t a = wal.Append({0, 1, LogRecordType::kInsert, "T", {Value{1}}});
  EXPECT_EQ(wal.durable_lsn(), a);
  ASSERT_TRUE(wal.Force(a).ok());
  wal.DiscardUnforced();
  EXPECT_EQ(wal.size(), 1u);
}

TEST(GroupCommitTest, LeaderBatchesConcurrentForces) {
  // 8 threads append + force concurrently against a 20ms simulated device.
  // Serialized per-txn forces would cost ~160ms; group commit amortizes the
  // device writes across one or two leader rounds.
  Wal wal;
  wal.ConfigureForce(/*force_ns=*/20'000'000, /*group_commit=*/true,
                     /*window_us=*/5000);
  LatencyHistogram* batches = MetricsRegistry::Global().histogram(
      "pjvm_group_commit_batch_size");
  const HistogramData before = batches->Snapshot();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  threads.reserve(kThreads);
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t lsn = wal.Append(
          {0, static_cast<uint64_t>(t + 1), LogRecordType::kPrepare, "", {}});
      ready.fetch_add(1);
      EXPECT_TRUE(wal.Force(lsn).ok());
      EXPECT_GE(wal.durable_lsn(), lsn);
    });
  }
  for (auto& th : threads) th.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  EXPECT_EQ(wal.durable_lsn(), wal.next_lsn() - 1);
  // Well under the 160ms a serialized run would need (leader rounds cost
  // window + force each; two rounds is the realistic worst case).
  EXPECT_LT(wall_ms, 120.0);
  const HistogramData after = batches->Snapshot();
  const uint64_t rounds = after.count - before.count;
  const uint64_t forced_requests = after.sum - before.sum;
  EXPECT_GE(rounds, 1u);
  EXPECT_LT(rounds, kThreads);  // batching happened: fewer rounds than forces
  EXPECT_LE(forced_requests, static_cast<uint64_t>(kThreads));
}

TEST(GroupCommitTest, WindowFlushCoversAppendsThatJoinTheRound) {
  // An append made while the leader's accumulation window is open becomes
  // durable in that same round: the leader's target is snapshotted after
  // the window. The window hook injects the append deterministically —
  // sleeping into a wall-clock window flakes under parallel ctest on a
  // 1-core host, where the leader may finish its round before this thread
  // is ever scheduled again.
  Wal wal;
  wal.ConfigureForce(/*force_ns=*/1'000'000, /*group_commit=*/true,
                     /*window_us=*/0);
  LatencyHistogram* batches = MetricsRegistry::Global().histogram(
      "pjvm_group_commit_batch_size");
  const HistogramData before = batches->Snapshot();
  uint64_t lsn2 = 0;
  wal.set_window_hook([&] {
    // Runs on the leader thread with its window open and the log unlocked.
    lsn2 = wal.Append({0, 2, LogRecordType::kPrepare, "", {}});
  });
  uint64_t lsn1 = wal.Append({0, 1, LogRecordType::kPrepare, "", {}});
  ASSERT_TRUE(wal.Force(lsn1).ok());
  wal.set_window_hook(nullptr);
  ASSERT_NE(lsn2, 0u);
  EXPECT_GE(wal.durable_lsn(), lsn2);
  ASSERT_TRUE(wal.Force(lsn2).ok());  // already covered: free
  const HistogramData after = batches->Snapshot();
  EXPECT_EQ(after.count - before.count, 1u);  // one round forced everything
}

TEST(GroupCommitTest, PerTxnForceModeSerializesButCompletes) {
  // group_commit=false is the contention bench's baseline: every force pays
  // the device, one at a time, and still reaches full durability.
  Wal wal;
  wal.ConfigureForce(/*force_ns=*/1'000'000, /*group_commit=*/false,
                     /*window_us=*/0);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t lsn = wal.Append(
          {0, static_cast<uint64_t>(t + 1), LogRecordType::kPrepare, "", {}});
      EXPECT_TRUE(wal.Force(lsn).ok());
      EXPECT_GE(wal.durable_lsn(), lsn);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wal.durable_lsn(), wal.next_lsn() - 1);
}

TEST(GroupCommitTest, LsnsMonotonicAcrossClearAndDiscard) {
  Wal wal;
  wal.ConfigureForce(/*force_ns=*/100'000, /*group_commit=*/true,
                     /*window_us=*/0);
  uint64_t a = wal.Append({0, 1, LogRecordType::kInsert, "T", {Value{1}}});
  ASSERT_TRUE(wal.Force(a).ok());
  wal.Clear();  // checkpoint truncation: durable by definition
  EXPECT_EQ(wal.size(), 0u);
  EXPECT_EQ(wal.durable_lsn(), a);
  uint64_t b = wal.Append({0, 2, LogRecordType::kInsert, "T", {Value{2}}});
  EXPECT_GT(b, a);
  ASSERT_TRUE(wal.Force(b).ok());
  // An unforced tail append is lost by a crash; LSNs never rewind anyway.
  uint64_t c = wal.Append({0, 3, LogRecordType::kInsert, "T", {Value{3}}});
  wal.DiscardUnforced();
  EXPECT_EQ(wal.size(), 1u);  // b survives, c is gone
  EXPECT_EQ(wal.records().back().lsn, b);
  uint64_t d = wal.Append({0, 4, LogRecordType::kInsert, "T", {Value{4}}});
  EXPECT_GT(d, c);
}

TEST(GroupCommitTest, CrashReplayOfPartiallyForcedBatch) {
  // System-level: txn1 commits (its 2PC prepare forces its data records);
  // txn2's appends are still unforced when the crash hits. Recovery must
  // restore txn1's row and lose txn2's — the partially-forced batch replays
  // exactly up to the durable watermark.
  SystemConfig cfg = SmallConfig(2);
  cfg.wal_force_ns = 100'000;  // 0.1ms: forcing is real but fast
  cfg.group_commit = true;
  cfg.group_commit_window_us = 0;
  ParallelSystem sys(cfg);
  ASSERT_TRUE(sys.CreateTable(HashTableDef("T", "a")).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{1}, Value{10}}, t1).ok());
  ASSERT_TRUE(sys.Commit(t1).ok());
  uint64_t t2 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{2}, Value{20}}, t2).ok());
  // No commit: txn2's data records sit above every node's durable watermark.
  sys.Crash();
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(Sorted(sys.ScanAll("T")),
            Sorted({{Value{1}, Value{10}}}));
  // The log keeps appending monotonically after the discard.
  uint64_t t3 = sys.Begin();
  ASSERT_TRUE(sys.Insert("T", {Value{3}, Value{30}}, t3).ok());
  ASSERT_TRUE(sys.Commit(t3).ok());
  EXPECT_EQ(Sorted(sys.ScanAll("T")),
            Sorted({{Value{1}, Value{10}}, {Value{3}, Value{30}}}));
}

TEST(GroupCommitTest, CheckpointForcesUnforcedTailBeforeTruncation) {
  // Regression: Clear() used to advance durable_lsn_ over records that were
  // never forced to the device. A checkpoint taken between a commit's append
  // and its force would then claim durability the device never provided, and
  // the next DiscardUnforced "crash" silently kept rows that should be lost.
  // Clear() must pay one real device write for an unforced tail.
  Wal wal;
  wal.ConfigureForce(/*force_ns=*/1'000'000, /*group_commit=*/true,
                     /*window_us=*/0);
  Counter* forces =
      MetricsRegistry::Global().counter("pjvm_wal_checkpoint_forces");
  const uint64_t before = forces->value();
  wal.Append({0, 1, LogRecordType::kInsert, "T", {Value{1}}});
  uint64_t b = wal.Append({0, 1, LogRecordType::kCommit, "", {}});
  ASSERT_LT(wal.durable_lsn(), b);  // tail is unforced
  wal.Clear();
  // The checkpoint paid the device write instead of lying about durability.
  EXPECT_EQ(forces->value(), before + 1);
  EXPECT_EQ(wal.durable_lsn(), b);
  EXPECT_EQ(wal.size(), 0u);
  // Crash semantics stay honest after the checkpoint: a fresh unforced
  // append is above the watermark and a crash discard drops it.
  uint64_t c = wal.Append({0, 2, LogRecordType::kInsert, "T", {Value{2}}});
  EXPECT_GT(c, wal.durable_lsn());
  wal.DiscardUnforced();
  EXPECT_EQ(wal.size(), 0u);
  // An already-durable checkpoint costs nothing.
  uint64_t d = wal.Append({0, 3, LogRecordType::kInsert, "T", {Value{3}}});
  ASSERT_TRUE(wal.Force(d).ok());
  wal.Clear();
  EXPECT_EQ(forces->value(), before + 1);
}

TEST(GroupCommitTest, CheckpointRidesOutInFlightForceRound) {
  // A checkpoint that arrives while a leader's round is open must wait for
  // that round rather than start a second device write. The leader snapshots
  // its target after the accumulation window, so the round also covers an
  // append made mid-window — the checkpoint then truncates for free.
  Wal wal;
  wal.ConfigureForce(/*force_ns=*/1'000'000, /*group_commit=*/true,
                     /*window_us=*/0);
  Counter* forces =
      MetricsRegistry::Global().counter("pjvm_wal_checkpoint_forces");
  const uint64_t before = forces->value();
  uint64_t lsn1 = wal.Append({0, 1, LogRecordType::kPrepare, "", {}});
  uint64_t lsn2 = 0;
  std::thread checkpointer;
  // The window hook replaces the old sleep-into-the-window choreography
  // (flaky under parallel ctest on a 1-core host): it runs on the leader
  // thread while the round is provably open, appends lsn2 into the round,
  // and launches the checkpoint. Whether Clear() then blocks on the open
  // round or arrives just after it closed, the round's force covers lsn2
  // and the checkpoint never pays a device write of its own.
  wal.set_window_hook([&] {
    lsn2 = wal.Append({0, 2, LogRecordType::kPrepare, "", {}});
    checkpointer = std::thread([&] { wal.Clear(); });
  });
  ASSERT_TRUE(wal.Force(lsn1).ok());
  checkpointer.join();
  wal.set_window_hook(nullptr);
  ASSERT_NE(lsn2, 0u);
  EXPECT_EQ(forces->value(), before);  // no extra checkpoint force
  EXPECT_GE(wal.durable_lsn(), lsn2);
  EXPECT_EQ(wal.size(), 0u);
}

// ------------------------------------------------------------- TxnManager

TEST(TxnManagerTest, LifecycleStates) {
  TxnManager mgr;
  uint64_t t = mgr.Begin();
  EXPECT_TRUE(mgr.IsActive(t));
  EXPECT_FALSE(mgr.IsCommitted(t));
  ASSERT_TRUE(mgr.MarkPreparing(t).ok());
  ASSERT_TRUE(mgr.LogCommitDecision(t).ok());
  EXPECT_TRUE(mgr.IsCommitted(t));
  EXPECT_EQ(mgr.state(t), TxnState::kCommitted);
}

TEST(TxnManagerTest, AutocommitAlwaysCommitted) {
  TxnManager mgr;
  EXPECT_TRUE(mgr.IsCommitted(kAutoCommitTxnId));
}

TEST(TxnManagerTest, CannotAbortCommitted) {
  TxnManager mgr;
  uint64_t t = mgr.Begin();
  ASSERT_TRUE(mgr.LogCommitDecision(t).ok());
  EXPECT_FALSE(mgr.MarkAborted(t).ok());
}

TEST(TxnManagerTest, CannotCommitAborted) {
  TxnManager mgr;
  uint64_t t = mgr.Begin();
  ASSERT_TRUE(mgr.MarkAborted(t).ok());
  EXPECT_FALSE(mgr.LogCommitDecision(t).ok());
}

TEST(TxnManagerTest, UndoIsReversedAndConsumed) {
  TxnManager mgr;
  uint64_t t = mgr.Begin();
  mgr.PushUndo(t, {UndoOp::Kind::kDeleteInserted, 0, "T", {Value{1}}});
  mgr.PushUndo(t, {UndoOp::Kind::kDeleteInserted, 0, "T", {Value{2}}});
  auto ops = mgr.TakeUndoReversed(t);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].row[0], Value{2});
  EXPECT_EQ(ops[1].row[0], Value{1});
  EXPECT_TRUE(mgr.TakeUndoReversed(t).empty());
}

TEST(TxnManagerTest, CrashAbortsInFlight) {
  TxnManager mgr;
  uint64_t committed = mgr.Begin();
  uint64_t in_flight = mgr.Begin();
  ASSERT_TRUE(mgr.LogCommitDecision(committed).ok());
  mgr.CrashAndRecover();
  EXPECT_TRUE(mgr.IsCommitted(committed));
  EXPECT_EQ(mgr.state(in_flight), TxnState::kAborted);
}

TEST(TxnManagerTest, ForgetDropsWorkingStateButKeepsDecision) {
  TxnManager mgr;
  uint64_t t = mgr.Begin();
  mgr.PushUndo(t, {UndoOp::Kind::kDeleteInserted, 0, "T", {Value{1}}});
  mgr.AddParticipant(t, 2);
  ASSERT_TRUE(mgr.LogCommitDecision(t).ok());
  EXPECT_EQ(mgr.TrackedCount(), 1u);
  mgr.Forget(t);
  EXPECT_EQ(mgr.TrackedCount(), 0u);
  EXPECT_TRUE(mgr.participants(t).empty());
  EXPECT_TRUE(mgr.TakeUndoReversed(t).empty());
  // The durable decision outlives the working state.
  EXPECT_TRUE(mgr.IsCommitted(t));
  EXPECT_EQ(mgr.state(t), TxnState::kCommitted);
}

TEST(TxnManagerTest, ParticipantsReturnsCopyWithoutInserting) {
  TxnManager mgr;
  uint64_t t = mgr.Begin();
  // Asking about a transaction with no participants must not create an
  // entry (the old by-reference accessor default-inserted one).
  EXPECT_TRUE(mgr.participants(t).empty());
  EXPECT_TRUE(mgr.participants(9999).empty());
  mgr.AddParticipant(t, 1);
  mgr.AddParticipant(t, 3);
  EXPECT_EQ(mgr.participants(t), (std::set<int>{1, 3}));
}

TEST(TxnManagerTest, PruneCommittedBelowDropsOnlyOldDecisions) {
  TxnManager mgr;
  uint64_t t1 = mgr.Begin();
  uint64_t t2 = mgr.Begin();
  ASSERT_TRUE(mgr.LogCommitDecision(t1).ok());
  ASSERT_TRUE(mgr.LogCommitDecision(t2).ok());
  EXPECT_EQ(mgr.PruneCommittedBelow(t2), 1u);
  EXPECT_FALSE(mgr.IsCommitted(t1));
  EXPECT_TRUE(mgr.IsCommitted(t2));
  EXPECT_EQ(mgr.PruneCommittedBelow(mgr.next_txn_id()), 1u);
  EXPECT_TRUE(mgr.committed_ids().empty());
}

TEST(TxnManagerTest, CrashClearsParticipantsAndUndo) {
  TxnManager mgr;
  uint64_t t = mgr.Begin();
  mgr.AddParticipant(t, 0);
  mgr.PushUndo(t, {UndoOp::Kind::kDeleteInserted, 0, "T", {Value{1}}});
  mgr.CrashAndRecover();
  EXPECT_EQ(mgr.TrackedCount(), 0u);
  EXPECT_TRUE(mgr.participants(t).empty());
  EXPECT_TRUE(mgr.TakeUndoReversed(t).empty());
}

// ------------------------------------------------- System-level txn + 2PC

TEST(SystemTxnTest, CommitMakesChangesDurable) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  uint64_t t = sys.Begin();
  for (int64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}, t).ok());
  }
  ASSERT_TRUE(sys.Commit(t).ok());
  EXPECT_EQ(sys.RowCount("A"), 8u);
  sys.Crash();
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(sys.RowCount("A"), 8u);
}

TEST(SystemTxnTest, AbortRollsBackInserts) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  ASSERT_TRUE(sys.Insert("A", {Value{100}, Value{1}}).ok());
  uint64_t t = sys.Begin();
  for (int64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}, t).ok());
  }
  EXPECT_EQ(sys.RowCount("A"), 6u);
  ASSERT_TRUE(sys.Abort(t).ok());
  EXPECT_EQ(sys.RowCount("A"), 1u);
  EXPECT_TRUE(sys.CheckInvariants().ok());
}

TEST(SystemTxnTest, AbortRollsBackDeletes) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  Row row = {Value{7}, Value{77}};
  ASSERT_TRUE(sys.Insert("A", row).ok());
  uint64_t t = sys.Begin();
  ASSERT_TRUE(sys.DeleteExact("A", row, t).ok());
  EXPECT_EQ(sys.RowCount("A"), 0u);
  ASSERT_TRUE(sys.Abort(t).ok());
  ASSERT_EQ(sys.RowCount("A"), 1u);
  EXPECT_EQ(Sorted(sys.ScanAll("A"))[0], row);
}

TEST(SystemTxnTest, AbortRestoresDeletedRowAtOriginalLrid) {
  // Regression: global-index entries reference (node, lrid), so a row
  // restored by abort must come back at the exact slot it was deleted from.
  // Before deferred slot reclamation, the delete freed the slot immediately;
  // an insert racing the doomed transaction could recycle it, and the undo
  // re-insert landed at a new lrid — leaving committed GI entries dangling.
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  Row victim = {Value{7}, Value{77}};
  ASSERT_TRUE(sys.Insert("A", victim).ok());
  int home = -1;
  LocalRowId original_lrid = 0;
  for (int i = 0; i < SmallConfig().num_nodes; ++i) {
    auto found = sys.node(i)->fragment("A")->FindExact(victim);
    if (found.ok()) {
      home = i;
      original_lrid = *found;
      break;
    }
  }
  ASSERT_GE(home, 0);

  uint64_t t = sys.Begin();
  ASSERT_TRUE(sys.DeleteExact("A", victim, t).ok());
  // An unrelated insert lands on every node (one per node id keyspace walk)
  // while the delete is still abortable: none may steal the reserved slot.
  for (int64_t k = 1000; k < 1064; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}).ok());
  }
  EXPECT_EQ(sys.node(home)->fragment("A")->Get(original_lrid), nullptr)
      << "reserved slot must stay empty until the transaction resolves";
  ASSERT_TRUE(sys.Abort(t).ok());

  auto restored = sys.node(home)->fragment("A")->FindExact(victim);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, original_lrid);
  EXPECT_TRUE(sys.CheckInvariants().ok());
}

TEST(SystemTxnTest, CommitRecyclesDeferredDeleteSlots) {
  // The commit epilogue releases slots reserved by transactional deletes;
  // later inserts on that node may then reuse them (bounded heap growth).
  SystemConfig cfg = SmallConfig(1);
  ParallelSystem sys(cfg);
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  Row row = {Value{1}, Value{11}};
  ASSERT_TRUE(sys.Insert("A", row).ok());
  auto found = sys.node(0)->fragment("A")->FindExact(row);
  ASSERT_TRUE(found.ok());
  LocalRowId freed_lrid = *found;

  uint64_t t = sys.Begin();
  ASSERT_TRUE(sys.DeleteExact("A", row, t).ok());
  ASSERT_TRUE(sys.Commit(t).ok());

  // Single node: the next insert must recycle the released slot.
  ASSERT_TRUE(sys.Insert("A", {Value{2}, Value{22}}).ok());
  auto reused = sys.node(0)->fragment("A")->FindExact({Value{2}, Value{22}});
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(*reused, freed_lrid);
  EXPECT_TRUE(sys.CheckInvariants().ok());
}

TEST(SystemTxnTest, UncommittedTxnLostOnCrash) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  ASSERT_TRUE(sys.Insert("A", {Value{100}, Value{1}}).ok());  // autocommit
  uint64_t t = sys.Begin();
  for (int64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}, t).ok());
  }
  sys.Crash();  // Crash without commit.
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(sys.RowCount("A"), 1u);
}

TEST(SystemTxnTest, CrashBeforePrepareAborts) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  uint64_t t = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", {Value{1}, Value{1}}, t).ok());
  sys.txns().InjectFailure(FailurePoint::kBeforePrepare);
  EXPECT_TRUE(sys.Commit(t).IsAborted());
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(sys.RowCount("A"), 0u);
}

TEST(SystemTxnTest, CrashAfterPrepareAborts) {
  // Presumed abort: prepared but undecided transactions roll back.
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  uint64_t t = sys.Begin();
  for (int64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}, t).ok());
  }
  sys.txns().InjectFailure(FailurePoint::kAfterPrepare);
  EXPECT_TRUE(sys.Commit(t).IsAborted());
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(sys.RowCount("A"), 0u);
}

TEST(SystemTxnTest, CrashAfterDecisionCommits) {
  // Once the coordinator durably decided commit, recovery must apply the
  // transaction even though participants never heard the outcome.
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  uint64_t t = sys.Begin();
  for (int64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}, t).ok());
  }
  sys.txns().InjectFailure(FailurePoint::kAfterDecision);
  EXPECT_TRUE(sys.Commit(t).IsAborted());  // The call reports the crash...
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(sys.RowCount("A"), 6u);  // ...but the transaction committed.
}

TEST(SystemTxnTest, RecoveryPreservesExactContents) {
  ParallelSystem sys(SmallConfig());
  TableDef def = HashTableDef("A", "a");
  def.indexes.push_back({"c", false});
  ASSERT_TRUE(sys.CreateTable(def).ok());
  // A mix of committed work, aborted work, and deletes.
  uint64_t t1 = sys.Begin();
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k % 3}}, t1).ok());
  }
  ASSERT_TRUE(sys.Commit(t1).ok());
  uint64_t t2 = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", {Value{999}, Value{9}}, t2).ok());
  ASSERT_TRUE(sys.DeleteExact("A", {Value{1}, Value{1}}, t2).ok());
  ASSERT_TRUE(sys.Abort(t2).ok());
  uint64_t t3 = sys.Begin();
  ASSERT_TRUE(sys.DeleteExact("A", {Value{2}, Value{2}}, t3).ok());
  ASSERT_TRUE(sys.Commit(t3).ok());

  std::vector<Row> before = Sorted(sys.ScanAll("A"));
  sys.Crash();
  ASSERT_TRUE(sys.Recover().ok());
  std::vector<Row> after = Sorted(sys.ScanAll("A"));
  EXPECT_EQ(before, after);
  EXPECT_TRUE(sys.CheckInvariants().ok());
}

TEST(SystemTxnTest, FinishedTransactionsAreForgotten) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  for (int64_t k = 0; k < 6; ++k) {
    uint64_t t = sys.Begin();
    ASSERT_TRUE(sys.Insert("A", {Value{k}, Value{k}}, t).ok());
    if (k % 2 == 0) {
      ASSERT_TRUE(sys.Commit(t).ok());
    } else {
      ASSERT_TRUE(sys.Abort(t).ok());
    }
    // Working state (lifecycle entry, undo, participants) is dropped as each
    // transaction finishes: the coordinator's memory stays bounded.
    EXPECT_EQ(sys.txns().TrackedCount(), 0u);
  }
  // The committed ids survive (WAL replay may still ask about them)...
  EXPECT_EQ(sys.txns().committed_ids().size(), 3u);
  // ...until a checkpoint truncates every node's log.
  ASSERT_TRUE(sys.Checkpoint().ok());
  EXPECT_TRUE(sys.txns().committed_ids().empty());
  // Recovery from the checkpoint still yields the committed contents.
  sys.Crash();
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(sys.RowCount("A"), 3u);
}

TEST(SystemTxnTest, CommitsAfterCheckpointReplayWithMonotonicLsns) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  uint64_t t1 = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", {Value{1}, Value{1}}, t1).ok());
  ASSERT_TRUE(sys.Commit(t1).ok());
  std::vector<uint64_t> lsn_at_checkpoint(sys.num_nodes());
  ASSERT_TRUE(sys.Checkpoint().ok());
  for (int i = 0; i < sys.num_nodes(); ++i) {
    EXPECT_EQ(sys.node(i)->wal().size(), 0u);
    lsn_at_checkpoint[i] = sys.node(i)->wal().next_lsn();
  }
  // Records written after the truncation continue the LSN sequence.
  uint64_t t2 = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", {Value{2}, Value{2}}, t2).ok());
  ASSERT_TRUE(sys.Commit(t2).ok());
  for (int i = 0; i < sys.num_nodes(); ++i) {
    EXPECT_GE(sys.node(i)->wal().next_lsn(), lsn_at_checkpoint[i]);
    for (const LogRecord& rec : sys.node(i)->wal().records()) {
      EXPECT_GE(rec.lsn, lsn_at_checkpoint[i]);
    }
  }
  sys.Crash();
  ASSERT_TRUE(sys.Recover().ok());
  EXPECT_EQ(sys.RowCount("A"), 2u);
  EXPECT_TRUE(sys.CheckInvariants().ok());
}

TEST(SystemTxnTest, MultiTableTransactionIsAtomic) {
  ParallelSystem sys(SmallConfig());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("A", "a")).ok());
  ASSERT_TRUE(sys.CreateTable(HashTableDef("B", "a")).ok());
  uint64_t t = sys.Begin();
  ASSERT_TRUE(sys.Insert("A", {Value{1}, Value{1}}, t).ok());
  ASSERT_TRUE(sys.Insert("B", {Value{2}, Value{2}}, t).ok());
  sys.txns().InjectFailure(FailurePoint::kAfterPrepare);
  EXPECT_FALSE(sys.Commit(t).ok());
  ASSERT_TRUE(sys.Recover().ok());
  // Neither table kept its row: no partial commit.
  EXPECT_EQ(sys.RowCount("A"), 0u);
  EXPECT_EQ(sys.RowCount("B"), 0u);
}

}  // namespace
}  // namespace pjvm
