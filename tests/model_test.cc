#include <gtest/gtest.h>

#include "model/analytical.h"
#include "model/figures.h"

namespace pjvm::model {
namespace {

ModelParams Paper(int nodes) {
  ModelParams p = PaperParams();
  p.num_nodes = nodes;
  return p;
}

// ----------------------------------------------------- TW (Section 3.1.1)

TEST(TwModelTest, AuxIsConstantThree) {
  // INSERT (2 I/Os) + SEARCH (1 I/O), independent of L — Figure 7's flat
  // line at 3.
  for (int l : {2, 8, 128, 1024}) {
    EXPECT_DOUBLE_EQ(TwAuxRelation(Paper(l)), 3.0);
  }
}

TEST(TwModelTest, NaiveGrowsLinearlyWithL) {
  EXPECT_DOUBLE_EQ(TwNaive(Paper(8), /*clustered=*/true), 8.0);
  EXPECT_DOUBLE_EQ(TwNaive(Paper(64), true), 64.0);
  // Non-clustered adds N fetches.
  EXPECT_DOUBLE_EQ(TwNaive(Paper(8), false), 8.0 + 10.0);
}

TEST(TwModelTest, GiReachesThirteenWhenKSaturates) {
  // "TW quickly reaches a constant 13 (K becomes N when L > N)".
  EXPECT_DOUBLE_EQ(TwGlobalIndex(Paper(2), /*dc=*/true), 3.0 + 2.0);
  EXPECT_DOUBLE_EQ(TwGlobalIndex(Paper(8), true), 3.0 + 8.0);
  EXPECT_DOUBLE_EQ(TwGlobalIndex(Paper(16), true), 13.0);
  EXPECT_DOUBLE_EQ(TwGlobalIndex(Paper(1024), true), 13.0);
  // Distributed non-clustered pays N fetches regardless of L.
  EXPECT_DOUBLE_EQ(TwGlobalIndex(Paper(2), false), 13.0);
}

TEST(TwModelTest, GiInterpolatesBetweenAuxAndNaiveInN) {
  // Figure 8: small N -> GI close to AR; large N -> GI close to naive.
  ModelParams p = Paper(32);
  p.fanout = 1;
  EXPECT_NEAR(TwGlobalIndex(p, true), TwAuxRelation(p) + 1, 1e-9);
  p.fanout = 100;
  double gi = TwGlobalIndex(p, false);
  double naive = TwNaive(p, false);
  double aux = TwAuxRelation(p);
  EXPECT_LT(std::abs(gi - naive) / naive, std::abs(gi - aux) / gi);
}

TEST(TwModelTest, SendCounts) {
  ModelParams p = Paper(8);
  EXPECT_DOUBLE_EQ(SendsAuxRelation(p), 2.0);
  EXPECT_DOUBLE_EQ(SendsNaive(p), 8.0 + 8.0);  // L + K, K = min(10, 8).
  EXPECT_DOUBLE_EQ(SendsGlobalIndex(p), 1.0 + 16.0);
}

// -------------------------------------------- Response time (Sec. 3.1.2)

TEST(RtModelTest, SortPassesMatchPaperParameters) {
  EXPECT_DOUBLE_EQ(SortPasses(6400, 100), 2.0);
  EXPECT_DOUBLE_EQ(SortPasses(50, 100), 1.0);
  EXPECT_DOUBLE_EQ(SortPasses(1, 100), 1.0);
}

TEST(RtModelTest, AuxIndexIsThreePerLocalTuple) {
  // Figure 9's 3|A|/L curve.
  EXPECT_DOUBLE_EQ(RtAuxIndex(Paper(8), 400), 3.0 * 50);
  EXPECT_DOUBLE_EQ(RtAuxIndex(Paper(128), 400), 3.0 * 4);  // ceil(400/128)=4
}

TEST(RtModelTest, NaiveClusteredIndexIsFlatInL) {
  // "The execution time of the naive method (|A|*L/L = |A|) is constant".
  EXPECT_DOUBLE_EQ(RtNaiveIndex(Paper(2), 400, true), 400);
  EXPECT_DOUBLE_EQ(RtNaiveIndex(Paper(512), 400, true), 400);
}

TEST(RtModelTest, SmallTxnPrefersIndexJoin) {
  // Figure 9 regime: 400 tuples, index join wins for every method.
  ModelParams p = Paper(32);
  EXPECT_DOUBLE_EQ(RtAux(p, 400), RtAuxIndex(p, 400));
  EXPECT_DOUBLE_EQ(RtGi(p, 400, true), RtGiIndex(p, 400, true));
}

TEST(RtModelTest, LargeTxnPrefersSortMergeAndNaiveClusteredWins) {
  // Figure 10 regime: 6,500 tuples ~ |B| pages.
  ModelParams p = Paper(8);
  double naive_c = RtNaive(p, 6500, true);
  EXPECT_DOUBLE_EQ(naive_c, p.BPagesPerNode());  // Pure scan.
  // "The naive view maintenance algorithm with clustered index actually
  // outperforms the auxiliary relation / global index method."
  EXPECT_LT(naive_c, RtAux(p, 6500));
  EXPECT_LT(naive_c, RtGi(p, 6500, true));
  EXPECT_LT(naive_c, RtGi(p, 6500, false));
}

TEST(RtModelTest, AuxBeatsNaiveForSmallUpdates) {
  // The headline result: small updates, AR wins by ~L.
  ModelParams p = Paper(64);
  EXPECT_LT(RtAux(p, 128), RtNaive(p, 128, true));
  EXPECT_LT(RtAux(p, 128), RtNaive(p, 128, false));
  EXPECT_LT(RtGi(p, 128, true), RtNaive(p, 128, false));
}

TEST(RtModelTest, StepwiseCeilingBehaviour) {
  // Figure 12: AR response time steps at multiples of L.
  ModelParams p = Paper(128);
  EXPECT_DOUBLE_EQ(RtAux(p, 1), RtAux(p, 128));    // ceil(A/L) = 1 for both.
  EXPECT_LT(RtAux(p, 128), RtAux(p, 129));          // Step boundary.
  EXPECT_DOUBLE_EQ(RtAux(p, 129), RtAux(p, 256));  // Same step.
}

TEST(RtModelTest, CrossoverMovesWithUpdateSize) {
  // Figure 11: each method's curve flattens once sort-merge takes over; the
  // naive method flattens first, GI later, AR last.
  ModelParams p = Paper(128);
  auto flat_point = [&](auto rt) {
    double prev = -1;
    for (double a = 1; a <= 200000; a *= 2) {
      double v = rt(a);
      if (prev >= 0 && v == prev) return a / 2;
      prev = v;
    }
    return -1.0;
  };
  double naive_flat =
      flat_point([&](double a) { return RtNaive(p, a, true); });
  double gi_flat =
      flat_point([&](double a) { return RtGiSortMerge(p, a, true) <=
                                            RtGiIndex(p, a, true)
                                        ? RtGiSortMerge(p, 0, true)
                                        : RtGiIndex(p, a, true); });
  EXPECT_GT(naive_flat, 0);
  (void)gi_flat;
  // At the flat point the naive method equals the |B_i| scan.
  EXPECT_DOUBLE_EQ(RtNaive(p, 1e6, true), p.BPagesPerNode());
}

// --------------------------------------------------------------- Figures

TEST(FiguresTest, Figure7SeriesShapes) {
  Figure fig = MakeFigure7();
  ASSERT_EQ(fig.series.size(), 5u);
  const Series& aux = fig.series[0];
  const Series& naive_nc = fig.series[1];
  // AR flat at 3.
  for (double y : aux.ys) EXPECT_DOUBLE_EQ(y, 3.0);
  // Naive strictly increasing in L.
  for (size_t i = 1; i < naive_nc.ys.size(); ++i) {
    EXPECT_GT(naive_nc.ys[i], naive_nc.ys[i - 1]);
  }
  // GI distributed clustered saturates at 13.
  EXPECT_DOUBLE_EQ(fig.series[4].ys.back(), 13.0);
}

TEST(FiguresTest, Figure8GiBetweenAuxAndNaive) {
  Figure fig = MakeFigure8();
  const Series& aux = fig.series[0];
  const Series& naive_nc = fig.series[1];
  const Series& gi_nc = fig.series[3];
  for (size_t i = 0; i < aux.xs.size(); ++i) {
    EXPECT_GE(gi_nc.ys[i], aux.ys[i]);
    EXPECT_LE(gi_nc.ys[i], naive_nc.ys[i]);
  }
}

TEST(FiguresTest, Figure9AuxDecreasesNaiveFlat) {
  Figure fig = MakeFigure9();
  const Series& aux = fig.series[0];
  const Series& naive_c = fig.series[2];
  for (size_t i = 1; i < aux.ys.size(); ++i) {
    EXPECT_LE(aux.ys[i], aux.ys[i - 1]);
  }
  // Naive clustered is flat at 400 until the SMJ crossover at large L.
  EXPECT_DOUBLE_EQ(naive_c.ys[0], 400.0);
}

TEST(FiguresTest, Figure10NaiveClusteredWins) {
  Figure fig = MakeFigure10();
  const Series& aux = fig.series[0];
  const Series& naive_c = fig.series[2];
  for (size_t i = 0; i < aux.ys.size(); ++i) {
    EXPECT_LE(naive_c.ys[i], aux.ys[i]) << "L=" << naive_c.xs[i];
  }
}

TEST(FiguresTest, Figure11MonotoneAndPlateauing) {
  Figure fig = MakeFigure11();
  for (const Series& s : fig.series) {
    for (size_t i = 1; i < s.ys.size(); ++i) {
      EXPECT_GE(s.ys[i] + 1e-9, s.ys[i - 1]) << s.label << " x=" << s.xs[i];
    }
  }
  // The naive curves plateau exactly once sort-merge takes over (their scan
  // cost is independent of |A|); AR and GI flatten but keep the small
  // per-tuple structure-update slope, as the paper's curves do.
  for (int naive_idx : {1, 2}) {
    const Series& s = fig.series[naive_idx];
    EXPECT_DOUBLE_EQ(s.ys[s.ys.size() - 1], s.ys[s.ys.size() - 2]) << s.label;
  }
  // The AR curve's residual slope (structure updates) is tiny: 2 I/Os per
  // 128 tuples, far below the naive non-clustered curve's initial growth of
  // >= 1 I/O per tuple.
  const Series& aux = fig.series[0];
  const Series& naive_nc = fig.series[1];
  double aux_late_slope = (aux.ys.back() - aux.ys[aux.ys.size() - 4]) /
                          (aux.xs.back() - aux.xs[aux.xs.size() - 4]);
  double naive_early_slope =
      (naive_nc.ys[1] - naive_nc.ys[0]) / (naive_nc.xs[1] - naive_nc.xs[0]);
  EXPECT_LT(aux_late_slope, 0.05);
  EXPECT_GE(naive_early_slope, 1.0);
}

TEST(FiguresTest, Figure12ShowsSteps) {
  Figure fig = MakeFigure12();
  const Series& aux = fig.series[0];
  // With L = 128, the AR curve is flat within each ceil(A/128) step and
  // jumps by 3 at each boundary; over 1..300 there are exactly 2 jumps.
  int jumps = 0;
  for (size_t i = 1; i < aux.ys.size(); ++i) {
    if (aux.ys[i] != aux.ys[i - 1]) ++jumps;
  }
  EXPECT_EQ(jumps, 2);
}

TEST(FiguresTest, Figure13ArBeatsNaiveAndGapGrowsWithL) {
  Figure fig = MakeFigure13();
  ASSERT_EQ(fig.series.size(), 4u);
  const Series& ar1 = fig.series[0];
  const Series& nv1 = fig.series[1];
  const Series& ar2 = fig.series[2];
  const Series& nv2 = fig.series[3];
  double prev_ratio1 = 0;
  for (size_t i = 0; i < ar1.xs.size(); ++i) {
    EXPECT_LT(ar1.ys[i], nv1.ys[i]);
    EXPECT_LT(ar2.ys[i], nv2.ys[i]);
    // JV2 costs more than JV1 under both methods.
    EXPECT_GT(nv2.ys[i], nv1.ys[i]);
    EXPECT_GE(ar2.ys[i], ar1.ys[i]);
    double ratio = nv1.ys[i] / ar1.ys[i];
    EXPECT_GT(ratio, prev_ratio1);  // Speedup grows with L (paper's claim).
    prev_ratio1 = ratio;
  }
}

TEST(FiguresTest, PrintFigureProducesTable) {
  std::ostringstream os;
  PrintFigure(MakeFigure7(), os);
  std::string out = os.str();
  EXPECT_NE(out.find("Figure 7"), std::string::npos);
  EXPECT_NE(out.find("aux_relation"), std::string::npos);
  EXPECT_NE(out.find("\n"), std::string::npos);
}

}  // namespace
}  // namespace pjvm::model
