#ifndef PJVM_VIEW_GLOBAL_INDEX_MAINTAINER_H_
#define PJVM_VIEW_GLOBAL_INDEX_MAINTAINER_H_

#include "view/maintainer.h"

namespace pjvm {

/// \brief The paper's global index method (Section 2.1.3).
///
/// Each plan step consults the target's global index — a distributed table
/// of (join-attribute value, list of global row ids) entries partitioned on
/// the value — to learn exactly which K <= min(N, L) nodes hold matching
/// tuples, then sends the partial tuple plus the relevant row ids to just
/// those nodes, where the matches are fetched by row id and joined. The
/// fetches cost one page per node when the base is clustered on the join
/// attribute ("distributed clustered") and one I/O per matching row
/// otherwise.
///
/// For large batches where even the few-node index plan loses to a scan,
/// the step falls back to the broadcast sort-merge join (the same crossover
/// the paper's Figure 11 shows).
class GlobalIndexMaintainer : public Maintainer {
 public:
  using Maintainer::Maintainer;

  MaintenanceMethod method() const override {
    return MaintenanceMethod::kGlobalIndex;
  }

 protected:
  Status ProcessSign(uint64_t txn, int updated_base,
                     const MaintenancePlan& plan, const std::vector<Row>& rows,
                     const std::vector<GlobalRowId>& gids, bool is_delete,
                     MaintenanceReport* report) override;

 private:
  /// One global-index step: route each partial to the GI home of its key,
  /// look up the global row ids, and fan the probe out to the K owning
  /// nodes.
  Result<std::vector<Partial>> GlobalIndexStep(uint64_t txn,
                                               const PlanStep& step,
                                               const std::string& gi_table,
                                               const std::vector<Partial>& in,
                                               MaintenanceReport* report);
};

}  // namespace pjvm

#endif  // PJVM_VIEW_GLOBAL_INDEX_MAINTAINER_H_
