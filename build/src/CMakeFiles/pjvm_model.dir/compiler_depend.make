# Empty compiler generated dependencies file for pjvm_model.
# This may be replaced when dependencies are built.
