#ifndef PJVM_WORKLOAD_ZIPF_H_
#define PJVM_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pjvm {

/// \brief Zipf-distributed key sampler over ranks [0, n): rank r is drawn
/// with probability proportional to 1 / (r + 1)^theta.
///
/// Real warehouse update streams are skewed (a few hot customers/parts
/// receive most activity), which changes join fanouts and hence the best
/// maintenance plan; this generator drives the skew experiments.
class ZipfGenerator {
 public:
  /// theta = 0 degenerates to uniform; theta ~ 1 is classic Zipf.
  ZipfGenerator(int64_t n, double theta, uint64_t seed);

  /// Next rank in [0, n); rank 0 is the hottest.
  int64_t Next();

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace pjvm

#endif  // PJVM_WORKLOAD_ZIPF_H_
